open Aries_util
module Sched = Aries_sched.Sched
module Trace = Aries_trace.Trace

type mode = IS | IX | S | SIX | X

type duration = Instant | Manual | Commit

type name =
  | Rid of Ids.rid
  | Key_value of Ids.index_id * string
  | Eof of Ids.index_id
  | Table of int
  | Page_lock of Ids.page_id
  | Tree_lock of Ids.index_id

type outcome = Granted | Denied | Deadlock

exception Deadlock_abort of Ids.txn_id

let compatible a b =
  match (a, b) with
  | IS, (IS | IX | S | SIX) | (IX | S | SIX), IS -> true
  | IX, IX -> true
  | S, S -> true
  | IS, X | X, IS -> false
  | IX, (S | SIX | X) | (S | SIX | X), IX -> false
  | S, (SIX | X) | (SIX | X), S -> false
  | SIX, (SIX | X) | X, (SIX | X) -> false

(* Lattice: IS < IX < SIX < X, IS < S < SIX; join of S and IX is SIX. *)
let supremum a b =
  if a = b then a
  else
    match (a, b) with
    | IS, m | m, IS -> m
    | X, _ | _, X -> X
    | SIX, _ | _, SIX -> SIX
    | S, IX | IX, S -> SIX
    | S, S -> S
    | IX, IX -> IX

let mode_to_string = function IS -> "IS" | IX -> "IX" | S -> "S" | SIX -> "SIX" | X -> "X"

let duration_to_string = function Instant -> "instant" | Manual -> "manual" | Commit -> "commit"

let name_to_string = function
  | Rid r -> Printf.sprintf "rid:%s" (Ids.rid_to_string r)
  | Key_value (ix, v) -> Printf.sprintf "kv:%d:%S" ix v
  | Eof ix -> Printf.sprintf "eof:%d" ix
  | Table tbl -> Printf.sprintf "table:%d" tbl
  | Page_lock p -> Printf.sprintf "page:%d" p
  | Tree_lock ix -> Printf.sprintf "tree:%d" ix

let pp_name ppf n = Format.pp_print_string ppf (name_to_string n)

let duration_rank = function Instant -> 0 | Manual -> 1 | Commit -> 2

let stronger_duration a b = if duration_rank a >= duration_rank b then a else b

type holder = {
  h_txn : Ids.txn_id;
  mutable h_mode : mode;
  mutable h_duration : duration;
}

type waiter = {
  wt_txn : Ids.txn_id;
  wt_mode : mode;  (* for conversions: the target (supremum) mode *)
  wt_duration : duration;
  wt_conversion : bool;
  wt_since : int;  (* Sched.steps_now at enqueue — the timeout fallback's clock *)
  mutable wt_waker : Sched.waker option;
}

type head = {
  mutable hd_holders : holder list;
  hd_waiters : waiter Vec.t;
}

type txn_info = {
  ti_birth : int;
  mutable ti_held : name list;
  mutable ti_waiting_on : name option;
  mutable ti_no_victim : bool;
}

type t = {
  table : (name, head) Hashtbl.t;
  txns : (Ids.txn_id, txn_info) Hashtbl.t;
  mutable births : int;
}

let create () = { table = Hashtbl.create 256; txns = Hashtbl.create 32; births = 0 }

let attach t txn =
  if not (Hashtbl.mem t.txns txn) then begin
    t.births <- t.births + 1;
    Hashtbl.replace t.txns txn
      { ti_birth = t.births; ti_held = []; ti_waiting_on = None; ti_no_victim = false }
  end

let info t txn =
  attach t txn;
  Hashtbl.find t.txns txn

let set_no_victim t txn = (info t txn).ti_no_victim <- true

let head_of t name =
  match Hashtbl.find_opt t.table name with
  | Some h -> h
  | None ->
      let h = { hd_holders = []; hd_waiters = Vec.create () } in
      Hashtbl.replace t.table name h;
      h

let holder_of head txn = List.find_opt (fun h -> h.h_txn = txn) head.hd_holders

let compatible_with_others head txn mode =
  List.for_all (fun h -> h.h_txn = txn || compatible h.h_mode mode) head.hd_holders

let record_held ti name = if not (List.mem name ti.ti_held) then ti.ti_held <- name :: ti.ti_held

(* Grant as many queued requests as strict FIFO permits. Conversions sit at
   the front of the queue (enqueue puts them there), giving them priority.
   An instant-duration grant leaves no holder state behind: it certifies
   that at this moment no conflicting lock was held, which is all the
   protocol uses it for. *)
let grant_loop t name head =
  let rec loop () =
    if not (Vec.is_empty head.hd_waiters) then begin
      let w = Vec.get head.hd_waiters 0 in
      let grantable =
        if w.wt_conversion then compatible_with_others head w.wt_txn w.wt_mode
        else List.for_all (fun h -> compatible h.h_mode w.wt_mode) head.hd_holders
      in
      if grantable then begin
        ignore (Vec.remove head.hd_waiters 0);
        let ti = info t w.wt_txn in
        ti.ti_waiting_on <- None;
        (if w.wt_duration <> Instant then
           match holder_of head w.wt_txn with
           | Some h ->
               h.h_mode <- supremum h.h_mode w.wt_mode;
               h.h_duration <- stronger_duration h.h_duration w.wt_duration
           | None ->
               head.hd_holders <-
                 { h_txn = w.wt_txn; h_mode = w.wt_mode; h_duration = w.wt_duration }
                 :: head.hd_holders;
               record_held ti name);
        (match w.wt_waker with
        | Some waker -> Sched.wake waker
        | None -> assert false (* enqueued inside suspend, waker always set *));
        loop ()
      end
    end
  in
  loop ()

(* Waits-for edges of a waiting transaction: the holders its target mode
   conflicts with, plus every waiter queued ahead of it (strict FIFO means
   those really are waited for). *)
let edges_of t txn =
  match (info t txn).ti_waiting_on with
  | None -> []
  | Some name -> (
      match Hashtbl.find_opt t.table name with
      | None -> []
      | Some head -> (
          match Vec.find_index (fun w -> w.wt_txn = txn) head.hd_waiters with
          | None -> []
          | Some pos ->
              let me = Vec.get head.hd_waiters pos in
              let holder_edges =
                List.filter_map
                  (fun h ->
                    if h.h_txn <> txn && not (compatible h.h_mode me.wt_mode) then Some h.h_txn
                    else None)
                  head.hd_holders
              in
              let ahead = ref [] in
              for i = 0 to pos - 1 do
                let w = Vec.get head.hd_waiters i in
                if w.wt_txn <> txn then ahead := w.wt_txn :: !ahead
              done;
              List.sort_uniq compare (holder_edges @ !ahead)))

(* DFS from [start] looking for a cycle through [start]; returns its nodes. *)
let find_cycle t start =
  let visited = Hashtbl.create 16 in
  let rec dfs path txn =
    if txn = start && path <> [] then Some path
    else if Hashtbl.mem visited txn then None
    else begin
      Hashtbl.replace visited txn ();
      let rec try_edges = function
        | [] -> None
        | next :: rest -> (
            match dfs (txn :: path) next with Some c -> Some c | None -> try_edges rest)
      in
      try_edges (edges_of t txn)
    end
  in
  dfs [] start

let remove_waiter head txn =
  match Vec.find_index (fun w -> w.wt_txn = txn) head.hd_waiters with
  | Some i -> ignore (Vec.remove head.hd_waiters i)
  | None -> ()

(* Abort the waiting transaction [victim]: dequeue it, deliver the
   exception at its suspension point, and re-run the grant loop on the
   queue it was blocking. *)
let abort_victim t victim =
  let ti = info t victim in
  match ti.ti_waiting_on with
  | None -> ()  (* raced with a grant; nothing to abort *)
  | Some name ->
      let head = head_of t name in
      if Trace.enabled () then Trace.emit (Trace.Deadlock_victim { txn = victim });
      (match Vec.find_index (fun w -> w.wt_txn = victim) head.hd_waiters with
      | Some i ->
          let w = Vec.remove head.hd_waiters i in
          ti.ti_waiting_on <- None;
          (match w.wt_waker with
          | Some waker -> Sched.abort waker (Deadlock_abort victim)
          | None -> assert false)
      | None -> ti.ti_waiting_on <- None);
      grant_loop t name head

(* Run detection from [txn] until no cycle through it remains. Returns
   [true] if [txn] itself was selected as the victim (the caller then
   cancels its own wait). *)
let resolve_deadlocks t txn =
  let rec loop () =
    match find_cycle t txn with
    | None -> false
    | Some cycle ->
        let members = List.sort_uniq compare (txn :: cycle) in
        (* The paper (§4): rolling-back transactions request no locks, so a
           no-victim transaction can never appear in a waits-for cycle under
           the protocol. Exempt them from selection anyway; a cycle made
           entirely of exempt transactions would be a protocol violation. *)
        let candidates = List.filter (fun m -> not (info t m).ti_no_victim) members in
        if candidates = [] then
          failwith "Lockmgr: waits-for cycle consists only of no-victim transactions";
        let victim =
          List.fold_left
            (fun best m -> if (info t m).ti_birth > (info t best).ti_birth then m else best)
            (List.hd candidates) (List.tl candidates)
        in
        Stats.incr Stats.lock_deadlocks;
        if victim = txn then true
        else begin
          abort_victim t victim;
          loop ()
        end
  in
  loop ()

(* Every waiting transaction with its wait-start step and waits-for edges —
   the per-shard slice the cross-shard detector unions into a global graph
   (local cycles are caught at request time by [resolve_deadlocks]; cycles
   spanning shards are invisible to any single table). *)
let waiting t =
  let out = ref [] in
  Hashtbl.iter
    (fun _ head ->
      Vec.iter
        (fun w -> out := (w.wt_txn, w.wt_since, edges_of t w.wt_txn) :: !out)
        head.hd_waiters)
    t.table;
  List.sort compare !out

let abort_waiter t ~txn =
  match (info t txn).ti_waiting_on with
  | None -> false
  | Some _ ->
      abort_victim t txn;
      true

let lock t ~txn ?(cond = false) name mode duration =
  let ti = info t txn in
  Stats.incr Stats.lock_requests;
  Stats.incr
    (Stats.lock_label ~mode:(mode_to_string mode) ~duration:(duration_to_string duration));
  let tr_name = lazy (name_to_string name) in
  let tr_mode = mode_to_string mode in
  let tr_duration = duration_to_string duration in
  if Trace.enabled () then
    Trace.emit
      (Trace.Lock_request
         { txn; name = Lazy.force tr_name; mode = tr_mode; duration = tr_duration; cond });
  let head = head_of t name in
  let grant_immediately () =
    match holder_of head txn with
    | Some h ->
        let target = supremum h.h_mode mode in
        if compatible_with_others head txn target then begin
          if duration <> Instant then begin
            h.h_mode <- target;
            h.h_duration <- stronger_duration h.h_duration duration
          end;
          true
        end
        else false
    | None ->
        if Vec.is_empty head.hd_waiters && compatible_with_others head txn mode then begin
          if duration <> Instant then begin
            head.hd_holders <- { h_txn = txn; h_mode = mode; h_duration = duration } :: head.hd_holders;
            record_held ti name
          end;
          true
        end
        else false
  in
  if grant_immediately () then begin
    if Trace.enabled () then
      Trace.emit
        (Trace.Lock_grant
           { txn; name = Lazy.force tr_name; mode = tr_mode; duration = tr_duration; waited = false });
    Granted
  end
  else if cond then begin
    if Trace.enabled () then
      Trace.emit (Trace.Lock_deny { txn; name = Lazy.force tr_name; mode = tr_mode });
    Denied
  end
  else begin
    Stats.incr Stats.lock_waits;
    (* R1 hazard point: emitted (and checked) {e before} we suspend, so a
       wait entered while holding a latch raises at the request site. *)
    if Trace.enabled () then
      Trace.emit (Trace.Lock_wait { txn; name = Lazy.force tr_name; mode = tr_mode });
    let conversion, target =
      match holder_of head txn with
      | Some h -> (true, supremum h.h_mode mode)
      | None -> (false, mode)
    in
    let waiter =
      {
        wt_txn = txn;
        wt_mode = target;
        wt_duration = duration;
        wt_conversion = conversion;
        wt_since = (try Sched.steps_now () with _ -> 0);
        wt_waker = None;
      }
    in
    let enqueue () =
      if conversion then begin
        (* conversions queue ahead of fresh requests, behind other conversions *)
        let pos = ref 0 in
        while
          !pos < Vec.length head.hd_waiters && (Vec.get head.hd_waiters !pos).wt_conversion
        do
          incr pos
        done;
        Vec.insert head.hd_waiters !pos waiter
      end
      else Vec.push head.hd_waiters waiter
    in
    try
      Sched.suspend (fun w ->
          waiter.wt_waker <- Some w;
          enqueue ();
          ti.ti_waiting_on <- Some name;
          if resolve_deadlocks t txn then begin
            (* we are the victim: cancel our own wait and raise at our own
               suspension point *)
            remove_waiter head txn;
            ti.ti_waiting_on <- None;
            Sched.abort w (Deadlock_abort txn);
            grant_loop t name head
          end);
      (* woken by the grant loop, which already installed holder state *)
      if Trace.enabled () then
        Trace.emit
          (Trace.Lock_grant
             { txn; name = Lazy.force tr_name; mode = tr_mode; duration = tr_duration; waited = true });
      Granted
    with Deadlock_abort v ->
      if v = txn then begin
        if Trace.enabled () then Trace.emit (Trace.Deadlock_victim { txn });
        Deadlock
      end
      else raise (Deadlock_abort v)
  end

let release t ~txn name =
  let ti = info t txn in
  let head = head_of t name in
  match holder_of head txn with
  | None -> invalid_arg (Printf.sprintf "Lockmgr.release: %s does not hold %s" (string_of_int txn) (name_to_string name))
  | Some h ->
      if h.h_duration = Commit then
        invalid_arg
          (Printf.sprintf "Lockmgr.release: %s on %s is commit-duration" (string_of_int txn)
             (name_to_string name));
      head.hd_holders <- List.filter (fun x -> x.h_txn <> txn) head.hd_holders;
      ti.ti_held <- List.filter (fun n -> n <> name) ti.ti_held;
      if Trace.enabled () then
        Trace.emit (Trace.Lock_release { txn; name = name_to_string name });
      grant_loop t name head

let release_manual t ~txn name =
  let head = head_of t name in
  match holder_of head txn with
  | Some h when h.h_duration = Manual ->
      head.hd_holders <- List.filter (fun x -> x.h_txn <> txn) head.hd_holders;
      let ti = info t txn in
      ti.ti_held <- List.filter (fun n -> n <> name) ti.ti_held;
      if Trace.enabled () then
        Trace.emit (Trace.Lock_release { txn; name = name_to_string name });
      grant_loop t name head;
      true
  | Some _ | None -> false

let downgrade t ~txn name mode =
  let head = head_of t name in
  match holder_of head txn with
  | None ->
      invalid_arg
        (Printf.sprintf "Lockmgr.downgrade: %d does not hold %s" txn (name_to_string name))
  | Some h ->
      h.h_mode <- mode;
      grant_loop t name head

let release_all t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | None -> ()
  | Some ti ->
      assert (ti.ti_waiting_on = None);
      if Trace.enabled () then Trace.emit (Trace.Lock_release_all { txn });
      List.iter
        (fun name ->
          let head = head_of t name in
          head.hd_holders <- List.filter (fun h -> h.h_txn <> txn) head.hd_holders;
          grant_loop t name head)
        ti.ti_held;
      Hashtbl.remove t.txns txn

let holds t ~txn name =
  match Hashtbl.find_opt t.table name with
  | None -> None
  | Some head -> ( match holder_of head txn with Some h -> Some h.h_mode | None -> None)

let holders t name =
  match Hashtbl.find_opt t.table name with
  | None -> []
  | Some head ->
      List.map (fun h -> (h.h_txn, h.h_mode)) head.hd_holders
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let waiter_count t name =
  match Hashtbl.find_opt t.table name with None -> 0 | Some head -> Vec.length head.hd_waiters

let held_count t ~txn =
  match Hashtbl.find_opt t.txns txn with None -> 0 | Some ti -> List.length ti.ti_held

(* Quiescence check for the simulation harness: a lock table with no
   holders and no waiters anywhere. Counts actual grant state (hd_holders),
   not the per-txn name cache, so stale cache entries cannot hide a leak. *)
let total_held t =
  Hashtbl.fold
    (fun _ head acc -> acc + List.length head.hd_holders + Vec.length head.hd_waiters)
    t.table 0

let held_locks t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | None -> []
  | Some ti ->
      List.filter_map
        (fun name ->
          match holder_of (head_of t name) txn with
          | Some h -> Some (name, h.h_mode)
          | None -> None)
        ti.ti_held
