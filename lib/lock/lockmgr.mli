(** The lock manager.

    Locks assure logical consistency (latches assure physical consistency).
    Supports the mode lattice IS/IX/S/SIX/X, the paper's durations
    (instant, commit, and manual for cursor-stability-style early release),
    conditional and unconditional requests, strict-FIFO queuing with
    conversion priority, and waits-for-graph deadlock detection with a
    youngest-victim policy.

    Lock names are the objects ARIES/IM locks: records (RIDs — data-only
    locking), key values (index-specific locking, ARIES/KVL, System R), the
    per-index EOF name used when the "next key" is past the last leaf, and
    coarse granules (table, page) for hierarchical locking. *)

open Aries_util

type mode = IS | IX | S | SIX | X

type duration =
  | Instant  (** granted then immediately released: a serialization touch-point *)
  | Manual  (** held until explicitly released (e.g. cursor stability) *)
  | Commit  (** held until end of transaction *)

type name =
  | Rid of Ids.rid  (** a record — the key lock under data-only locking *)
  | Key_value of Ids.index_id * string  (** index-specific / KVL / System R *)
  | Eof of Ids.index_id  (** the "next key" past the last leaf (§2.2) *)
  | Table of int
  | Page_lock of Ids.page_id
  | Tree_lock of Ids.index_id  (** tree lock for the §5 concurrent-SMO variant *)

type outcome =
  | Granted
  | Denied  (** conditional request was not immediately grantable *)
  | Deadlock  (** requester chosen as deadlock victim; it holds nothing new *)

exception Deadlock_abort of Ids.txn_id
(** Raised at the suspension point of a {e waiting} transaction chosen as
    victim by another transaction's deadlock search. *)

type t

val create : unit -> t

val attach : t -> Ids.txn_id -> unit
(** Register a transaction (birth order decides deadlock victims: youngest
    dies). Implied by the first lock request if omitted. *)

val set_no_victim : t -> Ids.txn_id -> unit
(** Exempt from victim selection. The paper guarantees rolling-back
    transactions never deadlock because they make no lock requests; the
    transaction layer marks them anyway and this module {e asserts} they
    never appear in a waits-for cycle. *)

val lock : t -> txn:Ids.txn_id -> ?cond:bool -> name -> mode -> duration -> outcome
(** Request a lock. Unconditional requests suspend the calling fiber until
    granted or until chosen as a deadlock victim. Conditional requests
    ([cond:true]) never suspend — they return [Denied] if the lock is not
    immediately grantable (incompatible holders {e or} a nonempty queue).

    Re-requests by a holder convert the held mode to the supremum; instant
    re-requests test grantability of the supremum without retaining it. *)

val release : t -> txn:Ids.txn_id -> name -> unit
(** Early release of a [Manual]-duration lock. Raises if held with [Commit]
    duration (commit-duration locks outlive the operation by design). *)

val release_manual : t -> txn:Ids.txn_id -> name -> bool
(** Release the lock only if it is held with [Manual] duration; returns
    whether it was released. Cursor stability uses this to drop the current
    key's lock when the cursor moves on, without touching locks the
    transaction holds for commit duration. *)

val downgrade : t -> txn:Ids.txn_id -> name -> mode -> unit
(** Replace the held mode with a weaker one (e.g. SIX back to IX after a
    temporary conversion) and re-run the grant loop. Raises if not held. *)

val release_all : t -> txn:Ids.txn_id -> unit
(** End of transaction: drop every lock and forget the transaction. *)

val holds : t -> txn:Ids.txn_id -> name -> mode option

val holders : t -> name -> (Ids.txn_id * mode) list

val waiter_count : t -> name -> int

val held_count : t -> txn:Ids.txn_id -> int
(** Number of distinct lock names currently held (retained, i.e. not
    instant) by the transaction. *)

val total_held : t -> int
(** Holders plus waiters across the whole lock table. 0 means the table is
    quiescent — no transaction holds or awaits any lock. The simulation
    harness asserts this after every workload and after every restart. *)

val held_locks : t -> txn:Ids.txn_id -> (name * mode) list
(** The retained locks of a transaction (unspecified order); used to build
    Prepare record bodies so restart can reacquire in-doubt locks. *)

val waiting : t -> (Ids.txn_id * int * Ids.txn_id list) list
(** Every waiting transaction as [(txn, wait-start step, blockers)] —
    blockers are its waits-for edges within this table (conflicting
    holders plus waiters queued ahead). Local cycles are broken at request
    time; a cross-shard detector unions these per-shard slices into a
    global graph, using the wait-start step for its timeout fallback. *)

val abort_waiter : t -> txn:Ids.txn_id -> bool
(** Abort a {e waiting} transaction from outside (cross-shard deadlock
    victim, lock-wait timeout, shard fail-stop): dequeue it and deliver
    {!Deadlock_abort} at its suspension point, exactly like a local
    deadlock victim. Returns [false] (and does nothing) if the transaction
    is not currently waiting — e.g. it raced with a grant. *)

val compatible : mode -> mode -> bool

val supremum : mode -> mode -> mode

val mode_to_string : mode -> string

val duration_to_string : duration -> string

val name_to_string : name -> string

val pp_name : Format.formatter -> name -> unit
