(** Background page cleaner: a scheduler-resident daemon that trickles
    dirty pages to disk under the WAL rule.

    A steal/no-force buffer manager accumulates dirty pages until eviction
    pressure (or a checkpoint) writes them, so the dirty-page table — and
    with it the restart-redo horizon, the oldest recLSN — can grow without
    bound between checkpoints. The cleaner bounds both: every
    [interval_steps] scheduler steps it writes up to [batch_pages] dirty
    unfixed frames, oldest recLSN first, via {!Bufpool.clean_some}. Each
    write forces the log to the page's page_lsn first (the WAL rule),
    synchronously — those forces are never batched or deferred through the
    group-commit queue.

    The daemon exits when [stop ()] or [Sched.shutting_down ()] becomes
    true; it never holds latches, fixes or locks across a yield, so it can
    die at any point (crash simulation) without leaking. *)

type cfg = {
  interval_steps : int;  (** scheduler steps between cleaning rounds *)
  batch_pages : int;  (** max pages written per round *)
}

val default_cfg : cfg
(** [{ interval_steps = 16; batch_pages = 2 }]. *)

val run_daemon : Bufpool.t -> cfg -> stop:(unit -> bool) -> unit
(** The daemon body (pass to [Sched.spawn_daemon]). *)
