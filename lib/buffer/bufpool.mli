(** Buffer manager: steal / no-force, with the write-ahead-logging rule.

    - {e steal}: a dirty page holding uncommitted updates may be written to
      disk at any time (eviction, or the randomized steal test hook), so
      restart undo is genuinely exercised.
    - {e no-force}: commit does not write data pages, only forces the log,
      so restart redo is genuinely exercised.
    - {e WAL rule}: before a page image is written to disk, the log is
      forced up to that page's [page_lsn].

    The pool tracks the dirty-page table (page id → recLSN, the LSN of the
    first update that dirtied the buffered copy) used by fuzzy checkpoints
    and the analysis pass. Pages with a positive fix count are never
    evicted; latching a page requires fixing it first. *)

open Aries_util

exception Page_vanished of Ids.page_id
(** [fix] on a page id with no disk image and no buffered frame. *)

type t

val create : ?capacity:int -> Aries_page.Disk.t -> Aries_wal.Logset.t -> t
(** [capacity] is the number of frames (default 128). Eviction is LRU over
    unfixed frames; if every frame is fixed the pool grows (and counts the
    overflow in stats rather than deadlocking). The WAL-rule force before a
    page write targets the page's routed stream only — all of a page's
    records live there. *)

val disk : t -> Aries_page.Disk.t

val id : t -> int
(** Process-unique pool id. Page ids are only unique within a pool, so
    multi-pool programs (a sharded Db runs one pool per shard) tag per-page
    trace events with this id to keep the discipline checker's per-page
    state from colliding across shards. *)

val page_size : t -> int

val fix : t -> Ids.page_id -> Aries_page.Page.t
(** Pin the page in the pool, reading it from disk on a miss. *)

val fix_opt : t -> Ids.page_id -> Aries_page.Page.t option

val fix_new : t -> Ids.page_id -> Aries_page.Page.content -> Aries_page.Page.t
(** Materialize a freshly allocated page directly in the pool (no disk
    read), pinned and clean-until-logged. *)

val unfix : t -> Aries_page.Page.t -> unit

val with_fix : t -> Ids.page_id -> (Aries_page.Page.t -> 'a) -> 'a

val mark_dirty : t -> Aries_page.Page.t -> Aries_wal.Lsn.t -> unit
(** Record that the page was modified by the log record at this LSN: sets
    the frame's recLSN if the page was clean. (The caller has already set
    [page_lsn].) Also triggers the randomized steal hook, if armed. *)

val flush_page : t -> Ids.page_id -> unit
(** Force log per WAL rule, write the image, mark clean. No-op if absent or
    clean. *)

val flush_all : t -> unit

val clean_some : t -> max_pages:int -> int
(** Background-cleaner trickle: write out up to [max_pages] dirty unfixed
    frames, oldest recLSN first (the frames that pin the restart-redo
    horizon furthest back), leaving them resident and clean. The WAL-rule
    force each write performs is synchronous — never routed through the
    group-commit queue. Returns the number of pages written. *)

val drop : t -> Ids.page_id -> unit
(** Discard the frame without writing (page deallocated). *)

val dirty_page_table : t -> (Ids.page_id * Aries_wal.Lsn.t) list
(** Snapshot for fuzzy checkpoints: (pid, recLSN), sorted by pid. *)

val dirty_page_chains : t -> (Ids.page_id * Aries_wal.Lsn.t list) list
(** Snapshot of each dirty page's log chain (every record LSN applied
    since the page became dirty, oldest first), sorted by pid — the same
    pages {!dirty_page_table} reports. Fuzzy checkpoints persist these so
    instant restart can repeat a pending page's history by direct record
    reads instead of a log scan per page. A page still in the
    instant-restart overlay reports its pending chain: the frame's own
    chain is the already-replayed prefix of it. *)

val resident_pids : t -> Ids.page_id list
(** Page ids currently buffered (any fix count), sorted. Post-restart
    discovery scans these in addition to the disk, because redo recreates
    never-flushed pages only in the pool. *)

val fixed_count : t -> int
(** Frames with a positive fix count — should be 0 between operations;
    tests assert this to catch fix leaks. *)

val latched_count : t -> int
(** Total latch holders across all buffered pages — should be 0 between
    operations; the simulation harness asserts this to catch latch leaks. *)

val crash : t -> unit
(** Drop every frame, written or not: the volatile state a system failure
    destroys. *)

val set_steal_hook : t -> seed:int -> probability:float -> unit
(** Arm the randomized steal: after each [mark_dirty], with the given
    probability, some unfixed dirty page is written to disk (respecting the
    WAL rule). Simulates an aggressive buffer replacement policy so crash
    tests cover uncommitted-data-on-disk states. *)

val clear_steal_hook : t -> unit

val set_repairer : t -> (Ids.page_id -> bool) -> unit
(** Install the automatic media-repair hook (PR 5). When a disk read fails
    its CRC or does not decode, the pool quarantines the page (counted in
    [Stats.disk_quarantines], traced as [Page_quarantined]) and calls the
    hook; if it returns [true] the read is retried against the healed
    image. [Db] installs [Media.auto_repair] here, so bit-rot and torn
    page images heal transparently on the next fix. A re-entrancy guard
    suppresses repair attempts triggered by the repairer's own page
    traffic — those surface as typed [Storage_error]s instead.

    Transient read/write errors are handled separately: up to 4 bounded
    retries with a one-scheduler-step backoff per attempt (counted in
    [Stats.disk_retries], traced as [Io_retry]); exhaustion raises
    [Storage_error.Error] with cause [Retry_exhausted]. *)

val set_redo_hook : t -> (Ids.page_id -> unit) -> unit
(** Install the instant-restart on-demand redo hook (PR 6), consulted at
    the top of every {!fix_opt}/{!fix}: while restart recovery is still
    draining, a fix of a page in the needs-redo set must trigger
    single-page redo before the (possibly stale) image is served. The hook
    is a no-op for pages not pending — including the redo roll-forward's
    own fix of the page being replayed, which the engine removes from the
    pending set before replaying. Cleared by {!clear_redo_hook} when the
    drain completes. *)

val clear_redo_hook : t -> unit

val set_restart_dpt : t -> (Ids.page_id * Aries_wal.Lsn.t * Aries_wal.Lsn.t list) list -> unit
(** Install instant restart's needs-redo set as an overlay on the
    dirty-page table: the listed pages have stale stable images even
    though no frame is resident, so {!dirty_page_table} (hence fuzzy
    checkpoints and the log-reclamation safety point) reports them —
    with the minimum recLSN when a page is both pending and frame-dirty
    (mid-replay) — until {!clear_restart_page} retires them one by one.
    Each entry also carries the page's not-yet-replayed log chain
    (oldest first), which {!dirty_page_chains} surfaces so a mid-drain
    checkpoint keeps covering the un-replayed suffix. Replaces any
    previous overlay; {!crash} drops it (volatile — the next restart's
    analysis rebuilds it). *)

val clear_restart_page : t -> Ids.page_id -> unit
(** The page's history has been fully repeated: stop overlaying it. *)

(** {2 Per-frame image cache (PR 9)}

    Every frame can hold the page's encoded on-disk image, tagged with the
    [page_lsn] at encode time. {!mark_dirty} drops it (counted in
    [Stats.bufpool_image_invalidations]); write-backs and {!page_image}
    probes reuse a valid cached image ([Stats.bufpool_image_hits]) instead
    of re-running the codec + CRC ([Stats.bufpool_image_misses]). The read
    path seeds the cache with the raw disk image, so a page read in and
    probed or written back unedited never encodes at all. *)

val page_image : t -> Ids.page_id -> bytes option
(** The current encoded image of a resident page, through the cache
    ([None] if the page is not buffered). The returned bytes are shared
    with the cache — callers must not mutate them. *)

val image_cache_stale : t -> int
(** Coherence audit ([Db.leak_report]): frames whose cached image tag no
    longer matches the page's [page_lsn] — the page advanced without
    [mark_dirty] invalidating, i.e. an unlogged mutation. Always 0 in a
    healthy quiesced system. *)
