open Aries_util
module Sched = Aries_sched.Sched

type cfg = { interval_steps : int; batch_pages : int }

let default_cfg = { interval_steps = 16; batch_pages = 2 }

let validate cfg =
  if cfg.interval_steps < 1 then invalid_arg "Cleaner: interval_steps must be >= 1";
  if cfg.batch_pages < 1 then invalid_arg "Cleaner: batch_pages must be >= 1"

let run_daemon pool cfg ~stop =
  validate cfg;
  (* die-on-crash: once a simulated power failure has tripped, the machine
     is dead — exit instead of busy-yielding against permanently-suspended
     fibers (which would keep the run queue nonempty forever). *)
  let stopping () = stop () || Sched.shutting_down () || Crashpoint.tripped () in
  let rec loop () =
    if not (stopping ()) then begin
      (* sleep [interval_steps] scheduler steps (cut short by shutdown) *)
      let t0 = Sched.steps_now () in
      while (not (stopping ())) && Sched.steps_now () - t0 < cfg.interval_steps do
        Sched.yield ()
      done;
      if not (stopping ()) then begin
        let n = Bufpool.clean_some pool ~max_pages:cfg.batch_pages in
        Stats.incr Stats.cleaner_rounds;
        if n > 0 then Stats.add Stats.cleaner_pages_written n;
        loop ()
      end
    end
  in
  loop ()
