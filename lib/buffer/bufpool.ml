open Aries_util
module Lsn = Aries_wal.Lsn
module Logmgr = Aries_wal.Logmgr
module Logset = Aries_wal.Logset
module Page = Aries_page.Page
module Disk = Aries_page.Disk
module Trace = Aries_trace.Trace
module Sched = Aries_sched.Sched

exception Page_vanished of Ids.page_id

type frame = {
  page : Page.t;
  mutable fix_count : int;
  mutable dirty : bool;
  mutable rec_lsn : Lsn.t;  (* meaningful iff dirty *)
  mutable chain : Lsn.t list;
      (* the page's log chain since it became dirty, newest first: every
         record LSN applied to the frame. Checkpoints persist it so instant
         restart can repeat a page's history by direct record reads instead
         of scanning the log once per pending page. Cleared on write-out:
         records at or below a flushed image's page_lsn are never redone. *)
  mutable last_use : int;  (* LRU clock *)
  mutable image : bytes option;
      (* cached encoded image of the page, tagged with [image_lsn] — the
         page_lsn at encode time. Valid iff the tag still matches (belt)
         and no edit invalidated it ([mark_dirty] clears it, suspenders).
         Lets a write-back or image probe of an unedited page skip the
         codec and its CRC entirely. *)
  mutable image_lsn : Lsn.t;
}

type t = {
  id : int;  (* process-unique; disambiguates pools (shards) in trace events *)
  dsk : Disk.t;
  logs : Logset.t;
  capacity : int;
  frames : (Ids.page_id, frame) Hashtbl.t;
  enc : Bytebuf.W.t;  (* shared page-size-hinted encode arena *)
  mutable tick : int;
  mutable steal_rng : Rng.t option;
  mutable steal_probability : float;
  mutable repairer : (Ids.page_id -> bool) option;
  mutable repairing : bool;  (* re-entrancy guard: no repair inside a repair *)
  mutable redo_hook : (Ids.page_id -> unit) option;
  (* instant restart's needs-redo set, overlaid on the dirty-page table:
     pages whose stable image is stale but whose frames are not (yet)
     resident, each with its recLSN and not-yet-replayed log chain.
     Checkpoints and the log-reclamation safety point must keep covering
     them until their history has been repeated. *)
  restart_dpt : (Ids.page_id, Lsn.t * Lsn.t list) Hashtbl.t;
}

let next_id = ref 0

let create ?(capacity = 128) dsk logs =
  incr next_id;
  {
    id = !next_id;
    dsk;
    logs;
    capacity;
    frames = Hashtbl.create 64;
    enc = Bytebuf.W.create ~size:(Disk.page_size dsk + 16) ();
    tick = 0;
    steal_rng = None;
    steal_probability = 0.0;
    repairer = None;
    repairing = false;
    redo_hook = None;
    restart_dpt = Hashtbl.create 8;
  }

let disk t = t.dsk

let id t = t.id

let page_size t = Disk.page_size t.dsk

let touch t f =
  t.tick <- t.tick + 1;
  f.last_use <- t.tick

(* Bounded retry with deterministic backoff for transient I/O errors: inside
   a fiber each retry yields a scheduler step first, so the retry happens
   later in simulated time and a transient-EIO storm can pass; outside a
   fiber retries are immediate. Exhaustion surfaces as a typed
   [Storage_error] with cause [Retry_exhausted] — never a silent drop. *)
let max_io_retries = 4

let retrying ~pid ~target f =
  let rec go attempt =
    try f () with
    | Storage_error.Error { cause = Storage_error.Io_transient; _ } ->
        if attempt >= max_io_retries then
          Storage_error.raise_err ~pid Storage_error.Retry_exhausted
            "%s on page %d still failing after %d retries" target pid attempt;
        Stats.incr Stats.disk_retries;
        if Trace.enabled () then
          Trace.emit (Trace.Io_retry { target; pid; attempt = attempt + 1 });
        if Sched.in_fiber () then Sched.yield ();
        go (attempt + 1)
  in
  go 0

(* The per-frame image cache choke point: a frame whose page has not been
   edited since its last encode reuses the cached image. Misses encode
   through the pool's shared arena (no per-write buffer) and refresh the
   cache, so e.g. the transient-EIO retry loop re-encodes at most once. *)
let frame_image t f =
  match f.image with
  | Some img when Lsn.compare f.image_lsn f.page.Page.page_lsn = 0 ->
      Stats.incr Stats.bufpool_image_hits;
      img
  | Some _ | None ->
      Stats.incr Stats.bufpool_image_misses;
      let img = Page.encode_into t.enc f.page in
      f.image <- Some img;
      f.image_lsn <- f.page.Page.page_lsn;
      img

let invalidate_image f =
  match f.image with
  | None -> ()
  | Some _ ->
      f.image <- None;
      f.image_lsn <- Lsn.nil;
      Stats.incr Stats.bufpool_image_invalidations

let write_frame t f =
  let pid = f.page.Page.pid in
  retrying ~pid ~target:"page-write" (fun () ->
      (* A crash point of its own: the instant between the eviction decision
         and the WAL force (Logmgr/Disk add finer points inside). *)
      Crashpoint.hit "bufpool.write";
      (* WAL rule, per stream: all of a page's records live on its routed
         stream, so forcing *that* stream to the page's [page_lsn] covers
         every record the image reflects — no other stream needs forcing.
         Re-run on every retry attempt: a backoff yield may have let
         another fiber advance the page, and the force must cover whatever
         [page_lsn] the write will capture. *)
      let wal = Logset.page_stream t.logs pid in
      Logmgr.flush_to wal f.page.Page.page_lsn;
      (* R5 hazard point: emitted after the covering force and before the
         disk write, so a page image racing past the flushed boundary (e.g.
         under the skip-flush fault) raises here, not after the damage. *)
      (if Trace.enabled () then
         let page_lsn = f.page.Page.page_lsn in
         let lsn_end = if Lsn.is_nil page_lsn then 0 else Logmgr.record_end wal page_lsn in
         Trace.emit
           (Trace.Page_write
              {
                log = Logmgr.id wal;
                pid = f.page.Page.pid;
                page_lsn;
                lsn_end;
                (* the dirty-table recLSN at write time: rule R6 checks it
                   never falls inside a reclaimed log segment *)
                rec_lsn = f.rec_lsn;
              }));
      Disk.write_image t.dsk pid (frame_image t f));
  f.dirty <- false;
  f.rec_lsn <- Lsn.nil;
  f.chain <- []

let evict_one t =
  (* LRU over unfixed frames *)
  let victim =
    Hashtbl.fold
      (fun _ f best ->
        if f.fix_count > 0 then best
        else
          match best with
          | Some b when b.last_use <= f.last_use -> best
          | _ -> Some f)
      t.frames None
  in
  match victim with
  | None -> Stats.incr "bufpool.overflow"  (* all frames fixed: let the pool grow *)
  | Some f ->
      if f.dirty then begin
        Stats.incr "bufpool.evict_dirty";
        write_frame t f
      end
      else Stats.incr "bufpool.evict_clean";
      Hashtbl.remove t.frames f.page.Page.pid

let make_room t = if Hashtbl.length t.frames >= t.capacity then evict_one t

let install ?image t page =
  make_room t;
  let f =
    {
      page;
      fix_count = 1;
      dirty = false;
      rec_lsn = Lsn.nil;
      chain = [];
      last_use = 0;
      (* seed the cache from the raw disk image when the read path has
         one: a page read in and written back unedited never re-encodes *)
      image;
      image_lsn = (match image with Some _ -> page.Page.page_lsn | None -> Lsn.nil);
    }
  in
  touch t f;
  Hashtbl.replace t.frames page.Page.pid f;
  f

(* Read a page image from disk: transient errors are retried (bounded, with
   backoff); a CRC / decode failure quarantines the page and invokes the
   repairer hook (installed by [Db]: automatic media recovery from the log
   archive), then re-reads the healed image. The [repairing] guard keeps the
   repairer's own page traffic from recursing into another repair. *)
let read_page t pid =
  let read () = retrying ~pid ~target:"page-read" (fun () -> Disk.read_with_image t.dsk pid) in
  try read () with
  | Storage_error.Error
      { cause = Storage_error.Checksum | Storage_error.Decode; detail; _ } as e -> (
      match t.repairer with
      | Some repair when not t.repairing ->
          Stats.incr Stats.disk_quarantines;
          if Trace.enabled () then Trace.emit (Trace.Page_quarantined { pid; cause = detail });
          t.repairing <- true;
          let healed =
            Fun.protect ~finally:(fun () -> t.repairing <- false) (fun () -> repair pid)
          in
          if healed then read () else raise e
      | Some _ | None -> raise e)

let fix_opt t pid =
  (* Instant-restart interlock: while recovery is still draining, a page in
     the needs-redo set must have its history repeated before anyone sees
     it. The hook (installed by the restart engine) redoes exactly this
     page on demand and is a no-op for pages not (or no longer) pending —
     including the redo roll-forward's own fix of the same page, which the
     engine de-pends before replaying. *)
  (match t.redo_hook with None -> () | Some h -> h pid);
  Stats.incr Stats.page_fixes;
  let r =
    match Hashtbl.find_opt t.frames pid with
    | Some f ->
        f.fix_count <- f.fix_count + 1;
        touch t f;
        Some f.page
    | None -> (
        match read_page t pid with
        | Some (page, image) -> Some (install ~image t page).page
        | None -> None)
  in
  if r <> None && Trace.enabled () then Trace.emit (Trace.Page_fix { pool = t.id; pid });
  r

let fix t pid = match fix_opt t pid with Some p -> p | None -> raise (Page_vanished pid)

let fix_new t pid content =
  Stats.incr Stats.page_fixes;
  assert (not (Hashtbl.mem t.frames pid));
  let page = Page.create ~psize:(page_size t) ~pid content in
  if Trace.enabled () then Trace.emit (Trace.Page_fix { pool = t.id; pid });
  (install t page).page

let frame_of t page =
  match Hashtbl.find_opt t.frames page.Page.pid with
  | Some f when f.page == page -> f
  | Some _ | None ->
      invalid_arg (Printf.sprintf "Bufpool: page %d is not a pool resident" page.Page.pid)

let unfix t page =
  let f = frame_of t page in
  if f.fix_count <= 0 then invalid_arg (Printf.sprintf "Bufpool: unfix of unfixed page %d" page.Page.pid);
  f.fix_count <- f.fix_count - 1;
  if Trace.enabled () then Trace.emit (Trace.Page_unfix { pid = page.Page.pid })

let with_fix t pid fn =
  let p = fix t pid in
  Fun.protect ~finally:(fun () -> unfix t p) (fun () -> fn p)

let steal_some t =
  match t.steal_rng with
  | None -> ()
  | Some rng ->
      if Rng.float rng 1.0 < t.steal_probability then begin
        let dirty_unfixed =
          Hashtbl.fold (fun _ f acc -> if f.dirty && f.fix_count = 0 then f :: acc else acc) t.frames []
          |> List.sort (fun a b -> compare a.page.Page.pid b.page.Page.pid)
        in
        match dirty_unfixed with
        | [] -> ()
        | fs ->
            let f = List.nth fs (Rng.int rng (List.length fs)) in
            Stats.incr "bufpool.stolen";
            write_frame t f
      end

let mark_dirty t page lsn =
  let f = frame_of t page in
  invalidate_image f;
  if not f.dirty then begin
    f.dirty <- true;
    f.rec_lsn <- lsn;
    f.chain <- [ lsn ]
  end
  else if (match f.chain with l :: _ -> Lsn.compare l lsn <> 0 | [] -> true) then
    f.chain <- lsn :: f.chain;
  steal_some t

let flush_page t pid =
  match Hashtbl.find_opt t.frames pid with
  | Some f when f.dirty -> write_frame t f
  | Some _ | None -> ()

(* Trickle path for the background page cleaner: write out up to
   [max_pages] dirty, unfixed frames, oldest recLSN first — the frames that
   pin the restart-redo horizon furthest back. Each write goes through
   [write_frame], so the WAL rule (force the log to the page's page_lsn
   first) holds and that force is synchronous — never batched or deferred
   through the group-commit queue. Frames stay resident; only their dirty
   bit is cleared. Returns the number of pages written. *)
let clean_some t ~max_pages =
  if max_pages <= 0 then 0
  else begin
    let dirty_unfixed =
      Hashtbl.fold
        (fun _ f acc -> if f.dirty && f.fix_count = 0 then f :: acc else acc)
        t.frames []
      |> List.sort (fun a b ->
             match Lsn.compare a.rec_lsn b.rec_lsn with
             | 0 -> compare a.page.Page.pid b.page.Page.pid
             | c -> c)
    in
    let written = ref 0 in
    List.iter
      (fun f ->
        if !written < max_pages && f.dirty && f.fix_count = 0 then begin
          write_frame t f;
          incr written
        end)
      dirty_unfixed;
    !written
  end

let flush_all t =
  Hashtbl.fold (fun pid f acc -> if f.dirty then (pid, f) :: acc else acc) t.frames []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (_, f) -> write_frame t f)

let drop t pid = Hashtbl.remove t.frames pid

let dirty_page_table t =
  let acc : (Ids.page_id, Lsn.t) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter (fun pid f -> if f.dirty then Hashtbl.replace acc pid f.rec_lsn) t.frames;
  (* overlay the instant-restart needs-redo set: a page mid-replay can be
     both frame-dirty (records applied so far) and still pending (suffix
     not yet applied) — the older recLSN is the one that must survive *)
  Hashtbl.iter
    (fun pid (rec_lsn, _) ->
      match Hashtbl.find_opt acc pid with
      | Some cur -> Hashtbl.replace acc pid (Lsn.min cur rec_lsn)
      | None -> Hashtbl.replace acc pid rec_lsn)
    t.restart_dpt;
  Hashtbl.fold (fun pid rec_lsn l -> (pid, rec_lsn) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let resident_pids t =
  Hashtbl.fold (fun pid _ acc -> pid :: acc) t.frames [] |> List.sort compare

let fixed_count t = Hashtbl.fold (fun _ f acc -> if f.fix_count > 0 then acc + 1 else acc) t.frames 0

let latched_count t =
  Hashtbl.fold
    (fun _ f acc -> acc + Aries_sched.Latch.holder_count f.page.Page.latch)
    t.frames 0

let crash t =
  Hashtbl.reset t.frames;
  Hashtbl.reset t.restart_dpt;
  t.redo_hook <- None

let set_steal_hook t ~seed ~probability =
  t.steal_rng <- Some (Rng.create seed);
  t.steal_probability <- probability

let clear_steal_hook t =
  t.steal_rng <- None;
  t.steal_probability <- 0.0

let set_repairer t f = t.repairer <- Some f

let set_redo_hook t f = t.redo_hook <- Some f

let clear_redo_hook t = t.redo_hook <- None

let set_restart_dpt t entries =
  Hashtbl.reset t.restart_dpt;
  List.iter (fun (pid, rec_lsn, chain) -> Hashtbl.replace t.restart_dpt pid (rec_lsn, chain)) entries

(* Per-page log chains for fuzzy checkpoints, oldest record first. A page
   both pending and frame-dirty (mid-replay) reports the pending chain: the
   frame's chain is the already-replayed prefix of it, and the suffix must
   survive into the checkpoint. *)
let dirty_page_chains t =
  let acc : (Ids.page_id, Lsn.t list) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter (fun pid f -> if f.dirty then Hashtbl.replace acc pid (List.rev f.chain)) t.frames;
  (* a restart-DPT page with no known chain (history fell back to a log
     scan) must stay absent: an empty chain would claim false completeness
     at a checkpoint taken mid-drain *)
  Hashtbl.iter
    (fun pid (_, chain) ->
      if chain = [] then Hashtbl.remove acc pid else Hashtbl.replace acc pid chain)
    t.restart_dpt;
  Hashtbl.fold (fun pid chain l -> (pid, chain) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let clear_restart_page t pid = Hashtbl.remove t.restart_dpt pid

let page_image t pid =
  match Hashtbl.find_opt t.frames pid with
  | None -> None
  | Some f -> Some (frame_image t f)

(* Cache-coherence audit for [Db.leak_report]: a cached image whose tag no
   longer matches its page's [page_lsn] means the page advanced without
   [mark_dirty] dropping the cache — an unlogged-mutation bug. Always 0 in
   a quiesced, healthy system. *)
let image_cache_stale t =
  Hashtbl.fold
    (fun _ f acc ->
      match f.image with
      | Some _ when Lsn.compare f.image_lsn f.page.Page.page_lsn <> 0 -> acc + 1
      | Some _ | None -> acc)
    t.frames 0
