open Aries_util
module Trace = Aries_trace.Trace

(* Log address space: offset [first_offset] is the first record ever
   written; each record is framed as [u32 length][payload][u32 crc] (see
   Logrec.frame). The LSN of a record is the offset of its frame header,
   so LSNs are strictly monotonic and [Lsn.nil] (= 0) is below every
   record. The per-record CRC is what makes the restart {e tail scan}
   possible: instead of trusting the recorded stable boundary, recovery
   walks frames from the active segment's base and the log ends at the
   last record whose CRC verifies — a torn append or garbage tail is
   truncated (traced as [log.tail-truncated]), never decoded.

   The store is a chain of fixed-size *segments*, oldest first. A record is
   never split: appends go to the unique unsealed tail segment (the
   "active" one), and once that segment's length reaches the size budget it
   is sealed and a fresh segment opens at the current end offset — so every
   segment boundary is a record boundary, and a segment is addressed by the
   absolute offset of its first byte ([seg_base]). LSNs keep their global
   byte-offset meaning: a record at LSN [l] lives in the segment with
   [seg_base <= l < seg_base + length].

   Log-space reclamation ([truncate_prefix]) drops whole sealed,
   fully-stable segments below a caller-supplied safety offset, handing
   each to the archive sink (media recovery replays from the archive). The
   log's [start] is therefore always the base of the oldest retained
   segment; reads below it raise. *)
let first_offset = 8

let default_segment_size = 65536

type segment = {
  seg_base : int;  (* absolute offset of the segment's first byte *)
  seg_data : Bytebuf.W.t;
      (* an arena writer, not a [Buffer.t]: frame reads, CRC checks and the
         tail scan work zero-copy against the backing bytes instead of
         [Buffer.sub]-copying every header/payload out *)
  mutable seg_sealed : bool;
  mutable seg_records : int;
}

type archived = {
  arch_base : int;
  arch_len : int;
  arch_data : string;
  arch_records : int;
  arch_crc : int;  (* sealed-segment footer: CRC32 of [arch_data] *)
}

type t = {
  id : int;  (* distinguishes log instances for the protocol tracer *)
  segment_size : int;
  mutable sealed : segment list;  (* oldest first *)
  mutable active : segment;  (* the unique unsealed tail segment *)
  mutable flushed : int;  (* absolute offset; everything below is stable *)
  mutable last : Lsn.t;
  mutable last_stable : Lsn.t;  (* largest LSN known stable *)
  mutable master_lsn : Lsn.t;
  mutable count : int;
  mutable archive_sink : (archived -> unit) option;
  enc : Bytebuf.W.t;
      (* per-log record-encode arena, reused across appends — the append
         hot path allocates nothing per record *)
}

let next_id = ref 0

let fresh_segment base =
  { seg_base = base; seg_data = Bytebuf.W.create ~size:1024 (); seg_sealed = false; seg_records = 0 }

let create ?(segment_size = default_segment_size) () =
  if segment_size < 64 then invalid_arg "Logmgr.create: segment_size must be >= 64";
  incr next_id;
  let t =
    {
      id = !next_id;
      segment_size;
      sealed = [];
      active = fresh_segment first_offset;
      flushed = first_offset;
      last = Lsn.nil;
      last_stable = Lsn.nil;
      master_lsn = Lsn.nil;
      count = 0;
      archive_sink = None;
      enc = Bytebuf.W.create ~size:256 ();
    }
  in
  (* Baseline the tracer's flushed boundary for this log instance; the
     discipline checker refuses to judge R4/R5 against a log it has no
     baseline for. *)
  if Trace.enabled () then Trace.emit (Trace.Log_open { log = t.id; flushed = t.flushed });
  t

let id t = t.id

let segment_size t = t.segment_size

let seg_len s = Bytebuf.W.length s.seg_data

let seg_end s = s.seg_base + seg_len s

let all_segments t = t.sealed @ [ t.active ]

let start t = match t.sealed with s :: _ -> s.seg_base | [] -> t.active.seg_base

let end_offset t = seg_end t.active

let start_lsn t = if end_offset t = start t then Lsn.nil else start t

let start_offset t = start t

let segment_count t = List.length t.sealed + 1

let segments_info t = List.map (fun s -> (s.seg_base, seg_len s, s.seg_sealed)) (all_segments t)

let first_segment_end t = match t.sealed with s :: _ -> seg_end s | [] -> seg_end t.active

let set_archive_sink t f = t.archive_sink <- Some f

let find_segment t off =
  let rec go = function
    | [] ->
        if off >= t.active.seg_base && off < seg_end t.active then t.active
        else
          invalid_arg
            (Printf.sprintf "Logmgr: offset %d out of range [%d,%d) (truncated or unwritten)" off
               (start t) (end_offset t))
    | s :: rest -> if off >= s.seg_base && off < seg_end s then s else go rest
  in
  go t.sealed

let append t rec_ =
  Crashpoint.hit "wal.append";
  let lsn = end_offset t in
  (* Encode into the per-log arena (reused across appends; reuse without
     regrowth is counted), then frame straight into the segment arena:
     the length prefix, one blit of the payload with its CRC computed
     over the freshly written bytes in the same region, and the CRC
     trailer — no intermediate payload or frame buffer. Byte layout is
     unchanged: [u32 len][payload][u32 crc32(payload)]. *)
  let cap0 = Bytebuf.W.capacity t.enc in
  Logrec.encode_into t.enc { rec_ with lsn };
  if Bytebuf.W.capacity t.enc = cap0 then Stats.incr Stats.wal_encode_arena_reuses;
  let n = Bytebuf.W.length t.enc in
  let seg = t.active.seg_data in
  Bytebuf.W.u32 seg n;
  let crc = Bytebuf.W.append_with_crc seg t.enc in
  Bytebuf.W.u32 seg crc;
  t.active.seg_records <- t.active.seg_records + 1;
  t.last <- lsn;
  t.count <- t.count + 1;
  Stats.incr Stats.log_records;
  Stats.add Stats.log_bytes (Logrec.frame_overhead + n);
  if Trace.enabled () then
    Trace.emit
      (Trace.Log_append
         {
           log = t.id;
           lsn;
           next = end_offset t;
           kind = Logrec.kind_to_string rec_.Logrec.kind;
           txn = rec_.Logrec.txn;
         });
  (* Seal on reaching the size budget: the boundary lands on a record
     boundary by construction (records are never split). *)
  if seg_len t.active >= t.segment_size then begin
    let s = t.active in
    s.seg_sealed <- true;
    t.sealed <- t.sealed @ [ s ];
    t.active <- fresh_segment (seg_end s);
    Stats.incr Stats.log_seals;
    if Trace.enabled () then
      Trace.emit (Trace.Log_seal { log = t.id; base = s.seg_base; len = seg_len s })
  end;
  lsn

(* The single instrumented choke point every log force goes through —
   [flush], [flush_to], and hence the group-commit daemon and the WAL rule.
   [upto] is the absolute end offset to make stable; [stable_lsn] the LSN of
   the last record that offset covers. The per-segment stable boundary is
   derived: segment [s] is stable below [min (seg_end s) flushed].

   The [fault_wal_skip_flush] switch silently drops log forces: commits and
   the WAL rule stop being durable. It exists so the simulation harness can
   prove it detects a broken implementation (see Aries_sim.Sim). *)
let max_force_retries = 6

let force t ~upto ~stable_lsn =
  if upto > t.flushed && not (Crashpoint.fault_active Crashpoint.fault_wal_skip_flush) then begin
    (* Bounded retry against injected transient I/O errors.  The retries
       are immediate and deterministic (the force is the synchronous
       choke point — there is nothing to yield to mid-force); exhaustion
       must RAISE, never silently succeed, so the commit path cannot ack
       a batch whose covering force failed. *)
    let attempt = ref 0 in
    while Faultdisk.fail_force () do
      incr attempt;
      Stats.incr Stats.disk_eio_injected;
      if !attempt > max_force_retries then
        Storage_error.raise_err ~lsn:stable_lsn Storage_error.Retry_exhausted
          "log force to offset %d failed after %d transient I/O errors" upto !attempt;
      Stats.incr Stats.disk_retries;
      if Trace.enabled () then
        Trace.emit (Trace.Io_retry { target = "log-force"; pid = 0; attempt = !attempt })
    done;
    Crashpoint.hit "wal.flush";
    t.flushed <- upto;
    t.last_stable <- stable_lsn;
    Stats.incr Stats.log_forces;
    if Trace.enabled () then Trace.emit (Trace.Log_force { log = t.id; upto; stable_lsn })
  end

let flush t = force t ~upto:(end_offset t) ~stable_lsn:t.last

let frame_len t off =
  let s = find_segment t off in
  Bytebuf.W.get_u32 s.seg_data (off - s.seg_base)

let read t lsn =
  if lsn < start t || lsn >= end_offset t then
    invalid_arg
      (Printf.sprintf "Logmgr.read: LSN %d out of range [%d,%d) (truncated or unwritten)" lsn
         (start t) (end_offset t));
  let s = find_segment t lsn in
  let len = frame_len t lsn in
  let rel = lsn - s.seg_base in
  (if Faultdisk.crc_checks_enabled () then begin
     (* CRC the payload in place over the segment arena — the old path
        [Buffer.sub]-copied the payload (and the trailer) out first *)
     let stored = Bytebuf.W.get_u32 s.seg_data (rel + 4 + len) in
     if Bytebuf.W.crc ~off:(rel + 4) ~len s.seg_data <> stored then
       Storage_error.raise_err ~lsn Storage_error.Checksum
         "log record frame CRC mismatch (%dB payload)" len
   end);
  let r = Bytebuf.R.of_substring (Bytebuf.W.unsafe_view s.seg_data) ~off:(rel + 4) ~len in
  try Logrec.decode_from ~lsn r
  with Bytebuf.Corrupt msg -> raise (Storage_error.of_corrupt ~lsn ("log record: " ^ msg))

let record_end t lsn =
  (* A record below the log start was reclaimed by truncation, and
     truncation never passes the flushed boundary — so any boundary
     >= start covers it. Clamping (instead of probing the reclaimed
     segment and failing) keeps pageLSN-driven callers sound when a
     page's last update is archived: media repair flushes a rebuilt page
     whose roll-forward ended on an archived record. *)
  if lsn < start t then start t else lsn + Logrec.frame_overhead + frame_len t lsn

let flush_to t lsn =
  if Lsn.is_nil lsn || lsn < start t then ()
  else force t ~upto:(record_end t lsn) ~stable_lsn:lsn

let flushed_lsn t = t.last_stable

let flushed_offset t = t.flushed

let last_lsn t = t.last

let is_stable t lsn = (not (Lsn.is_nil lsn)) && record_end t lsn <= t.flushed

let next_lsn t lsn =
  let e = record_end t lsn in
  if e < end_offset t then Some e else None

let iter_from t lsn f =
  let from = if Lsn.is_nil lsn then start t else max lsn (start t) in
  let rec loop off =
    if off < end_offset t then begin
      f (read t off);
      loop (record_end t off)
    end
  in
  loop from

let set_master t lsn = t.master_lsn <- lsn

let master t = t.master_lsn

let recount t =
  let n = ref 0 in
  iter_from t Lsn.nil (fun _ -> incr n);
  t.count <- !n

(* Structural + CRC validity of the frame at absolute offset [off] in
   segment [s]. Used by the restart tail scan: a partial frame (torn
   append) fails the length checks even with CRC verification disabled;
   bit-rot inside a complete frame is what the CRC catches. *)
let frame_ok s off =
  let rel = off - s.seg_base in
  let avail = seg_len s - rel in
  if avail < 4 then false
  else
    let len = Bytebuf.W.get_u32 s.seg_data rel in
    if len < 1 || avail < Logrec.frame_overhead + len then false
    else if Faultdisk.crc_checks_enabled () then
      Bytebuf.W.crc ~off:(rel + 4) ~len s.seg_data = Bytebuf.W.get_u32 s.seg_data (rel + 4 + len)
    else true

(* CRC-guarded tail scan over the active (unsealed) segment: the log ends
   at the last record whose frame verifies; anything after — a torn
   append, garbage the medium kept past the flushed boundary — is
   truncated with a traced [log.tail-truncated] event. This is how ARIES
   finds the end of log at restart; the recorded boundary is only a
   hint. *)
let tail_scan t =
  let s = t.active in
  let rec go off = if off < seg_end s && frame_ok s off then go (record_end t off) else off in
  let valid_end = go s.seg_base in
  if valid_end < seg_end s then begin
    let cut = seg_end s - valid_end in
    Bytebuf.W.truncate s.seg_data (valid_end - s.seg_base);
    Stats.incr Stats.log_tail_truncations;
    Stats.add Stats.log_tail_truncated_bytes cut;
    if Trace.enabled () then
      Trace.emit (Trace.Log_tail_truncated { log = t.id; at = valid_end; bytes = cut })
  end

(* LSN of the last record, recomputed by walking frames (used after a
   crash/load, when the recorded value cannot be trusted past a tail
   truncation). *)
let compute_last t =
  let last = ref Lsn.nil in
  List.iter
    (fun s ->
      let rec loop off =
        if off < seg_end s then begin
          last := off;
          loop (record_end t off)
        end
      in
      loop s.seg_base)
    (all_segments t);
  !last

(* The full unflushed suffix — every byte above the stable boundary,
   concatenated across the straddling segment and any in-memory-sealed
   segments after it. Offsets stay meaningful because consecutive segment
   bases are contiguous. *)
let unflushed_suffix t =
  if t.flushed >= end_offset t then ""
  else
    let b = Buffer.create 256 in
    List.iter
      (fun s ->
        if seg_end s > t.flushed then begin
          let from = max 0 (t.flushed - s.seg_base) in
          Buffer.add_string b (Bytebuf.W.sub_string s.seg_data from (seg_len s - from))
        end)
      (all_segments t);
    Buffer.contents b

(* Number of complete frames at the head of [suffix] and the byte length of
   the first [k] of them. *)
let count_frames suffix =
  let n = String.length suffix in
  let rec go off acc =
    if off + 4 > n then List.rev acc
    else
      let len = Int32.to_int (String.get_int32_le suffix off) land 0xFFFFFFFF in
      let total = Logrec.frame_overhead + len in
      if len < 1 || off + total > n then List.rev acc else go (off + total) ((off + total) :: acc)
  in
  go 0 []

let crash ?(retain = fun _ -> 0) t =
  (* Two ways the medium can keep in-flight tail bytes past the recorded
     stable boundary, both legal (written but never acked):

     - [retain]: the per-stream flush-order shuffle. The crash may have
       persisted some number of {e complete} frames beyond the boundary —
       on one stream everything, on another nothing — which is exactly the
       cross-stream adversary the epoch fence must survive. [retain] maps
       the number of complete unflushed frames to how many survive.

     - the torn-append fault: a prefix of the {e next} record's bytes
       lands, leaving a torn frame the tail scan must cut. *)
  let suffix = unflushed_suffix t in
  let frame_ends = count_frames suffix in
  let kept_frames = min (max 0 (retain (List.length frame_ends))) (List.length frame_ends) in
  let kept_len = if kept_frames = 0 then 0 else List.nth frame_ends (kept_frames - 1) in
  let torn_tail =
    if kept_frames > 0 || (Faultdisk.torn_append_on () && t.flushed < end_offset t) then begin
      let s = find_segment t t.flushed in
      let avail = seg_end s - t.flushed in
      (* torn remainder: the historical capture window (half the straddling
         segment's unflushed bytes) past whatever complete frames survive *)
      let torn =
        if Faultdisk.torn_append_on () && avail > kept_len then max 1 ((avail - kept_len) / 2)
        else 0
      in
      let keep = min (kept_len + torn) (String.length suffix) in
      if keep = 0 then None else Some (String.sub suffix 0 keep)
    end
    else None
  in
  (* Stable state per segment: drop segments entirely above the flushed
     boundary, trim the one straddling it (which re-opens as the active
     segment — its tail was never sealed durably), keep the rest intact. *)
  let kept = List.filter (fun s -> s.seg_base < t.flushed) (all_segments t) in
  let kept =
    match kept with
    | [] -> [ fresh_segment t.flushed ]  (* flushed = start: nothing stable *)
    | _ ->
        List.iter
          (fun s ->
            if seg_end s > t.flushed then begin
              Bytebuf.W.truncate s.seg_data (t.flushed - s.seg_base);
              s.seg_sealed <- false
            end)
          kept;
        kept
  in
  (* the last kept segment becomes active unless it survived sealed and
     full, in which case a fresh segment opens at the flushed boundary *)
  let rec split acc = function
    | [ last ] -> (List.rev acc, last)
    | x :: rest -> split (x :: acc) rest
    | [] -> assert false
  in
  let sealed, tail = split [] kept in
  if tail.seg_sealed then begin
    t.sealed <- sealed @ [ tail ];
    t.active <- fresh_segment (seg_end tail)
  end
  else begin
    t.sealed <- sealed;
    t.active <- tail
  end;
  (* the active segment now ends exactly at the old flushed boundary; the
     torn suffix (if the fault kept one) lands right after it *)
  (match torn_tail with Some bytes -> Bytebuf.W.raw_string t.active.seg_data bytes | None -> ());
  (* find the true end of log: the scan, not the recorded boundary, is
     authoritative — it cuts the torn suffix back to the last verifiable
     record (which may lie beyond the recorded boundary if complete
     records survived unforced) *)
  tail_scan t;
  t.flushed <- end_offset t;
  t.last <- compute_last t;
  t.last_stable <- t.last;
  (* per-segment record counts in the surviving prefix *)
  List.iter
    (fun s ->
      let n = ref 0 in
      let rec loop off = if off < seg_end s then begin incr n; loop (record_end t off) end in
      loop s.seg_base;
      s.seg_records <- !n)
    (all_segments t);
  recount t;
  (* re-baseline the tracer: the scan's verdict is the new stable boundary
     (the discipline checker judges R4/R5 against this, not against forces
     it saw before the crash) *)
  if Trace.enabled () then Trace.emit (Trace.Log_open { log = t.id; flushed = t.flushed })

let record_count t = t.count

let size_bytes t = List.fold_left (fun acc s -> acc + seg_len s) 0 (all_segments t)

(* Reclamation: drop whole sealed, fully-stable segments whose end offset
   is <= [upto] (the caller's safety point — see Ckptd.safety_point and
   rule R6). Each dropped segment is handed to the archive sink first, so
   media recovery can still roll forward from a fuzzy dump taken before
   the truncation. Returns the number of bytes reclaimed. *)
let truncate_prefix t ~upto =
  if upto > t.flushed then
    invalid_arg "Logmgr.truncate_prefix: cannot truncate into the volatile tail";
  let dropped_bytes = ref 0 and dropped_segs = ref 0 in
  let rec go = function
    | s :: rest when s.seg_sealed && seg_end s <= upto && seg_end s <= t.flushed ->
        let data = Bytebuf.W.sub_string s.seg_data 0 (seg_len s) in
        let arch =
          {
            arch_base = s.seg_base;
            arch_len = seg_len s;
            arch_data = data;
            arch_records = s.seg_records;
            arch_crc = Crc.string data;
          }
        in
        (match t.archive_sink with Some f -> f arch | None -> ());
        if Trace.enabled () then
          Trace.emit
            (Trace.Log_archive
               { log = t.id; base = arch.arch_base; len = arch.arch_len; records = arch.arch_records });
        dropped_bytes := !dropped_bytes + arch.arch_len;
        incr dropped_segs;
        t.count <- t.count - s.seg_records;
        go rest
    | rest -> rest
  in
  t.sealed <- go t.sealed;
  if !dropped_segs > 0 then begin
    Stats.incr Stats.log_truncations;
    Stats.add Stats.log_segments_reclaimed !dropped_segs;
    Stats.add Stats.log_bytes_reclaimed !dropped_bytes;
    if Trace.enabled () then
      Trace.emit
        (Trace.Log_truncate
           { log = t.id; new_start = start t; bytes = !dropped_bytes; segments = !dropped_segs })
  end;
  !dropped_bytes

let serialize t =
  (* size hint: header + per-segment overhead + the stable bytes *)
  let w = Bytebuf.W.create ~size:(64 + size_bytes t + (32 * segment_count t)) () in
  Bytebuf.W.i64 w t.master_lsn;
  Bytebuf.W.i64 w t.last_stable;
  Bytebuf.W.i64 w t.segment_size;
  Bytebuf.W.i64 w (start t);
  (* stable state only: each segment's stable prefix; a segment is recorded
     as sealed only if its full extent is stable (a sealed-in-memory tail
     whose seal never reached disk re-opens on recovery) *)
  let stable_segs = List.filter (fun s -> s.seg_base < t.flushed) (all_segments t) in
  Bytebuf.W.list w
    (fun w s ->
      Bytebuf.W.i64 w s.seg_base;
      Bytebuf.W.bool w (s.seg_sealed && seg_end s <= t.flushed);
      let data = Bytebuf.W.sub_string s.seg_data 0 (min (seg_len s) (t.flushed - s.seg_base)) in
      Bytebuf.W.string w data;
      (* per-segment footer: CRC32 of the stable prefix, so a rotted or
         short save file is detected on load instead of mis-decoding *)
      Bytebuf.W.u32 w (Crc.string data))
    stable_segs;
  Bytebuf.W.contents w

let deserialize b =
  let last_base = ref None in
  let master_lsn, last_stable, segment_size, log_start, segs =
    try
      let r = Bytebuf.R.of_bytes b in
      let master_lsn = Bytebuf.R.i64 r in
      let last_stable = Bytebuf.R.i64 r in
      let segment_size = Bytebuf.R.i64 r in
      let log_start = Bytebuf.R.i64 r in
      let segs =
        Bytebuf.R.list r (fun r ->
            let base = Bytebuf.R.i64 r in
            last_base := Some base;
            let sealed = Bytebuf.R.bool r in
            let data = Bytebuf.R.string r in
            let stored = Bytebuf.R.u32 r in
            if Faultdisk.crc_checks_enabled () && Crc.string data <> stored then
              Storage_error.raise_err ~lsn:base Storage_error.Checksum
                "log segment footer CRC mismatch (base %d, %dB)" base (String.length data);
            (base, sealed, data))
      in
      Bytebuf.R.expect_end r;
      (master_lsn, last_stable, segment_size, log_start, segs)
    with Bytebuf.Corrupt msg ->
      raise (Storage_error.of_corrupt ?lsn:!last_base ("log image: " ^ msg))
  in
  ignore last_stable;
  let t = create ~segment_size () in
  (match segs with
  | [] -> t.active <- fresh_segment log_start
  | _ ->
      let rebuilt =
        List.map
          (fun (base, sealed, data) ->
            let s = fresh_segment base in
            Bytebuf.W.raw_string s.seg_data data;
            s.seg_sealed <- sealed;
            s)
          segs
      in
      let rec split acc = function
        | [ last ] -> (List.rev acc, last)
        | x :: rest -> split (x :: acc) rest
        | [] -> assert false
      in
      let sealed, tail = split [] rebuilt in
      if tail.seg_sealed then begin
        t.sealed <- sealed @ [ tail ];
        t.active <- fresh_segment (seg_end tail)
      end
      else begin
        t.sealed <- sealed;
        t.active <- tail
      end);
  (* same CRC-guarded tail scan as the crash path: the loaded active
     segment's suffix must verify record by record *)
  tail_scan t;
  t.flushed <- end_offset t;
  t.master_lsn <- master_lsn;
  t.last <- compute_last t;
  t.last_stable <- t.last;
  List.iter
    (fun s ->
      let n = ref 0 in
      let rec loop off = if off < seg_end s then begin incr n; loop (record_end t off) end in
      loop s.seg_base;
      s.seg_records <- !n)
    (all_segments t);
  recount t;
  (* Re-baseline: deserialize models re-opening the log after a crash, so
     the surviving stable prefix is the tracer's flushed boundary. *)
  if Trace.enabled () then Trace.emit (Trace.Log_open { log = t.id; flushed = t.flushed });
  t

let records_between t lo hi =
  let acc = ref [] in
  let lo = if Lsn.is_nil lo then start t else max lo (start t) in
  iter_from t lo (fun r -> if Lsn.is_nil hi || r.Logrec.lsn <= hi then acc := r :: !acc);
  List.rev !acc
