open Aries_util
module Trace = Aries_trace.Trace

(* Log address space: offset [first_offset] is the first record ever
   written; each record is framed as [u32 length][payload]. The LSN of a
   record is the offset of its frame header, so LSNs are strictly monotonic
   and [Lsn.nil] (= 0) is below every record. [start] moves forward when the
   prefix is truncated (log space reclamation); LSNs keep their meaning, but
   records below [start] are gone. *)
let first_offset = 8

type t = {
  id : int;  (* distinguishes log instances for the protocol tracer *)
  mutable data : Buffer.t;
  mutable start : int;  (* absolute offset of the first retained byte *)
  mutable flushed : int;  (* absolute offset; everything below is stable *)
  mutable last : Lsn.t;
  mutable last_stable : Lsn.t;  (* largest LSN known stable *)
  mutable master_lsn : Lsn.t;
  mutable count : int;
}

let next_id = ref 0

let create () =
  incr next_id;
  let t =
    {
      id = !next_id;
      data = Buffer.create 4096;
      start = first_offset;
      flushed = first_offset;
      last = Lsn.nil;
      last_stable = Lsn.nil;
      master_lsn = Lsn.nil;
      count = 0;
    }
  in
  (* Baseline the tracer's flushed boundary for this log instance; the
     discipline checker refuses to judge R4/R5 against a log it has no
     baseline for. *)
  if Trace.enabled () then Trace.emit (Trace.Log_open { log = t.id; flushed = t.flushed });
  t

let id t = t.id

let end_offset t = t.start + Buffer.length t.data

let start_lsn t = if Buffer.length t.data = 0 then Lsn.nil else t.start

let append t rec_ =
  Crashpoint.hit "wal.append";
  let lsn = end_offset t in
  let payload = Logrec.encode { rec_ with lsn } in
  let w = Bytebuf.W.create () in
  Bytebuf.W.u32 w (Bytes.length payload);
  Buffer.add_bytes t.data (Bytebuf.W.contents w);
  Buffer.add_bytes t.data payload;
  t.last <- lsn;
  t.count <- t.count + 1;
  Stats.incr Stats.log_records;
  Stats.add Stats.log_bytes (4 + Bytes.length payload);
  if Trace.enabled () then
    Trace.emit
      (Trace.Log_append
         {
           log = t.id;
           lsn;
           next = end_offset t;
           kind = Logrec.kind_to_string rec_.Logrec.kind;
           txn = rec_.Logrec.txn;
         });
  lsn

(* The single instrumented choke point every log force goes through —
   [flush], [flush_to], and hence the group-commit daemon and the WAL rule.
   [upto] is the absolute end offset to make stable; [stable_lsn] the LSN of
   the last record that offset covers.

   The [fault_wal_skip_flush] switch silently drops log forces: commits and
   the WAL rule stop being durable. It exists so the simulation harness can
   prove it detects a broken implementation (see Aries_sim.Sim). *)
let force t ~upto ~stable_lsn =
  if upto > t.flushed && not (Crashpoint.fault_active Crashpoint.fault_wal_skip_flush) then begin
    Crashpoint.hit "wal.flush";
    t.flushed <- upto;
    t.last_stable <- stable_lsn;
    Stats.incr Stats.log_forces;
    if Trace.enabled () then Trace.emit (Trace.Log_force { log = t.id; upto; stable_lsn })
  end

let flush t = force t ~upto:(end_offset t) ~stable_lsn:t.last

let frame_len t off =
  let hdr = Buffer.sub t.data (off - t.start) 4 in
  let r = Bytebuf.R.of_string hdr in
  Bytebuf.R.u32 r

let read t lsn =
  if lsn < t.start || lsn >= end_offset t then
    invalid_arg
      (Printf.sprintf "Logmgr.read: LSN %d out of range [%d,%d) (truncated or unwritten)" lsn
         t.start (end_offset t));
  let len = frame_len t lsn in
  let payload = Buffer.sub t.data (lsn - t.start + 4) len in
  Logrec.decode ~lsn payload

let record_end t lsn = lsn + 4 + frame_len t lsn

let flush_to t lsn =
  if Lsn.is_nil lsn then () else force t ~upto:(record_end t lsn) ~stable_lsn:lsn

let flushed_lsn t = t.last_stable

let last_lsn t = t.last

let is_stable t lsn = (not (Lsn.is_nil lsn)) && record_end t lsn <= t.flushed

let next_lsn t lsn =
  let e = record_end t lsn in
  if e < end_offset t then Some e else None

let iter_from t lsn f =
  let start = if Lsn.is_nil lsn then t.start else max lsn t.start in
  let rec loop off =
    if off < end_offset t then begin
      f (read t off);
      loop (record_end t off)
    end
  in
  loop start

let set_master t lsn = t.master_lsn <- lsn

let master t = t.master_lsn

let crash t =
  let stable = Buffer.sub t.data 0 (t.flushed - t.start) in
  Buffer.clear t.data;
  Buffer.add_string t.data stable;
  t.last <- t.last_stable;
  (* recount records in the surviving prefix *)
  let n = ref 0 in
  iter_from t Lsn.nil (fun _ -> incr n);
  t.count <- !n

let record_count t = t.count

let size_bytes t = Buffer.length t.data

let serialize t =
  let w = Bytebuf.W.create () in
  Bytebuf.W.i64 w t.master_lsn;
  Bytebuf.W.i64 w t.last_stable;
  Bytebuf.W.i64 w t.start;
  Bytebuf.W.string w (Buffer.sub t.data 0 (t.flushed - t.start));
  Bytebuf.W.contents w

let deserialize b =
  let r = Bytebuf.R.of_bytes b in
  let master_lsn = Bytebuf.R.i64 r in
  let last_stable = Bytebuf.R.i64 r in
  let start = Bytebuf.R.i64 r in
  let stable = Bytebuf.R.string r in
  Bytebuf.R.expect_end r;
  let t = create () in
  t.start <- start;
  Buffer.add_string t.data stable;
  t.flushed <- start + String.length stable;
  t.master_lsn <- master_lsn;
  t.last_stable <- last_stable;
  t.last <- last_stable;
  let n = ref 0 in
  iter_from t Lsn.nil (fun _ -> incr n);
  t.count <- !n;
  (* Re-baseline: deserialize models re-opening the log after a crash, so
     the surviving stable prefix is the tracer's flushed boundary. *)
  if Trace.enabled () then Trace.emit (Trace.Log_open { log = t.id; flushed = t.flushed });
  t

let truncate_before t lsn =
  if lsn > t.start then begin
    if not (is_stable t lsn || lsn <= t.flushed) then
      invalid_arg "Logmgr.truncate_before: cannot truncate into the volatile tail";
    if lsn > end_offset t then invalid_arg "Logmgr.truncate_before: beyond the end of the log";
    let keep = Buffer.sub t.data (lsn - t.start) (Buffer.length t.data - (lsn - t.start)) in
    let data = Buffer.create (max 4096 (String.length keep)) in
    Buffer.add_string data keep;
    t.data <- data;
    t.start <- lsn;
    let n = ref 0 in
    iter_from t Lsn.nil (fun _ -> incr n);
    t.count <- !n
  end

let records_between t lo hi =
  let acc = ref [] in
  let lo = if Lsn.is_nil lo then t.start else max lo t.start in
  iter_from t lo (fun r -> if Lsn.is_nil hi || r.Logrec.lsn <= hi then acc := r :: !acc);
  List.rev !acc
