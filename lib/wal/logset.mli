(** The multi-stream WAL: N independent {!Logmgr} streams plus the global
    commit-epoch / gsn counters that relax ARIES' total LSN order to
    per-stream orders with a cheap global constraint (Zhou et al.,
    "Partially Constrained Transaction Logs").

    Every record is stamped at append time with its [stream], the current
    commit [epoch], and a process-wide [gsn] (global sequence number).
    Page records are routed by page-id hash — all of a page's records live
    on one stream, so pageLSN/recLSN semantics, the WAL rule, per-page redo
    and per-page log chains keep their single-log meaning. Pageless
    transaction-control records are routed by txn-id hash; checkpoint
    records and the master record live on stream 0 (the {e control
    stream}). Transaction prev-LSN chains are {e per-stream} (a record's
    [prev_lsn] is the txn's previous record on the same stream), so each
    stream's post-crash survivors are always a hole-free chain prefix.

    Group commit advances the epoch per batch; a commit is acknowledged
    only when every stream the transaction touched is forced through the
    batch's per-stream fence (rule R8). A commit record's body carries the
    per-touched-stream last-LSN vector; recovery counts the commit only if
    every named record survived ({!commit_valid}) — the fence guarantees
    acknowledged commits always do.

    With [streams = 1] (the default everywhere) the set degenerates to a
    single {!Logmgr} whose byte stream is identical to driving that
    [Logmgr] directly with the same stamps — the N=1 equivalence the
    multistream suite proves. *)

type t

val create : ?segment_size:int -> ?streams:int -> unit -> t
(** [streams] defaults to 1; [segment_size] applies to every stream. *)

val of_mgr : Logmgr.t -> t
(** Wrap an existing single log as a one-stream set (test harnesses). *)

val n : t -> int

val stream : t -> int -> Logmgr.t

val control : t -> Logmgr.t
(** Stream 0: checkpoint records and the master record live here. *)

val iteri : t -> (int -> Logmgr.t -> unit) -> unit

val route_page : t -> Aries_util.Ids.page_id -> int

val route_txn : t -> Aries_util.Ids.txn_id -> int

val page_stream : t -> Aries_util.Ids.page_id -> Logmgr.t
(** The stream holding every record of this page. *)

val current_epoch : t -> int

val advance_epoch : t -> int
(** Open the next commit epoch (group commit, once per batch) and return
    it. *)

val current_gsn : t -> int

val append : t -> stream:int -> Logrec.t -> Lsn.t
(** Stamp the record with [stream], the current epoch and the next gsn,
    then append it to that stream. Returns the stream-local LSN. *)

val flush_all : t -> unit

val crash : t -> unit
(** Crash every stream (each independently keeps a shuffled number of
    complete unflushed frames while {!Aries_util.Faultdisk.stream_shuffle_on}
    is armed), then re-derive the epoch/gsn counters from the survivors. *)

val recover_counters : t -> unit

(** {2 Commit-record stream vector} *)

val encode_commit_targets : (int * Lsn.t) list -> bytes
(** Body of a Commit record: for each touched stream, the txn's last LSN
    there at commit time. *)

val decode_commit_targets : bytes -> (int * Lsn.t) list

val targets_valid : t -> Logrec.t -> (int * Lsn.t) list -> bool
(** Did every record the vector names survive, judged for the record [r]
    that carried it (the gsn order rejects offsets reused after a crash)?
    Used for Commit bodies, for the vectors End_txn and Prepare records
    carry — across streams, "the End survived" no longer implies "every
    CLR before it survived" — and for NTA anchor fences. *)

val commit_valid : t -> Logrec.t -> bool
(** Does every record the commit's stream vector names survive? Archived
    entries count (archived segments were stable); live entries must
    decode to a record with a smaller gsn, which rejects offsets reused
    after the crash that lost the original (the vector may name {e other}
    transactions' records: the SMO fence, see {!Aries_txn.Txnmgr}). An
    acknowledged commit always validates (rule R8); an un-acked commit
    whose updates a shuffled crash dropped must not. *)

val iter_merged : t -> starts:Lsn.t array -> (Logrec.t -> unit) -> unit
(** Scan live records of all streams merged in [(epoch, gsn)] order.
    [starts.(s)] is stream [s]'s scan start ([Lsn.nil] = oldest retained);
    cursors clamp to each stream's retained range. *)

(** {2 Snapshot} *)

val serialize : t -> bytes

val deserialize : bytes -> t
