(** Log records.

    A record carries generic ARIES header fields plus a resource-manager
    payload: [rm_id] names the resource manager (index manager, record
    manager, ...) whose registered callbacks know how to redo/undo the
    opcode [op] with body [body] against page [page_id]. The recovery
    engine itself never interprets bodies — the modularity real ARIES
    implementations use. *)

open Aries_util

type kind =
  | Update
      (** forward-processing change; [undoable]/[redoable] flags qualify it.
          SMO records written during {e undo} processing are also [Update]
          records (the paper's exception to CLR-only undo logging, §3). *)
  | Clr
      (** compensation record: redo-only; [undo_nxt_lsn] points at the
          predecessor of the record it compensates. A {e dummy} CLR (the end
          of a nested top action) has [rm_id = 0] and no page. *)
  | Commit
  | Prepare  (** transaction is in-doubt; recovery reacquires its locks *)
  | Rollback  (** transaction has begun total rollback *)
  | End_txn
  | Begin_ckpt
  | End_ckpt  (** body holds the serialized txn table and dirty-page table *)

type t = {
  lsn : Lsn.t;  (** assigned on append; equals the record's log offset *)
  prev_lsn : Lsn.t;  (** previous record of the same transaction *)
  txn : Ids.txn_id;
  kind : kind;
  page : Ids.page_id;  (** affected page, [Ids.nil_page] if none *)
  undo_nxt_lsn : Lsn.t;  (** CLRs only; [Lsn.nil] otherwise *)
  rm_id : int;  (** 0 = none/recovery-internal *)
  op : int;  (** resource-manager-specific opcode *)
  undoable : bool;
  redoable : bool;
  body : bytes;
}

val make :
  ?page:Ids.page_id ->
  ?undo_nxt_lsn:Lsn.t ->
  ?rm_id:int ->
  ?op:int ->
  ?undoable:bool ->
  ?redoable:bool ->
  ?body:bytes ->
  txn:Ids.txn_id ->
  prev_lsn:Lsn.t ->
  kind ->
  t
(** The [lsn] field is [Lsn.nil] until {!Logmgr.append} assigns it. Defaults:
    no page, no undo_nxt, rm 0, op 0, empty body; [Update] records default to
    undoable+redoable, [Clr] to redoable-only, others to neither. *)

val encode : t -> bytes
(** Without the length prefix (the log manager frames records). *)

val decode : lsn:Lsn.t -> string -> t

val kind_to_string : kind -> string

val pp : Format.formatter -> t -> unit

(** {2 Framing (PR 5)}

    Frame format: [[u32 len][payload][u32 crc32(payload)]]. The CRC
    trailer lets restart's tail scan find the true end of log — the last
    record whose frame verifies — without trusting any recorded stable
    boundary. *)

val frame_overhead : int
(** Bytes of framing around a payload (length prefix + CRC trailer) = 8. *)

val frame : bytes -> bytes
(** Wrap an encoded record payload in its frame. *)

val frame_crc_ok : payload:string -> stored:int -> bool
(** Does the stored CRC trailer match the payload? *)
