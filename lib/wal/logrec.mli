(** Log records.

    A record carries generic ARIES header fields plus a resource-manager
    payload: [rm_id] names the resource manager (index manager, record
    manager, ...) whose registered callbacks know how to redo/undo the
    opcode [op] with body [body] against page [page_id]. The recovery
    engine itself never interprets bodies — the modularity real ARIES
    implementations use. *)

open Aries_util

type kind =
  | Update
      (** forward-processing change; [undoable]/[redoable] flags qualify it.
          SMO records written during {e undo} processing are also [Update]
          records (the paper's exception to CLR-only undo logging, §3). *)
  | Clr
      (** compensation record: redo-only; [undo_nxt_lsn] points at the
          predecessor of the record it compensates. A {e dummy} CLR (the end
          of a nested top action) has [rm_id = 0] and no page. *)
  | Commit
  | Prepare  (** transaction is in-doubt; recovery reacquires its locks *)
  | Rollback  (** transaction has begun total rollback *)
  | End_txn
  | Begin_ckpt
  | End_ckpt  (** body holds the serialized txn table and dirty-page table *)
  | Coord_commit
      (** 2PC coordinator decision (presumed abort): the body names the
          global transaction and its participant shards
          ({!Aries_shard.Twopc.encode_decision}). [txn = Ids.nil_txn] — the
          record belongs to the coordinator role, not a local transaction.
          A global commit is acknowledged only once this record is forced;
          recovery resolves a surviving in-doubt Prepare by re-reading it. *)
  | Coord_abort
      (** optional coordinator abort note (same body as {!Coord_commit}).
          Presumed abort means {e no} such record is ever required — absence
          of a Coord_commit {e is} the abort decision — but writing one lets
          live resolution skip the retry/backoff wait. Never forced. *)
  | Coord_end
      (** coordinator bookkeeping: every participant acknowledged the
          decision; the gid's in-doubt window is closed (body:
          {!Aries_shard.Twopc.encode_end}). Never forced. *)

type t = {
  lsn : Lsn.t;  (** assigned on append; equals the record's log offset *)
  prev_lsn : Lsn.t;
      (** previous record of the same transaction {e on the same stream}:
          chains are per-stream so each stream's post-crash survivors form
          a chain prefix with no holes *)
  txn : Ids.txn_id;
  kind : kind;
  page : Ids.page_id;  (** affected page, [Ids.nil_page] if none *)
  undo_nxt_lsn : Lsn.t;  (** CLRs only; [Lsn.nil] otherwise *)
  undo_nxt_stream : int;
      (** which stream [undo_nxt_lsn] addresses: a logical undo may write
          its CLR to a different page — hence a different stream — than the
          record it compensates, so a CLR's cursor jump is a (stream, lsn)
          pair. [-1] until stamped; {!Logset.append} (and the codec)
          resolve [-1] to the record's own stream. *)
  rm_id : int;  (** 0 = none/recovery-internal *)
  op : int;  (** resource-manager-specific opcode *)
  undoable : bool;
  redoable : bool;
  stream : int;  (** log stream index; stamped by {!Logset.append} *)
  epoch : int;  (** commit epoch current at append time *)
  gsn : int;
      (** global sequence number: process-wide append counter, the tiebreak
          within an epoch. Recovery merges streams by [(epoch, gsn)]; since
          appends never yield, that equals plain [gsn] order. *)
  body : bytes;
}

val make :
  ?page:Ids.page_id ->
  ?undo_nxt_lsn:Lsn.t ->
  ?undo_nxt_stream:int ->
  ?rm_id:int ->
  ?op:int ->
  ?undoable:bool ->
  ?redoable:bool ->
  ?stream:int ->
  ?epoch:int ->
  ?gsn:int ->
  ?body:bytes ->
  txn:Ids.txn_id ->
  prev_lsn:Lsn.t ->
  kind ->
  t
(** The [lsn] field is [Lsn.nil] until {!Logmgr.append} assigns it. Defaults:
    no page, no undo_nxt, rm 0, op 0, stream/epoch/gsn 0, empty body; [Update]
    records default to undoable+redoable, [Clr] to redoable-only, others to
    neither. Stream/epoch/gsn are stamped by {!Logset.append}; records
    appended through a bare {!Logmgr} keep the caller's values. *)

val encode : t -> bytes
(** Without the length prefix (the log manager frames records). The writer
    is size-hinted from the body, so no growth-doubling copies. *)

val encode_into : Bytebuf.W.t -> t -> unit
(** Encode into a caller-owned arena (reset first, contents left in the
    writer) — the log managers keep one arena per log so the append hot
    path allocates nothing per record. *)

val header_bytes : int
(** Encoded size of everything except the body bytes — [header_bytes +
    length body] is the exact payload size, usable as an arena hint. *)

val decode : lsn:Lsn.t -> string -> t

val decode_from : lsn:Lsn.t -> Bytebuf.R.t -> t
(** Decode from a reader positioned at the record payload (consumes
    exactly the payload, checks the slice is exhausted) — the zero-copy
    read path over the segment arena. *)

val kind_to_string : kind -> string

val pp : Format.formatter -> t -> unit

(** {2 Framing (PR 5)}

    Frame format: [[u32 len][payload][u32 crc32(payload)]]. The CRC
    trailer lets restart's tail scan find the true end of log — the last
    record whose frame verifies — without trusting any recorded stable
    boundary. *)

val frame_overhead : int
(** Bytes of framing around a payload (length prefix + CRC trailer) = 8. *)

val frame : bytes -> bytes
(** Wrap an encoded record payload in its frame. *)

val frame_crc_ok : payload:string -> stored:int -> bool
(** Does the stored CRC trailer match the payload? *)
