(** The log manager: an append-only framed record store with an explicit
    stable/volatile boundary.

    Records are appended to a volatile tail; [flush]/[flush_to] move the
    stable boundary forward (a synchronous log I/O in a real system —
    counted in {!Aries_util.Stats}). {!crash} discards everything after the
    stable boundary, which is exactly the information a system failure
    loses. The {e master record} (the well-known disk location holding the
    LSN of the last complete checkpoint) is modeled as state that survives
    [crash]. *)

type t

val create : unit -> t

val id : t -> int
(** Process-unique id of this log instance, used by the protocol tracer to
    key durability events ([Log_open]/[Log_force]/[Commit_ack]/[Page_write])
    to the right log. *)

val append : t -> Logrec.t -> Lsn.t
(** Assigns the record's LSN (its byte offset), frames and buffers it.
    The returned LSN is strictly greater than all previously returned. *)

val flush : t -> unit
(** Force the whole log to stable storage. *)

val flush_to : t -> Lsn.t -> unit
(** Force the log up to and including the record at this LSN. No-op if
    already stable. This is the WAL primitive the buffer manager calls
    before writing a page, and commit calls on its commit record. *)

val flushed_lsn : t -> Lsn.t
(** The largest appended LSN that is stable, or [Lsn.nil]. *)

val last_lsn : t -> Lsn.t
(** LSN of the most recently appended record, or [Lsn.nil]. *)

val end_offset : t -> int
(** Offset one past the final record; the LSN the next append will get. *)

val is_stable : t -> Lsn.t -> bool

val record_end : t -> Lsn.t -> int
(** Offset one past the record at this LSN (frame header + payload): the
    boundary a force must reach to cover the record. *)

val read : t -> Lsn.t -> Logrec.t
(** Random access by LSN (stable or volatile). Raises
    [Invalid_argument] if the LSN is not a record boundary. *)

val next_lsn : t -> Lsn.t -> Lsn.t option
(** LSN of the record following the given one, if any. *)

val iter_from : t -> Lsn.t -> (Logrec.t -> unit) -> unit
(** Scan records in LSN order starting at the given LSN (inclusive) through
    the end of the log. [Lsn.nil] scans from the beginning. *)

val set_master : t -> Lsn.t -> unit
(** Record the LSN of the most recent Begin_ckpt in the master record. *)

val master : t -> Lsn.t

val crash : t -> unit
(** Discard the volatile tail. The master record and stable prefix remain. *)

val truncate_before : t -> Lsn.t -> unit
(** Reclaim log space: discard all records below this LSN (which must be a
    record boundary within the stable prefix). LSNs keep their meaning; a
    [read] below the new start raises. The caller is responsible for only
    truncating below every recovery horizon — see [Db.trim_log]. *)

val start_lsn : t -> Lsn.t
(** LSN of the oldest retained record, or [Lsn.nil] when the log is empty. *)

val record_count : t -> int
(** Number of records currently in the log (stable + volatile). *)

val size_bytes : t -> int

val records_between : t -> Lsn.t -> Lsn.t -> Logrec.t list
(** [records_between t lo hi] returns records with [lo <= lsn <= hi],
    in LSN order; [Lsn.nil] bounds mean "from start" / "to end". *)

val serialize : t -> bytes
(** The stable state only: the flushed prefix and the master record. The
    volatile tail is, by definition, not part of what survives. *)

val deserialize : bytes -> t
