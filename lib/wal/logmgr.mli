(** The log manager: a segmented, append-only framed record store with an
    explicit stable/volatile boundary.

    The log is a chain of fixed-size {e segments} addressed by the same
    absolute byte-offset LSNs as before segmentation: a record's LSN is the
    offset of its frame header, segment boundaries always fall on record
    boundaries (records are never split), and the segment holding LSN [l]
    is the one whose base is the largest base [<= l]. Appends go to the
    unique unsealed tail segment; when it reaches the size budget it is
    {e sealed} and a fresh segment opens.

    Records are appended to a volatile tail; [flush]/[flush_to] move the
    stable boundary forward (a synchronous log I/O in a real system —
    counted in {!Aries_util.Stats}); each segment's stable prefix is
    derived from the global boundary. {!crash} discards everything after
    the stable boundary, which is exactly the information a system failure
    loses — including in-memory-only seals. The {e master record} (the
    well-known disk location holding the LSN of the last complete
    checkpoint) is modeled as state that survives [crash].

    Log-space reclamation ({!truncate_prefix}) drops whole sealed,
    fully-stable segments below a caller-supplied safety point, handing
    each to the {!set_archive_sink} hook first so media recovery can still
    roll forward from an old fuzzy dump (see [Media.Archive]). *)

type t

type archived = {
  arch_base : int;  (** absolute offset of the segment's first byte *)
  arch_len : int;
  arch_data : string;  (** the raw framed records, [arch_len] bytes *)
  arch_records : int;
  arch_crc : int;  (** sealed-segment footer: CRC32 of [arch_data] *)
}
(** A reclaimed segment as handed to the archive sink. *)

val create : ?segment_size:int -> unit -> t
(** [segment_size] (default 64 KiB, minimum 64 bytes) is the seal
    threshold: a segment is sealed at the first record boundary at or past
    it, so segments can overshoot by up to one record. *)

val default_segment_size : int

val id : t -> int
(** Process-unique id of this log instance, used by the protocol tracer to
    key durability events ([Log_open]/[Log_force]/[Commit_ack]/[Page_write])
    to the right log. *)

val segment_size : t -> int

val append : t -> Logrec.t -> Lsn.t
(** Assigns the record's LSN (its byte offset), frames and buffers it into
    the active segment, sealing it if the size budget is reached. The
    returned LSN is strictly greater than all previously returned. *)

val flush : t -> unit
(** Force the whole log to stable storage. *)

val flush_to : t -> Lsn.t -> unit
(** Force the log up to and including the record at this LSN. No-op if
    already stable. This is the WAL primitive the buffer manager calls
    before writing a page, and commit calls on its commit record. *)

val flushed_lsn : t -> Lsn.t
(** The largest appended LSN that is stable, or [Lsn.nil]. *)

val flushed_offset : t -> int
(** The absolute offset of the stable/volatile boundary: everything below
    is on stable storage. *)

val last_lsn : t -> Lsn.t
(** LSN of the most recently appended record, or [Lsn.nil]. *)

val end_offset : t -> int
(** Offset one past the final record; the LSN the next append will get. *)

val is_stable : t -> Lsn.t -> bool

val record_end : t -> Lsn.t -> int
(** Offset one past the record at this LSN (frame header + payload): the
    boundary a force must reach to cover the record. For an LSN below the
    log start (reclaimed by truncation — necessarily already stable and
    archived) this clamps to the start offset, so pageLSN-driven callers
    never probe reclaimed segments. *)

val read : t -> Lsn.t -> Logrec.t
(** Random access by LSN (stable or volatile). Raises
    [Invalid_argument] if the LSN is not a record boundary or lies in a
    reclaimed segment; raises [Storage_error.Error] ([Checksum]/[Decode],
    with the LSN) if the frame fails its CRC or is unparseable. *)

val next_lsn : t -> Lsn.t -> Lsn.t option
(** LSN of the record following the given one, if any. *)

val iter_from : t -> Lsn.t -> (Logrec.t -> unit) -> unit
(** Scan records in LSN order starting at the given LSN (inclusive) through
    the end of the log. [Lsn.nil] scans from the beginning of the oldest
    retained segment. *)

val set_master : t -> Lsn.t -> unit
(** Record the LSN of the most recent complete checkpoint's Begin_ckpt in
    the master record. *)

val master : t -> Lsn.t

val crash : ?retain:(int -> int) -> t -> unit
(** Discard the volatile tail: segments wholly above the stable boundary
    vanish, the straddling segment is trimmed (and re-opens unsealed —
    an in-memory seal that never reached disk is not a seal). The master
    record and stable prefix remain.

    [retain] (default [fun _ -> 0]) maps the number of complete unflushed
    frames to how many of them the medium kept past the boundary — the
    per-stream flush-order shuffle used by {!Logset.crash}: a crash may
    persist one stream's whole tail (complete records, written but never
    acked — legal) while another stream loses everything unforced.

    Recovery then runs a CRC-guarded {e tail scan} over the active
    segment rather than trusting the recorded boundary: the log ends at
    the last record whose frame verifies. Under the
    [Crashpoint.fault_log_torn_append] fault, the medium keeps a prefix
    of the in-flight tail — complete CRC-valid records beyond the
    recorded boundary survive (legal: written but never acked), the torn
    remainder is truncated with a traced [log.tail-truncated] event and
    counted in [Stats.log_tail_truncated_bytes]. *)

val set_archive_sink : t -> (archived -> unit) -> unit
(** Install the hook that receives each segment dropped by
    {!truncate_prefix}, before it disappears from the live log. *)

val truncate_prefix : t -> upto:Lsn.t -> int
(** Reclaim log space: drop every sealed, fully-stable segment whose end
    offset is [<= upto], handing each to the archive sink. Partial
    segments are never dropped — the cut lands on the largest segment
    boundary [<= upto], so LSNs keep their meaning and the new
    {!start_lsn} is a record boundary. Returns the number of bytes
    reclaimed (0 if no whole segment lies below [upto]). Raises
    [Invalid_argument] if [upto] exceeds the flushed boundary. The caller
    is responsible for passing a safe [upto] — see [Ckptd.safety_point]
    and discipline rule R6. *)

val start_lsn : t -> Lsn.t
(** LSN of the oldest retained record, or [Lsn.nil] when the log is empty. *)

val start_offset : t -> int
(** Absolute offset of the oldest retained byte (the base of the oldest
    retained segment) — never [Lsn.nil]-coded: an empty log reports its end
    offset. Offsets below it were reclaimed by truncation and archived. *)

val record_count : t -> int
(** Number of records currently retained (stable + volatile, excluding
    reclaimed segments). *)

val size_bytes : t -> int
(** Live (non-archived) bytes across all retained segments — the footprint
    bench q11 shows plateauing under the checkpoint daemon. *)

val segment_count : t -> int
(** Retained segments, including the active one. *)

val segments_info : t -> (int * int * bool) list
(** [(base, length, sealed)] per retained segment, oldest first. *)

val first_segment_end : t -> int
(** End offset of the oldest retained segment — the boundary the next
    truncation could reclaim. The checkpoint daemon nudges the page
    cleaner when the DPT's min recLSN falls below it. *)

val records_between : t -> Lsn.t -> Lsn.t -> Logrec.t list
(** [records_between t lo hi] returns records with [lo <= lsn <= hi],
    in LSN order; [Lsn.nil] bounds mean "from start" / "to end". *)

val serialize : t -> bytes
(** The stable state only: each segment's stable prefix plus the master
    record. The volatile tail (and volatile seals) are, by definition, not
    part of what survives. *)

val deserialize : bytes -> t
