open Aries_util

type kind =
  | Update
  | Clr
  | Commit
  | Prepare
  | Rollback
  | End_txn
  | Begin_ckpt
  | End_ckpt
  | Coord_commit
  | Coord_abort
  | Coord_end

type t = {
  lsn : Lsn.t;
  prev_lsn : Lsn.t;
      (* the txn's previous record *on the same stream*: per-stream chains
         keep undo walks sound when a crash persists one stream's tail and
         loses another's — each stream's survivors are a chain prefix *)
  txn : Ids.txn_id;
  kind : kind;
  page : Ids.page_id;
  undo_nxt_lsn : Lsn.t;
  undo_nxt_stream : int;
      (* which stream [undo_nxt_lsn] addresses. A logical undo may write
         its CLR to a different page — hence a different stream — than the
         record it compensates, so the cursor jump the CLR encodes is a
         (stream, lsn) pair, not a bare offset. [-1] until stamped: resolved
         to the record's own stream at append time. *)
  rm_id : int;
  op : int;
  undoable : bool;
  redoable : bool;
  stream : int;  (* which log stream the record was appended to *)
  epoch : int;  (* commit epoch current at append time *)
  gsn : int;
      (* global sequence number: a process-wide counter stamped on every
         record, the tiebreak inside an epoch — recovery merges streams by
         (epoch, gsn), and since appends never yield that order equals the
         gsn order *)
  body : bytes;
}

let default_flags = function
  | Update -> (true, true)
  | Clr -> (false, true)
  | Commit | Prepare | Rollback | End_txn | Begin_ckpt | End_ckpt | Coord_commit | Coord_abort
  | Coord_end ->
      (false, false)

let make ?(page = Ids.nil_page) ?(undo_nxt_lsn = Lsn.nil) ?(undo_nxt_stream = -1) ?(rm_id = 0)
    ?(op = 0) ?undoable ?redoable ?(stream = 0) ?(epoch = 0) ?(gsn = 0) ?(body = Bytes.empty)
    ~txn ~prev_lsn kind =
  let du, dr = default_flags kind in
  {
    lsn = Lsn.nil;
    prev_lsn;
    txn;
    kind;
    page;
    undo_nxt_lsn;
    undo_nxt_stream;
    rm_id;
    op;
    undoable = (match undoable with Some u -> u | None -> du);
    redoable = (match redoable with Some r -> r | None -> dr);
    stream;
    epoch;
    gsn;
    body;
  }

let kind_to_int = function
  | Update -> 0
  | Clr -> 1
  | Commit -> 2
  | Prepare -> 3
  | Rollback -> 4
  | End_txn -> 5
  | Begin_ckpt -> 6
  | End_ckpt -> 7
  | Coord_commit -> 8
  | Coord_abort -> 9
  | Coord_end -> 10

let kind_of_int = function
  | 0 -> Update
  | 1 -> Clr
  | 2 -> Commit
  | 3 -> Prepare
  | 4 -> Rollback
  | 5 -> End_txn
  | 6 -> Begin_ckpt
  | 7 -> End_ckpt
  | 8 -> Coord_commit
  | 9 -> Coord_abort
  | 10 -> Coord_end
  | n -> raise (Bytebuf.Corrupt (Printf.sprintf "bad log record kind %d" n))

let kind_to_string = function
  | Update -> "UPDATE"
  | Clr -> "CLR"
  | Commit -> "COMMIT"
  | Prepare -> "PREPARE"
  | Rollback -> "ROLLBACK"
  | End_txn -> "END"
  | Begin_ckpt -> "BEGIN_CKPT"
  | End_ckpt -> "END_CKPT"
  | Coord_commit -> "COORD_COMMIT"
  | Coord_abort -> "COORD_ABORT"
  | Coord_end -> "COORD_END"

(* Fixed header bytes ahead of the length-prefixed body: kind u8, four i64
   (prev/txn/page/undo_nxt), four u16, two bools, two i64 (epoch/gsn), u32
   body length. Size hint for encode arenas. *)
let header_bytes = (4 * 8) + (4 * 2) + 2 + (2 * 8) + 4 + 1

let encode_into w t =
  Bytebuf.W.reset w;
  Bytebuf.W.u8 w (kind_to_int t.kind);
  Bytebuf.W.i64 w t.prev_lsn;
  Bytebuf.W.i64 w t.txn;
  Bytebuf.W.i64 w t.page;
  Bytebuf.W.i64 w t.undo_nxt_lsn;
  Bytebuf.W.u16 w (if t.undo_nxt_stream < 0 then t.stream else t.undo_nxt_stream);
  Bytebuf.W.u16 w t.rm_id;
  Bytebuf.W.u16 w t.op;
  Bytebuf.W.bool w t.undoable;
  Bytebuf.W.bool w t.redoable;
  Bytebuf.W.u16 w t.stream;
  Bytebuf.W.i64 w t.epoch;
  Bytebuf.W.i64 w t.gsn;
  Bytebuf.W.bytes w t.body

let encode t =
  let w = Bytebuf.W.create ~size:(header_bytes + Bytes.length t.body) () in
  encode_into w t;
  Bytebuf.W.contents w

let decode_from ~lsn r =
  let kind = kind_of_int (Bytebuf.R.u8 r) in
  let prev_lsn = Bytebuf.R.i64 r in
  let txn = Bytebuf.R.i64 r in
  let page = Bytebuf.R.i64 r in
  let undo_nxt_lsn = Bytebuf.R.i64 r in
  let undo_nxt_stream = Bytebuf.R.u16 r in
  let rm_id = Bytebuf.R.u16 r in
  let op = Bytebuf.R.u16 r in
  let undoable = Bytebuf.R.bool r in
  let redoable = Bytebuf.R.bool r in
  let stream = Bytebuf.R.u16 r in
  let epoch = Bytebuf.R.i64 r in
  let gsn = Bytebuf.R.i64 r in
  let body = Bytebuf.R.bytes r in
  Bytebuf.R.expect_end r;
  {
    lsn;
    prev_lsn;
    txn;
    kind;
    page;
    undo_nxt_lsn;
    undo_nxt_stream;
    rm_id;
    op;
    undoable;
    redoable;
    stream;
    epoch;
    gsn;
    body;
  }

let decode ~lsn s = decode_from ~lsn (Bytebuf.R.of_string s)

(* Frame format (PR 5): [u32 len][payload][u32 crc32(payload)].  The CRC
   trailer lets restart's tail scan distinguish a complete record from a
   torn append or bit-rot without trusting any recorded stable boundary. *)
let frame_overhead = 8

let frame payload =
  let n = Bytes.length payload in
  let out = Bytes.create (n + frame_overhead) in
  Bytes.set_int32_le out 0 (Int32.of_int n);
  Bytes.blit payload 0 out 4 n;
  Bytes.set_int32_le out (n + 4) (Int32.of_int (Crc.bytes ~off:4 ~len:n out));
  out

let frame_crc_ok ~payload ~stored = Crc.string payload = stored

let pp ppf t =
  Format.fprintf ppf "@[<h>[%a] %s txn=%d prev=%a" Lsn.pp t.lsn (kind_to_string t.kind) t.txn
    Lsn.pp t.prev_lsn;
  if t.stream <> 0 || t.epoch <> 0 then
    Format.fprintf ppf " s%d e%d g%d" t.stream t.epoch t.gsn;
  if t.page <> Ids.nil_page then Format.fprintf ppf " page=%d" t.page;
  if not (Lsn.is_nil t.undo_nxt_lsn) then begin
    Format.fprintf ppf " undo_nxt=%a" Lsn.pp t.undo_nxt_lsn;
    if t.undo_nxt_stream >= 0 && t.undo_nxt_stream <> t.stream then
      Format.fprintf ppf "@@s%d" t.undo_nxt_stream
  end;
  if t.rm_id <> 0 then Format.fprintf ppf " rm=%d op=%d" t.rm_id t.op;
  if Bytes.length t.body > 0 then Format.fprintf ppf " body=%dB" (Bytes.length t.body);
  Format.fprintf ppf "]@]"
