open Aries_util

(* The multi-stream WAL: N independent {!Logmgr} logs ("streams"), each a
   full segmented + CRC'd log with its own byte-offset LSNs, plus two
   process-wide counters stamped on every record at append time:

   - [epoch], the commit epoch. Group commit advances it per batch (and the
     synchronous commit path per commit); a commit is acknowledged only when
     every stream the transaction touched is forced through the batch's
     per-stream fence (rule R8). Epochs totally order commit batches without
     totally ordering appends — the "cheap global constraint" of Zhou et
     al.'s partially constrained logs.
   - [gsn], the global sequence number: a Lamport-style append counter that
     is the tiebreak inside an epoch. Recovery merges streams by
     [(epoch, gsn)]; appends never yield mid-record, so that order equals
     plain gsn order. The counter is recoverable: the max gsn among the
     streams' surviving last records bounds every surviving record's gsn
     (see {!recover_counters}).

   Routing: records that touch a page go to [hash(page) mod N], so {e all}
   of a page's records live on one stream — pageLSN/recLSN comparisons, the
   WAL rule, per-page redo and per-page log chains keep their single-log
   meaning verbatim. Pageless transaction-control records go to
   [hash(txn) mod N]; checkpoint records go to stream 0 (the control
   stream), which also holds the master record. *)

type t = {
  streams : Logmgr.t array;
  mutable epoch : int;
  mutable gsn : int;
}

let max_streams = 256

let create ?segment_size ?(streams = 1) () =
  if streams < 1 || streams > max_streams then
    invalid_arg (Printf.sprintf "Logset.create: streams must be in [1,%d]" max_streams);
  {
    streams = Array.init streams (fun _ -> Logmgr.create ?segment_size ());
    epoch = 1;
    gsn = 0;
  }

let of_mgr mgr = { streams = [| mgr |]; epoch = 1; gsn = 0 }

let n t = Array.length t.streams

let stream t i = t.streams.(i)

let control t = t.streams.(0)

let iteri t f = Array.iteri f t.streams

(* Fibonacci-hash mix: page/txn ids are small sequential ints, so a plain
   [mod] would put every hot page on stream 0. Deterministic across runs. *)
let mix x =
  let x = x * 0x9E3779B1 land max_int in
  (x lsr 16) lxor x

let route_page t pid = if Array.length t.streams = 1 then 0 else mix pid mod Array.length t.streams

let route_txn t txn = if Array.length t.streams = 1 then 0 else mix txn mod Array.length t.streams

let page_stream t pid = t.streams.(route_page t pid)

let current_epoch t = t.epoch

let advance_epoch t =
  t.epoch <- t.epoch + 1;
  t.epoch

let current_gsn t = t.gsn

let append t ~stream:i r =
  t.gsn <- t.gsn + 1;
  Logmgr.append t.streams.(i)
    {
      r with
      Logrec.stream = i;
      epoch = t.epoch;
      gsn = t.gsn;
      (* unstamped undo_nxt_stream means "my own stream" — the common case
         (page-oriented CLRs, dummy CLRs); cross-stream logical-undo CLRs
         arrive pre-stamped by {!Txnmgr.log_clr} *)
      undo_nxt_stream = (if r.Logrec.undo_nxt_stream < 0 then i else r.Logrec.undo_nxt_stream);
    }

let flush_all t = Array.iter Logmgr.flush t.streams

(* Re-derive the counters from what survived: every stream's last record
   carries that stream's max gsn/epoch (both are monotone in append order),
   so the max over streams bounds every surviving live record. Archived
   records are also covered: a segment is only archived under a later
   complete checkpoint whose End_ckpt is still live on stream 0 (the
   reclamation safety point never passes the anchoring checkpoint), and
   that End_ckpt's gsn exceeds every archived record's. *)
let recover_counters t =
  let e = ref 0 and g = ref 0 in
  Array.iter
    (fun m ->
      let l = Logmgr.last_lsn m in
      if not (Lsn.is_nil l) then begin
        let r = Logmgr.read m l in
        if r.Logrec.epoch > !e then e := r.Logrec.epoch;
        if r.Logrec.gsn > !g then g := r.Logrec.gsn
      end)
    t.streams;
  t.epoch <- max 1 (!e + 1);
  t.gsn <- max t.gsn !g

let crash t =
  (* Each stream independently loses (or keeps!) its unflushed tail: under
     the stream-shuffle fault the medium may have persisted any number of
     complete frames past one stream's boundary while another stream lost
     everything — the cross-stream adversary the epoch fence and the
     commit-record stream vector must survive. *)
  Array.iter
    (fun m -> Logmgr.crash ~retain:(fun avail -> Faultdisk.stream_retain ~avail) m)
    t.streams;
  t.gsn <- 0;
  recover_counters t

(* {2 Commit-record stream vector}

   A commit record's body names, for every stream the transaction touched,
   the LSN of the transaction's last record there. A surviving Commit
   record only {e counts} if each named record survived too — each stream's
   survivors are a prefix, so presence of the last implies presence of all.
   Necessary because a crash can keep the commit's stream past the fence
   while dropping another touched stream's tail; the fence (R8) guarantees
   an {e acknowledged} commit always validates. *)

let encode_commit_targets targets =
  let w = Bytebuf.W.create ~size:(4 + (10 * List.length targets)) () in
  Bytebuf.W.list w
    (fun w (s, l) ->
      Bytebuf.W.u16 w s;
      Bytebuf.W.i64 w l)
    targets;
  Bytebuf.W.contents w

let decode_commit_targets body =
  if Bytes.length body = 0 then []
  else
    let r = Bytebuf.R.of_bytes body in
    let ts =
      Bytebuf.R.list r (fun r ->
          let s = Bytebuf.R.u16 r in
          let l = Bytebuf.R.i64 r in
          (s, l))
    in
    Bytebuf.R.expect_end r;
    ts

(* Is the record at [(stream, lsn)] present, and really the one the record
   [c] named? Below the stream's start it was archived — archived segments
   were stable, hence present. In the live range, the offset may have been
   {e reused}: the referenced record was lost in a crash and a later
   append landed at the same offset. The gsn test rejects impostors: any
   record appended after a crash that [c] survived carries a gsn above
   [c]'s, because the recovered gsn counter exceeds every survived
   record's — [c]'s included. (No txn-id test: a commit's fence may name
   {e another} transaction's records, the global SMO fence.) *)
let target_survived t c (s, l) =
  Lsn.is_nil l
  ||
  let m = t.streams.(s) in
  l < Logmgr.start_offset m
  || l < Logmgr.end_offset m
     &&
     match Logmgr.read m l with
     | r -> r.Logrec.gsn < c.Logrec.gsn
     | exception _ -> false

let targets_valid t (c : Logrec.t) targets = List.for_all (target_survived t c) targets

(* End_txn and Prepare records carry the same vector (End in its body,
   Prepare ahead of its lock list): in a single log, "End survived" implies
   "every CLR before it survived", but across streams a rollback's End (or
   a preparing txn's Prepare) can outlive another stream's lost tail — an
   invalid vector turns the txn back into a loser. *)
let commit_valid t (c : Logrec.t) =
  c.Logrec.kind = Logrec.Commit && targets_valid t c (decode_commit_targets c.Logrec.body)

(* {2 Merged scan}

   Iterate live records of all streams in [(epoch, gsn)] order — the order
   restart analysis assumes. [starts.(s)] is where stream [s]'s scan begins
   ([Lsn.nil] = oldest retained record); each cursor is clamped to the
   stream's retained range. *)
let iter_merged t ~starts f =
  let nn = Array.length t.streams in
  let cur = Array.make nn None in
  let advance i off =
    let m = t.streams.(i) in
    if off < Logmgr.end_offset m then cur.(i) <- Some (Logmgr.read m off) else cur.(i) <- None
  in
  Array.iteri
    (fun i m ->
      let s = if Lsn.is_nil starts.(i) then Logmgr.start_offset m else starts.(i) in
      advance i (max s (Logmgr.start_offset m)))
    t.streams;
  let rec loop () =
    let best = ref (-1) in
    for i = 0 to nn - 1 do
      match cur.(i) with
      | Some r -> (
          match !best with
          | -1 -> best := i
          | b -> (
              match cur.(b) with
              | Some rb ->
                  if (r.Logrec.epoch, r.Logrec.gsn) < (rb.Logrec.epoch, rb.Logrec.gsn) then
                    best := i
              | None -> best := i))
      | None -> ()
    done;
    match !best with
    | -1 -> ()
    | i ->
        let r = Option.get cur.(i) in
        f r;
        advance i (Logmgr.record_end t.streams.(i) r.Logrec.lsn);
        loop ()
  in
  loop ()

(* {2 Snapshot} *)

let serialize t =
  (* serialize the streams first so the container writer can be sized
     exactly — no growth-doubling copies of megabyte-scale log images *)
  let imgs = Array.map Logmgr.serialize t.streams in
  let total = Array.fold_left (fun acc b -> acc + 4 + Bytes.length b) 18 imgs in
  let w = Bytebuf.W.create ~size:total () in
  Bytebuf.W.u16 w (Array.length t.streams);
  Bytebuf.W.i64 w t.epoch;
  Bytebuf.W.i64 w t.gsn;
  Array.iter (Bytebuf.W.bytes w) imgs;
  Bytebuf.W.contents w

let deserialize b =
  let r = Bytebuf.R.of_bytes b in
  let nn = Bytebuf.R.u16 r in
  let epoch = Bytebuf.R.i64 r in
  let gsn = Bytebuf.R.i64 r in
  let streams = Array.init nn (fun _ -> Logmgr.deserialize (Bytebuf.R.bytes r)) in
  Bytebuf.R.expect_end r;
  let t = { streams; epoch; gsn } in
  (* the saved counters cover the stable prefix; recover_counters can only
     tighten them upward if a retained record outruns the header *)
  recover_counters t;
  t.epoch <- max t.epoch epoch;
  t.gsn <- max t.gsn gsn;
  t
