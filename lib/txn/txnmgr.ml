open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Logset = Aries_wal.Logset
module Lockmgr = Aries_lock.Lockmgr
module Sched = Aries_sched.Sched
module Trace = Aries_trace.Trace

type state = Active | Committing | Prepared | Rolling_back

(* All per-transaction log state is a per-stream vector: a record's
   prev_lsn is the txn's previous record on the *same* stream, so each
   stream's chain is independently hole-free after a crash, and the undo
   driver merges the per-stream chains in reverse gsn order. *)
type txn = {
  txn_id : Ids.txn_id;
  mutable state : state;
  firsts : Lsn.t array;
  lasts : Lsn.t array;
  undo_nxts : Lsn.t array;
}

exception Aborted of Ids.txn_id * string

type rm = {
  rm_redo : Logrec.t -> unit;
  rm_undo : txn -> Logrec.t -> unit;
  rm_locks : Logrec.t -> (Lockmgr.name * Lockmgr.mode) list;
}

type t = {
  logs : Logset.t;
  lockmgr : Lockmgr.t;
  table : (Ids.txn_id, txn) Hashtbl.t;
  rms : (int, rm) Hashtbl.t;
  fibers : (Sched.fiber_id, txn) Hashtbl.t;
  mutable next_id : Ids.txn_id;
  mutable group_commit : Group_commit.t option;
  mutable preempt : (Lockmgr.name -> unit) option;
  mutable txn_end : (txn -> [ `Commit of int * int | `Rollback ] -> unit) option;
  smo_fence : Lsn.t array;
      (* per stream: the last log record of any completed multi-stream SMO
         bracket — folded into every commit/prepare fence (see
         [fence_targets]) *)
}

let create logs lockmgr =
  {
    logs;
    lockmgr;
    table = Hashtbl.create 32;
    rms = Hashtbl.create 8;
    fibers = Hashtbl.create 32;
    next_id = 1;
    group_commit = None;
    preempt = None;
    txn_end = None;
    smo_fence = Array.make (Logset.n logs) Lsn.nil;
  }

let set_group_commit t gc = t.group_commit <- gc

let group_commit t = t.group_commit

let logs t = t.logs

let log t = Logset.control t.logs

let txn_stream t id = Logset.route_txn t.logs id

let locks t = t.lockmgr

let nil_vec t = Array.make (Logset.n t.logs) Lsn.nil

let touched txn =
  let acc = ref [] in
  Array.iteri (fun s l -> if not (Lsn.is_nil l) then acc := (s, l) :: !acc) txn.lasts;
  List.rev !acc

(* Commit/Prepare fence targets: the txn's own per-stream lasts, raised to
   the global SMO fence. In a single log, forcing a commit record
   implicitly forces every earlier SMO record, so committed data can never
   outlive the structure change it sits in. Across streams that free
   ordering is gone: a committed insert into a freshly split page must not
   be acknowledged — nor honored by restart — unless the split's records
   on *other* streams are stable too, or recovery would find the SMO's
   anchor invalid, physically roll the surviving half of the split back,
   and destroy committed data with it. Folding the vector in is cheap
   (bracket records are usually long since flushed, making the extra
   [flush_to] a no-op) and transitively covers older SMOs, because
   per-stream forcing is prefix-closed. *)
let fence_targets t txn =
  let acc = ref [] in
  Array.iteri
    (fun s l ->
      let l = Lsn.max l t.smo_fence.(s) in
      if not (Lsn.is_nil l) then acc := (s, l) :: !acc)
    txn.lasts;
  List.rev !acc

let register_rm t ?(locks = fun _ -> []) ~rm_id ~redo ~undo () =
  if rm_id = 0 then invalid_arg "Txnmgr.register_rm: rm_id 0 is reserved";
  Hashtbl.replace t.rms rm_id { rm_redo = redo; rm_undo = undo; rm_locks = locks }

let rm t id =
  match Hashtbl.find_opt t.rms id with
  | Some rm -> rm
  | None -> invalid_arg (Printf.sprintf "Txnmgr: no resource manager %d registered" id)

let rm_redo t (r : Logrec.t) = (rm t r.rm_id).rm_redo r

let rm_undo t txn (r : Logrec.t) = (rm t r.rm_id).rm_undo txn r

let rm_locks t (r : Logrec.t) = (rm t r.rm_id).rm_locks r

let set_preempt_hook t f = t.preempt <- f

let set_txn_end_hook t f = t.txn_end <- f

let bind_fiber t txn = if Sched.in_fiber () then Hashtbl.replace t.fibers (Sched.current ()) txn

let current t =
  if Sched.in_fiber () then Hashtbl.find_opt t.fibers (Sched.current ()) else None

let unbind_fiber t txn =
  Hashtbl.iter
    (fun fid tx -> if tx == txn then Hashtbl.remove t.fibers fid)
    (Hashtbl.copy t.fibers)

let begin_txn t =
  let id = t.next_id in
  t.next_id <- id + 1;
  let txn =
    { txn_id = id; state = Active; firsts = nil_vec t; lasts = nil_vec t; undo_nxts = nil_vec t }
  in
  Hashtbl.replace t.table id txn;
  Lockmgr.attach t.lockmgr id;
  bind_fiber t txn;
  txn

let append t txn ~stream rec_ =
  let lsn = Logset.append t.logs ~stream rec_ in
  if Lsn.is_nil txn.firsts.(stream) then txn.firsts.(stream) <- lsn;
  txn.lasts.(stream) <- lsn;
  lsn

(* Routing: page records go to the page's stream (all of a page's records
   share one stream, preserving pageLSN/recLSN semantics); pageless records
   to the txn's control stream. *)
let route t txn page =
  if page <> Ids.nil_page then Logset.route_page t.logs page
  else Logset.route_txn t.logs txn.txn_id

let log_update t txn ?(page = Ids.nil_page) ?undoable ?redoable ~rm_id ~op ~body () =
  let stream = route t txn page in
  let r =
    Logrec.make ~page ?undoable ?redoable ~rm_id ~op ~body ~txn:txn.txn_id
      ~prev_lsn:txn.lasts.(stream) Logrec.Update
  in
  let lsn = append t txn ~stream r in
  if (match undoable with Some false -> false | Some true | None -> true) then
    txn.undo_nxts.(stream) <- lsn;
  lsn

let log_clr t txn ?(page = Ids.nil_page) ?stream ?undo_stream ?(rm_id = 0) ?(op = 0)
    ?(body = Bytes.empty) ~undo_nxt () =
  let stream = match stream with Some s -> s | None -> route t txn page in
  (* [undo_stream] is the stream of the record being compensated — where
     the cursor jump applies. A logical undo's CLR can land on a different
     page (the key moved), hence a different stream, than the compensated
     record; writing the jump into the CLR's own slot would poison that
     stream's cursor with a foreign offset. Default: the CLR's own stream
     (page-oriented compensation, dummy CLRs). *)
  let undo_stream = match undo_stream with Some s -> s | None -> stream in
  let r =
    Logrec.make ~page ~undo_nxt_lsn:undo_nxt ~undo_nxt_stream:undo_stream ~rm_id ~op ~body
      ~txn:txn.txn_id ~prev_lsn:txn.lasts.(stream) Logrec.Clr
  in
  let lsn = append t txn ~stream r in
  txn.undo_nxts.(undo_stream) <- undo_nxt;
  lsn

type nta = { nta_lasts : Lsn.t array; nta_cursors : Lsn.t array }

let nta_begin txn =
  { nta_lasts = Array.copy txn.lasts; nta_cursors = Array.copy txn.undo_nxts }

(* {2 Multi-stream NTA fence}

   A completed nested top action must be all-or-nothing under crash on
   *every* stream it touched. One dummy CLR per moved stream cannot give
   that: a crash may persist stream A's dummy (fencing A's half of the SMO
   from undo) while losing stream B's (exposing B's half to physical
   undo) — a half-rolled-back split. So a bracket that moved more than one
   stream is fenced by a single {e anchor} CLR on the txn's control
   stream. Its body carries two vectors over the moved streams:

   - jumps: (stream, pre-bracket undo cursor) — where each stream's undo
     cursor lands when the anchor is processed (a multi-stream UndoNxtLSN).
     The target is the cursor snapshot, NOT the pre-bracket last LSN: the
     two agree for a forward bracket (modulo non-undoable records the walk
     would merely step over), but for an SMO triggered during rollback the
     last-LSN vector points into already-compensated history. A cursor
     re-raised there replays undo — and a record whose compensation landed
     on a different stream (logical undo of a moved key) has no CLR on its
     own chain to shield it, so the replay double-undoes it. Everything
     above a stream's undo cursor is already handled (undone or fenced),
     so the cursor snapshot is always a sound landing point;
   - fences: (stream, last bracket record LSN) — the anchor's validity
     condition. Survivors per stream are a prefix, so "the last bracket
     record survived" means the stream's whole bracket did.

   The anchor is self-validating from the log alone ({!Logset.targets_valid}
   — same read-back machinery as the commit-record stream vector), so
   analysis, restart undo and instant restart's lazy undo all agree: anchor
   present and valid => every bracket record (on every stream) survived =>
   jump over all of them; anchor lost or invalid => no stream is fenced =>
   every surviving bracket record is physically compensated. Either way the
   SMO is atomic. A bracket that moved a single stream keeps the classic
   single dummy CLR — prefix survivorship already makes it atomic, and at
   N=1 the log stays byte-for-byte the single-log format. *)
let encode_nta_body ~jumps ~fences =
  let w = Bytebuf.W.create () in
  Bytebuf.W.bytes w (Logset.encode_commit_targets jumps);
  Bytebuf.W.bytes w (Logset.encode_commit_targets fences);
  Bytebuf.W.contents w

let decode_nta_body b =
  let r = Bytebuf.R.of_bytes b in
  let jumps = Logset.decode_commit_targets (Bytebuf.R.bytes r) in
  let fences = Logset.decode_commit_targets (Bytebuf.R.bytes r) in
  Bytebuf.R.expect_end r;
  (jumps, fences)

(* real CLRs carry their RM id; per-stream dummies have rm 0 and no body *)
let nta_anchor (r : Logrec.t) =
  r.Logrec.kind = Logrec.Clr && r.Logrec.rm_id = 0 && Bytes.length r.Logrec.body > 0

let nta_end t txn mark =
  let moved = ref [] in
  Array.iteri
    (fun s l -> if Lsn.compare txn.lasts.(s) l <> 0 then moved := s :: !moved)
    mark.nta_lasts;
  match List.rev !moved with
  | [] -> Lsn.nil
  | [ s ] -> log_clr t txn ~stream:s ~undo_nxt:mark.nta_cursors.(s) ()
  | moved ->
      let ctl = txn_stream t txn.txn_id in
      let jumps = List.map (fun s -> (s, mark.nta_cursors.(s))) moved in
      let fences = List.map (fun s -> (s, txn.lasts.(s))) moved in
      (* the record-level undo_nxt is cosmetic (every interpreter branches
         on {!nta_anchor} first); keep it meaningful for trace dumps *)
      let undo_nxt_lsn =
        match List.assoc_opt ctl jumps with Some l -> l | None -> mark.nta_cursors.(ctl)
      in
      let r =
        Logrec.make ~undo_nxt_lsn ~body:(encode_nta_body ~jumps ~fences) ~txn:txn.txn_id
          ~prev_lsn:txn.lasts.(ctl) Logrec.Clr
      in
      let lsn = append t txn ~stream:ctl r in
      List.iter (fun (s, l) -> txn.undo_nxts.(s) <- Lsn.min txn.undo_nxts.(s) l) jumps;
      (* the anchor itself stays on the undo path: a later record's undo
         can step a moved stream's cursor back onto a bracket record (its
         prev chain runs straight through the bracket), and only the
         anchor — processed at its own reverse-gsn turn, after every
         later record and before any bracket record — re-fences it. The
         control cursor therefore points at the anchor, not past it. *)
      txn.undo_nxts.(ctl) <- lsn;
      (* publish the bracket (and its anchor) to the global SMO fence:
         later commits of data that sits in the restructured pages must
         force these records — on streams those committers may never have
         touched — before acknowledging (see [fence_targets]) *)
      List.iter
        (fun (s, l) -> if Lsn.compare t.smo_fence.(s) l < 0 then t.smo_fence.(s) <- l)
        ((ctl, lsn) :: fences);
      lsn

let write_simple t txn ?(body = Bytes.empty) kind =
  let stream = txn_stream t txn.txn_id in
  let r = Logrec.make ~body ~txn:txn.txn_id ~prev_lsn:txn.lasts.(stream) kind in
  append t txn ~stream r

let release_and_end t txn =
  Lockmgr.release_all t.lockmgr ~txn:txn.txn_id;
  (* The End record carries the fence vector too: across streams, "the End
     survived" does not imply "every CLR before it survived" — restart
     validates the vector and turns a partially-lost rollback back into a
     loser. *)
  ignore
    (write_simple t txn ~body:(Logset.encode_commit_targets (touched txn)) Logrec.End_txn);
  Hashtbl.remove t.table txn.txn_id;
  unbind_fiber t txn

(* Make the commit-path record at [lsn] durable through the epoch fence
   before acknowledging: every stream in [targets] (the txn's per-stream
   last-LSN vector, including the commit record itself) must be forced
   through its entry. With a live group-commit daemon, enqueue the vector
   and suspend — the daemon forces each touched stream once per batch and
   wakes every covered committer. Otherwise force synchronously.

   The [fault_commit_early_ack] switch skips the force entirely and
   acknowledges anyway — a deliberate durability lie the online discipline
   checker must flag as an R4 violation. The [fault_wal_stream_fence_skip]
   switch forces only the commit record's own stream — the multi-stream
   variant of the same lie, flagged as R8 via the honest Commit_fence
   event. *)
let make_durable t ~txn ~commit_stream ~lsn ~epoch ~targets =
  (if Crashpoint.fault_active Crashpoint.fault_commit_early_ack then ()
   else
     match t.group_commit with
     | Some gc when Group_commit.active gc ->
         if Trace.enabled () then Trace.emit (Trace.Commit_enqueue { txn; lsn });
         Group_commit.wait_durable gc ~commit_stream ~targets
     | Some _ | None ->
         let skip = Crashpoint.fault_active Crashpoint.fault_wal_stream_fence_skip in
         List.iter
           (fun (s, l) ->
             if (not skip) || s = commit_stream then Logmgr.flush_to (Logset.stream t.logs s) l)
           targets;
         ignore (Logset.advance_epoch t.logs));
  (* Acknowledgement point: past these events the caller treats the commit
     (or prepare) as stable. R4 is judged on the commit record's own
     stream; R8(a) on the full fence vector. *)
  if Trace.enabled () then begin
    let wal = Logset.stream t.logs commit_stream in
    Trace.emit
      (Trace.Commit_ack { log = Logmgr.id wal; txn; lsn; lsn_end = Logmgr.record_end wal lsn });
    Trace.emit
      (Trace.Commit_fence
         {
           txn;
           epoch;
           targets =
             List.map
               (fun (s, l) ->
                 let m = Logset.stream t.logs s in
                 (Logmgr.id m, Logmgr.record_end m l))
               targets;
         })
  end

let commit t txn =
  (match txn.state with
  | Active | Prepared -> ()
  | Committing -> invalid_arg "Txnmgr.commit: already committing"
  | Rolling_back -> invalid_arg "Txnmgr.commit: transaction is rolling back");
  (* the body names, per touched stream, the txn's last record there —
     recovery counts the commit only if every named record survived *)
  let body = Logset.encode_commit_targets (fence_targets t txn) in
  let lsn = write_simple t txn ~body Logrec.Commit in
  let epoch = Logset.current_epoch t.logs in
  (* From here the txn's fate is sealed: its Commit record is in the log
     (possibly still volatile). If a fuzzy checkpoint fires while we are
     parked on the group-commit queue, the checkpoint body must not record
     us as Active — analysis starting after our Commit record would then
     resurrect us as a loser and undo committed work. [Committing] tells
     the checkpoint (and restart) to treat us as ended: Checkpoint.take
     forces every stream before publishing the master, so whenever that
     checkpoint anchors restart the Commit record and its whole fence
     vector are stable. *)
  txn.state <- Committing;
  (* Commit-stamp hook (MVCC): the CSN is the Commit record's (epoch, gsn)
     — appends never yield, so the log's current gsn still names it. Fired
     before the durability wait: the fate is sealed, and a snapshot pinned
     while we are parked on the group-commit queue must already see the
     stamped versions. *)
  (match t.txn_end with
  | Some f -> f txn (`Commit (epoch, Logset.current_gsn t.logs))
  | None -> ());
  make_durable t ~txn:txn.txn_id ~commit_stream:(txn_stream t txn.txn_id) ~lsn ~epoch
    ~targets:(fence_targets t txn);
  release_and_end t txn

(* Serialize the txn's retained lock names+modes into the Prepare body so
   restart can reacquire them for the in-doubt transaction. *)
let encode_locks lockmgr txn_id = Lockcodec.encode_list (Lockmgr.held_locks lockmgr ~txn:txn_id)

let encode_prepare_body ?(meta = Bytes.empty) ~targets ~locks () =
  let w = Bytebuf.W.create () in
  Bytebuf.W.bytes w (Logset.encode_commit_targets targets);
  Bytebuf.W.bytes w locks;
  (* 2PC routing meta (gid + coordinator shard, [Aries_shard.Twopc]); empty
     for a bare single-node prepare *)
  Bytebuf.W.bytes w meta;
  Bytebuf.W.contents w

let decode_prepare_body b =
  let r = Bytebuf.R.of_bytes b in
  let targets = Logset.decode_commit_targets (Bytebuf.R.bytes r) in
  let locks = Bytebuf.R.bytes r in
  let meta = Bytebuf.R.bytes r in
  Bytebuf.R.expect_end r;
  (targets, locks, meta)

let prepare ?meta t txn =
  (match txn.state with
  | Active -> ()
  | Committing | Prepared | Rolling_back -> invalid_arg "Txnmgr.prepare: not active");
  let body =
    encode_prepare_body ?meta ~targets:(fence_targets t txn)
      ~locks:(encode_locks t.lockmgr txn.txn_id) ()
  in
  let lsn = write_simple t txn ~body Logrec.Prepare in
  let epoch = Logset.current_epoch t.logs in
  Stats.incr Stats.txn_prepares;
  (* the Prepare force is a commit-path force too: it must fence every
     touched stream (an in-doubt txn's updates must all be stable before
     the prepare is acknowledged), and it batches when the daemon is live *)
  make_durable t ~txn:txn.txn_id ~commit_stream:(txn_stream t txn.txn_id) ~lsn ~epoch
    ~targets:(fence_targets t txn);
  txn.state <- Prepared

let commit_prepared t txn =
  if txn.state <> Prepared then invalid_arg "Txnmgr.commit_prepared: not prepared";
  txn.state <- Active;
  commit t txn

(* The undo driver: the txn's next record to compensate is the one with
   the highest gsn among its per-stream undo cursors — merging the
   per-stream reverse chains reproduces the classic single-log reverse-LSN
   undo order (required for physical SMO consistency), with same-stream
   prev_lsn/undo_nxt_lsn steps inside each chain. *)
let undo_candidate t ?stop_at txn =
  let best = ref None in
  Array.iteri
    (fun s cursor ->
      if
        (not (Lsn.is_nil cursor))
        && match stop_at with None -> true | Some sp -> Lsn.( < ) sp.(s) cursor
      then begin
        let r = Logmgr.read (Logset.stream t.logs s) cursor in
        match !best with
        | Some (_, (rb : Logrec.t)) when rb.Logrec.gsn >= r.Logrec.gsn -> ()
        | Some _ | None -> best := Some (s, r)
      end)
    txn.undo_nxts;
  !best

let undo_one t txn ((s, r) : int * Logrec.t) =
  match r.Logrec.kind with
  | Logrec.Update ->
      if r.Logrec.undoable then
        (* the RM writes a CLR (routed to the compensated record's stream)
           whose UndoNxtLSN is r.prev_lsn. If the undo itself required an
           SMO, the bracket's fence already restored every moved stream's
           cursor to its pre-bracket position (see nta_end), so progress
           is still strictly backwards. *)
        rm_undo t txn r
      else txn.undo_nxts.(s) <- r.Logrec.prev_lsn
  | Logrec.Clr ->
      if nta_anchor r then begin
        (* multi-stream NTA fence: if the whole bracket survived (validated
           straight from the log), jump every moved stream's cursor over
           its portion; if not, leave the cursors walking — the surviving
           bracket records roll back physically, restoring the pre-SMO
           tree. The re-application when the anchor is reached as the
           max-gsn candidate is sound: every record with a higher gsn is
           already compensated, so the jump targets never rewind a cursor
           forward. *)
        txn.undo_nxts.(s) <- r.Logrec.prev_lsn;
        let jumps, fences = decode_nta_body r.Logrec.body in
        if Logset.targets_valid t.logs r fences then
          (* clamped: a crash can interrupt a rollback *after* the
             anchor's turn, and restart re-encounters the anchor with
             some cursors already advanced past (or through) the jump
             targets — re-applying a jump must never rewind a cursor
             upward, or already-compensated records would be undone
             twice *)
          List.iter (fun (js, jl) -> txn.undo_nxts.(js) <- Lsn.min txn.undo_nxts.(js) jl) jumps
      end
      else begin
        (* the jump applies to the compensated record's stream; when the
           CLR sits on a different stream (cross-stream logical undo), its
           own stream's walk simply continues at the chain predecessor.
           Clamped for the same reason as the anchor jumps: a re-encounter
           after a crash mid-rollback must not rewind the compensated
           stream's cursor. *)
        txn.undo_nxts.(r.Logrec.undo_nxt_stream) <-
          Lsn.min txn.undo_nxts.(r.Logrec.undo_nxt_stream) r.Logrec.undo_nxt_lsn;
        if r.Logrec.undo_nxt_stream <> s then txn.undo_nxts.(s) <- r.Logrec.prev_lsn
      end
  | Logrec.Commit | Logrec.Prepare | Logrec.Rollback | Logrec.End_txn | Logrec.Begin_ckpt
  | Logrec.End_ckpt | Logrec.Coord_commit | Logrec.Coord_abort | Logrec.Coord_end ->
      txn.undo_nxts.(s) <- r.Logrec.prev_lsn

let undo_chain t txn ?stop_at () =
  let rec loop () =
    match undo_candidate t ?stop_at txn with
    | None -> ()
    | Some c ->
        undo_one t txn c;
        loop ()
  in
  loop ()

let rollback t ?(reason = "rollback") txn =
  ignore reason;
  txn.state <- Rolling_back;
  Lockmgr.set_no_victim t.lockmgr txn.txn_id;
  ignore (write_simple t txn Logrec.Rollback);
  undo_chain t txn ();
  (* undo already discarded each compensated version; the hook sweeps any
     leftover pending versions and unpins the snapshot *)
  (match t.txn_end with Some f -> f txn `Rollback | None -> ());
  release_and_end t txn

let savepoint txn = Array.copy txn.lasts

let rollback_to t txn sp =
  (match txn.state with
  | Active -> ()
  | Committing | Prepared | Rolling_back -> invalid_arg "Txnmgr.rollback_to: not active");
  undo_chain t txn ~stop_at:sp ()

let lock t txn name mode duration =
  assert (txn.state <> Rolling_back);
  (* Instant-restart preemption (PR 6): if the name is held by a restart
     loser whose undo is still pending, drive that loser's rollback to
     completion before queueing — the engine's hook loops until no live
     loser holds the name, so the eventual wait (if any) is against real
     transactions only, never against uncommitted crash residue. *)
  (match t.preempt with None -> () | Some f -> f name);
  match Lockmgr.lock t.lockmgr ~txn:txn.txn_id name mode duration with
  | Lockmgr.Granted -> ()
  | Lockmgr.Denied -> assert false (* unconditional requests are never denied *)
  | Lockmgr.Deadlock ->
      rollback t ~reason:"deadlock victim" txn;
      raise (Aborted (txn.txn_id, "deadlock"))

let try_lock t txn name mode duration =
  match Lockmgr.lock t.lockmgr ~txn:txn.txn_id ~cond:true name mode duration with
  | Lockmgr.Granted -> true
  | Lockmgr.Denied -> false
  | Lockmgr.Deadlock -> assert false (* conditional requests never wait *)

let find t id = Hashtbl.find_opt t.table id

let active_txns t =
  Hashtbl.fold (fun _ txn acc -> txn :: acc) t.table []
  |> List.sort (fun a b -> compare a.txn_id b.txn_id)

let restore_txn t ?firsts ~id ~state ~lasts ~undo_nxts () =
  (* Restart analysis passes the per-stream firsts vector it reconstructed
     (from the checkpoint body or the first record it saw for the txn on
     each stream). When the extent really is unknown, an all-nil vector
     with a non-nil last blocks log truncation conservatively
     (Ckptd.safety_points returns None). *)
  let firsts = match firsts with Some f -> Array.copy f | None -> nil_vec t in
  let txn =
    { txn_id = id; state; firsts; lasts = Array.copy lasts; undo_nxts = Array.copy undo_nxts }
  in
  Hashtbl.replace t.table id txn;
  Lockmgr.attach t.lockmgr id;
  if id >= t.next_id then t.next_id <- id + 1;
  txn

let finish t txn = release_and_end t txn

let clear t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.fibers

let next_txn_id t = t.next_id

let note_txn_id t id = if id >= t.next_id then t.next_id <- id + 1

let state_to_int = function
  | Active -> 0
  | Prepared -> 1
  | Rolling_back -> 2
  | Committing -> 3

let state_of_int = function
  | 0 -> Active
  | 1 -> Prepared
  | 2 -> Rolling_back
  | 3 -> Committing
  | n -> raise (Bytebuf.Corrupt (Printf.sprintf "bad txn state %d" n))
