open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Lockmgr = Aries_lock.Lockmgr
module Sched = Aries_sched.Sched
module Trace = Aries_trace.Trace

type state = Active | Committing | Prepared | Rolling_back

type txn = {
  txn_id : Ids.txn_id;
  mutable state : state;
  mutable first_lsn : Lsn.t;
  mutable last_lsn : Lsn.t;
  mutable undo_nxt : Lsn.t;
}

exception Aborted of Ids.txn_id * string

type rm = {
  rm_redo : Logrec.t -> unit;
  rm_undo : txn -> Logrec.t -> unit;
  rm_locks : Logrec.t -> (Lockmgr.name * Lockmgr.mode) list;
}

type t = {
  wal : Logmgr.t;
  lockmgr : Lockmgr.t;
  table : (Ids.txn_id, txn) Hashtbl.t;
  rms : (int, rm) Hashtbl.t;
  fibers : (Sched.fiber_id, txn) Hashtbl.t;
  mutable next_id : Ids.txn_id;
  mutable group_commit : Group_commit.t option;
  mutable preempt : (Lockmgr.name -> unit) option;
}

let create wal lockmgr =
  {
    wal;
    lockmgr;
    table = Hashtbl.create 32;
    rms = Hashtbl.create 8;
    fibers = Hashtbl.create 32;
    next_id = 1;
    group_commit = None;
    preempt = None;
  }

let set_group_commit t gc = t.group_commit <- gc

let group_commit t = t.group_commit

let log t = t.wal

let locks t = t.lockmgr

let register_rm t ?(locks = fun _ -> []) ~rm_id ~redo ~undo () =
  if rm_id = 0 then invalid_arg "Txnmgr.register_rm: rm_id 0 is reserved";
  Hashtbl.replace t.rms rm_id { rm_redo = redo; rm_undo = undo; rm_locks = locks }

let rm t id =
  match Hashtbl.find_opt t.rms id with
  | Some rm -> rm
  | None -> invalid_arg (Printf.sprintf "Txnmgr: no resource manager %d registered" id)

let rm_redo t (r : Logrec.t) = (rm t r.rm_id).rm_redo r

let rm_undo t txn (r : Logrec.t) = (rm t r.rm_id).rm_undo txn r

let rm_locks t (r : Logrec.t) = (rm t r.rm_id).rm_locks r

let set_preempt_hook t f = t.preempt <- f

let bind_fiber t txn = if Sched.in_fiber () then Hashtbl.replace t.fibers (Sched.current ()) txn

let current t =
  if Sched.in_fiber () then Hashtbl.find_opt t.fibers (Sched.current ()) else None

let unbind_fiber t txn =
  Hashtbl.iter
    (fun fid tx -> if tx == txn then Hashtbl.remove t.fibers fid)
    (Hashtbl.copy t.fibers)

let begin_txn t =
  let id = t.next_id in
  t.next_id <- id + 1;
  let txn = { txn_id = id; state = Active; first_lsn = Lsn.nil; last_lsn = Lsn.nil; undo_nxt = Lsn.nil } in
  Hashtbl.replace t.table id txn;
  Lockmgr.attach t.lockmgr id;
  bind_fiber t txn;
  txn

let append t txn rec_ =
  let lsn = Logmgr.append t.wal rec_ in
  if Lsn.is_nil txn.first_lsn then txn.first_lsn <- lsn;
  txn.last_lsn <- lsn;
  lsn

let log_update t txn ?(page = Ids.nil_page) ?undoable ?redoable ~rm_id ~op ~body () =
  let r =
    Logrec.make ~page ?undoable ?redoable ~rm_id ~op ~body ~txn:txn.txn_id
      ~prev_lsn:txn.last_lsn Logrec.Update
  in
  let lsn = append t txn r in
  if (match undoable with Some false -> false | Some true | None -> true) then
    txn.undo_nxt <- lsn;
  lsn

let log_clr t txn ?(page = Ids.nil_page) ?(rm_id = 0) ?(op = 0) ?(body = Bytes.empty) ~undo_nxt
    () =
  let r =
    Logrec.make ~page ~undo_nxt_lsn:undo_nxt ~rm_id ~op ~body ~txn:txn.txn_id
      ~prev_lsn:txn.last_lsn Logrec.Clr
  in
  let lsn = append t txn r in
  txn.undo_nxt <- undo_nxt;
  lsn

let nta_begin txn = txn.last_lsn

let nta_end t txn remembered = log_clr t txn ~undo_nxt:remembered ()

let write_simple t txn kind =
  let r = Logrec.make ~txn:txn.txn_id ~prev_lsn:txn.last_lsn kind in
  append t txn r

let release_and_end t txn =
  Lockmgr.release_all t.lockmgr ~txn:txn.txn_id;
  ignore (write_simple t txn Logrec.End_txn);
  Hashtbl.remove t.table txn.txn_id;
  unbind_fiber t txn

(* Make the record at [lsn] durable before acknowledging. With a live
   group-commit daemon, enqueue and suspend — the daemon forces once per
   batch and wakes every covered committer. Otherwise (per-commit mode, or
   outside the daemon's scheduler run) force synchronously.

   The [fault_commit_early_ack] switch skips the force entirely and
   acknowledges anyway — a deliberate durability lie the online discipline
   checker must flag as an R4 violation (the [Commit_ack] event lands with
   the commit record still in the volatile tail). *)
let make_durable t ~txn lsn =
  (if Crashpoint.fault_active Crashpoint.fault_commit_early_ack then ()
   else
     match t.group_commit with
     | Some gc when Group_commit.active gc ->
         if Trace.enabled () then Trace.emit (Trace.Commit_enqueue { txn; lsn });
         Group_commit.wait_durable gc lsn
     | Some _ | None -> Logmgr.flush_to t.wal lsn);
  (* Acknowledgement point: past this event the caller treats the commit
     (or prepare) as stable. R4 is judged here. *)
  if Trace.enabled () then
    Trace.emit
      (Trace.Commit_ack
         { log = Logmgr.id t.wal; txn; lsn; lsn_end = Logmgr.record_end t.wal lsn })

let commit t txn =
  (match txn.state with
  | Active | Prepared -> ()
  | Committing -> invalid_arg "Txnmgr.commit: already committing"
  | Rolling_back -> invalid_arg "Txnmgr.commit: transaction is rolling back");
  let lsn = write_simple t txn Logrec.Commit in
  (* From here the txn's fate is sealed: its Commit record is in the log
     (possibly still volatile). If a fuzzy checkpoint fires while we are
     parked on the group-commit queue, the checkpoint body must not record
     us as Active — analysis starting after our Commit record would then
     resurrect us as a loser and undo committed work. [Committing] tells
     the checkpoint (and restart) to treat us as ended: a checkpoint that
     completes after this point has End_ckpt > Commit, so the Commit record
     is stable whenever that checkpoint is the restart anchor. *)
  txn.state <- Committing;
  make_durable t ~txn:txn.txn_id lsn;
  release_and_end t txn

(* Serialize the txn's retained lock names+modes into the Prepare body so
   restart can reacquire them for the in-doubt transaction. *)
let encode_locks lockmgr txn_id = Lockcodec.encode_list (Lockmgr.held_locks lockmgr ~txn:txn_id)

let prepare t txn =
  (match txn.state with
  | Active -> ()
  | Committing | Prepared | Rolling_back -> invalid_arg "Txnmgr.prepare: not active");
  let body = encode_locks t.lockmgr txn.txn_id in
  let r =
    Logrec.make ~body ~txn:txn.txn_id ~prev_lsn:txn.last_lsn Logrec.Prepare
  in
  let lsn = append t txn r in
  (* the Prepare force is a commit-path force too: batch it when the
     daemon is live (the in-doubt state is acknowledged only once stable) *)
  make_durable t ~txn:txn.txn_id lsn;
  txn.state <- Prepared

let commit_prepared t txn =
  if txn.state <> Prepared then invalid_arg "Txnmgr.commit_prepared: not prepared";
  txn.state <- Active;
  commit t txn

(* The undo driver: walk the txn's chain from undo_nxt down to (exclusive)
   [stop_at], dispatching undoable updates to their resource manager. The RM
   writes the CLR; the driver then steps to the compensated record's
   predecessor. CLRs encountered (from an earlier partial rollback) are
   skipped wholesale via their UndoNxtLSN. *)
let undo_chain t txn ~stop_at =
  while Lsn.( < ) stop_at txn.undo_nxt && not (Lsn.is_nil txn.undo_nxt) do
    let r = Logmgr.read t.wal txn.undo_nxt in
    match r.Logrec.kind with
    | Logrec.Update ->
        if r.Logrec.undoable then
          (* the RM writes a CLR whose UndoNxtLSN is r.prev_lsn. If the undo
             itself required an SMO, undo_nxt now points at the SMO's dummy
             CLR instead; the Clr case below jumps over the whole interval,
             so progress is still strictly backwards. *)
          rm_undo t txn r
        else txn.undo_nxt <- r.Logrec.prev_lsn
    | Logrec.Clr -> txn.undo_nxt <- r.Logrec.undo_nxt_lsn
    | Logrec.Commit | Logrec.Prepare | Logrec.Rollback | Logrec.End_txn | Logrec.Begin_ckpt
    | Logrec.End_ckpt ->
        txn.undo_nxt <- r.Logrec.prev_lsn
  done

let rollback t ?(reason = "rollback") txn =
  ignore reason;
  txn.state <- Rolling_back;
  Lockmgr.set_no_victim t.lockmgr txn.txn_id;
  ignore (write_simple t txn Logrec.Rollback);
  undo_chain t txn ~stop_at:Lsn.nil;
  release_and_end t txn

let savepoint txn = txn.last_lsn

let rollback_to t txn sp =
  (match txn.state with
  | Active -> ()
  | Committing | Prepared | Rolling_back -> invalid_arg "Txnmgr.rollback_to: not active");
  undo_chain t txn ~stop_at:sp

let lock t txn name mode duration =
  assert (txn.state <> Rolling_back);
  (* Instant-restart preemption (PR 6): if the name is held by a restart
     loser whose undo is still pending, drive that loser's rollback to
     completion before queueing — the engine's hook loops until no live
     loser holds the name, so the eventual wait (if any) is against real
     transactions only, never against uncommitted crash residue. *)
  (match t.preempt with None -> () | Some f -> f name);
  match Lockmgr.lock t.lockmgr ~txn:txn.txn_id name mode duration with
  | Lockmgr.Granted -> ()
  | Lockmgr.Denied -> assert false (* unconditional requests are never denied *)
  | Lockmgr.Deadlock ->
      rollback t ~reason:"deadlock victim" txn;
      raise (Aborted (txn.txn_id, "deadlock"))

let try_lock t txn name mode duration =
  match Lockmgr.lock t.lockmgr ~txn:txn.txn_id ~cond:true name mode duration with
  | Lockmgr.Granted -> true
  | Lockmgr.Denied -> false
  | Lockmgr.Deadlock -> assert false (* conditional requests never wait *)

let find t id = Hashtbl.find_opt t.table id

let active_txns t =
  Hashtbl.fold (fun _ txn acc -> txn :: acc) t.table []
  |> List.sort (fun a b -> compare a.txn_id b.txn_id)

let restore_txn t ?(first_lsn = Lsn.nil) ~id ~state ~last_lsn ~undo_nxt () =
  (* Restart analysis passes the first_lsn it reconstructed (from the
     checkpoint body or the first record it saw for the txn). When the
     extent really is unknown, Lsn.nil with a non-nil last_lsn blocks log
     truncation conservatively (Ckptd.safety_point returns None). *)
  let txn = { txn_id = id; state; first_lsn; last_lsn; undo_nxt } in
  Hashtbl.replace t.table id txn;
  Lockmgr.attach t.lockmgr id;
  if id >= t.next_id then t.next_id <- id + 1;
  txn

let finish t txn = release_and_end t txn

let clear t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.fibers

let next_txn_id t = t.next_id

let note_txn_id t id = if id >= t.next_id then t.next_id <- id + 1

let state_to_int = function
  | Active -> 0
  | Prepared -> 1
  | Rolling_back -> 2
  | Committing -> 3

let state_of_int = function
  | 0 -> Active
  | 1 -> Prepared
  | 2 -> Rolling_back
  | 3 -> Committing
  | n -> raise (Bytebuf.Corrupt (Printf.sprintf "bad txn state %d" n))
