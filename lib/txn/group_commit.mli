(** Group commit: batched log forces for concurrent committers.

    ARIES/IM's efficiency story is about minimizing synchronous work on the
    hot path, and the single remaining synchronous I/O of a no-force system
    is the commit-record log force. With per-commit forcing, N concurrent
    committers pay N forces; with group commit they pay ~1: each committer
    appends its Commit record, enqueues its LSN on the commit queue, and
    suspends; a scheduler-resident daemon forces the log {e once} to cover
    the whole batch (policy: maximum batch size, maximum scheduler-step
    delay) and wakes every covered waiter.

    Durability contract: a committer is woken only {e after} the force that
    covers its commit record returned, so [Txnmgr.commit] never acknowledges
    an unforced commit. If the force raises (a simulated power failure), no
    waiter is woken and no transaction is acknowledged. WAL-rule forces
    (page steal/eviction) never go through this queue — they remain
    synchronous [Logmgr.flush_to] calls in the buffer manager.

    The daemon is spawned per scheduler run (see [Db.run]); [active] is
    false outside the run it was spawned in, and commits then fall back to
    a synchronous force. *)

module Lsn = Aries_wal.Lsn

type policy = {
  max_batch : int;  (** force as soon as this many committers are queued *)
  max_delay_steps : int;
      (** ... or when the oldest queued committer has waited this many
          scheduler steps, whichever comes first *)
}

val default_policy : policy
(** [{ max_batch = 8; max_delay_steps = 8 }]. *)

type t

val create : ?policy:policy -> Aries_wal.Logmgr.t -> t

val policy : t -> policy

val pending : t -> int
(** Committers currently enqueued and suspended. *)

val active : t -> bool
(** True iff called inside the scheduler run the daemon was attached to:
    the queue is live and [wait_durable] will be served. *)

val attach : t -> unit
(** Bind the queue to the current scheduler run (call from the run's main
    fiber before spawning the daemon). Waiters cached from a previous —
    crashed or stalled — run are discarded: their continuations belong to a
    dead scheduler and must never be woken. *)

val wait_durable : t -> Lsn.t -> unit
(** Enqueue and suspend until the daemon's next batch force covers [lsn].
    Returns immediately if the LSN is already stable. *)

val nudge : t -> unit
(** Wake the daemon out of its idle wait (work arrival is signalled
    automatically; this is for shutdown/close). *)

val force_batch : t -> unit
(** Force once to cover every currently-enqueued committer and wake them.
    Exposed for the daemon and for drain paths; a no-op when the queue is
    empty. *)

val run_daemon : t -> stop:(unit -> bool) -> unit
(** The daemon body (pass to [Sched.spawn_daemon]). Loops: sleep until work
    arrives, hold the batch open per [policy], force once, wake the batch.
    Exits — after draining any pending batch without further delay — when
    [stop ()] or [Sched.shutting_down ()]. *)
