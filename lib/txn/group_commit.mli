(** Group commit: batched, epoch-fenced log forces for concurrent
    committers.

    ARIES/IM's efficiency story is about minimizing synchronous work on the
    hot path, and the single remaining synchronous I/O of a no-force system
    is the commit-record log force. With per-commit forcing, N concurrent
    committers pay N forces; with group commit they pay ~1 {e per touched
    stream}: each committer appends its Commit record, enqueues its
    per-stream fence-target vector on the commit queue, and suspends; a
    scheduler-resident daemon folds the batch's vectors into per-stream
    maxima, forces each covered stream {e once} (policy: maximum batch
    size, maximum scheduler-step delay), advances the commit epoch, and
    wakes every covered waiter.

    Durability contract (rule R8): a committer is woken only {e after}
    every stream its vector names is forced through its entry, so
    [Txnmgr.commit] never acknowledges a commit whose updates on {e any}
    stream are still volatile. If a force raises (a simulated power
    failure), no waiter is woken and no transaction is acknowledged.
    WAL-rule forces (page steal/eviction) never go through this queue —
    they remain synchronous [Logmgr.flush_to] calls in the buffer manager.

    The daemon is spawned per scheduler run (see [Db.run]); [active] is
    false outside the run it was spawned in, and commits then fall back to
    synchronous per-stream forces. *)

module Lsn = Aries_wal.Lsn

type policy = {
  max_batch : int;  (** force as soon as this many committers are queued *)
  max_delay_steps : int;
      (** ... or when the oldest queued committer has waited this many
          scheduler steps, whichever comes first *)
}

val default_policy : policy
(** [{ max_batch = 8; max_delay_steps = 8 }]. *)

type t

val create : ?policy:policy -> Aries_wal.Logset.t -> t

val policy : t -> policy

val pending : t -> int
(** Committers currently enqueued and suspended. *)

val set_io_model : t -> (int -> int) option -> unit
(** Install a synthetic log-device model for benchmarking: [cost bytes] is
    the number of scheduler steps one stream's force of [bytes] unflushed
    bytes occupies the (per-stream) log device. With a model installed,
    [force_batch] runs each stream's force in its own fiber against an
    absolute shared deadline, so a batch costs ~max (not sum) of the
    per-stream costs — the device parallelism N log streams exist to buy.
    [None] (the default) forces inline and back to back, byte-for-byte
    identical to a single-stream group commit when N = 1. *)

val active : t -> bool
(** True iff called inside the scheduler run the daemon was attached to:
    the queue is live and [wait_durable] will be served. *)

val attach : t -> unit
(** Bind the queue to the current scheduler run (call from the run's main
    fiber before spawning the daemon). Waiters cached from a previous —
    crashed or stalled — run are discarded: their continuations belong to a
    dead scheduler and must never be woken. *)

val wait_durable : t -> commit_stream:int -> targets:(int * Lsn.t) list -> unit
(** Enqueue and suspend until the daemon's next batch force covers every
    [(stream, lsn)] in [targets] ([commit_stream] is the stream holding the
    committer's Commit record — the one the fence-skip fault still honors).
    Returns immediately if every target is already stable. *)

val nudge : t -> unit
(** Wake the daemon out of its idle wait (work arrival is signalled
    automatically; this is for shutdown/close). *)

val force_batch : t -> unit
(** Force each stream named by any enqueued committer through the batch
    maximum, advance the commit epoch, and wake the batch. Exposed for the
    daemon and for drain paths; a no-op when the queue is empty. *)

val run_daemon : t -> stop:(unit -> bool) -> unit
(** The daemon body (pass to [Sched.spawn_daemon]). Loops: sleep until work
    arrives, hold the batch open per [policy], force once per touched
    stream, wake the batch. Exits — after draining any pending batch
    without further delay — when [stop ()] or [Sched.shutting_down ()]. *)
