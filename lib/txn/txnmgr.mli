(** Transaction manager: the transaction table, per-stream PrevLSN
    chaining, commit with the epoch fence, total/partial rollback, nested
    top actions, and the resource-manager registry through which rollback
    and restart recovery dispatch undo/redo of resource-specific log
    records.

    With a multi-stream WAL ({!Aries_wal.Logset}) a transaction's records
    are spread over the streams its pages route to, and every piece of
    per-transaction log state becomes a per-stream vector: a record's
    [prev_lsn] is the transaction's previous record {e on the same stream},
    so each stream's chain is independently hole-free after a crash. The
    undo driver merges the per-stream chains in reverse [gsn] order —
    always compensating the globally most recent owed record — which
    preserves the classic single-log reverse-LSN undo order (and its
    physical-SMO soundness argument) exactly.

    Commit durability is the {e epoch fence} (rule R8): the Commit record's
    body names, per touched stream, the transaction's last LSN there, and
    the commit is acknowledged only once {e every} named stream is forced
    through its entry — not just the stream holding the Commit record.
    End_txn and Prepare records carry the same vector so restart can tell
    a fully-survived rollback/prepare from one whose other-stream tail a
    crash dropped.

    The undo driver implements the ARIES rules: undoable updates are undone
    through their resource manager (which writes CLRs); CLRs are never
    undone — the driver jumps over the compensated interval via
    [undo_nxt_lsn]; so rollbacks make bounded progress even across repeated
    failures. Nested top actions (used by index SMOs) are bracketed with
    {!nta_begin}/{!nta_end}; the fence [nta_end] writes (a dummy CLR for a
    single-stream bracket, a self-validating anchor CLR for a multi-stream
    one) makes the bracketed changes permanent w.r.t. the enclosing
    transaction's rollback — atomically across streams — while leaving
    them undoable if the bracket never completes. *)

open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logset = Aries_wal.Logset
module Lockmgr = Aries_lock.Lockmgr

type state =
  | Active
  | Committing
      (** commit record appended but not yet acknowledged durable (e.g.
          parked on the group-commit queue). The fate is sealed: a fuzzy
          checkpoint that observes this state records it, and restart
          analysis treats the transaction as committed — sound because
          {!Aries_recovery.Checkpoint.take} forces {e every} stream before
          publishing the master record, so whenever that checkpoint anchors
          restart the Commit record and all its fence targets are stable. *)
  | Prepared  (** in-doubt: survives restart with locks reacquired *)
  | Rolling_back

type txn = {
  txn_id : Ids.txn_id;
  mutable state : state;
  firsts : Lsn.t array;
      (** per stream: the txn's first record there; [Lsn.nil] where it has
          written nothing, or where the extent is unknown after a restore
          (treated as blocking by log truncation when [lasts] is non-nil) *)
  lasts : Lsn.t array;  (** per stream: most recent record of this txn *)
  undo_nxts : Lsn.t array;
      (** per stream: next record to examine when rolling back *)
}

exception Aborted of Ids.txn_id * string
(** Raised to the application after an involuntary total rollback (deadlock
    victim). The rollback has already completed when this is raised. *)

type t

val create : Logset.t -> Lockmgr.t -> t

val logs : t -> Logset.t

val log : t -> Aries_wal.Logmgr.t
(** The control stream (stream 0) — checkpoint records and the master
    record live there. *)

val txn_stream : t -> Ids.txn_id -> int
(** The stream this transaction's pageless control records (Commit,
    Prepare, Rollback, End) route to. *)

val touched : txn -> (int * Lsn.t) list
(** The txn's per-stream last-LSN vector, streams it wrote only — the
    commit/End/Prepare fence targets. *)

val locks : t -> Lockmgr.t

(** {1 Resource managers} *)

val register_rm :
  t ->
  ?locks:(Logrec.t -> (Lockmgr.name * Lockmgr.mode) list) ->
  rm_id:int ->
  redo:(Logrec.t -> unit) ->
  undo:(txn -> Logrec.t -> unit) ->
  unit ->
  unit
(** [redo] applies a record to its page, page-oriented (restart redo and
    media recovery). [undo] compensates a record during rollback: it must
    write CLR(s) via {!log_clr} (or regular records for SMOs performed
    during undo) and apply the change. [locks] (default: none) derives the
    commit-duration lock names the record's writer must have held —
    instant-restart analysis reacquires them on a loser's behalf so new
    transactions conflict with (rather than read past) uncommitted crash
    residue; SMO / structure records derive no locks. *)

val rm_redo : t -> Logrec.t -> unit

val rm_undo : t -> txn -> Logrec.t -> unit

val rm_locks : t -> Logrec.t -> (Lockmgr.name * Lockmgr.mode) list
(** The registered [locks] derivation for the record's resource manager. *)

val set_preempt_hook : t -> (Lockmgr.name -> unit) option -> unit
(** Install (or clear) the instant-restart preemption hook consulted by
    {!lock} before every unconditional request: given the requested name,
    the hook drives to completion the undo of any restart loser still
    holding it, so user transactions never queue behind crash residue
    indefinitely. Undo itself takes no locks, so the hook cannot recurse. *)

val set_txn_end_hook : t -> (txn -> [ `Commit of int * int | `Rollback ] -> unit) option -> unit
(** Install (or clear) the transaction-end hook the MVCC version store
    listens on. [`Commit (epoch, gsn)] fires inside {!commit} right after
    the Commit record is appended — its (epoch, gsn) is the commit sequence
    number — and {e before} the durability wait: the fate is sealed (see
    {!state}), and snapshots pinned while the committer is parked on the
    group-commit queue must already see the stamped versions. [`Rollback]
    fires in total rollback after undo completes, before locks release. *)

(** {1 Transaction lifecycle} *)

val begin_txn : t -> txn
(** Also binds the transaction to the current fiber, if any. *)

val current : t -> txn option
(** The transaction bound to the calling fiber. *)

val bind_fiber : t -> txn -> unit

val commit : t -> txn -> unit
(** Write Commit (its body naming, per touched stream, the txn's last LSN
    there) and make it durable through the epoch fence — every touched
    stream forced through its target, the only synchronous log I/O in the
    happy path. With per-commit forcing these are direct [Logmgr.flush_to]
    calls; with a live group-commit daemon (see {!set_group_commit} and
    [Group_commit]) the committer enqueues its target vector and suspends
    until the daemon's next batched force covers every entry, so N
    concurrent commits cost ~1 force per touched stream. Either way the
    call returns only after the fence holds (modulo deliberately-injected
    faults); locks are released and End written after that. *)

val set_group_commit : t -> Group_commit.t option -> unit
(** Install (or remove) the group-commit queue consulted by {!commit} and
    {!prepare}. When absent — or when the queue's daemon is not live in the
    current scheduler run — commits force synchronously. *)

val group_commit : t -> Group_commit.t option

val prepare : ?meta:bytes -> t -> txn -> unit
(** First phase of 2PC: logs Prepare (its body carrying the fence target
    vector, the txn's lock names for restart validation and reacquisition,
    and the opaque [meta] blob — the sharding layer stores the global
    transaction id and coordinator shard there, see
    [Aries_shard.Twopc.encode_prepare_meta]) and forces every touched
    stream. *)

val commit_prepared : t -> txn -> unit

val rollback : t -> ?reason:string -> txn -> unit
(** Total rollback: undo everything, release locks, write End. *)

val savepoint : txn -> Lsn.t array
(** A point to partially roll back to (a copy of the txn's per-stream
    last-LSN vector). *)

val rollback_to : t -> txn -> Lsn.t array -> unit
(** Partial rollback to a savepoint; the transaction remains active and
    keeps all its locks (ARIES does not release locks on partial rollback). *)

(** {1 Logging} *)

val log_update :
  t ->
  txn ->
  ?page:Ids.page_id ->
  ?undoable:bool ->
  ?redoable:bool ->
  rm_id:int ->
  op:int ->
  body:bytes ->
  unit ->
  Lsn.t
(** Routed by page ([hash(page) mod N]; pageless records by txn id), so all
    of a page's records share one stream. *)

val log_clr :
  t ->
  txn ->
  ?page:Ids.page_id ->
  ?stream:int ->
  ?undo_stream:int ->
  ?rm_id:int ->
  ?op:int ->
  ?body:bytes ->
  undo_nxt:Lsn.t ->
  unit ->
  Lsn.t
(** [page]/[stream] route the CLR itself (a page's stream automatically;
    [stream] overrides for pageless dummy CLRs — {!nta_end} fences every
    touched stream). [undo_stream] names the stream [undo_nxt] addresses —
    the {e compensated} record's stream, which differs from the CLR's own
    when a logical undo lands its compensation on a different page
    (ARIES/IM §4: undo an insert whose key has since moved leaves). It
    defaults to the CLR's own stream, the page-oriented common case. *)

(** {1 Nested top actions} *)

type nta
(** A bracket mark: the txn's per-stream last-LSN vector (Figure 8/9)
    plus its per-stream undo cursors, both snapshotted at
    {!nta_begin}. *)

val nta_begin : txn -> nta
(** Open a nested-top-action bracket: remember the txn's per-stream
    last-LSN vector and undo cursors. *)

val nta_end : t -> txn -> nta -> Lsn.t
(** Fence the bracket opened by {!nta_begin}, making the records in
    between invisible to rollback. A bracket that moved one stream gets
    the classic dummy CLR; one that moved several streams gets a single
    {e anchor} CLR on the txn's control stream whose body carries a
    multi-stream jump vector plus a per-stream fence over the bracket's
    last records: the jumps are honored only while the whole bracket
    demonstrably survives on every moved stream, so a crash can never
    fence one stream's half of an SMO while exposing another's to
    physical undo. Jump targets (and the dummy CLR's UndoNxtLSN) are the
    {e pre-bracket undo cursors}, not the pre-bracket last LSNs: for a
    forward bracket the two land on the same next-to-undo record, but
    for an SMO triggered {e during} rollback the last-LSN vector points
    at already-compensated history — landing there replays undone work
    whose CLRs may live on other streams (Figure 10's dummy CLR points
    at the not-yet-undone key delete for the same reason). Returns the
    fence record's LSN ([Lsn.nil] if the bracket wrote nothing). *)

val nta_anchor : Logrec.t -> bool
(** Is this CLR a multi-stream NTA anchor (carries a jump/fence vector
    body rather than a plain same-stream UndoNxtLSN)? *)

val decode_nta_body : bytes -> (int * Lsn.t) list * (int * Lsn.t) list
(** An anchor CLR's [(jumps, fences)] vectors: where each moved stream's
    undo cursor lands, and the bracket's last record per moved stream
    (the anchor's validity condition, checked with
    {!Logset.targets_valid}). *)

(** {1 Undo driving} (shared with restart recovery) *)

val undo_candidate : t -> ?stop_at:Lsn.t array -> txn -> (int * Logrec.t) option
(** The txn's next record to undo — the one with the highest gsn among its
    per-stream [undo_nxts] cursors (above [stop_at] per stream, when
    given), read from its stream. [None] when the rollback (to [stop_at])
    is complete. *)

val undo_one : t -> txn -> int * Logrec.t -> unit
(** Process one {!undo_candidate}: dispatch an undoable update to its
    resource manager (which writes the CLR and advances the cursor), or
    step the stream's cursor over CLRs / non-undoable records. *)

(** {1 Prepare body codec} *)

val encode_prepare_body : ?meta:bytes -> targets:(int * Lsn.t) list -> locks:bytes -> unit -> bytes

val decode_prepare_body : bytes -> (int * Lsn.t) list * bytes * bytes
(** [(fence targets, encoded lock list, 2PC meta blob)] — [meta] is empty
    for a bare single-node prepare. *)

(** {1 Locking} *)

val lock : t -> txn -> Lockmgr.name -> Lockmgr.mode -> Lockmgr.duration -> unit
(** Unconditional request. If the transaction is chosen as deadlock victim,
    it is rolled back in place and {!Aborted} is raised. Must not be called
    while holding latches (asserted by the index manager's discipline, not
    here). *)

val try_lock : t -> txn -> Lockmgr.name -> Lockmgr.mode -> Lockmgr.duration -> bool
(** Conditional request; never blocks. *)

(** {1 Introspection / recovery support} *)

val find : t -> Ids.txn_id -> txn option

val active_txns : t -> txn list
(** All transactions currently in the table, any state; sorted by id. *)

val restore_txn :
  t ->
  ?firsts:Lsn.t array ->
  id:Ids.txn_id ->
  state:state ->
  lasts:Lsn.t array ->
  undo_nxts:Lsn.t array ->
  unit ->
  txn
(** Restart analysis rebuilding the table. [firsts] is the per-stream
    oldest-LSN vector the transaction wrote (reconstructed from the
    checkpoint body or the scan); when omitted it defaults to all-nil,
    which — combined with a non-nil last on some stream — marks the extent
    unknown and blocks log-space reclamation conservatively. The arrays
    are copied. *)

val finish : t -> txn -> unit
(** Write End and drop from the table (restart undo completion). *)

val clear : t -> unit
(** Drop all volatile transaction state (crash simulation). *)

val next_txn_id : t -> Ids.txn_id
(** The id the next [begin_txn] would use (monotonic; restored after
    restart from the log scan so ids never collide). *)

val note_txn_id : t -> Ids.txn_id -> unit

val state_to_int : state -> int

val state_of_int : int -> state
