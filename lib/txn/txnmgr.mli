(** Transaction manager: the transaction table, PrevLSN chaining, commit,
    total/partial rollback, nested top actions, and the resource-manager
    registry through which rollback and restart recovery dispatch undo/redo
    of resource-specific log records.

    The undo driver implements the ARIES rules: undoable updates are undone
    through their resource manager (which writes CLRs); CLRs are never
    undone — the driver jumps over the compensated interval via
    [undo_nxt_lsn]; so rollbacks make bounded progress even across repeated
    failures. Nested top actions (used by index SMOs) are bracketed with
    {!nta_begin}/{!nta_end}; the dummy CLR written by [nta_end] makes the
    bracketed changes permanent w.r.t. the enclosing transaction's rollback
    while leaving them undoable if the bracket never completes. *)

open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Lockmgr = Aries_lock.Lockmgr

type state =
  | Active
  | Committing
      (** commit record appended but not yet acknowledged durable (e.g.
          parked on the group-commit queue). The fate is sealed: a fuzzy
          checkpoint that observes this state records it, and restart
          analysis treats the transaction as committed — sound because the
          checkpoint's End_ckpt record follows the Commit record in the
          log, so whenever that checkpoint anchors restart the Commit
          record is stable too. *)
  | Prepared  (** in-doubt: survives restart with locks reacquired *)
  | Rolling_back

type txn = {
  txn_id : Ids.txn_id;
  mutable state : state;
  mutable first_lsn : Lsn.t;
      (** the txn's first log record; [Lsn.nil] if it has written nothing,
          or if the txn was restored by restart analysis (unknown — treated
          as blocking by log truncation) *)
  mutable last_lsn : Lsn.t;  (** most recent log record of this txn *)
  mutable undo_nxt : Lsn.t;  (** next record to examine when rolling back *)
}

exception Aborted of Ids.txn_id * string
(** Raised to the application after an involuntary total rollback (deadlock
    victim). The rollback has already completed when this is raised. *)

type t

val create : Aries_wal.Logmgr.t -> Lockmgr.t -> t

val log : t -> Aries_wal.Logmgr.t

val locks : t -> Lockmgr.t

(** {1 Resource managers} *)

val register_rm :
  t ->
  ?locks:(Logrec.t -> (Lockmgr.name * Lockmgr.mode) list) ->
  rm_id:int ->
  redo:(Logrec.t -> unit) ->
  undo:(txn -> Logrec.t -> unit) ->
  unit ->
  unit
(** [redo] applies a record to its page, page-oriented (restart redo and
    media recovery). [undo] compensates a record during rollback: it must
    write CLR(s) via {!log_clr} (or regular records for SMOs performed
    during undo) and apply the change. [locks] (default: none) derives the
    commit-duration lock names the record's writer must have held —
    instant-restart analysis reacquires them on a loser's behalf so new
    transactions conflict with (rather than read past) uncommitted crash
    residue; SMO / structure records derive no locks. *)

val rm_redo : t -> Logrec.t -> unit

val rm_undo : t -> txn -> Logrec.t -> unit

val rm_locks : t -> Logrec.t -> (Lockmgr.name * Lockmgr.mode) list
(** The registered [locks] derivation for the record's resource manager. *)

val set_preempt_hook : t -> (Lockmgr.name -> unit) option -> unit
(** Install (or clear) the instant-restart preemption hook consulted by
    {!lock} before every unconditional request: given the requested name,
    the hook drives to completion the undo of any restart loser still
    holding it, so user transactions never queue behind crash residue
    indefinitely. Undo itself takes no locks, so the hook cannot recurse. *)

(** {1 Transaction lifecycle} *)

val begin_txn : t -> txn
(** Also binds the transaction to the current fiber, if any. *)

val current : t -> txn option
(** The transaction bound to the calling fiber. *)

val bind_fiber : t -> txn -> unit

val commit : t -> txn -> unit
(** Write Commit and make it durable — the only synchronous log I/O in the
    happy path. With per-commit forcing this is one [Logmgr.flush_to]; with
    a live group-commit daemon (see {!set_group_commit} and
    [Group_commit]), the committer enqueues and suspends until the daemon's
    next batched force covers its Commit record, so N concurrent commits
    cost ~1 force. Either way the call returns only after the record is
    stable (modulo the deliberately-injected skip-flush fault); locks are
    released and End written after that. *)

val set_group_commit : t -> Group_commit.t option -> unit
(** Install (or remove) the group-commit queue consulted by {!commit} and
    {!prepare}. When absent — or when the queue's daemon is not live in the
    current scheduler run — commits force synchronously. *)

val group_commit : t -> Group_commit.t option

val prepare : t -> txn -> unit
(** First phase of 2PC: logs Prepare (with the txn's lock names in the
    body, for restart reacquisition) and forces the log. *)

val commit_prepared : t -> txn -> unit

val rollback : t -> ?reason:string -> txn -> unit
(** Total rollback: undo everything, release locks, write End. *)

val savepoint : txn -> Lsn.t
(** A point to partially roll back to (the txn's current last LSN). *)

val rollback_to : t -> txn -> Lsn.t -> unit
(** Partial rollback to a savepoint; the transaction remains active and
    keeps all its locks (ARIES does not release locks on partial rollback). *)

(** {1 Logging} *)

val log_update :
  t ->
  txn ->
  ?page:Ids.page_id ->
  ?undoable:bool ->
  ?redoable:bool ->
  rm_id:int ->
  op:int ->
  body:bytes ->
  unit ->
  Lsn.t

val log_clr :
  t -> txn -> ?page:Ids.page_id -> ?rm_id:int -> ?op:int -> ?body:bytes -> undo_nxt:Lsn.t -> unit -> Lsn.t

(** {1 Nested top actions} *)

val nta_begin : txn -> Lsn.t
(** Remember the LSN of the txn's most recent record (Figure 8/9). *)

val nta_end : t -> txn -> Lsn.t -> Lsn.t
(** Write the dummy CLR whose UndoNxtLSN is the remembered LSN, making the
    records in between invisible to rollback. Returns the dummy CLR's LSN. *)

(** {1 Locking} *)

val lock : t -> txn -> Lockmgr.name -> Lockmgr.mode -> Lockmgr.duration -> unit
(** Unconditional request. If the transaction is chosen as deadlock victim,
    it is rolled back in place and {!Aborted} is raised. Must not be called
    while holding latches (asserted by the index manager's discipline, not
    here). *)

val try_lock : t -> txn -> Lockmgr.name -> Lockmgr.mode -> Lockmgr.duration -> bool
(** Conditional request; never blocks. *)

(** {1 Introspection / recovery support} *)

val find : t -> Ids.txn_id -> txn option

val active_txns : t -> txn list
(** All transactions currently in the table, any state; sorted by id. *)

val restore_txn :
  t ->
  ?first_lsn:Lsn.t ->
  id:Ids.txn_id ->
  state:state ->
  last_lsn:Lsn.t ->
  undo_nxt:Lsn.t ->
  unit ->
  txn
(** Restart analysis rebuilding the table. [first_lsn] is the oldest LSN
    the transaction wrote (reconstructed from the checkpoint body or the
    scan); when omitted it defaults to [Lsn.nil], which — combined with a
    non-nil [last_lsn] — marks the extent unknown and blocks log-space
    reclamation conservatively. *)

val finish : t -> txn -> unit
(** Write End and drop from the table (restart undo completion). *)

val clear : t -> unit
(** Drop all volatile transaction state (crash simulation). *)

val next_txn_id : t -> Ids.txn_id
(** The id the next [begin_txn] would use (monotonic; restored after
    restart from the log scan so ids never collide). *)

val note_txn_id : t -> Ids.txn_id -> unit

val state_to_int : state -> int

val state_of_int : int -> state
