open Aries_util
module Lockmgr = Aries_lock.Lockmgr

let encode_name w (n : Lockmgr.name) =
  match n with
  | Lockmgr.Rid r ->
      Bytebuf.W.u8 w 0;
      Bytebuf.W.i64 w r.Ids.rid_page;
      Bytebuf.W.u32 w r.Ids.rid_slot
  | Lockmgr.Key_value (ix, v) ->
      Bytebuf.W.u8 w 1;
      Bytebuf.W.i64 w ix;
      Bytebuf.W.string w v
  | Lockmgr.Eof ix ->
      Bytebuf.W.u8 w 2;
      Bytebuf.W.i64 w ix
  | Lockmgr.Table tbl ->
      Bytebuf.W.u8 w 3;
      Bytebuf.W.i64 w tbl
  | Lockmgr.Page_lock p ->
      Bytebuf.W.u8 w 4;
      Bytebuf.W.i64 w p
  | Lockmgr.Tree_lock ix ->
      Bytebuf.W.u8 w 5;
      Bytebuf.W.i64 w ix

let decode_name r : Lockmgr.name =
  match Bytebuf.R.u8 r with
  | 0 ->
      let rid_page = Bytebuf.R.i64 r in
      let rid_slot = Bytebuf.R.u32 r in
      Lockmgr.Rid { Ids.rid_page; rid_slot }
  | 1 ->
      let ix = Bytebuf.R.i64 r in
      let v = Bytebuf.R.string r in
      Lockmgr.Key_value (ix, v)
  | 2 -> Lockmgr.Eof (Bytebuf.R.i64 r)
  | 3 -> Lockmgr.Table (Bytebuf.R.i64 r)
  | 4 -> Lockmgr.Page_lock (Bytebuf.R.i64 r)
  | 5 -> Lockmgr.Tree_lock (Bytebuf.R.i64 r)
  | n -> raise (Bytebuf.Corrupt (Printf.sprintf "bad lock name tag %d" n))

let mode_to_int : Lockmgr.mode -> int = function
  | Lockmgr.IS -> 0
  | Lockmgr.IX -> 1
  | Lockmgr.S -> 2
  | Lockmgr.SIX -> 3
  | Lockmgr.X -> 4

let mode_of_int : int -> Lockmgr.mode = function
  | 0 -> Lockmgr.IS
  | 1 -> Lockmgr.IX
  | 2 -> Lockmgr.S
  | 3 -> Lockmgr.SIX
  | 4 -> Lockmgr.X
  | n -> raise (Bytebuf.Corrupt (Printf.sprintf "bad lock mode %d" n))

let encode_list locks =
  let w = Bytebuf.W.create () in
  Bytebuf.W.list w
    (fun w (name, mode) ->
      encode_name w name;
      Bytebuf.W.u8 w (mode_to_int mode))
    locks;
  Bytebuf.W.contents w

let decode_list b =
  let r = Bytebuf.R.of_bytes b in
  let locks =
    Bytebuf.R.list r (fun r ->
        let name = decode_name r in
        let mode = mode_of_int (Bytebuf.R.u8 r) in
        (name, mode))
  in
  Bytebuf.R.expect_end r;
  locks
