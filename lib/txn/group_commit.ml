open Aries_util
module Lsn = Aries_wal.Lsn
module Logmgr = Aries_wal.Logmgr
module Logset = Aries_wal.Logset
module Sched = Aries_sched.Sched

type policy = { max_batch : int; max_delay_steps : int }

let default_policy = { max_batch = 8; max_delay_steps = 8 }

type waiter = {
  gw_commit_stream : int;
  gw_targets : (int * Lsn.t) list;
  gw_waker : Sched.waker;
}

type t = {
  logs : Logset.t;
  policy : policy;
  waiters : waiter Vec.t;
  cv : Sched.Condvar.t;
  mutable daemon_live : bool;
  mutable daemon_run : int;  (* Sched.run_id of the run the daemon lives in *)
  mutable io_model : (int -> int) option;
}

let create ?(policy = default_policy) logs =
  if policy.max_batch < 1 then invalid_arg "Group_commit.create: max_batch must be >= 1";
  if policy.max_delay_steps < 0 then
    invalid_arg "Group_commit.create: max_delay_steps must be >= 0";
  {
    logs;
    policy;
    waiters = Vec.create ();
    cv = Sched.Condvar.create "group-commit";
    daemon_live = false;
    daemon_run = 0;
    io_model = None;
  }

let policy t = t.policy

let pending t = Vec.length t.waiters

let set_io_model t m = t.io_model <- m

(* The daemon is usable only from inside the scheduler incarnation it was
   spawned in: wakers cached from a dead scheduler must never be woken. *)
let active t = Sched.in_fiber () && t.daemon_live && t.daemon_run = Sched.run_id ()

(* Called by the opener (inside the run's main fiber, before any user work):
   discard waiters left over from a crashed/stalled previous run — their
   continuations belong to a dead scheduler — and mark the daemon live so
   commits enqueue instead of forcing synchronously. *)
let attach t =
  if t.daemon_run <> Sched.run_id () then Vec.clear t.waiters;
  t.daemon_run <- Sched.run_id ();
  t.daemon_live <- true

let nudge t = Sched.Condvar.broadcast t.cv

(* Run the batch's per-stream forces. Without an I/O model they run inline,
   back to back — with one stream this is byte-for-byte the old single
   [flush_to]. With an I/O model, each stream's force runs in its own fiber
   and then busy-waits until [t0 + cost bytes] scheduler steps have elapsed
   (an absolute deadline from a shared start, so concurrent forces overlap:
   the batch completes in ~max of the per-stream costs, not their sum —
   the disk-parallelism a multi-stream log exists to buy). *)
let run_forces t forces =
  match t.io_model with
  | Some cost when Sched.in_fiber () ->
      let t0 = Sched.steps_now () in
      let remaining = ref (List.length forces) in
      let failed = ref None in
      List.iter
        (fun (s, target) ->
          let m = Logset.stream t.logs s in
          let bytes = max 0 (Logmgr.record_end m target - Logmgr.flushed_offset m) in
          ignore
            (Sched.spawn ~name:(Printf.sprintf "gc-force-%d" s) (fun () ->
                 (try
                    Logmgr.flush_to m target;
                    let deadline = t0 + cost bytes in
                    while Sched.steps_now () < deadline do
                      Sched.yield ()
                    done
                  with e -> if !failed = None then failed := Some e);
                 decr remaining)))
        forces;
      while !remaining > 0 do
        Sched.yield ()
      done;
      Option.iter raise !failed
  | Some _ | None ->
      List.iter (fun (s, target) -> Logmgr.flush_to (Logset.stream t.logs s) target) forces

(* One batch = one force per touched stream: fold every enqueued committer's
   fence vector into per-stream maxima, force each covered stream through
   its maximum (the shared instrumented choke points), advance the commit
   epoch, then wake everyone. If any force raises (a simulated power
   failure at a [wal.flush] crash point), no waiter is woken — an unforced
   commit is never acknowledged.

   Under the [wal.stream-fence-skip] fault the batch "forgets" every stream
   that is not some waiter's own commit-record stream — the multi-stream
   durability lie: the Commit records themselves are all forced, but update
   records on other streams may not be. Committers are still woken and
   still emit honest [Commit_fence] vectors, which is how the R8 checker
   catches it end to end. *)
let force_batch t =
  let n = Vec.length t.waiters in
  if n > 0 then begin
    let ws = Vec.to_list t.waiters in
    Vec.clear t.waiters;
    let skip = Crashpoint.fault_active Crashpoint.fault_wal_stream_fence_skip in
    let allowed =
      if not skip then fun _ -> true
      else
        let commit_streams =
          List.fold_left (fun acc w -> w.gw_commit_stream :: acc) [] ws
        in
        fun s -> List.mem s commit_streams
    in
    let maxima = Hashtbl.create 8 in
    List.iter
      (fun w ->
        List.iter
          (fun (s, l) ->
            if allowed s then
              match Hashtbl.find_opt maxima s with
              | Some l' when Lsn.compare l' l >= 0 -> ()
              | _ -> Hashtbl.replace maxima s l)
          w.gw_targets)
      ws;
    let forces = Hashtbl.fold (fun s l acc -> (s, l) :: acc) maxima [] in
    let forces = List.sort compare forces in
    (try run_forces t forces
     with e ->
       (* A force failed (e.g. transient-I/O retry exhaustion): nobody is
          woken — an unforced commit is never acknowledged — and nobody is
          lost: every committer goes back in the queue so a later force can
          cover it. *)
       List.iter (fun w -> Vec.push t.waiters w) ws;
       raise e);
    ignore (Logset.advance_epoch t.logs);
    Stats.incr Stats.commit_batches;
    Stats.add Stats.commit_batch_size n;
    Stats.incr (Stats.commit_batch_bucket n);
    List.iter (fun w -> Sched.wake w.gw_waker) ws
  end

let wait_durable t ~commit_stream ~targets =
  let stable =
    List.for_all (fun (s, l) -> Logmgr.is_stable (Logset.stream t.logs s) l) targets
  in
  if not stable then begin
    Stats.incr Stats.commit_group_waits;
    Sched.suspend (fun w ->
        Vec.push t.waiters { gw_commit_stream = commit_stream; gw_targets = targets; gw_waker = w };
        (* wake the daemon; it batches until the policy window closes *)
        Sched.Condvar.signal t.cv)
  end

let run_daemon t ~stop =
  Fun.protect
    ~finally:(fun () -> t.daemon_live <- false)
    (fun () ->
      let stopping () = stop () || Sched.shutting_down () || Crashpoint.tripped () in
      let rec loop () =
        if stopping () then begin
          (* drain: force whatever is pending immediately (no delay window),
             wake the covered committers, and exit. After a simulated power
             failure the stable state is frozen — never force, never wake:
             a commit cut mid-batch is not acknowledged. *)
          if not (Crashpoint.tripped ()) then force_batch t
        end
        else if Vec.is_empty t.waiters then begin
          Sched.Condvar.wait t.cv;
          loop ()
        end
        else begin
          (* accumulation window: let more committers pile on until the
             batch is full or the step deadline passes *)
          let t0 = Sched.steps_now () in
          while
            Vec.length t.waiters < t.policy.max_batch
            && Sched.steps_now () - t0 < t.policy.max_delay_steps
            && not (stopping ())
          do
            Sched.yield ()
          done;
          (if not (Crashpoint.tripped ()) then
             try force_batch t
             with Storage_error.Error _ ->
               (* typed storage failure out of the force: the batch was
                  re-enqueued by [force_batch]; back off one step and retry
                  on the next round (the transient-EIO storm passes in
                  simulated time) *)
               Sched.yield ());
          loop ()
        end
      in
      loop ())
