open Aries_util
module Lsn = Aries_wal.Lsn
module Logmgr = Aries_wal.Logmgr
module Sched = Aries_sched.Sched

type policy = { max_batch : int; max_delay_steps : int }

let default_policy = { max_batch = 8; max_delay_steps = 8 }

type waiter = { gw_lsn : Lsn.t; gw_waker : Sched.waker }

type t = {
  log : Logmgr.t;
  policy : policy;
  waiters : waiter Vec.t;
  cv : Sched.Condvar.t;
  mutable daemon_live : bool;
  mutable daemon_run : int;  (* Sched.run_id of the run the daemon lives in *)
}

let create ?(policy = default_policy) log =
  if policy.max_batch < 1 then invalid_arg "Group_commit.create: max_batch must be >= 1";
  if policy.max_delay_steps < 0 then
    invalid_arg "Group_commit.create: max_delay_steps must be >= 0";
  {
    log;
    policy;
    waiters = Vec.create ();
    cv = Sched.Condvar.create "group-commit";
    daemon_live = false;
    daemon_run = 0;
  }

let policy t = t.policy

let pending t = Vec.length t.waiters

(* The daemon is usable only from inside the scheduler incarnation it was
   spawned in: wakers cached from a dead scheduler must never be woken. *)
let active t = Sched.in_fiber () && t.daemon_live && t.daemon_run = Sched.run_id ()

(* Called by the opener (inside the run's main fiber, before any user work):
   discard waiters left over from a crashed/stalled previous run — their
   continuations belong to a dead scheduler — and mark the daemon live so
   commits enqueue instead of forcing synchronously. *)
let attach t =
  if t.daemon_run <> Sched.run_id () then Vec.clear t.waiters;
  t.daemon_run <- Sched.run_id ();
  t.daemon_live <- true

let nudge t = Sched.Condvar.broadcast t.cv

(* One batch = one force: cover every currently-enqueued committer with a
   single [Logmgr.flush_to] (the shared instrumented choke point), then wake
   them all. If the force raises (a simulated power failure at the
   [wal.flush] crash point), no waiter is woken — an unforced commit is
   never acknowledged. *)
let force_batch t =
  let n = Vec.length t.waiters in
  if n > 0 then begin
    let ws = Vec.to_list t.waiters in
    Vec.clear t.waiters;
    let target = List.fold_left (fun acc w -> Lsn.max acc w.gw_lsn) Lsn.nil ws in
    (try Logmgr.flush_to t.log target
     with e ->
       (* The force failed (e.g. transient-I/O retry exhaustion): nobody is
          woken — an unforced commit is never acknowledged — and nobody is
          lost: every committer goes back in the queue so a later force can
          cover it. *)
       List.iter (fun w -> Vec.push t.waiters w) ws;
       raise e);
    Stats.incr Stats.commit_batches;
    Stats.add Stats.commit_batch_size n;
    Stats.incr (Stats.commit_batch_bucket n);
    List.iter (fun w -> Sched.wake w.gw_waker) ws
  end

let wait_durable t lsn =
  if not (Logmgr.is_stable t.log lsn) then begin
    Stats.incr Stats.commit_group_waits;
    Sched.suspend (fun w ->
        Vec.push t.waiters { gw_lsn = lsn; gw_waker = w };
        (* wake the daemon; it batches until the policy window closes *)
        Sched.Condvar.signal t.cv)
  end

let run_daemon t ~stop =
  Fun.protect
    ~finally:(fun () -> t.daemon_live <- false)
    (fun () ->
      let stopping () = stop () || Sched.shutting_down () || Crashpoint.tripped () in
      let rec loop () =
        if stopping () then begin
          (* drain: force whatever is pending immediately (no delay window),
             wake the covered committers, and exit. After a simulated power
             failure the stable state is frozen — never force, never wake:
             a commit cut mid-batch is not acknowledged. *)
          if not (Crashpoint.tripped ()) then force_batch t
        end
        else if Vec.is_empty t.waiters then begin
          Sched.Condvar.wait t.cv;
          loop ()
        end
        else begin
          (* accumulation window: let more committers pile on until the
             batch is full or the step deadline passes *)
          let t0 = Sched.steps_now () in
          while
            Vec.length t.waiters < t.policy.max_batch
            && Sched.steps_now () - t0 < t.policy.max_delay_steps
            && not (stopping ())
          do
            Sched.yield ()
          done;
          (if not (Crashpoint.tripped ()) then
             try force_batch t
             with Storage_error.Error _ ->
               (* typed storage failure out of the force: the batch was
                  re-enqueued by [force_batch]; back off one step and retry
                  on the next round (the transient-EIO storm passes in
                  simulated time) *)
               Sched.yield ());
          loop ()
        end
      in
      loop ())
