(** Background MVCC version garbage collector (protocol #5).

    A trickle daemon in the mold of {!Ckptd} and the buffer cleaner: every
    [every_steps] scheduler steps it runs one collection round, reclaiming
    chain versions no live or future snapshot can reach (everything below
    the oldest-active-snapshot horizon — see [Mvstore.gc]).

    The collector itself is injected as a closure: the database layer binds
    it to its version store and horizon computation, so this module — like
    the rest of [lib/recovery] — depends only on the scheduler and utility
    layers, not on the index manager. *)

type cfg = { every_steps : int  (** scheduler steps between rounds *) }

val default_cfg : cfg

val round : gc:(unit -> int) -> int
(** Run one collection round: invoke [gc] (which returns the number of
    versions reclaimed) and bump [Stats.vgcd_rounds]. *)

val run_daemon : cfg -> gc:(unit -> int) -> stop:(unit -> bool) -> unit
(** Run rounds forever on the calling fiber, sleeping [every_steps]
    scheduler steps between rounds; exits when [stop ()] turns true, the
    scheduler shuts down, or a simulated crash has tripped. *)
