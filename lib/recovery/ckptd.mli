(** The fuzzy-checkpoint daemon: bounded restart and bounded log growth.

    ARIES (§2) assumes checkpoints that bound restart analysis and a log
    whose prefix can eventually be discarded. This daemon delivers both
    without quiescing user fibers: every [every_steps] scheduler steps it
    takes a fuzzy checkpoint ({!Checkpoint.take} — Begin/End pair, no
    quiescing), computes the {!safety_point}, and truncates whole log
    segments below it ({!Aries_wal.Logmgr.truncate_prefix}), handing each
    to the archive so media recovery keeps working. When a stale dirty
    page is what pins the oldest live segment, the daemon nudges the page
    cleaner ([Bufpool.clean_some]) before checkpointing so the safety
    point can advance.

    Spawned by [Db.start_daemons] under the [~checkpoint] knob, using the
    same daemon-fiber lifecycle as the group-commit and page-cleaner
    daemons (die-on-crash, drain-on-close). *)

module Lsn = Aries_wal.Lsn

type cfg = {
  every_steps : int;  (** scheduler steps between checkpoints *)
  nudge_pages : int;  (** pages per cleaner nudge when the tail is pinned *)
  truncate : bool;  (** reclaim log space after each checkpoint *)
}

val default_cfg : cfg
(** [{ every_steps = 64; nudge_pages = 2; truncate = true }] *)

val validate : cfg -> unit
(** Raises [Invalid_argument] on nonsensical knobs. *)

val safety_points : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> Lsn.t array option
(** The log-space reclamation safety points, one per stream: [min(the last
    complete checkpoint's per-stream redo point, min recLSN of dirty pages
    routed to the stream, active transactions' first LSN on the stream)] —
    each monotone nondecreasing. [None] when truncation would be unsafe on
    {e any} stream: no complete checkpoint yet, or a transaction of unknown
    extent (nil first with a non-nil last on some stream) in the table.
    Emits one [Log_safety] trace event per stream (the independent
    announcements rule R6 judges truncations against). *)

val safety_point : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> Lsn.t option
(** The control stream's entry of {!safety_points} (identical to the
    classic single-log point when [streams = 1]). *)

val reclaim : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> int
(** Truncate each stream's sealed segments below its safety point; returns
    total bytes reclaimed (0 if blocked or nothing reclaimable). Under
    [Crashpoint.fault_ckpt_premature_truncate] it deliberately overshoots
    every stream to its flushed boundary so the R6 checker can be proven to
    catch a premature truncate. *)

val round : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> cfg -> unit
(** One daemon iteration: optional cleaner nudge, fuzzy checkpoint,
    reclamation. Exposed for tests and [Db.trim_log]. *)

val run_daemon : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> cfg -> stop:(unit -> bool) -> unit
(** The daemon body: loop [round] every [every_steps] scheduler steps until
    [stop ()], scheduler shutdown, or a tripped crash point. *)
