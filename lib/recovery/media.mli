(** Media recovery (§5): page-oriented recovery of indexes and data from a
    fuzzy image copy plus the log.

    A dump is taken without quiescing anything: it snapshots the current
    disk images (which may contain uncommitted or torn-across-pages state)
    together with a {e redo point} — an LSN from which rolling the log
    forward over the dump reconstructs the current page contents. When a
    page later becomes unreadable, it is reloaded from the dump and brought
    up to date by replaying just that page's log records, with the usual
    page_LSN test. No tree traversal is involved. *)

open Aries_util
module Lsn = Aries_wal.Lsn

(** Reclaimed-WAL-segment archive: the sink {!Aries_wal.Logmgr} hands
    dropped segments to, retained verbatim so a fuzzy dump can still be
    rolled forward after the live log's prefix is truncated. *)
module Archive : sig
  type t

  val create : unit -> t

  val attach : t -> Aries_wal.Logmgr.t -> unit
  (** Install this archive as the log's archive sink: every segment
      reclaimed by [Logmgr.truncate_prefix] is appended here first, keyed
      by the log's id (streams archive independently). *)

  val attach_set : t -> Aries_wal.Logset.t -> unit
  (** {!attach} every stream of the set. *)

  val segment_count : t -> int
  (** Across all streams. *)

  val bytes : t -> int

  val record_count : t -> int

  val end_offset : ?log:int -> t -> int
  (** One past the last archived byte of the given log (default 0 — the
    control stream); 0 when empty. Equals that live log's start offset
    when every truncation went through this sink. *)

  val iter_records : t -> log:int -> from:Lsn.t -> (Aries_wal.Logrec.t -> unit) -> unit
  (** Decode one log's archived records with LSN >= [from] in LSN order
      ([Lsn.nil] = all). *)

  val iter_history : t -> Aries_wal.Logmgr.t -> from:Lsn.t -> (Aries_wal.Logrec.t -> unit) -> unit
  (** One stream's full record history from [from]: its archived segments
      (strictly below the live start) followed by the live log. *)

  val serialize : t -> bytes

  val deserialize : bytes -> t
end

type dump

val take_dump : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> dump
(** Fuzzy image copy of the whole store. Internally takes a checkpoint
    first so the dump's per-stream redo points are well defined and
    recent. *)

val dump_redo_lsn : ?stream:int -> dump -> Lsn.t
(** The dump's redo point on the given stream (default 0). *)

val recover_page :
  ?archive:Archive.t -> Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> dump -> Ids.page_id -> int
(** Restore one lost page from the dump and roll it forward. Returns the
    number of log records applied. The page must not be fixed by anyone.
    After return the authoritative current version is on disk. Pass
    [archive] when the log may have been truncated since the dump: the
    roll-forward then reads reclaimed segments from the archive before the
    live log. *)

val auto_repair :
  ?archive:Archive.t -> Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> Ids.page_id -> int
(** Automatic media repair (PR 5): rebuild a page whose stored image
    failed its CRC / decode on read, with {e no dump} — the archive plus
    the live log hold the full history from the beginning (the archive
    sink received every reclaimed segment), so replaying from [Lsn.nil]
    recreates the page from its format record. Returns the number of log
    records applied; counts [Stats.disk_repairs] and traces
    [Page_repaired]. Installed by [Db] as the buffer pool's repairer
    hook, so a quarantined page heals transparently on the next fix. *)
