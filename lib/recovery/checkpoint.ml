open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Txnmgr = Aries_txn.Txnmgr
module Lockcodec = Aries_txn.Lockcodec
module Lockmgr = Aries_lock.Lockmgr
module Bufpool = Aries_buffer.Bufpool
module Trace = Aries_trace.Trace

type ck_txn = {
  ct_id : Ids.txn_id;
  ct_state : Txnmgr.state;
  ct_first : Lsn.t;
  ct_last : Lsn.t;
  ct_undo_nxt : Lsn.t;
  ct_locks : bytes;
}

type body = {
  ck_txns : ck_txn list;
  ck_dpt : (Ids.page_id * Lsn.t) list;
  ck_chains : (Ids.page_id * Lsn.t list) list;
      (* per dirty page, every record LSN applied since it became dirty
         (oldest first): instant restart repeats a pending page's history
         by reading exactly these records instead of scanning the log *)
  ck_next_txn : Ids.txn_id;
}

let encode_body b =
  let w = Bytebuf.W.create () in
  Bytebuf.W.i64 w b.ck_next_txn;
  Bytebuf.W.list w
    (fun w ct ->
      Bytebuf.W.i64 w ct.ct_id;
      Bytebuf.W.u8 w (Txnmgr.state_to_int ct.ct_state);
      Bytebuf.W.i64 w ct.ct_first;
      Bytebuf.W.i64 w ct.ct_last;
      Bytebuf.W.i64 w ct.ct_undo_nxt;
      Bytebuf.W.bytes w ct.ct_locks)
    b.ck_txns;
  Bytebuf.W.list w
    (fun w (pid, rec_lsn) ->
      Bytebuf.W.i64 w pid;
      Bytebuf.W.i64 w rec_lsn)
    b.ck_dpt;
  Bytebuf.W.list w
    (fun w (pid, chain) ->
      Bytebuf.W.i64 w pid;
      Bytebuf.W.list w Bytebuf.W.i64 chain)
    b.ck_chains;
  Bytebuf.W.contents w

let decode_body bytes =
  let r = Bytebuf.R.of_bytes bytes in
  let ck_next_txn = Bytebuf.R.i64 r in
  let ck_txns =
    Bytebuf.R.list r (fun r ->
        let ct_id = Bytebuf.R.i64 r in
        let ct_state = Txnmgr.state_of_int (Bytebuf.R.u8 r) in
        let ct_first = Bytebuf.R.i64 r in
        let ct_last = Bytebuf.R.i64 r in
        let ct_undo_nxt = Bytebuf.R.i64 r in
        let ct_locks = Bytebuf.R.bytes r in
        { ct_id; ct_state; ct_first; ct_last; ct_undo_nxt; ct_locks })
  in
  let ck_dpt =
    Bytebuf.R.list r (fun r ->
        let pid = Bytebuf.R.i64 r in
        let rec_lsn = Bytebuf.R.i64 r in
        (pid, rec_lsn))
  in
  let ck_chains =
    Bytebuf.R.list r (fun r ->
        let pid = Bytebuf.R.i64 r in
        let chain = Bytebuf.R.list r Bytebuf.R.i64 in
        (pid, chain))
  in
  Bytebuf.R.expect_end r;
  { ck_txns; ck_dpt; ck_chains; ck_next_txn }

(* The checkpoint's redo point: restart redo must start at the oldest
   recLSN the checkpointed DPT records, or at the Begin_ckpt itself when
   nothing was dirty. Also the checkpoint's contribution to the log-space
   reclamation safety point (Ckptd.safety_point). *)
let redo_point ~begin_lsn body =
  List.fold_left (fun acc (_, rec_lsn) -> Lsn.min acc rec_lsn) begin_lsn body.ck_dpt

let take mgr pool =
  let wal = Txnmgr.log mgr in
  let begin_rec = Logrec.make ~txn:Ids.nil_txn ~prev_lsn:Lsn.nil Logrec.Begin_ckpt in
  let begin_lsn = Logmgr.append wal begin_rec in
  let lockmgr = Txnmgr.locks mgr in
  let body =
    {
      ck_txns =
        List.map
          (fun (t : Txnmgr.txn) ->
            {
              ct_id = t.Txnmgr.txn_id;
              ct_state = t.Txnmgr.state;
              ct_first = t.Txnmgr.first_lsn;
              ct_last = t.Txnmgr.last_lsn;
              ct_undo_nxt = t.Txnmgr.undo_nxt;
              (* the txn's commit-duration lock names: instant restart
                 re-locks a loser's names from here for updates that
                 predate the analysis scan window *)
              ct_locks =
                Lockcodec.encode_list
                  (Lockmgr.held_locks lockmgr ~txn:t.Txnmgr.txn_id);
            })
          (Txnmgr.active_txns mgr);
      ck_dpt = Bufpool.dirty_page_table pool;
      ck_chains = Bufpool.dirty_page_chains pool;
      (* the txn-id high-water mark: transactions that both began and
         ended before this checkpoint appear nowhere else restart can see
         (not live here, not in the analysis scan window), yet their ids
         must never be reissued — the committed-state oracle and the lock
         table key on them *)
      ck_next_txn = Txnmgr.next_txn_id mgr;
    }
  in
  let end_rec =
    Logrec.make ~body:(encode_body body) ~txn:Ids.nil_txn ~prev_lsn:begin_lsn Logrec.End_ckpt
  in
  let end_lsn = Logmgr.append wal end_rec in
  (* Crash-ordering: the Begin/End pair must be stable *before* the master
     record points at it — a master naming a checkpoint with no stable
     End_ckpt would leave restart analysis with nothing to start from. The
     crash-point hook between the two steps lets the test suite prove a
     crash in the window is survivable (the old master stays valid). *)
  Logmgr.flush_to wal end_lsn;
  Crashpoint.hit "ckpt.master";
  Logmgr.set_master wal begin_lsn;
  Stats.incr Stats.ckpt_taken;
  if Trace.enabled () then
    Trace.emit
      (Trace.Ckpt_take
         {
           log = Logmgr.id wal;
           begin_lsn;
           end_lsn;
           redo = redo_point ~begin_lsn body;
         });
  begin_lsn

(* The last *complete* checkpoint: the Begin_ckpt the master points at,
   together with its End_ckpt (found by scanning forward from the master
   for the End whose prev_lsn closes the pair). With the flush-then-master
   ordering above, a non-nil master always has a stable End — but recovery
   code stays defensive and reports None if the pair is broken. *)
let last_complete wal =
  let m = Logmgr.master wal in
  if Lsn.is_nil m then None
  else begin
    let found = ref None in
    (try
       Logmgr.iter_from wal m (fun r ->
           if r.Logrec.kind = Logrec.End_ckpt && Lsn.compare r.Logrec.prev_lsn m = 0 then begin
             found := Some r;
             raise Exit
           end)
     with Exit -> ());
    match !found with
    | Some r -> Some (m, r.Logrec.lsn, decode_body r.Logrec.body)
    | None -> None
  end
