open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Logset = Aries_wal.Logset
module Txnmgr = Aries_txn.Txnmgr
module Lockcodec = Aries_txn.Lockcodec
module Lockmgr = Aries_lock.Lockmgr
module Bufpool = Aries_buffer.Bufpool
module Trace = Aries_trace.Trace

type ck_txn = {
  ct_id : Ids.txn_id;
  ct_state : Txnmgr.state;
  ct_firsts : Lsn.t array;
  ct_lasts : Lsn.t array;
  ct_undo_nxts : Lsn.t array;
  ct_locks : bytes;
}

type body = {
  ck_scan : Lsn.t array;
      (* per stream, the append horizon captured immediately before the
         Begin_ckpt was appended: where analysis starts its scan of that
         stream. ck_scan.(0) = begin_lsn by construction (Begin lands at
         the captured horizon of the control stream). Records appended
         between the capture and the body snapshot are covered twice —
         by the scan and by the body — which fuzzy reconciliation absorbs. *)
  ck_txns : ck_txn list;
  ck_dpt : (Ids.page_id * Lsn.t) list;
  ck_chains : (Ids.page_id * Lsn.t list) list;
      (* per dirty page, every record LSN applied since it became dirty
         (oldest first): instant restart repeats a pending page's history
         by reading exactly these records instead of scanning the log *)
  ck_next_txn : Ids.txn_id;
}

let encode_vec w v =
  Bytebuf.W.u16 w (Array.length v);
  Array.iter (Bytebuf.W.i64 w) v

let decode_vec r =
  let n = Bytebuf.R.u16 r in
  Array.init n (fun _ -> Bytebuf.R.i64 r)

let encode_body b =
  let w = Bytebuf.W.create () in
  Bytebuf.W.i64 w b.ck_next_txn;
  encode_vec w b.ck_scan;
  Bytebuf.W.list w
    (fun w ct ->
      Bytebuf.W.i64 w ct.ct_id;
      Bytebuf.W.u8 w (Txnmgr.state_to_int ct.ct_state);
      encode_vec w ct.ct_firsts;
      encode_vec w ct.ct_lasts;
      encode_vec w ct.ct_undo_nxts;
      Bytebuf.W.bytes w ct.ct_locks)
    b.ck_txns;
  Bytebuf.W.list w
    (fun w (pid, rec_lsn) ->
      Bytebuf.W.i64 w pid;
      Bytebuf.W.i64 w rec_lsn)
    b.ck_dpt;
  Bytebuf.W.list w
    (fun w (pid, chain) ->
      Bytebuf.W.i64 w pid;
      Bytebuf.W.list w Bytebuf.W.i64 chain)
    b.ck_chains;
  Bytebuf.W.contents w

let decode_body bytes =
  let r = Bytebuf.R.of_bytes bytes in
  let ck_next_txn = Bytebuf.R.i64 r in
  let ck_scan = decode_vec r in
  let ck_txns =
    Bytebuf.R.list r (fun r ->
        let ct_id = Bytebuf.R.i64 r in
        let ct_state = Txnmgr.state_of_int (Bytebuf.R.u8 r) in
        let ct_firsts = decode_vec r in
        let ct_lasts = decode_vec r in
        let ct_undo_nxts = decode_vec r in
        let ct_locks = Bytebuf.R.bytes r in
        { ct_id; ct_state; ct_firsts; ct_lasts; ct_undo_nxts; ct_locks })
  in
  let ck_dpt =
    Bytebuf.R.list r (fun r ->
        let pid = Bytebuf.R.i64 r in
        let rec_lsn = Bytebuf.R.i64 r in
        (pid, rec_lsn))
  in
  let ck_chains =
    Bytebuf.R.list r (fun r ->
        let pid = Bytebuf.R.i64 r in
        let chain = Bytebuf.R.list r Bytebuf.R.i64 in
        (pid, chain))
  in
  Bytebuf.R.expect_end r;
  { ck_scan; ck_txns; ck_dpt; ck_chains; ck_next_txn }

(* The checkpoint's redo point on the control stream — kept for the
   Ckpt_take trace event and single-stream callers: the oldest recLSN the
   checkpointed DPT records, or the Begin_ckpt itself when nothing was
   dirty. Per-stream consumers use {!redo_points}. *)
let redo_point ~begin_lsn body =
  List.fold_left (fun acc (_, rec_lsn) -> Lsn.min acc rec_lsn) begin_lsn body.ck_dpt

(* Per stream: where restart redo (and the log-reclamation safety point)
   for this checkpoint starts — the minimum recLSN among checkpointed DPT
   pages routed to the stream, or the stream's ck_scan horizon when none
   is. A page's recLSN is an LSN *on its own stream*, so the per-stream
   minimum is the only meaningful one (cross-stream byte offsets are not
   comparable). *)
let redo_points logs body =
  let starts = Array.copy body.ck_scan in
  List.iter
    (fun (pid, rec_lsn) ->
      let s = Logset.route_page logs pid in
      starts.(s) <- Lsn.min starts.(s) rec_lsn)
    body.ck_dpt;
  starts

let take mgr pool =
  let logs = Txnmgr.logs mgr in
  let wal = Logset.control logs in
  (* capture every stream's append horizon *before* the Begin record: when
     analysis scans stream s from ck_scan.(s) it sees every record appended
     after this instant, so nothing falls between the body snapshot and the
     scan *)
  let ck_scan =
    Array.init (Logset.n logs) (fun i -> Logmgr.end_offset (Logset.stream logs i))
  in
  let begin_rec = Logrec.make ~txn:Ids.nil_txn ~prev_lsn:Lsn.nil Logrec.Begin_ckpt in
  let begin_lsn = Logset.append logs ~stream:0 begin_rec in
  assert (Lsn.compare ck_scan.(0) begin_lsn = 0);
  let lockmgr = Txnmgr.locks mgr in
  let body =
    {
      ck_scan;
      ck_txns =
        List.map
          (fun (t : Txnmgr.txn) ->
            {
              ct_id = t.Txnmgr.txn_id;
              ct_state = t.Txnmgr.state;
              ct_firsts = Array.copy t.Txnmgr.firsts;
              ct_lasts = Array.copy t.Txnmgr.lasts;
              ct_undo_nxts = Array.copy t.Txnmgr.undo_nxts;
              (* the txn's commit-duration lock names: instant restart
                 re-locks a loser's names from here for updates that
                 predate the analysis scan window *)
              ct_locks =
                Lockcodec.encode_list
                  (Lockmgr.held_locks lockmgr ~txn:t.Txnmgr.txn_id);
            })
          (Txnmgr.active_txns mgr);
      ck_dpt = Bufpool.dirty_page_table pool;
      ck_chains = Bufpool.dirty_page_chains pool;
      (* the txn-id high-water mark: transactions that both began and
         ended before this checkpoint appear nowhere else restart can see
         (not live here, not in the analysis scan window), yet their ids
         must never be reissued — the committed-state oracle and the lock
         table key on them *)
      ck_next_txn = Txnmgr.next_txn_id mgr;
    }
  in
  let end_rec =
    Logrec.make ~body:(encode_body body) ~txn:Ids.nil_txn ~prev_lsn:begin_lsn Logrec.End_ckpt
  in
  let end_lsn = Logset.append logs ~stream:0 end_rec in
  (* Crash-ordering: *every* stream must be forced before the master record
     points at this checkpoint. The control stream's force makes the
     Begin/End pair stable (a master naming a checkpoint with no stable
     End_ckpt would leave analysis with nothing to start from); the other
     streams' forces back the body's claims — in particular a Committing
     transaction recorded in the body is treated as ended by analysis, so
     its whole fence-target vector must be stable whenever this checkpoint
     anchors a restart. The crash-point hook between the forces and the
     master update lets the test suite prove a crash in the window is
     survivable (the old master stays valid). *)
  Logset.flush_all logs;
  Crashpoint.hit "ckpt.master";
  Logmgr.set_master wal begin_lsn;
  Stats.incr Stats.ckpt_taken;
  if Trace.enabled () then
    Trace.emit
      (Trace.Ckpt_take
         {
           log = Logmgr.id wal;
           begin_lsn;
           end_lsn;
           redo = redo_point ~begin_lsn body;
         });
  begin_lsn

(* The last *complete* checkpoint: the Begin_ckpt the master points at,
   together with its End_ckpt (found by scanning forward from the master
   for the End whose prev_lsn closes the pair). With the flush-then-master
   ordering above, a non-nil master always has a stable End — but recovery
   code stays defensive and reports None if the pair is broken. *)
let last_complete wal =
  let m = Logmgr.master wal in
  if Lsn.is_nil m then None
  else begin
    let found = ref None in
    (try
       Logmgr.iter_from wal m (fun r ->
           if r.Logrec.kind = Logrec.End_ckpt && Lsn.compare r.Logrec.prev_lsn m = 0 then begin
             found := Some r;
             raise Exit
           end)
     with Exit -> ());
    match !found with
    | Some r -> Some (m, r.Logrec.lsn, decode_body r.Logrec.body)
    | None -> None
  end
