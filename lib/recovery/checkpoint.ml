open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Txnmgr = Aries_txn.Txnmgr
module Bufpool = Aries_buffer.Bufpool
module Trace = Aries_trace.Trace

type body = {
  ck_txns : (Ids.txn_id * Txnmgr.state * Lsn.t * Lsn.t * Lsn.t) list;
  ck_dpt : (Ids.page_id * Lsn.t) list;
}

let encode_body b =
  let w = Bytebuf.W.create () in
  Bytebuf.W.list w
    (fun w (id, state, first_lsn, last_lsn, undo_nxt) ->
      Bytebuf.W.i64 w id;
      Bytebuf.W.u8 w (Txnmgr.state_to_int state);
      Bytebuf.W.i64 w first_lsn;
      Bytebuf.W.i64 w last_lsn;
      Bytebuf.W.i64 w undo_nxt)
    b.ck_txns;
  Bytebuf.W.list w
    (fun w (pid, rec_lsn) ->
      Bytebuf.W.i64 w pid;
      Bytebuf.W.i64 w rec_lsn)
    b.ck_dpt;
  Bytebuf.W.contents w

let decode_body bytes =
  let r = Bytebuf.R.of_bytes bytes in
  let ck_txns =
    Bytebuf.R.list r (fun r ->
        let id = Bytebuf.R.i64 r in
        let state = Txnmgr.state_of_int (Bytebuf.R.u8 r) in
        let first_lsn = Bytebuf.R.i64 r in
        let last_lsn = Bytebuf.R.i64 r in
        let undo_nxt = Bytebuf.R.i64 r in
        (id, state, first_lsn, last_lsn, undo_nxt))
  in
  let ck_dpt =
    Bytebuf.R.list r (fun r ->
        let pid = Bytebuf.R.i64 r in
        let rec_lsn = Bytebuf.R.i64 r in
        (pid, rec_lsn))
  in
  Bytebuf.R.expect_end r;
  { ck_txns; ck_dpt }

(* The checkpoint's redo point: restart redo must start at the oldest
   recLSN the checkpointed DPT records, or at the Begin_ckpt itself when
   nothing was dirty. Also the checkpoint's contribution to the log-space
   reclamation safety point (Ckptd.safety_point). *)
let redo_point ~begin_lsn body =
  List.fold_left (fun acc (_, rec_lsn) -> Lsn.min acc rec_lsn) begin_lsn body.ck_dpt

let take mgr pool =
  let wal = Txnmgr.log mgr in
  let begin_rec = Logrec.make ~txn:Ids.nil_txn ~prev_lsn:Lsn.nil Logrec.Begin_ckpt in
  let begin_lsn = Logmgr.append wal begin_rec in
  let body =
    {
      ck_txns =
        List.map
          (fun (t : Txnmgr.txn) ->
            (t.Txnmgr.txn_id, t.Txnmgr.state, t.Txnmgr.first_lsn, t.Txnmgr.last_lsn, t.Txnmgr.undo_nxt))
          (Txnmgr.active_txns mgr);
      ck_dpt = Bufpool.dirty_page_table pool;
    }
  in
  let end_rec =
    Logrec.make ~body:(encode_body body) ~txn:Ids.nil_txn ~prev_lsn:begin_lsn Logrec.End_ckpt
  in
  let end_lsn = Logmgr.append wal end_rec in
  (* Crash-ordering: the Begin/End pair must be stable *before* the master
     record points at it — a master naming a checkpoint with no stable
     End_ckpt would leave restart analysis with nothing to start from. The
     crash-point hook between the two steps lets the test suite prove a
     crash in the window is survivable (the old master stays valid). *)
  Logmgr.flush_to wal end_lsn;
  Crashpoint.hit "ckpt.master";
  Logmgr.set_master wal begin_lsn;
  Stats.incr Stats.ckpt_taken;
  if Trace.enabled () then
    Trace.emit
      (Trace.Ckpt_take
         {
           log = Logmgr.id wal;
           begin_lsn;
           end_lsn;
           redo = redo_point ~begin_lsn body;
         });
  begin_lsn

(* The last *complete* checkpoint: the Begin_ckpt the master points at,
   together with its End_ckpt (found by scanning forward from the master
   for the End whose prev_lsn closes the pair). With the flush-then-master
   ordering above, a non-nil master always has a stable End — but recovery
   code stays defensive and reports None if the pair is broken. *)
let last_complete wal =
  let m = Logmgr.master wal in
  if Lsn.is_nil m then None
  else begin
    let found = ref None in
    (try
       Logmgr.iter_from wal m (fun r ->
           if r.Logrec.kind = Logrec.End_ckpt && Lsn.compare r.Logrec.prev_lsn m = 0 then begin
             found := Some r;
             raise Exit
           end)
     with Exit -> ());
    match !found with
    | Some r -> Some (m, r.Logrec.lsn, decode_body r.Logrec.body)
    | None -> None
  end
