open Aries_util
module Sched = Aries_sched.Sched

type cfg = { every_steps : int }

let default_cfg = { every_steps = 96 }

let validate cfg = if cfg.every_steps < 1 then invalid_arg "Vgcd: every_steps must be >= 1"

(* One round: run the injected collector (the database binds it to
   [Mvstore.gc] at the oldest-active-snapshot horizon — this daemon stays
   ignorant of the version store so lib/recovery keeps no dependency on
   the index layer). *)
let round ~gc =
  let reclaimed = gc () in
  Stats.incr Stats.vgcd_rounds;
  reclaimed

let run_daemon cfg ~gc ~stop =
  validate cfg;
  (* die-on-crash: once a simulated power failure has tripped, the machine
     is dead — exit instead of busy-yielding forever. *)
  let stopping () = stop () || Sched.shutting_down () || Crashpoint.tripped () in
  let rec loop () =
    if not (stopping ()) then begin
      (* sleep [every_steps] scheduler steps (cut short by shutdown) *)
      let t0 = Sched.steps_now () in
      while (not (stopping ())) && Sched.steps_now () - t0 < cfg.every_steps do
        Sched.yield ()
      done;
      if not (stopping ()) then begin
        ignore (round ~gc);
        loop ()
      end
    end
  in
  loop ()
