open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Logset = Aries_wal.Logset
module Txnmgr = Aries_txn.Txnmgr
module Bufpool = Aries_buffer.Bufpool
module Disk = Aries_page.Disk
module Page = Aries_page.Page
module Trace = Aries_trace.Trace

(* The log archive: reclaimed WAL segments, retained verbatim so media
   recovery can roll a fuzzy dump forward across a truncation. In a real
   system this is the tape/object-store the archiving daemon ships sealed
   segments to; here it is an in-memory table: per log stream (keyed by
   [Logmgr.id]), a list of segments ordered oldest first. *)
module Archive = struct
  type t = { tbl : (int, Logmgr.archived list) Hashtbl.t (* log id -> oldest first *) }

  let create () = { tbl = Hashtbl.create 4 }

  let segments t log =
    match Hashtbl.find_opt t.tbl log with Some l -> l | None -> []

  let attach t wal =
    let id = Logmgr.id wal in
    Logmgr.set_archive_sink wal (fun a -> Hashtbl.replace t.tbl id (segments t id @ [ a ]))

  let attach_set t logs = Logset.iteri logs (fun _ wal -> attach t wal)

  let all t = Hashtbl.fold (fun _ l acc -> acc @ l) t.tbl []

  let segment_count t = List.length (all t)

  let bytes t = List.fold_left (fun acc a -> acc + a.Logmgr.arch_len) 0 (all t)

  let record_count t = List.fold_left (fun acc a -> acc + a.Logmgr.arch_records) 0 (all t)

  let end_offset ?(log = 0) t =
    match List.rev (segments t log) with
    | a :: _ -> a.Logmgr.arch_base + a.Logmgr.arch_len
    | [] -> 0

  (* Decode the framed records of one log's archived segments with
     LSN >= [from] ([Lsn.nil] = all), in LSN order. Frames are exactly as
     they were in the live log: [u32 len][payload][u32 crc] at absolute
     offset = LSN. *)
  let iter_records t ~log ~from f =
    List.iter
      (fun (a : Logmgr.archived) ->
        if Lsn.is_nil from || a.Logmgr.arch_base + a.Logmgr.arch_len > from then begin
          (* verify the sealed-segment footer before walking its frames:
             a rotted archive segment must fail loudly and typed *)
          if
            Faultdisk.crc_checks_enabled ()
            && Crc.string a.Logmgr.arch_data <> a.Logmgr.arch_crc
          then
            Storage_error.raise_err ~lsn:a.Logmgr.arch_base Storage_error.Checksum
              "archived log segment CRC mismatch (base %d, %dB)" a.Logmgr.arch_base
              a.Logmgr.arch_len;
          let off = ref 0 in
          while !off < a.Logmgr.arch_len do
            let lsn = a.Logmgr.arch_base + !off in
            let hdr = Bytebuf.R.of_string (String.sub a.Logmgr.arch_data !off 4) in
            let len = Bytebuf.R.u32 hdr in
            let payload = String.sub a.Logmgr.arch_data (!off + 4) len in
            if Lsn.is_nil from || lsn >= from then begin
              match Logrec.decode ~lsn payload with
              | r -> f r
              | exception Bytebuf.Corrupt msg ->
                  raise (Storage_error.of_corrupt ~lsn ("archived record: " ^ msg))
            end;
            off := !off + Logrec.frame_overhead + len
          done
        end)
      (segments t log)

  (* One stream's full history from [from]: its archived segments first
     (they are strictly below the live log's start), then the live log. *)
  let iter_history t wal ~from f =
    iter_records t ~log:(Logmgr.id wal) ~from f;
    Logmgr.iter_from wal (if Lsn.is_nil from then Lsn.nil else from) f

  let serialize t =
    let logs = Hashtbl.fold (fun id _ acc -> id :: acc) t.tbl [] |> List.sort compare in
    let w = Bytebuf.W.create () in
    Bytebuf.W.list w
      (fun w id ->
        Bytebuf.W.i64 w id;
        Bytebuf.W.list w
          (fun w (a : Logmgr.archived) ->
            Bytebuf.W.i64 w a.Logmgr.arch_base;
            Bytebuf.W.u32 w a.Logmgr.arch_records;
            Bytebuf.W.string w a.Logmgr.arch_data;
            Bytebuf.W.u32 w a.Logmgr.arch_crc)
          (segments t id))
      logs;
    Bytebuf.W.contents w

  let deserialize b =
    let last_base = ref None in
    try
      let r = Bytebuf.R.of_bytes b in
      let t = create () in
      let _ =
        Bytebuf.R.list r (fun r ->
            let id = Bytebuf.R.i64 r in
            let segs =
              Bytebuf.R.list r (fun r ->
                  let arch_base = Bytebuf.R.i64 r in
                  last_base := Some arch_base;
                  let arch_records = Bytebuf.R.u32 r in
                  let arch_data = Bytebuf.R.string r in
                  let arch_crc = Bytebuf.R.u32 r in
                  if Faultdisk.crc_checks_enabled () && Crc.string arch_data <> arch_crc then
                    Storage_error.raise_err ~lsn:arch_base Storage_error.Checksum
                      "archived log segment footer CRC mismatch on load (base %d)" arch_base;
                  {
                    Logmgr.arch_base;
                    arch_len = String.length arch_data;
                    arch_data;
                    arch_records;
                    arch_crc;
                  })
            in
            Hashtbl.replace t.tbl id segs)
      in
      Bytebuf.R.expect_end r;
      t
    with Bytebuf.Corrupt msg ->
      raise (Storage_error.of_corrupt ?lsn:!last_base ("archive image: " ^ msg))
end

type dump = {
  dmp_disk : Disk.t;
  dmp_redo : Lsn.t array;  (* per stream *)
}

let take_dump mgr pool =
  let logs = Txnmgr.logs mgr in
  (* capture each stream's horizon *before* the checkpoint: any update the
     dump images might miss is either at/above the horizon (appended after
     the capture) or covered by a dirty page's recLSN below it *)
  let scan =
    Array.init (Logset.n logs) (fun i -> Logmgr.end_offset (Logset.stream logs i))
  in
  ignore (Checkpoint.take mgr pool);
  (* The checkpointed DPT bounds what the dump images might be missing:
     everything below a stream's minimum recLSN is on disk. Conservative
     and simple: replay each page from its own stream's redo point. *)
  let redo = scan in
  List.iter
    (fun (pid, rec_lsn) ->
      let s = Logset.route_page logs pid in
      redo.(s) <- Lsn.min redo.(s) rec_lsn)
    (Bufpool.dirty_page_table pool);
  { dmp_disk = Disk.image_copy (Bufpool.disk pool); dmp_redo = redo }

let dump_redo_lsn ?(stream = 0) d =
  if Array.length d.dmp_redo = 0 then Lsn.nil else d.dmp_redo.(stream)

(* Bounded immediate retry for the direct disk I/O media recovery does
   itself (its page replays go through the buffer pool, which has its own
   retry-with-backoff). *)
let max_media_retries = 4

let retrying ~pid ~target f =
  let rec go attempt =
    try f () with
    | Storage_error.Error { cause = Storage_error.Io_transient; _ }
      when attempt < max_media_retries ->
        Stats.incr Stats.disk_retries;
        if Trace.enabled () then
          Trace.emit (Trace.Io_retry { target; pid; attempt = attempt + 1 });
        go (attempt + 1)
  in
  go 0

let recover_page ?archive mgr pool dump pid =
  let logs = Txnmgr.logs mgr in
  (* all of the page's records live on its routed stream: the roll-forward
     reads that stream's history only, from that stream's dump redo point *)
  let s = Logset.route_page logs pid in
  let wal = Logset.stream logs s in
  let from = if Array.length dump.dmp_redo = 0 then Lsn.nil else dump.dmp_redo.(s) in
  let disk = Bufpool.disk pool in
  (* The repair window is delimited by the recovery itself (not only by the
     pool's quarantine-on-read): between these two events the page's redo
     history legitimately comes from the archive, so its recLSN may lie
     below the live log's start — the discipline checker suspends R6(b)
     for exactly this window (and restarts the page's R8(b) gsn watermark,
     since the replay legitimately begins at the page's oldest record). *)
  if Trace.enabled () then
    Trace.emit (Trace.Page_quarantined { pid; cause = "media-recover" });
  (* drop whatever damaged frame/image might linger *)
  Bufpool.drop pool pid;
  (* copy the archived image verbatim (after its decode validated the CRC)
     instead of re-encoding the decoded page — same bytes, half the codec
     work, and a v1-era archive image stays byte-identical *)
  (match retrying ~pid ~target:"page-read" (fun () -> Disk.read_with_image dump.dmp_disk pid) with
  | Some (_, image) -> retrying ~pid ~target:"page-write" (fun () -> Disk.write_image disk pid image)
  | None -> Disk.free disk pid);
  let applied = ref 0 in
  (* Roll forward from the dump's redo point across the stream's full
     history: if segments below the live log's start were reclaimed since
     the dump was taken, the archive supplies them (the archive sink
     received every dropped segment before it vanished). *)
  let iter_history f =
    match archive with
    | Some arc -> Archive.iter_history arc wal ~from f
    | None -> Logmgr.iter_from wal from f
  in
  iter_history (fun r ->
      if r.Logrec.page = pid then begin
        let redoable =
          match r.Logrec.kind with
          | Logrec.Update -> r.Logrec.redoable
          | Logrec.Clr -> r.Logrec.rm_id <> 0
          | Logrec.Commit | Logrec.Prepare | Logrec.Rollback | Logrec.End_txn
          | Logrec.Begin_ckpt | Logrec.End_ckpt | Logrec.Coord_commit | Logrec.Coord_abort
          | Logrec.Coord_end ->
              false
        in
        if redoable then begin
          let stale =
            match Bufpool.fix_opt pool pid with
            | Some p ->
                let st = Lsn.( < ) p.Page.page_lsn r.Logrec.lsn in
                Bufpool.unfix pool p;
                st
            | None -> true  (* page does not exist yet: format record recreates *)
          in
          if stale then begin
            if Trace.enabled () then
              Trace.emit
                (Trace.Redo_apply
                   { log = Logmgr.id wal; pid; lsn = r.Logrec.lsn; gsn = r.Logrec.gsn });
            Txnmgr.rm_redo mgr r;
            incr applied
          end
        end
      end);
  (* the roll-forward dirtied the page in the pool; force it out so the
     repaired image is durable *)
  Bufpool.flush_page pool pid;
  Stats.incr "media.page_recoveries";
  if Trace.enabled () then Trace.emit (Trace.Page_repaired { pid; records = !applied });
  !applied

(* Automatic media repair (PR 5): rebuild a page that failed its CRC on
   read, with no dump at all — the archive sink received every reclaimed
   segment, so archive + live log hold the full history from Lsn.nil and
   the page's format record recreates it from nothing.  Installed as the
   buffer pool's repairer hook by Db; also invoked directly by tests. *)
let auto_repair ?archive mgr pool pid =
  let empty_dump = { dmp_disk = Disk.create (); dmp_redo = [||] } in
  let applied = recover_page ?archive mgr pool empty_dump pid in
  Stats.incr Stats.disk_repairs;
  applied
