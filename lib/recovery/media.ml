open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Txnmgr = Aries_txn.Txnmgr
module Bufpool = Aries_buffer.Bufpool
module Disk = Aries_page.Disk
module Page = Aries_page.Page
module Trace = Aries_trace.Trace

(* The log archive: reclaimed WAL segments, retained verbatim so media
   recovery can roll a fuzzy dump forward across a truncation. In a real
   system this is the tape/object-store the archiving daemon ships sealed
   segments to; here it is an in-memory list ordered by base offset. *)
module Archive = struct
  type t = { mutable segments : Logmgr.archived list (* oldest first *) }

  let create () = { segments = [] }

  let attach t wal =
    Logmgr.set_archive_sink wal (fun a -> t.segments <- t.segments @ [ a ])

  let segment_count t = List.length t.segments

  let bytes t = List.fold_left (fun acc a -> acc + a.Logmgr.arch_len) 0 t.segments

  let record_count t = List.fold_left (fun acc a -> acc + a.Logmgr.arch_records) 0 t.segments

  let end_offset t =
    match List.rev t.segments with
    | a :: _ -> a.Logmgr.arch_base + a.Logmgr.arch_len
    | [] -> 0

  (* Decode the framed records of every archived segment with LSN >= [from]
     ([Lsn.nil] = all), in LSN order. Frames are exactly as they were in
     the live log: [u32 len][payload][u32 crc] at absolute offset = LSN. *)
  let iter_records t ~from f =
    List.iter
      (fun (a : Logmgr.archived) ->
        if Lsn.is_nil from || a.Logmgr.arch_base + a.Logmgr.arch_len > from then begin
          (* verify the sealed-segment footer before walking its frames:
             a rotted archive segment must fail loudly and typed *)
          if
            Faultdisk.crc_checks_enabled ()
            && Crc.string a.Logmgr.arch_data <> a.Logmgr.arch_crc
          then
            Storage_error.raise_err ~lsn:a.Logmgr.arch_base Storage_error.Checksum
              "archived log segment CRC mismatch (base %d, %dB)" a.Logmgr.arch_base
              a.Logmgr.arch_len;
          let off = ref 0 in
          while !off < a.Logmgr.arch_len do
            let lsn = a.Logmgr.arch_base + !off in
            let hdr = Bytebuf.R.of_string (String.sub a.Logmgr.arch_data !off 4) in
            let len = Bytebuf.R.u32 hdr in
            let payload = String.sub a.Logmgr.arch_data (!off + 4) len in
            if Lsn.is_nil from || lsn >= from then begin
              match Logrec.decode ~lsn payload with
              | r -> f r
              | exception Bytebuf.Corrupt msg ->
                  raise (Storage_error.of_corrupt ~lsn ("archived record: " ^ msg))
            end;
            off := !off + Logrec.frame_overhead + len
          done
        end)
      t.segments

  (* The full log history from [from]: archived segments first (they are
     strictly below the live log's start), then the live log. *)
  let iter_history t wal ~from f =
    iter_records t ~from f;
    Logmgr.iter_from wal (if Lsn.is_nil from then Lsn.nil else from) f

  let serialize t =
    let w = Bytebuf.W.create () in
    Bytebuf.W.list w
      (fun w (a : Logmgr.archived) ->
        Bytebuf.W.i64 w a.Logmgr.arch_base;
        Bytebuf.W.u32 w a.Logmgr.arch_records;
        Bytebuf.W.string w a.Logmgr.arch_data;
        Bytebuf.W.u32 w a.Logmgr.arch_crc)
      t.segments;
    Bytebuf.W.contents w

  let deserialize b =
    let last_base = ref None in
    try
      let r = Bytebuf.R.of_bytes b in
      let segments =
        Bytebuf.R.list r (fun r ->
            let arch_base = Bytebuf.R.i64 r in
            last_base := Some arch_base;
            let arch_records = Bytebuf.R.u32 r in
            let arch_data = Bytebuf.R.string r in
            let arch_crc = Bytebuf.R.u32 r in
            if Faultdisk.crc_checks_enabled () && Crc.string arch_data <> arch_crc then
              Storage_error.raise_err ~lsn:arch_base Storage_error.Checksum
                "archived log segment footer CRC mismatch on load (base %d)" arch_base;
            {
              Logmgr.arch_base;
              arch_len = String.length arch_data;
              arch_data;
              arch_records;
              arch_crc;
            })
      in
      Bytebuf.R.expect_end r;
      { segments }
    with Bytebuf.Corrupt msg ->
      raise (Storage_error.of_corrupt ?lsn:!last_base ("archive image: " ^ msg))
end

type dump = {
  dmp_disk : Disk.t;
  dmp_redo_lsn : Lsn.t;
}

let take_dump mgr pool =
  let begin_lsn = Checkpoint.take mgr pool in
  (* The checkpointed DPT bounds what the dump images might be missing:
     everything below the minimum recLSN is on disk. Conservative and
     simple: replay from the checkpoint's redo point. *)
  let dpt = Bufpool.dirty_page_table pool in
  let redo_lsn = List.fold_left (fun acc (_, rec_lsn) -> Lsn.min acc rec_lsn) begin_lsn dpt in
  { dmp_disk = Disk.image_copy (Bufpool.disk pool); dmp_redo_lsn = redo_lsn }

let dump_redo_lsn d = d.dmp_redo_lsn

(* Bounded immediate retry for the direct disk I/O media recovery does
   itself (its page replays go through the buffer pool, which has its own
   retry-with-backoff). *)
let max_media_retries = 4

let retrying ~pid ~target f =
  let rec go attempt =
    try f () with
    | Storage_error.Error { cause = Storage_error.Io_transient; _ }
      when attempt < max_media_retries ->
        Stats.incr Stats.disk_retries;
        if Trace.enabled () then
          Trace.emit (Trace.Io_retry { target; pid; attempt = attempt + 1 });
        go (attempt + 1)
  in
  go 0

let recover_page ?archive mgr pool dump pid =
  let wal = Txnmgr.log mgr in
  let disk = Bufpool.disk pool in
  (* The repair window is delimited by the recovery itself (not only by the
     pool's quarantine-on-read): between these two events the page's redo
     history legitimately comes from the archive, so its recLSN may lie
     below the live log's start — the discipline checker suspends R6(b)
     for exactly this window. *)
  if Trace.enabled () then
    Trace.emit (Trace.Page_quarantined { pid; cause = "media-recover" });
  (* drop whatever damaged frame/image might linger *)
  Bufpool.drop pool pid;
  (match retrying ~pid ~target:"page-read" (fun () -> Disk.read dump.dmp_disk pid) with
  | Some page -> retrying ~pid ~target:"page-write" (fun () -> Disk.write disk page)
  | None -> Disk.free disk pid);
  let applied = ref 0 in
  (* Roll forward from the dump's redo point across the full log history:
     if segments below the live log's start were reclaimed since the dump
     was taken, the archive supplies them (the archive sink received every
     dropped segment before it vanished). *)
  let iter_history f =
    match archive with
    | Some arc -> Archive.iter_history arc wal ~from:dump.dmp_redo_lsn f
    | None -> Logmgr.iter_from wal dump.dmp_redo_lsn f
  in
  iter_history (fun r ->
      if r.Logrec.page = pid then begin
        let redoable =
          match r.Logrec.kind with
          | Logrec.Update -> r.Logrec.redoable
          | Logrec.Clr -> r.Logrec.rm_id <> 0
          | Logrec.Commit | Logrec.Prepare | Logrec.Rollback | Logrec.End_txn
          | Logrec.Begin_ckpt | Logrec.End_ckpt ->
              false
        in
        if redoable then begin
          let stale =
            match Bufpool.fix_opt pool pid with
            | Some p ->
                let s = Lsn.( < ) p.Page.page_lsn r.Logrec.lsn in
                Bufpool.unfix pool p;
                s
            | None -> true  (* page does not exist yet: format record recreates *)
          in
          if stale then begin
            Txnmgr.rm_redo mgr r;
            incr applied
          end
        end
      end);
  (* the roll-forward dirtied the page in the pool; force it out so the
     repaired image is durable *)
  Bufpool.flush_page pool pid;
  Stats.incr "media.page_recoveries";
  if Trace.enabled () then Trace.emit (Trace.Page_repaired { pid; records = !applied });
  !applied

(* Automatic media repair (PR 5): rebuild a page that failed its CRC on
   read, with no dump at all — the archive sink received every reclaimed
   segment, so archive + live log hold the full history from Lsn.nil and
   the page's format record recreates it from nothing.  Installed as the
   buffer pool's repairer hook by Db; also invoked directly by tests. *)
let auto_repair ?archive mgr pool pid =
  let empty_dump = { dmp_disk = Disk.create (); dmp_redo_lsn = Lsn.nil } in
  let applied = recover_page ?archive mgr pool empty_dump pid in
  Stats.incr Stats.disk_repairs;
  applied
