(** Fuzzy checkpoints.

    A checkpoint brackets a Begin_ckpt/End_ckpt pair; the End_ckpt body
    carries the transaction table (including each transaction's {e first}
    LSN, which bounds how far back undo — and hence log truncation — may
    need to reach) and the dirty-page table (page id → recLSN). Nothing is
    forced to disk and no activity is quiesced — the analysis pass
    reconciles whatever happened concurrently, which is what makes the
    checkpoint "fuzzy". The master record points at the most recent
    {e complete} Begin_ckpt: {!take} forces the pair stable before updating
    the master, so a crash can never leave the master naming a checkpoint
    with no stable End_ckpt. *)

open Aries_util
module Lsn = Aries_wal.Lsn

type ck_txn = {
  ct_id : Ids.txn_id;
  ct_state : Aries_txn.Txnmgr.state;
  ct_first : Lsn.t;
  ct_last : Lsn.t;
  ct_undo_nxt : Lsn.t;
  ct_locks : bytes;
      (** the txn's held lock names+modes, [Lockcodec.encode_list]-encoded
          — instant restart reacquires a loser's locks from here so new
          transactions conflict with its uncommitted state instead of
          reading it (locks taken after Begin_ckpt are re-derived from the
          analysis scan instead) *)
}

type body = {
  ck_txns : ck_txn list;
  ck_dpt : (Ids.page_id * Lsn.t) list;  (** (page, recLSN) *)
  ck_chains : (Ids.page_id * Lsn.t list) list;
      (** per dirty page, every record LSN applied since it became dirty
          (oldest first — {!Aries_buffer.Bufpool.dirty_page_chains}):
          instant restart repeats a pending page's history by reading
          exactly these records instead of scanning the log per page *)
  ck_next_txn : Ids.txn_id;
      (** txn-id high-water mark at checkpoint time: ids of transactions
          that ended before the checkpoint are invisible to restart
          analysis yet must never be reissued *)
}

val take : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> Lsn.t
(** Write a checkpoint: append the Begin/End pair, force the log through
    the End_ckpt, {e then} update the master record (crash-ordering — a
    [Crashpoint] hook labeled ["ckpt.master"] sits between the force and
    the master update so tests can crash exactly in the window). Returns
    the Begin_ckpt LSN. *)

val last_complete : Aries_wal.Logmgr.t -> (Lsn.t * Lsn.t * body) option
(** [(begin_lsn, end_lsn, body)] of the checkpoint the master record points
    at, or [None] if the master is nil or the pair is broken (the latter
    cannot happen with {!take}'s ordering, but recovery stays defensive). *)

val redo_point : begin_lsn:Lsn.t -> body -> Lsn.t
(** Where restart redo for this checkpoint must start: the minimum recLSN
    in the checkpointed DPT, or [begin_lsn] if it was empty. Also the
    checkpoint's contribution to the log-reclamation safety point. *)

val encode_body : body -> bytes

val decode_body : bytes -> body
