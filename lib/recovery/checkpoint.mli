(** Fuzzy checkpoints over the multi-stream log.

    A checkpoint brackets a Begin_ckpt/End_ckpt pair on the control stream
    (stream 0); the End_ckpt body carries the transaction table (per-stream
    first/last/undo-next vectors — a transaction's first LSNs bound how far
    back undo, and hence log truncation, may need to reach on each stream),
    the dirty-page table (page id → recLSN, an LSN on the page's routed
    stream), and [ck_scan]: each stream's append horizon captured just
    before the Begin — where restart analysis starts its merged scan.
    Nothing is forced at snapshot time and no activity is quiesced — the
    analysis pass reconciles whatever happened concurrently, which is what
    makes the checkpoint "fuzzy". The master record points at the most
    recent {e complete} Begin_ckpt: {!take} forces {e every} stream before
    updating the master, so a crash can never leave the master naming a
    checkpoint whose End_ckpt — or whose recorded Committing transactions'
    fence targets — are not stable. *)

open Aries_util
module Lsn = Aries_wal.Lsn

type ck_txn = {
  ct_id : Ids.txn_id;
  ct_state : Aries_txn.Txnmgr.state;
  ct_firsts : Lsn.t array;
  ct_lasts : Lsn.t array;
  ct_undo_nxts : Lsn.t array;
  ct_locks : bytes;
      (** the txn's held lock names+modes, [Lockcodec.encode_list]-encoded
          — instant restart reacquires a loser's locks from here so new
          transactions conflict with its uncommitted state instead of
          reading it (locks taken after Begin_ckpt are re-derived from the
          analysis scan instead) *)
}

type body = {
  ck_scan : Lsn.t array;
      (** per stream, the append horizon captured immediately before the
          Begin_ckpt was appended — where analysis scans that stream from.
          [ck_scan.(0)] is the Begin_ckpt LSN by construction. *)
  ck_txns : ck_txn list;
  ck_dpt : (Ids.page_id * Lsn.t) list;  (** (page, recLSN on its stream) *)
  ck_chains : (Ids.page_id * Lsn.t list) list;
      (** per dirty page, every record LSN applied since it became dirty
          (oldest first — {!Aries_buffer.Bufpool.dirty_page_chains}):
          instant restart repeats a pending page's history by reading
          exactly these records instead of scanning the log per page *)
  ck_next_txn : Ids.txn_id;
      (** txn-id high-water mark at checkpoint time: ids of transactions
          that ended before the checkpoint are invisible to restart
          analysis yet must never be reissued *)
}

val take : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> Lsn.t
(** Write a checkpoint: capture [ck_scan], append the Begin/End pair on the
    control stream, force {e every} stream, {e then} update the master
    record (crash-ordering — a [Crashpoint] hook labeled ["ckpt.master"]
    sits between the forces and the master update so tests can crash
    exactly in the window). Returns the Begin_ckpt LSN. *)

val last_complete : Aries_wal.Logmgr.t -> (Lsn.t * Lsn.t * body) option
(** On the control stream: [(begin_lsn, end_lsn, body)] of the checkpoint
    the master record points at, or [None] if the master is nil or the pair
    is broken (the latter cannot happen with {!take}'s ordering, but
    recovery stays defensive). *)

val redo_point : begin_lsn:Lsn.t -> body -> Lsn.t
(** Control-stream redo point (trace/reporting): the minimum recLSN in the
    checkpointed DPT, or [begin_lsn] if it was empty. *)

val redo_points : Aries_wal.Logset.t -> body -> Lsn.t array
(** Per stream: where restart redo and the log-reclamation safety point
    for this checkpoint start — the minimum recLSN among checkpointed DPT
    pages routed to the stream, floored at the stream's [ck_scan] horizon.
    RecLSNs are per-stream byte offsets; cross-stream minima are
    meaningless. *)

val encode_body : body -> bytes

val decode_body : bytes -> body
