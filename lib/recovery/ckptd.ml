open Aries_util
module Lsn = Aries_wal.Lsn
module Logmgr = Aries_wal.Logmgr
module Logset = Aries_wal.Logset
module Txnmgr = Aries_txn.Txnmgr
module Bufpool = Aries_buffer.Bufpool
module Sched = Aries_sched.Sched
module Trace = Aries_trace.Trace

type cfg = {
  every_steps : int;
  nudge_pages : int;
  truncate : bool;
}

let default_cfg = { every_steps = 64; nudge_pages = 2; truncate = true }

let validate cfg =
  if cfg.every_steps < 1 then invalid_arg "Ckptd: every_steps must be >= 1";
  if cfg.nudge_pages < 1 then invalid_arg "Ckptd: nudge_pages must be >= 1"

(* The log-space reclamation safety point, per stream:

     min ( the last complete checkpoint's redo point on the stream,
           min recLSN of dirty pages routed to the stream,
           active transactions' first LSN on the stream )

   Everything below a stream's point is needed by no restart: redo of a
   page starts at its recLSN (all its records live on its stream), analysis
   starts at the checkpoint's per-stream scan horizon, and undo reaches
   back at most to each transaction's first record on the stream. Each
   point is monotone nondecreasing over time — checkpoints advance, recLSNs
   only rise as pages are cleaned, and finished transactions leave the
   table.

   Returns None when there is nothing safe to assert: no complete
   checkpoint yet, or a restored transaction of unknown extent (an all-nil
   firsts vector with some non-nil last) in the table — truncating anything
   under those conditions could destroy records undo still needs.

   The Log_safety trace events (one per stream) are emitted *here*, by the
   computation itself: discipline rule R6 judges every subsequent
   truncation against the last announcement for that log rather than
   trusting the truncator. *)
let safety_points mgr pool =
  let logs = Txnmgr.logs mgr in
  match Checkpoint.last_complete (Logset.control logs) with
  | None -> None
  | Some (_begin_lsn, _end_lsn, body) ->
      let safety = Checkpoint.redo_points logs body in
      List.iter
        (fun (pid, rec_lsn) ->
          let s = Logset.route_page logs pid in
          safety.(s) <- Lsn.min safety.(s) rec_lsn)
        (Bufpool.dirty_page_table pool);
      let blocked = ref false in
      List.iter
        (fun (txn : Txnmgr.txn) ->
          Array.iteri
            (fun s last ->
              if not (Lsn.is_nil last) then
                if Lsn.is_nil txn.Txnmgr.firsts.(s) then blocked := true
                else safety.(s) <- Lsn.min safety.(s) txn.Txnmgr.firsts.(s))
            txn.Txnmgr.lasts)
        (Txnmgr.active_txns mgr);
      if !blocked then None
      else begin
        if Trace.enabled () then
          Logset.iteri logs (fun s m ->
              ignore s;
              Trace.emit (Trace.Log_safety { log = Logmgr.id m; safety = safety.(s) }));
        Some safety
      end

let safety_point mgr pool =
  match safety_points mgr pool with None -> None | Some v -> Some v.(0)

(* Truncate each stream's prefix below its safety point (whole sealed
   segments only — Logmgr picks the segment boundary). Under the
   [fault_ckpt_premature_truncate] switch the daemon instead truncates
   every stream to its flushed boundary, ignoring the safety points —
   records restart still needs are destroyed, and rule R6 must catch the
   oversized Log_truncate the moment it is emitted. Returns total bytes
   reclaimed. *)
let reclaim mgr pool =
  let logs = Txnmgr.logs mgr in
  match safety_points mgr pool with
  | None -> 0
  | Some safety ->
      let total = ref 0 in
      Logset.iteri logs (fun s wal ->
          let upto =
            if Crashpoint.fault_active Crashpoint.fault_ckpt_premature_truncate then
              Logmgr.flushed_offset wal
            else safety.(s)
          in
          total := !total + Logmgr.truncate_prefix wal ~upto);
      !total

(* One daemon round: if a stale dirty page is what pins the oldest live
   segment of its stream, nudge the cleaner first (so the checkpoint about
   to be taken records a fresher DPT and the safety points can advance past
   the segment boundaries); then take a fuzzy checkpoint — no quiescing,
   user fibers keep running between our yields — and reclaim. *)
let round mgr pool cfg =
  let logs = Txnmgr.logs mgr in
  let dpt = lazy (Bufpool.dirty_page_table pool) in
  let pinned = ref false in
  Logset.iteri logs (fun s wal ->
      if Logmgr.segment_count wal > 1 then
        if
          List.exists
            (fun (pid, rec_lsn) ->
              Logset.route_page logs pid = s && rec_lsn < Logmgr.first_segment_end wal)
            (Lazy.force dpt)
        then pinned := true);
  if !pinned then begin
    Stats.incr Stats.ckptd_nudges;
    ignore (Bufpool.clean_some pool ~max_pages:cfg.nudge_pages)
  end;
  ignore (Checkpoint.take mgr pool);
  Stats.incr Stats.ckptd_rounds;
  if cfg.truncate then ignore (reclaim mgr pool)

let run_daemon mgr pool cfg ~stop =
  validate cfg;
  (* die-on-crash: once a simulated power failure has tripped, the machine
     is dead — exit instead of busy-yielding forever. *)
  let stopping () = stop () || Sched.shutting_down () || Crashpoint.tripped () in
  let rec loop () =
    if not (stopping ()) then begin
      (* sleep [every_steps] scheduler steps (cut short by shutdown) *)
      let t0 = Sched.steps_now () in
      while (not (stopping ())) && Sched.steps_now () - t0 < cfg.every_steps do
        Sched.yield ()
      done;
      if not (stopping ()) then begin
        round mgr pool cfg;
        loop ()
      end
    end
  in
  loop ()
