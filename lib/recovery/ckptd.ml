open Aries_util
module Lsn = Aries_wal.Lsn
module Logmgr = Aries_wal.Logmgr
module Txnmgr = Aries_txn.Txnmgr
module Bufpool = Aries_buffer.Bufpool
module Sched = Aries_sched.Sched
module Trace = Aries_trace.Trace

type cfg = {
  every_steps : int;
  nudge_pages : int;
  truncate : bool;
}

let default_cfg = { every_steps = 64; nudge_pages = 2; truncate = true }

let validate cfg =
  if cfg.every_steps < 1 then invalid_arg "Ckptd: every_steps must be >= 1";
  if cfg.nudge_pages < 1 then invalid_arg "Ckptd: nudge_pages must be >= 1"

(* The log-space reclamation safety point:

     min ( redo point of the last complete checkpoint,
           min recLSN in the current dirty-page table,
           first LSN of the oldest active transaction )

   Everything below it is needed by no restart: redo starts at the
   checkpoint's redo point or a dirty page's recLSN (whichever is older),
   and undo reaches back at most to the oldest active transaction's first
   record. The point is monotone nondecreasing over time — checkpoints
   advance, recLSNs only rise as pages are cleaned, and finished
   transactions leave the table.

   Returns None when there is nothing safe to assert: no complete
   checkpoint yet, or a restored transaction of unknown extent (first_lsn
   nil with a non-nil last_lsn) in the table — truncating anything under
   those conditions could destroy records undo still needs.

   The Log_safety trace event is emitted *here*, by the computation itself:
   discipline rule R6 judges every subsequent truncation against the last
   announcement rather than trusting the truncator. *)
let safety_point mgr pool =
  let wal = Txnmgr.log mgr in
  match Checkpoint.last_complete wal with
  | None -> None
  | Some (begin_lsn, _end_lsn, body) ->
      let safety = ref (Checkpoint.redo_point ~begin_lsn body) in
      List.iter
        (fun (_, rec_lsn) -> safety := Lsn.min !safety rec_lsn)
        (Bufpool.dirty_page_table pool);
      let blocked = ref false in
      List.iter
        (fun (txn : Txnmgr.txn) ->
          if not (Lsn.is_nil txn.Txnmgr.last_lsn) then
            if Lsn.is_nil txn.Txnmgr.first_lsn then blocked := true
            else safety := Lsn.min !safety txn.Txnmgr.first_lsn)
        (Txnmgr.active_txns mgr);
      if !blocked then None
      else begin
        if Trace.enabled () then
          Trace.emit (Trace.Log_safety { log = Logmgr.id wal; safety = !safety });
        Some !safety
      end

(* Truncate the log prefix below the safety point (whole sealed segments
   only — Logmgr picks the segment boundary). Under the
   [fault_ckpt_premature_truncate] switch the daemon instead truncates all
   the way to the flushed boundary, ignoring the safety point — records
   restart still needs are destroyed, and rule R6 must catch the oversized
   Log_truncate the moment it is emitted. Returns bytes reclaimed. *)
let reclaim mgr pool =
  let wal = Txnmgr.log mgr in
  match safety_point mgr pool with
  | None -> 0
  | Some safety ->
      let upto =
        if Crashpoint.fault_active Crashpoint.fault_ckpt_premature_truncate then
          Logmgr.flushed_offset wal
        else safety
      in
      Logmgr.truncate_prefix wal ~upto

(* One daemon round: if a stale dirty page is what pins the oldest live
   segment, nudge the cleaner first (so the checkpoint about to be taken
   records a fresher DPT and the safety point can advance past the
   segment boundary); then take a fuzzy checkpoint — no quiescing, user
   fibers keep running between our yields — and reclaim. *)
let round mgr pool cfg =
  let wal = Txnmgr.log mgr in
  (if Logmgr.segment_count wal > 1 then begin
     let dpt = Bufpool.dirty_page_table pool in
     let pinned =
       List.exists (fun (_, rec_lsn) -> rec_lsn < Logmgr.first_segment_end wal) dpt
     in
     if pinned then begin
       Stats.incr Stats.ckptd_nudges;
       ignore (Bufpool.clean_some pool ~max_pages:cfg.nudge_pages)
     end
   end);
  ignore (Checkpoint.take mgr pool);
  Stats.incr Stats.ckptd_rounds;
  if cfg.truncate then ignore (reclaim mgr pool)

let run_daemon mgr pool cfg ~stop =
  validate cfg;
  (* die-on-crash: once a simulated power failure has tripped, the machine
     is dead — exit instead of busy-yielding forever. *)
  let stopping () = stop () || Sched.shutting_down () || Crashpoint.tripped () in
  let rec loop () =
    if not (stopping ()) then begin
      (* sleep [every_steps] scheduler steps (cut short by shutdown) *)
      let t0 = Sched.steps_now () in
      while (not (stopping ())) && Sched.steps_now () - t0 < cfg.every_steps do
        Sched.yield ()
      done;
      if not (stopping ()) then begin
        round mgr pool cfg;
        loop ()
      end
    end
  in
  loop ()
