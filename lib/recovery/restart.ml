open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Logset = Aries_wal.Logset
module Lockmgr = Aries_lock.Lockmgr
module Txnmgr = Aries_txn.Txnmgr
module Lockcodec = Aries_txn.Lockcodec
module Bufpool = Aries_buffer.Bufpool
module Disk = Aries_page.Disk
module Trace = Aries_trace.Trace

type report = {
  rp_redo_lsn : Lsn.t;
  rp_records_analyzed : int;
  rp_records_redo_scanned : int;
  rp_redos_applied : int;
  rp_redos_skipped : int;
  rp_redo_traversals : int;
  rp_undo_records : int;
  rp_losers : Ids.txn_id list;
  rp_indoubt : Ids.txn_id list;
  rp_locks_reacquired : int;
}

type txn_track = {
  mutable tk_state : Txnmgr.state;
  tk_firsts : Lsn.t array;  (** per stream, oldest LSN the txn wrote (bounds truncation) *)
  tk_lasts : Lsn.t array;
  tk_undo_nxts : Lsn.t array;
  mutable tk_prepare_body : bytes option;
  mutable tk_ended : bool;  (** saw a *valid* Commit or End: not a loser *)
  mutable tk_locks : (Lockmgr.name * Lockmgr.mode) list;
      (** locks derived from the scanned records (instant restart only) *)
  mutable tk_ck_locks : bytes option;
      (** checkpointed lock list: covers updates before the scan window *)
}

let fresh_track nn =
  {
    tk_state = Txnmgr.Active;
    tk_firsts = Array.make nn Lsn.nil;
    tk_lasts = Array.make nn Lsn.nil;
    tk_undo_nxts = Array.make nn Lsn.nil;
    tk_prepare_body = None;
    tk_ended = false;
    tk_locks = [];
    tk_ck_locks = None;
  }

(* ---------- Analysis pass ---------- *)

type analysis = {
  an_start : Lsn.t array;
      (** per stream, where the merged scan began (the anchoring
          checkpoint's ck_scan; all-nil when there is no checkpoint) *)
  an_redo : Lsn.t array;  (** per stream, where redo starts *)
  an_redo_lsn : Lsn.t;  (** control-stream redo start (for the report) *)
  an_dpt : (Ids.page_id, Lsn.t) Hashtbl.t;
  an_txns : (Ids.txn_id, txn_track) Hashtbl.t;
  an_records : int;
  an_next_txn : Ids.txn_id;
      (** checkpointed txn-id high-water mark: covers transactions that
          ended before the scan window and so appear nowhere in [an_txns] *)
  an_chains : (Ids.page_id, Lsn.t list) Hashtbl.t;
      (** checkpointed per-page log chains (latest checkpoint wins): the
          record LSNs a dirty page accumulated before the scan window *)
}

(* does this record carry a change that redo must repeat? *)
let redoable_record (r : Logrec.t) =
  match r.Logrec.kind with
  | Logrec.Update -> r.Logrec.redoable
  | Logrec.Clr -> r.Logrec.rm_id <> 0  (* dummy CLRs carry no change *)
  | Logrec.Commit | Logrec.Prepare | Logrec.Rollback | Logrec.End_txn | Logrec.Begin_ckpt
  | Logrec.End_ckpt | Logrec.Coord_commit | Logrec.Coord_abort | Logrec.Coord_end ->
      false

let index_record ix (r : Logrec.t) =
  if redoable_record r && r.Logrec.page <> Ids.nil_page then
    match Hashtbl.find_opt ix r.Logrec.page with
    | Some l -> l := r.Logrec.lsn :: !l
    | None -> Hashtbl.replace ix r.Logrec.page (ref [ r.Logrec.lsn ])

(* Scan every stream from the anchoring checkpoint's per-stream horizons,
   merged in (epoch, gsn) order — the only pass that needs the cross-stream
   merge (redo is per page, and a page's records live on one stream).

   Cross-stream survivorship is where multi-stream analysis earns its keep:
   a stream's survivors are always a hole-free prefix, but *between*
   streams a shuffled crash can keep a Commit / End_txn / Prepare record
   while dropping records it logically follows on other streams. Each of
   those records therefore carries its fence-target vector, and analysis
   believes it only if every named record actually survived
   ({!Logset.targets_valid}); otherwise the transaction stays a loser. *)
let analysis ?locks_of ?index logs =
  let nn = Logset.n logs in
  let vec v = if Array.length v = nn then Array.copy v else Array.make nn Lsn.nil in
  let anchor = Checkpoint.last_complete (Logset.control logs) in
  let starts =
    match anchor with
    | Some (_begin_lsn, _end_lsn, body) -> vec body.Checkpoint.ck_scan
    | None -> Array.make nn Lsn.nil
  in
  (* the End_ckpt LSN of the checkpoint the master record anchors: only
     {e that} checkpoint is known to have flushed every stream before
     publishing, which is what makes its Committing entries durable *)
  let anchor_end = match anchor with Some (_b, e, _) -> e | None -> Lsn.nil in
  let dpt : (Ids.page_id, Lsn.t) Hashtbl.t = Hashtbl.create 64 in
  let chains : (Ids.page_id, Lsn.t list) Hashtbl.t = Hashtbl.create 32 in
  let txns : (Ids.txn_id, txn_track) Hashtbl.t = Hashtbl.create 32 in
  let records = ref 0 in
  let next_txn = ref 0 in
  let track id =
    match Hashtbl.find_opt txns id with
    | Some tk -> tk
    | None ->
        let tk = fresh_track nn in
        Hashtbl.replace txns id tk;
        tk
  in
  Logset.iter_merged logs ~starts (fun r ->
      incr records;
      let lsn = r.Logrec.lsn in
      let s = r.Logrec.stream in
      (if r.Logrec.txn <> Ids.nil_txn then begin
         let tk = track r.Logrec.txn in
         if Lsn.is_nil tk.tk_firsts.(s) then tk.tk_firsts.(s) <- lsn;
         tk.tk_lasts.(s) <- lsn;
         (* instant restart: derive the lock names this record's change is
            protected by, so a loser's locks can be reacquired before the
            Db reopens. Over-approximation is safe (a lock the loser did
            not hold merely delays a new transaction until undo drops it);
            under-approximation is the hazard. *)
         (match locks_of with
         | Some f when r.Logrec.rm_id <> 0 -> (
             match r.Logrec.kind with
             | Logrec.Update | Logrec.Clr -> tk.tk_locks <- f r @ tk.tk_locks
             | _ -> ())
         | Some _ | None -> ());
         (* jump-target clamp: mirror the live driver's rule that a fence
            jump never rewinds a cursor upward — except that an analysis
            cursor still [nil] may mean "unknown yet" (the txn's cursor
            state predates the scan window), where the jump must land *)
         let clamp cur l = if Lsn.is_nil cur then l else Lsn.min cur l in
         match r.Logrec.kind with
         | Logrec.Update -> if r.Logrec.undoable then tk.tk_undo_nxts.(s) <- lsn
         | Logrec.Clr ->
             if Txnmgr.nta_anchor r then begin
               (* multi-stream NTA fence: honor the anchor's jump vector
                  only if the whole bracket survived on every moved
                  stream; otherwise leave the cursors where the scan put
                  them — on the bracket's own records — so the surviving
                  half of the SMO is physically rolled back *)
               (match Txnmgr.decode_nta_body r.Logrec.body with
               | jumps, fences ->
                   if Logset.targets_valid logs r fences then
                     (* clamped, like the live driver: never rewind a
                        cursor that already advanced past the target *)
                     List.iter
                       (fun (js, jl) -> tk.tk_undo_nxts.(js) <- clamp tk.tk_undo_nxts.(js) jl)
                       jumps
               | exception _ -> ());
               (* keep the anchor on the undo path (mirrors the live
                  cursor state after nta_end): a later record's undo may
                  re-expose a bracket record, and only the anchor's own
                  reverse-gsn turn re-fences it *)
               tk.tk_undo_nxts.(s) <- lsn
             end
             else begin
               (* the cursor jump lands on the *compensated* record's
                  stream, which a cross-stream logical undo makes distinct
                  from the CLR's own; the CLR's own cursor then falls back
                  to the CLR itself so that stream's walk stays sound
                  (undo steps through non-undoable records harmlessly) *)
               tk.tk_undo_nxts.(r.Logrec.undo_nxt_stream) <-
                 clamp tk.tk_undo_nxts.(r.Logrec.undo_nxt_stream) r.Logrec.undo_nxt_lsn;
               if r.Logrec.undo_nxt_stream <> s then tk.tk_undo_nxts.(s) <- lsn
             end
         | Logrec.Prepare ->
             (* believe the prepare only if its fence vector survived: an
                in-doubt txn with updates lost on another stream must be
                rolled back, not parked awaiting a coordinator that would
                commit a hole *)
             let valid =
               try
                 let targets, _, _ = Txnmgr.decode_prepare_body r.Logrec.body in
                 Logset.targets_valid logs r targets
               with _ -> false
             in
             if valid then begin
               tk.tk_state <- Txnmgr.Prepared;
               tk.tk_prepare_body <- Some r.Logrec.body
             end
         | Logrec.Rollback -> tk.tk_state <- Txnmgr.Rolling_back
         | Logrec.Commit -> if Logset.commit_valid logs r then tk.tk_ended <- true
         | Logrec.End_txn ->
             (* across streams, "the End survived" does not imply "every
                CLR before it survived" — validate the End's own vector;
                an invalid End turns the rollback back into a loser (the
                per-stream WAL rule makes re-undo sound: any page image
                that reached disk has its own stream's records stable) *)
             let valid =
               try Logset.targets_valid logs r (Logset.decode_commit_targets r.Logrec.body)
               with _ -> false
             in
             if valid then tk.tk_ended <- true
         | Logrec.Begin_ckpt | Logrec.End_ckpt | Logrec.Coord_commit | Logrec.Coord_abort
         | Logrec.Coord_end ->
             ()
       end);
      (match r.Logrec.kind with
      | Logrec.End_ckpt ->
          (* merge checkpointed state: scan-derived knowledge wins *)
          let body = Checkpoint.decode_body r.Logrec.body in
          if body.Checkpoint.ck_next_txn > !next_txn then
            next_txn := body.Checkpoint.ck_next_txn;
          List.iter
            (fun (ct : Checkpoint.ck_txn) ->
              match Hashtbl.find_opt txns ct.Checkpoint.ct_id with
              | None ->
                  let tk = fresh_track nn in
                  tk.tk_state <- ct.Checkpoint.ct_state;
                  Array.blit (vec ct.Checkpoint.ct_firsts) 0 tk.tk_firsts 0 nn;
                  Array.blit (vec ct.Checkpoint.ct_lasts) 0 tk.tk_lasts 0 nn;
                  Array.blit (vec ct.Checkpoint.ct_undo_nxts) 0 tk.tk_undo_nxts 0 nn;
                  tk.tk_ck_locks <- Some ct.Checkpoint.ct_locks;
                  (* a checkpointed Committing txn had appended its Commit
                     record before End_ckpt was written; Checkpoint.take
                     forces every stream before publishing the master, so
                     when *the anchoring* checkpoint says Committing the
                     Commit and its whole fence vector are stable —
                     committed, even though the scan never saw the Commit
                     record. A later End_ckpt that survived without its
                     master (crash mid-take, between the control stream's
                     flush and the others') carries no such guarantee: its
                     Committing txns count only if the scan finds their
                     Commit record and validates its fence. *)
                  if
                    ct.Checkpoint.ct_state = Txnmgr.Committing
                    && Lsn.compare lsn anchor_end = 0
                  then tk.tk_ended <- true;
                  Hashtbl.replace txns ct.Checkpoint.ct_id tk
              | Some tk ->
                  (* scan-derived knowledge wins for everything except the
                     first LSNs: the checkpoint can know about records from
                     before the analysis window *)
                  Array.iteri
                    (fun i f ->
                      if
                        (not (Lsn.is_nil f))
                        && (Lsn.is_nil tk.tk_firsts.(i) || Lsn.( < ) f tk.tk_firsts.(i))
                      then tk.tk_firsts.(i) <- f)
                    (vec ct.Checkpoint.ct_firsts);
                  (* the checkpointed lock list covers updates from before
                     the scan window; the latest checkpoint's is the most
                     complete *)
                  tk.tk_ck_locks <- Some ct.Checkpoint.ct_locks;
                  if
                    ct.Checkpoint.ct_state = Txnmgr.Committing
                    && Lsn.compare lsn anchor_end = 0
                  then tk.tk_ended <- true)
            body.Checkpoint.ck_txns;
          List.iter
            (fun (pid, rec_lsn) ->
              (* the checkpointed recLSN can predate anything the scan saw;
                 keep the minimum so redo starts early enough *)
              match Hashtbl.find_opt dpt pid with
              | Some seen -> Hashtbl.replace dpt pid (Lsn.min seen rec_lsn)
              | None -> Hashtbl.replace dpt pid rec_lsn)
            body.Checkpoint.ck_dpt;
          (* the latest checkpoint's chains are the most complete: a chain
             covers every record since its page became dirty, so a newer
             snapshot subsumes an older one *)
          List.iter
            (fun (pid, chain) -> Hashtbl.replace chains pid chain)
            body.Checkpoint.ck_chains
      | Logrec.Update | Logrec.Clr ->
          if r.Logrec.page <> Ids.nil_page && not (Hashtbl.mem dpt r.Logrec.page) then
            Hashtbl.replace dpt r.Logrec.page lsn;
          (* instant restart: index the scan's redoable records by page, so
             per-page redo replays exactly its own history instead of
             rescanning the whole log once per pending page *)
          (match index with Some ix -> index_record ix r | None -> ())
      | Logrec.Commit | Logrec.Prepare | Logrec.Rollback | Logrec.End_txn | Logrec.Begin_ckpt
      | Logrec.Coord_commit | Logrec.Coord_abort | Logrec.Coord_end ->
          ()));
  (* per-stream redo starts: a page's recLSN is an offset on its own
     stream, so only per-stream minima are meaningful *)
  let an_redo = Array.init nn (fun i -> Logmgr.end_offset (Logset.stream logs i)) in
  Hashtbl.iter
    (fun pid rec_lsn ->
      let s = Logset.route_page logs pid in
      an_redo.(s) <- Lsn.min an_redo.(s) rec_lsn)
    dpt;
  { an_start = starts; an_redo; an_redo_lsn = an_redo.(0); an_dpt = dpt; an_txns = txns;
    an_records = !records; an_next_txn = !next_txn; an_chains = chains }

(* ---------- Redo pass: repeat history, page-oriented ---------- *)

(* Each stream is replayed sequentially from its own redo start. No
   cross-stream merge is needed: redo is per page, all of a page's records
   live on one stream, and within a stream LSN order equals (epoch, gsn)
   order — which is exactly what rule R8(b) checks via the Redo_apply
   events emitted here. *)
let redo mgr pool an =
  let logs = Txnmgr.logs mgr in
  let scanned = ref 0 and applied = ref 0 and skipped = ref 0 in
  Logset.iteri logs (fun s wal ->
      Logmgr.iter_from wal an.an_redo.(s) (fun r ->
          incr scanned;
          let page = r.Logrec.page in
          if redoable_record r && page <> Ids.nil_page then begin
            Disk.note_pid (Bufpool.disk pool) page;
            match Hashtbl.find_opt an.an_dpt page with
            | Some rec_lsn when Lsn.( >= ) r.Logrec.lsn rec_lsn -> begin
                Stats.incr Stats.redo_pages_examined;
                let apply () =
                  if Trace.enabled () then
                    Trace.emit
                      (Trace.Redo_apply
                         { log = Logmgr.id wal; pid = page; lsn = r.Logrec.lsn; gsn = r.Logrec.gsn });
                  Txnmgr.rm_redo mgr r;
                  Stats.incr Stats.redos_applied;
                  incr applied
                in
                match Bufpool.fix_opt pool page with
                | Some p ->
                    if Lsn.( < ) p.Aries_page.Page.page_lsn r.Logrec.lsn then apply ()
                    else incr skipped;
                    Bufpool.unfix pool p
                | None ->
                    (* page never reached disk: the record must recreate it
                       (format-type opcodes do; the RM asserts) *)
                    apply ()
              end
            | Some _ | None -> incr skipped
          end));
  (!scanned, !applied, !skipped)

(* ---------- Undo pass: single reverse sweep over all losers ---------- *)

(* The sweep is globally reverse-gsn: at each step, compensate the owed
   record with the highest gsn across every loser and every stream
   ({!Txnmgr.undo_candidate} merges each loser's per-stream cursors; the
   outer fold merges across losers). gsn is the original append order, so
   this reproduces the classic single-log reverse-LSN sweep exactly —
   including its physical-SMO soundness argument. *)
let undo mgr an =
  let processed = ref 0 in
  (* restore losers into the live transaction table *)
  let losers = ref [] in
  Hashtbl.iter
    (fun id tk ->
      if (not tk.tk_ended) && tk.tk_state <> Txnmgr.Prepared then begin
        let txn =
          Txnmgr.restore_txn mgr ~firsts:tk.tk_firsts ~id ~state:Txnmgr.Rolling_back
            ~lasts:tk.tk_lasts ~undo_nxts:tk.tk_undo_nxts ()
        in
        Lockmgr.set_no_victim (Txnmgr.locks mgr) id;
        losers := txn :: !losers
      end)
    an.an_txns;
  let losers_sorted = List.sort (fun a b -> compare a.Txnmgr.txn_id b.Txnmgr.txn_id) !losers in
  (* losers with nothing to undo still need an End record *)
  let live = ref [] in
  List.iter
    (fun t ->
      match Txnmgr.undo_candidate mgr t with
      | None -> Txnmgr.finish mgr t
      | Some _ -> live := t :: !live)
    losers_sorted;
  let rec loop () =
    let best = ref None in
    List.iter
      (fun t ->
        match Txnmgr.undo_candidate mgr t with
        | Some ((_, r) as c) -> (
            match !best with
            | Some (_, (_, (rb : Logrec.t))) when rb.Logrec.gsn >= r.Logrec.gsn -> ()
            | Some _ | None -> best := Some (t, c))
        | None -> ())
      !live;
    match !best with
    | None -> ()
    | Some (victim, c) ->
        incr processed;
        Txnmgr.undo_one mgr victim c;
        (match Txnmgr.undo_candidate mgr victim with
        | None ->
            Txnmgr.finish mgr victim;
            live := List.filter (fun t -> t != victim) !live
        | Some _ -> ());
        loop ()
  in
  loop ();
  (!processed, List.map (fun t -> t.Txnmgr.txn_id) losers_sorted)

(* ---------- In-doubt transactions: reacquire locks ---------- *)

let reacquire_indoubt mgr an =
  let locks = Txnmgr.locks mgr in
  let count = ref 0 in
  let indoubt = ref [] in
  Hashtbl.iter
    (fun id tk ->
      if (not tk.tk_ended) && tk.tk_state = Txnmgr.Prepared then begin
        ignore
          (Txnmgr.restore_txn mgr ~firsts:tk.tk_firsts ~id ~state:Txnmgr.Prepared
             ~lasts:tk.tk_lasts ~undo_nxts:tk.tk_undo_nxts ());
        indoubt := id :: !indoubt;
        Stats.incr Stats.txn_indoubt_restored;
        (* if the txn prepared before the analysis window, fetch the
           Prepare record through the prev-LSN chain of its control stream
           (pageless records route by txn id, so the Prepare is there) *)
        let body =
          match tk.tk_prepare_body with
          | Some b -> Some b
          | None ->
              let cs = Txnmgr.txn_stream mgr id in
              let wal = Logset.stream (Txnmgr.logs mgr) cs in
              let rec walk lsn =
                if Lsn.is_nil lsn then None
                else
                  let r = Logmgr.read wal lsn in
                  match r.Logrec.kind with
                  | Logrec.Prepare -> Some r.Logrec.body
                  | Logrec.Update | Logrec.Clr | Logrec.Commit | Logrec.Rollback
                  | Logrec.End_txn | Logrec.Begin_ckpt | Logrec.End_ckpt | Logrec.Coord_commit
                  | Logrec.Coord_abort | Logrec.Coord_end ->
                      walk r.Logrec.prev_lsn
              in
              walk tk.tk_lasts.(cs)
        in
        match body with
        | None -> ()
        | Some body ->
            let _, locks_blob, _ = Txnmgr.decode_prepare_body body in
            List.iter
              (fun (name, mode) ->
                match Lockmgr.lock locks ~txn:id name mode Lockmgr.Commit with
                | Lockmgr.Granted -> incr count
                | Lockmgr.Denied | Lockmgr.Deadlock ->
                    (* restart is single-threaded: always grantable *)
                    assert false)
              (Lockcodec.decode_list locks_blob)
      end)
    an.an_txns;
  (!count, List.sort compare !indoubt)

let trace_phase phase =
  if Trace.enabled () then Trace.emit (Trace.Restart_phase { phase })

(* ---------- Instant restart: resumable, incremental engine ----------

   After Analysis the Db opens for new transactions immediately. The
   analysis DPT becomes a "needs redo" set: a fix of a pending page
   triggers single-page redo on demand (through the Bufpool hook), a
   background daemon drains the rest, and loser undo is lock-driven — a
   new transaction that requests a name held by a restored loser preempts
   exactly that loser's undo instead of waiting behind a bulk undo pass.
   Repeating history per page is sound because a pending page, by
   construction, has no post-crash log records: any post-crash touch goes
   through [fix], and the hook de-pends the page (replaying its history)
   before the toucher can log against it. *)

module Sched = Aries_sched.Sched

type drain_cfg = {
  dr_every_steps : int;  (** scheduler steps between background rounds *)
  dr_redo_pages : int;  (** pending pages redone per round *)
  dr_undo_txns : int;  (** losers fully undone per round *)
}

let default_drain = { dr_every_steps = 48; dr_redo_pages = 2; dr_undo_txns = 1 }

let validate_drain cfg =
  if cfg.dr_every_steps <= 0 then invalid_arg "Restart: dr_every_steps must be positive";
  if cfg.dr_redo_pages <= 0 then invalid_arg "Restart: dr_redo_pages must be positive";
  if cfg.dr_undo_txns <= 0 then invalid_arg "Restart: dr_undo_txns must be positive"

type engine = {
  en_mgr : Txnmgr.t;
  en_pool : Bufpool.t;
  en_archive : Media.Archive.t option;
  en_redo_lsn : Lsn.t;
  en_records_analyzed : int;
  en_pending : (Ids.page_id, Lsn.t) Hashtbl.t;  (* the needs-redo set *)
  en_history : (Ids.page_id, Lsn.t list) Hashtbl.t;
      (* each pending page's redoable record LSNs on its own stream,
         oldest first: the checkpoint-carried chain (records predating the
         analysis window) merged with the window's own per-page index, so
         per-page redo reads exactly its records instead of scanning the
         log. Entries are dropped as pages are replayed; a page absent
         here (recLSN below the window with no checkpointed chain) falls
         back to a scan of its stream. *)
  en_redoing : (Ids.page_id, Sched.fiber_id) Hashtbl.t;  (* replay in flight *)
  en_losers : (Ids.txn_id, Txnmgr.txn) Hashtbl.t;  (* undo still owed *)
  en_undoing : (Ids.txn_id, Sched.fiber_id) Hashtbl.t;  (* undo in flight *)
  mutable en_finished : bool;
  mutable en_losers_all : Ids.txn_id list;
  mutable en_indoubt : Ids.txn_id list;
  mutable en_locks_reacquired : int;
  (* report counters: aggregated across on-demand redos, background drain
     rounds and preempted undos — never reset per pass *)
  mutable en_redo_scanned : int;
  mutable en_redos_applied : int;
  mutable en_redos_skipped : int;
  mutable en_redo_traversals : int;
  mutable en_undo_records : int;
}

let current_fiber () = if Sched.in_fiber () then Sched.current () else -1

(* The page's redoable history from its recLSN on — read from the page's
   own stream (all its records live there). The common path is the
   prebuilt [en_history] index; the fallback rescans that stream's
   archived segments first (the live prefix may have been reclaimed),
   then its live log. Either way the records are materialized as a list
   before applying — a redo application may yield (transient-I/O backoff),
   and the log must not be iterated across a yield that can append to
   it. *)
let page_history en ~from pid =
  let wal = Logset.page_stream (Txnmgr.logs en.en_mgr) pid in
  match Hashtbl.find_opt en.en_history pid with
  | Some lsns ->
      (* direct reads: everything a pending page owes sits above its
         stream's reclamation safety point (which floors at the last
         checkpoint's redo point), so the live log still holds it *)
      List.map (Logmgr.read wal) lsns
  | None ->
      let acc = ref [] in
      let note (r : Logrec.t) = if r.Logrec.page = pid && redoable_record r then acc := r :: !acc in
      (match en.en_archive with
      | Some a -> Media.Archive.iter_history a wal ~from note
      | None -> Logmgr.iter_from wal from note);
      List.rev !acc

let redo_record en (r : Logrec.t) =
  en.en_redo_scanned <- en.en_redo_scanned + 1;
  let page = r.Logrec.page in
  Disk.note_pid (Bufpool.disk en.en_pool) page;
  Stats.incr Stats.redo_pages_examined;
  let apply () =
    if Trace.enabled () then
      Trace.emit
        (Trace.Redo_apply
           {
             log = Logmgr.id (Logset.page_stream (Txnmgr.logs en.en_mgr) page);
             pid = page;
             lsn = r.Logrec.lsn;
             gsn = r.Logrec.gsn;
           });
    Txnmgr.rm_redo en.en_mgr r;
    Stats.incr Stats.redos_applied;
    en.en_redos_applied <- en.en_redos_applied + 1
  in
  match Bufpool.fix_opt en.en_pool page with
  | Some p ->
      if Lsn.( < ) p.Aries_page.Page.page_lsn r.Logrec.lsn then apply ()
      else en.en_redos_skipped <- en.en_redos_skipped + 1;
      Bufpool.unfix en.en_pool p
  | None ->
      (* page never reached disk: the record must recreate it
         (format-type opcodes do; the RM asserts) *)
      apply ()

let redo_page ?(on_demand = false) en pid =
  match Hashtbl.find_opt en.en_pending pid with
  | None -> ()
  | Some rec_lsn ->
      (* de-pend before replaying, so the roll-forward's own fixes of this
         page pass the hook; [en_redoing] lets other fibers wait out a
         replay already in flight instead of seeing a half-replayed page *)
      Hashtbl.remove en.en_pending pid;
      if Crashpoint.fault_active Crashpoint.fault_instant_skip_redo then
        (* deliberately broken engine: drop the page from the pending set
           without repeating its history. No Restart_page_done is emitted,
           so the discipline checker's needs-redo table still lists the
           page and the very next fix is a deterministic R7 violation. *)
        Bufpool.clear_restart_page en.en_pool pid
      else begin
        Hashtbl.replace en.en_redoing pid (current_fiber ());
        Fun.protect
          ~finally:(fun () -> Hashtbl.remove en.en_redoing pid)
          (fun () ->
            if on_demand then Stats.incr Stats.instant_ondemand_redos;
            if Trace.enabled () then
              Trace.emit
                (Trace.Restart_redo_page { pool = Bufpool.id en.en_pool; pid; on_demand });
            let tr0 = Stats.get (Stats.current ()) Stats.tree_traversals in
            let applied0 = en.en_redos_applied in
            List.iter (fun r -> redo_record en r) (page_history en ~from:rec_lsn pid);
            Hashtbl.remove en.en_history pid;
            en.en_redo_traversals <-
              en.en_redo_traversals + (Stats.get (Stats.current ()) Stats.tree_traversals - tr0);
            (* only a fully replayed page may leave the checkpoint-visible
               needs-redo overlay: a checkpoint taken mid-replay must still
               cover the not-yet-redone suffix of the page's history *)
            Bufpool.clear_restart_page en.en_pool pid;
            if Trace.enabled () then
              Trace.emit
                (Trace.Restart_page_done
                   { pool = Bufpool.id en.en_pool; pid; applied = en.en_redos_applied - applied0 }))
      end

(* The Bufpool fix hook: pending page -> redo it now, on demand; page being
   replayed by another fiber -> wait the replay out. *)
let on_fix en pid =
  if Hashtbl.mem en.en_pending pid then redo_page ~on_demand:true en pid
  else
    match Hashtbl.find_opt en.en_redoing pid with
    | Some f when f <> current_fiber () ->
        while Hashtbl.mem en.en_redoing pid do
          Sched.yield ()
        done
    | Some _ | None -> ()

(* one sweep step for a single loser: compensate its max-gsn owed record
   (the per-stream cursors are merged inside Txnmgr.undo_candidate) *)
let undo_step en (txn : Txnmgr.txn) =
  match Txnmgr.undo_candidate en.en_mgr txn with
  | None -> false
  | Some c ->
      en.en_undo_records <- en.en_undo_records + 1;
      Txnmgr.undo_one en.en_mgr txn c;
      true

let finish_loser en (txn : Txnmgr.txn) =
  (* emitted before the locks are released: a waiter woken by the release
     must find the name already disowned in the checker's tables *)
  if Trace.enabled () then Trace.emit (Trace.Restart_loser_done { txn = txn.Txnmgr.txn_id });
  Hashtbl.remove en.en_losers txn.Txnmgr.txn_id;
  Txnmgr.finish en.en_mgr txn

let undo_loser ?(preempted = false) en id =
  (* wait out a fiber already driving this loser's undo *)
  (match Hashtbl.find_opt en.en_undoing id with
  | Some f when f <> current_fiber () ->
      while Hashtbl.mem en.en_undoing id do
        Sched.yield ()
      done
  | Some _ | None -> ());
  match Hashtbl.find_opt en.en_losers id with
  | None -> ()
  | Some txn ->
      Hashtbl.replace en.en_undoing id (current_fiber ());
      Fun.protect
        ~finally:(fun () -> Hashtbl.remove en.en_undoing id)
        (fun () ->
          if preempted then Stats.incr Stats.instant_preemptions;
          if Trace.enabled () then Trace.emit (Trace.Restart_undo_txn { txn = id; preempted });
          while undo_step en txn do
            ()
          done;
          finish_loser en txn)

(* Eager undo is one interleaved backward sweep over every unfenced
   loser — always compensate the globally highest owed record next (by
   gsn, the original append order), exactly like the classic undo pass.
   Per-transaction order is not enough: a loser cut inside an SMO is
   rolled back {e physically}, and a sweep that fully undoes some other
   loser first can logically remove a key from the page the SMO moved it
   to, only for the later physical rollback of the half-open split to
   restore the pre-move source page — key included — resurrecting the
   undone insert. Reverse-gsn order undoes the structure change before any
   record that predates it. Deferred (lock-fenced, purely logical) undo is
   immune: it runs after this sweep has restored structural consistency,
   and logical undos under locks commute. *)
let undo_eager en txns =
  List.iter
    (fun (txn : Txnmgr.txn) ->
      Hashtbl.replace en.en_undoing txn.Txnmgr.txn_id (current_fiber ());
      if Trace.enabled () then
        Trace.emit (Trace.Restart_undo_txn { txn = txn.Txnmgr.txn_id; preempted = false }))
    txns;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (txn : Txnmgr.txn) -> Hashtbl.remove en.en_undoing txn.Txnmgr.txn_id)
        txns)
    (fun () ->
      let next () =
        List.fold_left
          (fun best (txn : Txnmgr.txn) ->
            match Txnmgr.undo_candidate en.en_mgr txn with
            | None -> best
            | Some ((_, r) as c) -> (
                match best with
                | Some (_, (_, (rb : Logrec.t))) when rb.Logrec.gsn >= r.Logrec.gsn -> best
                | Some _ | None -> Some (txn, c)))
          None txns
      in
      let rec loop () =
        match next () with
        | Some (txn, c) ->
            en.en_undo_records <- en.en_undo_records + 1;
            Txnmgr.undo_one en.en_mgr txn c;
            loop ()
        | None -> ()
      in
      loop ();
      List.iter (fun txn -> finish_loser en txn) txns)

(* The Txnmgr lock hook: before a new transaction waits on a name, any
   restored loser holding it is rolled back — the requester's own fiber
   drives exactly the conflicting loser's undo (Sauer & Härder's lazy,
   lock-driven undo), so lock waits are only ever against live txns. *)
let on_lock en name =
  let locks = Txnmgr.locks en.en_mgr in
  let rec loop () =
    let conflicting =
      List.find_opt
        (fun (id, _) -> Hashtbl.mem en.en_losers id || Hashtbl.mem en.en_undoing id)
        (Lockmgr.holders locks name)
    in
    match conflicting with
    | None -> ()
    | Some (id, _) ->
        undo_loser ~preempted:true en id;
        loop ()
  in
  loop ()

(* May this loser's undo be deferred until the drain daemon (or a lock
   conflict) gets to it? Only if {e every} record it still owes — on every
   stream — is fenced by a lock this engine actually reacquired: otherwise
   a new transaction could observe the loser's uncommitted change (a
   deleted key's real protection, for instance, is the commit-duration X
   on the {e next} key, which no Delete_key record body can name). Each
   stream's walk follows the undo chain exactly as lazy undo will:
   prev-LSN links, with CLR undoNxtLSN jumps skipping completed nested top
   actions (their structure records are never owed, so they never force
   eagerness). The walks run the {e whole} chains, including records older
   than the analysis scan start: the checkpoint lock list restores a
   loser's runtime {e locks}, but a half-open SMO's structure updates were
   protected by latches, which die with the crash — no lock in any blob
   fences them, so a loser cut mid-SMO must be compensated eagerly no
   matter where its records fall (its record reads stay cheap: log
   reclamation never truncates past an active transaction's first LSN on
   any stream). *)
let undo_deferrable en (txn : Txnmgr.txn) =
  let logs = Txnmgr.logs en.en_mgr in
  let locks = Txnmgr.locks en.en_mgr in
  let holds name =
    List.exists (fun (id, _) -> id = txn.Txnmgr.txn_id) (Lockmgr.holders locks name)
  in
  let check_stream s cursor =
    let wal = Logset.stream logs s in
    let rec check lsn =
      Lsn.is_nil lsn
      ||
      let r = Logmgr.read wal lsn in
      match r.Logrec.kind with
      | Logrec.Update when r.Logrec.undoable ->
          r.Logrec.rm_id <> 0
          && (match Txnmgr.rm_locks en.en_mgr r with
             | [] -> false
             | names -> List.for_all (fun (name, _) -> holds name) names)
          && check r.Logrec.prev_lsn
      | Logrec.Clr ->
          if Txnmgr.nta_anchor r then
            (* a valid anchor fences this stream's bracket records only if
               its jump vector names this stream. The *other* moved
               streams' walks never meet the anchor (it lives on the
               control stream alone), so they see the bracket's structure
               records as unfenced and force eagerness — conservative but
               safe: eager undo still honors the anchor's fence when it
               reaches it in reverse-gsn order. *)
            match
              let jumps, fences = Txnmgr.decode_nta_body r.Logrec.body in
              if Logset.targets_valid logs r fences then List.assoc_opt s jumps else None
            with
            | Some jump -> check jump
            | None | (exception _) -> check r.Logrec.prev_lsn
          else if r.Logrec.undo_nxt_stream = s then check r.Logrec.undo_nxt_lsn
          else
            (* a cross-stream logical CLR's jump belongs to the compensated
               record's stream — here just step to the previous record (the
               compensated record is walked by its own stream's check) *)
            check r.Logrec.prev_lsn
      | _ -> check r.Logrec.prev_lsn
    in
    check cursor
  in
  let ok = ref true in
  Array.iteri (fun s cursor -> if not (check_stream s cursor) then ok := false) txn.Txnmgr.undo_nxts;
  !ok

let complete en =
  Hashtbl.length en.en_pending = 0
  && Hashtbl.length en.en_redoing = 0
  && Hashtbl.length en.en_losers = 0

let finished en = en.en_finished

let pending_redo en =
  Hashtbl.fold (fun pid _ acc -> pid :: acc) en.en_pending [] |> List.sort compare

let losers_remaining en =
  Hashtbl.fold (fun id _ acc -> id :: acc) en.en_losers [] |> List.sort compare

let finish en =
  if not en.en_finished then begin
    en.en_finished <- true;
    Txnmgr.set_preempt_hook en.en_mgr None;
    Bufpool.clear_redo_hook en.en_pool;
    trace_phase "checkpoint";
    ignore (Checkpoint.take en.en_mgr en.en_pool);
    trace_phase "done"
  end

let report en =
  {
    rp_redo_lsn = en.en_redo_lsn;
    rp_records_analyzed = en.en_records_analyzed;
    rp_records_redo_scanned = en.en_redo_scanned;
    rp_redos_applied = en.en_redos_applied;
    rp_redos_skipped = en.en_redos_skipped;
    rp_redo_traversals = en.en_redo_traversals;
    rp_undo_records = en.en_undo_records;
    rp_losers = en.en_losers_all;
    rp_indoubt = en.en_indoubt;
    rp_locks_reacquired = en.en_locks_reacquired;
  }

let start ?archive mgr pool =
  let logs = Txnmgr.logs mgr in
  trace_phase "analysis";
  let index : (Ids.page_id, Lsn.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let an = analysis ~locks_of:(fun r -> Txnmgr.rm_locks mgr r) ~index logs in
  (* Each pending page's history: the checkpoint-carried chain (records
     that predate the analysis window) merged with the window's own
     per-page index. The two can overlap — the chain runs to its
     checkpoint's snapshot, the window starts at the page's stream's
     ck_scan horizon — so the merge deduplicates; a stale chain (page
     cleaned after the checkpoint, then re-dirtied) can only add records
     the page-LSN test skips. A recLSN below the window with no
     checkpointed chain means the history is not fully known here: no
     entry, and [page_history] falls back to a scan of the page's
     stream. *)
  let history : (Ids.page_id, Lsn.t list) Hashtbl.t =
    Hashtbl.create (Hashtbl.length an.an_dpt)
  in
  Hashtbl.iter
    (fun pid rec_lsn ->
      let chain = Option.value ~default:[] (Hashtbl.find_opt an.an_chains pid) in
      let window =
        match Hashtbl.find_opt index pid with Some l -> List.rev !l | None -> []
      in
      if chain <> [] || Lsn.( >= ) rec_lsn an.an_start.(Logset.route_page logs pid) then
        Hashtbl.replace history pid
          (List.sort_uniq Lsn.compare (chain @ window)
          |> List.filter (fun lsn -> Lsn.( >= ) lsn rec_lsn)))
    an.an_dpt;
  (* keep txn ids monotonic across the crash — including ids of
     transactions that ended before the scan window, known only through
     the checkpointed high-water mark *)
  Hashtbl.iter (fun id _ -> Txnmgr.note_txn_id mgr id) an.an_txns;
  if an.an_next_txn > 0 then Txnmgr.note_txn_id mgr (an.an_next_txn - 1);
  let en =
    {
      en_mgr = mgr;
      en_pool = pool;
      en_archive = archive;
      en_redo_lsn = an.an_redo_lsn;
      en_records_analyzed = an.an_records;
      en_pending = Hashtbl.copy an.an_dpt;
      en_history = history;
      en_redoing = Hashtbl.create 4;
      en_losers = Hashtbl.create 8;
      en_undoing = Hashtbl.create 4;
      en_finished = false;
      en_losers_all = [];
      en_indoubt = [];
      en_locks_reacquired = 0;
      en_redo_scanned = 0;
      en_redos_applied = 0;
      en_redos_skipped = 0;
      en_redo_traversals = 0;
      en_undo_records = 0;
    }
  in
  (* publish the needs-redo set before anything can fix a page: the
     Bufpool overlay makes checkpoints and the log-reclamation safety
     point account for pages whose disk image is still stale, and the
     fix hook turns any touch of such a page into a single-page redo *)
  let dpt_entries =
    Hashtbl.fold
      (fun pid rec_lsn acc ->
        let chain =
          Option.value ~default:[] (Hashtbl.find_opt history pid)
        in
        (pid, rec_lsn, chain) :: acc)
      an.an_dpt []
    |> List.sort compare
  in
  List.iter
    (fun (pid, rec_lsn, _) ->
      Disk.note_pid (Bufpool.disk pool) pid;
      if Trace.enabled () then
        Trace.emit (Trace.Restart_dpt { pool = Bufpool.id pool; pid; rec_lsn }))
    dpt_entries;
  Bufpool.set_restart_dpt pool dpt_entries;
  Bufpool.set_redo_hook pool (fun pid -> on_fix en pid);
  trace_phase "reacquire-locks";
  let locks_reacquired, indoubt = reacquire_indoubt mgr an in
  en.en_locks_reacquired <- locks_reacquired;
  en.en_indoubt <- indoubt;
  (* restore losers: Rolling_back, deadlock-immune, and holding their
     locks again so new transactions conflict with their uncommitted
     state instead of reading it *)
  let locks = Txnmgr.locks mgr in
  let loser_ids = ref [] in
  Hashtbl.iter
    (fun id tk ->
      if (not tk.tk_ended) && tk.tk_state <> Txnmgr.Prepared then begin
        let txn =
          Txnmgr.restore_txn mgr ~firsts:tk.tk_firsts ~id ~state:Txnmgr.Rolling_back
            ~lasts:tk.tk_lasts ~undo_nxts:tk.tk_undo_nxts ()
        in
        Lockmgr.set_no_victim locks id;
        if Trace.enabled () then Trace.emit (Trace.Restart_loser { txn = id });
        Hashtbl.replace en.en_losers id txn;
        loser_ids := id :: !loser_ids;
        (* scan-derived names first (all X, the strongest), then the
           checkpointed list for updates predating the scan window *)
        let seen : (Lockmgr.name, unit) Hashtbl.t = Hashtbl.create 8 in
        let reacquire (name, mode) =
          if not (Hashtbl.mem seen name) then begin
            Hashtbl.replace seen name ();
            match Lockmgr.lock locks ~txn:id ~cond:true name mode Lockmgr.Commit with
            | Lockmgr.Granted ->
                Stats.incr Stats.instant_locks_reacquired;
                en.en_locks_reacquired <- en.en_locks_reacquired + 1;
                (* R7 bookkeeping is X-only and post-grant: two losers may
                   legitimately share an S name (duplicate-check locks) *)
                if mode = Lockmgr.X && Trace.enabled () then
                  Trace.emit
                    (Trace.Restart_lock
                       {
                         txn = id;
                         name = Lockmgr.name_to_string name;
                         mode = Lockmgr.mode_to_string mode;
                       })
            | Lockmgr.Denied | Lockmgr.Deadlock ->
                (* [start] is single-threaded: a denial only means another
                   restored txn already covers the name *)
                Stats.incr Stats.instant_locks_skipped
          end
        in
        List.iter reacquire tk.tk_locks;
        match tk.tk_ck_locks with
        | Some b -> List.iter reacquire (Lockcodec.decode_list b)
        | None -> ()
      end)
    an.an_txns;
  en.en_losers_all <- List.sort compare !loser_ids;
  (* triage the losers while still single-threaded: nothing owed -> End it
     now; every owed record fenced by a reacquired lock -> leave it for
     lazy, lock-driven undo; anything unfenced -> collect it for the
     eager sweep, which (like the classic undo pass) interleaves all
     such losers in global reverse-gsn order before the Db opens *)
  let eager = ref [] in
  List.iter
    (fun id ->
      match Hashtbl.find_opt en.en_losers id with
      | None -> ()
      | Some txn ->
          if Array.for_all Lsn.is_nil txn.Txnmgr.undo_nxts then finish_loser en txn
          else if not (undo_deferrable en txn) then eager := txn :: !eager)
    en.en_losers_all;
  if !eager <> [] then undo_eager en (List.rev !eager);
  Txnmgr.set_preempt_hook mgr (Some (fun name -> on_lock en name));
  if complete en then finish en else trace_phase "open";
  en

let drain_step ?(cfg = default_drain) en =
  if not en.en_finished then begin
    Stats.incr Stats.instant_drain_rounds;
    (let redone = ref 0 in
     let more = ref true in
     while !more && !redone < cfg.dr_redo_pages do
       match pending_redo en with
       | pid :: _ ->
           redo_page en pid;
           incr redone
       | [] -> more := false
     done);
    (let undone = ref 0 in
     let more = ref true in
     while !more && !undone < cfg.dr_undo_txns do
       match losers_remaining en with
       | id :: _ ->
           undo_loser en id;
           incr undone
       | [] -> more := false
     done);
    if complete en then finish en
  end

let drain en =
  while not (en.en_finished || Crashpoint.tripped ()) do
    (match pending_redo en with
    | pid :: _ -> redo_page en pid
    | [] -> (
        match losers_remaining en with
        | id :: _ -> undo_loser en id
        | [] ->
            (* work in flight on another fiber: wait it out *)
            if Sched.in_fiber () then Sched.yield ()));
    if complete en then finish en
  done

let run_daemon ?(cfg = default_drain) en ~stop =
  validate_drain cfg;
  let stopping () = stop () || Sched.shutting_down () || Crashpoint.tripped () in
  while not (en.en_finished || Crashpoint.tripped ()) do
    if stopping () then
      (* clean shutdown with the drain incomplete: finish synchronously so
         the quiesced post-run state holds (no restored losers, no orphan
         locks). A tripped crash instead aborts the loop — the machine is
         dead, and the next restart repeats whatever work remains. *)
      drain en
    else begin
      drain_step ~cfg en;
      let t0 = Sched.steps_now () in
      while
        (not (stopping ())) && (not en.en_finished) && Sched.steps_now () - t0 < cfg.dr_every_steps
      do
        Sched.yield ()
      done
    end
  done

let run mgr pool =
  let logs = Txnmgr.logs mgr in
  trace_phase "analysis";
  let an = analysis logs in
  (* keep txn ids monotonic across the crash — including ids of
     transactions that ended before the scan window, known only through
     the checkpointed high-water mark *)
  Hashtbl.iter (fun id _ -> Txnmgr.note_txn_id mgr id) an.an_txns;
  if an.an_next_txn > 0 then Txnmgr.note_txn_id mgr (an.an_next_txn - 1);
  trace_phase "reacquire-locks";
  let locks_reacquired, indoubt = reacquire_indoubt mgr an in
  let traversals_before = Stats.get (Stats.current ()) Stats.tree_traversals in
  trace_phase "redo";
  let scanned, applied, skipped = redo mgr pool an in
  let redo_traversals =
    Stats.get (Stats.current ()) Stats.tree_traversals - traversals_before
  in
  trace_phase "undo";
  let undo_records, losers = undo mgr an in
  trace_phase "checkpoint";
  ignore (Checkpoint.take mgr pool);
  trace_phase "done";
  {
    rp_redo_lsn = an.an_redo_lsn;
    rp_records_analyzed = an.an_records;
    rp_records_redo_scanned = scanned;
    rp_redos_applied = applied;
    rp_redos_skipped = skipped;
    rp_redo_traversals = redo_traversals;
    rp_undo_records = undo_records;
    rp_losers = losers;
    rp_indoubt = indoubt;
    rp_locks_reacquired = locks_reacquired;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>redo point        %a@,analyzed          %d records@,redo scanned      %d records@,redos applied     %d@,redos skipped     %d@,undo processed    %d records@,losers            %s@,in-doubt          %s@,locks reacquired  %d@]"
    Lsn.pp r.rp_redo_lsn r.rp_records_analyzed r.rp_records_redo_scanned r.rp_redos_applied
    r.rp_redos_skipped r.rp_undo_records
    (String.concat "," (List.map string_of_int r.rp_losers))
    (String.concat "," (List.map string_of_int r.rp_indoubt))
    r.rp_locks_reacquired
