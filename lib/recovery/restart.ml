open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Lockmgr = Aries_lock.Lockmgr
module Txnmgr = Aries_txn.Txnmgr
module Lockcodec = Aries_txn.Lockcodec
module Bufpool = Aries_buffer.Bufpool
module Disk = Aries_page.Disk
module Trace = Aries_trace.Trace

type report = {
  rp_redo_lsn : Lsn.t;
  rp_records_analyzed : int;
  rp_records_redo_scanned : int;
  rp_redos_applied : int;
  rp_redos_skipped : int;
  rp_redo_traversals : int;
  rp_undo_records : int;
  rp_losers : Ids.txn_id list;
  rp_indoubt : Ids.txn_id list;
  rp_locks_reacquired : int;
}

type txn_track = {
  mutable tk_state : Txnmgr.state;
  mutable tk_first : Lsn.t;  (** oldest LSN the txn wrote (bounds truncation) *)
  mutable tk_last : Lsn.t;
  mutable tk_undo_nxt : Lsn.t;
  mutable tk_prepare_body : bytes option;
  mutable tk_ended : bool;  (** saw Commit or End: not a loser *)
}

let fresh_track () =
  {
    tk_state = Txnmgr.Active;
    tk_first = Lsn.nil;
    tk_last = Lsn.nil;
    tk_undo_nxt = Lsn.nil;
    tk_prepare_body = None;
    tk_ended = false;
  }

(* ---------- Analysis pass ---------- *)

type analysis = {
  an_redo_lsn : Lsn.t;
  an_dpt : (Ids.page_id, Lsn.t) Hashtbl.t;
  an_txns : (Ids.txn_id, txn_track) Hashtbl.t;
  an_records : int;
}

let analysis wal =
  let start = Logmgr.master wal in
  let dpt : (Ids.page_id, Lsn.t) Hashtbl.t = Hashtbl.create 64 in
  let txns : (Ids.txn_id, txn_track) Hashtbl.t = Hashtbl.create 32 in
  let records = ref 0 in
  let track id =
    match Hashtbl.find_opt txns id with
    | Some tk -> tk
    | None ->
        let tk = fresh_track () in
        Hashtbl.replace txns id tk;
        tk
  in
  Logmgr.iter_from wal start (fun r ->
      incr records;
      let lsn = r.Logrec.lsn in
      (if r.Logrec.txn <> Ids.nil_txn then begin
         let tk = track r.Logrec.txn in
         if Lsn.is_nil tk.tk_first then tk.tk_first <- lsn;
         tk.tk_last <- lsn;
         match r.Logrec.kind with
         | Logrec.Update -> if r.Logrec.undoable then tk.tk_undo_nxt <- lsn
         | Logrec.Clr -> tk.tk_undo_nxt <- r.Logrec.undo_nxt_lsn
         | Logrec.Prepare ->
             tk.tk_state <- Txnmgr.Prepared;
             tk.tk_prepare_body <- Some r.Logrec.body
         | Logrec.Rollback -> tk.tk_state <- Txnmgr.Rolling_back
         | Logrec.Commit | Logrec.End_txn -> tk.tk_ended <- true
         | Logrec.Begin_ckpt | Logrec.End_ckpt -> ()
       end);
      (match r.Logrec.kind with
      | Logrec.End_ckpt ->
          (* merge checkpointed state: scan-derived knowledge wins *)
          let body = Checkpoint.decode_body r.Logrec.body in
          List.iter
            (fun (id, state, first_lsn, last_lsn, undo_nxt) ->
              match Hashtbl.find_opt txns id with
              | None ->
                  let tk = fresh_track () in
                  tk.tk_state <- state;
                  tk.tk_first <- first_lsn;
                  tk.tk_last <- last_lsn;
                  tk.tk_undo_nxt <- undo_nxt;
                  (* a checkpointed Committing txn had appended its Commit
                     record before End_ckpt was written; that record is
                     stable whenever this checkpoint anchors restart, so
                     the txn is committed even though the scan (starting
                     at the master) never saw the Commit record itself *)
                  if state = Txnmgr.Committing then tk.tk_ended <- true;
                  Hashtbl.replace txns id tk
              | Some tk ->
                  (* scan-derived knowledge wins for everything except the
                     first LSN: the checkpoint can know about records from
                     before the analysis window *)
                  if
                    (not (Lsn.is_nil first_lsn))
                    && (Lsn.is_nil tk.tk_first || Lsn.( < ) first_lsn tk.tk_first)
                  then tk.tk_first <- first_lsn;
                  if state = Txnmgr.Committing then tk.tk_ended <- true)
            body.Checkpoint.ck_txns;
          List.iter
            (fun (pid, rec_lsn) ->
              (* the checkpointed recLSN can predate anything the scan saw;
                 keep the minimum so redo starts early enough *)
              match Hashtbl.find_opt dpt pid with
              | Some seen -> Hashtbl.replace dpt pid (Lsn.min seen rec_lsn)
              | None -> Hashtbl.replace dpt pid rec_lsn)
            body.Checkpoint.ck_dpt
      | Logrec.Update | Logrec.Clr ->
          if r.Logrec.page <> Ids.nil_page && not (Hashtbl.mem dpt r.Logrec.page) then
            Hashtbl.replace dpt r.Logrec.page lsn
      | Logrec.Commit | Logrec.Prepare | Logrec.Rollback | Logrec.End_txn | Logrec.Begin_ckpt ->
          ()));
  let redo_lsn =
    Hashtbl.fold (fun _ rec_lsn acc -> Lsn.min rec_lsn acc) dpt (Logmgr.end_offset wal)
  in
  { an_redo_lsn = redo_lsn; an_dpt = dpt; an_txns = txns; an_records = !records }

(* ---------- Redo pass: repeat history, page-oriented ---------- *)

let redo mgr pool an =
  let wal = Txnmgr.log mgr in
  let scanned = ref 0 and applied = ref 0 and skipped = ref 0 in
  Logmgr.iter_from wal an.an_redo_lsn (fun r ->
      incr scanned;
      let page = r.Logrec.page in
      let redoable =
        match r.Logrec.kind with
        | Logrec.Update -> r.Logrec.redoable
        | Logrec.Clr -> r.Logrec.rm_id <> 0  (* dummy CLRs carry no change *)
        | Logrec.Commit | Logrec.Prepare | Logrec.Rollback | Logrec.End_txn
        | Logrec.Begin_ckpt | Logrec.End_ckpt ->
            false
      in
      if redoable && page <> Ids.nil_page then begin
        Disk.note_pid (Bufpool.disk pool) page;
        match Hashtbl.find_opt an.an_dpt page with
        | Some rec_lsn when Lsn.( >= ) r.Logrec.lsn rec_lsn -> begin
            Stats.incr Stats.redo_pages_examined;
            match Bufpool.fix_opt pool page with
            | Some p ->
                if Lsn.( < ) p.Aries_page.Page.page_lsn r.Logrec.lsn then begin
                  Txnmgr.rm_redo mgr r;
                  Stats.incr Stats.redos_applied;
                  incr applied
                end
                else incr skipped;
                Bufpool.unfix pool p
            | None ->
                (* page never reached disk: the record must recreate it
                   (format-type opcodes do; the RM asserts) *)
                Txnmgr.rm_redo mgr r;
                Stats.incr Stats.redos_applied;
                incr applied
          end
        | Some _ | None -> incr skipped
      end);
  (!scanned, !applied, !skipped)

(* ---------- Undo pass: single reverse sweep over all losers ---------- *)

let undo mgr an =
  let wal = Txnmgr.log mgr in
  let processed = ref 0 in
  (* restore losers into the live transaction table *)
  let losers = ref [] in
  Hashtbl.iter
    (fun id tk ->
      if (not tk.tk_ended) && tk.tk_state <> Txnmgr.Prepared then begin
        let txn =
          Txnmgr.restore_txn mgr ~first_lsn:tk.tk_first ~id ~state:Txnmgr.Rolling_back
            ~last_lsn:tk.tk_last ~undo_nxt:tk.tk_undo_nxt ()
        in
        Lockmgr.set_no_victim (Txnmgr.locks mgr) id;
        losers := txn :: !losers
      end)
    an.an_txns;
  let losers_sorted = List.sort (fun a b -> compare a.Txnmgr.txn_id b.Txnmgr.txn_id) !losers in
  let live = ref (List.filter (fun t -> not (Lsn.is_nil t.Txnmgr.undo_nxt)) losers_sorted) in
  (* losers with nothing to undo still need an End record *)
  List.iter
    (fun t -> if Lsn.is_nil t.Txnmgr.undo_nxt then Txnmgr.finish mgr t)
    losers_sorted;
  while !live <> [] do
    let victim =
      List.fold_left
        (fun best t -> if Lsn.( < ) best.Txnmgr.undo_nxt t.Txnmgr.undo_nxt then t else best)
        (List.hd !live) (List.tl !live)
    in
    let r = Logmgr.read wal victim.Txnmgr.undo_nxt in
    incr processed;
    (match r.Logrec.kind with
    | Logrec.Update ->
        if r.Logrec.undoable then Txnmgr.rm_undo mgr victim r
        else victim.Txnmgr.undo_nxt <- r.Logrec.prev_lsn
    | Logrec.Clr -> victim.Txnmgr.undo_nxt <- r.Logrec.undo_nxt_lsn
    | Logrec.Commit | Logrec.Prepare | Logrec.Rollback | Logrec.End_txn | Logrec.Begin_ckpt
    | Logrec.End_ckpt ->
        victim.Txnmgr.undo_nxt <- r.Logrec.prev_lsn);
    if Lsn.is_nil victim.Txnmgr.undo_nxt then begin
      Txnmgr.finish mgr victim;
      live := List.filter (fun t -> t != victim) !live
    end
  done;
  (!processed, List.map (fun t -> t.Txnmgr.txn_id) losers_sorted)

(* ---------- In-doubt transactions: reacquire locks ---------- *)

let reacquire_indoubt mgr an =
  let locks = Txnmgr.locks mgr in
  let count = ref 0 in
  let indoubt = ref [] in
  Hashtbl.iter
    (fun id tk ->
      if (not tk.tk_ended) && tk.tk_state = Txnmgr.Prepared then begin
        ignore
          (Txnmgr.restore_txn mgr ~first_lsn:tk.tk_first ~id ~state:Txnmgr.Prepared
             ~last_lsn:tk.tk_last ~undo_nxt:tk.tk_undo_nxt ());
        indoubt := id :: !indoubt;
        (* if the txn prepared before the analysis window, fetch the
           Prepare record through the prev-LSN chain *)
        let body =
          match tk.tk_prepare_body with
          | Some b -> Some b
          | None ->
              let wal = Txnmgr.log mgr in
              let rec walk lsn =
                if Lsn.is_nil lsn then None
                else
                  let r = Logmgr.read wal lsn in
                  match r.Logrec.kind with
                  | Logrec.Prepare -> Some r.Logrec.body
                  | Logrec.Update | Logrec.Clr | Logrec.Commit | Logrec.Rollback
                  | Logrec.End_txn | Logrec.Begin_ckpt | Logrec.End_ckpt ->
                      walk r.Logrec.prev_lsn
              in
              walk tk.tk_last
        in
        match body with
        | None -> ()
        | Some body ->
            List.iter
              (fun (name, mode) ->
                match Lockmgr.lock locks ~txn:id name mode Lockmgr.Commit with
                | Lockmgr.Granted -> incr count
                | Lockmgr.Denied | Lockmgr.Deadlock ->
                    (* restart is single-threaded: always grantable *)
                    assert false)
              (Lockcodec.decode_list body)
      end)
    an.an_txns;
  (!count, List.sort compare !indoubt)

let trace_phase phase =
  if Trace.enabled () then Trace.emit (Trace.Restart_phase { phase })

let run mgr pool =
  let wal = Txnmgr.log mgr in
  trace_phase "analysis";
  let an = analysis wal in
  (* keep txn ids monotonic across the crash *)
  Hashtbl.iter (fun id _ -> Txnmgr.note_txn_id mgr id) an.an_txns;
  trace_phase "reacquire-locks";
  let locks_reacquired, indoubt = reacquire_indoubt mgr an in
  let traversals_before = Stats.get (Stats.current ()) Stats.tree_traversals in
  trace_phase "redo";
  let scanned, applied, skipped = redo mgr pool an in
  let redo_traversals =
    Stats.get (Stats.current ()) Stats.tree_traversals - traversals_before
  in
  trace_phase "undo";
  let undo_records, losers = undo mgr an in
  trace_phase "checkpoint";
  ignore (Checkpoint.take mgr pool);
  trace_phase "done";
  {
    rp_redo_lsn = an.an_redo_lsn;
    rp_records_analyzed = an.an_records;
    rp_records_redo_scanned = scanned;
    rp_redos_applied = applied;
    rp_redos_skipped = skipped;
    rp_redo_traversals = redo_traversals;
    rp_undo_records = undo_records;
    rp_losers = losers;
    rp_indoubt = indoubt;
    rp_locks_reacquired = locks_reacquired;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>redo point        %a@,analyzed          %d records@,redo scanned      %d records@,redos applied     %d@,redos skipped     %d@,undo processed    %d records@,losers            %s@,in-doubt          %s@,locks reacquired  %d@]"
    Lsn.pp r.rp_redo_lsn r.rp_records_analyzed r.rp_records_redo_scanned r.rp_redos_applied
    r.rp_redos_skipped r.rp_undo_records
    (String.concat "," (List.map string_of_int r.rp_losers))
    (String.concat "," (List.map string_of_int r.rp_indoubt))
    r.rp_locks_reacquired
