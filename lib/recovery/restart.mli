(** Restart recovery: the three ARIES passes.

    {b Analysis} scans from the last complete checkpoint to the end of the
    (stable) log, rebuilding the transaction table and dirty-page table and
    computing the redo point.

    {b Redo} repeats history: every redoable update (including CLRs and the
    updates of loser transactions) whose page might be stale is reapplied,
    strictly page-oriented — the page named in the record is fixed and the
    LSN test decides; no index is ever traversed (experiment Q3 counts
    this).

    {b Undo} rolls back all loser transactions in a single reverse sweep of
    the log, taking the record with the highest undo-next LSN across losers
    at each step. Resource-manager undo may be page-oriented or logical —
    that policy lives in the resource manager (the heart of ARIES/IM, §3);
    the pass itself only drives the sweep. Prepared (in-doubt) transactions
    are not rolled back: their locks are reacquired from the Prepare record
    body and they remain in the table awaiting the commit coordinator.

    Repeating history makes the whole procedure idempotent: a crash during
    any pass simply causes the next restart to do the remaining work. *)

open Aries_util
module Lsn = Aries_wal.Lsn

type report = {
  rp_redo_lsn : Lsn.t;  (** where the redo scan started *)
  rp_records_analyzed : int;
  rp_records_redo_scanned : int;
  rp_redos_applied : int;
  rp_redos_skipped : int;  (** LSN test said the page was already current *)
  rp_redo_traversals : int;
      (** index traversals performed during the redo pass — always 0: redo is
          strictly page-oriented (experiment Q3 reports this) *)
  rp_undo_records : int;  (** loser records processed by the undo sweep *)
  rp_losers : Ids.txn_id list;
  rp_indoubt : Ids.txn_id list;
  rp_locks_reacquired : int;
}

val run : Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> report
(** Run all three passes. The transaction manager must be freshly cleared
    (post-crash); resource managers must already be registered. Finishes
    with a checkpoint so the next restart is cheap. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Instant restart}

    The resumable, incremental engine: after Analysis the Db opens for new
    transactions immediately. The analysis DPT becomes a {e needs-redo}
    set — fixing a pending page triggers single-page redo on demand, a
    background daemon drains the rest, and loser undo is lock-driven: a
    new transaction requesting a name held by a restored loser preempts
    exactly that loser's undo. Crashing while the drain is still running
    is just another crash — the next restart (instant or classic) repeats
    the remaining work. *)

type engine

type drain_cfg = {
  dr_every_steps : int;  (** scheduler steps between background rounds *)
  dr_redo_pages : int;  (** pending pages redone per round *)
  dr_undo_txns : int;  (** losers fully undone per round *)
}

val default_drain : drain_cfg

val start :
  ?archive:Media.Archive.t -> Aries_txn.Txnmgr.t -> Aries_buffer.Bufpool.t -> engine
(** Analysis, lock reacquisition (in-doubt txns from their Prepare bodies;
    losers from the checkpointed lock lists unioned with locks re-derived
    from the scanned records), restoration of losers as deadlock-immune
    [Rolling_back] txns, and eager compensation of each loser's lock-free
    chain suffix (half-open nested top actions). Installs the Bufpool
    on-demand-redo hook and the Txnmgr preemption hook, then returns: the
    Db is open. Redo and undo happen afterwards — on demand, or through
    {!drain_step}/{!run_daemon}. Pass [archive] so per-page redo can reach
    history older than the live log's truncation point. *)

val redo_page : ?on_demand:bool -> engine -> Ids.page_id -> unit
(** Repeat the page's history (no-op if the page is not pending). *)

val undo_loser : ?preempted:bool -> engine -> Ids.txn_id -> unit
(** Roll the loser all the way back and finish it (no-op if already done;
    waits out an undo already in flight on another fiber). *)

val drain_step : ?cfg:drain_cfg -> engine -> unit
(** One background round: redo up to [dr_redo_pages] pending pages, undo
    up to [dr_undo_txns] losers; {!finish}es the engine when nothing
    remains. *)

val drain : engine -> unit
(** Drive rounds until the engine is finished (or a crash trips). *)

val run_daemon : ?cfg:drain_cfg -> engine -> stop:(unit -> bool) -> unit
(** Daemon loop: a {!drain_step} every [dr_every_steps] scheduler steps.
    On clean shutdown ([stop] or scheduler shutdown) with the drain still
    incomplete, drains fully first — the post-run state must be quiesced.
    Exits immediately once a crash has tripped. *)

val finish : engine -> unit
(** Uninstall both hooks and take the post-recovery checkpoint.
    Idempotent; called automatically when the drain completes. *)

val finished : engine -> bool

val pending_redo : engine -> Ids.page_id list
(** Pages still awaiting redo, sorted. *)

val losers_remaining : engine -> Ids.txn_id list
(** Losers still awaiting undo, sorted. *)

val report : engine -> report
(** Aggregated counters — monotone across on-demand redos, background
    drain rounds and preempted undos; never reset per pass. *)
