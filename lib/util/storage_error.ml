(* Typed storage failures.  Everything the storage fault layer can detect
   or give up on surfaces as [Error] — never a bare [Bytebuf.Corrupt] or
   [Not_found] escaping from a deserialize path.  The payload carries the
   offending page id / LSN when known, so a SIM-REPRO reproducer (and a
   human) can see *where* the medium went bad, not just that it did. *)

type cause =
  | Checksum  (** a stored CRC did not verify: torn write or bit-rot *)
  | Decode  (** structurally unparseable image / record / container *)
  | Io_transient  (** injected transient EIO (retryable) *)
  | Retry_exhausted  (** bounded retry gave up on a transient fault *)

type info = { cause : cause; pid : int option; lsn : int option; detail : string }

exception Error of info

let cause_name = function
  | Checksum -> "checksum"
  | Decode -> "decode"
  | Io_transient -> "transient-eio"
  | Retry_exhausted -> "retry-exhausted"

let to_string { cause; pid; lsn; detail } =
  let b = Buffer.create 64 in
  Buffer.add_string b "Storage_error(";
  Buffer.add_string b (cause_name cause);
  (match pid with Some p -> Buffer.add_string b (Printf.sprintf " pid=%d" p) | None -> ());
  (match lsn with Some l -> Buffer.add_string b (Printf.sprintf " lsn=%d" l) | None -> ());
  if detail <> "" then Buffer.add_string b (": " ^ detail);
  Buffer.add_string b ")";
  Buffer.contents b

let raise_err ?pid ?lsn cause fmt =
  Printf.ksprintf (fun detail -> raise (Error { cause; pid; lsn; detail })) fmt

(* Re-type a [Bytebuf.Corrupt] (or similar) caught while decoding stored
   state: same message, but now carrying cause + location. *)
let of_corrupt ?pid ?lsn detail = Error { cause = Decode; pid; lsn; detail }

let () =
  Printexc.register_printer (function Error i -> Some (to_string i) | _ -> None)
