exception Corrupt of string

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 128

  let length = Buffer.length

  let u8 t v =
    assert (v >= 0 && v < 0x100);
    Buffer.add_uint8 t v

  let u16 t v =
    assert (v >= 0 && v < 0x10000);
    Buffer.add_uint16_le t v

  let u32 t v =
    assert (v >= 0 && v <= 0xFFFFFFFF);
    Buffer.add_int32_le t (Int32.of_int (v land 0xFFFFFFFF))

  let i64 t v = Buffer.add_int64_le t (Int64.of_int v)

  let bool t v = u8 t (if v then 1 else 0)

  let string t s =
    u32 t (String.length s);
    Buffer.add_string t s

  let bytes t b = string t (Bytes.unsafe_to_string b)

  let list t f xs =
    u32 t (List.length xs);
    List.iter (fun x -> f t x) xs

  let contents t = Buffer.to_bytes t
end

module R = struct
  type t = {
    src : string;
    mutable pos : int;
  }

  let of_string src = { src; pos = 0 }

  let of_bytes b = of_string (Bytes.unsafe_to_string b)

  let pos t = t.pos

  let remaining t = String.length t.src - t.pos

  let need t n =
    if remaining t < n then
      raise (Corrupt (Printf.sprintf "truncated input: need %d bytes at offset %d, have %d" n t.pos (remaining t)))

  let u8 t =
    need t 1;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = String.get_uint16_le t.src t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (String.get_int32_le t.src t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let i64 t =
    need t 8;
    let v = Int64.to_int (String.get_int64_le t.src t.pos) in
    t.pos <- t.pos + 8;
    v

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | n -> raise (Corrupt (Printf.sprintf "invalid bool byte %d" n))

  let string t =
    let n = u32 t in
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes t = Bytes.unsafe_of_string (string t)

  let list t f =
    let n = u32 t in
    List.init n (fun _ -> f t)

  let expect_end t =
    if remaining t <> 0 then
      raise (Corrupt (Printf.sprintf "%d trailing bytes at offset %d" (remaining t) t.pos))
end
