exception Corrupt of string

(* The writer is a reset-in-place arena over a growable [bytes] (not a
   [Buffer.t]): hot encoders — log-record append, page-image encode — keep
   one writer alive and [reset] it per record instead of allocating a fresh
   buffer each time, and readers of long-lived writers (the WAL's segment
   store) get zero-copy access to the backing bytes instead of going
   through [Buffer.sub]. *)
module W = struct
  type t = {
    mutable buf : bytes;
    mutable len : int;
  }

  let create ?(size = 128) () = { buf = Bytes.create (max 16 size); len = 0 }

  let length t = t.len

  let capacity t = Bytes.length t.buf

  let reset t = t.len <- 0

  let truncate t n =
    if n < 0 || n > t.len then invalid_arg "Bytebuf.W.truncate: out of range";
    t.len <- n

  let ensure t n =
    let need = t.len + n in
    if need > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while !cap < need do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.buf 0 nb 0 t.len;
      t.buf <- nb
    end

  let u8 t v =
    assert (v >= 0 && v < 0x100);
    ensure t 1;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr v);
    t.len <- t.len + 1

  let u16 t v =
    assert (v >= 0 && v < 0x10000);
    ensure t 2;
    Bytes.set_uint16_le t.buf t.len v;
    t.len <- t.len + 2

  let u32 t v =
    assert (v >= 0 && v <= 0xFFFFFFFF);
    ensure t 4;
    Bytes.set_int32_le t.buf t.len (Int32.of_int (v land 0xFFFFFFFF));
    t.len <- t.len + 4

  let i64 t v =
    ensure t 8;
    Bytes.set_int64_le t.buf t.len (Int64.of_int v);
    t.len <- t.len + 8

  let bool t v = u8 t (if v then 1 else 0)

  let raw_string t s =
    let n = String.length s in
    ensure t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let string t s =
    u32 t (String.length s);
    raw_string t s

  let bytes t b = string t (Bytes.unsafe_to_string b)

  let list t f xs =
    u32 t (List.length xs);
    List.iter (fun x -> f t x) xs

  let contents t = Bytes.sub t.buf 0 t.len

  (* Zero-copy view of the arena: bytes [0, length) are the written
     contents. Valid only until the next write/reset — callers must not
     retain it, and must not mutate through it. *)
  let unsafe_view t = Bytes.unsafe_to_string t.buf

  let sub_string t off len =
    if off < 0 || len < 0 || off + len > t.len then
      invalid_arg "Bytebuf.W.sub_string: out of range";
    Bytes.sub_string t.buf off len

  let get_u32 t off =
    if off < 0 || off + 4 > t.len then invalid_arg "Bytebuf.W.get_u32: out of range";
    Int32.to_int (Bytes.get_int32_le t.buf off) land 0xFFFFFFFF

  let crc ?(off = 0) ?len t =
    let len = match len with Some l -> l | None -> t.len - off in
    if off < 0 || len < 0 || off + len > t.len then invalid_arg "Bytebuf.W.crc: out of range";
    Crc.bytes ~off ~len t.buf

  (* Append [src]'s contents to [dst] and return their CRC32, computed over
     the freshly written region — the frame-append path's single-pass
     copy+checksum (no intermediate payload bytes are materialized). *)
  let append_with_crc dst src =
    let n = src.len in
    ensure dst n;
    Bytes.blit src.buf 0 dst.buf dst.len n;
    let off = dst.len in
    dst.len <- dst.len + n;
    Crc.bytes ~off ~len:n dst.buf
end

module R = struct
  type t = {
    src : string;
    mutable pos : int;
    lim : int;  (* exclusive end of the readable slice *)
  }

  let of_string src = { src; pos = 0; lim = String.length src }

  let of_bytes b = of_string (Bytes.unsafe_to_string b)

  (* A reader over a slice of [src] without copying it out first — the
     zero-copy read path: log-record payloads decode straight out of the
     segment arena, page bodies straight out of the stored image. *)
  let of_substring src ~off ~len =
    if off < 0 || len < 0 || off + len > String.length src then
      invalid_arg "Bytebuf.R.of_substring: slice out of range";
    { src; pos = off; lim = off + len }

  let pos t = t.pos

  let remaining t = t.lim - t.pos

  let need t n =
    if remaining t < n then
      raise (Corrupt (Printf.sprintf "truncated input: need %d bytes at offset %d, have %d" n t.pos (remaining t)))

  let u8 t =
    need t 1;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = String.get_uint16_le t.src t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (String.get_int32_le t.src t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let i64 t =
    need t 8;
    let v = Int64.to_int (String.get_int64_le t.src t.pos) in
    t.pos <- t.pos + 8;
    v

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | n -> raise (Corrupt (Printf.sprintf "invalid bool byte %d" n))

  let string t =
    let n = u32 t in
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes t = Bytes.unsafe_of_string (string t)

  let list t f =
    let n = u32 t in
    List.init n (fun _ -> f t)

  let expect_end t =
    if remaining t <> 0 then
      raise (Corrupt (Printf.sprintf "%d trailing bytes at offset %d" (remaining t) t.pos))
end
