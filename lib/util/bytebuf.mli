(** Binary encoding helpers shared by the log-record and page codecs.

    All integers are little-endian fixed width; strings are u32
    length-prefixed. The reader raises [Corrupt] (rather than
    [Invalid_argument]) on truncated input so that callers can distinguish
    codec bugs from genuinely damaged media in media-recovery tests. *)

exception Corrupt of string

module W : sig
  type t

  val create : unit -> t

  val length : t -> int

  val u8 : t -> int -> unit

  val u16 : t -> int -> unit

  val u32 : t -> int -> unit

  val i64 : t -> int -> unit
  (** OCaml [int] stored as 64-bit. *)

  val bool : t -> bool -> unit

  val string : t -> string -> unit

  val bytes : t -> bytes -> unit

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** u32 count followed by each element written with the given encoder —
      the one length-prefixed list framing, shared by the checkpoint body
      and reacquired-lock codecs (previously hand-rolled in both). *)

  val contents : t -> bytes
end

module R : sig
  type t

  val of_bytes : bytes -> t

  val of_string : string -> t

  val pos : t -> int

  val remaining : t -> int

  val u8 : t -> int

  val u16 : t -> int

  val u32 : t -> int

  val i64 : t -> int

  val bool : t -> bool

  val string : t -> string

  val bytes : t -> bytes

  val list : t -> (t -> 'a) -> 'a list
  (** Inverse of {!W.list}: u32 count, then that many elements decoded in
      order. Raises {!Corrupt} (via the element decoder / [need]) on
      truncation. *)

  val expect_end : t -> unit
  (** Raises [Corrupt] if input remains. *)
end
