(** Binary encoding helpers shared by the log-record and page codecs.

    All integers are little-endian fixed width; strings are u32
    length-prefixed. The reader raises [Corrupt] (rather than
    [Invalid_argument]) on truncated input so that callers can distinguish
    codec bugs from genuinely damaged media in media-recovery tests.

    The writer is a reset-in-place arena over a growable [bytes]: hot
    encoders keep one writer alive and {!W.reset} it per record instead of
    allocating a fresh buffer each time, size-hint it from the caller
    ({!W.create}[ ~size]) to avoid growth-doubling copies, and expose the
    backing bytes zero-copy ({!W.unsafe_view}, {!W.crc},
    {!W.append_with_crc}) so checksums and frame appends never materialize
    an intermediate copy. *)

exception Corrupt of string

module W : sig
  type t

  val create : ?size:int -> unit -> t
  (** [size] is the initial arena capacity (default 128). Callers that
      know the output size — a page image of [psize] bytes, a log record
      of roughly [body + header] bytes — should pass it: a right-sized
      arena never pays the grow-and-copy doubling steps. *)

  val length : t -> int

  val capacity : t -> int
  (** Current arena capacity in bytes ([length <= capacity]); stable
      across {!reset}, grows only when a write outruns it. The WAL uses it
      to count encode-arena reuses vs regrowths. *)

  val reset : t -> unit
  (** Forget the contents, keep the arena — the reuse path. *)

  val truncate : t -> int -> unit
  (** Cut the contents back to the first [n] bytes in place (the WAL tail
      scan's torn-suffix cut). Raises [Invalid_argument] out of range. *)

  val u8 : t -> int -> unit

  val u16 : t -> int -> unit

  val u32 : t -> int -> unit

  val i64 : t -> int -> unit
  (** OCaml [int] stored as 64-bit. *)

  val bool : t -> bool -> unit

  val string : t -> string -> unit

  val raw_string : t -> string -> unit
  (** Append the bytes of [s] with no length prefix (segment storage,
      pre-framed data). *)

  val bytes : t -> bytes -> unit

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** u32 count followed by each element written with the given encoder —
      the one length-prefixed list framing, shared by the checkpoint body
      and reacquired-lock codecs (previously hand-rolled in both). *)

  val contents : t -> bytes
  (** A fresh copy of the written bytes. *)

  val unsafe_view : t -> string
  (** Zero-copy view of the backing arena; bytes [0, {!length}) are the
      written contents (anything beyond is garbage). Valid only until the
      next write/reset — do not retain, do not mutate. *)

  val sub_string : t -> int -> int -> string
  (** [sub_string t off len] copies a slice of the contents out. *)

  val get_u32 : t -> int -> int
  (** Little-endian u32 read at a byte offset within the contents. *)

  val crc : ?off:int -> ?len:int -> t -> int
  (** CRC32 of a slice of the contents, computed in place over the arena —
      no copy (defaults: everything written). *)

  val append_with_crc : t -> t -> int
  (** [append_with_crc dst src] appends [src]'s contents to [dst] and
      returns their CRC32, computed over the freshly written region — the
      frame-append path's copy+checksum with no intermediate buffer. *)
end

module R : sig
  type t

  val of_bytes : bytes -> t

  val of_string : string -> t

  val of_substring : string -> off:int -> len:int -> t
  (** A reader confined to [len] bytes of [src] starting at [off], without
      copying the slice out first — the zero-copy read path ([String.sub]
      on every hot-path decode was measurable). {!pos} reports absolute
      offsets into [src]; [expect_end] checks against the slice limit. *)

  val pos : t -> int

  val remaining : t -> int

  val u8 : t -> int

  val u16 : t -> int

  val u32 : t -> int

  val i64 : t -> int

  val bool : t -> bool

  val string : t -> string

  val bytes : t -> bytes

  val list : t -> (t -> 'a) -> 'a list
  (** Inverse of {!W.list}: u32 count, then that many elements decoded in
      order. Raises {!Corrupt} (via the element decoder / [need]) on
      truncation. *)

  val expect_end : t -> unit
  (** Raises [Corrupt] if input remains. *)
end
