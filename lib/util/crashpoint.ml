exception Crash of int

type state = {
  mutable counter : int;
  mutable trip_at : int option;
  mutable trip_label : string option;
  mutable is_tripped : bool;
}

let st = { counter = 0; trip_at = None; trip_label = None; is_tripped = false }

let faults : (string, unit) Hashtbl.t = Hashtbl.create 4

let reset () =
  st.counter <- 0;
  st.trip_at <- None;
  st.trip_label <- None;
  st.is_tripped <- false

let arm ~at =
  if at <= 0 then invalid_arg "Crashpoint.arm: crash index must be positive";
  st.trip_at <- Some at

let arm_label label = st.trip_label <- Some label

let disarm () =
  st.trip_at <- None;
  st.trip_label <- None;
  st.is_tripped <- false

let hit label =
  st.counter <- st.counter + 1;
  Stats.incr ("crashpoint." ^ label);
  if st.is_tripped then raise (Crash st.counter)
  else begin
    (match st.trip_label with
    | Some l when String.equal l label ->
        st.is_tripped <- true;
        raise (Crash st.counter)
    | Some _ | None -> ());
    match st.trip_at with
    | Some at when st.counter >= at ->
        st.is_tripped <- true;
        raise (Crash st.counter)
    | Some _ | None -> ()
  end

let count () = st.counter

let tripped () = st.is_tripped

let enable_fault name = Hashtbl.replace faults name ()

let disable_fault name = Hashtbl.remove faults name

let fault_active name = Hashtbl.mem faults name

let clear_faults () = Hashtbl.reset faults

let fault_wal_skip_flush = "wal.skip-flush"

let fault_lock_uncond_under_latch = "lock.uncond-under-latch"

let fault_commit_early_ack = "commit.early-ack"

let fault_ckpt_premature_truncate = "ckpt.premature-truncate"

let fault_disk_torn_write = "disk.torn-write"

let fault_disk_bit_flip = "disk.bit-flip"

let fault_disk_transient_eio = "disk.transient-eio"

let fault_log_torn_append = "log.torn-append"

let fault_crc_check_disabled = "crc.check-disabled"

let fault_instant_skip_redo = "instant.skip-redo"

let fault_wal_stream_shuffle = "wal.stream-shuffle"

let fault_wal_stream_fence_skip = "wal.stream-fence-skip"

let fault_mvcc_reader_key_lock = "mvcc.reader-key-lock"

let fault_twopc_early_decide = "2pc.early-decide"

let fault_shard_down = "shard.down"

let shard_down_fault k = Printf.sprintf "%s.%d" fault_shard_down k
