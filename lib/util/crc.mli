(** CRC32 (IEEE 802.3 reflected, poly [0xEDB88320]).  Guards page images,
    log-record frames and sealed-segment footers against torn writes and
    bit-rot.  Values are in [0, 0xFFFFFFFF].

    The engine is slice-by-16 (sixteen bytes per loop iteration through
    sixteen derived tables, all precomputed at module init); {!update_bytewise} is
    the classic one-table loop, kept as the differential-testing reference
    and benchmark baseline.  Both compute the identical IEEE value. *)

val string : ?off:int -> ?len:int -> string -> int
(** CRC of [len] bytes of [s] starting at [off] (defaults: whole string). *)

val bytes : ?off:int -> ?len:int -> bytes -> int
(** Same over [bytes]. *)

val update : int -> string -> int -> int -> int
(** [update crc s off len] extends a running CRC — [string s = update 0 s 0 n],
    and [update (update c a 0 la) b 0 lb = update c (a ^ b) 0 (la + lb)].
    This is the incremental path: CRC a dirty slice and fold it into the
    checksum of what came before. *)

val update_bytewise : int -> string -> int -> int -> int
(** The pre-pass byte-at-a-time loop.  Same value as {!update};
    exists for differential tests and as the `bench -- q16` baseline. *)

val combine : int -> int -> int -> int
(** [combine ca cb len_b] is the CRC of [a ^ b] given [ca = crc a],
    [cb = crc b] and [len_b = String.length b] (zlib's crc32_combine:
    O(log len_b) GF(2) matrix exponentiation).  Lets a cached CRC of an
    unchanged prefix absorb a re-CRC of only the changed suffix. *)
