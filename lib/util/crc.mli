(** CRC32 (IEEE 802.3 reflected, poly [0xEDB88320]).  Guards page images,
    log-record frames and sealed-segment footers against torn writes and
    bit-rot.  Values are in [0, 0xFFFFFFFF]. *)

val string : ?off:int -> ?len:int -> string -> int
(** CRC of [len] bytes of [s] starting at [off] (defaults: whole string). *)

val bytes : ?off:int -> ?len:int -> bytes -> int
(** Same over [bytes]. *)

val update : int -> string -> int -> int -> int
(** [update crc s off len] extends a running CRC — [string s = update 0 s 0 n]. *)
