type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let reset t = Hashtbl.reset t

let copy t =
  let c = create () in
  Hashtbl.iter (fun k v -> Hashtbl.replace c k (ref !v)) t;
  c

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let diff later earlier =
  let d = create () in
  let keys = Hashtbl.create 64 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) later;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) earlier;
  Hashtbl.iter
    (fun k () ->
      let v = get later k - get earlier k in
      if v <> 0 then Hashtbl.replace d k (ref v))
    keys;
  d

let sink = ref (create ())

let current () = !sink

let with_sink t f =
  let prev = !sink in
  sink := t;
  Fun.protect ~finally:(fun () -> sink := prev) f

let add name n =
  let t = !sink in
  match Hashtbl.find_opt t name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t name (ref n)

let incr name = add name 1

let to_alist t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%-28s %d@," k v) (to_alist t);
  Format.fprintf ppf "@]"

let lock_requests = "lock.requests"
let lock_waits = "lock.waits"
let lock_deadlocks = "lock.deadlocks"
let latch_acquires = "latch.acquires"
let latch_waits = "latch.waits"
let tree_latch_acquires = "tree_latch.acquires"
let tree_latch_waits = "tree_latch.waits"
let log_records = "log.records"
let log_bytes = "log.bytes"
let log_forces = "log.forces"
let page_reads = "page.reads"
let page_writes = "page.writes"
let page_fixes = "page.fixes"
let tree_traversals = "tree.traversals"
let logical_undos = "undo.logical"
let page_oriented_undos = "undo.page_oriented"
let redos_applied = "redo.applied"
let redo_pages_examined = "redo.pages_examined"
let smo_splits = "smo.splits"
let smo_page_deletes = "smo.page_deletes"
let fiber_yields = "fiber.yields"
let fiber_spawns = "fiber.spawns"
let daemon_spawns = "daemon.spawns"
let commit_batches = "commit.batches"
let commit_batch_size = "commit.batch_size"
let commit_group_waits = "commit.group_waits"
let cleaner_pages_written = "cleaner.pages_written"
let cleaner_rounds = "cleaner.rounds"
let log_seals = "log.seals"
let log_truncations = "log.truncations"
let log_segments_reclaimed = "log.segments_reclaimed"
let log_bytes_reclaimed = "log.bytes_reclaimed"
let ckpt_taken = "ckpt.taken"
let ckptd_rounds = "ckptd.rounds"
let ckptd_nudges = "ckptd.nudges"
let trace_events = "trace.events"
let trace_violations = "trace.violations"
let trace_dumps = "trace.dumps"
let disk_retries = "disk.retries"
let disk_repairs = "disk.repairs"
let disk_eio_injected = "disk.eio_injected"
let disk_torn_writes = "disk.torn_writes"
let disk_bit_flips = "disk.bit_flips"
let disk_quarantines = "disk.quarantines"
let bufpool_image_hits = "bufpool.image_hits"
let bufpool_image_misses = "bufpool.image_misses"
let bufpool_image_invalidations = "bufpool.image_invalidations"
let wal_encode_arena_reuses = "wal.encode_arena_reuses"
let log_tail_truncated_bytes = "log.tail_truncated_bytes"
let log_tail_truncations = "log.tail_truncations"
let instant_ondemand_redos = "instant.ondemand_redos"
let instant_drain_rounds = "instant.drain_rounds"
let instant_preemptions = "instant.preemptions"
let instant_locks_reacquired = "instant.locks_reacquired"
let instant_locks_skipped = "instant.locks_skipped"
let mvcc_versions_created = "mvcc.versions_created"
let mvcc_versions_reclaimed = "mvcc.versions_reclaimed"
let mvcc_snapshot_reads = "mvcc.snapshot_reads"
let vgcd_rounds = "vgcd.rounds"
let txn_prepares = "txn.prepares"
let txn_indoubt_restored = "txn.indoubt_restored"
let txn_indoubt_resolved = "txn.indoubt_resolved"
let shard_retries = "shard.retries"
let shard_timeouts = "shard.timeouts"
let deadlock_global_victims = "deadlock.global_victims"

let commit_batch_bucket n = Printf.sprintf "commit.batch_hist.%02d" n

let lock_label ~mode ~duration = Printf.sprintf "lock.%s.%s" mode duration
