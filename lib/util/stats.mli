(** Instrumentation counters.

    The paper's efficiency measures (§1) are counts — locks acquired, pages
    accessed during redo/undo/normal operation, log volume, synchronous
    I/Os — so every subsystem reports into a [Stats.t]. A single mutable
    "current" sink is active at any time (the system is single-threaded and
    cooperatively scheduled); benchmarks swap in a fresh sink around the
    region they measure. *)

type t

val create : unit -> t

val reset : t -> unit

val copy : t -> t

val diff : t -> t -> t
(** [diff later earlier] subtracts every counter. *)

val current : unit -> t

val with_sink : t -> (unit -> 'a) -> 'a
(** Runs the thunk with the given sink installed, restoring the previous sink
    afterwards (also on exception). *)

(** {2 Named integer counters} *)

val incr : string -> unit
(** Increment a named counter in the current sink by 1. *)

val add : string -> int -> unit

val get : t -> string -> int
(** 0 if never incremented. *)

val to_alist : t -> (string * int) list
(** Sorted by name. *)

val pp : Format.formatter -> t -> unit

(** {2 Well-known counter names} (shared between producers and reports) *)

val lock_requests : string
val lock_waits : string
val lock_deadlocks : string
val latch_acquires : string
val latch_waits : string
val tree_latch_acquires : string
val tree_latch_waits : string
val log_records : string
val log_bytes : string
val log_forces : string
val page_reads : string
val page_writes : string
val page_fixes : string
val tree_traversals : string
val logical_undos : string
val page_oriented_undos : string
val redos_applied : string
val redo_pages_examined : string
val smo_splits : string
val smo_page_deletes : string
val fiber_yields : string
val fiber_spawns : string
val daemon_spawns : string

val commit_batches : string
(** Group-commit batches forced by the daemon. *)

val commit_batch_size : string
(** Cumulative committers covered across all batches; the mean batch size
    is [commit_batch_size / commit_batches]. *)

val commit_group_waits : string
(** Commits that enqueued on the group-commit queue and suspended. *)

val cleaner_pages_written : string
(** Dirty pages trickled to disk by the background page cleaner. *)

val cleaner_rounds : string

val log_seals : string
(** WAL segments sealed (reached the segment-size budget). *)

val log_truncations : string
(** [Logmgr.truncate_prefix] calls that reclaimed at least one segment. *)

val log_segments_reclaimed : string

val log_bytes_reclaimed : string

val ckpt_taken : string
(** Complete fuzzy checkpoints (Begin/End pair stable, master set). *)

val ckptd_rounds : string
(** Checkpoint-daemon wakeups that took a checkpoint. *)

val ckptd_nudges : string
(** Cleaner nudges issued by the checkpoint daemon because a stale dirty
    page pinned the oldest log segment. *)

val trace_events : string
(** Protocol trace events emitted into the tracer's ring buffer. *)

val trace_violations : string
(** Latch/lock discipline violations detected by the online checker. *)

val trace_dumps : string
(** Event-window dumps rendered for SIM-REPRO artifacts. *)

val disk_retries : string
(** Transient-EIO retries performed (page I/O and log forces). *)

val disk_repairs : string
(** Pages automatically rebuilt from archive + log history after a CRC
    failure ({!Aries_recovery.Media.auto_repair} completions). *)

val disk_eio_injected : string
(** Transient I/O errors injected by the fault layer. *)

val disk_torn_writes : string
(** Torn page images left on disk by a crash landing mid-write. *)

val disk_bit_flips : string
(** Silent single-bit corruptions injected into stored page images. *)

val disk_quarantines : string
(** Pages whose stored image failed its CRC / decode on read and were
    quarantined pending repair. *)

val bufpool_image_hits : string
(** Page write-backs served from a frame's cached encoded image (no
    re-encode, no re-CRC). *)

val bufpool_image_misses : string
(** Page write-backs that had to (re-)encode because no valid cached
    image existed for the frame's current [page_lsn]. *)

val bufpool_image_invalidations : string
(** Cached frame images dropped because the page was edited
    ([Bufpool.mark_dirty]). *)

val wal_encode_arena_reuses : string
(** Log-record appends whose encode arena was reused without regrowth —
    with a steady record-size profile this tracks [log.records] and the
    append path allocates no per-record buffers. *)

val log_tail_truncated_bytes : string
(** Bytes of torn/garbage log tail discarded by the restart tail-scan. *)

val log_tail_truncations : string
(** Tail-scan truncation events (a torn or corrupt suffix was cut). *)

val instant_ondemand_redos : string
(** Pages redone on demand by the instant-restart fix hook (a user fix
    touched an in-DPT page before the drain daemon reached it). *)

val instant_drain_rounds : string
(** Background drain-daemon rounds run by the instant-restart engine. *)

val instant_preemptions : string
(** Times a new transaction's lock request collided with a loser's
    reacquired lock and preempted that loser's undo to completion. *)

val instant_locks_reacquired : string
(** Loser locks re-acquired during instant-restart Analysis (from the
    checkpoint lock lists plus locks derived from scanned log records). *)

val instant_locks_skipped : string
(** Derived loser locks whose conditional reacquisition was denied (the
    name was already held, e.g. by an in-doubt prepared txn) and were
    skipped. *)

val mvcc_versions_created : string
(** Versions appended to MVCC chains (pending at append; stamped with the
    commit CSN when the writer commits, discarded if it rolls back). *)

val mvcc_versions_reclaimed : string
(** Versions removed from chains: reclaimed by the {e Vgcd} garbage
    collector below the oldest-active-snapshot horizon, discarded when
    their writer rolled back, or dropped wholesale when a crash clears the
    volatile store. [created - reclaimed] must equal the store's live
    census — [Db.leak_report] audits exactly that. *)

val mvcc_snapshot_reads : string
(** Keys resolved against a version chain by a snapshot reader. *)

val vgcd_rounds : string
(** Version-GC daemon rounds completed. *)

val txn_prepares : string
(** Prepare records logged and forced (2PC phase 1 votes). *)

val txn_indoubt_restored : string
(** In-doubt (prepared) transactions restored by restart analysis with
    their commit-duration locks reacquired. *)

val txn_indoubt_resolved : string
(** In-doubt transactions resolved after a restart: committed because the
    coordinator's decision record was re-read, or rolled back by
    presumption when no decision survived. *)

val shard_retries : string
(** 2PC decision-delivery attempts retried because the participant shard
    was down. *)

val shard_timeouts : string
(** Decision deliveries that exhausted their bounded retries and parked
    the participant as in-doubt (resolved later by {!txn_indoubt_resolved}
    machinery). *)

val deadlock_global_victims : string
(** Transactions aborted by the cross-shard deadlock detector (global
    waits-for union over the per-shard lock managers, plus its lock-wait
    timeout fallback). *)

val commit_batch_bucket : int -> string
(** Histogram counter name for batches of exactly [n] committers,
    e.g. ["commit.batch_hist.04"]. *)

val lock_label : mode:string -> duration:string -> string
(** Name of the per-(mode,duration) lock counter, e.g. ["lock.X.instant"]. *)
