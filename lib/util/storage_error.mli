(** Typed storage failures raised by the detection / retry / repair layer.

    Every damaged-media condition the system detects — CRC mismatch, an
    unparseable stored image, a transient injected I/O error, or retry
    exhaustion — surfaces as {!Error} with the offending page id / LSN
    when known.  Bare [Bytebuf.Corrupt] must never escape a restart or
    save/load path. *)

type cause =
  | Checksum  (** stored CRC did not verify: torn write or bit-rot *)
  | Decode  (** structurally unparseable image / record / container *)
  | Io_transient  (** injected transient EIO (retryable) *)
  | Retry_exhausted  (** bounded retry gave up on a transient fault *)

type info = { cause : cause; pid : int option; lsn : int option; detail : string }

exception Error of info

val cause_name : cause -> string
val to_string : info -> string

val raise_err :
  ?pid:int -> ?lsn:int -> cause -> ('a, unit, string, 'b) format4 -> 'a
(** [raise_err ?pid ?lsn cause fmt ...] raises {!Error} with a formatted
    detail string. *)

val of_corrupt : ?pid:int -> ?lsn:int -> string -> exn
(** Wrap a caught [Bytebuf.Corrupt] message as a [Decode] error. *)
