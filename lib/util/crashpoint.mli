(** Crash-point injection for deterministic simulation.

    Every {e durability event} — a log append, a log force, a page write —
    calls {!hit}. The simulation harness ({!Aries_sim.Sim}) first runs a
    workload with the counter merely recording, learning the total number of
    events [N]; it then re-runs the same seed once per crash index
    [k = 1..N] with the hook {e armed}, so the [k]-th durability event
    raises {!Crash} instead of happening. Once tripped, {e every} subsequent
    event also raises — the stable state (disk images + flushed log prefix)
    is frozen at the crash instant even though other fibers may still be
    scheduled; volatile work they do is discarded by [Db.crash] anyway.

    The module also hosts named {e fault} switches, used to deliberately
    break a durability rule (e.g. skip the commit log force) and prove the
    harness catches the resulting corruption. Faults are for tests and the
    bench demo only; production code paths merely consult them.

    All state is global (one simulation at a time — the system is
    single-threaded and cooperatively scheduled, like {!Stats}). *)

exception Crash of int
(** [Crash k] is raised at durability event [k] (1-based) when armed, and at
    every event after the trip. Simulates a power failure at that instant. *)

val reset : unit -> unit
(** Zero the event counter, disarm, and clear the tripped flag. Faults are
    {e not} cleared (they are orthogonal knobs). *)

val arm : at:int -> unit
(** Arm the hook: the [at]-th subsequent event (counting from the last
    {!reset}) raises {!Crash}. [at <= 0] is rejected. *)

val arm_label : string -> unit
(** Arm the hook by {e label}: the next {!hit} whose label equals the given
    string raises {!Crash}, regardless of the counter. Used by targeted
    crash-ordering tests (e.g. crash exactly between the checkpoint's log
    force and the master-record update, label ["ckpt.master"]) where the
    global event index would be brittle. *)

val disarm : unit -> unit
(** Stop raising; the counter keeps counting. Call before running restart
    recovery, which performs durability events of its own. *)

val hit : string -> unit
(** Called by Logmgr/Disk/Bufpool at each durability event. Increments the
    counter and raises {!Crash} per the armed/tripped state. The label is
    recorded per-label in the current {!Stats} sink under
    ["crashpoint.<label>"] so sweeps can report event composition. *)

val count : unit -> int
(** Events since the last {!reset}. *)

val tripped : unit -> bool
(** Has an armed crash fired since the last {!reset}? *)

(** {1 Fault switches} *)

val enable_fault : string -> unit

val disable_fault : string -> unit

val fault_active : string -> bool

val clear_faults : unit -> unit

val fault_wal_skip_flush : string
(** Well-known fault name: {!Aries_wal.Logmgr} silently skips log forces,
    breaking the durability of commits and the WAL rule — the canonical
    "deliberately injected bug" the simulation harness must catch. *)

val fault_lock_uncond_under_latch : string
(** Well-known fault name: the B-tree key-locking path skips the
    conditional-lock / unlatch / unconditional-lock dance and issues an
    {e unconditional} lock request while still holding page latches —
    exactly the undetectable-deadlock hazard of §2.2. The online
    discipline checker must flag it as an R1 violation. *)

val fault_commit_early_ack : string
(** Well-known fault name: {!Aries_txn.Txnmgr} acknowledges a commit
    {e before} forcing the log up to the commit record — a durability lie
    the discipline checker must flag as an R4 violation. *)

val fault_ckpt_premature_truncate : string
(** Well-known fault name: the checkpoint daemon truncates the log all the
    way to the flushed boundary, ignoring the reclamation safety point —
    records that restart or media recovery may still need are destroyed.
    The discipline checker must flag the oversized truncate as an R6
    violation. *)

(** {2 Storage-fault switches}

    The adversarial storage model (PR 5). These are {e armed} centrally by
    {!Faultdisk.arm}, which also seeds the RNG driving the probabilistic
    ones; production code consults them via {!Faultdisk}'s decision
    functions rather than reading the raw switch. *)

val fault_disk_torn_write : string
(** A crash that lands on a page write leaves a {e torn} image on disk —
    a prefix of the new bytes spliced onto the old tail — instead of
    atomically keeping the old image. Detected by the page CRC on the
    next read; repaired via media recovery. *)

val fault_disk_bit_flip : string
(** Silent bit-rot: stored page images occasionally get one bit flipped
    at rest (probability and position drawn from the {!Faultdisk} RNG).
    Detected by the page CRC; repaired via media recovery. *)

val fault_disk_transient_eio : string
(** Probabilistic, seeded transient I/O failures on page reads/writes and
    log forces. Retryable: callers apply bounded retry with
    scheduler-step backoff; exhaustion surfaces a typed
    [Storage_error]. *)

val fault_log_torn_append : string
(** A crash leaves a {e partial} log record in the tail segment (the
    medium kept some bytes past the flushed boundary). Restart's CRC
    tail-scan must truncate it rather than crash decoding garbage. *)

val fault_crc_check_disabled : string
(** Meta-fault proving detection has teeth: with CRC verification
    switched off, the bit-flip workload must be caught by the sim
    oracle / escape as a decode failure instead of being repaired. *)

val fault_instant_skip_redo : string
(** Meta-fault proving rule R7 has teeth: the instant-restart on-demand
    redo hook drops a page from the needs-redo set {e without} replaying
    its history, so the next fix serves a stale image. The discipline
    checker must flag the fix as an R7 violation. *)

val fault_wal_stream_shuffle : string
(** Multi-stream crash adversary: at crash time each log stream
    independently keeps a random number of complete unflushed frames past
    its stable boundary (drawn from the {!Faultdisk} RNG) — one stream may
    persist its whole tail while another loses everything unforced. Armed
    by {!Faultdisk.arm} when [cfg.stream_shuffle] is set. *)

val fault_wal_stream_fence_skip : string
(** Meta-fault proving rule R8 has teeth: the commit path forces only the
    stream holding the Commit record, skipping the epoch fence over the
    other streams the transaction touched — an update can then be lost
    while its commit survives. The discipline checker must flag the ack
    as an R8 violation. *)

val fault_mvcc_reader_key_lock : string
(** Meta-fault proving rule R9 has teeth: an Mvcc snapshot fetch issues a
    real conditional key-lock request inside its wait-free read window —
    exactly the lock-manager interaction snapshot readers exist to avoid.
    The discipline checker must flag the request as an R9 violation. *)

val fault_twopc_early_decide : string
(** Meta-fault proving rule R10 has teeth: the 2PC coordinator skips the
    force of its Coord_commit decision record and acknowledges the global
    commit anyway — participants then release in-doubt locks on the
    strength of a decision a crash can still lose. The discipline checker
    must flag the decide/ack as an R10 violation. *)

val fault_shard_down : string
(** Prefix of the per-shard fail-stop switches ["shard.down.<k>"] (see
    {!shard_down_fault}): while shard [k]'s switch is active the
    {!Aries_shard.Sharddb} layer refuses every operation routed to it with
    a typed [Shard_down] — healthy shards must keep committing, and
    cross-shard transactions touching the downed shard park as in-doubt or
    abort by presumption, never hang. *)

val shard_down_fault : int -> string
(** [shard_down_fault k] = ["shard.down.<k>"]. *)
