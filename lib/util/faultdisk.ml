(* The adversarial storage model: one process-global fault engine that
   both the page store ([Aries_page.Disk]) and the log manager
   ([Aries_wal.Logmgr]) consult.  It lives in [Aries_util] because the
   WAL layer cannot depend on the page layer — the "Faultdisk shim" is a
   decision oracle here, and the actual byte-mangling (splicing a torn
   image, flipping a stored bit) happens at the call sites that own the
   bytes.

   Determinism: all probabilistic decisions draw from one seeded
   splitmix64 stream, and the decision functions draw *only while their
   switch is active* — so a run with no faults armed consumes zero
   entropy and is bit-identical to a pre-PR-5 run, and an armed run is a
   pure function of (workload seed, fault seed, cfg). *)

type cfg = {
  eio_read_p : float;  (** P(transient EIO) per page read *)
  eio_write_p : float;  (** P(transient EIO) per page write *)
  eio_force_p : float;  (** P(transient EIO) per log force *)
  bit_flip_p : float;  (** P(flip one stored bit) per page write at rest *)
  torn_write : bool;  (** a crash on a page write leaves a torn image *)
  torn_append : bool;  (** a crash leaves a partial record in the log tail *)
  stream_shuffle : bool;
      (** a crash persists a random per-stream number of complete unflushed
          log frames — the cross-stream flush-order adversary *)
}

let default_cfg =
  {
    eio_read_p = 0.02;
    eio_write_p = 0.02;
    eio_force_p = 0.02;
    bit_flip_p = 0.03;
    torn_write = true;
    torn_append = true;
    stream_shuffle = false;
  }

let eio_only_cfg =
  {
    eio_read_p = 0.05;
    eio_write_p = 0.05;
    eio_force_p = 0.08;
    bit_flip_p = 0.0;
    torn_write = false;
    torn_append = false;
    stream_shuffle = false;
  }

(* The multi-stream crash adversary alone: no EIO, no bit-rot — every run
   must recover cleanly no matter which streams' tails the crash kept. The
   torn-append switch stays on so the shuffled survivor boundary can also
   land mid-record. *)
let shuffle_cfg =
  {
    eio_read_p = 0.0;
    eio_write_p = 0.0;
    eio_force_p = 0.0;
    bit_flip_p = 0.0;
    torn_write = false;
    torn_append = true;
    stream_shuffle = true;
  }

type state = {
  mutable cfg : cfg option;
  mutable rng : Rng.t;
  mutable owned : string list;  (** switches we enabled, to disable on disarm *)
}

let st = { cfg = None; rng = Rng.create 0; owned = [] }

let own name =
  if not (Crashpoint.fault_active name) then begin
    Crashpoint.enable_fault name;
    st.owned <- name :: st.owned
  end

let arm ~seed cfg =
  st.cfg <- Some cfg;
  st.rng <- Rng.create (0x5D15C0 lxor seed);
  st.owned <- [];
  if cfg.eio_read_p > 0. || cfg.eio_write_p > 0. || cfg.eio_force_p > 0. then
    own Crashpoint.fault_disk_transient_eio;
  if cfg.bit_flip_p > 0. then own Crashpoint.fault_disk_bit_flip;
  if cfg.torn_write then own Crashpoint.fault_disk_torn_write;
  if cfg.torn_append then own Crashpoint.fault_log_torn_append;
  if cfg.stream_shuffle then own Crashpoint.fault_wal_stream_shuffle

let disarm () =
  List.iter Crashpoint.disable_fault st.owned;
  st.owned <- [];
  st.cfg <- None

let armed () = st.cfg <> None

(* Decision functions.  Each draws from the RNG only when its switch is
   live, so the stream stays aligned with the armed op sequence. *)

let draw p = p > 0. && Rng.float st.rng 1.0 < p

let fail_read () =
  Crashpoint.fault_active Crashpoint.fault_disk_transient_eio
  && match st.cfg with Some c -> draw c.eio_read_p | None -> false

let fail_write () =
  Crashpoint.fault_active Crashpoint.fault_disk_transient_eio
  && match st.cfg with Some c -> draw c.eio_write_p | None -> false

let fail_force () =
  Crashpoint.fault_active Crashpoint.fault_disk_transient_eio
  && match st.cfg with Some c -> draw c.eio_force_p | None -> false

let flip_now () =
  Crashpoint.fault_active Crashpoint.fault_disk_bit_flip
  && match st.cfg with Some c -> draw c.bit_flip_p | None -> false

let torn_write_on () = Crashpoint.fault_active Crashpoint.fault_disk_torn_write

let torn_append_on () = Crashpoint.fault_active Crashpoint.fault_log_torn_append

let stream_shuffle_on () = Crashpoint.fault_active Crashpoint.fault_wal_stream_shuffle

(* How many of a stream's [avail] complete unflushed frames the crash
   keeps: uniform over [0, avail] (0 = classic lose-the-tail, avail =
   persist everything past the fence). Draws only while armed, keeping the
   stream aligned. *)
let stream_retain ~avail =
  if avail <= 0 || not (stream_shuffle_on ()) then 0
  else match st.cfg with Some _ -> Rng.int st.rng (avail + 1) | None -> 0

let crc_checks_enabled () =
  not (Crashpoint.fault_active Crashpoint.fault_crc_check_disabled)

(* Byte mangling helpers (deterministic given the stream position). *)

let flip_one_bit s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Rng.int st.rng n and bit = Rng.int st.rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    Bytes.unsafe_to_string b
  end

let tear ~old_image ~new_image =
  (* First half of the new bytes lands, the rest keeps whatever the old
     image had there (nothing, if the old image was shorter or absent) —
     the classic half-sector torn write. *)
  let cut = max 1 (String.length new_image / 2) in
  let prefix = String.sub new_image 0 (min cut (String.length new_image)) in
  match old_image with
  | Some old when String.length old > cut ->
      prefix ^ String.sub old cut (String.length old - cut)
  | _ -> prefix
