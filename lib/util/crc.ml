(* CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
   guarding every stored page image, log-record frame and sealed-segment
   footer.  Returns the 32-bit value as a non-negative int (OCaml ints are
   63-bit so the full range fits).

   Two engines over the same polynomial:

   - [update_bytewise]: the classic one-table byte-at-a-time loop.  Kept as
     the differential-testing reference and the benchmark baseline.
   - [update]: slice-by-16.  Sixteen derived tables let the loop consume
     sixteen input bytes per iteration (sixteen unchecked byte loads and
     table lookups folded with xor), which is where the hot paths spend their
     time: page-image encode/decode, log-frame append and the restart tail
     scan all CRC whole buffers.

   All tables are built eagerly at module init — the former [lazy] table
   put a [Lazy.force] branch on every [update] call.

   Why CRC32 and not a keyed hash: the adversary here is the *storage
   medium* (torn sector writes, bit-rot), not a malicious writer.  A
   32-bit CRC detects all single-bit and all burst errors up to 32 bits,
   which is exactly the fault model `Faultdisk` injects. *)

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

(* tables.(0) = table; tables.(k).(n) advances the CRC of byte [n] through
   [k] further zero bytes — the standard slicing construction, built out
   to 16 tables so the main loop can eat 16 bytes per iteration. *)
let tables =
  let ts = Array.init 16 (fun _ -> Array.make 256 0) in
  ts.(0) <- table;
  for k = 1 to 15 do
    for n = 0 to 255 do
      let prev = ts.(k - 1).(n) in
      ts.(k).(n) <- table.(prev land 0xFF) lxor (prev lsr 8)
    done
  done;
  ts

let update_bytewise crc s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc.update_bytewise: slice out of bounds";
  let t = table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let update crc s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc.update: slice out of bounds";
  let t0 = tables.(0) and t1 = tables.(1) and t2 = tables.(2) and t3 = tables.(3) in
  let t4 = tables.(4) and t5 = tables.(5) and t6 = tables.(6) and t7 = tables.(7) in
  let t8 = tables.(8) and t9 = tables.(9) and t10 = tables.(10) and t11 = tables.(11) in
  let t12 = tables.(12) and t13 = tables.(13) and t14 = tables.(14) and t15 = tables.(15) in
  let c = ref (crc lxor 0xFFFFFFFF) in
  let i = ref off in
  let fin = off + len in
  (* sixteen bytes per iteration; the trailing <16 bytes fall through to
     the bytewise loop below. Only the first four lanes depend on the
     running register, so twelve of the sixteen lookups are independent —
     that instruction-level parallelism is most of the win over the
     bytewise loop, whose every step serialises on the register. Bounds
     were validated up front, so the loads and the table lookups are
     unsafe: plain byte reads (no boxed [Int32] from [get_int32_le]) and
     unchecked indexing (every index is masked to 0..255, and the CRC
     register never exceeds 32 bits). *)
  let b = Bytes.unsafe_of_string s in
  while fin - !i >= 16 do
    let p = !i and c0 = !c in
    c :=
      Array.unsafe_get t15 ((c0 lxor Char.code (Bytes.unsafe_get b p)) land 0xFF)
      lxor Array.unsafe_get t14
             (((c0 lsr 8) lxor Char.code (Bytes.unsafe_get b (p + 1))) land 0xFF)
      lxor Array.unsafe_get t13
             (((c0 lsr 16) lxor Char.code (Bytes.unsafe_get b (p + 2))) land 0xFF)
      (* no mask: the register is 32-bit, so [c0 lsr 24] is already <= 0xFF *)
      lxor Array.unsafe_get t12 ((c0 lsr 24) lxor Char.code (Bytes.unsafe_get b (p + 3)))
      lxor Array.unsafe_get t11 (Char.code (Bytes.unsafe_get b (p + 4)))
      lxor Array.unsafe_get t10 (Char.code (Bytes.unsafe_get b (p + 5)))
      lxor Array.unsafe_get t9 (Char.code (Bytes.unsafe_get b (p + 6)))
      lxor Array.unsafe_get t8 (Char.code (Bytes.unsafe_get b (p + 7)))
      lxor Array.unsafe_get t7 (Char.code (Bytes.unsafe_get b (p + 8)))
      lxor Array.unsafe_get t6 (Char.code (Bytes.unsafe_get b (p + 9)))
      lxor Array.unsafe_get t5 (Char.code (Bytes.unsafe_get b (p + 10)))
      lxor Array.unsafe_get t4 (Char.code (Bytes.unsafe_get b (p + 11)))
      lxor Array.unsafe_get t3 (Char.code (Bytes.unsafe_get b (p + 12)))
      lxor Array.unsafe_get t2 (Char.code (Bytes.unsafe_get b (p + 13)))
      lxor Array.unsafe_get t1 (Char.code (Bytes.unsafe_get b (p + 14)))
      lxor Array.unsafe_get t0 (Char.code (Bytes.unsafe_get b (p + 15)));
    i := p + 16
  done;
  while !i < fin do
    c := t0.((!c lxor Char.code (String.unsafe_get s !i)) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFFFFFF

let string ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  update 0 s off len

let bytes ?off ?len b = string ?off ?len (Bytes.unsafe_to_string b)

(* {2 CRC combination}

   [combine ca cb len_b] = CRC of the concatenation [a ^ b] given only
   [ca = crc a], [cb = crc b] and [len_b] — zlib's crc32_combine.  Advancing
   a CRC through [len_b] zero bytes is multiplication by a fixed 32x32
   matrix over GF(2); square-and-multiply over the bit decomposition of
   [len_b] makes it O(log len_b).  This is what makes slice-level
   incrementality sound: a cached CRC of an unchanged prefix can be
   combined with a re-CRC of only the changed suffix. *)

let gf2_times m v =
  let r = ref 0 and v = ref v and i = ref 0 in
  while !v <> 0 do
    if !v land 1 = 1 then r := !r lxor m.(!i);
    v := !v lsr 1;
    incr i
  done;
  !r

let gf2_square dst m =
  for i = 0 to 31 do
    dst.(i) <- gf2_times m m.(i)
  done

let combine ca cb len_b =
  if len_b < 0 then invalid_arg "Crc.combine: negative length";
  if len_b = 0 then ca
  else begin
    let even = Array.make 32 0 and odd = Array.make 32 0 in
    (* odd = the "advance one zero bit" operator: one step of the reflected
       LFSR (row 0 is the polynomial; row k shifts bit k-1 in) *)
    odd.(0) <- 0xEDB88320;
    let row = ref 1 in
    for i = 1 to 31 do
      odd.(i) <- !row;
      row := !row lsl 1
    done;
    gf2_square even odd;  (* even = advance 2 zero bits *)
    gf2_square odd even;  (* odd  = advance 4 zero bits *)
    let c = ref ca and n = ref len_b in
    let continue_ = ref true in
    while !continue_ do
      gf2_square even odd;  (* advance by 8, 32, 128, ... zero *bytes* *)
      if !n land 1 = 1 then c := gf2_times even !c;
      n := !n lsr 1;
      if !n = 0 then continue_ := false
      else begin
        gf2_square odd even;
        if !n land 1 = 1 then c := gf2_times odd !c;
        n := !n lsr 1;
        if !n = 0 then continue_ := false
      end
    done;
    !c lxor cb
  end
