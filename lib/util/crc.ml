(* CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
   guarding every stored page image, log-record frame and sealed-segment
   footer.  Table-driven; returns the 32-bit value as a non-negative int
   (OCaml ints are 63-bit so the full range fits).

   Why CRC32 and not a keyed hash: the adversary here is the *storage
   medium* (torn sector writes, bit-rot), not a malicious writer.  A
   32-bit CRC detects all single-bit and all burst errors up to 32 bits,
   which is exactly the fault model `Faultdisk` injects. *)

let table =
  lazy
    (let t = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
       done;
       t.(n) <- !c
     done;
     t)

let update crc s off len =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  update 0 s off len

let bytes ?off ?len b = string ?off ?len (Bytes.unsafe_to_string b)
