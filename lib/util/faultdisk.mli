(** The adversarial storage model: a process-global fault engine consulted
    by the page store and the log manager.

    {!arm} seeds one splitmix64 stream and enables the matching
    {!Crashpoint} fault switches; the decision functions below draw from
    the stream {e only while their switch is active}, so unarmed runs
    consume zero entropy (bit-identical to fault-free runs) and armed runs
    are a pure function of (workload seed, fault seed, cfg).

    The engine only {e decides}; the byte-mangling (splicing a torn image,
    flipping a stored bit) is done by the call sites that own the bytes,
    using {!flip_one_bit} / {!tear}. *)

type cfg = {
  eio_read_p : float;  (** P(transient EIO) per page read *)
  eio_write_p : float;  (** P(transient EIO) per page write *)
  eio_force_p : float;  (** P(transient EIO) per log force *)
  bit_flip_p : float;  (** P(flip one stored bit) per page write at rest *)
  torn_write : bool;  (** a crash on a page write leaves a torn image *)
  torn_append : bool;  (** a crash leaves a partial record in the log tail *)
  stream_shuffle : bool;
      (** a crash persists a random per-stream number of complete unflushed
          log frames — the cross-stream flush-order adversary *)
}

val default_cfg : cfg
(** Everything on, low probabilities — the stock sim fault mix. *)

val eio_only_cfg : cfg
(** Only transient I/O errors (higher rates); exercises the retry paths
    without ever corrupting stored bytes. *)

val shuffle_cfg : cfg
(** Only the per-stream flush-order shuffle (plus torn appends): at crash
    time each log stream independently keeps 0..all of its complete
    unflushed frames, so one stream can persist past the epoch fence while
    another loses its tail. *)

val arm : seed:int -> cfg -> unit
(** Install [cfg], seed the fault RNG, and enable the matching
    {!Crashpoint} switches (remembering which ones {e this} call turned
    on). *)

val disarm : unit -> unit
(** Disable exactly the switches {!arm} enabled and drop the cfg.
    Switches enabled independently (e.g. a test's [enable_fault]) are
    left alone. *)

val armed : unit -> bool

(** {2 Decision functions} — true means "inject the fault now". *)

val fail_read : unit -> bool
val fail_write : unit -> bool
val fail_force : unit -> bool
val flip_now : unit -> bool

val torn_write_on : unit -> bool
val torn_append_on : unit -> bool
val stream_shuffle_on : unit -> bool

val stream_retain : avail:int -> int
(** How many of a stream's [avail] complete unflushed frames survive the
    crash: uniform over [0, avail] while the shuffle switch is armed, else
    0. One RNG draw per armed call. *)

val crc_checks_enabled : unit -> bool
(** False iff the {!Crashpoint.fault_crc_check_disabled} meta-fault is
    active — codecs then skip CRC verification, and the sim oracle must
    catch the resulting corruption itself. *)

(** {2 Byte mangling} *)

val flip_one_bit : string -> string
(** Flip one RNG-chosen bit (identity on the empty string). *)

val tear : old_image:string option -> new_image:string -> string
(** The torn image a crash mid-write leaves behind: the first half of
    [new_image] spliced onto [old_image]'s tail (or alone, if the old
    image is absent/shorter). Deterministic — no RNG draw. *)
