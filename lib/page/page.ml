open Aries_util
module Lsn = Aries_wal.Lsn
module Latch = Aries_sched.Latch

type leaf = {
  mutable lf_sm_bit : bool;
  mutable lf_delete_bit : bool;
  mutable lf_prev : Ids.page_id;
  mutable lf_next : Ids.page_id;
  lf_keys : Key.t Vec.t;
}

type nonleaf = {
  mutable nl_sm_bit : bool;
  mutable nl_level : int;
  nl_children : Ids.page_id Vec.t;
  nl_high_keys : Key.t Vec.t;
}

type data = {
  dt_owner : int;
  dt_slots : bytes option Vec.t;
}

type anchor = {
  mutable an_root : Ids.page_id;
  mutable an_height : int;
  an_unique : bool;
  an_name : string;
}

type content =
  | Leaf of leaf
  | Nonleaf of nonleaf
  | Data of data
  | Anchor of anchor

type t = {
  pid : Ids.page_id;
  psize : int;
  mutable page_lsn : Lsn.t;
  mutable content : content;
  latch : Latch.t;
}

let create ~psize ~pid content =
  {
    pid;
    psize;
    page_lsn = Lsn.nil;
    content;
    latch = Latch.create (Printf.sprintf "page-%d" pid);
  }

let empty_leaf () =
  Leaf
    {
      lf_sm_bit = false;
      lf_delete_bit = false;
      lf_prev = Ids.nil_page;
      lf_next = Ids.nil_page;
      lf_keys = Vec.create ();
    }

let empty_nonleaf ~level =
  Nonleaf { nl_sm_bit = false; nl_level = level; nl_children = Vec.create (); nl_high_keys = Vec.create () }

let empty_data ~owner = Data { dt_owner = owner; dt_slots = Vec.create () }

let empty_anchor ~name ~unique =
  Anchor { an_root = Ids.nil_page; an_height = 0; an_unique = unique; an_name = name }

let kind_name = function
  | Leaf _ -> "leaf"
  | Nonleaf _ -> "nonleaf"
  | Data _ -> "data"
  | Anchor _ -> "anchor"

let wrong t want =
  invalid_arg (Printf.sprintf "Page %d: expected %s page, found %s" t.pid want (kind_name t.content))

let as_leaf t = match t.content with Leaf l -> l | Nonleaf _ | Data _ | Anchor _ -> wrong t "leaf"

let as_nonleaf t =
  match t.content with Nonleaf n -> n | Leaf _ | Data _ | Anchor _ -> wrong t "nonleaf"

let as_data t = match t.content with Data d -> d | Leaf _ | Nonleaf _ | Anchor _ -> wrong t "data"

let as_anchor t =
  match t.content with Anchor a -> a | Leaf _ | Nonleaf _ | Data _ -> wrong t "anchor"

let is_leaf t = match t.content with Leaf _ -> true | Nonleaf _ | Data _ | Anchor _ -> false

let sm_bit t =
  match t.content with
  | Leaf l -> l.lf_sm_bit
  | Nonleaf n -> n.nl_sm_bit
  | Data _ | Anchor _ -> wrong t "index"

let set_sm_bit t v =
  match t.content with
  | Leaf l -> l.lf_sm_bit <- v
  | Nonleaf n -> n.nl_sm_bit <- v
  | Data _ | Anchor _ -> wrong t "index"

let delete_bit t =
  match t.content with Leaf l -> l.lf_delete_bit | Nonleaf _ | Data _ | Anchor _ -> wrong t "leaf"

let set_delete_bit t v =
  match t.content with
  | Leaf l -> l.lf_delete_bit <- v
  | Nonleaf _ | Data _ | Anchor _ -> wrong t "leaf"

let header_bytes = 48

let record_cost b = Bytes.length b + 8

let used_bytes t =
  match t.content with
  | Leaf l -> Vec.fold (fun acc k -> acc + Key.on_page_cost k) 0 l.lf_keys
  | Nonleaf n ->
      Vec.fold (fun acc k -> acc + Key.on_page_cost k) 0 n.nl_high_keys
      + (8 * Vec.length n.nl_children)
  | Data d ->
      Vec.fold
        (fun acc slot -> acc + 4 + (match slot with Some b -> record_cost b | None -> 0))
        0 d.dt_slots
  | Anchor _ -> 32

let free_space t = t.psize - header_bytes - used_bytes t

let kind_tag = function Leaf _ -> 0 | Nonleaf _ -> 1 | Data _ -> 2 | Anchor _ -> 3

(* On-disk image format v2 (PR 5): a version byte [0xA2] (disjoint from the
   v1 kind tags 0..3, so legacy images are still recognized), the v1 body,
   and a CRC32 trailer over everything before it.  The CRC is what lets a
   torn write or a flipped bit be *detected* on read instead of surfacing
   as a garbage decode — detection is the trigger for media repair. *)
let version_tag = 0xA2

let encode_body_into w t =
  Bytebuf.W.u8 w (kind_tag t.content);
  Bytebuf.W.i64 w t.pid;
  Bytebuf.W.i64 w t.page_lsn;
  (match t.content with
  | Leaf l ->
      Bytebuf.W.bool w l.lf_sm_bit;
      Bytebuf.W.bool w l.lf_delete_bit;
      Bytebuf.W.i64 w l.lf_prev;
      Bytebuf.W.i64 w l.lf_next;
      Bytebuf.W.u32 w (Vec.length l.lf_keys);
      Vec.iter (Key.encode w) l.lf_keys
  | Nonleaf n ->
      Bytebuf.W.bool w n.nl_sm_bit;
      Bytebuf.W.u16 w n.nl_level;
      Bytebuf.W.u32 w (Vec.length n.nl_children);
      Vec.iter (Bytebuf.W.i64 w) n.nl_children;
      Bytebuf.W.u32 w (Vec.length n.nl_high_keys);
      Vec.iter (Key.encode w) n.nl_high_keys
  | Data d ->
      Bytebuf.W.i64 w d.dt_owner;
      Bytebuf.W.u32 w (Vec.length d.dt_slots);
      Vec.iter
        (fun slot ->
          match slot with
          | None -> Bytebuf.W.bool w false
          | Some b ->
              Bytebuf.W.bool w true;
              Bytebuf.W.bytes w b)
        d.dt_slots
  | Anchor a ->
      Bytebuf.W.i64 w a.an_root;
      Bytebuf.W.u16 w a.an_height;
      Bytebuf.W.bool w a.an_unique;
      Bytebuf.W.string w a.an_name)

(* One pass into a size-hinted arena — the old path built the body in a
   128-byte writer (paying the growth-doubling copies up to page size),
   copied it into a fresh frame, then CRC'd the copy. Here the version
   byte and body are written once and the CRC is computed in place over
   the arena before the trailer lands; the only copy is the final
   [contents]. The byte layout is unchanged: [0xA2][v1 body][u32 crc]. *)
let encode_into w t =
  Bytebuf.W.reset w;
  Bytebuf.W.u8 w version_tag;
  encode_body_into w t;
  let crc = Bytebuf.W.crc w in
  Bytebuf.W.u32 w crc;
  Bytebuf.W.contents w

let encode t = encode_into (Bytebuf.W.create ~size:(t.psize + 16) ()) t

let decode_body ~psize r =
  let tag = Bytebuf.R.u8 r in
  let pid = Bytebuf.R.i64 r in
  let page_lsn = Bytebuf.R.i64 r in
  let content =
    match tag with
    | 0 ->
        let lf_sm_bit = Bytebuf.R.bool r in
        let lf_delete_bit = Bytebuf.R.bool r in
        let lf_prev = Bytebuf.R.i64 r in
        let lf_next = Bytebuf.R.i64 r in
        let n = Bytebuf.R.u32 r in
        let lf_keys = Vec.create () in
        for _ = 1 to n do
          Vec.push lf_keys (Key.decode r)
        done;
        Leaf { lf_sm_bit; lf_delete_bit; lf_prev; lf_next; lf_keys }
    | 1 ->
        let nl_sm_bit = Bytebuf.R.bool r in
        let nl_level = Bytebuf.R.u16 r in
        let nc = Bytebuf.R.u32 r in
        let nl_children = Vec.create () in
        for _ = 1 to nc do
          Vec.push nl_children (Bytebuf.R.i64 r)
        done;
        let nk = Bytebuf.R.u32 r in
        let nl_high_keys = Vec.create () in
        for _ = 1 to nk do
          Vec.push nl_high_keys (Key.decode r)
        done;
        Nonleaf { nl_sm_bit; nl_level; nl_children; nl_high_keys }
    | 2 ->
        let dt_owner = Bytebuf.R.i64 r in
        let n = Bytebuf.R.u32 r in
        let dt_slots = Vec.create () in
        for _ = 1 to n do
          let present = Bytebuf.R.bool r in
          Vec.push dt_slots (if present then Some (Bytebuf.R.bytes r) else None)
        done;
        Data { dt_owner; dt_slots }
    | 3 ->
        let an_root = Bytebuf.R.i64 r in
        let an_height = Bytebuf.R.u16 r in
        let an_unique = Bytebuf.R.bool r in
        let an_name = Bytebuf.R.string r in
        Anchor { an_root; an_height; an_unique; an_name }
    | n -> raise (Bytebuf.Corrupt (Printf.sprintf "bad page kind tag %d" n))
  in
  Bytebuf.R.expect_end r;
  let page = create ~psize ~pid content in
  page.page_lsn <- page_lsn;
  page

let decode ~psize b =
  let n = Bytes.length b in
  if n > 0 && Char.code (Bytes.get b 0) = version_tag then begin
    (* v2: [0xA2][v1 body][u32 crc].  Verify before parsing — a torn or
       bit-rotted image must surface as a typed checksum error (which the
       buffer manager turns into quarantine + repair), never as a garbage
       structural decode. *)
    if n < 1 + 17 + 4 then
      Storage_error.raise_err Storage_error.Decode "v2 page image too short (%dB)" n;
    let stored = Int32.to_int (Bytes.get_int32_le b (n - 4)) land 0xFFFFFFFF in
    if Faultdisk.crc_checks_enabled () then begin
      let crc = Crc.bytes ~len:(n - 4) b in
      if crc <> stored then begin
        (* sniff the claimed pid (offset 2: after version byte + kind tag)
           purely for diagnostics — it may itself be rotten *)
        let pid = Int64.to_int (Bytes.get_int64_le b 2) in
        Storage_error.raise_err ~pid Storage_error.Checksum
          "page image CRC mismatch (stored %08x, computed %08x, %dB)" stored crc n
      end
    end;
    (* zero-copy: parse the body straight out of the image slice *)
    decode_body ~psize (Bytebuf.R.of_substring (Bytes.unsafe_to_string b) ~off:1 ~len:(n - 5))
  end
  else
    (* legacy v1 image: first byte is a kind tag in 0..3 *)
    decode_body ~psize (Bytebuf.R.of_bytes b)

let equal a b = a.pid = b.pid && a.page_lsn = b.page_lsn && Bytes.equal (encode a) (encode b)

let pp ppf t =
  Format.fprintf ppf "@[<v2>page %d (%s) lsn=%a free=%d" t.pid (kind_name t.content) Lsn.pp
    t.page_lsn (free_space t);
  (match t.content with
  | Leaf l ->
      Format.fprintf ppf " sm=%b del=%b prev=%d next=%d@," l.lf_sm_bit l.lf_delete_bit l.lf_prev
        l.lf_next;
      Vec.iter (fun k -> Format.fprintf ppf "%a@," Key.pp k) l.lf_keys
  | Nonleaf n ->
      Format.fprintf ppf " sm=%b level=%d@," n.nl_sm_bit n.nl_level;
      Vec.iteri
        (fun i c ->
          if i < Vec.length n.nl_high_keys then
            Format.fprintf ppf "child %d < %a@," c Key.pp (Vec.get n.nl_high_keys i)
          else Format.fprintf ppf "child %d (rightmost)@," c)
        n.nl_children
  | Data d ->
      Vec.iteri
        (fun i slot ->
          match slot with
          | Some b -> Format.fprintf ppf "slot %d: %dB@," i (Bytes.length b)
          | None -> Format.fprintf ppf "slot %d: (free)@," i)
        d.dt_slots
  | Anchor a ->
      Format.fprintf ppf " root=%d height=%d unique=%b name=%s" a.an_root a.an_height a.an_unique
        a.an_name);
  Format.fprintf ppf "@]"
