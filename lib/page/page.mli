(** The page model.

    Pages are the unit of I/O, latching, and page-oriented recovery. In
    buffer they are typed OCaml structures for sane in-place editing; on the
    simulated disk they exist only as their binary encoding, so nothing that
    is not serializable can survive a crash (see DESIGN.md §1 for why this
    substitution preserves the paper's recovery semantics).

    Space is accounted byte-accurately against [psize] using the same
    per-entry costs the codec produces, so splits and page deletions are
    driven by realistic occupancy. *)

open Aries_util

type leaf = {
  mutable lf_sm_bit : bool;  (** participant in an in-progress SMO (§2.1) *)
  mutable lf_delete_bit : bool;  (** a key delete happened here (§3) *)
  mutable lf_prev : Ids.page_id;
  mutable lf_next : Ids.page_id;
  lf_keys : Key.t Vec.t;  (** sorted by {!Key.compare} *)
}

type nonleaf = {
  mutable nl_sm_bit : bool;
  mutable nl_level : int;  (** >= 1; leaves are level 0 *)
  nl_children : Ids.page_id Vec.t;
  nl_high_keys : Key.t Vec.t;
      (** [length nl_children - 1] separators: child [i] holds keys strictly
          below [nl_high_keys.(i)]; the rightmost child has no high key
          (§1.1). *)
}

type data = {
  dt_owner : int;  (** heap (table) id, so heaps can be rediscovered by a
                       disk scan after restart without a catalog *)
  dt_slots : bytes option Vec.t;  (** [None] = tombstoned slot *)
}

(** Index anchor: the per-index metadata page holding the root pointer.
    Updated (and logged) when an SMO grows or shrinks the tree. *)
type anchor = {
  mutable an_root : Ids.page_id;
  mutable an_height : int;
  an_unique : bool;
  an_name : string;
}

type content =
  | Leaf of leaf
  | Nonleaf of nonleaf
  | Data of data
  | Anchor of anchor

type t = {
  pid : Ids.page_id;
  psize : int;
  mutable page_lsn : Aries_wal.Lsn.t;
  mutable content : content;
  latch : Aries_sched.Latch.t;  (** volatile; recreated on each disk read *)
}

(** {1 Construction} *)

val create : psize:int -> pid:Ids.page_id -> content -> t

val empty_leaf : unit -> content

val empty_nonleaf : level:int -> content

val empty_data : owner:int -> content

val empty_anchor : name:string -> unique:bool -> content

(** {1 Content projections} — raise [Invalid_argument] on kind mismatch,
    which only happens on corrupt structures or protocol bugs. *)

val as_leaf : t -> leaf

val as_nonleaf : t -> nonleaf

val as_data : t -> data

val as_anchor : t -> anchor

val is_leaf : t -> bool

(** {1 SM / Delete bits, uniform over index pages} *)

val sm_bit : t -> bool

val set_sm_bit : t -> bool -> unit

val delete_bit : t -> bool

val set_delete_bit : t -> bool -> unit

(** {1 Space accounting} *)

val used_bytes : t -> int

val free_space : t -> int

val header_bytes : int

(** {1 Codec} *)

val encode : t -> bytes
(** The on-disk image: [0xA2][body][u32 crc], CRC computed in place over a
    size-hinted arena (one final copy, no growth doubling). *)

val encode_into : Bytebuf.W.t -> t -> bytes
(** Same, through a caller-owned arena (reset first): the buffer pool
    keeps one page-sized writer per pool so a flush storm allocates one
    image per write instead of one arena per write. Still returns a fresh
    [bytes] — the image outlives the arena. *)

val decode : psize:int -> bytes -> t
(** Verifies the CRC (see [Faultdisk.crc_checks_enabled]), then parses the
    body zero-copy out of the image slice. Legacy v1 images (kind-tag
    first byte) still decode. *)

val equal : t -> t -> bool
(** Structural equality of pid, LSN and content (latch excluded); used by
    media-recovery tests to compare a recovered page with the live one. *)

val pp : Format.formatter -> t -> unit
