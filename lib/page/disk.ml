open Aries_util

type t = {
  psize : int;
  store : (Ids.page_id, bytes) Hashtbl.t;
  mutable next_pid : Ids.page_id;
}

let create ?(page_size = 4096) () = { psize = page_size; store = Hashtbl.create 64; next_pid = 1 }

let page_size t = t.psize

let alloc_pid t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  pid

let note_pid t pid = if pid >= t.next_pid then t.next_pid <- pid + 1

let read t pid =
  match Hashtbl.find_opt t.store pid with
  | None -> None
  | Some image ->
      Stats.incr Stats.page_reads;
      Some (Page.decode ~psize:t.psize image)

let write t page =
  Crashpoint.hit "disk.write";
  Stats.incr Stats.page_writes;
  Hashtbl.replace t.store page.Page.pid (Page.encode page)

let exists t pid = Hashtbl.mem t.store pid

let free t pid = Hashtbl.remove t.store pid

let pids t = Hashtbl.fold (fun pid _ acc -> pid :: acc) t.store [] |> List.sort compare

let image_copy t =
  let copy = { psize = t.psize; store = Hashtbl.copy t.store; next_pid = t.next_pid } in
  copy

let corrupt t pid = Hashtbl.remove t.store pid

let page_count t = Hashtbl.length t.store

let serialize t =
  let w = Bytebuf.W.create () in
  Bytebuf.W.u32 w t.psize;
  Bytebuf.W.i64 w t.next_pid;
  Bytebuf.W.u32 w (Hashtbl.length t.store);
  List.iter
    (fun pid ->
      Bytebuf.W.i64 w pid;
      Bytebuf.W.bytes w (Hashtbl.find t.store pid))
    (pids t);
  Bytebuf.W.contents w

let deserialize b =
  let r = Bytebuf.R.of_bytes b in
  let psize = Bytebuf.R.u32 r in
  let next_pid = Bytebuf.R.i64 r in
  let n = Bytebuf.R.u32 r in
  let t = { psize; store = Hashtbl.create (max 16 n); next_pid } in
  for _ = 1 to n do
    let pid = Bytebuf.R.i64 r in
    let image = Bytebuf.R.bytes r in
    Hashtbl.replace t.store pid image
  done;
  Bytebuf.R.expect_end r;
  t
