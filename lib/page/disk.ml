open Aries_util

type t = {
  psize : int;
  store : (Ids.page_id, bytes) Hashtbl.t;
  mutable next_pid : Ids.page_id;
}

let create ?(page_size = 4096) () = { psize = page_size; store = Hashtbl.create 64; next_pid = 1 }

let page_size t = t.psize

let alloc_pid t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  pid

let note_pid t pid = if pid >= t.next_pid then t.next_pid <- pid + 1

(* Stored images are treated as immutable bytes: every mutation path
   (rewrite, [corrupt_flip], the torn-write fault) replaces the binding
   with a fresh object. That is what lets [read_with_image] hand the
   stored bytes out zero-copy for the buffer pool's per-frame image
   cache, and [write_image] store a cached image without copying. *)
let read_with_image t pid =
  match Hashtbl.find_opt t.store pid with
  | None -> None
  | Some image -> (
      if Faultdisk.fail_read () then begin
        Stats.incr Stats.disk_eio_injected;
        Storage_error.raise_err ~pid Storage_error.Io_transient "injected read EIO"
      end;
      Stats.incr Stats.page_reads;
      try Some (Page.decode ~psize:t.psize image, image) with
      | Bytebuf.Corrupt msg ->
          (* a structurally unparseable stored image (e.g. a torn v1 write,
             or rot with CRC checks disabled) — typed, with the true pid *)
          raise (Storage_error.of_corrupt ~pid msg)
      | Storage_error.Error i ->
          (* CRC mismatch from the codec: its pid was sniffed from possibly
             rotten bytes; substitute the authoritative one *)
          raise (Storage_error.Error { i with pid = Some pid }))

let read t pid = Option.map fst (read_with_image t pid)

let store_image t pid image =
  let already = Crashpoint.tripped () in
  (try Crashpoint.hit "disk.write"
   with Crashpoint.Crash _ as e ->
     (* The crash landed exactly on this write.  Under the torn-write fault
        the medium keeps a half-old/half-new image instead of atomically
        preserving the old one — only on the *tripping* event (post-trip
        hits model the frozen stable state, not more I/O). *)
     if (not already) && Faultdisk.torn_write_on () then begin
       let old_image = Option.map Bytes.to_string (Hashtbl.find_opt t.store pid) in
       let torn = Faultdisk.tear ~old_image ~new_image:(Bytes.to_string image) in
       Hashtbl.replace t.store pid (Bytes.of_string torn);
       Stats.incr Stats.disk_torn_writes
     end;
     raise e);
  Stats.incr Stats.page_writes;
  let image =
    if Faultdisk.flip_now () then begin
      (* silent bit-rot: the write "succeeds" but one stored bit flips *)
      Stats.incr Stats.disk_bit_flips;
      Bytes.of_string (Faultdisk.flip_one_bit (Bytes.to_string image))
    end
    else image
  in
  Hashtbl.replace t.store pid image

let fail_write_maybe pid =
  if Faultdisk.fail_write () then begin
    Stats.incr Stats.disk_eio_injected;
    Storage_error.raise_err ~pid Storage_error.Io_transient "injected write EIO"
  end

let write t page =
  fail_write_maybe page.Page.pid;
  store_image t page.Page.pid (Page.encode page)

(* Write a pre-encoded image — the buffer pool's cached-image flush path
   and media recovery's dump copy, neither of which should pay a fresh
   encode + CRC for bytes that already exist. Same fault machinery as
   [write]. *)
let write_image t pid image =
  fail_write_maybe pid;
  store_image t pid image

let exists t pid = Hashtbl.mem t.store pid

let free t pid = Hashtbl.remove t.store pid

let pids t = Hashtbl.fold (fun pid _ acc -> pid :: acc) t.store [] |> List.sort compare

let image_copy t =
  let copy = { psize = t.psize; store = Hashtbl.copy t.store; next_pid = t.next_pid } in
  copy

let corrupt_drop t pid = Hashtbl.remove t.store pid

let corrupt_flip ~seed t pid =
  match Hashtbl.find_opt t.store pid with
  | None -> ()
  | Some image when Bytes.length image > 0 ->
      let rng = Rng.create (0xB17F11B lxor seed) in
      let b = Bytes.copy image in
      let i = Rng.int rng (Bytes.length b) and bit = Rng.int rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      Hashtbl.replace t.store pid b
  | Some _ -> ()

let page_count t = Hashtbl.length t.store

let serialize t =
  let total = Hashtbl.fold (fun _ im acc -> acc + 12 + Bytes.length im) t.store 16 in
  let w = Bytebuf.W.create ~size:total () in
  Bytebuf.W.u32 w t.psize;
  Bytebuf.W.i64 w t.next_pid;
  Bytebuf.W.u32 w (Hashtbl.length t.store);
  List.iter
    (fun pid ->
      Bytebuf.W.i64 w pid;
      Bytebuf.W.bytes w (Hashtbl.find t.store pid))
    (pids t);
  Bytebuf.W.contents w

let deserialize b =
  let last_pid = ref None in
  try
    let r = Bytebuf.R.of_bytes b in
    let psize = Bytebuf.R.u32 r in
    let next_pid = Bytebuf.R.i64 r in
    let n = Bytebuf.R.u32 r in
    (* [n] is untrusted input: use it only as a clamped size {e hint}, so a
       garbage count can't make [Hashtbl.create] eagerly allocate gigabytes
       before the per-entry reads fail the bounds check *)
    let t = { psize; store = Hashtbl.create (max 16 (min n 4096)); next_pid } in
    for _ = 1 to n do
      let pid = Bytebuf.R.i64 r in
      last_pid := Some pid;
      let image = Bytebuf.R.bytes r in
      Hashtbl.replace t.store pid image
    done;
    Bytebuf.R.expect_end r;
    t
  with Bytebuf.Corrupt msg ->
    (* a short or mangled container must surface as a typed storage error
       naming the page being decoded, not a bare Corrupt *)
    raise (Storage_error.of_corrupt ?pid:!last_pid ("disk image: " ^ msg))
