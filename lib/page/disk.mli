(** The simulated nonvolatile store.

    Holds only serialized page images — the "disk version of the data base".
    A system crash does not touch it (the buffer pool and volatile log tail
    are what disappear); a {e media} failure is simulated by [corrupt_drop]
    / [corrupt_flip], and the {!Aries_util.Faultdisk} engine can inject
    transient EIO, torn crash-writes and silent bit-rot on the live I/O
    paths.

    Page allocation hands out fresh page ids from a counter that is part of
    stable state. Freed page ids are not reused (documented simplification:
    the paper defers free-space management to the underlying storage
    manager; non-reuse sidesteps the deallocate-before-commit problem
    without affecting any protocol being studied). *)

open Aries_util

type t

val create : ?page_size:int -> unit -> t
(** Default page size 4096 bytes. Tests use small pages to force SMOs. *)

val page_size : t -> int

val alloc_pid : t -> Ids.page_id
(** A fresh, never-before-returned page id (> 0). Stable across crashes. *)

val note_pid : t -> Ids.page_id -> unit
(** Ensure the allocator never re-issues [pid]; used when redo recreates a
    page that was allocated before a crash. *)

val read : t -> Ids.page_id -> Page.t option
(** Deserializes a fresh in-memory page from the stored image.
    Raises [Storage_error.Error]: [Io_transient] under the injected-EIO
    fault (retryable), [Checksum] when the stored image fails its CRC
    (torn write / bit-rot — quarantine and repair), [Decode] when it is
    structurally unparseable. *)

val read_with_image : t -> Ids.page_id -> (Page.t * bytes) option
(** [read] plus the raw stored image the page was decoded from, zero-copy
    (stored images are immutable: every mutation replaces the binding).
    The buffer pool uses it to seed its per-frame image cache from a
    single read, so a clean page can later be written back without
    re-encoding. Same error behavior as [read]. *)

val write : t -> Page.t -> unit
(** Serializes and stores the page image (counted as a page write). The
    caller (buffer manager) is responsible for the WAL rule.
    Raises [Storage_error.Error Io_transient] under the injected-EIO fault
    (retryable). Under the torn-write fault, a {!Aries_util.Crashpoint}
    crash landing on this write leaves a half-old/half-new image on disk;
    under the bit-flip fault, the stored image may silently lose a bit. *)

val write_image : t -> Ids.page_id -> bytes -> unit
(** Store a pre-encoded page image without re-encoding — the buffer
    pool's cached-image flush path and media recovery's archive-copy
    path. The image must be a valid encoding of page [pid] (callers only
    pass images previously produced by {!Page.encode} for that page).
    Fault behavior identical to [write]. The stored image aliases the
    argument; callers must not mutate it afterwards. *)

val exists : t -> Ids.page_id -> bool

val free : t -> Ids.page_id -> unit
(** Drop the stored image (page deallocated by an SMO and flushed state). *)

val pids : t -> Ids.page_id list
(** Sorted ids of all stored pages. *)

val image_copy : t -> t
(** A fuzzy archive dump: snapshot of current images (pages may contain
    uncommitted data — media recovery replays the log over them). *)

val corrupt_drop : t -> Ids.page_id -> unit
(** Media failure, loud flavor: the stored image vanishes — subsequent
    [read] returns [None] (an unreadable sector reported by the device). *)

val corrupt_flip : seed:int -> t -> Ids.page_id -> unit
(** Media failure, silent flavor: flip one seeded-random bit of the stored
    image in place. The device reports success; only the CRC (or, with
    checks disabled, the sim oracle) can tell. No-op if the page has no
    stored image. *)

val page_count : t -> int

val serialize : t -> bytes
(** The full stable state (page images + allocator), for {!deserialize}. *)

val deserialize : bytes -> t
