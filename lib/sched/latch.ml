module Vec = Aries_util.Vec
module Stats = Aries_util.Stats
module Trace = Aries_trace.Trace

type mode = S | X

type kind = Page | Tree

type waiter = {
  wt_mode : mode;
  wt_waker : Sched.waker;
}

type t = {
  l_name : string;
  l_kind : kind;
  mutable holders : (Sched.fiber_id * mode) list;
  waiters : waiter Vec.t;
}

let create ?(kind = Page) name = { l_name = name; l_kind = kind; holders = []; waiters = Vec.create () }

let name t = t.l_name

let pp_mode ppf = function
  | S -> Format.pp_print_string ppf "S"
  | X -> Format.pp_print_string ppf "X"

let compatible_with_holders t mode =
  match (mode, t.holders) with
  | _, [] -> true
  | S, hs -> List.for_all (fun (_, m) -> m = S) hs
  | X, _ -> false

let trace_kind t = match t.l_kind with Page -> Trace.Page_latch | Tree -> Trace.Tree_latch

let trace_mode = function S -> Trace.S | X -> Trace.X

let trace_acquire t mode ~cond ~waited =
  if Trace.enabled () then
    Trace.emit
      (Trace.Latch_acquire
         { kind = trace_kind t; name = t.l_name; mode = trace_mode mode; cond; waited })

let count_acquire t waited =
  (match t.l_kind with
  | Page -> Stats.incr Stats.latch_acquires
  | Tree -> Stats.incr Stats.tree_latch_acquires);
  if waited then
    match t.l_kind with
    | Page -> Stats.incr Stats.latch_waits
    | Tree -> Stats.incr Stats.tree_latch_waits

let check_not_held t =
  let me = Sched.current () in
  if List.mem_assoc me t.holders then
    invalid_arg (Printf.sprintf "Latch %s: fiber %d already holds it (latches are not re-entrant)" t.l_name me)

let grant t mode = t.holders <- (Sched.current (), mode) :: t.holders

(* Called with a holder slot just freed: hand the latch to the longest
   waiting compatible prefix (one X, or a run of S's). *)
let wake_eligible t =
  let rec loop () =
    if not (Vec.is_empty t.waiters) then begin
      let w = Vec.get t.waiters 0 in
      let grantable =
        match (w.wt_mode, t.holders) with
        | _, [] -> true
        | S, hs -> List.for_all (fun (_, m) -> m = S) hs
        | X, _ -> false
      in
      if grantable then begin
        ignore (Vec.remove t.waiters 0);
        (* Record the holder before waking so a later waiter in this same
           release cannot sneak an incompatible grant in between. *)
        t.holders <- (Sched.waker_fiber w.wt_waker, w.wt_mode) :: t.holders;
        Sched.wake w.wt_waker;
        loop ()
      end
    end
  in
  loop ()

let acquire t mode =
  check_not_held t;
  if compatible_with_holders t mode && Vec.is_empty t.waiters then begin
    grant t mode;
    count_acquire t false;
    trace_acquire t mode ~cond:false ~waited:false
  end
  else begin
    count_acquire t true;
    Sched.suspend (fun w -> Vec.push t.waiters { wt_mode = mode; wt_waker = w });
    (* by the time we are woken, wake_eligible has already installed us as
       a holder *)
    trace_acquire t mode ~cond:false ~waited:true
  end

let try_acquire t mode =
  check_not_held t;
  if compatible_with_holders t mode && Vec.is_empty t.waiters then begin
    grant t mode;
    count_acquire t false;
    trace_acquire t mode ~cond:true ~waited:false;
    true
  end
  else begin
    if Trace.enabled () then
      Trace.emit
        (Trace.Latch_try_fail { kind = trace_kind t; name = t.l_name; mode = trace_mode mode });
    false
  end

let release t =
  let me = Sched.current () in
  if not (List.mem_assoc me t.holders) then
    invalid_arg (Printf.sprintf "Latch %s: release by non-holder fiber %d" t.l_name me);
  t.holders <- List.filter (fun (f, _) -> f <> me) t.holders;
  if Trace.enabled () then
    Trace.emit (Trace.Latch_release { kind = trace_kind t; name = t.l_name });
  wake_eligible t

let instant t mode =
  acquire t mode;
  release t

let holds t = List.mem_assoc (Sched.current ()) t.holders

let holds_mode t mode =
  match List.assoc_opt (Sched.current ()) t.holders with
  | Some m -> m = mode
  | None -> false

let holder_count t = List.length t.holders

let waiter_count t = Vec.length t.waiters
