(** Deterministic cooperative fiber scheduler.

    The paper's protocols are defined in terms of interleavings of latch,
    lock and log events between concurrently executing transactions. This
    scheduler runs each transaction (or workload driver) as a {e fiber} — a
    delimited continuation that suspends at latch/lock waits and explicit
    yield points — and interleaves fibers under an explicit, reproducible
    policy. Adversarial schedules from the paper (Figures 3 and 11) are
    scripted by choosing yield points; randomized stress tests derive every
    scheduling choice from a seed.

    All fibers run on a single OS thread; there is no parallelism, only
    concurrency, which is exactly what the correctness arguments quantify
    over. *)

type fiber_id = int

exception Killed of string
(** Raised inside a fiber that is aborted while suspended (e.g. a deadlock
    victim being woken with an error). *)

(** {1 Wakers} *)

(** A suspended fiber's resumption capability. Exactly one of [wake] or
    [abort] takes effect; later calls are ignored. *)
type waker

val wake : waker -> unit
(** Schedule the suspended fiber to resume normally. *)

val abort : waker -> exn -> unit
(** Schedule the suspended fiber to resume by raising [exn] at its
    suspension point. *)

val waker_fiber : waker -> fiber_id

(** {1 Fiber operations} (valid only inside a running scheduler) *)

val spawn : ?name:string -> (unit -> unit) -> fiber_id

(** {1 Daemon fibers}

    A {e daemon} is a scheduler-resident service fiber (the group-commit
    force daemon, the background page cleaner) whose lifetime is bounded by
    the {e user} fibers of the run: the scheduler never counts daemons when
    deciding whether work remains, and the moment the last non-daemon fiber
    finishes it flips the shutdown flag and invokes every daemon's
    registered [on_shutdown] callback (typically a condvar broadcast) so
    sleeping daemons wake, drain any pending work, and exit. A well-behaved
    daemon loop therefore checks {!shutting_down} after every wait/yield
    and returns once it is set; a daemon that keeps sleeping after shutdown
    stalls the run and is reported in {!outcome} as such. *)

val spawn_daemon :
  ?name:string -> ?on_shutdown:(unit -> unit) -> (unit -> unit) -> fiber_id
(** Spawn a fiber that does not keep the scheduler alive. [on_shutdown]
    is called (once, from the scheduler loop) when the run begins winding
    down; use it to wake the daemon out of its wait so it can observe
    {!shutting_down} and drain. *)

val shutting_down : unit -> bool
(** True once every non-daemon fiber has finished (or [run] decided to wind
    down): daemons must drain and exit. Raises outside a scheduler. *)

val daemons_now : unit -> int
(** Number of live daemon fibers — diagnostic; tests assert it returns to 0
    after a drain/join. Raises outside a scheduler. *)

val run_id : unit -> int
(** Identifier of the current scheduler incarnation (strictly increasing
    across [run] calls in the process). Services that cache wakers or
    daemon liveness across runs compare run ids to detect that state
    belonging to a dead scheduler must be discarded rather than woken.
    Raises outside a scheduler. *)

val yield : unit -> unit
(** Suspend and reschedule at the back of the run queue. *)

val suspend : (waker -> unit) -> unit
(** [suspend register] captures the current fiber's continuation as a waker,
    hands it to [register] (which typically enqueues it on some wait queue),
    and returns control to the scheduler. The call returns when another
    fiber (or the registrar itself) calls [wake], or raises when [abort] is
    called. *)

val current : unit -> fiber_id
(** Id of the running fiber. Raises if called outside the scheduler. *)

val current_name : unit -> string

val in_fiber : unit -> bool

val steps_now : unit -> int
(** Fiber slices executed so far by the running scheduler. The simulation
    harness stamps each workload operation with this value so a failing
    run's op trace pins events to scheduling steps. Raises if no scheduler
    is running. *)

val suspended_now : unit -> (fiber_id * string) list
(** The currently suspended fibers (id, name), sorted — diagnostic detail
    for stall reports. Raises if no scheduler is running. *)

val maybe_yield : unit -> unit
(** Preemption point: yields with the probability configured by
    [~yield_probability] on {!run}. Instrumented code (log appends, page
    modifications) calls this so that randomized schedules cut executions at
    interesting places. No-op outside a fiber. *)

(** {1 Running} *)

type outcome =
  | Completed  (** all fibers ran to completion *)
  | Stalled of fiber_id list
      (** no runnable fiber but these are still suspended — a lost wakeup or
          an undetected deadlock; always a bug in the caller or this library *)
  | Interrupted of int
      (** the step budget was exhausted; payload is the number of fibers
          still live. Used to simulate a system crash at a scheduling
          boundary. *)

type result = {
  outcome : outcome;
  steps : int;  (** fiber slices executed *)
  exns : (fiber_id * string * exn) list;
      (** exceptions that escaped fiber bodies (fiber id, name, exn) *)
}

type policy =
  | Fifo  (** round-robin; fully deterministic given the program *)
  | Random of int  (** pick the next runnable fiber with a seeded RNG *)

val run :
  ?policy:policy ->
  ?max_steps:int ->
  ?yield_probability:float ->
  (unit -> unit) ->
  result
(** [run main] spawns [main] as the first fiber and schedules until no fiber
    is live (or the step budget is exhausted). Not reentrant. *)

val run_value : ?policy:policy -> (unit -> 'a) -> 'a
(** Convenience: run a single computation to completion inside the scheduler
    and return its value. Raises the fiber's exception if it fails, and
    [Failure] on stall. *)

(** {1 Condition variables} *)

module Condvar : sig
  type t

  val create : string -> t

  val wait : t -> unit
  (** Suspend until signalled. As usual, re-check the predicate on wakeup. *)

  val signal : t -> unit
  (** Wake one waiter (no-op if none). *)

  val broadcast : t -> unit

  val waiters : t -> int
end
