open Effect
open Effect.Deep
module Vec = Aries_util.Vec
module Rng = Aries_util.Rng
module Stats = Aries_util.Stats
module Trace = Aries_trace.Trace

type fiber_id = int

exception Killed of string

type waker_state =
  | Pending of (unit, unit) continuation
  | Spent

type waker = {
  w_fiber : fiber_id;
  w_name : string;
  mutable w_state : waker_state;
}

type _ Effect.t += Suspend : (waker -> unit) -> unit Effect.t

type entry = {
  e_fiber : fiber_id;
  e_name : string;
  e_task : unit -> unit;
}

type sched = {
  sched_run_id : int;  (* distinguishes scheduler incarnations *)
  runq : entry Vec.t;
  mutable live : int;  (* fibers spawned and not yet finished *)
  mutable live_daemons : int;  (* subset of [live] marked as daemons *)
  mutable steps : int;
  mutable next_id : int;
  mutable cur : fiber_id;
  mutable cur_name : string;
  mutable exns : (fiber_id * string * exn) list;
  suspended : (fiber_id, string) Hashtbl.t;
  daemon_ids : (fiber_id, unit) Hashtbl.t;
  mutable shutting_down : bool;
      (* set once every non-daemon fiber has finished; daemons observe it
         via [shutting_down] and drain *)
  on_shutdown : (unit -> unit) Vec.t;
      (* wake callbacks registered by [spawn_daemon]: a sleeping daemon
         must be nudged when shutdown begins or it would stall the run *)
  policy_rng : Rng.t option;
  yield_rng : Rng.t;
  yield_probability : float;
}

let active : sched option ref = ref None

let the_sched () =
  match !active with
  | Some s -> s
  | None -> invalid_arg "Sched: no scheduler is running"

let in_fiber () = !active <> None

let current () = (the_sched ()).cur

let current_name () = (the_sched ()).cur_name

let steps_now () = (the_sched ()).steps

let suspended_now () =
  let s = the_sched () in
  Hashtbl.fold (fun id name acc -> (id, name) :: acc) s.suspended [] |> List.sort compare

let run_counter = ref 0

let run_id () = (the_sched ()).sched_run_id

let waker_fiber w = w.w_fiber

let enqueue s e = Vec.push s.runq e

let wake w =
  match w.w_state with
  | Spent -> ()
  | Pending k ->
      w.w_state <- Spent;
      let s = the_sched () in
      Hashtbl.remove s.suspended w.w_fiber;
      enqueue s { e_fiber = w.w_fiber; e_name = w.w_name; e_task = (fun () -> continue k ()) }

let abort w e =
  match w.w_state with
  | Spent -> ()
  | Pending k ->
      w.w_state <- Spent;
      let s = the_sched () in
      Hashtbl.remove s.suspended w.w_fiber;
      enqueue s { e_fiber = w.w_fiber; e_name = w.w_name; e_task = (fun () -> discontinue k e) }

let fiber_done s id name =
  s.live <- s.live - 1;
  if Hashtbl.mem s.daemon_ids id then begin
    Hashtbl.remove s.daemon_ids id;
    s.live_daemons <- s.live_daemons - 1;
    if Trace.enabled () then Trace.emit (Trace.Daemon_exit { name })
  end

(* Runs [body] as a sequence of fiber slices: the handler turns each Suspend
   into a return to the scheduler loop, capturing the continuation. *)
let fiber_task s id name body () =
  let fiber_handler =
    {
      retc = (fun () -> fiber_done s id name);
      exnc =
        (fun e ->
          fiber_done s id name;
          s.exns <- (id, name, e) :: s.exns);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let w = { w_fiber = id; w_name = name; w_state = Pending k } in
                  Hashtbl.replace s.suspended id name;
                  (* [register] may wake the waker immediately (e.g. yield);
                     that just re-enqueues the continuation. *)
                  register w)
          | _ -> None);
    }
  in
  match_with body () fiber_handler

let spawn ?name body =
  let s = the_sched () in
  let id = s.next_id in
  s.next_id <- id + 1;
  let name = match name with Some n -> n | None -> Printf.sprintf "fiber-%d" id in
  s.live <- s.live + 1;
  Stats.incr Stats.fiber_spawns;
  enqueue s { e_fiber = id; e_name = name; e_task = fiber_task s id name body };
  id

let spawn_daemon ?name ?on_shutdown body =
  let s = the_sched () in
  let id = spawn ?name body in
  Hashtbl.replace s.daemon_ids id ();
  s.live_daemons <- s.live_daemons + 1;
  Stats.incr Stats.daemon_spawns;
  (if Trace.enabled () then
     let name = match name with Some n -> n | None -> Printf.sprintf "fiber-%d" id in
     Trace.emit (Trace.Daemon_spawn { name }));
  (match on_shutdown with Some f -> Vec.push s.on_shutdown f | None -> ());
  id

let shutting_down () = (the_sched ()).shutting_down

let daemons_now () = (the_sched ()).live_daemons

let suspend register = perform (Suspend register)

let yield () =
  Stats.incr Stats.fiber_yields;
  suspend wake

let maybe_yield () =
  match !active with
  | None -> ()
  | Some s ->
      if s.yield_probability > 0.0 && Rng.float s.yield_rng 1.0 < s.yield_probability then
        yield ()

type outcome = Completed | Stalled of fiber_id list | Interrupted of int

type result = {
  outcome : outcome;
  steps : int;
  exns : (fiber_id * string * exn) list;
}

type policy = Fifo | Random of int

let run ?(policy = Fifo) ?max_steps ?(yield_probability = 0.0) main =
  if !active <> None then invalid_arg "Sched.run: already running";
  let policy_rng = match policy with Fifo -> None | Random seed -> Some (Rng.create seed) in
  incr run_counter;
  let s =
    {
      sched_run_id = !run_counter;
      runq = Vec.create ();
      live = 0;
      live_daemons = 0;
      steps = 0;
      next_id = 1;
      cur = 0;
      cur_name = "";
      exns = [];
      suspended = Hashtbl.create 16;
      daemon_ids = Hashtbl.create 4;
      shutting_down = false;
      on_shutdown = Vec.create ();
      policy_rng;
      yield_rng = Rng.create (match policy with Fifo -> 0 | Random seed -> seed + 0x5eed);
      yield_probability;
    }
  in
  active := Some s;
  Trace.run_start s.sched_run_id;
  let finish outcome =
    active := None;
    { outcome; steps = s.steps; exns = List.rev s.exns }
  in
  try
    ignore (spawn ~name:"main" main);
    let budget = match max_steps with Some n -> n | None -> max_int in
    let rec loop () =
      (* Daemon drain: once every non-daemon fiber has finished, tell the
         daemons to wind down (flush pending work, exit). Sleeping daemons
         are nudged through their registered wake callbacks; busy daemons
         observe [shutting_down] at their next loop turn. *)
      if (not s.shutting_down) && s.live - s.live_daemons = 0 && s.live_daemons > 0 then begin
        s.shutting_down <- true;
        Vec.iter (fun f -> f ()) s.on_shutdown
      end;
      if Vec.is_empty s.runq then
        if s.live = 0 then finish Completed
        else
          let blocked = Hashtbl.fold (fun id _ acc -> id :: acc) s.suspended [] in
          finish (Stalled (List.sort compare blocked))
      else if s.steps >= budget then finish (Interrupted s.live)
      else begin
        let idx =
          match s.policy_rng with
          | None -> 0
          | Some rng -> Rng.int rng (Vec.length s.runq)
        in
        let e = Vec.remove s.runq idx in
        s.steps <- s.steps + 1;
        s.cur <- e.e_fiber;
        s.cur_name <- e.e_name;
        e.e_task ();
        loop ()
      end
    in
    loop ()
  with e ->
    active := None;
    raise e

let run_value ?policy f =
  let result = ref None in
  let r = run ?policy (fun () -> result := Some (f ())) in
  (match r.exns with
  | (_, _, e) :: _ -> raise e
  | [] -> ());
  match (r.outcome, !result) with
  | Completed, Some v -> v
  | Completed, None -> failwith "Sched.run_value: fiber completed without value"
  | Stalled ids, _ ->
      failwith
        (Printf.sprintf "Sched.run_value: stalled with %d suspended fibers" (List.length ids))
  | Interrupted _, _ -> failwith "Sched.run_value: interrupted"

module Condvar = struct
  type t = { queue : waker Vec.t }

  let create _name = { queue = Vec.create () }

  let wait t = suspend (fun w -> Vec.push t.queue w)

  (* Spent wakers can linger in the queue (a waiter aborted elsewhere);
     skip them when signalling. *)
  let rec signal t =
    if not (Vec.is_empty t.queue) then begin
      let w = Vec.remove t.queue 0 in
      match w.w_state with Spent -> signal t | Pending _ -> wake w
    end

  let broadcast t =
    while not (Vec.is_empty t.queue) do
      let w = Vec.remove t.queue 0 in
      match w.w_state with Spent -> () | Pending _ -> wake w
    done

  let waiters t =
    Vec.fold (fun acc w -> match w.w_state with Pending _ -> acc + 1 | Spent -> acc) 0 t.queue
end

(* Wire the tracer to this scheduler and install the online discipline
   checker. Module-initialization side effect: every program linking the
   scheduler (i.e. everything that runs fibers) gets the checker for free
   in [Check] mode — including the whole test suite under [dune runtest]. *)
let () =
  Trace.set_context
    ~fiber:(fun () -> match !active with Some s -> s.cur | None -> -1)
    ~steps:(fun () -> match !active with Some s -> s.steps | None -> -1);
  Aries_trace.Discipline.install ()
