open Aries_util
module Key = Aries_page.Key
module Lockmgr = Aries_lock.Lockmgr
module Trace = Aries_trace.Trace

type locking = Data_only | Index_specific | Kvl | System_r | Mvcc

let locking_to_string = function
  | Data_only -> "data-only"
  | Index_specific -> "index-specific"
  | Kvl -> "kvl"
  | System_r -> "system-r"
  | Mvcc -> "mvcc"

type target = At of Key.t | Eof

type lock_req = {
  lk_name : Lockmgr.name;
  lk_mode : Lockmgr.mode;
  lk_duration : Lockmgr.duration;
}

(* Canonical string for an individual key, used as an index-specific lock
   name (value alone would merge duplicates, which is exactly what
   ARIES/IM's key locking avoids). *)
let key_string (k : Key.t) = Printf.sprintf "%s\x00%s" k.Key.value (Ids.rid_to_string k.Key.rid)

let key_name locking ix (k : Key.t) =
  match locking with
  | Data_only | Mvcc -> Lockmgr.Rid k.Key.rid
  | Index_specific -> Lockmgr.Key_value (ix, key_string k)
  | Kvl | System_r -> Lockmgr.Key_value (ix, k.Key.value)

let target_name locking ix = function At k -> key_name locking ix k | Eof -> Lockmgr.Eof ix

let req locking ix target mode duration =
  { lk_name = target_name locking ix target; lk_mode = mode; lk_duration = duration }

let req_to_string r =
  Printf.sprintf "%s %s %s"
    (Lockmgr.mode_to_string r.lk_mode)
    (Lockmgr.duration_to_string r.lk_duration)
    (Lockmgr.name_to_string r.lk_name)

(* Trace hook: record which lock requests the protocol computed for an
   operation, so a discipline-violation dump shows the intended request
   set next to the actual lock-manager traffic. *)
let traced op reqs =
  if Trace.enabled () then
    Trace.emit
      (Trace.Protocol_locks { op; reqs = String.concat "; " (List.map req_to_string reqs) });
  reqs

let fetch_locks locking ix ~current =
  traced "fetch"
    (match locking with
    | Mvcc ->
        (* snapshot reads: the version chain replaces the current/next-key
           lock entirely — a reader never touches the lock manager (R9) *)
        []
    | Data_only | Index_specific | Kvl -> [ req locking ix current Lockmgr.S Lockmgr.Commit ]
    | System_r ->
        (* baseline: S commit on the current/next value; callers add the next
           value too via a second fetch step — modeled here as a single
           current lock; the extra next-key lock is in insert/delete *)
        [ req locking ix current Lockmgr.S Lockmgr.Commit ])

let insert_locks locking ix ~unique ~key ~next ~value_exists =
  traced "insert"
    (match locking with
    | Data_only | Mvcc ->
        (* Figure 2: next key X instant; no current-key lock — the record
           manager's commit-duration X lock on the record covers the key *)
        [ req locking ix next Lockmgr.X Lockmgr.Instant ]
    | Index_specific ->
        (* Figure 2: next key X instant; current key X commit *)
        [
          req locking ix next Lockmgr.X Lockmgr.Instant;
          req locking ix (At key) Lockmgr.X Lockmgr.Commit;
        ]
    | Kvl ->
        if unique then
          [
            req locking ix next Lockmgr.X Lockmgr.Instant;
            req locking ix (At key) Lockmgr.X Lockmgr.Commit;
          ]
        else if value_exists then
          (* inserting another duplicate of an existing value: KVL only IX
             locks the value itself *)
          [ req locking ix (At key) Lockmgr.IX Lockmgr.Commit ]
        else
          [
            req locking ix next Lockmgr.IX Lockmgr.Instant;
            req locking ix (At key) Lockmgr.IX Lockmgr.Commit;
          ]
    | System_r ->
        [
          req locking ix next Lockmgr.X Lockmgr.Commit;
          req locking ix (At key) Lockmgr.X Lockmgr.Commit;
        ])

let delete_locks locking ix ~unique ~key ~next ~value_remains =
  traced "delete"
    (match locking with
    | Data_only | Mvcc ->
        (* Figure 2: next key X commit; no current-key lock under data-only *)
        [ req locking ix next Lockmgr.X Lockmgr.Commit ]
    | Index_specific ->
        (* Figure 2: next key X commit; current key X instant *)
        [
          req locking ix next Lockmgr.X Lockmgr.Commit;
          req locking ix (At key) Lockmgr.X Lockmgr.Instant;
        ]
    | Kvl ->
        if unique then
          [
            req locking ix next Lockmgr.X Lockmgr.Commit;
            req locking ix (At key) Lockmgr.X Lockmgr.Commit;
          ]
        else if value_remains then
          [ req locking ix (At key) Lockmgr.IX Lockmgr.Commit ]
        else
          [
            req locking ix next Lockmgr.X Lockmgr.Commit;
            req locking ix (At key) Lockmgr.X Lockmgr.Commit;
          ]
    | System_r ->
        [
          req locking ix next Lockmgr.X Lockmgr.Commit;
          req locking ix (At key) Lockmgr.X Lockmgr.Commit;
        ])

let fetch_locks_record_too = function
  | Data_only | Mvcc -> false
  | Index_specific | Kvl | System_r -> true

let pp_req ppf r =
  Format.fprintf ppf "%s %s %s"
    (Lockmgr.mode_to_string r.lk_mode)
    (Lockmgr.duration_to_string r.lk_duration)
    (Lockmgr.name_to_string r.lk_name)
