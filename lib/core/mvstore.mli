(** MVCC version store (protocol #5, ROADMAP item 1).

    Per-key version chains stamped with a {e commit sequence number} — the
    (epoch, gsn) pair the v3 log frames already carry — so snapshot readers
    resolve every key against committed history instead of taking key locks.
    Writers keep the full data-only ARIES/IM discipline among themselves;
    this store is volatile (rebuilt through recovery from the committed log
    history, see {!Btree.rebuild_versions}).

    Lifecycle of a version: appended {e pending} by the writer's
    insert/delete (before the page change is logged, so a chain always
    exists whenever the physical tree disagrees with committed state);
    stamped with the commit CSN by the transaction manager's txn-end hook;
    discarded if the writer rolls back (rollback undo and the abort hook
    are both tolerant of the other having won the race). The {e Vgcd}
    daemon reclaims versions below the oldest-active-snapshot horizon. *)

open Aries_util

type csn = { cs_epoch : int; cs_gsn : int }

val csn_compare : csn -> csn -> int

val csn_le : csn -> csn -> bool

val csn_to_string : csn -> string

type t

val create : unit -> t

val clear : t -> unit
(** Drop all volatile version state (crash simulation). Every dropped
    version is credited to [Stats.mvcc_versions_reclaimed] so the
    created/reclaimed census audited by [Db.leak_report] survives the
    crash. *)

(** {1 Snapshots} *)

val pin : t -> txn:Ids.txn_id -> csn:csn -> unit
(** Pin the transaction's snapshot; idempotent (the first pin wins). *)

val pinned : t -> txn:Ids.txn_id -> csn option

val unpin : t -> txn:Ids.txn_id -> unit

val live_snapshots : t -> int

val horizon : t -> current:csn -> csn
(** The oldest live snapshot CSN, or [current] if none is pinned. No live
    or future snapshot can ever need a version below it. *)

(** {1 Writers} *)

val record :
  t -> ix:Ids.index_id -> value:string -> rid:Ids.rid -> txn:Ids.txn_id -> present:bool -> unit
(** Append a pending version ([present = true] for insert, [false] for
    delete). Call {e before} logging/applying the page change. *)

val unrecord : t -> ix:Ids.index_id -> value:string -> rid:Ids.rid -> txn:Ids.txn_id -> unit
(** Rollback undo compensated one operation: drop the txn's newest pending
    version for the key. Tolerant no-op when already discarded. *)

val commit_txn : t -> txn:Ids.txn_id -> csn:csn -> unit
(** Stamp the txn's pending versions with its commit CSN and unpin its
    snapshot. *)

val abort_txn : t -> txn:Ids.txn_id -> unit
(** Discard the txn's remaining pending versions and unpin its snapshot. *)

val record_history :
  t ->
  ix:Ids.index_id ->
  value:string ->
  rid:Ids.rid ->
  txn:Ids.txn_id ->
  present:bool ->
  csn:csn option ->
  unit
(** Restart rebuild: replay one historical operation in gsn order. [Some c]
    stamps it committed at [c]; [None] leaves it pending (an in-doubt
    prepared transaction — a later [commit_txn]/[abort_txn] settles it). *)

(** {1 Snapshot reads} *)

type resolution =
  | No_chain  (** unversioned key: visibility = physical presence in the tree *)
  | Visible of csn option
      (** visible; the deciding version's CSN ([None]: the reader's own
          pending write, or the pre-history base state) *)
  | Invisible

val resolve :
  t -> ix:Ids.index_id -> value:string -> rid:Ids.rid -> txn:Ids.txn_id -> snap:csn -> resolution

val first_visible :
  t ->
  ix:Ids.index_id ->
  ?after:Ids.rid ->
  txn:Ids.txn_id ->
  snap:csn ->
  string ->
  (string * Ids.rid * csn option) option
(** The first chained key at or after [value] — strictly after
    [(value, after)] when [after] is given — visible at [snap], in
    (value, rid) order. Readers merge this with the first {e unversioned}
    in-range tree key to answer a range probe. *)

(** {1 Garbage collection} *)

val gc : t -> horizon:csn -> int
(** Reclaim versions no live or future snapshot can reach: in each chain,
    everything strictly older than the newest committed version at or below
    [horizon]; a chain reduced to that single version collapses entirely
    (it agrees with the physical tree). Returns versions reclaimed. *)

(** {1 Census} (leak audits) *)

val live_versions : t -> int

val pending_versions : t -> int

val pending_txns : t -> Ids.txn_id list

val created_total : t -> int
(** Versions ever appended to this store (mirrors
    [Stats.mvcc_versions_created], but scoped to the store's own lifetime
    so the census balance is exact regardless of sink swaps). *)

val reclaimed_total : t -> int
(** Versions ever removed from this store (GC, rollback discard, crash
    clear). [created_total - reclaimed_total] must equal {!live_versions}
    at all times — [Db.leak_report] audits exactly that. *)

(** {1 Codec} (the store's wire format; property-tested like the v3 frame
    and lock-list codecs) *)

type dump_version = { dv_present : bool; dv_csn : csn option; dv_txn : Ids.txn_id }

type dump_chain = {
  dc_value : string;
  dc_rid : Ids.rid;
  dc_base : bool;
  dc_versions : dump_version list;
}

val dump : t -> ix:Ids.index_id -> dump_chain list
(** Ordered snapshot of an index's chains (tests, debugging). *)

val encode_chains : dump_chain list -> bytes

val decode_chains : bytes -> dump_chain list
