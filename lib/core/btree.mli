(** The ARIES/IM index manager.

    Implements the full protocol of the paper on top of the ARIES substrate:

    - tree traversal with latch coupling, at most two page latches held,
      restart-from-root on SM_Bit ambiguity (Figure 4);
    - Fetch / Fetch Next with next-key locking of the not-found case and
      the conditional-lock / unlatch / unconditional-lock / revalidate dance
      (Figure 5, §2.2-2.3);
    - Insert with instant-duration next-key locking and unique-index
      checking (Figure 6, §2.4);
    - Delete with commit-duration next-key locking, Delete_Bit maintenance
      and the boundary-key POSC rule (Figure 7, §2.5, §3);
    - page split and page delete as nested top actions under the X tree
      latch, propagated bottom-up, insert-after / delete-before ordering
      (Figures 8-10);
    - page-oriented undo whenever possible, logical undo (re-traversal,
      possibly with SMOs logged as regular records) otherwise (§3);
    - pluggable locking protocols (data-only / index-specific / KVL /
      System R) — see {!Protocol}.

    One {!env} exists per (transaction manager, buffer pool) pair; it owns
    the resource-manager registration and the registry mapping index ids
    (anchor page ids) to open trees, which restart undo uses to resolve
    logical undos. *)

open Aries_util
module Key = Aries_page.Key
module Txnmgr = Aries_txn.Txnmgr

exception Unique_violation of string
(** Raised by insert into a unique index when the value is already present
    (in the committed state, per §2.4). *)

exception Key_not_found of string
(** Raised by delete of a key that is not in the index. *)

exception Structural_fault of string
(** A traversal met a structurally impossible state. With the protocol
    intact this cannot happen; the Figure-11 ablation (Delete_Bit disabled)
    provokes it. *)

type config = {
  locking : Protocol.locking;
  delete_bit_enabled : bool;  (** ablation flag for experiment E11 *)
  reset_sm_bits : bool;  (** Figure 8's optional post-SMO bit reset *)
  serialize_smo_ops : bool;
      (** strawman for Q5: take the tree latch for {e every} operation,
          modeling index managers that block all traffic during SMOs *)
  concurrent_smos : bool;
      (** the §5 extension: replace the tree latch with a tree {e lock} so
          SMOs can run concurrently — leaf-level SMOs take IX, SMOs needing
          nonleaf restructuring upgrade to X (the upgrade can deadlock, in
          which case the transaction aborts and the partial SMO rolls back
          page-oriented), and rolling-back transactions take X outright.
          The optional SM_Bit reset is suppressed in this mode (a completed
          SMO's reset could clear a concurrent SMO's still-needed bit). *)
}

val default_config : config
(** Data-only locking, Delete_Bit on, SM_Bit reset on, no strawman,
    serialized SMOs (the paper's base presentation). *)

(** {1 Environment} *)

type env

val env : ?config:config -> Txnmgr.t -> Aries_buffer.Bufpool.t -> env
(** Creates the environment and registers the index resource manager with
    the transaction manager. [config] is the default for trees opened
    implicitly during recovery. *)

val env_pool : env -> Aries_buffer.Bufpool.t

val env_mgr : env -> Txnmgr.t

val env_mvstore : env -> Mvstore.t
(** The MVCC version store backing trees opened under {!Protocol.Mvcc}:
    writers append pending versions before logging their page changes,
    the transaction manager's txn-end hook (installed by {!env}) stamps
    them with the commit CSN, and snapshot readers resolve against it
    without touching the lock manager (rule R9). *)

val rebuild_versions : env -> unit
(** Restart: clear and rebuild the (volatile) version store from the log
    history — call after Analysis has rebuilt the transaction table but
    before user transactions are served. Only in-flight transactions'
    records are replayed (pending versions for losers and in-doubt
    prepared txns); committed history needs no chains, because every
    post-restart snapshot pins above it and the redone physical tree IS
    its committed state. *)

(** {1 Trees} *)

type t

val create : ?config:config -> env -> Txnmgr.txn -> name:string -> unique:bool -> t
(** Allocate and log a new index (anchor page + empty root leaf) within the
    given transaction. The anchor page id is the index id. *)

val open_existing : ?config:config -> env -> Ids.index_id -> t
(** Open an index by its anchor page id (e.g. after restart). *)

val index_id : t -> Ids.index_id

val name : t -> string

val unique : t -> bool

val config : t -> config

(** {1 Operations} (must run inside a scheduler fiber) *)

val insert : t -> Txnmgr.txn -> value:string -> rid:Ids.rid -> unit

val delete : t -> Txnmgr.txn -> value:string -> rid:Ids.rid -> unit

val fetch :
  t ->
  Txnmgr.txn ->
  ?comparison:[ `Eq | `Ge | `Gt ] ->
  ?isolation:[ `Rr | `Cs ] ->
  string ->
  Key.t option
(** [fetch t txn v] returns the first key whose value satisfies the
    comparison against [v] (default [`Eq]), locking it for commit duration;
    in the not-found case the next key (or the EOF name) has been S-locked,
    guaranteeing repeatable read.

    [~isolation:`Cs] selects cursor stability (degree 2, §1.2): the
    current-key lock is held only while positioned, so re-reads are not
    repeatable, but only committed data is ever seen.

    Under {!Protocol.Mvcc} the fetch is a {e snapshot read} instead: the
    transaction's first fetch pins a snapshot CSN, every fetch resolves
    keys against the version store merged with the physical tree, no key
    lock is ever requested and no SMO is ever waited on (rule R9), and
    [isolation] is ignored — snapshot isolation supersedes it. *)

type cursor

val open_scan :
  t -> Txnmgr.txn -> ?comparison:[ `Ge | `Gt ] -> ?isolation:[ `Rr | `Cs ] -> string -> cursor
(** Position a range scan at the first key satisfying the condition. Under
    [`Cs] each position's lock is released when the cursor moves on. *)

val fetch_next :
  t -> Txnmgr.txn -> cursor -> ?stop:string * [ `Le | `Lt ] -> unit -> Key.t option
(** Next key in the range, [None] past the stop condition or at EOF.
    Repositions via a fresh traversal when the remembered leaf changed
    (§2.3). *)

(** {1 Tracing} (experiments E4-E8) *)

type event =
  | Ev_latch of Ids.page_id * [ `S | `X ] * [ `Acquire | `Release ]
  | Ev_tree_latch of [ `S | `X ] * [ `Acquire | `Release | `Instant | `Try_fail ]
  | Ev_lock of string * string * string * [ `Cond_ok | `Cond_fail | `Uncond ]
      (** (name, mode, duration, how) *)
  | Ev_log of string  (** index opcode name *)
  | Ev_restart of string  (** traversal/operation restarted: why *)
  | Ev_smo of [ `Split_start | `Split_end | `Pagedel_start | `Pagedel_end ]
  | Ev_undo of [ `Page_oriented | `Logical ] * string

val set_trace : env -> (event -> unit) option -> unit

val event_to_string : event -> string

(** {1 Inspection and checking} (test/bench support; no locking) *)

val to_list : t -> (string * Ids.rid) list
(** All keys in order, read without locks or transactions. *)

val check_invariants : t -> unit
(** Walks the whole tree and verifies: key order within and across leaves,
    high-key bounds, leaf chain consistency (prev/next symmetric, ordered),
    uniform leaf depth, no reachable empty page with SM_Bit = 0 (except an
    empty root), children/high-key arity. Raises [Failure] with a
    description on the first violation. *)

val height : t -> int

val page_count : t -> int
(** Pages currently reachable from the root (anchor excluded). *)

val root_pid : t -> Ids.page_id

val locate_leaf : t -> string -> Ids.page_id
(** Unlocked routing: the leaf page a search for this value reaches
    (test/bench support). *)

val leaf_pids : t -> Ids.page_id list
(** The leaf chain, left to right (unlocked; test/bench support). *)

(** {1 Hooks} (deterministic scenario scripting, e.g. experiments E3/E11) *)

val set_smo_pause : env -> (unit -> unit) option -> unit
(** A callback invoked during SMO propagation, after the leaf-level changes
    are logged but before they are posted to the parent. Scenario tests use
    it to suspend the SMO fiber at the paper's problem window. Applies to
    every tree of the environment; return normally to continue. *)
