(** Locking protocols: which lock names, modes and durations each index
    operation takes on the "current" and "next" keys.

    [Data_only] and [Index_specific] are the two ARIES/IM modes (§2.1,
    Figure 2). [Kvl] is the ARIES/KVL baseline [Moha90a] (locks on key
    {e values}, so all duplicates of a value share one lock). [System_r] is
    the System R-style baseline the paper compares against: commit-duration
    key-value locks on both current and next key for every operation — more
    locks, held longer. KVL and System R are documented approximations (see
    DESIGN.md §1); the IM modes follow Figure 2 exactly.

    [Mvcc] is the fifth protocol (ROADMAP item 1): writers keep the full
    data-only ARIES/IM discipline among themselves, but readers take {e no}
    key locks at all — each committed update appends to a per-key version
    chain stamped with a CSN derived from the commit epoch/gsn, and a reader
    resolves every key against its chain at the snapshot CSN pinned when the
    transaction first reads (see {!Mvstore}). *)

open Aries_util
module Key = Aries_page.Key
module Lockmgr = Aries_lock.Lockmgr

type locking = Data_only | Index_specific | Kvl | System_r | Mvcc

val locking_to_string : locking -> string

type target =
  | At of Key.t
  | Eof  (** past the last key: the per-index EOF lock name (§2.2) *)

type lock_req = {
  lk_name : Lockmgr.name;
  lk_mode : Lockmgr.mode;
  lk_duration : Lockmgr.duration;
}

val key_name : locking -> Ids.index_id -> Key.t -> Lockmgr.name
(** The lock name of a key: under data-only locking, the record's RID; under
    index-specific locking, the individual (value, RID) key; under KVL and
    System R, the key value. *)

val target_name : locking -> Ids.index_id -> target -> Lockmgr.name

val fetch_locks : locking -> Ids.index_id -> current:target -> lock_req list
(** [current] is the found key, or the next higher key / EOF when the
    requested value is absent (the not-found case locks the next key). *)

val insert_locks :
  locking ->
  Ids.index_id ->
  unique:bool ->
  key:Key.t ->
  next:target ->
  value_exists:bool ->
  lock_req list
(** Locks for inserting [key] whose successor in the index is [next].
    [value_exists] — another key with the same value is already present
    (only possible for nonunique indexes; KVL then locks just the value). *)

val delete_locks :
  locking ->
  Ids.index_id ->
  unique:bool ->
  key:Key.t ->
  next:target ->
  value_remains:bool ->
  lock_req list

val fetch_locks_record_too : locking -> bool
(** Whether the record manager must additionally lock the RID when fetching
    the record found via the index. Data-only locking already locked the
    record (the key lock {e is} the record lock); the index-specific family
    did not (§2.1). *)

val pp_req : Format.formatter -> lock_req -> unit
