open Aries_util
module Lsn = Aries_wal.Lsn
module Key = Aries_page.Key
module Page = Aries_page.Page
module Disk = Aries_page.Disk
module Bufpool = Aries_buffer.Bufpool
module Lockmgr = Aries_lock.Lockmgr
module Txnmgr = Aries_txn.Txnmgr
module Sched = Aries_sched.Sched
module Latch = Aries_sched.Latch
module Logrec = Aries_wal.Logrec
module Logset = Aries_wal.Logset
module Trace = Aries_trace.Trace

exception Unique_violation of string

exception Key_not_found of string

exception Structural_fault of string

type config = {
  locking : Protocol.locking;
  delete_bit_enabled : bool;
  reset_sm_bits : bool;
  serialize_smo_ops : bool;
  concurrent_smos : bool;
}

let default_config =
  {
    locking = Protocol.Data_only;
    delete_bit_enabled = true;
    reset_sm_bits = true;
    serialize_smo_ops = false;
    concurrent_smos = false;
  }

type event =
  | Ev_latch of Ids.page_id * [ `S | `X ] * [ `Acquire | `Release ]
  | Ev_tree_latch of [ `S | `X ] * [ `Acquire | `Release | `Instant | `Try_fail ]
  | Ev_lock of string * string * string * [ `Cond_ok | `Cond_fail | `Uncond ]
  | Ev_log of string
  | Ev_restart of string
  | Ev_smo of [ `Split_start | `Split_end | `Pagedel_start | `Pagedel_end ]
  | Ev_undo of [ `Page_oriented | `Logical ] * string

let event_to_string = function
  | Ev_latch (pid, m, a) ->
      Printf.sprintf "latch %s page=%d %s"
        (match m with `S -> "S" | `X -> "X")
        pid
        (match a with `Acquire -> "acquire" | `Release -> "release")
  | Ev_tree_latch (m, a) ->
      Printf.sprintf "tree-latch %s %s"
        (match m with `S -> "S" | `X -> "X")
        (match a with
        | `Acquire -> "acquire"
        | `Release -> "release"
        | `Instant -> "instant"
        | `Try_fail -> "try-fail")
  | Ev_lock (name, mode, dur, how) ->
      Printf.sprintf "lock %s %s %s %s" mode dur name
        (match how with `Cond_ok -> "cond-ok" | `Cond_fail -> "cond-fail" | `Uncond -> "uncond")
  | Ev_log op -> Printf.sprintf "log %s" op
  | Ev_restart why -> Printf.sprintf "restart: %s" why
  | Ev_smo s ->
      Printf.sprintf "smo %s"
        (match s with
        | `Split_start -> "split-start"
        | `Split_end -> "split-end"
        | `Pagedel_start -> "pagedel-start"
        | `Pagedel_end -> "pagedel-end")
  | Ev_undo (kind, what) ->
      Printf.sprintf "undo %s %s"
        (match kind with `Page_oriented -> "page-oriented" | `Logical -> "logical")
        what

type env = {
  e_mgr : Txnmgr.t;
  e_pool : Bufpool.t;
  e_trees : (Ids.index_id, t) Hashtbl.t;
  e_default_cfg : config;
  e_smo_owners : (Ids.page_id, int) Hashtbl.t;
      (** volatile: how many in-flight SMOs have set this page's SM_Bit.
          A completed SMO resets the bit only when the count drops to zero,
          so concurrent SMOs never erase each other's warnings. Lost at a
          crash, which only leaves bits conservatively stale. *)
  e_mvstore : Mvstore.t;
      (** MVCC version chains for trees opened under {!Protocol.Mvcc};
          volatile, rebuilt through recovery by {!rebuild_versions} *)
  mutable e_trace : (event -> unit) option;
  mutable e_pause : (unit -> unit) option;
}

and t = {
  bt_env : env;
  bt_ix : Ids.index_id;  (* anchor page id = index id *)
  bt_name : string;
  bt_unique : bool;
  bt_cfg : config;
  bt_latch : Latch.t;  (* the tree latch *)
}

let env_pool e = e.e_pool

let env_mgr e = e.e_mgr

let env_mvstore e = e.e_mvstore

let index_id t = t.bt_ix

let name t = t.bt_name

let unique t = t.bt_unique

let config t = t.bt_cfg

let set_trace e f = e.e_trace <- f

let set_smo_pause e f = e.e_pause <- f

let trace t ev = match t.bt_env.e_trace with Some f -> f ev | None -> ()

let max_restarts = 10_000

exception Op_restart of string
(* internal: drop everything and retry the whole operation *)

exception Traverse_restart
(* internal to [traverse] *)

exception Op_done
(* internal: the operation completed through a side path (page delete) *)

(* ------------------------------------------------------------------ *)
(* Held-page context: every latched page is also fixed and tracked, so
   restarts and exceptions release everything exactly once. *)

type ctx = { mutable held : (Page.t * Latch.mode) list }

let new_ctx () = { held = [] }

let latch_mode_tag = function Latch.S -> `S | Latch.X -> `X

let hold_fixed t ctx page mode =
  Latch.acquire page.Page.latch mode;
  trace t (Ev_latch (page.Page.pid, latch_mode_tag mode, `Acquire));
  ctx.held <- (page, mode) :: ctx.held

let hold t ctx pid mode =
  let page = Bufpool.fix t.bt_env.e_pool pid in
  hold_fixed t ctx page mode;
  page

let hold_new t ctx pid content mode =
  let page = Bufpool.fix_new t.bt_env.e_pool pid content in
  hold_fixed t ctx page mode;
  page

let drop t ctx page =
  match List.find_opt (fun (p, _) -> p == page) ctx.held with
  | None -> ()
  | Some (_, mode) ->
      ctx.held <- List.filter (fun (p, _) -> p != page) ctx.held;
      Latch.release page.Page.latch;
      trace t (Ev_latch (page.Page.pid, latch_mode_tag mode, `Release));
      Bufpool.unfix t.bt_env.e_pool page

let drop_all t ctx = List.iter (fun (p, _) -> drop t ctx p) ctx.held

(* ------------------------------------------------------------------ *)
(* Tree latch helpers *)

let tl_acquire t mode =
  Latch.acquire t.bt_latch mode;
  trace t (Ev_tree_latch (latch_mode_tag mode, `Acquire))

let tl_release t =
  Latch.release t.bt_latch;
  trace t (Ev_tree_latch (`S, `Release))

let tl_try t mode =
  if Latch.try_acquire t.bt_latch mode then begin
    trace t (Ev_tree_latch (latch_mode_tag mode, `Acquire));
    true
  end
  else begin
    trace t (Ev_tree_latch (latch_mode_tag mode, `Try_fail));
    false
  end

let tl_instant t mode =
  Latch.acquire t.bt_latch mode;
  Latch.release t.bt_latch;
  trace t (Ev_tree_latch (latch_mode_tag mode, `Instant))

(* ------------------------------------------------------------------ *)
(* Tree synchronization. By default, SMOs serialize on the per-index X tree
   latch. With [concurrent_smos] (the §5 extension) the latch becomes a
   tree LOCK: leaf-level SMOs take IX (and so run concurrently), SMOs that
   must restructure nonleaf levels upgrade to X (the upgrade can deadlock —
   the paper's §5 point — in which case the transaction is a victim and its
   partial SMO rolls back page-oriented), and rolling-back transactions take
   X outright so they never deadlock. Traversal waits and POSCs use S,
   which conflicts with any in-flight SMO. *)

let tree_lock_name t = Lockmgr.Tree_lock t.bt_ix

(* wait until no SMO is in progress; caller holds no latches *)
let sync_wait_smos t txn =
  if t.bt_cfg.concurrent_smos then begin
    trace t (Ev_tree_latch (`S, `Instant));
    Txnmgr.lock t.bt_env.e_mgr txn (tree_lock_name t) Lockmgr.S Lockmgr.Instant
  end
  else tl_instant t Latch.S

(* true iff no SMO is in progress right now; never blocks *)
let sync_try_no_smo t txn =
  if t.bt_cfg.concurrent_smos then
    Txnmgr.try_lock t.bt_env.e_mgr txn (tree_lock_name t) Lockmgr.S Lockmgr.Instant
  else if tl_try t Latch.S then begin
    tl_release t;
    true
  end
  else false

(* POSC for boundary-key deletes: S held through the delete (Figure 7) *)
let sync_posc_try_hold t txn =
  if t.bt_cfg.concurrent_smos then begin
    let ok = Txnmgr.try_lock t.bt_env.e_mgr txn (tree_lock_name t) Lockmgr.S Lockmgr.Manual in
    if ok then trace t (Ev_tree_latch (`S, `Acquire));
    ok
  end
  else tl_try t Latch.S

let sync_posc_release t txn =
  if t.bt_cfg.concurrent_smos then begin
    Lockmgr.release (Txnmgr.locks t.bt_env.e_mgr) ~txn:txn.Txnmgr.txn_id (tree_lock_name t);
    trace t (Ev_tree_latch (`S, `Release))
  end
  else tl_release t

(* SMO bracket. [exclusive] requests X up front (page deletes, root splits,
   probable nonleaf splits); otherwise IX. Rolling-back transactions always
   take X (§5) directly through the lock manager: they are exempt from
   victim selection and, by the argument of §4/§5, can never be part of a
   waits-for cycle through the tree lock. *)
let trace_smo_begin t txn ~exclusive =
  if Trace.enabled () then
    Trace.emit (Trace.Smo_begin { tree = t.bt_ix; txn = txn.Txnmgr.txn_id; exclusive })

let smo_acquire t txn ~exclusive =
  if t.bt_cfg.concurrent_smos then begin
    let mode = if exclusive then Lockmgr.X else Lockmgr.IX in
    let rolling = txn.Txnmgr.state = Txnmgr.Rolling_back in
    (if rolling then
       match
         Lockmgr.lock (Txnmgr.locks t.bt_env.e_mgr) ~txn:txn.Txnmgr.txn_id (tree_lock_name t)
           Lockmgr.X Lockmgr.Manual
       with
       | Lockmgr.Granted -> ()
       | Lockmgr.Denied | Lockmgr.Deadlock ->
           raise (Structural_fault (t.bt_name ^ ": rolling-back txn deadlocked on tree lock"))
     else Txnmgr.lock t.bt_env.e_mgr txn (tree_lock_name t) mode Lockmgr.Manual);
    trace t (Ev_tree_latch ((if exclusive then `X else `S), `Acquire));
    (* rolling-back transactions hold X outright: their SMO is exclusive *)
    trace_smo_begin t txn ~exclusive:(exclusive || rolling)
  end
  else begin
    tl_acquire t Latch.X;
    (* serial-SMO mode: the tree latch X makes every SMO exclusive *)
    trace_smo_begin t txn ~exclusive:true
  end

(* upgrade IX -> X mid-SMO; caller must hold NO latches. May abort the
   transaction (deadlock between two upgraders — §5). *)
let smo_upgrade_x t txn =
  assert t.bt_cfg.concurrent_smos;
  if txn.Txnmgr.state = Txnmgr.Rolling_back then () (* rollers hold X already *)
  else begin
    Txnmgr.lock t.bt_env.e_mgr txn (tree_lock_name t) Lockmgr.X Lockmgr.Manual;
    trace t (Ev_tree_latch (`X, `Acquire));
    (* grant point of the IX->X conversion: R3 requires we are now alone *)
    if Trace.enabled () then
      Trace.emit (Trace.Smo_upgrade { tree = t.bt_ix; txn = txn.Txnmgr.txn_id })
  end

let smo_release t txn =
  (* emitted before the lock/latch release so a successor SMO's begin can
     never be interleaved ahead of this end in the event stream *)
  if Trace.enabled () then
    Trace.emit (Trace.Smo_end { tree = t.bt_ix; txn = txn.Txnmgr.txn_id });
  if t.bt_cfg.concurrent_smos then begin
    Lockmgr.release (Txnmgr.locks t.bt_env.e_mgr) ~txn:txn.Txnmgr.txn_id (tree_lock_name t);
    trace t (Ev_tree_latch (`X, `Release))
  end
  else tl_release t

(* ------------------------------------------------------------------ *)
(* Logging + applying *)

let log_apply t txn page body ~undoable =
  let op = Ixlog.op_of_body body in
  trace t (Ev_log (Ixlog.op_name op));
  let lsn =
    Txnmgr.log_update t.bt_env.e_mgr txn ~page:page.Page.pid ~undoable ~rm_id:Ixlog.rm_id ~op
      ~body:(Ixlog.encode body) ()
  in
  Apply.apply page body;
  page.Page.page_lsn <- lsn;
  Bufpool.mark_dirty t.bt_env.e_pool page lsn;
  Sched.maybe_yield ()

let log_clr_apply t txn page body ~undo_stream ~undo_nxt =
  let op = Ixlog.op_of_body body in
  trace t (Ev_log ("clr:" ^ Ixlog.op_name op));
  let lsn =
    Txnmgr.log_clr t.bt_env.e_mgr txn ~page:page.Page.pid ~undo_stream ~rm_id:Ixlog.rm_id ~op
      ~body:(Ixlog.encode body) ~undo_nxt ()
  in
  Apply.apply page body;
  page.Page.page_lsn <- lsn;
  Bufpool.mark_dirty t.bt_env.e_pool page lsn

(* MVCC (protocol #5): the pending version is appended BEFORE the page
   change is logged/applied — [log_apply] yields, so recording after it
   would open a window where the physical tree disagrees with committed
   state and no chain marks the key as in flight. *)
let mv_record t txn ~key ~present =
  if t.bt_cfg.locking = Protocol.Mvcc then
    Mvstore.record t.bt_env.e_mvstore ~ix:t.bt_ix ~value:key.Key.value ~rid:key.Key.rid
      ~txn:txn.Txnmgr.txn_id ~present

(* rollback undo compensated one operation: drop its pending version *)
let mv_unrecord t txn ~key =
  if t.bt_cfg.locking = Protocol.Mvcc then
    Mvstore.unrecord t.bt_env.e_mvstore ~ix:t.bt_ix ~value:key.Key.value ~rid:key.Key.rid
      ~txn:txn.Txnmgr.txn_id

(* ------------------------------------------------------------------ *)
(* Key comparison. In a unique index the search logic compares values only
   (§1.1: "For a unique index, the search logic is called to look for only
   the key value"). *)

let kcmp t a b = if t.bt_unique then String.compare a.Key.value b.Key.value else Key.compare a b

(* a probe compares a stored key against the search target:
   negative = key before target, 0 = match, positive = key at/after *)
let probe_exact t target k = kcmp t k target

let probe_ge v k = if String.compare k.Key.value v < 0 then -1 else 1

let probe_gt v k = if String.compare k.Key.value v <= 0 then -1 else 1

let probe_after t after k = if kcmp t k after <= 0 then -1 else 1

(* first index whose key has probe >= 0; Vec.length if none *)
let lower_bound keys probe =
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if probe (Vec.get keys mid) >= 0 then bs lo mid else bs (mid + 1) hi
  in
  bs 0 (Vec.length keys)

(* ------------------------------------------------------------------ *)
(* Anchor access *)

let read_anchor t ctx =
  let page = hold t ctx t.bt_ix Latch.S in
  let a = Page.as_anchor page in
  let root = a.Page.an_root and height = a.Page.an_height in
  drop t ctx page;
  (root, height)

(* ------------------------------------------------------------------ *)
(* Traversal (Figure 4).

   Returns the leaf (held: fixed + latched, X for writers) and the ancestor
   path as (pid, noted page LSN) pairs, root first. [ignore_sm] is set when
   the caller holds the tree latch/lock exclusively: no SMO can then be in
   progress, so SM_Bit ambiguity cannot arise and stale bits are ignored.

   On ambiguity (rightmost route with SM_Bit = 1), waiting for the SMO is
   not by itself enough to make progress when bits are left stale (resets
   disabled, or the concurrent-SMO mode which must leave them): the retry
   descends while HOLDING the tree sync in S — no SMO can be in flight, so
   the stale bit is provably stale and the rightmost route is trustworthy. *)
let traverse t ctx txn ~write ~ignore_sm ~probe =
  Stats.incr Stats.tree_traversals;
  (* If the transaction already holds the tree lock (it is inside its own
     SMO), the S hold is a temporary conversion: remember the prior mode and
     downgrade back instead of releasing. *)
  let prior_mode = ref None in
  let hold_s () =
    if t.bt_cfg.concurrent_smos then begin
      prior_mode :=
        Lockmgr.holds (Txnmgr.locks t.bt_env.e_mgr) ~txn:txn.Txnmgr.txn_id (tree_lock_name t);
      Txnmgr.lock t.bt_env.e_mgr txn (tree_lock_name t) Lockmgr.S Lockmgr.Manual
    end
    else Latch.acquire t.bt_latch Latch.S;
    trace t (Ev_tree_latch (`S, `Acquire))
  in
  let release_s () =
    (if t.bt_cfg.concurrent_smos then
       let locks = Txnmgr.locks t.bt_env.e_mgr in
       match !prior_mode with
       | Some m -> Lockmgr.downgrade locks ~txn:txn.Txnmgr.txn_id (tree_lock_name t) m
       | None -> Lockmgr.release locks ~txn:txn.Txnmgr.txn_id (tree_lock_name t)
     else Latch.release t.bt_latch);
    trace t (Ev_tree_latch (`S, `Release))
  in
  let rec attempt n ~trusted =
    if n > max_restarts then raise (Structural_fault (t.bt_name ^ ": traversal livelock"));
    let root, _height = read_anchor t ctx in
    let rec go parent path pid =
      let page = Bufpool.fix t.bt_env.e_pool pid in
      let was_leaf = Page.is_leaf page in
      let mode = if was_leaf && write then Latch.X else Latch.S in
      hold_fixed t ctx page mode;
      if Page.is_leaf page <> was_leaf then begin
        (* the page changed identity before we got the latch *)
        drop t ctx page;
        (match parent with Some p -> drop t ctx p | None -> ());
        raise Traverse_restart
      end;
      match page.Page.content with
      | Page.Leaf _ ->
          (match parent with Some p -> drop t ctx p | None -> ());
          (page, List.rev path)
      | Page.Nonleaf nl ->
          let nc = Vec.length nl.Page.nl_children in
          let nk = Vec.length nl.Page.nl_high_keys in
          (* Figure 4's condition: trusting the rightmost-child route needs
             SM_Bit = 0; routing under a separator is always safe *)
          let past_all = nk = 0 || probe (Vec.get nl.Page.nl_high_keys (nk - 1)) < 0 in
          let ambiguous =
            nc = 0 || (past_all && nl.Page.nl_sm_bit && (not ignore_sm) && not trusted)
          in
          if ambiguous then begin
            drop t ctx page;
            (match parent with Some p -> drop t ctx p | None -> ());
            if ignore_sm || trusted then
              raise (Structural_fault (t.bt_name ^ ": empty nonleaf under tree latch"))
            else raise Traverse_restart
          end
          else begin
            let idx =
              let rec find i =
                if i >= nk then nc - 1
                else if probe (Vec.get nl.Page.nl_high_keys i) > 0 then i
                else find (i + 1)
              in
              find 0
            in
            let child = Vec.get nl.Page.nl_children idx in
            (match parent with Some p -> drop t ctx p | None -> ());
            go (Some page) ((pid, page.Page.page_lsn) :: path) child
          end
      | Page.Data _ | Page.Anchor _ ->
          raise (Structural_fault (Printf.sprintf "%s: non-index page %d in tree" t.bt_name pid))
    in
    match go None [] root with
    | result -> result
    | exception Traverse_restart ->
        trace t (Ev_restart "traversal: SM_Bit ambiguity");
        (* Figure 4: wait for the unfinished SMO, then search again — the
           retry holds S so a stale bit cannot re-trigger the ambiguity *)
        hold_s ();
        Fun.protect ~finally:release_s (fun () -> attempt (n + 1) ~trusted:true)
  in
  attempt 0 ~trusted:false

(* ------------------------------------------------------------------ *)
(* Next-key location (§2.2/2.4: "the next key may be on the next page";
   the next page is latched while holding the latch on the current page).
   Walks right over the chain, skipping empty pages (mid-SMO victims),
   releasing intermediates as it couples. The landing page stays held. *)

type next_loc =
  | Nk_here of int  (* index within the starting leaf *)
  | Nk_right of Page.t * int  (* on a later page, which is now held *)
  | Nk_eof

let next_key_loc t ctx leaf pos =
  let l = Page.as_leaf leaf in
  if pos < Vec.length l.Page.lf_keys then Nk_here pos
  else begin
    let rec go cur =
      let cl = Page.as_leaf cur in
      if cl.Page.lf_next = Ids.nil_page then begin
        if cur != leaf then drop t ctx cur;
        Nk_eof
      end
      else begin
        let next = hold t ctx cl.Page.lf_next Latch.S in
        if cur != leaf then drop t ctx cur;
        let nl = Page.as_leaf next in
        if Vec.length nl.Page.lf_keys > 0 then Nk_right (next, 0) else go next
      end
    in
    go leaf
  end

let loc_key leaf loc =
  match loc with
  | Nk_here i -> Protocol.At (Vec.get (Page.as_leaf leaf).Page.lf_keys i)
  | Nk_right (p, i) -> Protocol.At (Vec.get (Page.as_leaf p).Page.lf_keys i)
  | Nk_eof -> Protocol.Eof

(* ------------------------------------------------------------------ *)
(* The conditional-lock / unlatch / unconditional-lock / retry dance
   (§2.2). [`Ok]: everything granted while the latches stayed held.
   [`Retry]: latches were released, the blocking lock has now been granted
   unconditionally, and the operation must recompute its state. *)

let acquire_locks t ctx txn (reqs : Protocol.lock_req list) =
  let mgr = t.bt_env.e_mgr in
  let rec go = function
    | [] -> `Ok
    | (r : Protocol.lock_req) :: rest ->
        let ev how =
          Ev_lock
            ( Lockmgr.name_to_string r.Protocol.lk_name,
              Lockmgr.mode_to_string r.Protocol.lk_mode,
              Lockmgr.duration_to_string r.Protocol.lk_duration,
              how )
        in
        if Txnmgr.try_lock mgr txn r.Protocol.lk_name r.Protocol.lk_mode r.Protocol.lk_duration
        then begin
          trace t (ev `Cond_ok);
          go rest
        end
        else begin
          trace t (ev `Cond_fail);
          (* The unlatch before the unconditional request is the essence of
             the §2.2 dance. The [fault_lock_uncond_under_latch] switch
             deliberately skips it, waiting for the lock with the page
             latches still held — the undetectable-deadlock hazard the
             online discipline checker must flag as an R1 violation. *)
          if not (Crashpoint.fault_active Crashpoint.fault_lock_uncond_under_latch) then
            drop_all t ctx;
          Txnmgr.lock mgr txn r.Protocol.lk_name r.Protocol.lk_mode r.Protocol.lk_duration;
          trace t (ev `Uncond);
          `Retry
        end
  in
  go reqs

(* ------------------------------------------------------------------ *)
(* Tree creation / opening *)

let make_tree ?config env ~ix ~name ~unique =
  let cfg = match config with Some c -> c | None -> env.e_default_cfg in
  let t =
    {
      bt_env = env;
      bt_ix = ix;
      bt_name = name;
      bt_unique = unique;
      bt_cfg = cfg;
      bt_latch = Latch.create ~kind:Latch.Tree (Printf.sprintf "tree-%d" ix);
    }
  in
  Hashtbl.replace env.e_trees ix t;
  t

let create ?config env txn ~name ~unique =
  let pool = env.e_pool in
  let disk = Bufpool.disk pool in
  let anchor_pid = Disk.alloc_pid disk in
  let root_pid = Disk.alloc_pid disk in
  let t = make_tree ?config env ~ix:anchor_pid ~name ~unique in
  let ctx = new_ctx () in
  Fun.protect
    ~finally:(fun () -> drop_all t ctx)
    (fun () ->
      let anchor = hold_new t ctx anchor_pid (Page.empty_anchor ~name ~unique) Latch.X in
      log_apply t txn anchor
        (Ixlog.Format_anchor { name; unique; root = root_pid; height = 0 })
        ~undoable:false;
      let root = hold_new t ctx root_pid (Page.empty_leaf ()) Latch.X in
      log_apply t txn root
        (Ixlog.Format_leaf { keys = []; prev = Ids.nil_page; next = Ids.nil_page; sm_bit = false })
        ~undoable:false);
  t

let open_existing ?config env ix =
  match Hashtbl.find_opt env.e_trees ix with
  | Some t -> t
  | None ->
      let page = Bufpool.fix env.e_pool ix in
      let a = Page.as_anchor page in
      let name = a.Page.an_name and unique = a.Page.an_unique in
      Bufpool.unfix env.e_pool page;
      make_tree ?config env ~ix ~name ~unique

let tree_for env ix =
  match Hashtbl.find_opt env.e_trees ix with Some t -> t | None -> open_existing env ix

(* ------------------------------------------------------------------ *)
(* SMO: page split (Figures 8 and 9), bottom-up, as a nested top action
   under the X tree latch. *)

(* split point: first index such that the kept prefix holds at least half
   the used bytes; clamped so both halves are nonempty *)
let split_point keys =
  let n = Vec.length keys in
  assert (n >= 2);
  let total = Vec.fold (fun acc k -> acc + Key.on_page_cost k) 0 keys in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc + Key.on_page_cost (Vec.get keys i) in
      if 2 * acc >= total then i + 1 else go (i + 1) acc
  in
  max 1 (min (n - 1) (go 0 0))

let smo_pause t = match t.bt_env.e_pause with Some f -> f () | None -> ()

(* SM_Bit ownership bookkeeping: [touch] registers a page whose bit this SMO
   set (deduplicated into [touched]); [finish_touched] releases ownership
   and, if the SMO completed and no other SMO still owns the page, logs the
   optional redo-only bit reset (Figure 8). *)
let touch t touched pid =
  if not (List.mem pid !touched) then begin
    touched := pid :: !touched;
    let owners = t.bt_env.e_smo_owners in
    Hashtbl.replace owners pid (1 + Option.value ~default:0 (Hashtbl.find_opt owners pid))
  end

let finish_touched t ctx txn touched ~completed ~skip =
  let owners = t.bt_env.e_smo_owners in
  List.iter
    (fun pid ->
      let n = Option.value ~default:1 (Hashtbl.find_opt owners pid) - 1 in
      if n <= 0 then Hashtbl.remove owners pid else Hashtbl.replace owners pid n;
      if completed && n <= 0 && t.bt_cfg.reset_sm_bits && not (List.mem pid skip) then begin
        let page = hold t ctx pid Latch.X in
        log_apply t txn page (Ixlog.Reset_bits { sm = true; delete = false }) ~undoable:false;
        drop t ctx page
      end)
    (List.sort_uniq compare !touched)

(* Post (sep, new_pid) to the parent of [child_pid]; splits nonleaf pages
   recursively. [path]: remaining ancestors, nearest parent last. Under the
   X tree latch, inside the NTA. *)
let rec post_to_parent t ctx txn ~path ~child_pid ~sep ~new_pid ~touched ~smo_mode =
  match path with
  | [] ->
      (* root split: grow the tree — a nonleaf-level SMO, X required *)
      if t.bt_cfg.concurrent_smos && !smo_mode = `IX then begin
        (* caller ensured no latches are held when entering with path=[];
           the brief drop below covers the recursive cases *)
        drop_all t ctx;
        smo_upgrade_x t txn;
        smo_mode := `X
      end;
      let disk = Bufpool.disk t.bt_env.e_pool in
      let new_root_pid = Disk.alloc_pid disk in
      let anchor = hold t ctx t.bt_ix Latch.X in
      let a = Page.as_anchor anchor in
      let old_height = a.Page.an_height in
      let level = old_height + 1 in
      let new_root = hold_new t ctx new_root_pid (Page.empty_nonleaf ~level) Latch.X in
      log_apply t txn new_root
        (Ixlog.Format_nonleaf
           { level; children = [ child_pid; new_pid ]; high_keys = [ sep ]; sm_bit = true })
        ~undoable:true;
      touch t touched new_root_pid;
      drop t ctx new_root;
      log_apply t txn anchor
        (Ixlog.Anchor_set
           { old_root = child_pid; new_root = new_root_pid; old_height; new_height = level })
        ~undoable:true;
      drop t ctx anchor
  | ancestors ->
      let parent_pid, _noted = List.nth ancestors (List.length ancestors - 1) in
      let path_above = List.filteri (fun i _ -> i < List.length ancestors - 1) ancestors in
      let parent = hold t ctx parent_pid Latch.X in
      let nl = Page.as_nonleaf parent in
      let idx =
        match Vec.find_index (fun c -> c = child_pid) nl.Page.nl_children with
        | Some i -> i
        | None ->
            raise
              (Structural_fault
                 (Printf.sprintf "%s: child %d missing from parent %d during SMO" t.bt_name
                    child_pid parent_pid))
      in
      let cost = Key.on_page_cost sep + 8 in
      if Page.free_space parent >= cost then begin
        log_apply t txn parent
          (Ixlog.Nl_insert_child { child_idx = idx + 1; sep_idx = idx; sep; child = new_pid })
          ~undoable:true;
        touch t touched parent_pid;
        drop t ctx parent
      end
      else if t.bt_cfg.concurrent_smos && !smo_mode = `IX then begin
        (* the parent must split: a nonleaf-level SMO needs the X tree lock
           (§5). Release latches, upgrade (which may abort this txn on an
           upgrade deadlock), and retry the post: the parent may have been
           reshaped meanwhile. *)
        drop t ctx parent;
        drop_all t ctx;
        smo_upgrade_x t txn;
        smo_mode := `X;
        post_to_parent t ctx txn ~path:ancestors ~child_pid ~sep ~new_pid ~touched ~smo_mode
      end
      else begin
        (* split the parent, then retry the post into the correct half *)
        let disk = Bufpool.disk t.bt_env.e_pool in
        let m_pid = Disk.alloc_pid disk in
        let nc = Vec.length nl.Page.nl_children in
        let j = max 1 (min (nc - 2) (nc / 2)) in
        (* left keeps children[0..j] and high_keys[0..j-1]; high_keys[j] is
           pushed up; the right page gets the rest *)
        let pushup = Vec.get nl.Page.nl_high_keys j in
        let right_children = ref [] and right_keys = ref [] in
        for i = nc - 1 downto j + 1 do
          right_children := Vec.get nl.Page.nl_children i :: !right_children
        done;
        for i = Vec.length nl.Page.nl_high_keys - 1 downto j + 1 do
          right_keys := Vec.get nl.Page.nl_high_keys i :: !right_keys
        done;
        let level = nl.Page.nl_level in
        let m_page = hold_new t ctx m_pid (Page.empty_nonleaf ~level) Latch.X in
        log_apply t txn m_page
          (Ixlog.Format_nonleaf
             { level; children = !right_children; high_keys = !right_keys; sm_bit = true })
          ~undoable:true;
        touch t touched m_pid;
        drop t ctx m_page;
        log_apply t txn parent
          (Ixlog.Nl_truncate
             {
               keep_children = j + 1;
               removed_children = !right_children;
               (* the dropped suffix of high keys, left-to-right, so that a
                  page-oriented undo re-appends them in order *)
               removed_high_keys = pushup :: !right_keys;
             })
          ~undoable:true;
        touch t touched parent_pid;
        drop t ctx parent;
        post_to_parent t ctx txn ~path:path_above ~child_pid:parent_pid ~sep:pushup ~new_pid:m_pid
          ~touched ~smo_mode;
        (* now post the original (sep, new_pid) into the proper half *)
        let target_pid = if idx <= j then parent_pid else m_pid in
        let target = hold t ctx target_pid Latch.X in
        let tnl = Page.as_nonleaf target in
        let idx2 =
          match Vec.find_index (fun c -> c = child_pid) tnl.Page.nl_children with
          | Some i -> i
          | None -> raise (Structural_fault (t.bt_name ^ ": lost child after parent split"))
        in
        log_apply t txn target
          (Ixlog.Nl_insert_child { child_idx = idx2 + 1; sep_idx = idx2; sep; child = new_pid })
          ~undoable:true;
        drop t ctx target
      end

(* the split body, assuming the X tree latch is already held *)
let split_smo_held t txn ~probe ~needed ~exclusive =
  let ctx = new_ctx () in
  Fun.protect
    ~finally:(fun () -> drop_all t ctx)
    (fun () ->
      (* under the X tree latch/lock no other SMO runs, so stale bits can be
         ignored; under IX they cannot *)
      let ignore_sm = exclusive || not t.bt_cfg.concurrent_smos in
      let leaf, path = traverse t ctx txn ~write:true ~ignore_sm ~probe in
      let l = Page.as_leaf leaf in
      if Page.free_space leaf >= needed || Vec.length l.Page.lf_keys < 2 then
        (* someone made room (or the page is too empty to split) *)
        ()
      else begin
        Stats.incr Stats.smo_splits;
        let touched = ref [] in
        let smo_done = ref false in
        touch t touched leaf.Page.pid;
        let nta = Txnmgr.nta_begin txn in
        let disk = Bufpool.disk t.bt_env.e_pool in
        let n_pid = Disk.alloc_pid disk in
        let sp = split_point l.Page.lf_keys in
        let moved = ref [] in
        for i = Vec.length l.Page.lf_keys - 1 downto sp do
          moved := Vec.get l.Page.lf_keys i :: !moved
        done;
        let moved = !moved in
        let sep = List.hd moved in
        let r_pid = l.Page.lf_next in
        let n_page = hold_new t ctx n_pid (Page.empty_leaf ()) Latch.X in
        log_apply t txn n_page
          (Ixlog.Format_leaf { keys = moved; prev = leaf.Page.pid; next = r_pid; sm_bit = true })
          ~undoable:true;
        touch t touched n_pid;
        log_apply t txn leaf
          (Ixlog.Leaf_truncate { removed = moved; old_next = r_pid; new_next = n_pid })
          ~undoable:true;
        drop t ctx n_page;
        drop t ctx leaf;
        if r_pid <> Ids.nil_page then begin
          let r_page = hold t ctx r_pid Latch.X in
          let rl = Page.as_leaf r_page in
          log_apply t txn r_page
            (Ixlog.Leaf_relink
               {
                 old_prev = leaf.Page.pid;
                 new_prev = n_pid;
                 old_next = rl.Page.lf_next;
                 new_next = rl.Page.lf_next;
               })
            ~undoable:true;
          touch t touched r_pid;
          drop t ctx r_page
        end;
        (* the Figure-3 window: leaf-level split done, parent not posted *)
        smo_pause t;
        let smo_mode = ref (if exclusive then `X else `IX) in
        Fun.protect
          ~finally:(fun () ->
            (* on abort, ownership is released without resets (the rollback
               compensation clears the bits) *)
            if not !smo_done then finish_touched t ctx txn touched ~completed:false ~skip:[])
          (fun () ->
            post_to_parent t ctx txn ~path ~child_pid:leaf.Page.pid ~sep ~new_pid:n_pid ~touched
              ~smo_mode;
            ignore (Txnmgr.nta_end t.bt_env.e_mgr txn nta);
            smo_done := true);
        finish_touched t ctx txn touched ~completed:true ~skip:[]
      end)

(* unlatched estimate: will this split need to restructure nonleaf levels?
   Used to choose IX vs X up front in §5 mode; a wrong "no" is corrected by
   the mid-SMO upgrade in post_to_parent. *)
let split_probably_nonleaf t ~probe =
  let pool = t.bt_env.e_pool in
  let anchor = Bufpool.fix pool t.bt_ix in
  let a = Page.as_anchor anchor in
  let root = a.Page.an_root in
  Bufpool.unfix pool anchor;
  let rec go parent pid =
    let page = Bufpool.fix pool pid in
    let r =
      match page.Page.content with
      | Page.Leaf l -> (
          let max_key_cost =
            Vec.fold (fun acc k -> max acc (Key.on_page_cost k)) 24 l.Page.lf_keys
          in
          match parent with
          | None -> true (* root leaf: a split grows the tree *)
          | Some free -> free < max_key_cost + 8)
      | Page.Nonleaf nl ->
          let nk = Vec.length nl.Page.nl_high_keys in
          let idx =
            let rec find i =
              if i >= nk then Vec.length nl.Page.nl_children - 1
              else if probe (Vec.get nl.Page.nl_high_keys i) > 0 then i
              else find (i + 1)
            in
            find 0
          in
          let child =
            if Vec.length nl.Page.nl_children = 0 then Ids.nil_page
            else Vec.get nl.Page.nl_children idx
          in
          if child = Ids.nil_page then true else go (Some (Page.free_space page)) child
      | Page.Data _ | Page.Anchor _ -> true
    in
    Bufpool.unfix pool page;
    r
  in
  go None root

(* split entry point for forward processing: caller holds nothing *)
let split_smo t txn ~probe ~needed =
  trace t (Ev_smo `Split_start);
  let exclusive = (not t.bt_cfg.concurrent_smos) || split_probably_nonleaf t ~probe in
  smo_acquire t txn ~exclusive;
  Fun.protect
    ~finally:(fun () ->
      smo_release t txn;
      trace t (Ev_smo `Split_end))
    (fun () -> split_smo_held t txn ~probe ~needed ~exclusive)

(* ------------------------------------------------------------------ *)
(* SMO: page delete (Figures 8 and 10). [leaf_pid] is already empty and
   unlatched; the caller holds the X tree latch. Runs as its own NTA. *)
let page_delete_smo_inner t txn ~leaf_pid ~path =
  Stats.incr Stats.smo_page_deletes;
  let ctx = new_ctx () in
  Fun.protect
    ~finally:(fun () -> drop_all t ctx)
    (fun () ->
      let touched = ref [] in
      let smo_done = ref false in
      let nta = Txnmgr.nta_begin txn in
      (* links are stable under the tree latch *)
      let leaf = hold t ctx leaf_pid Latch.X in
      let l = Page.as_leaf leaf in
      let p_pid = l.Page.lf_prev and n_pid = l.Page.lf_next in
      drop t ctx leaf;
      (* latch strictly left to right *)
      if p_pid <> Ids.nil_page then begin
        let p = hold t ctx p_pid Latch.X in
        let pl = Page.as_leaf p in
        if pl.Page.lf_next <> leaf_pid then
          raise (Structural_fault (t.bt_name ^ ": leaf chain mismatch during page delete"));
        log_apply t txn p
          (Ixlog.Leaf_relink
             {
               old_prev = pl.Page.lf_prev;
               new_prev = pl.Page.lf_prev;
               old_next = leaf_pid;
               new_next = n_pid;
             })
          ~undoable:true;
        touch t touched p_pid;
        drop t ctx p
      end;
      let leaf = hold t ctx leaf_pid Latch.X in
      log_apply t txn leaf
        (Ixlog.Leaf_unlink { old_prev = p_pid; old_next = n_pid })
        ~undoable:true;
      touch t touched leaf_pid;
      drop t ctx leaf;
      if n_pid <> Ids.nil_page then begin
        let np = hold t ctx n_pid Latch.X in
        let nl = Page.as_leaf np in
        if nl.Page.lf_prev <> leaf_pid then
          raise (Structural_fault (t.bt_name ^ ": leaf chain mismatch during page delete"));
        log_apply t txn np
          (Ixlog.Leaf_relink
             {
               old_prev = leaf_pid;
               new_prev = p_pid;
               old_next = nl.Page.lf_next;
               new_next = nl.Page.lf_next;
             })
          ~undoable:true;
        touch t touched n_pid;
        drop t ctx np
      end;
      smo_pause t;
      (* remove from ancestors, collapsing as needed *)
      let rec remove_from_parent path child_pid =
        match path with
        | [] ->
            raise (Structural_fault (t.bt_name ^ ": page delete reached above the root"))
        | ancestors ->
            let parent_pid, _ = List.nth ancestors (List.length ancestors - 1) in
            let path_above = List.filteri (fun i _ -> i < List.length ancestors - 1) ancestors in
            let parent = hold t ctx parent_pid Latch.X in
            let nl = Page.as_nonleaf parent in
            let idx =
              match Vec.find_index (fun c -> c = child_pid) nl.Page.nl_children with
              | Some i -> i
              | None ->
                  raise
                    (Structural_fault
                       (Printf.sprintf "%s: child %d missing from parent %d" t.bt_name child_pid
                          parent_pid))
            in
            let nc = Vec.length nl.Page.nl_children in
            let level = nl.Page.nl_level in
            let body =
              if nc = 1 then
                Ixlog.Nl_remove_child
                  { child_idx = idx; child = child_pid; sep_idx = 0; sep = None; level }
              else if idx < nc - 1 then
                Ixlog.Nl_remove_child
                  {
                    child_idx = idx;
                    child = child_pid;
                    sep_idx = idx;
                    sep = Some (Vec.get nl.Page.nl_high_keys idx);
                    level;
                  }
              else
                Ixlog.Nl_remove_child
                  {
                    child_idx = idx;
                    child = child_pid;
                    sep_idx = idx - 1;
                    sep = Some (Vec.get nl.Page.nl_high_keys (idx - 1));
                    level;
                  }
            in
            log_apply t txn parent body ~undoable:true;
            touch t touched parent_pid;
            let remaining = Vec.length nl.Page.nl_children in
            drop t ctx parent;
            if remaining = 0 then
              (* the parent was a single-child chain node: remove it too *)
              remove_from_parent path_above parent_pid
            else if remaining = 1 && path_above = [] then begin
              (* the root has a single child left: shrink the tree *)
              let anchor = hold t ctx t.bt_ix Latch.X in
              let a = Page.as_anchor anchor in
              if a.Page.an_root = parent_pid && a.Page.an_height >= 1 then begin
                let parent = hold t ctx parent_pid Latch.X in
                let pnl = Page.as_nonleaf parent in
                let only_child = Vec.get pnl.Page.nl_children 0 in
                log_apply t txn anchor
                  (Ixlog.Anchor_set
                     {
                       old_root = parent_pid;
                       new_root = only_child;
                       old_height = a.Page.an_height;
                       new_height = a.Page.an_height - 1;
                     })
                  ~undoable:true;
                (* orphan the old root *)
                log_apply t txn parent
                  (Ixlog.Format_nonleaf { level; children = []; high_keys = []; sm_bit = true })
                  ~undoable:true;
                drop t ctx parent
              end;
              drop t ctx anchor
            end
      in
      Fun.protect
        ~finally:(fun () ->
          if not !smo_done then finish_touched t ctx txn touched ~completed:false ~skip:[])
        (fun () ->
          remove_from_parent path leaf_pid;
          ignore (Txnmgr.nta_end t.bt_env.e_mgr txn nta);
          smo_done := true);
      (* skip the orphan leaf: it is unreachable and must not masquerade as
         a live empty page *)
      finish_touched t ctx txn touched ~completed:true ~skip:[ leaf_pid ])

(* ------------------------------------------------------------------ *)
(* Operation drivers *)

let with_retries t what f =
  let rec go n =
    if n > max_restarts then raise (Structural_fault (t.bt_name ^ ": livelock in " ^ what));
    (* preemption point: read-only operations otherwise never suspend, which
       would let a polling reader starve every other fiber *)
    Sched.maybe_yield ();
    let ctx = new_ctx () in
    match Fun.protect ~finally:(fun () -> drop_all t ctx) (fun () -> f ctx) with
    | v -> v
    | exception Op_restart why ->
        trace t (Ev_restart why);
        go (n + 1)
  in
  go 0

let serialize_point t = if t.bt_cfg.serialize_smo_ops then tl_instant t Latch.X

(* --- Insert (Figure 6) --- *)

let insert t txn ~value ~rid =
  let key = Key.make value rid in
  let probe = probe_exact t key in
  serialize_point t;
  with_retries t "insert" (fun ctx ->
      let leaf, _path = traverse t ctx txn ~write:true ~ignore_sm:false ~probe in
      let l = Page.as_leaf leaf in
      (* Figure 6: the SM_Bit | Delete_Bit check comes FIRST — before any
         decision based on the leaf's contents, which an incomplete SMO may
         have moved to an unposted sibling *)
      let sm = Page.sm_bit leaf in
      let del = Page.delete_bit leaf in
      if sm || (del && t.bt_cfg.delete_bit_enabled) then begin
        if sync_try_no_smo t txn then
          (* no SMO in progress: stale bits, reset with the insert record *)
          ()
        else begin
          drop_all t ctx;
          sync_wait_smos t txn;
          raise (Op_restart "waited for SMO (bits set)")
        end
      end;
      let pos = lower_bound l.Page.lf_keys probe in
      (* duplicate detection: a same-value key in a unique index needs the
         committed-state check (§2.4); an exact duplicate is always an error *)
      (match
         if pos < Vec.length l.Page.lf_keys then
           let k = Vec.get l.Page.lf_keys pos in
           if probe k = 0 then Some k else None
         else None
       with
      | Some k ->
          let lock_name = Protocol.key_name t.bt_cfg.locking t.bt_ix k in
          let req =
            { Protocol.lk_name = lock_name; lk_mode = Lockmgr.S; lk_duration = Lockmgr.Commit }
          in
          (match acquire_locks t ctx txn [ req ] with
          | `Ok ->
              raise
                (Unique_violation
                   (Printf.sprintf "index %s: value %S already present" t.bt_name value))
          | `Retry -> raise (Op_restart "unique check lock wait"))
      | None -> ());
      (* space check: split first, insert after (Figure 8) *)
      let needed = Key.on_page_cost key in
      if needed > leaf.Page.psize - Page.header_bytes then begin
        drop_all t ctx;
        invalid_arg
          (Printf.sprintf "Btree.insert: key of %d bytes cannot fit a %d-byte page" needed
             leaf.Page.psize)
      end;
      if Page.free_space leaf < needed then begin
        drop_all t ctx;
        split_smo t txn ~probe ~needed;
        raise (Op_restart "page split")
      end;
      (* next-key locking *)
      let loc = next_key_loc t ctx leaf pos in
      let next = loc_key leaf loc in
      let value_exists =
        (not t.bt_unique)
        && ((pos > 0 && String.equal (Vec.get l.Page.lf_keys (pos - 1)).Key.value value)
           ||
           match next with
           | Protocol.At k -> String.equal k.Key.value value
           | Protocol.Eof -> false)
      in
      let reqs =
        Protocol.insert_locks t.bt_cfg.locking t.bt_ix ~unique:t.bt_unique ~key ~next ~value_exists
      in
      (match acquire_locks t ctx txn reqs with
      | `Ok -> ()
      | `Retry -> raise (Op_restart "insert lock wait"));
      mv_record t txn ~key ~present:true;
      log_apply t txn leaf
        (Ixlog.Insert_key { ix = t.bt_ix; key; reset_sm = sm; reset_delete = del })
        ~undoable:true;
      drop_all t ctx)

(* --- Delete (Figure 7) --- *)

(* the page-delete flow: re-run the delete protocol under the X tree latch,
   then run the SMO (Figure 8 bottom path). Returns [`Lock_wait reqs] when a
   conditional lock was denied: no lock may be waited for while the tree
   latch is held (§4), so the caller waits after this function's finalizer
   has released the latch, then restarts. *)
let delete_via_page_delete t txn ~probe =
  trace t (Ev_smo `Pagedel_start);
  (* page deletes restructure parents by definition: always exclusive *)
  smo_acquire t txn ~exclusive:true;
  let ctx = new_ctx () in
  Fun.protect
    ~finally:(fun () ->
      drop_all t ctx;
      smo_release t txn;
      trace t (Ev_smo `Pagedel_end))
    (fun () ->
      let leaf, path = traverse t ctx txn ~write:true ~ignore_sm:true ~probe in
      let l = Page.as_leaf leaf in
      let pos = lower_bound l.Page.lf_keys probe in
      let present = pos < Vec.length l.Page.lf_keys && probe (Vec.get l.Page.lf_keys pos) = 0 in
      if not present then raise (Op_restart "page-delete: key moved");
      if Vec.length l.Page.lf_keys > 1 then raise (Op_restart "page-delete: page refilled");
      let root, _ = read_anchor t ctx in
      let is_root = leaf.Page.pid = root in
      let stored_key = Vec.get l.Page.lf_keys pos in
      (* Figure 7 locking, conditional only: no lock waits under the tree
         latch (§4) *)
      let loc = next_key_loc t ctx leaf (pos + 1) in
      let next = loc_key leaf loc in
      let reqs =
        Protocol.delete_locks t.bt_cfg.locking t.bt_ix ~unique:t.bt_unique ~key:stored_key ~next
          ~value_remains:false
      in
      let denied =
        List.filter
          (fun (r : Protocol.lock_req) ->
            let ok =
              Txnmgr.try_lock t.bt_env.e_mgr txn r.Protocol.lk_name r.Protocol.lk_mode
                r.Protocol.lk_duration
            in
            trace t
              (Ev_lock
                 ( Lockmgr.name_to_string r.Protocol.lk_name,
                   Lockmgr.mode_to_string r.Protocol.lk_mode,
                   Lockmgr.duration_to_string r.Protocol.lk_duration,
                   if ok then `Cond_ok else `Cond_fail ));
            not ok)
          reqs
      in
      if denied <> [] then `Lock_wait denied
      else begin
        (* the key delete itself, logged before the SMO starts (Figure 10),
           with SM_Bit set so the emptied page is never reachable clean *)
        mv_record t txn ~key:stored_key ~present:false;
        log_apply t txn leaf
          (Ixlog.Delete_key
             {
               ix = t.bt_ix;
               key = stored_key;
               reset_sm = false;
               set_sm = not is_root;
               mark_delete_bit = false;
             })
          ~undoable:true;
        let leaf_pid = leaf.Page.pid in
        drop_all t ctx;
        if not is_root then page_delete_smo_inner t txn ~leaf_pid ~path;
        `Done
      end)

let delete t txn ~value ~rid =
  let key = Key.make value rid in
  let probe = probe_exact t key in
  serialize_point t;
  try
    with_retries t "delete" (fun ctx ->
        let leaf, _path = traverse t ctx txn ~write:true ~ignore_sm:false ~probe in
        let l = Page.as_leaf leaf in
        (* Figure 7: the SM_Bit check comes FIRST — an incomplete SMO may
           have moved the key to an unposted sibling, so no content-based
           decision (including "not found") is trustworthy before it *)
        let sm = Page.sm_bit leaf in
        if sm then begin
          if sync_try_no_smo t txn then ()
          else begin
            drop_all t ctx;
            sync_wait_smos t txn;
            raise (Op_restart "waited for SMO (SM bit)")
          end
        end;
        let pos = lower_bound l.Page.lf_keys probe in
        let present = pos < Vec.length l.Page.lf_keys && probe (Vec.get l.Page.lf_keys pos) = 0 in
        if not present then begin
          drop_all t ctx;
          raise (Key_not_found (Printf.sprintf "index %s: %S not found" t.bt_name value))
        end;
        let stored_key = Vec.get l.Page.lf_keys pos in
        if t.bt_unique && Ids.compare_rid stored_key.Key.rid rid <> 0 then begin
          drop_all t ctx;
          raise
            (Key_not_found
               (Printf.sprintf "index %s: %S present with a different RID" t.bt_name value))
        end;
        let nkeys = Vec.length l.Page.lf_keys in
        if nkeys = 1 then begin
          (* the delete will empty the page: switch to the page-delete flow *)
          drop_all t ctx;
          match delete_via_page_delete t txn ~probe with
          | `Done -> raise Op_done
          | `Lock_wait reqs ->
              (* the tree latch is released now: wait, then retry (§4) *)
              List.iter
                (fun (r : Protocol.lock_req) ->
                  Txnmgr.lock t.bt_env.e_mgr txn r.Protocol.lk_name r.Protocol.lk_mode
                    r.Protocol.lk_duration;
                  trace t
                    (Ev_lock
                       ( Lockmgr.name_to_string r.Protocol.lk_name,
                         Lockmgr.mode_to_string r.Protocol.lk_mode,
                         Lockmgr.duration_to_string r.Protocol.lk_duration,
                         `Uncond )))
                reqs;
              raise (Op_restart "page-delete lock wait")
        end;
        (* next-key lock (commit-duration X: the tripping point, §2.6) *)
        let loc = next_key_loc t ctx leaf (pos + 1) in
        let next = loc_key leaf loc in
        let value_remains =
          (not t.bt_unique)
          && ((pos > 0 && String.equal (Vec.get l.Page.lf_keys (pos - 1)).Key.value value)
             || (pos + 1 < Vec.length l.Page.lf_keys
                && String.equal (Vec.get l.Page.lf_keys (pos + 1)).Key.value value))
        in
        let reqs =
          Protocol.delete_locks t.bt_cfg.locking t.bt_ix ~unique:t.bt_unique ~key:stored_key
            ~next ~value_remains
        in
        (match acquire_locks t ctx txn reqs with
        | `Ok -> ()
        | `Retry -> raise (Op_restart "delete lock wait"));
        (* boundary key? establish a POSC and hold it through the delete
           (Figure 7 / §3) *)
        let boundary = pos = 0 || pos = nkeys - 1 in
        let tree_latched =
          if boundary then
            if sync_posc_try_hold t txn then true
            else begin
              drop_all t ctx;
              sync_wait_smos t txn;
              raise (Op_restart "boundary delete waited for SMO")
            end
          else false
        in
        Fun.protect
          ~finally:(fun () -> if tree_latched then sync_posc_release t txn)
          (fun () ->
            mv_record t txn ~key:stored_key ~present:false;
            log_apply t txn leaf
              (Ixlog.Delete_key
                 {
                   ix = t.bt_ix;
                   key = stored_key;
                   reset_sm = sm;
                   set_sm = false;
                   mark_delete_bit = (not tree_latched) && t.bt_cfg.delete_bit_enabled;
                 })
              ~undoable:true);
        drop_all t ctx)
  with Op_done -> ()

(* --- Fetch (Figure 5) --- *)

let fetch_probe comparison value =
  match comparison with `Eq | `Ge -> probe_ge value | `Gt -> probe_gt value

(* Cursor stability (degree 2): current-key locks are held only while the
   cursor is positioned on the key, not until commit. Implemented by taking
   the Figure-2 fetch locks with Manual duration and releasing them when
   the cursor moves (or when a standalone fetch returns). *)
let cs_adjust isolation reqs =
  match isolation with
  | `Rr -> reqs
  | `Cs ->
      List.map
        (fun (r : Protocol.lock_req) ->
          if r.Protocol.lk_duration = Lockmgr.Commit then
            { r with Protocol.lk_duration = Lockmgr.Manual }
          else r)
        reqs

let cs_release t txn (reqs : Protocol.lock_req list) =
  List.iter
    (fun (r : Protocol.lock_req) ->
      ignore
        (Lockmgr.release_manual (Txnmgr.locks t.bt_env.e_mgr) ~txn:txn.Txnmgr.txn_id
           r.Protocol.lk_name))
    reqs

(* --- Mvcc snapshot reads (protocol #5, rule R9) ---

   Readers never touch the lock manager: the version store replaces both
   the current-key and the next-key lock. They also never park on the SMO
   sync: the descent below ignores SM_Bit ambiguity entirely, which is
   sound for a reader that afterwards walks RIGHT along the leaf chain —
   a split links the new sibling into the chain before (and regardless of
   whether) its separator is posted, so the rightmost route can only land
   at-or-left of the target, never beyond it. A mid-SMO structural hiccup
   (empty nonleaf, page changing identity) just drops everything, yields,
   and retries: the SMO holds no lock the reader needs and completes in a
   bounded number of steps. *)

let mv_descend t ctx ~probe =
  Stats.incr Stats.tree_traversals;
  let rec attempt n =
    if n > max_restarts then raise (Structural_fault (t.bt_name ^ ": mvcc reader livelock"));
    let root, _height = read_anchor t ctx in
    let rec go parent pid =
      let page = Bufpool.fix t.bt_env.e_pool pid in
      let was_leaf = Page.is_leaf page in
      hold_fixed t ctx page Latch.S;
      if Page.is_leaf page <> was_leaf then begin
        drop t ctx page;
        (match parent with Some p -> drop t ctx p | None -> ());
        raise Traverse_restart
      end;
      match page.Page.content with
      | Page.Leaf _ ->
          (match parent with Some p -> drop t ctx p | None -> ());
          page
      | Page.Nonleaf nl ->
          let nc = Vec.length nl.Page.nl_children in
          let nk = Vec.length nl.Page.nl_high_keys in
          if nc = 0 then begin
            drop t ctx page;
            (match parent with Some p -> drop t ctx p | None -> ());
            raise Traverse_restart
          end
          else begin
            let idx =
              let rec find i =
                if i >= nk then nc - 1
                else if probe (Vec.get nl.Page.nl_high_keys i) > 0 then i
                else find (i + 1)
              in
              find 0
            in
            let child = Vec.get nl.Page.nl_children idx in
            (match parent with Some p -> drop t ctx p | None -> ());
            go (Some page) child
          end
      | Page.Data _ | Page.Anchor _ ->
          raise (Structural_fault (Printf.sprintf "%s: non-index page %d in tree" t.bt_name pid))
    in
    match go None root with
    | leaf -> leaf
    | exception Traverse_restart ->
        trace t (Ev_restart "mvcc traversal: mid-SMO retry");
        drop_all t ctx;
        Sched.yield ();
        attempt (n + 1)
  in
  attempt 0

(* pin the snapshot at the first Mvcc read: everything committed so far —
   CSN = current (epoch, gsn) — is visible, every later commit is not *)
let mvcc_snap t txn =
  let store = t.bt_env.e_mvstore in
  let txid = txn.Txnmgr.txn_id in
  match Mvstore.pinned store ~txn:txid with
  | Some c -> c
  | None ->
      let logs = Txnmgr.logs t.bt_env.e_mgr in
      let c =
        { Mvstore.cs_epoch = Logset.current_epoch logs; cs_gsn = Logset.current_gsn logs }
      in
      Mvstore.pin store ~txn:txid ~csn:c;
      if Trace.enabled () then
        Trace.emit
          (Trace.Mvcc_pin { txn = txid; epoch = c.Mvstore.cs_epoch; gsn = c.Mvstore.cs_gsn });
      c

(* The range probe both fetch and scans reduce to: the first key at/after
   the probe visible at the snapshot. Two candidates, merged by (value,
   rid) order:

   - the first {e physically present} visible key — a latch-coupled
     rightward leaf walk resolving each chained key against the snapshot
     (an unversioned key is visible as-is: a chain exists whenever the
     tree can disagree with committed state, and GC collapses a chain only
     once its single surviving version agrees with the tree below every
     live snapshot);
   - the first {e chained} visible key ([Mvstore.first_visible]) — covers
     keys visible at the snapshot but no longer (or not yet) in the tree.

   The tree walk runs FIRST: while this reader's pin holds, a chain it
   skipped cannot collapse (its deciding version is at or above the GC
   horizon), so the store scan is guaranteed to still see every skipped
   key; the reverse order would race a writer chaining a key between the
   store scan and the walk. [skip_value] excludes one value from the store
   scan (strict bounds; the tree probes exclude it already). *)
let mvcc_locate t txn ~probe ~from_value ~after_rid ~skip_value =
  Sched.maybe_yield ();
  let store = t.bt_env.e_mvstore in
  let txid = txn.Txnmgr.txn_id in
  let snap = mvcc_snap t txn in
  Stats.incr Stats.mvcc_snapshot_reads;
  if Trace.enabled () then Trace.emit (Trace.Mvcc_read_begin { txn = txid });
  Fun.protect
    ~finally:(fun () ->
      if Trace.enabled () then Trace.emit (Trace.Mvcc_read_end { txn = txid }))
    (fun () ->
      if Crashpoint.fault_active Crashpoint.fault_mvcc_reader_key_lock then begin
        (* meta-fault: the lock-manager interaction R9 exists to forbid *)
        let k = Key.make from_value { Ids.rid_page = 0; Ids.rid_slot = 0 } in
        ignore
          (Txnmgr.try_lock t.bt_env.e_mgr txn
             (Protocol.key_name Protocol.Data_only t.bt_ix k)
             Lockmgr.S Lockmgr.Instant)
      end;
      let emit_read c visible =
        if Trace.enabled () then
          match c with
          | Some c ->
              Trace.emit
                (Trace.Mvcc_read
                   { txn = txid; epoch = c.Mvstore.cs_epoch; gsn = c.Mvstore.cs_gsn; visible })
          | None -> ()
      in
      let ctx = new_ctx () in
      let tree_cand =
        Fun.protect
          ~finally:(fun () -> drop_all t ctx)
          (fun () ->
            let leaf = mv_descend t ctx ~probe in
            let rec walk leaf pos =
              let l = Page.as_leaf leaf in
              if pos >= Vec.length l.Page.lf_keys then begin
                let next = l.Page.lf_next in
                if next = Ids.nil_page then None
                else begin
                  let np = hold t ctx next Latch.S in
                  drop t ctx leaf;
                  walk np 0
                end
              end
              else
                let k = Vec.get l.Page.lf_keys pos in
                if probe k < 0 then walk leaf (pos + 1)
                else
                  match
                    Mvstore.resolve store ~ix:t.bt_ix ~value:k.Key.value ~rid:k.Key.rid
                      ~txn:txid ~snap
                  with
                  | Mvstore.No_chain -> Some k
                  | Mvstore.Visible c ->
                      emit_read c true;
                      Some k
                  | Mvstore.Invisible -> walk leaf (pos + 1)
            in
            walk leaf (lower_bound (Page.as_leaf leaf).Page.lf_keys probe))
      in
      let rec store_cand after =
        match Mvstore.first_visible store ~ix:t.bt_ix ?after ~txn:txid ~snap from_value with
        | Some (v, rid, _) when (match skip_value with Some s -> String.equal v s | None -> false)
          ->
            store_cand (Some rid)
        | r -> r
      in
      match (tree_cand, store_cand after_rid) with
      | None, None -> None
      | Some k, None -> Some k
      | None, Some (v, rid, c) ->
          emit_read c true;
          Some (Key.make v rid)
      | Some k, Some (v, rid, c) ->
          let store_first =
            let cv = String.compare v k.Key.value in
            cv < 0 || (cv = 0 && Ids.compare_rid rid k.Key.rid < 0)
          in
          if store_first then begin
            emit_read c true;
            Some (Key.make v rid)
          end
          else Some k)

let mvcc_fetch t txn ~comparison value =
  let probe = fetch_probe comparison value in
  let skip_value = match comparison with `Gt -> Some value | `Eq | `Ge -> None in
  match mvcc_locate t txn ~probe ~from_value:value ~after_rid:None ~skip_value with
  | None -> None
  | Some k -> (
      match comparison with
      | `Eq -> if String.equal k.Key.value value then Some k else None
      | `Ge | `Gt -> Some k)

let fetch t txn ?(comparison = `Eq) ?(isolation = `Rr) value =
  if t.bt_cfg.locking = Protocol.Mvcc then begin
    (* snapshot isolation supersedes the RR/CS lock-duration distinction *)
    ignore isolation;
    mvcc_fetch t txn ~comparison value
  end
  else begin
  let probe = fetch_probe comparison value in
  serialize_point t;
  with_retries t "fetch" (fun ctx ->
      let leaf, _path = traverse t ctx txn ~write:false ~ignore_sm:false ~probe in
      let l = Page.as_leaf leaf in
      let pos = lower_bound l.Page.lf_keys probe in
      let loc = next_key_loc t ctx leaf pos in
      let found = loc_key leaf loc in
      let reqs =
        cs_adjust isolation (Protocol.fetch_locks t.bt_cfg.locking t.bt_ix ~current:found)
      in
      (match acquire_locks t ctx txn reqs with
      | `Ok -> ()
      | `Retry -> raise (Op_restart "fetch lock wait"));
      drop_all t ctx;
      (* under CS the lock's job (seeing only committed state) is done once
         granted under the latch; a standalone fetch releases immediately *)
      if isolation = `Cs then cs_release t txn reqs;
      match found with
      | Protocol.Eof -> None
      | Protocol.At k -> (
          match comparison with
          | `Eq -> if String.equal k.Key.value value then Some k else None
          | `Ge | `Gt -> Some k))
  end

(* --- Scans (Fetch Next, §2.3) --- *)

type cursor = {
  cr_bound : string;
  cr_strict : bool;
  cr_isolation : [ `Rr | `Cs ];
  mutable cr_locked : Protocol.lock_req list;  (* CS: locks to drop on move *)
  mutable cr_last : Key.t option;
  mutable cr_leaf : Ids.page_id;
  mutable cr_lsn : Lsn.t;
  mutable cr_pos : int;  (* position of the last returned key *)
  mutable cr_done : bool;
}

let open_scan t txn ?(comparison = `Ge) ?(isolation = `Rr) value =
  ignore t;
  ignore txn;
  {
    cr_bound = value;
    cr_strict = (comparison = `Gt);
    cr_isolation = isolation;
    cr_locked = [];
    cr_last = None;
    cr_leaf = Ids.nil_page;
    cr_lsn = Lsn.nil;
    cr_pos = -1;
    cr_done = false;
  }

let fetch_next t txn cursor ?stop () =
  if cursor.cr_done then None
  else if t.bt_cfg.locking = Protocol.Mvcc then begin
    (* snapshot scan: reposition strictly after the last returned key (by
       value only in a unique index, matching [probe_after]); no cursor
       locks, no fast-path page revalidation — the snapshot cannot move *)
    let probe, from_value, after_rid, skip_value =
      match cursor.cr_last with
      | Some k ->
          ( probe_after t k,
            k.Key.value,
            Some k.Key.rid,
            if t.bt_unique then Some k.Key.value else None )
      | None ->
          if cursor.cr_strict then
            (probe_gt cursor.cr_bound, cursor.cr_bound, None, Some cursor.cr_bound)
          else (probe_ge cursor.cr_bound, cursor.cr_bound, None, None)
    in
    match mvcc_locate t txn ~probe ~from_value ~after_rid ~skip_value with
    | None ->
        cursor.cr_done <- true;
        None
    | Some k ->
        let beyond =
          match stop with
          | None -> false
          | Some (bound, `Le) -> String.compare k.Key.value bound > 0
          | Some (bound, `Lt) -> String.compare k.Key.value bound >= 0
        in
        if beyond then begin
          cursor.cr_done <- true;
          None
        end
        else begin
          cursor.cr_last <- Some k;
          Some k
        end
  end
  else begin
    serialize_point t;
    let probe =
      match cursor.cr_last with
      | Some k -> probe_after t k
      | None -> if cursor.cr_strict then probe_gt cursor.cr_bound else probe_ge cursor.cr_bound
    in
    with_retries t "fetch_next" (fun ctx ->
        (* fast path (§2.3): the remembered leaf did not change since the
           last positioning *)
        let leaf, pos =
          let fast =
            if cursor.cr_leaf = Ids.nil_page then None
            else begin
              let page = hold t ctx cursor.cr_leaf Latch.S in
              if Page.is_leaf page && Lsn.compare page.Page.page_lsn cursor.cr_lsn = 0 then
                Some (page, cursor.cr_pos + 1)
              else begin
                drop t ctx page;
                None
              end
            end
          in
          match fast with
          | Some (page, pos) -> (page, pos)
          | None ->
              let leaf, _ = traverse t ctx txn ~write:false ~ignore_sm:false ~probe in
              (leaf, lower_bound (Page.as_leaf leaf).Page.lf_keys probe)
        in
        let loc = next_key_loc t ctx leaf pos in
        let found = loc_key leaf loc in
        let reqs =
          cs_adjust cursor.cr_isolation
            (Protocol.fetch_locks t.bt_cfg.locking t.bt_ix ~current:found)
        in
        (match acquire_locks t ctx txn reqs with
        | `Ok -> ()
        | `Retry -> raise (Op_restart "fetch_next lock wait"));
        (* cursor stability: the cursor has moved — drop the previous
           position's lock, keep the new one until the next move *)
        if cursor.cr_isolation = `Cs then begin
          cs_release t txn cursor.cr_locked;
          cursor.cr_locked <- reqs
        end;
        let beyond_stop k =
          match stop with
          | None -> false
          | Some (bound, `Le) -> String.compare k.Key.value bound > 0
          | Some (bound, `Lt) -> String.compare k.Key.value bound >= 0
        in
        let result =
          match loc with
          | Nk_eof ->
              cursor.cr_done <- true;
              None
          | Nk_here i ->
              let k = Vec.get (Page.as_leaf leaf).Page.lf_keys i in
              if beyond_stop k then begin
                cursor.cr_done <- true;
                None
              end
              else begin
                cursor.cr_last <- Some k;
                cursor.cr_leaf <- leaf.Page.pid;
                cursor.cr_lsn <- leaf.Page.page_lsn;
                cursor.cr_pos <- i;
                Some k
              end
          | Nk_right (p, i) ->
              let k = Vec.get (Page.as_leaf p).Page.lf_keys i in
              if beyond_stop k then begin
                cursor.cr_done <- true;
                None
              end
              else begin
                cursor.cr_last <- Some k;
                cursor.cr_leaf <- p.Page.pid;
                cursor.cr_lsn <- p.Page.page_lsn;
                cursor.cr_pos <- i;
                Some k
              end
        in
        drop_all t ctx;
        result)
  end

(* ------------------------------------------------------------------ *)
(* Undo (§3): page-oriented whenever possible, logical otherwise. *)

let undo_insert t txn (r : Logrec.t) ~key =
  mv_unrecord t txn ~key;
  let ctx = new_ctx () in
  let clr_body =
    Ixlog.Delete_key { ix = t.bt_ix; key; reset_sm = false; set_sm = false; mark_delete_bit = false }
  in
  Fun.protect
    ~finally:(fun () -> drop_all t ctx)
    (fun () ->
      let page = hold t ctx r.Logrec.page Latch.X in
      let page_oriented_ok =
        Page.is_leaf page
        && (not (Page.sm_bit page))
        &&
        let l = Page.as_leaf page in
        Vec.length l.Page.lf_keys > 1
        && match Vec.binary_search ~compare:Key.compare l.Page.lf_keys key with
           | Ok _ -> true
           | Error _ -> false
      in
      if page_oriented_ok then begin
        Stats.incr Stats.page_oriented_undos;
        trace t (Ev_undo (`Page_oriented, "insert"));
        log_clr_apply t txn page clr_body ~undo_stream:r.Logrec.stream ~undo_nxt:r.Logrec.prev_lsn
      end
      else begin
        (* logical undo: re-traverse under the X tree latch (§4) *)
        drop t ctx page;
        Stats.incr Stats.logical_undos;
        trace t (Ev_undo (`Logical, "insert"));
        smo_acquire t txn ~exclusive:true;
        Fun.protect
          ~finally:(fun () -> smo_release t txn)
          (fun () ->
            let probe k = Key.compare k key in
            let leaf, path = traverse t ctx txn ~write:true ~ignore_sm:true ~probe in
            let l = Page.as_leaf leaf in
            (match Vec.binary_search ~compare:Key.compare l.Page.lf_keys key with
            | Error _ ->
                raise
                  (Structural_fault
                     (Printf.sprintf "%s: logical undo cannot find key %s" t.bt_name
                        (Key.to_string key)))
            | Ok _ -> ());
            let root, _ = read_anchor t ctx in
            let empties = Vec.length l.Page.lf_keys = 1 && leaf.Page.pid <> root in
            let leaf_pid = leaf.Page.pid in
            log_clr_apply t txn leaf
              (Ixlog.Delete_key
                 { ix = t.bt_ix; key; reset_sm = false; set_sm = empties; mark_delete_bit = false })
              ~undo_stream:r.Logrec.stream ~undo_nxt:r.Logrec.prev_lsn;
            drop_all t ctx;
            if empties then
              (* a page-delete SMO during undo: logged with regular records
                 inside its own NTA (§3) *)
              page_delete_smo_inner t txn ~leaf_pid ~path)
      end)

let undo_delete t txn (r : Logrec.t) ~key =
  mv_unrecord t txn ~key;
  let ctx = new_ctx () in
  let clr_body = Ixlog.Insert_key { ix = t.bt_ix; key; reset_sm = false; reset_delete = false } in
  Fun.protect
    ~finally:(fun () -> drop_all t ctx)
    (fun () ->
      let page = hold t ctx r.Logrec.page Latch.X in
      let page_oriented_ok =
        Page.is_leaf page
        && (not (Page.sm_bit page))
        && Page.free_space page >= Key.on_page_cost key
        &&
        (* "bound" (§3): both a lower and a higher key present on the page *)
        let l = Page.as_leaf page in
        match Vec.binary_search ~compare:Key.compare l.Page.lf_keys key with
        | Ok _ -> false
        | Error pos -> pos > 0 && pos < Vec.length l.Page.lf_keys
      in
      if page_oriented_ok then begin
        Stats.incr Stats.page_oriented_undos;
        trace t (Ev_undo (`Page_oriented, "delete"));
        log_clr_apply t txn page clr_body ~undo_stream:r.Logrec.stream ~undo_nxt:r.Logrec.prev_lsn
      end
      else begin
        drop t ctx page;
        Stats.incr Stats.logical_undos;
        trace t (Ev_undo (`Logical, "delete"));
        smo_acquire t txn ~exclusive:true;
        Fun.protect
          ~finally:(fun () -> smo_release t txn)
          (fun () ->
            let probe k = Key.compare k key in
            let rec attempt n =
              if n > 4 then raise (Structural_fault (t.bt_name ^ ": undo-delete split loop"));
              let leaf, _path = traverse t ctx txn ~write:true ~ignore_sm:true ~probe in
              if Page.free_space leaf < Key.on_page_cost key then begin
                (* a split SMO during undo: regular records, own NTA (§3);
                   we already hold the tree latch *)
                drop_all t ctx;
                split_smo_held t txn ~probe ~needed:(Key.on_page_cost key) ~exclusive:true;
                attempt (n + 1)
              end
              else log_clr_apply t txn leaf clr_body ~undo_stream:r.Logrec.stream ~undo_nxt:r.Logrec.prev_lsn
            in
            attempt 0)
      end)

(* ------------------------------------------------------------------ *)
(* Resource-manager callbacks *)

let rm_redo env (r : Logrec.t) =
  let body = Ixlog.decode ~op:r.Logrec.op r.Logrec.body in
  let pool = env.e_pool in
  let page =
    match Bufpool.fix_opt pool r.Logrec.page with
    | Some p -> p
    | None -> (
        (* the page never reached disk: only whole-page formats recreate it *)
        match body with
        | Ixlog.Format_leaf _ | Ixlog.Format_nonleaf _ | Ixlog.Format_anchor _ ->
            Bufpool.fix_new pool r.Logrec.page (Page.empty_leaf ())
        | _ ->
            raise
              (Structural_fault
                 (Printf.sprintf "redo: page %d missing for op %s" r.Logrec.page
                    (Ixlog.op_name r.Logrec.op))))
  in
  if Lsn.( < ) page.Page.page_lsn r.Logrec.lsn then begin
    Apply.apply page body;
    page.Page.page_lsn <- r.Logrec.lsn;
    Bufpool.mark_dirty pool page r.Logrec.lsn
  end;
  Bufpool.unfix pool page

let rm_undo env txn (r : Logrec.t) =
  let body = Ixlog.decode ~op:r.Logrec.op r.Logrec.body in
  match body with
  | Ixlog.Insert_key { ix; key; _ } -> undo_insert (tree_for env ix) txn r ~key
  | Ixlog.Delete_key { ix; key; _ } -> undo_delete (tree_for env ix) txn r ~key
  | _ -> (
      (* SMO records: page-oriented compensation restores structure (§3) *)
      match Apply.undo_body body with
      | None ->
          raise
            (Structural_fault
               (Printf.sprintf "undo: op %s is not undoable" (Ixlog.op_name r.Logrec.op)))
      | Some comp ->
          let pool = env.e_pool in
          let page = Bufpool.fix pool r.Logrec.page in
          Latch.acquire page.Page.latch Latch.X;
          Fun.protect
            ~finally:(fun () ->
              Latch.release page.Page.latch;
              Bufpool.unfix pool page)
            (fun () ->
              let op = Ixlog.op_of_body comp in
              let lsn =
                Txnmgr.log_clr env.e_mgr txn ~page:page.Page.pid ~undo_stream:r.Logrec.stream
                  ~rm_id:Ixlog.rm_id ~op ~body:(Ixlog.encode comp)
                  ~undo_nxt:r.Logrec.prev_lsn ()
              in
              Apply.apply page comp;
              page.Page.page_lsn <- lsn;
              Bufpool.mark_dirty pool page lsn))

let env ?config mgr pool =
  let e =
    {
      e_mgr = mgr;
      e_pool = pool;
      e_trees = Hashtbl.create 8;
      e_default_cfg = (match config with Some c -> c | None -> default_config);
      e_smo_owners = Hashtbl.create 32;
      e_mvstore = Mvstore.create ();
      e_trace = None;
      e_pause = None;
    }
  in
  (* commit stamps the txn's pending versions with its CSN — the Commit
     record's (epoch, gsn) — before the durability wait; rollback discards
     whatever per-op undo has not already unrecorded. Either way the txn's
     snapshot pin is released, lifting the GC horizon. *)
  Txnmgr.set_txn_end_hook mgr
    (Some
       (fun txn outcome ->
         let id = txn.Txnmgr.txn_id in
         let had_pin = Mvstore.pinned e.e_mvstore ~txn:id <> None in
         (match outcome with
         | `Commit (epoch, gsn) ->
             Mvstore.commit_txn e.e_mvstore ~txn:id
               ~csn:{ Mvstore.cs_epoch = epoch; cs_gsn = gsn }
         | `Rollback -> Mvstore.abort_txn e.e_mvstore ~txn:id);
         if had_pin && Trace.enabled () then Trace.emit (Trace.Mvcc_unpin { txn = id })));
  Txnmgr.register_rm mgr ~rm_id:Ixlog.rm_id
    ~locks:(fun r ->
      (* Commit-duration names fencing the record's change, for
         instant-restart loser lock reacquisition. Only an insert is fully
         derivable from the record body: its own key's name covers it
         (under data-only locking that is the record lock the record
         manager holds — an over-approximation of this tree-only path,
         which is safe). A delete's protection is the commit-duration X on
         the *next* key (Figure 2), known only to the live lock table, so
         it derives [] — the engine must undo such a loser eagerly rather
         than defer it. SMO / structure records run under latches + the
         tree latch and also derive nothing. Post-crash there are no open
         trees, so the environment's default locking protocol decides the
         name — the same protocol every tree opened through this env
         uses. *)
      match Ixlog.decode ~op:r.Logrec.op r.Logrec.body with
      | Ixlog.Insert_key { ix; key; _ } ->
          [ (Protocol.key_name e.e_default_cfg.locking ix key, Lockmgr.X) ]
      | _ -> [])
    ~redo:(fun r -> rm_redo e r)
    ~undo:(fun txn r -> rm_undo e txn r)
    ();
  e

(* ------------------------------------------------------------------ *)
(* Restart: rebuild the version store from the log history.

   Run after Analysis has rebuilt the transaction table (and, for classic
   restart, alongside/after redo) but BEFORE user transactions are served.
   Only in-flight transactions matter: anything that committed before the
   crash is below every post-restart snapshot's horizon, so its chains
   would collapse to the unversioned fallback immediately — the physical
   tree (after redo) IS its committed state. What must be chained is the
   crash residue: losers whose undo is deferred (instant restart serves
   reads while their uncommitted keys are still physically in the tree)
   and in-doubt prepared transactions. Their surviving index records are
   replayed in gsn order: an Update appends a pending version, a CLR
   unrecords the version it compensates. The versions stay pending —
   commit_prepared stamps an in-doubt txn's versions through the txn-end
   hook; a loser's are dropped one by one as its undo unrecords them. *)
let rebuild_versions env =
  Mvstore.clear env.e_mvstore;
  let mgr = env.e_mgr in
  let interesting = Txnmgr.active_txns mgr in
  (* Only under Mvcc: rebuilt pending versions are drained by undo's
     mv_unrecord calls, which other protocols never make — replaying for
     them would leave versions stranded forever. *)
  if env.e_default_cfg.locking = Protocol.Mvcc && interesting <> [] then begin
    let ids = List.map (fun tx -> tx.Txnmgr.txn_id) interesting in
    let logs = Txnmgr.logs mgr in
    let starts = Array.make (Logset.n logs) Lsn.nil in
    Logset.iter_merged logs ~starts (fun r ->
        if r.Logrec.rm_id = Ixlog.rm_id && List.mem r.Logrec.txn ids then
          match Ixlog.decode ~op:r.Logrec.op r.Logrec.body with
          | Ixlog.Insert_key { ix; key; _ } | Ixlog.Delete_key { ix; key; _ }
            when r.Logrec.kind = Logrec.Clr ->
              (* compensation: the CLR's body inverts the compensated
                 operation, but both unrecord the same key's newest
                 pending version *)
              Mvstore.unrecord env.e_mvstore ~ix ~value:key.Key.value ~rid:key.Key.rid
                ~txn:r.Logrec.txn
          | Ixlog.Insert_key { ix; key; _ } ->
              Mvstore.record env.e_mvstore ~ix ~value:key.Key.value ~rid:key.Key.rid
                ~txn:r.Logrec.txn ~present:true
          | Ixlog.Delete_key { ix; key; _ } ->
              Mvstore.record env.e_mvstore ~ix ~value:key.Key.value ~rid:key.Key.rid
                ~txn:r.Logrec.txn ~present:false
          | _ -> ())
  end

(* ------------------------------------------------------------------ *)
(* Unlocked inspection for tests and benches *)

let leftmost_leaf t =
  let pool = t.bt_env.e_pool in
  let anchor = Bufpool.fix pool t.bt_ix in
  let a = Page.as_anchor anchor in
  let root = a.Page.an_root in
  Bufpool.unfix pool anchor;
  let rec go pid =
    let page = Bufpool.fix pool pid in
    match page.Page.content with
    | Page.Leaf _ -> page
    | Page.Nonleaf nl ->
        let child = Vec.get nl.Page.nl_children 0 in
        Bufpool.unfix pool page;
        go child
    | Page.Data _ | Page.Anchor _ ->
        Bufpool.unfix pool page;
        raise (Structural_fault "non-index page in tree")
  in
  go root

let to_list t =
  let pool = t.bt_env.e_pool in
  let acc = ref [] in
  let rec walk page =
    let l = Page.as_leaf page in
    Vec.iter (fun k -> acc := (k.Key.value, k.Key.rid) :: !acc) l.Page.lf_keys;
    let next = l.Page.lf_next in
    Bufpool.unfix pool page;
    if next <> Ids.nil_page then walk (Bufpool.fix pool next)
  in
  walk (leftmost_leaf t);
  List.rev !acc

let root_pid t =
  let pool = t.bt_env.e_pool in
  let anchor = Bufpool.fix pool t.bt_ix in
  let a = Page.as_anchor anchor in
  let r = a.Page.an_root in
  Bufpool.unfix pool anchor;
  r

let height t =
  let pool = t.bt_env.e_pool in
  let anchor = Bufpool.fix pool t.bt_ix in
  let a = Page.as_anchor anchor in
  let h = a.Page.an_height in
  Bufpool.unfix pool anchor;
  h

let check_invariants t =
  let pool = t.bt_env.e_pool in
  let fail fmt = Printf.ksprintf (fun m -> failwith (t.bt_name ^ ": invariant: " ^ m)) fmt in
  let anchor = Bufpool.fix pool t.bt_ix in
  let a = Page.as_anchor anchor in
  let root = a.Page.an_root and h = a.Page.an_height in
  Bufpool.unfix pool anchor;
  let leaves = ref [] in
  let rec walk pid expected_level (lo : Key.t option) (hi : Key.t option) =
    let page = Bufpool.fix pool pid in
    (match page.Page.content with
    | Page.Leaf l ->
        if expected_level <> 0 then fail "leaf %d at level %d" pid expected_level;
        let n = Vec.length l.Page.lf_keys in
        if n = 0 && pid <> root && not l.Page.lf_sm_bit then
          fail "reachable empty leaf %d with SM_Bit=0" pid;
        for i = 0 to n - 2 do
          if Key.compare (Vec.get l.Page.lf_keys i) (Vec.get l.Page.lf_keys (i + 1)) >= 0 then
            fail "leaf %d keys out of order" pid
        done;
        (match lo with
        | Some b when n > 0 && Key.compare (Vec.get l.Page.lf_keys 0) b < 0 ->
            fail "leaf %d violates lower separator" pid
        | Some _ | None -> ());
        (match hi with
        | Some b when n > 0 && Key.compare (Vec.get l.Page.lf_keys (n - 1)) b >= 0 ->
            fail "leaf %d violates high key (%s >= %s)" pid
              (Key.to_string (Vec.get l.Page.lf_keys (n - 1)))
              (Key.to_string b)
        | Some _ | None -> ());
        leaves := pid :: !leaves
    | Page.Nonleaf nl ->
        if nl.Page.nl_level <> expected_level then
          fail "nonleaf %d level %d expected %d" pid nl.Page.nl_level expected_level;
        let nc = Vec.length nl.Page.nl_children in
        let nk = Vec.length nl.Page.nl_high_keys in
        if nc = 0 then fail "reachable empty nonleaf %d" pid;
        if nk <> nc - 1 then fail "nonleaf %d arity: %d children, %d high keys" pid nc nk;
        for i = 0 to nk - 2 do
          if Key.compare (Vec.get nl.Page.nl_high_keys i) (Vec.get nl.Page.nl_high_keys (i + 1)) >= 0
          then fail "nonleaf %d high keys out of order" pid
        done;
        for i = 0 to nc - 1 do
          let child_lo = if i = 0 then lo else Some (Vec.get nl.Page.nl_high_keys (i - 1)) in
          let child_hi = if i = nc - 1 then hi else Some (Vec.get nl.Page.nl_high_keys i) in
          walk (Vec.get nl.Page.nl_children i) (expected_level - 1) child_lo child_hi
        done
    | Page.Data _ | Page.Anchor _ -> fail "non-index page %d reachable" pid);
    Bufpool.unfix pool page
  in
  walk root h None None;
  (* leaf chain must visit exactly the reachable leaves, in order *)
  let chain = ref [] in
  let rec follow pid prev =
    if pid <> Ids.nil_page then begin
      let page = Bufpool.fix pool pid in
      let l = Page.as_leaf page in
      if l.Page.lf_prev <> prev then fail "leaf %d prev pointer mismatch" pid;
      chain := pid :: !chain;
      let next = l.Page.lf_next in
      Bufpool.unfix pool page;
      follow next pid
    end
  in
  let lm = leftmost_leaf t in
  let lm_pid = lm.Page.pid in
  Bufpool.unfix pool lm;
  follow lm_pid Ids.nil_page;
  let reach = List.sort compare !leaves in
  let chained = List.sort compare !chain in
  if reach <> chained then
    fail "leaf chain (%d pages) differs from reachable leaves (%d pages)" (List.length chained)
      (List.length reach);
  let keys = to_list t in
  let rec sorted = function
    | (v1, r1) :: ((v2, r2) :: _ as rest) ->
        if String.compare v1 v2 > 0 || (String.compare v1 v2 = 0 && Ids.compare_rid r1 r2 >= 0)
        then fail "keys out of global order at %S" v2
        else sorted rest
    | [ _ ] | [] -> ()
  in
  sorted keys

let locate_leaf t value =
  let pool = t.bt_env.e_pool in
  (* same separator convention as a real search: equality routes right *)
  let probe k = String.compare k.Key.value value in
  let rec go pid =
    let page = Bufpool.fix pool pid in
    match page.Page.content with
    | Page.Leaf _ ->
        Bufpool.unfix pool page;
        pid
    | Page.Nonleaf nl ->
        let nk = Vec.length nl.Page.nl_high_keys in
        let idx =
          let rec find i =
            if i >= nk then Vec.length nl.Page.nl_children - 1
            else if probe (Vec.get nl.Page.nl_high_keys i) > 0 then i
            else find (i + 1)
          in
          find 0
        in
        let child = Vec.get nl.Page.nl_children idx in
        Bufpool.unfix pool page;
        go child
    | Page.Data _ | Page.Anchor _ ->
        Bufpool.unfix pool page;
        raise (Structural_fault "non-index page in tree")
  in
  go (root_pid t)

let leaf_pids t =
  let pool = t.bt_env.e_pool in
  let acc = ref [] in
  let rec walk pid =
    if pid <> Ids.nil_page then begin
      acc := pid :: !acc;
      let page = Bufpool.fix pool pid in
      let next = (Page.as_leaf page).Page.lf_next in
      Bufpool.unfix pool page;
      walk next
    end
  in
  let lm = leftmost_leaf t in
  let lm_pid = lm.Page.pid in
  Bufpool.unfix pool lm;
  walk lm_pid;
  List.rev !acc

let page_count t =
  let pool = t.bt_env.e_pool in
  let count = ref 0 in
  let rec walk pid =
    incr count;
    let page = Bufpool.fix pool pid in
    (match page.Page.content with
    | Page.Nonleaf nl -> Vec.iter walk nl.Page.nl_children
    | Page.Leaf _ | Page.Data _ | Page.Anchor _ -> ());
    Bufpool.unfix pool page
  in
  walk (root_pid t);
  !count
