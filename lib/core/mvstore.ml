open Aries_util

(* Commit sequence number: the (epoch, gsn) pair the v3 log frames already
   carry. gsn alone is a total order (appends never yield), but the epoch is
   kept so a CSN names the group-commit batch that made it durable. *)
type csn = { cs_epoch : int; cs_gsn : int }

let csn_compare a b =
  match compare a.cs_epoch b.cs_epoch with 0 -> compare a.cs_gsn b.cs_gsn | c -> c

let csn_le a b = csn_compare a b <= 0

let csn_to_string c = Printf.sprintf "%d.%d" c.cs_epoch c.cs_gsn

type version = {
  v_txn : Ids.txn_id;
  v_present : bool;  (* insert = true, delete = false *)
  mutable v_csn : csn option;  (* None while the writer is in flight *)
}

(* One chain per (value, rid) key, newest version first. Writers serialize
   per key through their commit-duration X record locks, so list order is
   reverse commit order. [ch_base] answers snapshots older than the whole
   recorded history: was the key present before the first version? *)
type chain = {
  ch_value : string;
  ch_rid : Ids.rid;
  ch_base : bool;
  mutable ch_versions : version list;
}

module Smap = Map.Make (String)

type t = {
  tables : (Ids.index_id, chain Smap.t ref) Hashtbl.t;
  pending : (Ids.txn_id, (Ids.index_id * string * version) list ref) Hashtbl.t;
  snapshots : (Ids.txn_id, csn) Hashtbl.t;
  (* per-store census: created - reclaimed must equal the live version
     count at all times. Kept in the store itself (not just the global
     Stats sink, which outlives any one store) so [Db.leak_report] can
     audit the balance exactly. *)
  mutable created : int;
  mutable reclaimed : int;
}

let create () =
  {
    tables = Hashtbl.create 4;
    pending = Hashtbl.create 16;
    snapshots = Hashtbl.create 16;
    created = 0;
    reclaimed = 0;
  }

let created_total t = t.created

let reclaimed_total t = t.reclaimed

(* [clear] credits everything it drops to the reclaimed counters — the
   created/reclaimed balance audited by [Db.leak_report] must survive a
   simulated crash wiping the volatile store. *)
let clear t =
  let dropped =
    Hashtbl.fold
      (fun _ m acc -> Smap.fold (fun _ ch acc -> acc + List.length ch.ch_versions) !m acc)
      t.tables 0
  in
  if dropped > 0 then begin
    t.reclaimed <- t.reclaimed + dropped;
    Stats.add Stats.mvcc_versions_reclaimed dropped
  end;
  Hashtbl.reset t.tables;
  Hashtbl.reset t.pending;
  Hashtbl.reset t.snapshots

(* Order-preserving canonical key: lexicographic order of canonicals equals
   (value, rid) order because the 0x00 separator sorts below every value
   byte and the rid is fixed-width. *)
let canonical value (rid : Ids.rid) =
  Printf.sprintf "%s\x00%016d.%016d" value rid.Ids.rid_page rid.Ids.rid_slot

let table t ix =
  match Hashtbl.find_opt t.tables ix with
  | Some m -> m
  | None ->
      let m = ref Smap.empty in
      Hashtbl.replace t.tables ix m;
      m

let find_chain t ~ix ~value ~rid = Smap.find_opt (canonical value rid) !(table t ix)

(* ------------------------------------------------------------------ *)
(* Snapshots *)

let pin t ~txn ~csn = if not (Hashtbl.mem t.snapshots txn) then Hashtbl.replace t.snapshots txn csn

let pinned t ~txn = Hashtbl.find_opt t.snapshots txn

let unpin t ~txn = Hashtbl.remove t.snapshots txn

let live_snapshots t = Hashtbl.length t.snapshots

let horizon t ~current =
  Hashtbl.fold (fun _ c acc -> if csn_le c acc then c else acc) t.snapshots current

(* ------------------------------------------------------------------ *)
(* Writers *)

let register_pending t ~txn entry =
  match Hashtbl.find_opt t.pending txn with
  | Some l -> l := entry :: !l
  | None -> Hashtbl.replace t.pending txn (ref [ entry ])

let record t ~ix ~value ~rid ~txn ~present =
  let m = table t ix in
  let c = canonical value rid in
  let v = { v_txn = txn; v_present = present; v_csn = None } in
  let chain =
    match Smap.find_opt c !m with
    | Some ch ->
        ch.ch_versions <- v :: ch.ch_versions;
        ch
    | None ->
        (* a chain opened by a delete covers a key that was committed before
           versioning recorded it: the base state is "present" *)
        let ch = { ch_value = value; ch_rid = rid; ch_base = not present; ch_versions = [ v ] } in
        m := Smap.add c ch !m;
        ch
  in
  ignore chain;
  register_pending t ~txn (ix, c, v);
  t.created <- t.created + 1;
  Stats.incr Stats.mvcc_versions_created

(* Remove one pending version (rollback undo / abort). Tolerant: a version
   already removed (or a chain already dropped) is a no-op. *)
let drop_version t ~ix ~canon v =
  let m = table t ix in
  match Smap.find_opt canon !m with
  | None -> false
  | Some ch ->
      if List.memq v ch.ch_versions then begin
        ch.ch_versions <- List.filter (fun x -> x != v) ch.ch_versions;
        if ch.ch_versions = [] then m := Smap.remove canon !m;
        t.reclaimed <- t.reclaimed + 1;
        Stats.incr Stats.mvcc_versions_reclaimed;
        true
      end
      else false

let unrecord t ~ix ~value ~rid ~txn =
  let c = canonical value rid in
  (* drop the newest still-pending version this txn wrote for the key (undo
     runs newest-first, matching the chain order) *)
  (match Smap.find_opt c !(table t ix) with
  | None -> ()
  | Some ch -> (
      match List.find_opt (fun v -> v.v_txn = txn && v.v_csn = None) ch.ch_versions with
      | None -> ()
      | Some v ->
          ignore (drop_version t ~ix ~canon:c v);
          (match Hashtbl.find_opt t.pending txn with
          | Some l -> l := List.filter (fun (_, _, x) -> x != v) !l
          | None -> ())))

(* ------------------------------------------------------------------ *)
(* Transaction end *)

let commit_txn t ~txn ~csn =
  (match Hashtbl.find_opt t.pending txn with
  | Some l ->
      List.iter (fun (_, _, v) -> v.v_csn <- Some csn) !l;
      Hashtbl.remove t.pending txn
  | None -> ());
  unpin t ~txn

let abort_txn t ~txn =
  (match Hashtbl.find_opt t.pending txn with
  | Some l ->
      List.iter (fun (ix, canon, v) -> ignore (drop_version t ~ix ~canon v)) !l;
      Hashtbl.remove t.pending txn
  | None -> ());
  unpin t ~txn

(* Restart rebuild: a committed (or in-doubt) historical operation replayed
   in gsn order. [csn = None] marks an in-doubt prepared transaction's
   operation, kept pending so a later commit_prepared stamps it. *)
let record_history t ~ix ~value ~rid ~txn ~present ~csn =
  record t ~ix ~value ~rid ~txn ~present;
  match csn with
  | Some c -> (
      match Hashtbl.find_opt t.pending txn with
      | Some l ->
          List.iter (fun (_, _, v) -> if v.v_csn = None then v.v_csn <- Some c) !l;
          Hashtbl.remove t.pending txn
      | None -> ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Snapshot reads *)

type resolution =
  | No_chain  (* unversioned key: visibility = physical presence in the tree *)
  | Visible of csn option  (* the deciding version's CSN; None = own pending write *)
  | Invisible

let resolve_chain chain ~txn ~snap =
  let rec go = function
    | [] -> if chain.ch_base then Visible None else Invisible
    | v :: rest -> (
        if v.v_txn = txn && v.v_csn = None then
          (* the reader's own in-flight write *)
          if v.v_present then Visible None else Invisible
        else
          match v.v_csn with
          | Some c when csn_le c snap -> if v.v_present then Visible (Some c) else Invisible
          | Some _ | None -> go rest)
  in
  go chain.ch_versions

let resolve t ~ix ~value ~rid ~txn ~snap =
  match find_chain t ~ix ~value ~rid with
  | None -> No_chain
  | Some ch -> resolve_chain ch ~txn ~snap

(* First chain at or after [value] (strictly after (value, rid) when [after]
   is given) visible at [snap]; readers merge this with the first
   unversioned tree key to answer range probes. *)
let first_visible t ~ix ?after ~txn ~snap value =
  let from = match after with Some rid -> canonical value rid ^ "\x00" | None -> value in
  let seq = Smap.to_seq_from from !(table t ix) in
  let rec go s =
    match s () with
    | Seq.Nil -> None
    | Seq.Cons ((_, ch), rest) -> (
        match resolve_chain ch ~txn ~snap with
        | Visible c -> Some (ch.ch_value, ch.ch_rid, c)
        | Invisible | No_chain -> go rest)
  in
  go seq

(* ------------------------------------------------------------------ *)
(* Garbage collection *)

(* Reclaim below [horizon]: in each chain, versions strictly older than the
   newest committed version at or below the horizon can never be reached by
   a live or future snapshot. A chain reduced to that single committed
   version agrees with the physical tree (the version is the key's latest
   state and its writer committed), so the whole chain collapses to the
   unversioned fallback and is dropped. Returns versions reclaimed. *)
let gc t ~horizon =
  let reclaimed = ref 0 in
  Hashtbl.iter
    (fun _ m ->
      let dropped_chains = ref [] in
      Smap.iter
        (fun canon ch ->
          let rec split kept = function
            | [] -> (List.rev kept, [])
            | v :: rest -> (
                match v.v_csn with
                | Some c when csn_le c horizon -> (List.rev (v :: kept), rest)
                | Some _ | None -> split (v :: kept) rest)
          in
          let kept, dropped = split [] ch.ch_versions in
          if dropped <> [] then begin
            reclaimed := !reclaimed + List.length dropped;
            ch.ch_versions <- kept
          end;
          match kept with
          | [ v ] when v.v_csn <> None && csn_le (Option.get v.v_csn) horizon ->
              incr reclaimed;
              dropped_chains := canon :: !dropped_chains
          | _ -> ())
        !m;
      List.iter (fun canon -> m := Smap.remove canon !m) !dropped_chains)
    t.tables;
  t.reclaimed <- t.reclaimed + !reclaimed;
  Stats.add Stats.mvcc_versions_reclaimed !reclaimed;
  !reclaimed

(* ------------------------------------------------------------------ *)
(* Census (leak audits) *)

let live_versions t =
  Hashtbl.fold
    (fun _ m acc -> Smap.fold (fun _ ch acc -> acc + List.length ch.ch_versions) !m acc)
    t.tables 0

let pending_versions t = Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.pending 0

let pending_txns t = Hashtbl.fold (fun id _ acc -> id :: acc) t.pending [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Codec: the store's wire format (ordered chain dump per index). Shares
   the Bytebuf discipline of the log-record and lock-list codecs. *)

type dump_version = { dv_present : bool; dv_csn : csn option; dv_txn : Ids.txn_id }

type dump_chain = {
  dc_value : string;
  dc_rid : Ids.rid;
  dc_base : bool;
  dc_versions : dump_version list;
}

let dump t ~ix =
  Smap.fold
    (fun _ ch acc ->
      {
        dc_value = ch.ch_value;
        dc_rid = ch.ch_rid;
        dc_base = ch.ch_base;
        dc_versions =
          List.map
            (fun v -> { dv_present = v.v_present; dv_csn = v.v_csn; dv_txn = v.v_txn })
            ch.ch_versions;
      }
      :: acc)
    !(table t ix) []
  |> List.rev

let encode_chains chains =
  let w = Bytebuf.W.create () in
  Bytebuf.W.list w
    (fun w dc ->
      Bytebuf.W.string w dc.dc_value;
      Bytebuf.W.i64 w dc.dc_rid.Ids.rid_page;
      Bytebuf.W.u32 w dc.dc_rid.Ids.rid_slot;
      Bytebuf.W.bool w dc.dc_base;
      Bytebuf.W.list w
        (fun w dv ->
          Bytebuf.W.bool w dv.dv_present;
          (match dv.dv_csn with
          | None -> Bytebuf.W.u8 w 0
          | Some c ->
              Bytebuf.W.u8 w 1;
              Bytebuf.W.i64 w c.cs_epoch;
              Bytebuf.W.i64 w c.cs_gsn);
          Bytebuf.W.i64 w dv.dv_txn)
        dc.dc_versions)
    chains;
  Bytebuf.W.contents w

let decode_chains b =
  let r = Bytebuf.R.of_bytes b in
  let chains =
    Bytebuf.R.list r (fun r ->
        let dc_value = Bytebuf.R.string r in
        let rid_page = Bytebuf.R.i64 r in
        let rid_slot = Bytebuf.R.u32 r in
        let dc_base = Bytebuf.R.bool r in
        let dc_versions =
          Bytebuf.R.list r (fun r ->
              let dv_present = Bytebuf.R.bool r in
              let dv_csn =
                match Bytebuf.R.u8 r with
                | 0 -> None
                | 1 ->
                    let cs_epoch = Bytebuf.R.i64 r in
                    let cs_gsn = Bytebuf.R.i64 r in
                    Some { cs_epoch; cs_gsn }
                | n -> raise (Bytebuf.Corrupt (Printf.sprintf "bad csn tag %d" n))
              in
              let dv_txn = Bytebuf.R.i64 r in
              { dv_present; dv_csn; dv_txn })
        in
        { dc_value; dc_rid = { Ids.rid_page; rid_slot }; dc_base; dc_versions })
  in
  Bytebuf.R.expect_end r;
  chains
