(** Online latch/lock discipline checker for the ARIES/IM protocol.

    Consumes the {!Trace} event stream and raises {!Violation} the moment
    an interleaving breaks one of the paper's prose rules (§2.2, §4,
    Figure 2 — see EXPERIMENTS.md "Protocol discipline" for the mapping):

    - {b R1} — no {e unconditional} lock wait while ≥1 latch is held: lock
      requests made under latch must be conditional (the
      conditional-lock / unlatch / unconditional-lock / revalidate dance).
    - {b R2} — latch depth ≤ 3 per fiber, and coupling runs parent→child
      only: acquiring the tree latch unconditionally while holding a page
      latch is a child→parent inversion (undetectable latch deadlock).
    - {b R3} — one SMO in flight per tree: an exclusive SMO overlaps
      nothing; concurrent (§5, IX) SMOs may overlap each other but an
      upgrade is granted only once it is alone; every end matches a begin.
    - {b R4} — no commit acknowledged before its covering log force is
      stable (group-commit aware: the batched force's [Log_force] precedes
      every covered committer's [Commit_ack]).
    - {b R5} — no page written to disk with [pageLSN] above the flushed
      log boundary (the WAL rule).
    - {b R6} — log-space reclamation safety: no [Log_truncate] past the
      last independently announced safety point ([Log_safety], emitted by
      the safety computation itself — the safety point is monotone
      nondecreasing, so the latest announcement is an upper bound) or into
      the volatile suffix; and no page written whose dirty-table [recLSN]
      falls inside the reclaimed prefix.
    - {b R7} — instant-restart safety (PR 6): (a) no [Page_fix] served
      while the page sits in the needs-redo set announced by
      [Restart_dpt] — except inside the delimited
      [Restart_redo_page]..[Restart_page_done] window, where the redo
      roll-forward itself fixes the page; (b) no [Lock_grant] of a name
      re-acquired on a loser's behalf ([Restart_lock]) to any other txn
      before that loser's [Restart_loser_done].
    - {b R8} — multi-stream epoch fence (PR 7): (a) no [Commit_fence]
      acknowledged with a per-stream target [(log, lsn_end)] beyond that
      log's flushed boundary — a commit is durable only when {e every}
      stream the transaction touched is forced through its epoch fence,
      not just the stream holding the commit record; (b) no [Redo_apply]
      to a page with a gsn not strictly above the last one applied to it —
      per-page redo must follow [(epoch, gsn)] order (reset per run, and
      per page on [Page_quarantined]: media repair restarts the page's
      history from the archived dump).
    - {b R9} — Mvcc snapshot-read wait-freedom (PR 8): (a) inside an
      [Mvcc_read_begin]..[Mvcc_read_end] window the reading txn issues
      {e no} [Lock_request] (even conditional) and never appears in a
      [Lock_wait] — the version chain replaces the current/next-key lock
      entirely; (b) every [Mvcc_read] resolution's version CSN lies at or
      below the reader's [Mvcc_pin] — a higher CSN is a future write
      leaking into the snapshot.
    - {b R10} — presumed-abort 2PC durability (PR 10): (a) no
      [Twopc_decide] with [commit = true] before the decision record
      {e and} every participant Prepare target recorded by
      [Twopc_prepared] lie below their logs' flushed boundaries — an
      unforced commit decision is the distributed durability lie (a
      coordinator crash presumes abort while participants were told to
      commit); (b) no [Twopc_ack] with [committed = true] and no
      [Twopc_resolve] with [committed = true] without a durable commit
      decision. Aborts carry no obligation: presumed abort means the
      {e absence} of a decision record is itself the abort decision, so no
      [Coord_abort] force is ever required.

    Fiber-keyed state (held latches) and per-tree SMO state are discarded
    at every [Run_begin] (a new scheduler incarnation reuses fiber ids and
    loses volatile state, exactly like a crash — the Mvcc pin/window state
    is volatile the same way). The per-log flushed boundary persists — it
    mirrors durable state. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10

exception Violation of rule * string

val rule_to_string : rule -> string

val rule_summary : rule -> string

val check : Trace.event -> unit
(** The checker itself. Raises {!Violation}; bumps
    [Stats.trace_violations] and the {!violations} count first. *)

val install : unit -> unit
(** Register {!check} as the {!Trace} checker (idempotent). Done by
    [Aries_sched] at module initialization, so every program that runs
    fibers gets the checker for free — [dune runtest] runs the entire
    suite with it enabled. *)

val violations : unit -> int
(** Violations detected since the last {!reset}. Surfaced by
    [Db.leak_report]. *)

val reset : unit -> unit
(** Clear all checker state and the violation count. *)

val latch_depth : fiber:int -> int
(** Current latch depth the checker attributes to a fiber (test hook). *)
