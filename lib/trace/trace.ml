open Aries_util

type latch_kind = Page_latch | Tree_latch

type latch_mode = S | X

type payload =
  | Run_begin of { run : int }
  | Latch_acquire of {
      kind : latch_kind;
      name : string;
      mode : latch_mode;
      cond : bool;  (** granted by [try_acquire] (never blocks) *)
      waited : bool;  (** the fiber suspended before the grant *)
    }
  | Latch_try_fail of { kind : latch_kind; name : string; mode : latch_mode }
  | Latch_release of { kind : latch_kind; name : string }
  | Lock_request of { txn : int; name : string; mode : string; duration : string; cond : bool }
  | Lock_grant of { txn : int; name : string; mode : string; duration : string; waited : bool }
  | Lock_deny of { txn : int; name : string; mode : string }
  | Lock_wait of { txn : int; name : string; mode : string }
      (** emitted at the instant an unconditional request is about to
          suspend — the event rule R1 fires on *)
  | Lock_release of { txn : int; name : string }
  | Lock_release_all of { txn : int }
  | Deadlock_victim of { txn : int }
  | Log_open of { log : int; flushed : int }
  | Log_append of { log : int; lsn : int; next : int; kind : string; txn : int }
  | Log_force of { log : int; upto : int; stable_lsn : int }
  | Log_seal of { log : int; base : int; len : int }
  | Log_safety of { log : int; safety : int }
  | Log_truncate of { log : int; new_start : int; bytes : int; segments : int }
  | Log_tail_truncated of { log : int; at : int; bytes : int }
      (** restart's CRC tail-scan cut a torn/garbage suffix: the log now
          ends at [at], [bytes] bytes were discarded *)
  | Log_archive of { log : int; base : int; len : int; records : int }
  | Ckpt_take of { log : int; begin_lsn : int; end_lsn : int; redo : int }
  | Page_fix of { pool : int; pid : int }
  | Page_unfix of { pid : int }
  | Page_write of { log : int; pid : int; page_lsn : int; lsn_end : int; rec_lsn : int }
  | Smo_begin of { tree : int; txn : int; exclusive : bool }
  | Smo_upgrade of { tree : int; txn : int }
  | Smo_end of { tree : int; txn : int }
  | Commit_enqueue of { txn : int; lsn : int }
  | Commit_ack of { log : int; txn : int; lsn : int; lsn_end : int }
  | Commit_fence of { txn : int; epoch : int; targets : (int * int) list }
      (** emitted at commit acknowledgement: the epoch fence the ack claims
          was honored — for every stream the txn touched, [(log id, end
          offset)] that must already be stable. Rule R8(a) checks each
          target against that log's flushed boundary. *)
  | Redo_apply of { log : int; pid : int; lsn : int; gsn : int }
      (** restart redo (classic scan, instant single-page, or media
          roll-forward) applied the record at [lsn]/[gsn] to page [pid] —
          rule R8(b) requires per-page gsn-monotone application *)
  | Daemon_spawn of { name : string }
  | Daemon_exit of { name : string }
  | Restart_phase of { phase : string }
  | Protocol_locks of { op : string; reqs : string }
  | Io_retry of { target : string; pid : int; attempt : int }
      (** a transient I/O error was retried ([target] is "page-read",
          "page-write" or "log-force"; [pid] is 0 for log forces) *)
  | Page_quarantined of { pid : int; cause : string }
      (** a stored page image failed its CRC / decode on read and was
          quarantined pending automatic media repair *)
  | Page_repaired of { pid : int; records : int }
      (** media repair rebuilt the page from the archive + log history,
          replaying [records] log records *)
  | Restart_dpt of { pool : int; pid : int; rec_lsn : int }
      (** instant restart: Analysis placed this page in the needs-redo set
          (the DPT) with the given recLSN — rule R7(a) forbids serving it
          to a fix before its on-demand redo completes *)
  | Restart_redo_page of { pool : int; pid : int; on_demand : bool }
      (** instant restart began single-page redo of an in-DPT page
          ([on_demand]: triggered by a user fix rather than the drain
          daemon) *)
  | Restart_page_done of { pool : int; pid : int; applied : int }
      (** single-page redo finished, [applied] records replayed; the page
          left the needs-redo set and fixes may be served again *)
  | Restart_loser of { txn : int }
      (** instant restart: Analysis identified this txn as a loser whose
          undo is deferred to the background / lock-conflict preemption *)
  | Restart_lock of { txn : int; name : string; mode : string }
      (** a loser lock was re-acquired on the loser's behalf during
          Analysis — rule R7(b) forbids granting this name to any other
          txn before the loser's undo completes *)
  | Restart_undo_txn of { txn : int; preempted : bool }
      (** instant restart began (or resumed) undoing this loser
          ([preempted]: driven by a conflicting new txn's lock request
          rather than the drain daemon) *)
  | Restart_loser_done of { txn : int }
      (** the loser's rollback completed; its reacquired locks are about
          to be released and its names become grantable again *)
  | Mvcc_pin of { txn : int; epoch : int; gsn : int }
      (** a snapshot reader pinned its CSN horizon (first Mvcc fetch) *)
  | Mvcc_read_begin of { txn : int }
      (** an Mvcc snapshot read entered its wait-free window — until the
          matching [Mvcc_read_end], rule R9 forbids this txn any lock
          request or lock wait *)
  | Mvcc_read of { txn : int; epoch : int; gsn : int; visible : bool }
      (** a key resolved against a committed chain version stamped
          (epoch, gsn) — rule R9 requires that CSN <= the reader's pin *)
  | Mvcc_read_end of { txn : int }
  | Mvcc_unpin of { txn : int }
  | Vgc_round of { reclaimed : int; epoch : int; gsn : int }
      (** a version-GC round reclaimed [reclaimed] versions below the
          oldest-active-snapshot horizon (epoch, gsn) *)
  | Twopc_prepared of { gid : int; shard : int; txn : int; targets : (int * int) list }
      (** a participant forced its Prepare record; [targets] are the (log
          id, end offset) pairs that must be stable — rule R10 records them
          under [gid] *)
  | Twopc_decide of { gid : int; commit : bool; log : int; lsn_end : int }
      (** the coordinator decided the global transaction; for a commit the
          decision record [log, lsn_end) must already be forced, as must
          every participant's Prepare targets (rule R10(a)) *)
  | Twopc_ack of { gid : int; committed : bool }
      (** the global outcome was acknowledged to the client — a committed
          ack without a durable decision is the distributed durability lie
          (rule R10(b)) *)
  | Twopc_resolve of { gid : int; shard : int; txn : int; committed : bool }
      (** restart resolved an in-doubt participant branch; a committed
          resolution requires a durable decision ([committed = false] is
          always legal: presumed abort) *)
  | Shard_event of { shard : int; what : string }
      (** shard lifecycle: "down" / "up" / "killed" / "revived" / "parked" *)
  | Note of string

type event = { ev_step : int; ev_fiber : int; ev_payload : payload }

type mode = Off | Record | Check

(* ------------------------------------------------------------------ *)
(* Global state. Like Stats and Crashpoint, the tracer is a process-global
   singleton: the system is cooperatively scheduled, one run at a time. *)

let the_mode =
  ref
    (match Sys.getenv_opt "ARIES_TRACE" with
    | Some "off" | Some "0" -> Off
    | Some "record" -> Record
    | Some _ | None -> Check)

let set_mode m = the_mode := m

let mode () = !the_mode

let enabled () = !the_mode <> Off

let checking () = !the_mode = Check

(* context providers, installed by Aries_sched at module init; -1 when no
   scheduler is running *)
let fiber_provider = ref (fun () -> -1)

let step_provider = ref (fun () -> -1)

let set_context ~fiber ~steps =
  fiber_provider := fiber;
  step_provider := steps

(* the online checker hook (Discipline installs itself here) *)
let checker : (event -> unit) ref = ref (fun _ -> ())

let register_checker f = checker := f

(* ------------------------------------------------------------------ *)
(* Ring buffer *)

let default_capacity = 4096

type ring = { mutable slots : event array; mutable next : int; mutable total : int }

let no_event = { ev_step = -1; ev_fiber = -1; ev_payload = Note "" }

let ring = { slots = Array.make default_capacity no_event; next = 0; total = 0 }

let set_capacity n =
  if n < 16 then invalid_arg "Trace.set_capacity: capacity must be >= 16";
  ring.slots <- Array.make n no_event;
  ring.next <- 0;
  ring.total <- 0

let capacity () = Array.length ring.slots

let reset () =
  Array.fill ring.slots 0 (Array.length ring.slots) no_event;
  ring.next <- 0;
  ring.total <- 0

let event_count () = ring.total

let push ev =
  ring.slots.(ring.next) <- ev;
  ring.next <- (ring.next + 1) mod Array.length ring.slots;
  ring.total <- ring.total + 1

(* oldest-first snapshot of the retained window *)
let events () =
  let cap = Array.length ring.slots in
  let n = min ring.total cap in
  let start = (ring.next - n + cap) mod cap in
  List.init n (fun i -> ring.slots.((start + i) mod cap))

let last_events n =
  let evs = events () in
  let len = List.length evs in
  if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs

(* ------------------------------------------------------------------ *)
(* Emission *)

let emit payload =
  if !the_mode <> Off then begin
    let ev =
      { ev_step = !step_provider (); ev_fiber = !fiber_provider (); ev_payload = payload }
    in
    push ev;
    Stats.incr Stats.trace_events;
    if !the_mode = Check then !checker ev
  end

let run_start run = emit (Run_begin { run })

(* ------------------------------------------------------------------ *)
(* Rendering *)

let latch_kind_to_string = function Page_latch -> "page" | Tree_latch -> "tree"

let latch_mode_to_string = function S -> "S" | X -> "X"

let payload_to_string = function
  | Run_begin { run } -> Printf.sprintf "run-begin #%d" run
  | Latch_acquire { kind; name; mode; cond; waited } ->
      Printf.sprintf "latch-acquire %s %s %s%s%s" (latch_kind_to_string kind) name
        (latch_mode_to_string mode)
        (if cond then " cond" else "")
        (if waited then " waited" else "")
  | Latch_try_fail { kind; name; mode } ->
      Printf.sprintf "latch-try-fail %s %s %s" (latch_kind_to_string kind) name
        (latch_mode_to_string mode)
  | Latch_release { kind; name } ->
      Printf.sprintf "latch-release %s %s" (latch_kind_to_string kind) name
  | Lock_request { txn; name; mode; duration; cond } ->
      Printf.sprintf "lock-request T%d %s %s %s%s" txn mode duration name
        (if cond then " cond" else "")
  | Lock_grant { txn; name; mode; duration; waited } ->
      Printf.sprintf "lock-grant T%d %s %s %s%s" txn mode duration name
        (if waited then " waited" else "")
  | Lock_deny { txn; name; mode } -> Printf.sprintf "lock-deny T%d %s %s" txn mode name
  | Lock_wait { txn; name; mode } -> Printf.sprintf "lock-wait T%d %s %s" txn mode name
  | Lock_release { txn; name } -> Printf.sprintf "lock-release T%d %s" txn name
  | Lock_release_all { txn } -> Printf.sprintf "lock-release-all T%d" txn
  | Deadlock_victim { txn } -> Printf.sprintf "deadlock-victim T%d" txn
  | Log_open { log; flushed } -> Printf.sprintf "log-open L%d flushed=%d" log flushed
  | Log_append { log; lsn; next; kind; txn } ->
      Printf.sprintf "log-append L%d lsn=%d next=%d %s T%d" log lsn next kind txn
  | Log_force { log; upto; stable_lsn } ->
      Printf.sprintf "log-force L%d upto=%d stable=%d" log upto stable_lsn
  | Log_seal { log; base; len } -> Printf.sprintf "log-seal L%d base=%d len=%d" log base len
  | Log_safety { log; safety } -> Printf.sprintf "log-safety L%d safety=%d" log safety
  | Log_truncate { log; new_start; bytes; segments } ->
      Printf.sprintf "log-truncate L%d start=%d bytes=%d segments=%d" log new_start bytes
        segments
  | Log_tail_truncated { log; at; bytes } ->
      Printf.sprintf "log-tail-truncated L%d at=%d bytes=%d" log at bytes
  | Log_archive { log; base; len; records } ->
      Printf.sprintf "log-archive L%d base=%d len=%d records=%d" log base len records
  | Ckpt_take { log; begin_lsn; end_lsn; redo } ->
      Printf.sprintf "ckpt-take L%d begin=%d end=%d redo=%d" log begin_lsn end_lsn redo
  | Page_fix { pool; pid } -> Printf.sprintf "page-fix B%d/%d" pool pid
  | Page_unfix { pid } -> Printf.sprintf "page-unfix %d" pid
  | Page_write { log; pid; page_lsn; lsn_end; rec_lsn } ->
      Printf.sprintf "page-write L%d pid=%d pageLSN=%d end=%d recLSN=%d" log pid page_lsn
        lsn_end rec_lsn
  | Smo_begin { tree; txn; exclusive } ->
      Printf.sprintf "smo-begin tree=%d T%d %s" tree txn (if exclusive then "X" else "IX")
  | Smo_upgrade { tree; txn } -> Printf.sprintf "smo-upgrade tree=%d T%d" tree txn
  | Smo_end { tree; txn } -> Printf.sprintf "smo-end tree=%d T%d" tree txn
  | Commit_enqueue { txn; lsn } -> Printf.sprintf "commit-enqueue T%d lsn=%d" txn lsn
  | Commit_ack { log; txn; lsn; lsn_end } ->
      Printf.sprintf "commit-ack L%d T%d lsn=%d end=%d" log txn lsn lsn_end
  | Commit_fence { txn; epoch; targets } ->
      Printf.sprintf "commit-fence T%d epoch=%d [%s]" txn epoch
        (String.concat "; " (List.map (fun (l, e) -> Printf.sprintf "L%d<=%d" l e) targets))
  | Redo_apply { log; pid; lsn; gsn } ->
      Printf.sprintf "redo-apply L%d pid=%d lsn=%d gsn=%d" log pid lsn gsn
  | Daemon_spawn { name } -> Printf.sprintf "daemon-spawn %s" name
  | Daemon_exit { name } -> Printf.sprintf "daemon-exit %s" name
  | Restart_phase { phase } -> Printf.sprintf "restart-phase %s" phase
  | Protocol_locks { op; reqs } -> Printf.sprintf "protocol-locks %s [%s]" op reqs
  | Io_retry { target; pid; attempt } ->
      Printf.sprintf "io-retry %s pid=%d attempt=%d" target pid attempt
  | Page_quarantined { pid; cause } -> Printf.sprintf "page-quarantined %d (%s)" pid cause
  | Page_repaired { pid; records } -> Printf.sprintf "page-repaired %d records=%d" pid records
  | Restart_dpt { pool; pid; rec_lsn } ->
      Printf.sprintf "restart-dpt B%d/%d recLSN=%d" pool pid rec_lsn
  | Restart_redo_page { pool; pid; on_demand } ->
      Printf.sprintf "restart-redo-page B%d/%d%s" pool pid (if on_demand then " on-demand" else "")
  | Restart_page_done { pool; pid; applied } ->
      Printf.sprintf "restart-page-done B%d/%d applied=%d" pool pid applied
  | Restart_loser { txn } -> Printf.sprintf "restart-loser T%d" txn
  | Restart_lock { txn; name; mode } -> Printf.sprintf "restart-lock T%d %s %s" txn mode name
  | Restart_undo_txn { txn; preempted } ->
      Printf.sprintf "restart-undo-txn T%d%s" txn (if preempted then " preempted" else "")
  | Restart_loser_done { txn } -> Printf.sprintf "restart-loser-done T%d" txn
  | Mvcc_pin { txn; epoch; gsn } -> Printf.sprintf "mvcc-pin T%d csn=%d.%d" txn epoch gsn
  | Mvcc_read_begin { txn } -> Printf.sprintf "mvcc-read-begin T%d" txn
  | Mvcc_read { txn; epoch; gsn; visible } ->
      Printf.sprintf "mvcc-read T%d csn=%d.%d %s" txn epoch gsn
        (if visible then "visible" else "invisible")
  | Mvcc_read_end { txn } -> Printf.sprintf "mvcc-read-end T%d" txn
  | Mvcc_unpin { txn } -> Printf.sprintf "mvcc-unpin T%d" txn
  | Vgc_round { reclaimed; epoch; gsn } ->
      Printf.sprintf "vgc-round reclaimed=%d horizon=%d.%d" reclaimed epoch gsn
  | Twopc_prepared { gid; shard; txn; targets } ->
      Printf.sprintf "2pc-prepared G%d shard=%d T%d targets=[%s]" gid shard txn
        (String.concat ";"
           (List.map (fun (l, e) -> Printf.sprintf "%d:%d" l e) targets))
  | Twopc_decide { gid; commit; log; lsn_end } ->
      Printf.sprintf "2pc-decide G%d %s log=%d end=%d" gid
        (if commit then "commit" else "abort")
        log lsn_end
  | Twopc_ack { gid; committed } ->
      Printf.sprintf "2pc-ack G%d %s" gid (if committed then "committed" else "aborted")
  | Twopc_resolve { gid; shard; txn; committed } ->
      Printf.sprintf "2pc-resolve G%d shard=%d T%d %s" gid shard txn
        (if committed then "committed" else "aborted")
  | Shard_event { shard; what } -> Printf.sprintf "shard %d %s" shard what
  | Note s -> Printf.sprintf "note %s" s

let event_to_string ev =
  Printf.sprintf "step=%-6d fiber=%-3d %s" ev.ev_step ev.ev_fiber (payload_to_string ev.ev_payload)

let dump_last n =
  Stats.incr Stats.trace_dumps;
  List.map event_to_string (last_events n)
