(** Structured protocol event tracing.

    A low-overhead, process-global ring buffer of typed events covering
    every concurrency-bearing action in the system: latch acquire/release
    (with mode and conditionality), lock request/grant/deny/wait and
    deadlock victims, log append/force, page fix/unfix and page writes, SMO
    begin/end, commit enqueue/ack, daemon lifecycle, and restart phases.
    Each event is stamped with the emitting fiber id and the scheduler step
    counter ([Sched.steps_now]) — [-1] when no scheduler is running.

    Emit sites are behind {!enabled}; with the tracer {!Off} they compile to
    a single flag test, with {!Record} events land in the ring, and with
    {!Check} (the default — [dune runtest] runs the whole suite this way)
    every event is also fed to the online {!Discipline} checker, which
    raises on a violation of the ARIES/IM latch/lock discipline rules.

    Like {!Aries_util.Stats} and {!Aries_util.Crashpoint} the tracer is a
    global singleton: the system is cooperatively scheduled, one simulated
    machine at a time. Override the default mode with the [ARIES_TRACE]
    environment variable ([off] / [record] / [check]). *)

type latch_kind = Page_latch | Tree_latch

type latch_mode = S | X

type payload =
  | Run_begin of { run : int }
      (** a new scheduler incarnation started: fiber ids restart, volatile
          latch/SMO state is gone *)
  | Latch_acquire of {
      kind : latch_kind;
      name : string;
      mode : latch_mode;
      cond : bool;
      waited : bool;
    }
  | Latch_try_fail of { kind : latch_kind; name : string; mode : latch_mode }
  | Latch_release of { kind : latch_kind; name : string }
  | Lock_request of { txn : int; name : string; mode : string; duration : string; cond : bool }
  | Lock_grant of { txn : int; name : string; mode : string; duration : string; waited : bool }
  | Lock_deny of { txn : int; name : string; mode : string }
  | Lock_wait of { txn : int; name : string; mode : string }
  | Lock_release of { txn : int; name : string }
  | Lock_release_all of { txn : int }
  | Deadlock_victim of { txn : int }
  | Log_open of { log : int; flushed : int }
  | Log_append of { log : int; lsn : int; next : int; kind : string; txn : int }
  | Log_force of { log : int; upto : int; stable_lsn : int }
  | Log_seal of { log : int; base : int; len : int }
      (** a WAL segment reached its size budget and was sealed; subsequent
          appends open a fresh segment *)
  | Log_safety of { log : int; safety : int }
      (** the reclamation safety point was recomputed: min(last complete
          checkpoint's redo point, min recLSN in the DPT, oldest active
          txn's first LSN). Emitted by the safety computation itself —
          rule R6 trusts the last announcement, not the truncator. *)
  | Log_truncate of { log : int; new_start : int; bytes : int; segments : int }
      (** whole sealed segments below [new_start] were reclaimed *)
  | Log_tail_truncated of { log : int; at : int; bytes : int }
      (** restart's CRC tail-scan cut a torn/garbage log suffix: the log
          now ends at [at], [bytes] bytes were discarded (PR 5) *)
  | Log_archive of { log : int; base : int; len : int; records : int }
      (** a reclaimed segment was handed to the archive sink (media
          recovery keeps working) *)
  | Ckpt_take of { log : int; begin_lsn : int; end_lsn : int; redo : int }
      (** a fuzzy checkpoint completed: Begin/End pair stable, master set *)
  | Page_fix of { pool : int; pid : int }
  | Page_unfix of { pid : int }
  | Page_write of { log : int; pid : int; page_lsn : int; lsn_end : int; rec_lsn : int }
      (** [rec_lsn] is the page's dirty-table recLSN at write time
          ([0] = clean/untracked) — rule R6 checks it against the
          reclaimed prefix *)
  | Smo_begin of { tree : int; txn : int; exclusive : bool }
  | Smo_upgrade of { tree : int; txn : int }
  | Smo_end of { tree : int; txn : int }
  | Commit_enqueue of { txn : int; lsn : int }
  | Commit_ack of { log : int; txn : int; lsn : int; lsn_end : int }
  | Commit_fence of { txn : int; epoch : int; targets : (int * int) list }
      (** emitted at commit acknowledgement: the epoch fence the ack
          claims was honored — for every stream the txn touched, [(log id,
          end offset)] that must already be stable. Rule R8(a) checks each
          target against that log's flushed boundary. *)
  | Redo_apply of { log : int; pid : int; lsn : int; gsn : int }
      (** restart redo (classic scan, instant single-page, or media
          roll-forward) applied the record at [lsn]/[gsn] to page [pid] —
          rule R8(b) requires per-page gsn-monotone application *)
  | Daemon_spawn of { name : string }
  | Daemon_exit of { name : string }
  | Restart_phase of { phase : string }
  | Protocol_locks of { op : string; reqs : string }
  | Io_retry of { target : string; pid : int; attempt : int }
      (** a transient I/O error is being retried with bounded backoff;
          [target] is ["page-read"], ["page-write"] or ["log-force"]
          ([pid] = 0 for log forces) *)
  | Page_quarantined of { pid : int; cause : string }
      (** a stored page image failed its CRC / structural decode on read
          and was quarantined pending automatic media repair *)
  | Page_repaired of { pid : int; records : int }
      (** media repair rebuilt the quarantined page from the archive + log
          history, replaying [records] log records *)
  | Restart_dpt of { pool : int; pid : int; rec_lsn : int }
      (** instant restart: Analysis placed this page in the needs-redo set
          with the given recLSN — rule R7(a) forbids serving it to a fix
          before its on-demand redo completes *)
  | Restart_redo_page of { pool : int; pid : int; on_demand : bool }
      (** instant restart began single-page redo of an in-DPT page
          ([on_demand]: triggered by a user fix, not the drain daemon) *)
  | Restart_page_done of { pool : int; pid : int; applied : int }
      (** single-page redo finished ([applied] records replayed); the page
          left the needs-redo set and fixes may be served again *)
  | Restart_loser of { txn : int }
      (** instant restart: Analysis identified this loser; its undo is
          deferred to the drain daemon / lock-conflict preemption *)
  | Restart_lock of { txn : int; name : string; mode : string }
      (** a loser lock was re-acquired on the loser's behalf during
          Analysis — rule R7(b) forbids granting this name to another txn
          before the loser's undo completes *)
  | Restart_undo_txn of { txn : int; preempted : bool }
      (** instant restart began undoing this loser ([preempted]: driven by
          a conflicting new txn's lock request, not the drain daemon) *)
  | Restart_loser_done of { txn : int }
      (** the loser's rollback completed; its reacquired locks are about
          to be released and its names become grantable again *)
  | Mvcc_pin of { txn : int; epoch : int; gsn : int }
      (** a snapshot reader pinned its CSN horizon at its first Mvcc fetch
          — every chain version it may observe must be stamped at or below
          (epoch, gsn) *)
  | Mvcc_read_begin of { txn : int }
      (** an Mvcc snapshot read entered its wait-free window — until the
          matching [Mvcc_read_end], rule R9 forbids this txn any lock
          request or lock wait (snapshot readers never touch the lock
          manager) *)
  | Mvcc_read of { txn : int; epoch : int; gsn : int; visible : bool }
      (** a key resolved against a committed chain version stamped
          (epoch, gsn) — rule R9 requires that CSN be at or below the
          reader's pinned snapshot *)
  | Mvcc_read_end of { txn : int }
  | Mvcc_unpin of { txn : int }
      (** the reader's snapshot was released (commit/rollback) and no
          longer holds the GC horizon down *)
  | Vgc_round of { reclaimed : int; epoch : int; gsn : int }
      (** a version-GC daemon round reclaimed [reclaimed] chain versions
          strictly below the oldest-active-snapshot horizon (epoch, gsn) *)
  | Twopc_prepared of { gid : int; shard : int; txn : int; targets : (int * int) list }
      (** a 2PC participant forced its Prepare record for global txn [gid];
          [targets] are the (log id, end offset) pairs its vote claims are
          stable — rule R10(a) records them and checks every one against
          the flushed boundary when the coordinator later decides commit *)
  | Twopc_decide of { gid : int; commit : bool; log : int; lsn_end : int }
      (** the coordinator decided [gid]; for [commit = true] the decision
          record [log, lsn_end) and every recorded Prepare target must
          already be forced (rule R10(a)) — an abort decision carries no
          durability obligation (presumed abort) *)
  | Twopc_ack of { gid : int; committed : bool }
      (** the global outcome was acknowledged to the client — rule R10(b)
          forbids a committed ack before a durable commit decision *)
  | Twopc_resolve of { gid : int; shard : int; txn : int; committed : bool }
      (** restart resolved an in-doubt participant branch of [gid]; rule
          R10(b) requires a durable commit decision for [committed = true]
          ([false] is always legal: absence of a decision presumes abort) *)
  | Shard_event of { shard : int; what : string }
      (** shard lifecycle: "down" / "up" / "killed" / "revived" / "parked" *)
  | Note of string

type event = { ev_step : int; ev_fiber : int; ev_payload : payload }

type mode = Off | Record | Check

val set_mode : mode -> unit

val mode : unit -> mode

val enabled : unit -> bool
(** [mode () <> Off] — the guard every emit site checks first, so a
    disabled tracer costs one flag test and no allocation. *)

val checking : unit -> bool

val emit : payload -> unit
(** Stamp the payload with the current fiber/step, append it to the ring,
    bump [Stats.trace_events], and (in {!Check} mode) run the registered
    checker — which may raise. No-op when {!Off}. *)

val run_start : int -> unit
(** Called by [Sched.run] with the new run id. Emits {!Run_begin}, telling
    the checker to discard volatile (per-fiber, per-run) state. *)

val set_context : fiber:(unit -> int) -> steps:(unit -> int) -> unit
(** Install the fiber-id / step-counter providers (done by [Aries_sched] at
    module initialization). *)

val register_checker : (event -> unit) -> unit
(** Install the online checker consulted in {!Check} mode. *)

val reset : unit -> unit
(** Clear the ring buffer (but not the mode, context, or checker). *)

val set_capacity : int -> unit
(** Resize the ring (clears it). The default keeps the last 4096 events. *)

val capacity : unit -> int

val event_count : unit -> int
(** Total events emitted since the last {!reset} (may exceed capacity). *)

val events : unit -> event list
(** Oldest-first snapshot of the retained window. *)

val last_events : int -> event list

val event_to_string : event -> string

val payload_to_string : payload -> string

val dump_last : int -> string list
(** The last [n] retained events, rendered — the SIM-REPRO artifact dumped
    alongside a failing seed. Bumps [Stats.trace_dumps]. *)
