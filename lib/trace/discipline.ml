open Aries_util

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10

let rule_to_string = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"
  | R10 -> "R10"

let rule_summary = function
  | R1 -> "no unconditional lock wait while holding a latch"
  | R2 -> "latch depth <= 3, parent-to-child coupling order only"
  | R3 -> "one SMO in flight per tree"
  | R4 -> "no commit ack before the covering force"
  | R5 -> "no page write with pageLSN above the flushed log (WAL rule)"
  | R6 -> "no truncation past the safety point; no page write with recLSN in a reclaimed segment"
  | R7 ->
      "no page served while in the needs-redo set; no loser-locked name granted before that \
       loser's undo completes"
  | R8 ->
      "no commit ack before every touched stream is forced through the epoch fence; no redo \
       applied out of (epoch, gsn) order per page"
  | R9 ->
      "an Mvcc snapshot read issues no lock request and never waits; no observed version CSN \
       above the reader's pinned snapshot"
  | R10 ->
      "no global commit decision or ack before the decision record and every participant's \
       Prepare are provably forced; no in-doubt branch committed without a durable decision \
       (presumed abort: an abort needs no record)"

exception Violation of rule * string

let () =
  Printexc.register_printer (function
    | Violation (r, msg) ->
        Some (Printf.sprintf "Discipline.Violation(%s: %s)" (rule_to_string r) msg)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Checker state. Fiber-keyed state is volatile: it belongs to one
   scheduler incarnation and is discarded at [Run_begin] (fiber ids are
   reused across runs). Log-keyed state ([flushed]) mirrors durable state
   and survives runs — exactly like the real flushed boundary survives a
   simulated crash. *)

let max_latch_depth = 3

type fiber_state = { mutable fs_latches : (Trace.latch_kind * string) list (* newest first *) }

let fibers : (int, fiber_state) Hashtbl.t = Hashtbl.create 32

(* log id -> stable end offset, learned only from Log_open / Log_force *)
let flushed : (int, int) Hashtbl.t = Hashtbl.create 4

(* log id -> last independently announced reclamation safety point
   (Log_safety, emitted by the safety computation itself — monotone
   nondecreasing, so trusting the latest announcement is sound) *)
let safety : (int, int) Hashtbl.t = Hashtbl.create 4

(* log id -> current log start offset (start of the oldest live segment),
   advanced only by Log_truncate events the checker has already vetted *)
let log_start : (int, int) Hashtbl.t = Hashtbl.create 4

(* tree id -> in-flight SMOs as (txn, exclusive) *)
let smos : (int, (int * bool) list ref) Hashtbl.t = Hashtbl.create 4

(* pids currently under media repair (Page_quarantined .. Page_repaired):
   the repair roll-forward redoes from the log {e archive}, so the page it
   flushes legitimately carries a recLSN below the live log's start — R6(b)
   does not apply to it. *)
let repairing : (int, unit) Hashtbl.t = Hashtbl.create 4

(* Instant-restart state (PR 6), volatile like [repairing]: a crash wipes
   the engine along with the rest of the run.

   [needs_redo]: (pool, pid) pairs announced by Restart_dpt whose on-demand
   redo has not yet finished — R7(a) forbids serving them to a Page_fix,
   except inside the delimited Restart_redo_page .. Restart_page_done
   window ([redoing]), where the redo roll-forward itself fixes the page.
   Keyed by (pool, pid), not bare pid: a sharded Db runs one pool per
   shard with independent page namespaces, and interleaved shard restarts
   must not see each other's needs-redo state.

   [loser_locks]: lock name -> loser txn that re-acquired it during
   Analysis; [live_losers]: losers whose undo has not completed. R7(b)
   forbids granting a loser-locked name to any other txn while the loser
   is live. *)
let needs_redo : (int * int, unit) Hashtbl.t = Hashtbl.create 8

let redoing : (int * int, unit) Hashtbl.t = Hashtbl.create 4

let loser_locks : (string, int) Hashtbl.t = Hashtbl.create 8

let live_losers : (int, unit) Hashtbl.t = Hashtbl.create 4

(* (stream, pid) -> gsn of the last redo applied to the page this run
   (R8(b)): restart redo must hit each page in strictly increasing gsn
   order. All of a page's records live on one stream, so keying by
   (stream, pid) tracks exactly the per-page order — and keeps shards
   apart, since pools reuse page ids but stream ids are process-unique.
   Volatile — a new run means a new recovery; a quarantine means media
   repair rebuilds the page from the archived dump, legitimately
   restarting its redo history. *)
let redo_gsn : (int * int, int) Hashtbl.t = Hashtbl.create 8

(* Mvcc reader state (PR 8), volatile like the version store itself:
   [pins]: txn -> pinned snapshot (epoch, gsn); [reading]: txns inside an
   Mvcc_read_begin .. Mvcc_read_end window. R9(a) forbids a txn in the
   window any lock-manager interaction at all — the version chain replaces
   the current/next-key lock; R9(b) forbids a resolved version's CSN from
   exceeding the reader's pin (snapshot isolation would silently break). *)
let pins : (int, int * int) Hashtbl.t = Hashtbl.create 8

let reading : (int, unit) Hashtbl.t = Hashtbl.create 8

(* 2PC state (PR 10), durable like [flushed]: prepares and decisions are
   facts about the logs and survive simulated crashes.

   [prepare_targets]: gid -> every (log id, end offset) a participant's
   Prepare vote claimed stable (accumulated across participants);
   [decided]: gids with a provably durable commit decision. R10(a) checks a
   commit decision's own record and all recorded Prepare targets against
   the flushed boundaries; R10(b) forbids a committed ack or a committed
   in-doubt resolution without a durable decision. *)
let prepare_targets : (int, (int * int) list) Hashtbl.t = Hashtbl.create 8

let decided : (int, unit) Hashtbl.t = Hashtbl.create 8

let violations_count = ref 0

let violations () = !violations_count

let reset_run_state () =
  Hashtbl.reset fibers;
  Hashtbl.reset smos;
  Hashtbl.reset repairing;
  Hashtbl.reset needs_redo;
  Hashtbl.reset redoing;
  Hashtbl.reset loser_locks;
  Hashtbl.reset live_losers;
  Hashtbl.reset redo_gsn;
  Hashtbl.reset pins;
  Hashtbl.reset reading

let reset () =
  reset_run_state ();
  Hashtbl.reset flushed;
  Hashtbl.reset safety;
  Hashtbl.reset log_start;
  Hashtbl.reset prepare_targets;
  Hashtbl.reset decided;
  violations_count := 0

let fiber_state f =
  match Hashtbl.find_opt fibers f with
  | Some fs -> fs
  | None ->
      let fs = { fs_latches = [] } in
      Hashtbl.replace fibers f fs;
      fs

let latch_depth ~fiber =
  match Hashtbl.find_opt fibers fiber with Some fs -> List.length fs.fs_latches | None -> 0

let smo_list tree =
  match Hashtbl.find_opt smos tree with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace smos tree l;
      l

let violate rule fmt =
  Printf.ksprintf
    (fun msg ->
      incr violations_count;
      Stats.incr Stats.trace_violations;
      raise (Violation (rule, Printf.sprintf "%s (%s)" msg (rule_summary rule))))
    fmt

(* ------------------------------------------------------------------ *)
(* The online checker: one event at a time, raising on violation. *)

let check (ev : Trace.event) =
  let fiber = ev.Trace.ev_fiber in
  match ev.Trace.ev_payload with
  | Trace.Run_begin _ -> reset_run_state ()
  | Trace.Latch_acquire { kind; name; cond; waited = _; mode = _ } ->
      let fs = fiber_state fiber in
      (* R2 coupling order: latches are coupled parent before child; the
         tree latch is the root-most resource, so taking it while already
         holding a page latch is a child->parent inversion. Conditional
         grants never wait and cannot deadlock. *)
      if
        kind = Trace.Tree_latch && (not cond)
        && List.exists (fun (k, _) -> k = Trace.Page_latch) fs.fs_latches
      then
        violate R2 "fiber %d acquired tree latch %s while holding page latch(es) %s" fiber name
          (String.concat ","
             (List.filter_map
                (fun (k, n) -> if k = Trace.Page_latch then Some n else None)
                fs.fs_latches));
      fs.fs_latches <- (kind, name) :: fs.fs_latches;
      if List.length fs.fs_latches > max_latch_depth then
        violate R2 "fiber %d latch depth %d > %d: holding %s" fiber
          (List.length fs.fs_latches) max_latch_depth
          (String.concat "," (List.map snd fs.fs_latches))
  | Trace.Latch_release { name; kind = _ } -> (
      match Hashtbl.find_opt fibers fiber with
      | None -> ()
      | Some fs ->
          let rec remove = function
            | [] -> []
            | (_, n) :: rest when n = name -> rest
            | h :: rest -> h :: remove rest
          in
          fs.fs_latches <- remove fs.fs_latches)
  | Trace.Lock_wait { txn; name; mode } ->
      (* R1: a lock wait under latch can deadlock latch holders against
         lock holders, which neither manager can see (§2.2: lock requests
         made while holding a latch must be conditional). *)
      let d = latch_depth ~fiber in
      if d > 0 then
        violate R1 "txn %d (fiber %d) waits for lock %s %s while holding %d latch(es)" txn fiber
          mode name d;
      (* R9(a): a snapshot reader that blocks at all has lost wait-freedom *)
      if Hashtbl.mem reading txn then
        violate R9 "txn %d waits for lock %s %s inside an Mvcc snapshot read" txn mode name
  | Trace.Lock_request { txn; name; mode; duration = _; cond = _ } ->
      (* R9(a): inside the wait-free window even a conditional request is
         illegal — the version chain replaces the lock manager entirely *)
      if Hashtbl.mem reading txn then
        violate R9 "txn %d requested lock %s %s inside an Mvcc snapshot read" txn mode name
  | Trace.Mvcc_pin { txn; epoch; gsn } ->
      if not (Hashtbl.mem pins txn) then Hashtbl.replace pins txn (epoch, gsn)
  | Trace.Mvcc_read_begin { txn } -> Hashtbl.replace reading txn ()
  | Trace.Mvcc_read_end { txn } -> Hashtbl.remove reading txn
  | Trace.Mvcc_unpin { txn } ->
      Hashtbl.remove pins txn;
      Hashtbl.remove reading txn
  | Trace.Mvcc_read { txn; epoch; gsn; visible = _ } -> (
      (* R9(b): every committed version a reader resolves against must lie
         at or below its pinned snapshot — a higher CSN is a future write
         leaking into the snapshot. *)
      match Hashtbl.find_opt pins txn with
      | None -> violate R9 "txn %d resolved a version without a pinned snapshot" txn
      | Some (pe, pg) ->
          if (epoch, gsn) > (pe, pg) then
            violate R9 "txn %d observed version csn=%d.%d above its pinned snapshot %d.%d" txn
              epoch gsn pe pg)
  | Trace.Smo_begin { tree; txn; exclusive } ->
      let l = smo_list tree in
      if exclusive && !l <> [] then
        violate R3 "exclusive SMO by txn %d overlaps in-flight SMO(s) %s on tree %d" txn
          (String.concat "," (List.map (fun (t, _) -> string_of_int t) !l))
          tree;
      if List.exists (fun (_, ex) -> ex) !l then
        violate R3 "SMO by txn %d started while txn %s holds an exclusive SMO on tree %d" txn
          (String.concat ","
             (List.filter_map (fun (t, ex) -> if ex then Some (string_of_int t) else None) !l))
          tree;
      l := (txn, exclusive) :: !l
  | Trace.Smo_upgrade { tree; txn } ->
      let l = smo_list tree in
      if List.exists (fun (t, _) -> t <> txn) !l then
        violate R3 "SMO upgrade by txn %d granted while other SMO(s) in flight on tree %d" txn
          tree;
      l := List.map (fun (t, ex) -> if t = txn then (t, true) else (t, ex)) !l
  | Trace.Smo_end { tree; txn } ->
      let l = smo_list tree in
      if not (List.exists (fun (t, _) -> t = txn) !l) then
        violate R3 "SMO end by txn %d without a matching begin on tree %d" txn tree;
      let rec remove = function
        | [] -> []
        | (t, _) :: rest when t = txn -> rest
        | h :: rest -> h :: remove rest
      in
      l := remove !l
  | Trace.Log_open { log; flushed = f } -> Hashtbl.replace flushed log f
  | Trace.Log_force { log; upto; stable_lsn = _ } ->
      let cur = match Hashtbl.find_opt flushed log with Some f -> f | None -> 0 in
      Hashtbl.replace flushed log (max cur upto)
  | Trace.Log_safety { log; safety = s } ->
      (* the safety point is monotone nondecreasing; remember the furthest
         announcement so R6 can compare truncations against an authority
         other than the truncator itself *)
      let cur = match Hashtbl.find_opt safety log with Some v -> v | None -> 0 in
      Hashtbl.replace safety log (max cur s)
  | Trace.Log_truncate { log; new_start; bytes = _; segments = _ } ->
      (* R6(a): a truncation is legal only below the last independently
         announced safety point, and never into the volatile suffix. *)
      (match Hashtbl.find_opt flushed log with
      | Some f when new_start > f ->
          violate R6 "log %d truncated to %d beyond flushed offset %d" log new_start f
      | _ -> ());
      let s = match Hashtbl.find_opt safety log with Some v -> v | None -> 0 in
      if new_start > s then
        violate R6 "log %d truncated to %d past announced safety point %d" log new_start s;
      let cur = match Hashtbl.find_opt log_start log with Some v -> v | None -> 0 in
      Hashtbl.replace log_start log (max cur new_start)
  | Trace.Commit_ack { log; txn; lsn; lsn_end } -> (
      (* R4: an acknowledged commit whose record is not covered by a force
         is a durability lie — group-commit aware, because the daemon's
         batched force emits Log_force before waking any covered
         committer. *)
      match Hashtbl.find_opt flushed log with
      | None -> ()  (* log opened before tracing was enabled: no baseline *)
      | Some f ->
          if lsn_end > f then
            violate R4 "txn %d acked with commit record [%d,%d) beyond flushed offset %d" txn
              lsn lsn_end f)
  | Trace.Page_write { log; pid; page_lsn; lsn_end; rec_lsn } ->
      (* R5, the WAL rule: the log must cover the page's latest update
         before the page image reaches disk. *)
      (if page_lsn > 0 then
         match Hashtbl.find_opt flushed log with
         | None -> ()
         | Some f ->
             if lsn_end > f then
               violate R5
                 "page %d written with pageLSN %d (record end %d) beyond flushed offset %d" pid
                 page_lsn lsn_end f);
      (* R6(b): a dirty page whose first unflushed update (recLSN) lies in
         a reclaimed segment means the truncation destroyed redo records a
         crash would still need — unless the page is under media repair,
         whose roll-forward redoes from the archived copies of exactly
         those segments. *)
      if rec_lsn > 0 && not (Hashtbl.mem repairing pid) then begin
        match Hashtbl.find_opt log_start log with
        | Some start when rec_lsn < start ->
            violate R6 "page %d written with recLSN %d inside reclaimed prefix (log start %d)"
              pid rec_lsn start
        | _ -> ()
      end
  | Trace.Log_tail_truncated { log; at; bytes = _ } ->
      (* the tail scan's verdict is the new end of log; keep the checker's
         stable boundary from exceeding it (the subsequent Log_open
         re-baseline makes this exact) *)
      (match Hashtbl.find_opt flushed log with
      | Some f when f > at -> Hashtbl.replace flushed log at
      | _ -> ())
  | Trace.Commit_fence { txn; epoch = _; targets } ->
      (* R8(a): the acknowledgement claims the epoch fence was honored —
         every stream the txn touched must already be forced through the
         txn's last record there. An ack with an unforced target is the
         multi-stream durability lie: the commit record may be stable on
         its own stream while a touched stream's tail is still volatile. *)
      List.iter
        (fun (log, lsn_end) ->
          match Hashtbl.find_opt flushed log with
          | None -> ()  (* log opened before tracing was enabled: no baseline *)
          | Some f ->
              if lsn_end > f then
                violate R8 "txn %d acked with stream %d fence target %d beyond flushed offset %d"
                  txn log lsn_end f)
        targets
  | Trace.Redo_apply { log; pid; lsn; gsn } ->
      (* R8(b): per-page redo order. A page's records all live on one
         stream, so replaying them in ascending gsn is replaying them in
         append order; a non-monotone application means the merge (or a
         single-page roll-forward) fed history to the page backwards.
         Keyed by (stream, pid): pools reuse page ids, stream ids don't. *)
      (match Hashtbl.find_opt redo_gsn (log, pid) with
      | Some g when gsn <= g ->
          violate R8
            "redo applied to page %d (stream %d) at lsn %d with gsn %d not above last applied gsn %d"
            pid log lsn gsn g
      | _ -> ());
      Hashtbl.replace redo_gsn (log, pid) gsn
  | Trace.Page_quarantined { pid; cause = _ } ->
      Hashtbl.replace repairing pid ();
      (* media repair rebuilds from the archived dump: its roll-forward
         legitimately restarts the page's redo history from the beginning.
         The quarantine event carries no stream id, so drop the page's
         entry on every stream — conservative: it can only suppress, never
         invent, a violation. *)
      Hashtbl.filter_map_inplace
        (fun (_, p) g -> if p = pid then None else Some g)
        redo_gsn
  | Trace.Page_repaired { pid; records = _ } -> Hashtbl.remove repairing pid
  | Trace.Restart_dpt { pool; pid; rec_lsn = _ } -> Hashtbl.replace needs_redo (pool, pid) ()
  | Trace.Restart_redo_page { pool; pid; on_demand = _ } ->
      Hashtbl.replace redoing (pool, pid) ()
  | Trace.Restart_page_done { pool; pid; applied = _ } ->
      Hashtbl.remove needs_redo (pool, pid);
      Hashtbl.remove redoing (pool, pid)
  | Trace.Page_fix { pool; pid } ->
      (* R7(a): a page still awaiting its on-demand redo must not be served
         to anyone — its image predates crash-surviving updates. The redo
         roll-forward itself fixes the page inside the delimited
         Restart_redo_page .. Restart_page_done window, which is legal. *)
      if Hashtbl.mem needs_redo (pool, pid) && not (Hashtbl.mem redoing (pool, pid)) then
        violate R7 "page %d (pool %d) fixed while still in the needs-redo set" pid pool
  | Trace.Restart_loser { txn } -> Hashtbl.replace live_losers txn ()
  | Trace.Restart_lock { txn; name; mode = _ } -> Hashtbl.replace loser_locks name txn
  | Trace.Restart_undo_txn _ -> ()
  | Trace.Restart_loser_done { txn } ->
      Hashtbl.remove live_losers txn;
      Hashtbl.filter_map_inplace
        (fun _ loser -> if loser = txn then None else Some loser)
        loser_locks
  | Trace.Lock_grant { txn; name; mode = _; duration = _; waited = _ } -> (
      (* R7(b): a name re-locked on a loser's behalf protects uncommitted
         state; granting it to another txn before the loser's undo
         completes leaks that state. *)
      match Hashtbl.find_opt loser_locks name with
      | Some loser when loser <> txn && Hashtbl.mem live_losers loser ->
          violate R7 "lock %s granted to txn %d while loser txn %d still holds it" name txn
            loser
      | _ -> ())
  | Trace.Restart_phase { phase } ->
      (* a fresh restart replays history anew: per-page redo positions from
         the previous incarnation (background drains, media repairs) no
         longer bound this recovery's applications *)
      if String.equal phase "analysis" then Hashtbl.reset redo_gsn
  | Trace.Twopc_prepared { gid; shard = _; txn = _; targets } ->
      let cur =
        match Hashtbl.find_opt prepare_targets gid with Some l -> l | None -> []
      in
      Hashtbl.replace prepare_targets gid (targets @ cur)
  | Trace.Twopc_decide { gid; commit; log; lsn_end } ->
      if commit then begin
        (* R10(a): the commit decision claims durability — its own record
           and every participant Prepare it is predicated on must already
           lie below the flushed boundaries. An unforced decision is the
           distributed durability lie: a coordinator crash would presume
           abort while participants were told to commit. *)
        (match Hashtbl.find_opt flushed log with
        | None -> ()  (* log opened before tracing was enabled: no baseline *)
        | Some f ->
            if lsn_end > f then
              violate R10
                "gid %d decided commit with decision record end %d beyond flushed offset %d \
                 of log %d"
                gid lsn_end f log);
        List.iter
          (fun (plog, pend) ->
            match Hashtbl.find_opt flushed plog with
            | None -> ()
            | Some f ->
                if pend > f then
                  violate R10
                    "gid %d decided commit with Prepare target %d beyond flushed offset %d \
                     of log %d"
                    gid pend f plog)
          (match Hashtbl.find_opt prepare_targets gid with Some l -> l | None -> []);
        Hashtbl.replace decided gid ()
      end
  | Trace.Twopc_ack { gid; committed } ->
      (* R10(b): a committed ack without a durable decision *)
      if committed && not (Hashtbl.mem decided gid) then
        violate R10 "gid %d acked committed without a durable commit decision" gid
  | Trace.Twopc_resolve { gid; shard = _; txn; committed } ->
      (* R10(b): restart may only commit an in-doubt branch on the strength
         of a durable decision; aborting is always legal (presumed abort) *)
      if committed && not (Hashtbl.mem decided gid) then
        violate R10 "gid %d branch txn %d resolved committed without a durable commit decision"
          gid txn
  | Trace.Latch_try_fail _ | Trace.Lock_deny _
  | Trace.Lock_release _ | Trace.Lock_release_all _ | Trace.Deadlock_victim _
  | Trace.Log_append _ | Trace.Log_seal _ | Trace.Log_archive _ | Trace.Ckpt_take _
  | Trace.Page_unfix _ | Trace.Commit_enqueue _
  | Trace.Daemon_spawn _ | Trace.Daemon_exit _
  | Trace.Protocol_locks _ | Trace.Io_retry _ | Trace.Vgc_round _ | Trace.Shard_event _
  | Trace.Note _ ->
      ()

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Trace.register_checker check
  end
