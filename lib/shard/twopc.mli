(** Presumed-abort 2PC wire formats and the coordinator decision scan.

    The protocol keeps no state outside the existing write-ahead logs:

    - a participant's vote is its {e Prepare} record, whose body carries
      this module's [meta] blob (global transaction id + coordinator
      shard) alongside the fence targets and lock list;
    - the coordinator's commit decision is a {e Coord_commit} record on
      its control stream, forced before the global commit is acknowledged;
    - abort needs {e no} record at all — under presumed abort the absence
      of a surviving Coord_commit {e is} the abort decision. A
      Coord_abort record is an optional, never-forced hint that lets live
      resolution skip the retry wait;
    - {e Coord_end} closes the gid's in-doubt window once every
      participant acknowledged the decision (bookkeeping, never forced).

    All codecs raise [Aries_util.Bytebuf.Corrupt] on truncated or
    oversized input. *)

module Lsn = Aries_wal.Lsn

val encode_prepare_meta : gid:int -> coord:int -> bytes
(** The [?meta] blob for {!Aries_txn.Txnmgr.prepare}: the participant
    branch belongs to global transaction [gid] coordinated by shard
    [coord]. *)

val decode_prepare_meta : bytes -> int * int
(** [(gid, coord)]. *)

val encode_decision : gid:int -> parts:int list -> bytes
(** Body of a Coord_commit / Coord_abort record: the decided global
    transaction and its participant shards. *)

val decode_decision : bytes -> int * int list

val encode_end : gid:int -> bytes
(** Body of a Coord_end record. *)

val decode_end : bytes -> int

type decision = {
  dc_commit : bool;  (** a Coord_commit survives ([false]: only a hint Coord_abort) *)
  dc_lsn : Lsn.t;  (** the decision record's LSN on the coordinator's control stream *)
  dc_end : int;  (** its framed end offset — what must lie below the flushed boundary *)
}

val record_end : Aries_wal.Logrec.t -> int
(** Exact framed end offset of a record ([lsn] + header + body + frame),
    computable even for records living in archived segments. *)

val decisions : Aries_db.Db.t -> (int, decision) Hashtbl.t
(** Scan the coordinator's full log history (live + archived) for
    surviving decision records, gid-keyed. A gid absent from the table has
    {e no} durable decision: presumed abort. Restart resolution and the
    in-doubt leak audit both read this. *)
