(** A sharded database: K independent {!Aries_db.Db} environments under
    one cooperative scheduler, a key router, and presumed-abort two-phase
    commit driven entirely through the shards' own write-ahead logs.

    {2 Commit protocol}

    A global transaction accumulates one local branch per shard its keys
    route to. [commit] on a single-branch transaction is a plain local
    commit (no 2PC records at all). A multi-branch commit runs
    presumed-abort 2PC: every branch is {e prepared} (Prepare record
    carrying fence targets, commit-duration locks, and the [Twopc] meta
    naming gid + coordinator, forced through the epoch fence); the
    coordinator — the shard of the first-touched branch — appends
    Coord_commit to its control stream and {e forces it before the global
    acknowledgement} (rule R10); phase 2 then delivers the outcome to each
    branch with bounded retry + backoff. Abort writes nothing mandatory:
    the absence of a durable Coord_commit {e is} the abort decision.

    {2 Crash behaviour}

    Prepared branches survive any crash as {e in-doubt}: restart (classic
    or instant) restores them with their commit-duration locks reacquired
    and held until {!resolve_indoubts} re-reads (or re-decides by
    presumption) the coordinator's outcome. A downed shard never blocks a
    healthy one — operations routed to it fail fast with {!Shard_down},
    phase-2 deliveries park after [retry_limit] attempts and are drained
    on {!revive}, and in-doubt branches whose coordinator is down stay
    parked with locks held (the only sound choice).

    {2 Deadlocks}

    Cross-shard deadlocks are invisible to every per-shard lock manager;
    the [detect_every]-periodic service daemon unions the per-shard
    waits-for slices ({!Aries_lock.Lockmgr.waiting}) into a global graph
    over gids and aborts the youngest waiter in any cycle
    ({!Aries_lock.Lockmgr.abort_waiter}), with a [lock_timeout] fallback
    for anything the graph cannot see. *)

open Aries_util
module Db = Aries_db.Db
module Btree = Aries_btree.Btree
module Txnmgr = Aries_txn.Txnmgr
module Restart = Aries_recovery.Restart

exception Shard_down of int
(** The operation routed to a shard that is down ({!kill}ed, or its
    ["shard.down.<k>"] fault switch is active). Fail-fast by design. *)

exception Global_abort of int * string
(** [commit] aborted the global transaction by presumption (a branch
    failed, a shard was down, a deadlock victim...). Every reachable
    branch has been rolled back when this is raised. *)

type router =
  | Hash  (** [hash value mod K] *)
  | Range of string list  (** K-1 ascending split points; value < point i → shard i *)

type t

type gtxn

val create :
  ?shards:int ->
  ?router:router ->
  ?config:Btree.config ->
  ?retry_limit:int ->
  ?retry_backoff:int ->
  ?lock_timeout:int ->
  ?detect_every:int ->
  ?page_size:int ->
  ?pool_capacity:int ->
  ?commit_mode:Db.commit_mode ->
  ?segment_size:int ->
  ?streams:int ->
  unit ->
  t
(** [shards] (default 2) environments, each built like {!Db.create} with
    the shared knobs. [retry_limit]/[retry_backoff] (3 / 8 scheduler
    steps) bound phase-2 delivery against a down shard before parking.
    [lock_timeout] (0 = off) aborts any lock wait older than that many
    steps; [detect_every] (16; 0 = off) is the global deadlock / parked
    retry service period. {!kill} requires daemon-less shards (default
    [Per_commit], no cleaner/checkpointer). *)

val setup : t -> unit
(** Create each shard's tree (one committed local transaction per shard).
    Run inside a scheduler fiber, once, before any workload. *)

val n : t -> int

val db : t -> int -> Db.t
(** Shard [k]'s current environment handle (changes across kill/crash). *)

val btree : t -> int -> Btree.t
(** Shard [k]'s tree (for invariant checks and state dumps). Raises if
    the shard's tree is not open ({!setup} not run, or shard down). *)

val is_up : t -> int -> bool

val shard_of : t -> string -> int
(** Where the router sends this key. *)

val run :
  ?policy:Aries_sched.Sched.policy ->
  ?max_steps:int ->
  ?yield_probability:float ->
  t ->
  (unit -> unit) ->
  Aries_sched.Sched.result
(** Run a workload under the cooperative scheduler: starts every up
    shard's daemons plus the global service daemon, then the workload. *)

val start_services : t -> unit
(** What {!run} does before the workload — for callers driving
    [Sched.run] themselves. *)

(** {1 Global transactions} *)

val begin_gtxn : t -> gtxn

val gid : gtxn -> int

val participants : gtxn -> int list
(** Shards holding a branch, first-touch order; the head is the
    coordinator of a multi-branch commit. *)

val branches : gtxn -> (int * Ids.txn_id) list
(** The branches as [(shard, local txn id)] pairs, first-touch order —
    what an external oracle needs to decide committed-ness after a
    crash: a single-branch transaction by its local Commit record, a
    multi-branch one by the coordinator's decision ({!Twopc.decisions}). *)

val local : t -> gtxn -> int -> Txnmgr.txn
(** The transaction's branch on shard [k], begun on first use. Raises
    {!Shard_down} if the shard is down. *)

val insert : t -> gtxn -> value:string -> rid:Ids.rid -> unit

val delete : t -> gtxn -> value:string -> rid:Ids.rid -> unit

val fetch :
  t ->
  gtxn ->
  ?comparison:[ `Eq | `Ge | `Gt ] ->
  ?isolation:[ `Rr | `Cs ] ->
  string ->
  Aries_page.Key.t option

val commit : t -> gtxn -> unit
(** Commit everywhere or abort everywhere. Raises {!Global_abort} after
    rolling back every reachable branch if any prepare or the decision
    fails (down shard, deadlock victim...). A phase-2 delivery that
    exhausts its retries parks — the commit still returns: the decision
    is durable and the parked branch resolves on {!revive}. *)

val abort : t -> gtxn -> unit
(** Roll back every reachable branch. No decision record is required
    (presumed abort); a never-forced Coord_abort hint is logged when the
    coordinator is up. *)

(** {1 Crash / restart / fail-stop} *)

val crash : t -> unit
(** Whole-cluster power failure: every shard's volatile state is
    discarded over its surviving stable state ({!Db.crash}); the global
    transaction registry and parked deliveries are volatile and lost. *)

val restart : ?instant:bool -> t -> Restart.report array * int
(** Restart every shard (classic or instant) and then resolve in-doubts
    cluster-wide. Returns the per-shard reports and the number of
    in-doubt branches resolved. *)

val kill : t -> int -> unit
(** Targeted fail-stop of one shard: mark it down, break its lock waiters
    so in-flight fibers unwind, then discard its volatile state in place.
    Healthy shards keep running throughout. *)

val revive : ?instant:bool -> t -> int -> Restart.report option
(** Restart a {!kill}ed shard, reopen its tree, mark it up, resolve
    in-doubts cluster-wide (both this shard's branches and other shards'
    branches that were waiting on this coordinator), and drain parked
    deliveries. [None] if the shard was not down. *)

val resolve_indoubts : t -> int
(** Resolve every in-doubt branch whose coordinator is up: commit it if a
    durable Coord_commit survives (re-announcing the decision for rule
    R10), abort it by presumption otherwise. Branches whose coordinator
    is down stay parked with locks held. Also drains parked phase-2
    deliveries. Returns the number of branches resolved. *)

(** {1 Maintenance} *)

val detect_once : t -> int
(** One global deadlock detection pass (what the service daemon runs
    every [detect_every] steps). Returns the number of victims aborted. *)

val drain_parked : t -> unit

val leak_report : t -> string list
(** Aggregate quiescence audit: every up shard's {!Db.leak_report} line
    (prefixed with its shard id), plus a line per in-doubt branch still
    holding locks although its coordinator is up and its outcome is
    decidable — a missed resolution. Down shards are skipped (their
    volatile state is legitimately gone). *)

val close : t -> unit
