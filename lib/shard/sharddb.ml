(* A sharded database: K independent [Db] environments under one
   cooperative scheduler, a key router, and presumed-abort two-phase
   commit driven entirely through the shards' own write-ahead logs.

   Each shard is a full single-node engine (its own disk, logset, buffer
   pool, lock table, transaction manager, B-tree). A global transaction
   accumulates one local branch per shard its keys route to; commit runs
   the classic presumed-abort protocol:

     phase 1   prepare every branch (Prepare record carrying the fence
               targets, the branch's commit-duration locks, and the
               [Twopc] meta naming gid + coordinator), forced through the
               epoch fence;
     decision  the coordinator (the shard of the first branch) appends
               Coord_commit to its control stream and forces it — the
               global commit is acknowledged only after this force
               (rule R10); abort writes nothing mandatory;
     phase 2   deliver the outcome to every branch (commit_prepared /
               rollback) with bounded retry + backoff; a branch on a
               downed shard parks as in-doubt — its commit-duration locks
               are restored by that shard's restart and held until the
               coordinator's decision is re-read.

   A downed shard never blocks healthy ones: every operation routed to it
   fails fast with [Shard_down], phase-2 delivery parks after
   [retry_limit] attempts, and restart resolution skips branches whose
   coordinator is down (they stay in-doubt, locks held — exactly the
   paper's recovery contract). Cross-shard deadlocks, invisible to any
   single lock manager, are broken by a detector that unions the
   per-shard waits-for slices ([Lockmgr.waiting]) into a global graph,
   with a wait-timeout fallback. *)

open Aries_util
module Db = Aries_db.Db
module Btree = Aries_btree.Btree
module Txnmgr = Aries_txn.Txnmgr
module Lockmgr = Aries_lock.Lockmgr
module Logmgr = Aries_wal.Logmgr
module Logset = Aries_wal.Logset
module Logrec = Aries_wal.Logrec
module Lsn = Aries_wal.Lsn
module Sched = Aries_sched.Sched
module Trace = Aries_trace.Trace
module Discipline = Aries_trace.Discipline
module Restart = Aries_recovery.Restart

exception Shard_down of int
(** The operation routed to a shard that is down (fail-stop switch or
    {!kill}). Never blocks: degrade-gracefully means fail fast. *)

exception Global_abort of int * string
(** The global transaction was aborted (by presumption) during commit —
    every reachable branch has been rolled back when this is raised. *)

type router = Hash | Range of string list

type shard = {
  sx_id : int;
  mutable sx_db : Db.t;
  mutable sx_tree : Btree.t option;
  mutable sx_index : Ids.index_id;
  mutable sx_down : bool;
  mutable sx_epoch : int;  (* incarnation counter: bumped by kill/crash *)
  mutable sx_inflight : int;  (* operations currently inside [with_shard] *)
}

type gtxn = {
  gid : int;
  mutable parts : (int * Txnmgr.txn) list;  (* first-touch order; head = coordinator *)
  mutable finished : bool;
}

(* phase-2 deliveries that exhausted their retries against a down shard *)
type parked = {
  mutable pk_pending : (int * Ids.txn_id) list;
  pk_coord : int;
  pk_commit : bool;
}

type t = {
  shards : shard array;
  router : router;
  config : Btree.config option;
  retry_limit : int;
  retry_backoff : int;
  lock_timeout : int;
  detect_every : int;
  mutable incarnation : int;  (* gid namespace: bumped on every crash/kill *)
  mutable next_seq : int;
  gtxns : (int, gtxn) Hashtbl.t;
  owners : (int * Ids.txn_id, int) Hashtbl.t;  (* (shard, local txn) -> gid *)
  parked : (int, parked) Hashtbl.t;
}

let create ?(shards = 2) ?(router = Hash) ?config ?(retry_limit = 3) ?(retry_backoff = 8)
    ?(lock_timeout = 0) ?(detect_every = 16) ?page_size ?pool_capacity ?commit_mode
    ?segment_size ?streams () =
  if shards < 1 then invalid_arg "Sharddb.create: need at least one shard";
  (match router with
  | Hash -> ()
  | Range bounds ->
      if List.length bounds <> shards - 1 then
        invalid_arg "Sharddb.create: a Range router needs exactly shards-1 split points");
  let mk k =
    {
      sx_id = k;
      sx_db = Db.create ?page_size ?pool_capacity ?config ?commit_mode ?segment_size ?streams ();
      sx_tree = None;
      sx_index = 0;
      sx_down = false;
      sx_epoch = 0;
      sx_inflight = 0;
    }
  in
  {
    shards = Array.init shards mk;
    router;
    config;
    retry_limit;
    retry_backoff;
    lock_timeout;
    detect_every;
    incarnation = 0;
    next_seq = 0;
    gtxns = Hashtbl.create 64;
    owners = Hashtbl.create 64;
    parked = Hashtbl.create 8;
  }

let n t = Array.length t.shards

let db t k = t.shards.(k).sx_db

let up s = (not s.sx_down) && not (Crashpoint.fault_active (Crashpoint.shard_down_fault s.sx_id))

let is_up t k = up t.shards.(k)

let tree s =
  match s.sx_tree with
  | Some x -> x
  | None -> invalid_arg "Sharddb: shard tree not open (setup not run / shard down)"

(* Every shard access funnels through here: fail fast when the shard is
   down, and count the operation so [kill] can quiesce before cutting. *)
let with_shard t k f =
  let s = t.shards.(k) in
  if not (up s) then raise (Shard_down k);
  s.sx_inflight <- s.sx_inflight + 1;
  Fun.protect ~finally:(fun () -> s.sx_inflight <- s.sx_inflight - 1) (fun () -> f s)

(* Is this branch handle still the live transaction object of the shard's
   current incarnation? After a kill + revive, the shard's table holds
   {e restored} objects (same ids, different identity) — or, for a branch
   that never logged, nothing at all; a stale handle must never be driven
   through prepare/commit against the new incarnation. *)
let live_branch s (tx : Txnmgr.txn) =
  match Txnmgr.find s.sx_db.Db.mgr tx.Txnmgr.txn_id with
  | Some tx' -> tx' == tx
  | None -> false

let setup t =
  Array.iter
    (fun s ->
      let mgr = s.sx_db.Db.mgr in
      let tx = Txnmgr.begin_txn mgr in
      let tr =
        Btree.create ?config:t.config s.sx_db.Db.benv tx
          ~name:(Printf.sprintf "shard%d" s.sx_id)
          ~unique:true
      in
      Txnmgr.commit mgr tx;
      s.sx_tree <- Some tr;
      s.sx_index <- Btree.index_id tr)
    t.shards

let shard_of t value =
  match t.router with
  | Hash -> Hashtbl.hash value mod Array.length t.shards
  | Range bounds ->
      let rec go i = function
        | [] -> i
        | b :: rest -> if value < b then i else go (i + 1) rest
      in
      go 0 bounds

(* ------------------------------------------------------------------ *)
(* Global transactions *)

let fresh_gid t =
  t.next_seq <- t.next_seq + 1;
  (t.incarnation * 1_000_000) + t.next_seq

let begin_gtxn t =
  let g = { gid = fresh_gid t; parts = []; finished = false } in
  Hashtbl.replace t.gtxns g.gid g;
  g

let gid g = g.gid

let participants g = List.map fst g.parts

let branches g = List.map (fun (k, tx) -> (k, tx.Txnmgr.txn_id)) g.parts

let local t g k =
  if g.finished then invalid_arg "Sharddb: global transaction already finished";
  match List.assoc_opt k g.parts with
  | Some tx ->
      (* the shard may have been killed and revived since this branch was
         begun: the handle is then an orphan of the dead incarnation — the
         global transaction cannot continue there *)
      if not (up t.shards.(k)) || not (live_branch t.shards.(k) tx) then raise (Shard_down k);
      tx
  | None ->
      with_shard t k (fun s ->
          let tx = Txnmgr.begin_txn s.sx_db.Db.mgr in
          g.parts <- g.parts @ [ (k, tx) ];
          Hashtbl.replace t.owners (k, tx.Txnmgr.txn_id) g.gid;
          tx)

let insert t g ~value ~rid =
  let k = shard_of t value in
  let tx = local t g k in
  with_shard t k (fun s -> Btree.insert (tree s) tx ~value ~rid)

let delete t g ~value ~rid =
  let k = shard_of t value in
  let tx = local t g k in
  with_shard t k (fun s -> Btree.delete (tree s) tx ~value ~rid)

let fetch t g ?comparison ?isolation value =
  let k = shard_of t value in
  let tx = local t g k in
  with_shard t k (fun s -> Btree.fetch (tree s) tx ?comparison ?isolation value)

let forget t g =
  g.finished <- true;
  List.iter (fun (k, tx) -> Hashtbl.remove t.owners (k, tx.Txnmgr.txn_id)) g.parts;
  Hashtbl.remove t.gtxns g.gid

(* ------------------------------------------------------------------ *)
(* Presumed-abort 2PC *)

let coord_record t ~coord ~kind ~body =
  let s = t.shards.(coord) in
  Logset.append s.sx_db.Db.logs ~stream:0
    (Logrec.make ~body ~txn:Ids.nil_txn ~prev_lsn:Lsn.nil kind)

let abort t g =
  if not g.finished then begin
    List.iter
      (fun (k, tx) ->
        let s = t.shards.(k) in
        (* physical equality: a kill + revive may have reissued this txn id
           to an unrelated transaction of the new incarnation *)
        if up s && live_branch s tx then
          match tx.Txnmgr.state with
          | Txnmgr.Active | Txnmgr.Prepared ->
              Txnmgr.rollback s.sx_db.Db.mgr ~reason:"2pc abort" tx
          | Txnmgr.Committing | Txnmgr.Rolling_back -> ())
      g.parts;
    (* optional hint, never forced: presumed abort needs no record — a
       branch on a down shard resolves to abort from the record's absence
       just as well, this only spares live resolution the retry wait *)
    (match g.parts with
    | (c, _) :: _ :: _ when up t.shards.(c) ->
        ignore
          (coord_record t ~coord:c ~kind:Logrec.Coord_abort
             ~body:(Twopc.encode_decision ~gid:g.gid ~parts:(participants g)))
    | _ -> ());
    if Trace.enabled () then Trace.emit (Trace.Twopc_ack { gid = g.gid; committed = false });
    forget t g
  end

let prepare_branch t ~gid ~coord k tx =
  with_shard t k (fun s ->
      if not (live_branch s tx) then raise (Shard_down k);
      Txnmgr.prepare ~meta:(Twopc.encode_prepare_meta ~gid ~coord) s.sx_db.Db.mgr tx;
      if Trace.enabled () then
        Trace.emit
          (Trace.Twopc_prepared
             {
               gid;
               shard = k;
               txn = tx.Txnmgr.txn_id;
               targets =
                 List.map
                   (fun (si, l) ->
                     let m = Logset.stream s.sx_db.Db.logs si in
                     (Logmgr.id m, Logmgr.record_end m l))
                   (Txnmgr.touched tx);
             }))

let decide_commit t ~gid ~coord ~parts =
  with_shard t coord (fun s ->
      let lsn =
        coord_record t ~coord ~kind:Logrec.Coord_commit
          ~body:(Twopc.encode_decision ~gid ~parts)
      in
      let wal = Logset.control s.sx_db.Db.logs in
      (* R10's acknowledgement point: the decision force. The early-decide
         meta-fault skips it and acknowledges anyway — the discipline
         checker must flag the decide/ack. *)
      if not (Crashpoint.fault_active Crashpoint.fault_twopc_early_decide) then
        Logmgr.flush_to wal lsn;
      if Trace.enabled () then begin
        Trace.emit
          (Trace.Twopc_decide
             { gid; commit = true; log = Logmgr.id wal; lsn_end = Logmgr.record_end wal lsn });
        Trace.emit (Trace.Twopc_ack { gid; committed = true })
      end)

let backoff steps =
  if steps > 0 && Sched.in_fiber () then
    for _ = 1 to steps do
      Sched.yield ()
    done

(* Deliver the outcome to one branch, re-finding the local transaction by
   id: the shard may have crashed and restarted since prepare, in which
   case the branch is the restored in-doubt transaction — or is already
   gone because restart resolution read the decision itself. *)
let deliver_one t ~commit k txn_id =
  let rec go attempt =
    let s = t.shards.(k) in
    if up s then begin
      (match Txnmgr.find s.sx_db.Db.mgr txn_id with
      | Some tx when tx.Txnmgr.state = Txnmgr.Prepared ->
          with_shard t k (fun s ->
              if commit then Txnmgr.commit_prepared s.sx_db.Db.mgr tx
              else Txnmgr.rollback s.sx_db.Db.mgr ~reason:"2pc abort" tx)
      | Some _ | None -> ());
      true
    end
    else if attempt >= t.retry_limit then false
    else begin
      Stats.incr Stats.shard_retries;
      backoff t.retry_backoff;
      go (attempt + 1)
    end
  in
  go 0

let coord_end t ~gid ~coord =
  if up t.shards.(coord) then
    ignore (coord_record t ~coord ~kind:Logrec.Coord_end ~body:(Twopc.encode_end ~gid))

let commit t g =
  if g.finished then invalid_arg "Sharddb.commit: global transaction already finished";
  match g.parts with
  | [] -> forget t g
  | [ (k, tx) ] ->
      (* single-shard fast path: plain local commit, no 2PC records *)
      (try
         with_shard t k (fun s ->
             if not (live_branch s tx) then raise (Shard_down k);
             Txnmgr.commit s.sx_db.Db.mgr tx)
       with
      | (Crashpoint.Crash _ | Discipline.Violation _) as e ->
          (* a power failure mid-commit must surface as the crash, never as
             an abort: the commit record may already be durable, and a
             client told "aborted" while the stable state says committed is
             exactly the atomicity lie the oracle checks for *)
          raise e
      | e ->
          abort t g;
          raise (Global_abort (g.gid, Printexc.to_string e)));
      forget t g
  | parts -> (
      let coord = fst (List.hd parts) in
      (try
         List.iter (fun (k, tx) -> prepare_branch t ~gid:g.gid ~coord k tx) parts;
         decide_commit t ~gid:g.gid ~coord ~parts:(participants g)
       with
      | (Crashpoint.Crash _ | Discipline.Violation _) as e -> raise e
      | e ->
          (* no durable decision: abort by presumption everywhere we can
             reach; unreachable branches resolve the same way on restart *)
          abort t g;
          raise (Global_abort (g.gid, Printexc.to_string e)));
      let undelivered =
        List.filter
          (fun (k, tx) -> not (deliver_one t ~commit:true k tx.Txnmgr.txn_id))
          parts
      in
      match undelivered with
      | [] ->
          coord_end t ~gid:g.gid ~coord;
          forget t g
      | _ ->
          Stats.incr Stats.shard_timeouts;
          Hashtbl.replace t.parked g.gid
            {
              pk_pending = List.map (fun (k, tx) -> (k, tx.Txnmgr.txn_id)) undelivered;
              pk_coord = coord;
              pk_commit = true;
            };
          if Trace.enabled () then
            List.iter
              (fun (k, _) ->
                Trace.emit
                  (Trace.Shard_event { shard = k; what = Printf.sprintf "parked G%d" g.gid }))
              undelivered;
          forget t g)

(* Retry parked phase-2 deliveries whose shard has come back. *)
let drain_parked t =
  let closed = ref [] in
  Hashtbl.iter
    (fun gid pk ->
      pk.pk_pending <-
        List.filter
          (fun (k, id) ->
            if up t.shards.(k) then begin
              ignore (deliver_one t ~commit:pk.pk_commit k id);
              false
            end
            else true)
          pk.pk_pending;
      if pk.pk_pending = [] then closed := (gid, pk.pk_coord) :: !closed)
    t.parked;
  List.iter
    (fun (gid, coord) ->
      Hashtbl.remove t.parked gid;
      coord_end t ~gid ~coord)
    !closed

(* ------------------------------------------------------------------ *)
(* In-doubt resolution (restart) *)

(* Walk the restored transaction's control-stream chain back to its
   Prepare record and decode the 2PC meta. [None]: not a 2PC branch. *)
let prepare_meta_of mgr (tx : Txnmgr.txn) =
  let cs = Txnmgr.txn_stream mgr tx.Txnmgr.txn_id in
  let m = Logset.stream (Txnmgr.logs mgr) cs in
  let rec walk lsn =
    if Lsn.is_nil lsn then None
    else
      let r = Logmgr.read m lsn in
      if r.Logrec.kind = Logrec.Prepare then
        let _, _, meta = Txnmgr.decode_prepare_body r.Logrec.body in
        if Bytes.length meta = 0 then None else Some (Twopc.decode_prepare_meta meta)
      else walk r.Logrec.prev_lsn
  in
  walk tx.Txnmgr.lasts.(cs)

(* Lazy per-coordinator decision tables: one log-history scan per
   coordinator per resolution pass, shared across all its gids. *)
let decision_lookup t =
  let tables = Hashtbl.create 4 in
  fun coord gid ->
    let tbl =
      match Hashtbl.find_opt tables coord with
      | Some tbl -> tbl
      | None ->
          let tbl = Twopc.decisions t.shards.(coord).sx_db in
          Hashtbl.replace tables coord tbl;
          tbl
    in
    Hashtbl.find_opt tbl gid

let resolve_indoubts t =
  let decision = decision_lookup t in
  (* a surviving-but-never-acknowledged Coord_commit (possible under the
     per-stream flush shuffle) is still THE decision — before committing on
     its strength, re-announce it so rule R10 sees a durable decide *)
  let redecided = Hashtbl.create 8 in
  let resolved = ref 0 in
  Array.iter
    (fun s ->
      if up s then
        let mgr = s.sx_db.Db.mgr in
        List.iter
          (fun (tx : Txnmgr.txn) ->
            if tx.Txnmgr.state = Txnmgr.Prepared then
              match prepare_meta_of mgr tx with
              | None -> ()
              | Some (gid, coord) ->
                  if up t.shards.(coord) then begin
                    let committed =
                      match decision coord gid with
                      | Some d when d.Twopc.dc_commit ->
                          if not (Hashtbl.mem redecided gid) then begin
                            Hashtbl.replace redecided gid ();
                            if Trace.enabled () then
                              Trace.emit
                                (Trace.Twopc_decide
                                   {
                                     gid;
                                     commit = true;
                                     log =
                                       Logmgr.id (Logset.control t.shards.(coord).sx_db.Db.logs);
                                     lsn_end = d.Twopc.dc_end;
                                   })
                          end;
                          true
                      | Some _ | None -> false
                    in
                    if committed then Txnmgr.commit_prepared mgr tx
                    else Txnmgr.rollback mgr ~reason:"presumed abort" tx;
                    incr resolved;
                    Stats.incr Stats.txn_indoubt_resolved;
                    if Trace.enabled () then
                      Trace.emit
                        (Trace.Twopc_resolve
                           { gid; shard = s.sx_id; txn = tx.Txnmgr.txn_id; committed })
                  end
                  else if Trace.enabled () then
                    Trace.emit
                      (Trace.Shard_event
                         {
                           shard = s.sx_id;
                           what = Printf.sprintf "indoubt G%d waits on coordinator %d" gid coord;
                         }))
          (Txnmgr.active_txns mgr))
    t.shards;
  drain_parked t;
  !resolved

(* ------------------------------------------------------------------ *)
(* Crash / restart / fail-stop *)

let crash t =
  Array.iter
    (fun s ->
      s.sx_db <- Db.crash ?config:t.config s.sx_db;
      s.sx_tree <- None;
      s.sx_epoch <- s.sx_epoch + 1;
      s.sx_down <- false)
    t.shards;
  t.incarnation <- t.incarnation + 1;
  t.next_seq <- 0;
  Hashtbl.reset t.gtxns;
  Hashtbl.reset t.owners;
  Hashtbl.reset t.parked

let reopen_tree t s =
  s.sx_tree <- Some (Btree.open_existing ?config:t.config s.sx_db.Db.benv s.sx_index)

let restart ?instant t =
  let reports =
    Array.map
      (fun s ->
        let rep = Db.restart ?instant s.sx_db in
        reopen_tree t s;
        rep)
      t.shards
  in
  let resolved = resolve_indoubts t in
  (reports, resolved)

(* Targeted fail-stop: quiesce (break lock waiters so in-flight fibers
   unwind with [Shard_down]/[Aborted]), then cut — the shard's volatile
   state is discarded exactly like a power failure, while every other
   shard keeps running. Requires daemon-less shards (Per_commit, no
   cleaner/checkpointer): a daemon of the killed incarnation would keep
   running against the dead handle. *)
let kill t k =
  let s = t.shards.(k) in
  if not s.sx_down then begin
    s.sx_down <- true;
    if Trace.enabled () then Trace.emit (Trace.Shard_event { shard = k; what = "killed" });
    let guard = ref 0 in
    while s.sx_inflight > 0 && !guard < 100_000 do
      incr guard;
      List.iter
        (fun (txn, _, _) -> ignore (Lockmgr.abort_waiter s.sx_db.Db.locks ~txn))
        (Lockmgr.waiting s.sx_db.Db.locks);
      if Sched.in_fiber () then Sched.yield ()
    done;
    assert (s.sx_inflight = 0);
    s.sx_db <- Db.crash ?config:t.config s.sx_db;
    s.sx_tree <- None;
    s.sx_epoch <- s.sx_epoch + 1;
    t.incarnation <- t.incarnation + 1
  end

let revive ?instant t k =
  let s = t.shards.(k) in
  if not s.sx_down then None
  else begin
    let rep = Db.restart ?instant s.sx_db in
    reopen_tree t s;
    s.sx_down <- false;
    if Trace.enabled () then Trace.emit (Trace.Shard_event { shard = k; what = "revived" });
    (* this shard's in-doubts read their coordinators; other shards'
       in-doubts parked on THIS coordinator resolve now too *)
    ignore (resolve_indoubts t);
    Some rep
  end

(* ------------------------------------------------------------------ *)
(* Global deadlock detection + lock-wait timeout *)

(* Node key: gids are positive; a local (non-2PC) waiter gets a negative
   per-shard synthetic id so it can still appear in (and break) a cycle. *)
let node t k txn =
  match Hashtbl.find_opt t.owners (k, txn) with
  | Some g -> g
  | None -> -(((k + 1) * 1_000_000) + txn)

let detect_once t =
  let edges = Hashtbl.create 16 in
  let waiters = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      if up s then
        List.iter
          (fun (txn, _since, blockers) ->
            let v = node t s.sx_id txn in
            Hashtbl.replace waiters v (s.sx_id, txn);
            let cur = match Hashtbl.find_opt edges v with Some l -> l | None -> [] in
            Hashtbl.replace edges v (List.map (node t s.sx_id) blockers @ cur))
          (Lockmgr.waiting s.sx_db.Db.locks))
    t.shards;
  let color = Hashtbl.create 16 in
  let victims = ref [] in
  let rec dfs stack v =
    match Hashtbl.find_opt color v with
    | Some `Done -> ()
    | Some `Active ->
        (* back edge: the cycle is [v] plus the stack prefix above it;
           victim = the youngest (largest-gid) waiter in the cycle *)
        let rec upto = function
          | [] -> []
          | x :: rest -> if x = v then [] else x :: upto rest
        in
        let cyc = v :: upto stack in
        let cands = List.filter (fun m -> Hashtbl.mem waiters m) cyc in
        (match List.sort (fun a b -> compare b a) cands with
        | victim :: _ when not (List.mem victim !victims) -> victims := victim :: !victims
        | _ -> ())
    | None ->
        Hashtbl.replace color v `Active;
        (match Hashtbl.find_opt edges v with
        | Some succs -> List.iter (fun m -> dfs (v :: stack) m) succs
        | None -> ());
        Hashtbl.replace color v `Done
  in
  Hashtbl.iter (fun v _ -> dfs [] v) edges;
  List.iter
    (fun v ->
      match Hashtbl.find_opt waiters v with
      | Some (k, txn) ->
          if Lockmgr.abort_waiter t.shards.(k).sx_db.Db.locks ~txn then begin
            Stats.incr Stats.deadlock_global_victims;
            if Trace.enabled () then
              Trace.emit
                (Trace.Note (Printf.sprintf "global deadlock victim G%d (shard %d txn %d)" v k txn))
          end
      | None -> ())
    !victims;
  List.length !victims

let timeout_scan t =
  if t.lock_timeout > 0 && Sched.in_fiber () then begin
    let now = Sched.steps_now () in
    Array.iter
      (fun s ->
        if up s then
          List.iter
            (fun (txn, since, _) ->
              if now - since > t.lock_timeout then
                if Lockmgr.abort_waiter s.sx_db.Db.locks ~txn then begin
                  Stats.incr Stats.shard_timeouts;
                  if Trace.enabled () then
                    Trace.emit
                      (Trace.Note
                         (Printf.sprintf "lock-wait timeout: shard %d txn %d" s.sx_id txn))
                end)
            (Lockmgr.waiting s.sx_db.Db.locks))
      t.shards
  end

let service t () =
  let period = max 1 t.detect_every in
  while not (Sched.shutting_down ()) do
    for _ = 1 to period do
      if not (Sched.shutting_down ()) then Sched.yield ()
    done;
    if not (Sched.shutting_down ()) then begin
      timeout_scan t;
      ignore (detect_once t);
      drain_parked t
    end
  done

let start_services t =
  Array.iter (fun s -> if up s then Db.start_daemons s.sx_db) t.shards;
  if t.detect_every > 0 || t.lock_timeout > 0 then
    ignore (Sched.spawn_daemon ~name:"shard-globald" (service t))

let run ?policy ?max_steps ?yield_probability t main =
  Sched.run ?policy ?max_steps ?yield_probability (fun () ->
      start_services t;
      main ())

(* ------------------------------------------------------------------ *)
(* Quiescence audit *)

let leak_report t =
  let out = ref [] in
  Array.iter
    (fun s ->
      if up s then
        List.iter
          (fun line -> out := Printf.sprintf "shard %d: %s" s.sx_id line :: !out)
          (Db.leak_report s.sx_db))
    t.shards;
  (* an in-doubt branch still holding locks while its coordinator is up is
     a missed resolution: either a durable decision exists (commit it) or
     none does (presumed abort) — both were decidable *)
  let decision = decision_lookup t in
  Array.iter
    (fun s ->
      if up s then
        List.iter
          (fun (tx : Txnmgr.txn) ->
            if tx.Txnmgr.state = Txnmgr.Prepared then
              match prepare_meta_of s.sx_db.Db.mgr tx with
              | Some (gid, coord) when up t.shards.(coord) ->
                  let verdict =
                    match decision coord gid with
                    | Some d when d.Twopc.dc_commit -> "durable commit decision"
                    | Some _ | None -> "decidable presumed abort"
                  in
                  out :=
                    Printf.sprintf
                      "shard %d: in-doubt txn %d of G%d still holds %d lock(s) despite %s"
                      s.sx_id tx.Txnmgr.txn_id gid
                      (Lockmgr.held_count s.sx_db.Db.locks ~txn:tx.Txnmgr.txn_id)
                      verdict
                    :: !out
              | Some _ | None -> ())
          (Txnmgr.active_txns s.sx_db.Db.mgr))
    t.shards;
  List.rev !out

let btree t k = tree t.shards.(k)

let close t = Array.iter (fun s -> if up s then Db.close s.sx_db) t.shards
