(* Presumed-abort 2PC record-body codecs and the coordinator decision scan.

   Three bodies ride the WAL: the Prepare [meta] blob (gid + coordinator
   shard, appended to the participant's Prepare body by
   [Txnmgr.encode_prepare_body]), the coordinator decision body
   (Coord_commit / Coord_abort: gid + participant shard list), and the
   Coord_end body (gid only). All fixed-width little-endian via [Bytebuf],
   with [expect_end] so truncated input is rejected as [Corrupt] — the
   property tests drive both directions. *)

open Aries_util
module Logrec = Aries_wal.Logrec
module Lsn = Aries_wal.Lsn

let encode_prepare_meta ~gid ~coord =
  let w = Bytebuf.W.create ~size:10 () in
  Bytebuf.W.i64 w gid;
  Bytebuf.W.u16 w coord;
  Bytebuf.W.contents w

let decode_prepare_meta b =
  let r = Bytebuf.R.of_bytes b in
  let gid = Bytebuf.R.i64 r in
  let coord = Bytebuf.R.u16 r in
  Bytebuf.R.expect_end r;
  (gid, coord)

let encode_decision ~gid ~parts =
  let w = Bytebuf.W.create ~size:(12 + (2 * List.length parts)) () in
  Bytebuf.W.i64 w gid;
  Bytebuf.W.list w Bytebuf.W.u16 parts;
  Bytebuf.W.contents w

let decode_decision b =
  let r = Bytebuf.R.of_bytes b in
  let gid = Bytebuf.R.i64 r in
  let parts = Bytebuf.R.list r Bytebuf.R.u16 in
  Bytebuf.R.expect_end r;
  (gid, parts)

let encode_end ~gid =
  let w = Bytebuf.W.create ~size:8 () in
  Bytebuf.W.i64 w gid;
  Bytebuf.W.contents w

let decode_end b =
  let r = Bytebuf.R.of_bytes b in
  let gid = Bytebuf.R.i64 r in
  Bytebuf.R.expect_end r;
  gid

type decision = { dc_commit : bool; dc_lsn : Lsn.t; dc_end : int }

(* Exact stable-storage footprint of a record: framed payload size. Used
   instead of [Logmgr.record_end] because a decision may live in an
   archived (reclaimed) segment the live log can no longer address. *)
let record_end (r : Logrec.t) =
  r.Logrec.lsn + Logrec.header_bytes + Bytes.length r.Logrec.body + Logrec.frame_overhead

let decisions db =
  let tbl = Hashtbl.create 16 in
  Aries_db.Db.iter_log_history db ~from:Lsn.nil (fun r ->
      match r.Logrec.kind with
      | Logrec.Coord_commit ->
          let gid, _ = decode_decision r.Logrec.body in
          Hashtbl.replace tbl gid { dc_commit = true; dc_lsn = r.Logrec.lsn; dc_end = record_end r }
      | Logrec.Coord_abort ->
          let gid, _ = decode_decision r.Logrec.body in
          if not (Hashtbl.mem tbl gid) then
            Hashtbl.replace tbl gid
              { dc_commit = false; dc_lsn = r.Logrec.lsn; dc_end = record_end r }
      | _ -> ());
  tbl
