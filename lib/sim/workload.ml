open Aries_util
module Btree = Aries_btree.Btree
module Protocol = Aries_btree.Protocol
module Key = Aries_page.Key
module Txnmgr = Aries_txn.Txnmgr
module Sched = Aries_sched.Sched
module Db = Aries_db.Db

type cfg = {
  fibers : int;
  txns_per_fiber : int;
  max_ops_per_txn : int;
  keys_per_fiber : int;
  fetch_freq : int;
  rollback_freq : int;
  scan_freq : int;
  yield_probability : float;
  steal_probability : float;
  page_size : int;
  pool_capacity : int;
  commit_mode : Db.commit_mode;
  cleaner : Aries_buffer.Cleaner.cfg option;
  checkpoint : Aries_recovery.Ckptd.cfg option;
  locking : Protocol.locking;
  vgc : Aries_recovery.Vgcd.cfg option;
  segment_size : int;
  streams : int;
  faults : Faultdisk.cfg option;
}

let default_cfg =
  {
    fibers = 3;
    txns_per_fiber = 6;
    max_ops_per_txn = 4;
    keys_per_fiber = 48;
    fetch_freq = 4;
    rollback_freq = 5;
    scan_freq = 0;
    yield_probability = 0.2;
    steal_probability = 0.15;
    page_size = 320;
    pool_capacity = 12;
    commit_mode = Db.Per_commit;
    cleaner = None;
    (* the checkpoint daemon is ON by default: every sim run exercises
       fuzzy checkpoints and mid-run log truncation, with segments small
       enough (1 KiB) that whole segments actually fall below the safety
       point during a short workload *)
    checkpoint = Some { Aries_recovery.Ckptd.every_steps = 24; nudge_pages = 2; truncate = true };
    locking = Protocol.Data_only;
    vgc = None;
    segment_size = 1024;
    streams = 1;
    faults = None;
  }

(* The same adversarial workload with the full commit pipeline on: batched
   commit forces (small batch/window so batches actually close mid-run) and
   the background page cleaner trickling dirty pages between steals. *)
let group_cfg =
  {
    default_cfg with
    commit_mode =
      Db.Group { Aries_txn.Group_commit.max_batch = 4; max_delay_steps = 6 };
    cleaner = Some { Aries_buffer.Cleaner.interval_steps = 12; batch_pages = 2 };
  }

(* The storage-fault configurations (PR 5): the same two workloads running
   over an adversarial disk. [fault_cfg] mixes everything — transient EIO
   on reads/writes/forces (exercising the bounded-retry paths), bit-rot on
   page writes (exercising CRC detection, quarantine and automatic media
   repair), and torn page/log images when a crash trips mid-write.
   [fault_group_cfg] runs the full commit pipeline over the same disk — a
   transient-EIO'd force must delay, never drop, its batch.
   [fault_eio_cfg] is the pure retry storm: higher EIO rates, no
   corruption, so every run must complete with zero data damage. *)
let fault_cfg = { default_cfg with faults = Some Faultdisk.default_cfg }

let fault_group_cfg = { group_cfg with faults = Some Faultdisk.default_cfg }

let fault_eio_cfg = { group_cfg with faults = Some Faultdisk.eio_only_cfg }

(* The multi-stream configurations (PR 7): the same two workloads over a
   4-stream WAL with the crash-time per-stream flush shuffle armed — at
   every simulated power failure each stream independently keeps a
   shuffled number of its unflushed frames, so the surviving prefixes are
   deliberately misaligned across streams. Recovery must reconstruct the
   committed set from the epoch-fence vectors alone ([Logset.commit_valid]),
   and the oracle applies the identical test. [multistream_group_cfg] adds
   the batched commit pipeline, whose per-batch epoch fence (rule R8) is
   the actual commit-order constraint under test. *)
let multistream_cfg = { default_cfg with streams = 4; faults = Some Faultdisk.shuffle_cfg }

let multistream_group_cfg = { group_cfg with streams = 4; faults = Some Faultdisk.shuffle_cfg }

(* The MVCC configuration (PR 8): the long-scan-vs-hot-writer mix under
   {!Protocol.Mvcc}. Writer slices shrink to 16 values, so the same txn
   count rewrites each key repeatedly and chains grow several versions
   deep; every third transaction is a full-tree snapshot scan crossing
   every hot slice mid-rewrite (and, with small pages, mid-SMO); the
   version-GC daemon runs every 32 steps, so reclamation races live
   snapshots and crash points land mid-collection. Every scan checks its
   own slice against the fiber's committed view at pin time — the
   per-snapshot oracle — and the online checker enforces R9 (zero reader
   key locks, zero reader lock waits) on every read. *)
let mvcc_cfg =
  {
    default_cfg with
    locking = Protocol.Mvcc;
    keys_per_fiber = 16;
    scan_freq = 3;
    fetch_freq = 3;
    vgc = Some { Aries_recovery.Vgcd.every_steps = 32 };
  }

(* The same mix over the batched commit pipeline: a committer parked on the
   group-commit queue has already stamped its versions (fate sealed at the
   Commit record), so snapshots pinned during the park must see them. *)
let mvcc_group_cfg =
  {
    group_cfg with
    locking = Protocol.Mvcc;
    keys_per_fiber = 16;
    scan_freq = 3;
    fetch_freq = 3;
    vgc = Some { Aries_recovery.Vgcd.every_steps = 32 };
  }

type txn_trace = {
  tt_fiber : int;
  tt_txn : Ids.txn_id;
  tt_begin_step : int;
  mutable tt_ops : Oracle.op list;  (* most recent first *)
  mutable tt_acked : bool;
  mutable tt_aborted : bool;
}

type trace = txn_trace Vec.t

let key_value ~fiber i = Printf.sprintf "f%02d-k%04d" fiber i

let key_rid ~fiber i = { Ids.rid_page = 100_000 + fiber; rid_slot = i }

(* The fiber's exact view of one of its own values: the in-flight txn's ops
   (most recent first) shadow the committed view. *)
let lookup view (tt : txn_trace) value =
  let rec go = function
    | [] -> Hashtbl.find_opt view value
    | Oracle.Insert (v, rid) :: _ when String.equal v value -> Some rid
    | Oracle.Delete (v, _) :: _ when String.equal v value -> None
    | _ :: rest -> go rest
  in
  go tt.tt_ops

(* A long scan: walk the whole tree (every fiber's slice) from the start.
   Under Mvcc this is a snapshot read — the pin happens at the first
   fetch_next, no key lock is ever requested and no lock wait ever entered
   (rule R9, enforced online by the discipline checker on every read) —
   and the slice of the result owned by this fiber is checked against the
   fiber's committed view at scan start: the per-snapshot oracle. The
   check is exact because the snapshot covers every commit this fiber has
   been acked for (versions are stamped at the Commit record, before the
   durability wait), no other fiber writes the slice, and the scanning
   transaction itself writes nothing — so concurrent writers, SMOs,
   rollbacks and GC rounds must all be invisible. Under the locking
   protocols the same scan S-locks its way across and the check still
   holds (2PL reads committed state; the fiber's slice can't change under
   its own S locks). *)
let scan_txn tree view txn ~fiber =
  let prefix = Printf.sprintf "f%02d-" fiber in
  let plen = String.length prefix in
  let expected =
    Hashtbl.fold (fun v rid acc -> (v, rid) :: acc) view [] |> List.sort compare
  in
  let seen = ref [] in
  let cur = Btree.open_scan tree txn "" in
  let rec go () =
    match Btree.fetch_next tree txn cur () with
    | None -> ()
    | Some k ->
        let v = k.Key.value in
        if String.length v >= plen && String.sub v 0 plen = prefix then
          seen := (v, k.Key.rid) :: !seen;
        go ()
  in
  go ();
  let seen = List.rev !seen in
  if seen <> expected then
    failwith
      (Printf.sprintf
         "snapshot divergence (fiber %d): scan saw [%s] but the committed view at pin time \
          was [%s]"
         fiber
         (String.concat " " (List.map fst seen))
         (String.concat " " (List.map fst expected)))

let run_txn tree cfg rng view (tt : txn_trace) txn ~fiber =
  if cfg.scan_freq > 0 && Rng.int rng cfg.scan_freq = 0 then scan_txn tree view txn ~fiber
  else begin
  let nops = 1 + Rng.int rng cfg.max_ops_per_txn in
  for _ = 1 to nops do
    let i = Rng.int rng cfg.keys_per_fiber in
    let value = key_value ~fiber i in
    if cfg.fetch_freq > 0 && Rng.int rng cfg.fetch_freq = 0 then
      ignore (Btree.fetch tree txn value)
    else
      match lookup view tt value with
      | None ->
          let rid = key_rid ~fiber i in
          Btree.insert tree txn ~value ~rid;
          tt.tt_ops <- Oracle.Insert (value, rid) :: tt.tt_ops
      | Some rid ->
          Btree.delete tree txn ~value ~rid;
          tt.tt_ops <- Oracle.Delete (value, rid) :: tt.tt_ops
  done
  end

let spawn_fibers ?(fiber_base = 0) db tree cfg ~seed ~(trace : trace) =
  for f = 0 to cfg.fibers - 1 do
    (* [fiber_base] shifts the logical fiber ids (hence the private key
       slices and RNG streams): a recovery-phase workload spawned with
       [fiber_base = cfg.fibers] runs on a keyspace disjoint from the
       pre-crash phase, so both phases' oracles stay exact *)
    let fiber = fiber_base + f in
    let rng = Rng.create ((seed * 1_000_003) + (fiber * 7919) + 17) in
    ignore
      (Sched.spawn
         ~name:(Printf.sprintf "wl-%d" fiber)
         (fun () ->
           (* this fiber's committed view of its private values *)
           let view : (string, Ids.rid) Hashtbl.t = Hashtbl.create 64 in
           try
             for _ = 1 to cfg.txns_per_fiber do
               (* once the simulated power failure has tripped anywhere, the
                  machine is dead: stop promptly instead of running over a
                  volatile state another fiber's cut operation may have torn *)
               if Crashpoint.tripped () then raise (Crashpoint.Crash (Crashpoint.count ()));
             let txn = Txnmgr.begin_txn db.Db.mgr in
             let tt =
               {
                 tt_fiber = fiber;
                 tt_txn = txn.Txnmgr.txn_id;
                 tt_begin_step = Sched.steps_now ();
                 tt_ops = [];
                 tt_acked = false;
                 tt_aborted = false;
               }
             in
             Vec.push trace tt;
             match run_txn tree cfg rng view tt txn ~fiber with
             | exception Txnmgr.Aborted _ ->
                 (* deadlock victim: already rolled back in place *)
                 tt.tt_aborted <- true
             | () ->
                 if cfg.rollback_freq > 0 && Rng.int rng cfg.rollback_freq = 0 then begin
                   tt.tt_aborted <- true;
                   Txnmgr.rollback db.Db.mgr txn
                 end
                 else begin
                   Txnmgr.commit db.Db.mgr txn;
                   tt.tt_acked <- true;
                   List.iter
                     (fun op ->
                       match op with
                       | Oracle.Insert (v, rid) -> Hashtbl.replace view v rid
                       | Oracle.Delete (v, _) -> Hashtbl.remove view v)
                     (List.rev tt.tt_ops)
                 end
             done
           with
           | Crashpoint.Crash _ as c -> raise c
           | e when Crashpoint.tripped () ->
               (* the power failure cut some operation mid-flight (possibly a
                  rollback being performed in-place in another fiber's
                  execution context), so this fiber tripped over torn
                  volatile state. The machine is dead; only the stable state
                  matters. Count this fiber as crash-killed. *)
               ignore e;
               raise (Crashpoint.Crash (Crashpoint.count ()))))
  done

let expected_state (trace : trace) committed =
  Vec.fold
    (fun acc tt ->
      if Hashtbl.mem committed tt.tt_txn then Oracle.apply acc (List.rev tt.tt_ops) else acc)
    Oracle.empty trace

let consistency_failures (trace : trace) committed =
  let fails = ref [] in
  Vec.iter
    (fun tt ->
      let in_log = Hashtbl.mem committed tt.tt_txn in
      if tt.tt_acked && not in_log then
        fails :=
          Printf.sprintf
            "durability violation: txn %d (fiber %d) was acked committed but has no Commit \
             record in the stable log"
            tt.tt_txn tt.tt_fiber
          :: !fails;
      if tt.tt_aborted && in_log then
        fails :=
          Printf.sprintf
            "atomicity violation: txn %d (fiber %d) was rolled back yet a Commit record \
             survives"
            tt.tt_txn tt.tt_fiber
          :: !fails)
    trace;
  List.rev !fails

let trace_to_string (trace : trace) =
  Vec.fold
    (fun acc tt ->
      let outcome =
        if tt.tt_acked then "committed"
        else if tt.tt_aborted then "aborted"
        else "in-flight"
      in
      let ops = List.rev_map Oracle.op_to_string tt.tt_ops in
      Printf.sprintf "T%d f%d @step%d %s: %s" tt.tt_txn tt.tt_fiber tt.tt_begin_step outcome
        (if ops = [] then "(no updates)" else String.concat " " ops)
      :: acc)
    [] trace
  |> List.rev
