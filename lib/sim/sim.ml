open Aries_util
module Btree = Aries_btree.Btree
module Bufpool = Aries_buffer.Bufpool
module Sched = Aries_sched.Sched
module Db = Aries_db.Db
module Trace = Aries_trace.Trace
module Discipline = Aries_trace.Discipline

type run_report = {
  rr_events : int;
  rr_txns : int;
  rr_crash_at : int option;
  rr_instant_cut : int option;
      (* instant-restart runs only: the phase-1 durability event the first
         crash was armed at; [rr_crash_at] then indexes the recovery phase *)
  rr_failures : string list;
  rr_trace : string list;
  rr_event_dump : string list;
}

(* How much of the protocol event window a failing run carries in its
   reproducer. The ring retains more; this is what lands in the artifact. *)
let dump_window = 120

(* The event dump is part of the SIM-REPRO artifact: on failure, snapshot
   the tail of the protocol event ring so the reproducer shows {e how} the
   interleaving went wrong, not just that it did. *)
let dump_if_failed failures = if !failures = [] then [] else Trace.dump_last dump_window

(* Invariants + oracle + leak audit, in one pass. Called inside the
   scheduler (tree reads latch pages). [phase] prefixes every finding so a
   post-restart divergence is distinguishable from a post-run one. *)
let check_state db tree (trace : Workload.trace) ~phase failures =
  let fail fmt =
    Printf.ksprintf (fun s -> failures := (phase ^ ": " ^ s) :: !failures) fmt
  in
  (try Btree.check_invariants tree with
  | Failure m -> fail "tree invariant violated: %s" m
  | e -> fail "check_invariants raised %s" (Printexc.to_string e));
  let committed = Oracle.committed_txns db in
  List.iter (fun m -> fail "%s" m) (Workload.consistency_failures trace committed);
  let expected = Workload.expected_state trace committed in
  let actual = Btree.to_list tree in
  List.iter (fun m -> fail "state mismatch: %s" m) (Oracle.diff_lines expected actual);
  List.iter (fun m -> fail "leak: %s" m) (Db.leak_report db)

(* The btree config a workload cfg selects (its locking protocol over the
   stock defaults). Passed to [Db.create] and to every [Db.crash] — the
   post-crash environment must re-open its trees under the same protocol. *)
let btree_config (cfg : Workload.cfg) =
  { Btree.default_config with locking = cfg.Workload.locking }

let run_one ?crash_at (cfg : Workload.cfg) ~seed =
  (* Setup (environment + empty tree) happens with the hook quiet so crash
     indices enumerate only workload-phase durability events and the tree's
     anchor is always recoverable. *)
  Crashpoint.disarm ();
  Faultdisk.disarm ();
  Crashpoint.reset ();
  (* Fresh protocol tracer + discipline checker per simulated machine: every
     seed runs with the online checker armed (in the default [Check] mode),
     and a failing run dumps its event window into the reproducer. *)
  Trace.reset ();
  Discipline.reset ();
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let db =
    Db.create ~page_size:cfg.Workload.page_size ~pool_capacity:cfg.Workload.pool_capacity
      ~config:(btree_config cfg) ~commit_mode:cfg.Workload.commit_mode
      ?cleaner:cfg.Workload.cleaner ?checkpoint:cfg.Workload.checkpoint ?vgc:cfg.Workload.vgc
      ~segment_size:cfg.Workload.segment_size ~streams:cfg.Workload.streams ()
  in
  (* The setup phase runs with the checker live too: a protocol violation
     (e.g. under an injected fault) raises out of [Db.run_exn] here and
     must surface as a failure report, not tear down the harness. *)
  match
    match
      Db.run_exn db (fun () ->
          Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"sim" ~unique:false))
    with
    | tree -> Some tree
    | exception e ->
        fail "setup raised %s" (Printexc.to_string e);
        None
  with
  | None ->
      {
        rr_events = Crashpoint.count ();
        rr_txns = 0;
        rr_crash_at = crash_at;
        rr_instant_cut = None;
        rr_failures = List.rev !failures;
        rr_trace = [];
        rr_event_dump = dump_if_failed failures;
      }
  | Some tree ->
  Bufpool.set_steal_hook db.Db.pool ~seed:(seed + 0x51ea1)
    ~probability:cfg.Workload.steal_probability;
  (* Storage faults arm after setup (the empty tree's anchor is never
     fault-damaged, mirroring the quiet-setup rule for crash points) and
     stay armed through crash + restart, so recovery itself runs over the
     adversarial disk. The fault stream is seeded from the run seed, so a
     fault run is as replayable as a fault-free one. *)
  (match cfg.Workload.faults with
  | Some fcfg -> Faultdisk.arm ~seed:(seed lxor 0xFA17) fcfg
  | None -> ());
  Fun.protect ~finally:(fun () -> Faultdisk.disarm ()) @@ fun () ->
  Crashpoint.reset ();
  (match crash_at with Some k -> Crashpoint.arm ~at:k | None -> ());
  let trace : Workload.trace = Vec.create () in
  let result =
    Db.run db ~policy:(Sched.Random seed) ~yield_probability:cfg.Workload.yield_probability
      (fun () -> Workload.spawn_fibers db tree cfg ~seed ~trace)
  in
  (* Read the trip flag before disarming: disarm clears it. *)
  let tripped = Crashpoint.tripped () in
  let events = Crashpoint.count () in
  Crashpoint.disarm ();
  Bufpool.clear_steal_hook db.Db.pool;
  (match crash_at with
  | None -> (
      (match result.Sched.outcome with
      | Sched.Completed -> ()
      | Sched.Stalled ids ->
          fail "scheduler stalled with %d suspended fiber(s)" (List.length ids)
      | Sched.Interrupted live -> fail "step budget exhausted with %d live fiber(s)" live);
      List.iter
        (fun (_, name, e) -> fail "fiber %s raised %s" name (Printexc.to_string e))
        result.Sched.exns;
      if !failures = [] then
        match Db.run_exn db (fun () -> check_state db tree trace ~phase:"post-run" failures) with
        | () -> ()
        | exception e -> fail "post-run check raised %s" (Printexc.to_string e))
  | Some k ->
      (* The k-th durability event raised a simulated power failure inside
         some fiber; once tripped, every further durability event raises
         too, so the stable state is frozen at event k. Fibers may end
         Stalled (waiting on a dead fiber's locks) — that is fine, the
         machine is about to lose power anyway. *)
      (match result.Sched.outcome with
      | Sched.Completed | Sched.Stalled _ -> ()
      | Sched.Interrupted live ->
          fail "step budget exhausted with %d live fiber(s)" live);
      List.iter
        (fun (_, name, e) ->
          match e with
          | Crashpoint.Crash _ -> ()
          | e -> fail "fiber %s raised %s (not the simulated crash)" name (Printexc.to_string e))
        result.Sched.exns;
      if not tripped then
        fail "crash index %d never reached (run produced %d events)" k events
      else if !failures = [] then begin
        let db' = Db.crash ~config:(btree_config cfg) db in
        match
          Db.run_exn db' (fun () ->
              ignore (Db.restart db');
              let tree' = Btree.open_existing db'.Db.benv (Btree.index_id tree) in
              check_state db' tree' trace ~phase:"post-restart" failures)
        with
        | () -> ()
        | exception e -> fail "restart raised %s" (Printexc.to_string e)
      end);
  {
    rr_events = events;
    rr_txns = Vec.length trace;
    rr_crash_at = crash_at;
    rr_instant_cut = None;
    rr_failures = List.rev !failures;
    rr_trace = Workload.trace_to_string trace;
    rr_event_dump = dump_if_failed failures;
  }

(* Recovery-during-recovery: cut the workload at durability event
   [crash_at], crash, then restart with [~instant:true] — the Db opens
   right after Analysis and a {e second} workload phase (on key slices
   disjoint from the first, via [fiber_base]) runs concurrently with the
   drain daemon's background redo/undo, on-demand single-page redos, and
   lock-conflict-driven loser preemption. With [crash_at2] the machine
   dies {e again}, at that durability event of the recovery phase —
   possibly mid-drain or mid-replay — and a classic restart must still
   converge to the two-phase oracle: instant restart's partial work
   (CLRs, redone pages, its restart checkpoint) is just more history.
   [rr_events] counts the recovery phase's durability events, so a sweep
   can sample [crash_at2] the same way {!crash_sweep} samples
   [crash_at]. *)
let run_one_instant ?crash_at2 (cfg : Workload.cfg) ~seed ~crash_at =
  Crashpoint.disarm ();
  Faultdisk.disarm ();
  Crashpoint.reset ();
  Trace.reset ();
  Discipline.reset ();
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let db =
    Db.create ~page_size:cfg.Workload.page_size ~pool_capacity:cfg.Workload.pool_capacity
      ~config:(btree_config cfg) ~commit_mode:cfg.Workload.commit_mode
      ?cleaner:cfg.Workload.cleaner ?checkpoint:cfg.Workload.checkpoint ?vgc:cfg.Workload.vgc
      ~segment_size:cfg.Workload.segment_size ~streams:cfg.Workload.streams ()
  in
  match
    match
      Db.run_exn db (fun () ->
          Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"sim" ~unique:false))
    with
    | tree -> Some tree
    | exception e ->
        fail "setup raised %s" (Printexc.to_string e);
        None
  with
  | None ->
      {
        rr_events = 0;
        rr_txns = 0;
        rr_crash_at = crash_at2;
        rr_instant_cut = Some crash_at;
        rr_failures = List.rev !failures;
        rr_trace = [];
        rr_event_dump = dump_if_failed failures;
      }
  | Some tree ->
  Bufpool.set_steal_hook db.Db.pool ~seed:(seed + 0x51ea1)
    ~probability:cfg.Workload.steal_probability;
  (match cfg.Workload.faults with
  | Some fcfg -> Faultdisk.arm ~seed:(seed lxor 0xFA17) fcfg
  | None -> ());
  Fun.protect ~finally:(fun () -> Faultdisk.disarm ()) @@ fun () ->
  (* ----- phase 1: the pre-crash workload, cut at [crash_at] ----- *)
  Crashpoint.reset ();
  Crashpoint.arm ~at:crash_at;
  let trace : Workload.trace = Vec.create () in
  let result =
    Db.run db ~policy:(Sched.Random seed) ~yield_probability:cfg.Workload.yield_probability
      (fun () -> Workload.spawn_fibers db tree cfg ~seed ~trace)
  in
  let tripped = Crashpoint.tripped () in
  let events1 = Crashpoint.count () in
  Crashpoint.disarm ();
  Bufpool.clear_steal_hook db.Db.pool;
  (match result.Sched.outcome with
  | Sched.Completed | Sched.Stalled _ -> ()
  | Sched.Interrupted live -> fail "step budget exhausted with %d live fiber(s)" live);
  List.iter
    (fun (_, name, e) ->
      match e with
      | Crashpoint.Crash _ -> ()
      | e -> fail "fiber %s raised %s (not the simulated crash)" name (Printexc.to_string e))
    result.Sched.exns;
  if not tripped then
    fail "crash index %d never reached (run produced %d events)" crash_at events1;
  (* ----- phase 2: instant restart serving a live workload ----- *)
  let events2 = ref 0 in
  (if !failures = [] then begin
     let db' = Db.crash ~config:(btree_config cfg) db in
     Bufpool.set_steal_hook db'.Db.pool ~seed:(seed + 0x51ea2)
       ~probability:cfg.Workload.steal_probability;
     Crashpoint.reset ();
     (match crash_at2 with Some k -> Crashpoint.arm ~at:k | None -> ());
     let result2 =
       Db.run db' ~policy:(Sched.Random (seed lxor 0x1257a2))
         ~yield_probability:cfg.Workload.yield_probability (fun () ->
           ignore (Db.restart ~instant:true db');
           (* restart keeps logged txn ids monotonic, but a phase-1
              transaction that crashed before logging anything durable is
              invisible to analysis and its id {e can} be reissued. The
              engine never cares (such a txn has no recoverable state);
              the two-phase oracle keys the shared trace by txn id, so
              the harness moves phase 2 into a disjoint id range. *)
           Aries_txn.Txnmgr.note_txn_id db'.Db.mgr 100_000;
           (* the Db is open mid-recovery: admit the second workload phase
              now, while the restartd daemon is still draining. Opening the
              tree may itself trigger on-demand redo of the anchor page. *)
           let tree' = Btree.open_existing db'.Db.benv (Btree.index_id tree) in
           Workload.spawn_fibers ~fiber_base:cfg.Workload.fibers db' tree' cfg ~seed ~trace)
     in
     let tripped2 = Crashpoint.tripped () in
     events2 := Crashpoint.count ();
     Crashpoint.disarm ();
     Bufpool.clear_steal_hook db'.Db.pool;
     match crash_at2 with
     | None -> (
         (match result2.Sched.outcome with
         | Sched.Completed -> ()
         | Sched.Stalled ids ->
             fail "recovery phase stalled with %d suspended fiber(s)" (List.length ids)
         | Sched.Interrupted live ->
             fail "recovery phase step budget exhausted with %d live fiber(s)" live);
         List.iter
           (fun (_, name, e) ->
             fail "recovery-phase fiber %s raised %s" name (Printexc.to_string e))
           result2.Sched.exns;
         if !failures = [] then
           match
             Db.run_exn db' (fun () ->
                 let tree' = Btree.open_existing db'.Db.benv (Btree.index_id tree) in
                 check_state db' tree' trace ~phase:"post-instant" failures)
           with
           | () -> ()
           | exception e -> fail "post-instant check raised %s" (Printexc.to_string e))
     | Some k2 ->
         (* the second power failure may cut instant restart itself —
            mid-drain, mid-on-demand-redo, mid-preempted-undo. The stable
            state is frozen at event k2; a {e classic} restart must treat
            it like any other crash and converge. *)
         (match result2.Sched.outcome with
         | Sched.Completed | Sched.Stalled _ -> ()
         | Sched.Interrupted live ->
             fail "recovery phase step budget exhausted with %d live fiber(s)" live);
         List.iter
           (fun (_, name, e) ->
             match e with
             | Crashpoint.Crash _ -> ()
             | e ->
                 fail "recovery-phase fiber %s raised %s (not the simulated crash)" name
                   (Printexc.to_string e))
           result2.Sched.exns;
         if not tripped2 then
           fail "recovery-phase crash index %d never reached (phase produced %d events)" k2
             !events2
         else if !failures = [] then begin
           let db'' = Db.crash ~config:(btree_config cfg) db' in
           match
             Db.run_exn db'' (fun () ->
                 ignore (Db.restart db'');
                 let tree'' = Btree.open_existing db''.Db.benv (Btree.index_id tree) in
                 check_state db'' tree'' trace ~phase:"post-restart2" failures)
           with
           | () -> ()
           | exception e -> fail "second restart raised %s" (Printexc.to_string e)
         end
   end);
  {
    rr_events = !events2;
    rr_txns = Vec.length trace;
    rr_crash_at = crash_at2;
    rr_instant_cut = Some crash_at;
    rr_failures = List.rev !failures;
    rr_trace = Workload.trace_to_string trace;
    rr_event_dump = dump_if_failed failures;
  }

type reproducer = {
  rp_seed : int;
  rp_crash_at : int option;
  rp_instant_cut : int option;
  rp_failures : string list;
  rp_trace : string list;
  rp_event_dump : string list;
}

let reproducer_of_report ~seed (r : run_report) =
  {
    rp_seed = seed;
    rp_crash_at = r.rr_crash_at;
    rp_instant_cut = r.rr_instant_cut;
    rp_failures = r.rr_failures;
    rp_trace = r.rr_trace;
    rp_event_dump = r.rr_event_dump;
  }

let reproducer_line r =
  Printf.sprintf "SIM-REPRO seed=%d%s crash_at=%s :: %s" r.rp_seed
    (match r.rp_instant_cut with
    | Some k -> Printf.sprintf " instant_cut=%d" k
    | None -> "")
    (match r.rp_crash_at with Some k -> string_of_int k | None -> "-")
    (match r.rp_failures with [] -> "(no failure recorded)" | f :: _ -> f)

let replay cfg r =
  match r.rp_instant_cut with
  | Some cut -> run_one_instant ?crash_at2:r.rp_crash_at cfg ~seed:r.rp_seed ~crash_at:cut
  | None -> run_one ?crash_at:r.rp_crash_at cfg ~seed:r.rp_seed

let confirms r (rep : run_report) =
  rep.rr_failures <> [] && List.equal String.equal r.rp_failures rep.rr_failures

(* Failure triage for fault sweeps. Under an armed storage-fault cfg a run
   may legitimately end in a {e typed} storage failure (e.g. transient-EIO
   retry exhaustion): the acceptance bar is "recover to the oracle, or fail
   loudly with a typed [Storage_error] and a reproducer". Anything else —
   an oracle mismatch, a leak, a discipline violation, a bare parser
   exception — is a real bug even under faults. *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  m = 0
  ||
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let typed_storage_failure (r : reproducer) =
  r.rp_failures <> [] && List.for_all (contains ~sub:"Storage_error(") r.rp_failures

type summary = {
  sm_seed_runs : int;
  sm_crash_points : int;
  sm_events : int;
  sm_failures : reproducer list;
}

let empty_summary = { sm_seed_runs = 0; sm_crash_points = 0; sm_events = 0; sm_failures = [] }

let fatal_failures (s : summary) =
  List.filter (fun r -> not (typed_storage_failure r)) s.sm_failures

let merge a b =
  {
    sm_seed_runs = a.sm_seed_runs + b.sm_seed_runs;
    sm_crash_points = a.sm_crash_points + b.sm_crash_points;
    sm_events = a.sm_events + b.sm_events;
    sm_failures = a.sm_failures @ b.sm_failures;
  }

let seed_sweep ?(progress = fun _ -> ()) cfg ~seeds =
  List.fold_left
    (fun acc seed ->
      let r = run_one cfg ~seed in
      let acc =
        { acc with sm_seed_runs = acc.sm_seed_runs + 1; sm_events = acc.sm_events + r.rr_events }
      in
      if r.rr_failures = [] then acc
      else begin
        let rp = reproducer_of_report ~seed r in
        progress (reproducer_line rp);
        { acc with sm_failures = acc.sm_failures @ [ rp ] }
      end)
    empty_summary seeds

(* Evenly spaced sample of [budget] indices over [1..total], always
   including both endpoints; every index when the budget covers them all. *)
let sample_indices ~total ~budget =
  if total <= 0 || budget <= 0 then []
  else if budget >= total then List.init total (fun i -> i + 1)
  else if budget = 1 then [ total ]
  else
    List.init budget (fun i -> 1 + (i * (total - 1) / (budget - 1)))
    |> List.sort_uniq compare

let crash_sweep ?(progress = fun _ -> ()) cfg ~seed ~budget =
  let recording = run_one cfg ~seed in
  if recording.rr_failures <> [] then begin
    let rp = reproducer_of_report ~seed recording in
    progress (reproducer_line rp);
    { sm_seed_runs = 1; sm_crash_points = 0; sm_events = recording.rr_events;
      sm_failures = [ rp ] }
  end
  else begin
    let ks = sample_indices ~total:recording.rr_events ~budget in
    progress
      (Printf.sprintf "seed %d: %d durability events, arming %d crash points" seed
         recording.rr_events (List.length ks));
    List.fold_left
      (fun acc k ->
        let r = run_one ~crash_at:k cfg ~seed in
        let acc = { acc with sm_crash_points = acc.sm_crash_points + 1 } in
        if r.rr_failures = [] then acc
        else begin
          let rp = reproducer_of_report ~seed r in
          progress (reproducer_line rp);
          { acc with sm_failures = acc.sm_failures @ [ rp ] }
        end)
      { sm_seed_runs = 1; sm_crash_points = 0; sm_events = recording.rr_events; sm_failures = [] }
      ks
  end

(* The recovery-during-recovery sweep. One fault-free recording run learns
   the phase-1 durability events; [budget/4] cut points are sampled across
   them. Each cut gets a recovery-phase {e recording} run (crash + instant
   restart + live second workload, checked against the two-phase oracle),
   which learns that phase's own durability events; the remaining budget
   is then spent arming second crashes inside the recovery phase — the
   points that land mid-drain, mid-on-demand-redo and mid-preemption. *)
let instant_sweep ?(progress = fun _ -> ()) cfg ~seed ~budget =
  let recording = run_one cfg ~seed in
  if recording.rr_failures <> [] then begin
    let rp = reproducer_of_report ~seed recording in
    progress (reproducer_line rp);
    { sm_seed_runs = 1; sm_crash_points = 0; sm_events = recording.rr_events;
      sm_failures = [ rp ] }
  end
  else begin
    let cuts = sample_indices ~total:recording.rr_events ~budget:(max 1 (budget / 4)) in
    let per_cut = max 1 (budget / max 1 (List.length cuts)) in
    progress
      (Printf.sprintf
         "seed %d: %d phase-1 events, cutting at %d points (%d second crashes each)" seed
         recording.rr_events (List.length cuts) per_cut);
    List.fold_left
      (fun acc cut ->
        let rec2 = run_one_instant cfg ~seed ~crash_at:cut in
        let acc =
          {
            acc with
            sm_crash_points = acc.sm_crash_points + 1;
            sm_events = acc.sm_events + rec2.rr_events;
          }
        in
        if rec2.rr_failures <> [] then begin
          let rp = reproducer_of_report ~seed rec2 in
          progress (reproducer_line rp);
          { acc with sm_failures = acc.sm_failures @ [ rp ] }
        end
        else
          List.fold_left
            (fun acc k2 ->
              let r = run_one_instant ~crash_at2:k2 cfg ~seed ~crash_at:cut in
              let acc = { acc with sm_crash_points = acc.sm_crash_points + 1 } in
              if r.rr_failures = [] then acc
              else begin
                let rp = reproducer_of_report ~seed r in
                progress (reproducer_line rp);
                { acc with sm_failures = acc.sm_failures @ [ rp ] }
              end)
            acc
            (sample_indices ~total:rec2.rr_events ~budget:per_cut))
      { sm_seed_runs = 1; sm_crash_points = 0; sm_events = recording.rr_events; sm_failures = [] }
      cuts
  end

let sweep ?progress cfg ~seeds ~crash_seeds ~crash_budget =
  let s1 = seed_sweep ?progress cfg ~seeds in
  List.fold_left
    (fun acc seed -> merge acc (crash_sweep ?progress cfg ~seed ~budget:crash_budget))
    s1 crash_seeds
