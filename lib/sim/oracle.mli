(** The committed-state oracle.

    A pure map from index value to RID, updated only by the operations of
    {e committed} transactions, in serialization order. Because the
    simulation workload partitions the key space per fiber (and strict 2PL
    serializes in commit order within a fiber's program order), applying
    each fiber's committed transactions in program order yields exactly the
    state a correct ARIES/IM must expose after any crash/restart.

    Which transactions count as committed is read from the {e log}, not from
    the workload's bookkeeping: a transaction is committed iff its Commit
    record survives in the (post-crash, hence stable) log. The workload's
    "acked" flag (Txnmgr.commit returned) is then checked {e against} the
    log: every acked transaction must have a surviving Commit record —
    the durability half of the contract, and the check that catches a
    skipped commit force. *)

open Aries_util

type op =
  | Insert of string * Ids.rid
  | Delete of string * Ids.rid

type t
(** The pure committed-state map (value -> rid). *)

val empty : t

val apply_op : t -> op -> t

val apply : t -> op list -> t

val to_alist : t -> (string * Ids.rid) list
(** Sorted by value — directly comparable with [Btree.to_list]. *)

val cardinal : t -> int

val op_to_string : op -> string

val committed_txns : Aries_db.Db.t -> (Ids.txn_id, unit) Hashtbl.t
(** Transaction ids with a Commit record in the full log history (archived
    reclaimed segments plus the live log, via {!Aries_db.Db.iter_log_history}).
    Called after [Db.crash], the history holds exactly the stable record
    sequence, so this is the ground truth for which transactions survived —
    even when the checkpoint daemon truncated the live prefix mid-run. *)

val visible_at : (int * op list) list -> at:int -> t
(** Per-snapshot visible state (MVCC): [visible_at history ~at] folds the
    ops of every [(csn, ops)] pair with [csn <= at], in list (= commit)
    order — the state a snapshot pinned at CSN [at] must see, regardless
    of what later committers, in-flight writers or the version GC have
    done since. *)

val diff_lines : t -> (string * Ids.rid) list -> string list
(** [diff_lines expected actual] describes every divergence (missing /
    extra / rid-mismatched values); empty when they agree. *)
