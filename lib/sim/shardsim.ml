(* The sharded simulation harness: the Sim rig over a [Sharddb] cluster.

   Same discipline as {!Sim}: every run is a pure function of (seed, cfg,
   mode), setup runs with the crash hook quiet, and every check reads the
   {e stable} state — per-shard committed transactions from the logs plus
   the coordinator decision tables — never the workload's bookkeeping.

   Four run modes:

   - [Cluster_crash None]: the sharded workload runs to completion and is
     checked directly (seed sweep).
   - [Cluster_crash (Some k)]: a whole-cluster power failure at the k-th
     durability event — coordinator and participants cut {e at the same
     instant}, with the per-stream flush shuffle deciding which log tails
     survive on each shard independently. Classic restart + in-doubt
     resolution must recover every shard to the cross-shard oracle.
   - [Kill {victim; at}]: a {e targeted} fail-stop of one shard at the
     [at]-th durability event while every other shard keeps running — the
     degrade-gracefully mode. The victim is revived mid-run, in-doubts
     resolve, parked deliveries drain, and the final state must match the
     oracle. [at = None] is the recording run (the killer never fires) that
     learns the event count for the sweep.
   - [Degrade k]: shard [k] is failed ({!Aries_util.Crashpoint.shard_down_fault})
     for the whole workload: transactions confined to healthy shards must
     still commit (progress is asserted), transactions touching the downed
     shard abort by presumption, and nothing hangs.

   The [instant] runner is [Cluster_crash (Some cut)] with
   [restart ~instant:true] and a {e second} workload phase (disjoint fiber
   ids / key slices) admitted while the per-shard drain daemons are still
   redoing — in-doubt branches are restored and resolved mid-recovery. *)

open Aries_util
module Btree = Aries_btree.Btree
module Bufpool = Aries_buffer.Bufpool
module Sched = Aries_sched.Sched
module Db = Aries_db.Db
module Txnmgr = Aries_txn.Txnmgr
module Trace = Aries_trace.Trace
module Discipline = Aries_trace.Discipline
module Sharddb = Aries_shard.Sharddb
module Twopc = Aries_shard.Twopc

type cfg = {
  shards : int;
  fibers : int;
  txns_per_fiber : int;
  max_ops_per_txn : int;
  keys_per_fiber : int;
  fetch_freq : int;  (** 1/n of ops are fetches (0 = never) *)
  rollback_freq : int;  (** 1/n of surviving gtxns explicitly abort (0 = never) *)
  yield_probability : float;
  steal_probability : float;
  page_size : int;
  pool_capacity : int;
  segment_size : int;
  streams : int;  (** WAL streams per shard *)
  shuffle : bool;  (** arm the crash-time per-stream flush shuffle *)
}

(* Small cluster, adversarial knobs: 3 shards so a 2-key transaction is
   usually cross-shard under the hash router, 2 WAL streams per shard plus
   the flush shuffle so crash survivorship is misaligned both across
   streams and across shards, tiny pages/pools for SMOs and steals. *)
let default_cfg =
  {
    shards = 3;
    fibers = 3;
    txns_per_fiber = 5;
    max_ops_per_txn = 3;
    keys_per_fiber = 24;
    fetch_freq = 5;
    rollback_freq = 6;
    yield_probability = 0.2;
    steal_probability = 0.1;
    page_size = 320;
    pool_capacity = 12;
    segment_size = 1024;
    streams = 2;
    shuffle = true;
  }

type mode =
  | Cluster_crash of int option
  | Instant of int  (** cut event for crash + instant restart + second phase *)
  | Kill of { victim : int; at : int option }
  | Degrade of int  (** this shard is down for the whole workload *)

let mode_to_string = function
  | Cluster_crash None -> "run"
  | Cluster_crash (Some k) -> Printf.sprintf "crash=%d" k
  | Instant cut -> Printf.sprintf "instant=%d" cut
  | Kill { victim; at = None } -> Printf.sprintf "kill=%d@-" victim
  | Kill { victim; at = Some k } -> Printf.sprintf "kill=%d@%d" victim k
  | Degrade k -> Printf.sprintf "down=%d" k

let mode_of_string s =
  let fail () = invalid_arg (Printf.sprintf "Shardsim.mode_of_string: %S" s) in
  match String.split_on_char '=' s with
  | [ "run" ] -> Cluster_crash None
  | [ "crash"; k ] -> Cluster_crash (Some (int_of_string k))
  | [ "instant"; k ] -> Instant (int_of_string k)
  | [ "kill"; vk ] -> (
      match String.split_on_char '@' vk with
      | [ v; "-" ] -> Kill { victim = int_of_string v; at = None }
      | [ v; k ] -> Kill { victim = int_of_string v; at = Some (int_of_string k) }
      | _ -> fail ())
  | [ "down"; k ] -> Degrade (int_of_string k)
  | _ -> fail ()

(* ------------------------------------------------------------------ *)
(* The sharded workload *)

type gtxn_trace = {
  gt_fiber : int;
  gt_gid : int;
  mutable gt_branches : (int * Ids.txn_id) list;  (* first-touch order; head = coordinator *)
  mutable gt_ops : Oracle.op list;  (* most recent first *)
  mutable gt_acked : bool;
  mutable gt_aborted : bool;
}

type trace = gtxn_trace Vec.t

let key_value ~fiber i = Printf.sprintf "g%02d-k%03d" fiber i

let key_rid ~fiber i = { Ids.rid_page = 200_000 + fiber; rid_slot = i }

(* The fiber's exact view of one of its own values: the in-flight gtxn's
   ops (most recent first) shadow the committed view. *)
let lookup view (gt : gtxn_trace) value =
  let rec go = function
    | [] -> Hashtbl.find_opt view value
    | Oracle.Insert (v, rid) :: _ when String.equal v value -> Some rid
    | Oracle.Delete (v, _) :: _ when String.equal v value -> None
    | _ :: rest -> go rest
  in
  go gt.gt_ops

let run_gtxn t cfg rng view (gt : gtxn_trace) g ~fiber =
  let nops = 1 + Rng.int rng cfg.max_ops_per_txn in
  for _ = 1 to nops do
    let i = Rng.int rng cfg.keys_per_fiber in
    let value = key_value ~fiber i in
    (if cfg.fetch_freq > 0 && Rng.int rng cfg.fetch_freq = 0 then
       ignore (Sharddb.fetch t g value)
     else
       match lookup view gt value with
       | None ->
           let rid = key_rid ~fiber i in
           Sharddb.insert t g ~value ~rid;
           gt.gt_ops <- Oracle.Insert (value, rid) :: gt.gt_ops
       | Some rid ->
           Sharddb.delete t g ~value ~rid;
           gt.gt_ops <- Oracle.Delete (value, rid) :: gt.gt_ops);
    (* record branches as they form, not at commit: a crash can cut the
       transaction at any op and the oracle still needs to know which
       shards held a branch (and who would have coordinated) *)
    gt.gt_branches <- Sharddb.branches g
  done

let spawn_fibers ?(fiber_base = 0) t cfg ~seed ~(trace : trace) =
  for f = 0 to cfg.fibers - 1 do
    let fiber = fiber_base + f in
    let rng = Rng.create ((seed * 1_000_003) + (fiber * 7919) + 23) in
    ignore
      (Sched.spawn
         ~name:(Printf.sprintf "swl-%d" fiber)
         (fun () ->
           let view : (string, Ids.rid) Hashtbl.t = Hashtbl.create 64 in
           try
             for _ = 1 to cfg.txns_per_fiber do
               if Crashpoint.tripped () then raise (Crashpoint.Crash (Crashpoint.count ()));
               let g = Sharddb.begin_gtxn t in
               let gt =
                 {
                   gt_fiber = fiber;
                   gt_gid = Sharddb.gid g;
                   gt_branches = [];
                   gt_ops = [];
                   gt_acked = false;
                   gt_aborted = false;
                 }
               in
               Vec.push trace gt;
               match run_gtxn t cfg rng view gt g ~fiber with
               | exception Txnmgr.Aborted _ ->
                   (* this branch was rolled back in place (deadlock victim,
                      global-detector victim, or a kill breaking its lock
                      wait); the other branches still need aborting *)
                   gt.gt_aborted <- true;
                   Sharddb.abort t g
               | exception Sharddb.Shard_down _ ->
                   (* fail-fast from a downed shard: abort by presumption
                      everywhere reachable, keep going on healthy shards *)
                   gt.gt_aborted <- true;
                   Sharddb.abort t g
               | () -> (
                   if cfg.rollback_freq > 0 && Rng.int rng cfg.rollback_freq = 0 then begin
                     gt.gt_aborted <- true;
                     Sharddb.abort t g
                   end
                   else
                     match Sharddb.commit t g with
                     | () ->
                         gt.gt_acked <- true;
                         List.iter
                           (fun op ->
                             match op with
                             | Oracle.Insert (v, rid) -> Hashtbl.replace view v rid
                             | Oracle.Delete (v, _) -> Hashtbl.remove view v)
                           (List.rev gt.gt_ops)
                     | exception Sharddb.Global_abort _ -> gt.gt_aborted <- true)
             done
           with
           | Crashpoint.Crash _ as c -> raise c
           | e when Crashpoint.tripped () ->
               (* the power failure tore volatile state under this fiber
                  mid-operation; the machine is dead, only the stable state
                  matters — count the fiber as crash-killed *)
               ignore e;
               raise (Crashpoint.Crash (Crashpoint.count ()))))
  done

let trace_to_string (trace : trace) =
  Vec.fold
    (fun acc gt ->
      let outcome =
        if gt.gt_acked then "committed" else if gt.gt_aborted then "aborted" else "in-flight"
      in
      let parts =
        String.concat ","
          (List.map (fun (k, id) -> Printf.sprintf "%d:T%d" k id) gt.gt_branches)
      in
      let ops = List.rev_map Oracle.op_to_string gt.gt_ops in
      Printf.sprintf "G%d f%d [%s] %s: %s" gt.gt_gid gt.gt_fiber parts outcome
        (if ops = [] then "(no updates)" else String.concat " " ops)
      :: acc)
    [] trace
  |> List.rev

(* ------------------------------------------------------------------ *)
(* The cross-shard committed-state oracle *)

(* Committed-ness from the stable state alone. A single-branch gtxn is a
   plain local transaction: committed iff its (fence-validated) Commit
   record survives on its shard. A multi-branch gtxn ran 2PC: committed
   iff a durable Coord_commit for its gid survives on the {e coordinator}
   shard — presumed abort means absence {e is} the abort. This is exactly
   the test rule R10 makes sound: the decision is forced only after every
   participant's Prepare (and with it every update) is durable, so a
   surviving decision implies every branch is recoverable. *)
let committed_gtxn committed decisions (gt : gtxn_trace) =
  match gt.gt_branches with
  | [] -> false
  | [ (k, id) ] -> Hashtbl.mem committed.(k) id
  | (coord, _) :: _ -> (
      match Hashtbl.find_opt decisions.(coord) gt.gt_gid with
      | Some d -> d.Twopc.dc_commit
      | None -> false)

let check_state t cfg (trace : trace) ~phase failures =
  let fail fmt =
    Printf.ksprintf (fun s -> failures := (phase ^ ": " ^ s) :: !failures) fmt
  in
  let nshards = Sharddb.n t in
  let committed = Array.init nshards (fun k -> Oracle.committed_txns (Sharddb.db t k)) in
  let decisions = Array.init nshards (fun k -> Twopc.decisions (Sharddb.db t k)) in
  let is_committed = committed_gtxn committed decisions in
  (* the two log-vs-ack contract checks, globalised: an acked gtxn must be
     durably decided (and a committed multi-branch decision implies every
     branch's Prepare survived — R10); an aborted gtxn must not be *)
  Vec.iter
    (fun gt ->
      let in_log = is_committed gt in
      if gt.gt_acked && not in_log then
        fail
          "durability violation: G%d (fiber %d) was acked committed but no durable decision \
           survives"
          gt.gt_gid gt.gt_fiber;
      if gt.gt_aborted && in_log then
        fail
          "atomicity violation: G%d (fiber %d) was aborted yet resolves committed from the \
           stable state"
          gt.gt_gid gt.gt_fiber)
    trace;
  (* every committed gtxn must commit {e everywhere}, every other one
     {e nowhere}: fold the committed ops into per-shard expected states
     (the router fixes each value's home) and diff each shard's tree *)
  let expected = Array.make nshards Oracle.empty in
  Vec.iter
    (fun gt ->
      if is_committed gt then
        List.iter
          (fun op ->
            let v = match op with Oracle.Insert (v, _) | Oracle.Delete (v, _) -> v in
            let k = Sharddb.shard_of t v in
            expected.(k) <- Oracle.apply_op expected.(k) op)
          (List.rev gt.gt_ops))
    trace;
  for k = 0 to nshards - 1 do
    let tree = Sharddb.btree t k in
    (try Btree.check_invariants tree with
    | Failure m -> fail "shard %d tree invariant violated: %s" k m
    | e -> fail "shard %d check_invariants raised %s" k (Printexc.to_string e));
    let actual = Btree.to_list tree in
    List.iter
      (fun m -> fail "shard %d state mismatch: %s" k m)
      (Oracle.diff_lines expected.(k) actual)
  done;
  ignore cfg;
  List.iter (fun m -> fail "leak: %s" m) (Sharddb.leak_report t)

(* ------------------------------------------------------------------ *)
(* Reports / reproducers *)

type report = {
  sr_events : int;  (** durability events during the workload phase *)
  sr_txns : int;  (** global transactions traced *)
  sr_acked : int;  (** gtxns acknowledged committed *)
  sr_resolved : int;  (** in-doubt branches resolved after restart/revive *)
  sr_failures : string list;
  sr_trace : string list;
  sr_event_dump : string list;
}

let dump_window = 120

let dump_if_failed failures = if !failures = [] then [] else Trace.dump_last dump_window

let acked_count (trace : trace) =
  Vec.fold (fun acc gt -> if gt.gt_acked then acc + 1 else acc) 0 trace

(* ------------------------------------------------------------------ *)
(* The runner *)

let mk_cluster cfg =
  Sharddb.create ~shards:cfg.shards ~page_size:cfg.page_size ~pool_capacity:cfg.pool_capacity
    ~segment_size:cfg.segment_size ~streams:cfg.streams ()

(* Run [f] as a cluster phase and funnel scheduler problems into the
   failure list: used for setup, restart and check phases, which must
   complete cleanly (no stall, no exception). *)
let run_phase t ?policy ?yield_probability ~what failures f =
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let r = Sharddb.run t ?policy ?yield_probability f in
  (match r.Sched.outcome with
  | Sched.Completed -> ()
  | Sched.Stalled ids -> fail "%s stalled with %d suspended fiber(s)" what (List.length ids)
  | Sched.Interrupted live -> fail "%s step budget exhausted with %d live fiber(s)" what live);
  List.iter
    (fun (_, name, e) -> fail "%s fiber %s raised %s" what name (Printexc.to_string e))
    r.Sched.exns

let set_steal_hooks t cfg ~seed =
  for k = 0 to Sharddb.n t - 1 do
    if Sharddb.is_up t k then
      Bufpool.set_steal_hook (Sharddb.db t k).Db.pool ~seed:(seed + 0x51ea1 + k)
        ~probability:cfg.steal_probability
  done

let clear_steal_hooks t =
  for k = 0 to Sharddb.n t - 1 do
    if Sharddb.is_up t k then Bufpool.clear_steal_hook (Sharddb.db t k).Db.pool
  done

let run cfg ~seed ~(mode : mode) : report =
  Crashpoint.disarm ();
  Faultdisk.disarm ();
  Crashpoint.reset ();
  Trace.reset ();
  Discipline.reset ();
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let t = mk_cluster cfg in
  let trace : trace = Vec.create () in
  let resolved_total = ref 0 in
  let events_seen = ref 0 in
  (* setup with the hook quiet: crash indices enumerate only workload-phase
     durability events, and every shard's tree anchor is recoverable *)
  run_phase t ~what:"setup" failures (fun () -> Sharddb.setup t);
  if !failures = [] then begin
    set_steal_hooks t cfg ~seed;
    if cfg.shuffle then Faultdisk.arm ~seed:(seed lxor 0xFA17) Faultdisk.shuffle_cfg;
    let down_fault = match mode with Degrade k -> Some (Crashpoint.shard_down_fault k) | _ -> None in
    (match down_fault with Some f -> Crashpoint.enable_fault f | None -> ());
    Fun.protect
      ~finally:(fun () ->
        (match down_fault with Some f -> Crashpoint.disable_fault f | None -> ());
        Faultdisk.disarm ())
    @@ fun () ->
    Crashpoint.reset ();
    (match mode with
    | Cluster_crash (Some k) | Instant k -> Crashpoint.arm ~at:k
    | Cluster_crash None | Kill _ | Degrade _ -> ());
    let crash_armed = match mode with Cluster_crash (Some _) | Instant _ -> true | _ -> false in
    let killed = ref false in
    let revive_seq = ref 0 in
    let revive_now victim =
      incr revive_seq;
      match Sharddb.revive t victim with
      | Some _ ->
          (* a branch begun on the dead incarnation and never logged is
             invisible to restart, so its txn id could be reissued; the
             oracle keys the trace by (shard, txn id) — keep the revived
             shard's ids disjoint from every pre-kill id *)
          Txnmgr.note_txn_id (Sharddb.db t victim).Db.mgr (100_000 * !revive_seq)
      | None -> ()
    in
    let spawn_killer victim at =
      (* a daemon so a recording run (at = max_int, never fires) leaves the
         schedule identical to an armed run up to the kill instant *)
      ignore
        (Sched.spawn_daemon ~name:"shard-killer" (fun () ->
             while (not (Sched.shutting_down ())) && Crashpoint.count () < at do
               Sched.yield ()
             done;
             if (not (Sched.shutting_down ())) && Crashpoint.count () >= at then begin
               Sharddb.kill t victim;
               killed := true;
               (* let the healthy shards make progress against the hole,
                  then bring the victim back: restart + in-doubt resolution
                  + parked-delivery drain, all while the workload runs *)
               for _ = 1 to 60 do
                 if not (Sched.shutting_down ()) then Sched.yield ()
               done;
               if not (Sched.shutting_down ()) then revive_now victim
             end))
    in
    let result =
      (* a crash-armed run gets a step budget: after the power failure
         trips, fibers suspended on locks held by crash-killed fibers can
         never resume while the service daemons keep yielding — the
         machine is dead but the scheduler is not, and without a bound the
         run spins forever. The stable state is fixed at the trip, so
         winding the schedule down by budget loses nothing; a budget
         exhausted {e before} the trip is still reported as a failure
         below. *)
      Sharddb.run t ~policy:(Sched.Random seed) ~yield_probability:cfg.yield_probability
        ?max_steps:(if crash_armed then Some 2_000_000 else None)
        (fun () ->
          (match mode with
          | Kill { victim; at } -> spawn_killer victim (match at with Some k -> k | None -> max_int)
          | _ -> ());
          spawn_fibers t cfg ~seed ~trace)
    in
    let tripped = Crashpoint.tripped () in
    let events = Crashpoint.count () in
    events_seen := events;
    Crashpoint.disarm ();
    clear_steal_hooks t;
    (match result.Sched.outcome with
    | Sched.Completed -> ()
    | Sched.Stalled ids ->
        if not crash_armed then
          fail "scheduler stalled with %d suspended fiber(s)" (List.length ids)
    | Sched.Interrupted live ->
        if not (crash_armed && tripped) then
          fail "step budget exhausted with %d live fiber(s)" live);
    List.iter
      (fun (_, name, e) ->
        match e with
        | Crashpoint.Crash _ when crash_armed -> ()
        | e ->
            fail "fiber %s raised %s%s" name (Printexc.to_string e)
              (if crash_armed then " (not the simulated crash)" else ""))
      result.Sched.exns;
    (match mode with
    | Cluster_crash None ->
        if !failures = [] then
          run_phase t ~what:"post-run check" failures (fun () ->
              check_state t cfg trace ~phase:"post-run" failures)
    | Degrade k ->
        (* graceful degradation: healthy-shard transactions must commit,
           and nothing acked may have touched the downed shard *)
        if acked_count trace = 0 then
          fail "degrade run made no progress: zero transactions committed with shard %d down" k;
        Vec.iter
          (fun gt ->
            if gt.gt_acked && List.mem_assoc k gt.gt_branches then
              fail "G%d was acked committed despite holding a branch on downed shard %d"
                gt.gt_gid k)
          trace;
        (match down_fault with Some f -> Crashpoint.disable_fault f | None -> ());
        if !failures = [] then
          run_phase t ~what:"post-degrade check" failures (fun () ->
              check_state t cfg trace ~phase:"post-degrade" failures)
    | Kill { at; victim } ->
        (* an armed killer can lose the race when no workload fiber yields
           between the kill point and shutdown (only possible near the tail
           of the schedule); the run then degenerates to a plain checked
           run — not a failure *)
        ignore at;
        if !failures = [] then
          run_phase t ~what:"post-kill check" failures (fun () ->
              (* the killer revives mid-run unless shutdown won the race *)
              if not (Sharddb.is_up t victim) then revive_now victim;
              resolved_total := !resolved_total + Sharddb.resolve_indoubts t;
              check_state t cfg trace ~phase:"post-kill" failures)
    | Cluster_crash (Some k) ->
        if not tripped then fail "crash index %d never reached (run produced %d events)" k events
        else if !failures = [] then begin
          Sharddb.crash t;
          run_phase t ~what:"restart" failures (fun () ->
              let _, resolved = Sharddb.restart t in
              resolved_total := !resolved_total + resolved;
              check_state t cfg trace ~phase:"post-restart" failures)
        end
    | Instant cut ->
        if not tripped then
          fail "crash index %d never reached (run produced %d events)" cut events
        else if !failures = [] then begin
          Sharddb.crash t;
          set_steal_hooks t cfg ~seed:(seed + 0x1000);
          (* restart every shard [~instant]: each opens right after Analysis
             with its in-doubt branches restored (locks held), resolution
             runs against the drain, and a second workload phase (disjoint
             fiber ids, hence key slices) is admitted mid-recovery *)
          run_phase t ~policy:(Sched.Random (seed lxor 0x1257a2))
            ~yield_probability:cfg.yield_probability ~what:"instant recovery" failures
            (fun () ->
              let _, resolved = Sharddb.restart ~instant:true t in
              resolved_total := !resolved_total + resolved;
              for k = 0 to Sharddb.n t - 1 do
                (* phase-1 txn ids that never logged can be reissued; the
                   oracle keys the trace by (shard, txn id), so phase 2
                   lives in a disjoint id range *)
                Txnmgr.note_txn_id (Sharddb.db t k).Db.mgr 100_000
              done;
              spawn_fibers ~fiber_base:cfg.fibers t cfg ~seed ~trace);
          clear_steal_hooks t;
          if !failures = [] then
            run_phase t ~what:"post-instant check" failures (fun () ->
                check_state t cfg trace ~phase:"post-instant" failures)
        end)
  end;
  {
    sr_events = !events_seen;
    sr_txns = Vec.length trace;
    sr_acked = acked_count trace;
    sr_resolved = !resolved_total;
    sr_failures = List.rev !failures;
    sr_trace = trace_to_string trace;
    sr_event_dump = dump_if_failed failures;
  }

(* ------------------------------------------------------------------ *)
(* Sweeps *)

type reproducer = {
  sp_seed : int;
  sp_mode : mode;
  sp_failures : string list;
  sp_trace : string list;
  sp_event_dump : string list;
}

let reproducer_line r =
  Printf.sprintf "SHARD-REPRO seed=%d mode=%s :: %s" r.sp_seed (mode_to_string r.sp_mode)
    (match r.sp_failures with [] -> "(no failure recorded)" | f :: _ -> f)

let replay cfg r = run cfg ~seed:r.sp_seed ~mode:r.sp_mode

let confirms r (rep : report) =
  rep.sr_failures <> [] && List.equal String.equal r.sp_failures rep.sr_failures

type summary = {
  ss_runs : int;
  ss_events : int;  (** durability events enumerated across recording runs *)
  ss_acked : int;  (** gtxns acked committed across all runs *)
  ss_resolved : int;  (** in-doubt branches resolved across all runs *)
  ss_failures : reproducer list;
}

let empty_summary = { ss_runs = 0; ss_events = 0; ss_acked = 0; ss_resolved = 0; ss_failures = [] }

let note_result ?(progress = fun _ -> ()) acc ~seed ~mode (r : report) =
  let acc =
    {
      acc with
      ss_runs = acc.ss_runs + 1;
      ss_acked = acc.ss_acked + r.sr_acked;
      ss_resolved = acc.ss_resolved + r.sr_resolved;
    }
  in
  if r.sr_failures = [] then acc
  else begin
    let rp =
      {
        sp_seed = seed;
        sp_mode = mode;
        sp_failures = r.sr_failures;
        sp_trace = r.sr_trace;
        sp_event_dump = r.sr_event_dump;
      }
    in
    progress (reproducer_line rp);
    { acc with ss_failures = acc.ss_failures @ [ rp ] }
  end

let add_run ?progress cfg acc ~seed ~mode = note_result ?progress acc ~seed ~mode (run cfg ~seed ~mode)

(* Evenly spaced sample of [budget] indices over [1..total], both endpoints
   included; every index when the budget covers them all. *)
let sample_indices ~total ~budget =
  if total <= 0 || budget <= 0 then []
  else if budget >= total then List.init total (fun i -> i + 1)
  else if budget = 1 then [ total ]
  else
    List.init budget (fun i -> 1 + (i * (total - 1) / (budget - 1)))
    |> List.sort_uniq compare

(* Whole-cluster crash sweep: one recording run learns the durability-event
   count, then the same seed re-runs with the power failure armed at up to
   [budget] sampled indices — with the per-stream flush shuffle armed, each
   crash leaves every shard a different survivor prefix. *)
let crash_sweep ?(progress = fun _ -> ()) cfg ~seed ~budget =
  let recording = run cfg ~seed ~mode:(Cluster_crash None) in
  if recording.sr_failures <> [] then
    note_result ~progress
      { empty_summary with ss_events = recording.sr_events }
      ~seed ~mode:(Cluster_crash None) recording
  else begin
    let ks = sample_indices ~total:recording.sr_events ~budget in
    progress
      (Printf.sprintf "seed %d: %d durability events, arming %d cluster crashes" seed
         recording.sr_events (List.length ks));
    List.fold_left
      (fun acc k -> add_run ~progress cfg acc ~seed ~mode:(Cluster_crash (Some k)))
      { empty_summary with ss_runs = 1; ss_events = recording.sr_events;
        ss_acked = recording.sr_acked }
      ks
  end

(* Targeted fail-stop sweep: for each shard in turn — coordinators and
   participants alike — a recording run (killer armed at infinity) learns
   the event count, then the victim is killed at sampled events while the
   rest of the cluster keeps serving, revived mid-run, and the final state
   must match the oracle with zero leaked in-doubts. *)
let kill_sweep ?(progress = fun _ -> ()) cfg ~seed ~budget =
  List.fold_left
    (fun acc victim ->
      let mode_rec = Kill { victim; at = None } in
      let recording = run cfg ~seed ~mode:mode_rec in
      if recording.sr_failures <> [] then note_result ~progress acc ~seed ~mode:mode_rec recording
      else begin
        let per_victim = max 1 (budget / cfg.shards) in
        (* strictly interior points: a kill armed at the final durability
           event races the killer daemon against scheduler shutdown (and is
           equivalent to a post-run check anyway) *)
        let ks = sample_indices ~total:(max 0 (recording.sr_events - 1)) ~budget:per_victim in
        progress
          (Printf.sprintf "seed %d: killing shard %d at %d of %d events" seed victim
             (List.length ks) recording.sr_events);
        List.fold_left
          (fun acc k -> add_run ~progress cfg acc ~seed ~mode:(Kill { victim; at = Some k }))
          { acc with ss_runs = acc.ss_runs + 1; ss_events = acc.ss_events + recording.sr_events;
            ss_acked = acc.ss_acked + recording.sr_acked }
          ks
      end)
    empty_summary
    (List.init cfg.shards (fun k -> k))

(* Instant-restart sweep: sample [budget] phase-1 cut points; at each, the
   cluster crashes, restarts [~instant] and serves a second workload phase
   while the drains run and in-doubts resolve mid-recovery. *)
let instant_sweep ?(progress = fun _ -> ()) cfg ~seed ~budget =
  let recording = run cfg ~seed ~mode:(Cluster_crash None) in
  if recording.sr_failures <> [] then
    note_result ~progress
      { empty_summary with ss_events = recording.sr_events }
      ~seed ~mode:(Cluster_crash None) recording
  else begin
    let cuts = sample_indices ~total:recording.sr_events ~budget in
    progress
      (Printf.sprintf "seed %d: %d phase-1 events, %d instant-restart cuts" seed
         recording.sr_events (List.length cuts));
    List.fold_left
      (fun acc cut -> add_run ~progress cfg acc ~seed ~mode:(Instant cut))
      { empty_summary with ss_runs = 1; ss_events = recording.sr_events;
        ss_acked = recording.sr_acked }
      cuts
  end

(* Degrade sweep: each shard in turn spends a whole workload down. *)
let degrade_sweep ?(progress = fun _ -> ()) cfg ~seeds =
  List.fold_left
    (fun acc seed ->
      List.fold_left
        (fun acc k -> add_run ~progress cfg acc ~seed ~mode:(Degrade k))
        acc
        (List.init cfg.shards (fun k -> k)))
    empty_summary seeds

let merge a b =
  {
    ss_runs = a.ss_runs + b.ss_runs;
    ss_events = a.ss_events + b.ss_events;
    ss_acked = a.ss_acked + b.ss_acked;
    ss_resolved = a.ss_resolved + b.ss_resolved;
    ss_failures = a.ss_failures @ b.ss_failures;
  }

(* The full sharded rig: seed sweep, whole-cluster crash sweep, per-shard
   kill sweep, and the degrade sweep — the `sim smoke --shards` gate. *)
let sweep ?progress cfg ~seeds ~crash_seeds ~crash_budget =
  let s1 =
    List.fold_left
      (fun acc seed -> add_run ?progress cfg acc ~seed ~mode:(Cluster_crash None))
      empty_summary seeds
  in
  let s2 =
    List.fold_left
      (fun acc seed -> merge acc (crash_sweep ?progress cfg ~seed ~budget:crash_budget))
      s1 crash_seeds
  in
  let s3 =
    List.fold_left
      (fun acc seed -> merge acc (kill_sweep ?progress cfg ~seed ~budget:crash_budget))
      s2 crash_seeds
  in
  merge s3 (degrade_sweep ?progress cfg ~seeds:(match seeds with s :: _ -> [ s ] | [] -> [ 1 ]))
