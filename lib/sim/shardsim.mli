(** The sharded simulation harness: {!Sim}'s deterministic rig over an
    {!Aries_shard.Sharddb} cluster with presumed-abort 2PC.

    Every run is a pure function of (seed, cfg, mode). The workload drives
    global transactions whose keys hash across shards — single-branch
    transactions commit locally, multi-branch ones run 2PC — and every
    check reads only the {e stable} state: a single-branch transaction is
    committed iff its fence-validated Commit record survives on its shard;
    a multi-branch one iff a durable Coord_commit for its gid survives on
    the {e coordinator} (presumed abort: absence is the abort). Rule R10 is
    what makes the second test sound, and the online discipline checker
    enforces it during every run.

    Four modes: seed runs, whole-cluster crash sweeps (every shard cut at
    the same durability event, per-stream flush shuffle deciding each
    shard's surviving log tails independently), targeted per-shard
    fail-stops with mid-run revival (the degrade-gracefully path), and
    whole-run downed-shard degrade runs (healthy-shard progress is
    asserted). The instant variant restarts every shard [~instant] and
    serves a second workload phase while in-doubt branches are restored
    and resolved mid-recovery. *)

open Aries_util

type cfg = {
  shards : int;
  fibers : int;
  txns_per_fiber : int;
  max_ops_per_txn : int;
  keys_per_fiber : int;
  fetch_freq : int;
  rollback_freq : int;
  yield_probability : float;
  steal_probability : float;
  page_size : int;
  pool_capacity : int;
  segment_size : int;
  streams : int;  (** WAL streams per shard *)
  shuffle : bool;  (** arm the crash-time per-stream flush shuffle *)
}

val default_cfg : cfg
(** 3 shards x 3 fibers x 5 txns under the hash router: most 2-key
    transactions cross shards, 2 WAL streams per shard with the flush
    shuffle armed, small pages/pools for SMOs and steals. *)

type mode =
  | Cluster_crash of int option
      (** [None]: run to completion and check; [Some k]: whole-cluster
          power failure at durability event [k], classic restart +
          in-doubt resolution, check against the cross-shard oracle *)
  | Instant of int
      (** cut at event [k], restart every shard [~instant:true], serve a
          second workload phase mid-recovery, quiesce, check *)
  | Kill of { victim : int; at : int option }
      (** targeted fail-stop of [victim] at event [at] while the rest of
          the cluster keeps serving; revived mid-run. [at = None] is the
          recording run (never fires) *)
  | Degrade of int  (** this shard is down for the whole workload *)

val mode_to_string : mode -> string

val mode_of_string : string -> mode
(** Inverse of {!mode_to_string} (for [sim replay --shards]). *)

type gtxn_trace = {
  gt_fiber : int;
  gt_gid : int;
  mutable gt_branches : (int * Ids.txn_id) list;
      (** (shard, local txn) pairs, first-touch order; head = coordinator *)
  mutable gt_ops : Oracle.op list;  (** most recent first *)
  mutable gt_acked : bool;
  mutable gt_aborted : bool;
}

type trace = gtxn_trace Vec.t

type report = {
  sr_events : int;  (** durability events during the workload phase *)
  sr_txns : int;  (** global transactions traced *)
  sr_acked : int;  (** gtxns acknowledged committed *)
  sr_resolved : int;  (** in-doubt branches resolved after restart/revive *)
  sr_failures : string list;  (** empty = run passed all checks *)
  sr_trace : string list;
  sr_event_dump : string list;
}

val run : cfg -> seed:int -> mode:mode -> report

type reproducer = {
  sp_seed : int;
  sp_mode : mode;
  sp_failures : string list;
  sp_trace : string list;
  sp_event_dump : string list;
}

val reproducer_line : reproducer -> string
(** ["SHARD-REPRO seed=<s> mode=<m> :: <first failure>"]; feed seed and
    mode back to [bench/main.exe -- sim replay --shards <s> <m>]. *)

val replay : cfg -> reproducer -> report

val confirms : reproducer -> report -> bool

type summary = {
  ss_runs : int;
  ss_events : int;
  ss_acked : int;
  ss_resolved : int;
  ss_failures : reproducer list;
}

val crash_sweep : ?progress:(string -> unit) -> cfg -> seed:int -> budget:int -> summary
(** Record once, then whole-cluster crashes at up to [budget] sampled
    durability events. *)

val kill_sweep : ?progress:(string -> unit) -> cfg -> seed:int -> budget:int -> summary
(** For each shard in turn — coordinators and participants alike — record,
    then fail-stop the victim at up to [budget/shards] sampled events
    while the rest of the cluster keeps serving; revive mid-run and check. *)

val instant_sweep : ?progress:(string -> unit) -> cfg -> seed:int -> budget:int -> summary
(** Crash at up to [budget] sampled cut points; each cut instant-restarts
    the whole cluster and serves a second workload phase mid-recovery. *)

val degrade_sweep : ?progress:(string -> unit) -> cfg -> seeds:int list -> summary
(** Each shard in turn spends a whole workload down; healthy-shard
    progress is asserted in every run. *)

val sweep :
  ?progress:(string -> unit) ->
  cfg ->
  seeds:int list ->
  crash_seeds:int list ->
  crash_budget:int ->
  summary
(** The full sharded rig behind [sim smoke --shards]: seed sweep,
    whole-cluster crash sweep, per-shard kill sweep, degrade sweep. *)
