(** Randomized multi-fiber workloads for the simulation harness.

    Every scheduling and data choice derives from the run's seed: per-fiber
    RNGs are seeded from (seed, fiber), so a run is a pure function of
    (seed, cfg) — re-running with the same pair replays the identical
    execution, which is what makes crash indices meaningful.

    Each fiber owns a private slice of the key space (fiber [f] writes only
    values ["f<f>-k<i>"]), so a fiber always knows the exact state of its
    keys (its committed view plus its in-flight transaction's ops) and the
    oracle stays exact. Lock conflicts still occur across fibers — next-key
    locks and SMO latching cross the range boundaries — so deadlocks,
    waits and interleaved SMOs are all exercised. *)

open Aries_util

type cfg = {
  fibers : int;
  txns_per_fiber : int;
  max_ops_per_txn : int;
  keys_per_fiber : int;  (** size of each fiber's private value range *)
  fetch_freq : int;  (** 1/n of ops are fetches (0 = never) *)
  rollback_freq : int;  (** 1/n of surviving txns explicitly roll back (0 = never) *)
  scan_freq : int;
      (** 1/n of txns are full-tree scans (0 = never); each scan checks its
          own fiber's slice against the committed view at scan start — the
          per-snapshot oracle under {!Aries_btree.Protocol.Mvcc} *)
  yield_probability : float;  (** scheduler preemption at instrumented points *)
  steal_probability : float;  (** buffer-pool randomized steal (dirty-page writes) *)
  page_size : int;  (** small pages force SMOs *)
  pool_capacity : int;  (** small pools force evictions (disk writes) *)
  commit_mode : Aries_db.Db.commit_mode;
      (** per-commit forcing or the batched group-commit pipeline *)
  cleaner : Aries_buffer.Cleaner.cfg option;
      (** background page cleaner on/off *)
  checkpoint : Aries_recovery.Ckptd.cfg option;
      (** fuzzy-checkpoint daemon on/off (on in both stock configs) *)
  locking : Aries_btree.Protocol.locking;
      (** the index locking protocol (Data_only in the stock configs;
          Mvcc in the snapshot-read configs) *)
  vgc : Aries_recovery.Vgcd.cfg option;
      (** MVCC version-GC daemon on/off (on in the Mvcc configs, so
          reclamation races live snapshots and crash points) *)
  segment_size : int;  (** WAL segment size — small, so truncation happens mid-run *)
  streams : int;  (** number of parallel WAL streams (1 = the classic single log) *)
  faults : Aries_util.Faultdisk.cfg option;
      (** storage-fault injection (PR 5): armed by [Sim.run_one] for the
          workload + crash/restart phases, seeded from the run seed *)
}

val default_cfg : cfg
(** 3 fibers x 6 txns, 320-byte pages, 12-frame pool, steals and yields on:
    small enough that a crash sweep over every durability event is cheap,
    adversarial enough to exercise SMOs, deadlocks and steals. Per-commit
    forcing, no cleaner; the fuzzy-checkpoint daemon runs every 24 steps
    over 1 KiB log segments, so checkpoints and log truncations interleave
    with user work in every sim run. *)

val group_cfg : cfg
(** [default_cfg] with the full commit pipeline on: group commit (batch 4,
    6-step window — small enough that batches close mid-run) and the page
    cleaner (every 12 steps, 2 pages). The durability oracle and every
    other check are identical; the sim suite sweeps both configs. *)

val fault_cfg : cfg
(** [default_cfg] over an adversarial disk ({!Aries_util.Faultdisk.default_cfg}):
    transient EIO on reads/writes/forces, bit-rot on page writes, torn
    page/log images on crash. Exercises bounded retry, CRC detection,
    quarantine + automatic media repair, and the log tail scan. *)

val fault_group_cfg : cfg
(** [group_cfg] over the same adversarial disk: the batched commit pipeline
    must delay — never drop or early-ack — a batch whose force hits
    transient EIO. *)

val fault_eio_cfg : cfg
(** [group_cfg] over {!Aries_util.Faultdisk.eio_only_cfg}: a pure
    transient-EIO storm with no stored-byte corruption, so every run must
    complete with zero data damage. *)

val multistream_cfg : cfg
(** [default_cfg] over a 4-stream WAL with the crash-time per-stream flush
    shuffle armed ({!Aries_util.Faultdisk.shuffle_cfg}): each crash keeps
    deliberately misaligned survivor prefixes across streams, so recovery
    and the oracle must agree on committed-ness via the epoch-fence target
    vectors alone. *)

val multistream_group_cfg : cfg
(** [group_cfg] with the same 4-stream + shuffle setup: the batched
    group-commit pipeline's per-batch epoch fence (rule R8) under
    cross-stream crash-order adversity. *)

val mvcc_cfg : cfg
(** The long-scan-vs-hot-writer mix under {!Aries_btree.Protocol.Mvcc}:
    16-value hot slices rewritten repeatedly (deep version chains), every
    third transaction a full-tree snapshot scan, the version-GC daemon
    reclaiming every 32 steps. Each scan's own slice is checked against
    the fiber's committed view at pin time; rule R9 (no reader key locks,
    no reader lock waits, no CSN above the pin) is enforced online on
    every read. *)

val mvcc_group_cfg : cfg
(** [mvcc_cfg] over the batched group-commit pipeline: versions are
    stamped at the Commit record, {e before} the durability wait, so
    snapshots pinned while committers are parked on the queue must
    already see their updates. *)

type txn_trace = {
  tt_fiber : int;
  tt_txn : Ids.txn_id;
  tt_begin_step : int;  (** scheduler step at which the txn began *)
  mutable tt_ops : Oracle.op list;  (** most recent first, updated as ops complete *)
  mutable tt_acked : bool;  (** Txnmgr.commit returned to the workload *)
  mutable tt_aborted : bool;  (** explicitly rolled back or deadlock victim *)
}

type trace = txn_trace Vec.t
(** Appended in begin order; per-fiber subsequences are in program order. *)

val spawn_fibers :
  ?fiber_base:int -> Aries_db.Db.t -> Aries_btree.Btree.t -> cfg -> seed:int -> trace:trace -> unit
(** Spawn the workload fibers (call inside a running scheduler).
    [fiber_base] (default 0) shifts the logical fiber ids — and with them
    the private key slices and RNG streams — so a second workload phase
    (e.g. transactions admitted during instant restart) can run on a
    keyspace disjoint from the first. Fibers
    record every completed operation in [trace] {e before} attempting
    commit, so a transaction whose commit became durable but whose fiber
    died before the ack still has its ops available to the oracle.

    Once an armed {!Aries_util.Crashpoint} has tripped, fibers treat the
    machine as dead: they stop at the next transaction boundary, and any
    exception they hit mid-operation (the volatile state may have been torn
    by another fiber's cut operation — e.g. an in-place deadlock rollback
    interrupted by the power failure) is converted to the crash exception;
    only the stable state matters from that point on. *)

val expected_state : trace -> (Ids.txn_id, unit) Hashtbl.t -> Oracle.t
(** Fold the ops of every committed transaction (per {!Oracle.committed_txns})
    over the empty map, in trace order. *)

val consistency_failures : trace -> (Ids.txn_id, unit) Hashtbl.t -> string list
(** The two log-vs-ack contract checks: an acked transaction must have a
    surviving Commit record (durability); a rolled-back transaction must
    not (atomicity of the rollback path). *)

val trace_to_string : trace -> string list
(** One line per transaction: id, fiber, begin step, outcome, ops. *)
