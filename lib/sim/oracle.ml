open Aries_util
module Logrec = Aries_wal.Logrec
module Lsn = Aries_wal.Lsn

type op =
  | Insert of string * Ids.rid
  | Delete of string * Ids.rid

module Smap = Map.Make (String)

type t = Ids.rid Smap.t

let empty = Smap.empty

let apply_op t = function
  | Insert (v, rid) -> Smap.add v rid t
  | Delete (v, _) -> Smap.remove v t

let apply t ops = List.fold_left apply_op t ops

let to_alist t = Smap.bindings t

let cardinal t = Smap.cardinal t

let op_to_string = function
  | Insert (v, rid) -> Printf.sprintf "+%s@%s" v (Ids.rid_to_string rid)
  | Delete (v, rid) -> Printf.sprintf "-%s@%s" v (Ids.rid_to_string rid)

(* The full history — archived segments plus the live log — so the oracle
   stays exact when the checkpoint daemon truncated the live prefix
   mid-run: a Commit record in a reclaimed segment still counts. Across
   multiple WAL streams a surviving Commit record is only half the story:
   a shuffled crash can keep the commit while dropping the transaction's
   records on other streams, so the oracle applies exactly the validity
   test recovery does — every record named in the commit's fence-target
   vector must itself have survived. *)
let committed_txns db =
  let set = Hashtbl.create 64 in
  let logs = db.Aries_db.Db.logs in
  Aries_db.Db.iter_log_history db ~from:Lsn.nil (fun r ->
      if r.Logrec.kind = Logrec.Commit && Aries_wal.Logset.commit_valid logs r then
        Hashtbl.replace set r.Logrec.txn ());
  set

(* Per-snapshot visible state (MVCC): fold only the committed transactions
   whose commit sequence number is at or below the pin. The history is in
   commit order, so the fold is exactly the serialization prefix the
   snapshot is entitled to observe. *)
let visible_at history ~at =
  List.fold_left (fun acc (csn, ops) -> if csn <= at then apply acc ops else acc) empty history

let diff_lines expected actual =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let actual_map =
    List.fold_left (fun m (v, rid) -> Smap.add v rid m) Smap.empty actual
  in
  Smap.iter
    (fun v rid ->
      match Smap.find_opt v actual_map with
      | None -> add "missing committed value %s (rid %s)" v (Ids.rid_to_string rid)
      | Some rid' when rid' <> rid ->
          add "value %s has rid %s, oracle says %s" v (Ids.rid_to_string rid')
            (Ids.rid_to_string rid)
      | Some _ -> ())
    expected;
  Smap.iter
    (fun v rid ->
      if not (Smap.mem v expected) then
        add "extra value %s (rid %s) — not committed" v (Ids.rid_to_string rid))
    actual_map;
  List.rev !lines
