(** The deterministic simulation harness: seed-sweep schedule exploration
    and exhaustive crash-point injection against the committed-state oracle.

    Two modes, both pure functions of [(seed, cfg)]:

    - {b Seed sweep} ({!run_one} with no crash index): run the randomized
      multi-fiber workload under [Sched.Random seed]; the run must complete
      (no stall), raise nothing, leave the tree invariant-clean, match the
      oracle, and leave no leaked latch, fix, lock or transaction.

    - {b Crash sweep} ({!crash_sweep}): a first {e recording} run learns the
      total number of durability events [N] (log appends, log forces, page
      writes — see {!Aries_util.Crashpoint}); then, for each sampled index
      [k <= N], the same seed is re-run with the hook armed so the [k]-th
      event raises a simulated power failure, after which [Db.crash] +
      [Restart.run] must recover {e exactly} the oracle's committed state.

    Every failure carries a reproducer — the (seed, crash index) pair plus
    the op trace — and {!replay} re-runs it deterministically. *)

type run_report = {
  rr_events : int;  (** durability events during the workload phase *)
  rr_txns : int;  (** transactions traced *)
  rr_crash_at : int option;
  rr_instant_cut : int option;
      (** {!run_one_instant} runs only: the phase-1 durability event the
          first crash was armed at ([rr_crash_at] and [rr_events] then
          describe the recovery phase); [None] for {!run_one} runs *)
  rr_failures : string list;  (** empty = run passed all checks *)
  rr_trace : string list;  (** rendered op trace (reproducer detail) *)
  rr_event_dump : string list;
      (** tail of the protocol event ring ({!Aries_trace.Trace}) captured on
          failure — the latch/lock/log interleaving leading up to it; empty
          when the run passed *)
}

val run_one : ?crash_at:int -> Workload.cfg -> seed:int -> run_report
(** One full simulation run. With [crash_at], the workload is cut at that
    durability event, then crash + restart + oracle check; without, the
    workload runs to completion and is checked directly. *)

val run_one_instant : ?crash_at2:int -> Workload.cfg -> seed:int -> crash_at:int -> run_report
(** Recovery-during-recovery: cut the workload at durability event
    [crash_at], crash, restart with [Db.restart ~instant:true], and run a
    {e second} workload phase (disjoint key slices, see
    {!Workload.spawn_fibers}'s [fiber_base]) concurrently with the
    background drain, on-demand page redo and lock-driven loser
    preemption. Without [crash_at2] the run quiesces and is checked
    against the two-phase oracle ([post-instant]). With [crash_at2] the
    machine dies {e again} at that durability event of the recovery
    phase — possibly mid-drain or mid-replay — and a classic restart must
    converge ([post-restart2]). [rr_events] counts the recovery phase's
    durability events, so [crash_at2] can be swept like [crash_at]. *)

type reproducer = {
  rp_seed : int;
  rp_crash_at : int option;
  rp_instant_cut : int option;
      (** [Some k]: an instant-restart reproducer — phase 1 was cut at
          event [k], and [rp_crash_at] indexes the recovery phase *)
  rp_failures : string list;
  rp_trace : string list;
  rp_event_dump : string list;  (** protocol event window at the failure *)
}

val reproducer_line : reproducer -> string
(** The one-line form printed on failure:
    ["SIM-REPRO seed=<s> crash_at=<k|-> :: <first failure>"]. Feed the seed
    and crash index back to [bench/main.exe -- sim replay <s> <k|->] (or
    {!replay}) to re-run that exact execution. *)

val replay : Workload.cfg -> reproducer -> run_report
(** Re-run a reproducer's (seed, crash index) deterministically. *)

val confirms : reproducer -> run_report -> bool
(** Does the replay reproduce the original failure set exactly? *)

type summary = {
  sm_seed_runs : int;
  sm_crash_points : int;  (** armed crash-point runs performed *)
  sm_events : int;  (** durability events enumerated across recording runs *)
  sm_failures : reproducer list;
}

val typed_storage_failure : reproducer -> bool
(** Failure triage for fault sweeps: true iff {e every} recorded failure of
    this reproducer is a typed [Storage_error] (e.g. transient-EIO retry
    exhaustion) — the tolerated fail-loudly outcome under an armed
    {!Workload.cfg.faults}. Oracle mismatches, leaks, discipline
    violations and bare parser exceptions are never tolerated. *)

val fatal_failures : summary -> reproducer list
(** The reproducers that are {e not} tolerated typed storage failures. *)

val seed_sweep : ?progress:(string -> unit) -> Workload.cfg -> seeds:int list -> summary

val crash_sweep :
  ?progress:(string -> unit) -> Workload.cfg -> seed:int -> budget:int -> summary
(** Record once, then re-run with the crash armed at up to [budget] indices
    sampled evenly across [1..N] ([budget >= N] means every event). *)

val instant_sweep :
  ?progress:(string -> unit) -> Workload.cfg -> seed:int -> budget:int -> summary
(** The recovery-during-recovery sweep: sample [budget/4] phase-1 cut
    points; at each, record an instant-restart run (checked at quiesce),
    then arm second crashes at sampled durability events {e inside} the
    recovery phase — mid-drain, mid-on-demand-redo, mid-preemption — each
    of which must classic-restart back to the two-phase oracle. The
    budget bounds total armed {!run_one_instant} runs. *)

val sweep :
  ?progress:(string -> unit) ->
  Workload.cfg ->
  seeds:int list ->
  crash_seeds:int list ->
  crash_budget:int ->
  summary
(** The full rig: seed sweep over [seeds], then a crash sweep (budgeted per
    seed) over [crash_seeds]. Summaries are merged. *)
