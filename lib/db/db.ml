module Disk = Aries_page.Disk
module Logmgr = Aries_wal.Logmgr
module Logset = Aries_wal.Logset
module Bufpool = Aries_buffer.Bufpool
module Cleaner = Aries_buffer.Cleaner
module Lockmgr = Aries_lock.Lockmgr
module Txnmgr = Aries_txn.Txnmgr
module Group_commit = Aries_txn.Group_commit
module Btree = Aries_btree.Btree
module Mvstore = Aries_btree.Mvstore
module Restart = Aries_recovery.Restart
module Checkpoint = Aries_recovery.Checkpoint
module Ckptd = Aries_recovery.Ckptd
module Vgcd = Aries_recovery.Vgcd
module Media = Aries_recovery.Media
module Sched = Aries_sched.Sched
module Stats = Aries_util.Stats
module Trace = Aries_trace.Trace

type commit_mode = Per_commit | Group of Group_commit.policy

type t = {
  disk : Disk.t;
  logs : Logset.t;
  wal : Logmgr.t;  (* the control stream: Logset.control logs *)
  pool : Bufpool.t;
  locks : Lockmgr.t;
  mgr : Txnmgr.t;
  benv : Btree.env;
  commit_mode : commit_mode;
  cleaner : Cleaner.cfg option;
  checkpoint_cfg : Ckptd.cfg option;
  vgc_cfg : Vgcd.cfg option;
  archive : Media.Archive.t;
  gc : Group_commit.t option;
  mutable closing : bool;
  mutable running_daemons : int;
  mutable restart_engine : Restart.engine option;
      (* the instant-restart engine of the most recent [restart ~instant:true] *)
}

let build ?pool_capacity ?config ?(commit_mode = Per_commit) ?cleaner ?checkpoint ?vgc ~archive
    disk logs =
  let pool = Bufpool.create ?capacity:pool_capacity disk logs in
  let locks = Lockmgr.create () in
  let mgr = Txnmgr.create logs locks in
  let benv = Btree.env ?config mgr pool in
  Recmgr.rm_install mgr pool;
  let gc =
    match commit_mode with
    | Per_commit -> None
    | Group policy -> Some (Group_commit.create ~policy logs)
  in
  Txnmgr.set_group_commit mgr gc;
  (* the archive models stable storage: it survives crashes and receives
     every segment any live stream reclaims, so media recovery and the
     committed-state oracle always see the full record history *)
  Media.Archive.attach_set archive logs;
  (* automatic media repair (PR 5): a page image that fails its CRC or does
     not decode is quarantined by the pool and rebuilt here from the log
     archive plus the page's own live stream — the full history from the
     format record. Returning [true] tells the pool to re-read the healed
     image. *)
  Bufpool.set_repairer pool (fun pid ->
      ignore (Media.auto_repair ~archive mgr pool pid);
      true);
  { disk; logs; wal = Logset.control logs; pool; locks; mgr; benv; commit_mode; cleaner;
    checkpoint_cfg = checkpoint; vgc_cfg = vgc; archive; gc; closing = false; running_daemons = 0;
    restart_engine = None }

let create ?(page_size = 4096) ?pool_capacity ?config ?commit_mode ?cleaner ?checkpoint ?vgc
    ?segment_size ?streams () =
  let disk = Disk.create ~page_size () in
  let logs = Logset.create ?segment_size ?streams () in
  build ?pool_capacity ?config ?commit_mode ?cleaner ?checkpoint ?vgc
    ~archive:(Media.Archive.create ()) disk logs

let crash ?config t =
  Logset.crash t.logs;
  Bufpool.crash t.pool;
  Txnmgr.clear t.mgr;
  (* die-on-crash: daemon state is volatile. The fresh environment gets a
     fresh (empty) commit queue under the same policy; committers that were
     suspended on the old queue were never acknowledged, and restart decides
     their fate purely from the stable log. The archive and the surviving
     segments are stable state and carry over. The version store is volatile
     too — the new environment's store starts empty ([restart] rebuilds the
     in-flight transactions' chains from the log). *)
  build ?config ~commit_mode:t.commit_mode ?cleaner:t.cleaner ?checkpoint:t.checkpoint_cfg
    ?vgc:t.vgc_cfg ~archive:t.archive t.disk t.logs

(* Classic restart runs all three passes before returning. With
   [~instant:true] only Analysis (plus lock reacquisition) runs up front:
   the Db is open for new transactions when [restart] returns, redo
   happens per page on demand, and a "restartd" daemon drains the
   remaining work in the background (synchronously when no scheduler is
   running). The returned report is a snapshot — [Restart.report] on
   {!restart_engine} observes the counters growing as the drain
   proceeds. *)
let restart ?(instant = false) ?(drain = Restart.default_drain) t =
  if not instant then begin
    let report = Restart.run t.mgr t.pool in
    (* MVCC: the three passes are done, so only in-doubt prepared
       transactions survive in the table — rebuild their pending version
       chains (losers were rolled back; committed history needs no chains). *)
    Btree.rebuild_versions t.benv;
    report
  end
  else begin
    let en = Restart.start ~archive:t.archive t.mgr t.pool in
    t.restart_engine <- Some en;
    (* MVCC: Analysis has rebuilt the transaction table, and the Db is about
       to serve snapshot readers while losers are still being undone — their
       uncommitted versions must be back in the store {e before} the first
       read, or a reader would trust the physical tree and see loser data.
       Undo then drains the rebuilt pending versions record by record. *)
    Btree.rebuild_versions t.benv;
    if Restart.finished en then ()
    else if Sched.in_fiber () then begin
      t.running_daemons <- t.running_daemons + 1;
      ignore
        (Sched.spawn_daemon ~name:"restartd"
           ~on_shutdown:(fun () -> ())
           (fun () ->
             Fun.protect
               ~finally:(fun () -> t.running_daemons <- t.running_daemons - 1)
               (fun () -> Restart.run_daemon ~cfg:drain en ~stop:(fun () -> t.closing))))
    end
    else Restart.drain en;
    Restart.report en
  end

let restart_engine t = t.restart_engine

let checkpoint t = ignore (Checkpoint.take t.mgr t.pool)

let safety_point t = Ckptd.safety_point t.mgr t.pool

let trim_log t = Ckptd.reclaim t.mgr t.pool

(* One MVCC version-collection round: reclaim below the oldest-active-
   snapshot horizon (the current log position when nothing is pinned).
   The Vgcd daemon calls this on its cadence; tests call it directly. *)
let vgc_once t =
  let store = Btree.env_mvstore t.benv in
  let horizon =
    Mvstore.horizon store
      ~current:
        { Mvstore.cs_epoch = Logset.current_epoch t.logs; cs_gsn = Logset.current_gsn t.logs }
  in
  let reclaimed = Mvstore.gc store ~horizon in
  if Trace.enabled () then
    Trace.emit
      (Trace.Vgc_round
         { reclaimed; epoch = horizon.Mvstore.cs_epoch; gsn = horizon.Mvstore.cs_gsn });
  reclaimed

let iter_log_history t ~from f =
  Logset.iteri t.logs (fun _ wal -> Media.Archive.iter_history t.archive wal ~from f)

let with_txn t f =
  let txn = Txnmgr.begin_txn t.mgr in
  match f txn with
  | v ->
      Txnmgr.commit t.mgr txn;
      v
  | exception (Txnmgr.Aborted _ as e) -> raise e
  | exception e ->
      (match txn.Txnmgr.state with
      | Txnmgr.Active | Txnmgr.Prepared -> Txnmgr.rollback t.mgr txn
      | Txnmgr.Committing | Txnmgr.Rolling_back -> ());
      raise e

(* Snapshot format v4: the WAL became a multi-stream set (records carry
   stream/epoch/gsn stamps and the image serializes every stream plus the
   global counters), so v3 snapshots no longer decode. *)
let snapshot_magic = "ARIESIM4"

let save t path =
  let disk_img = Disk.serialize t.disk in
  let logs_img = Logset.serialize t.logs in
  let arch_img = Media.Archive.serialize t.archive in
  let total =
    24 + String.length snapshot_magic + Bytes.length disk_img + Bytes.length logs_img
    + Bytes.length arch_img
  in
  let w = Aries_util.Bytebuf.W.create ~size:total () in
  Aries_util.Bytebuf.W.string w snapshot_magic;
  Aries_util.Bytebuf.W.bytes w disk_img;
  Aries_util.Bytebuf.W.bytes w logs_img;
  Aries_util.Bytebuf.W.bytes w arch_img;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (Aries_util.Bytebuf.W.contents w))

let load ?pool_capacity ?config ?commit_mode ?cleaner ?checkpoint ?vgc path =
  let ic = open_in_bin path in
  let b =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let disk, logs, archive =
    try
      let r = Aries_util.Bytebuf.R.of_string b in
      let magic = Aries_util.Bytebuf.R.string r in
      if not (String.equal magic snapshot_magic) then
        invalid_arg
          (Printf.sprintf "Db.load: %s is not an ariesim %s snapshot (magic %S)" path
             snapshot_magic magic);
      let disk = Disk.deserialize (Aries_util.Bytebuf.R.bytes r) in
      let logs = Logset.deserialize (Aries_util.Bytebuf.R.bytes r) in
      let archive = Media.Archive.deserialize (Aries_util.Bytebuf.R.bytes r) in
      Aries_util.Bytebuf.R.expect_end r;
      (disk, logs, archive)
    with Aries_util.Bytebuf.Corrupt msg ->
      (* a snapshot that does not even frame is a typed storage error, not a
         bare parser crash *)
      raise (Aries_util.Storage_error.of_corrupt (Printf.sprintf "snapshot %s: %s" path msg))
  in
  build ?pool_capacity ?config ?commit_mode ?cleaner ?checkpoint ?vgc ~archive disk logs

let leak_report t =
  let leaks = ref [] in
  let add fmt = Printf.ksprintf (fun s -> leaks := s :: !leaks) fmt in
  let fixed = Bufpool.fixed_count t.pool in
  if fixed > 0 then add "%d buffer frame(s) still fixed" fixed;
  let latched = Bufpool.latched_count t.pool in
  if latched > 0 then add "%d page latch hold(s) leaked" latched;
  let locks = Lockmgr.total_held t.locks in
  if locks > 0 then add "%d lock holder(s)/waiter(s) left in the lock table" locks;
  (match Txnmgr.active_txns t.mgr with
  | [] -> ()
  | txns ->
      add "%d transaction(s) still in the table: %s" (List.length txns)
        (String.concat "," (List.map (fun (x : Txnmgr.txn) -> string_of_int x.Txnmgr.txn_id) txns)));
  let violations = Aries_trace.Discipline.violations () in
  if violations > 0 then add "%d latch/lock discipline violation(s) detected" violations;
  (* Image-cache coherence: a cached frame image whose tag no longer
     matches its page's page_lsn means the page advanced without
     [Bufpool.mark_dirty] — an unlogged mutation. *)
  let stale_images = Bufpool.image_cache_stale t.pool in
  if stale_images > 0 then add "%d stale cached page image(s) (unlogged mutation?)" stale_images;
  (* MVCC version-store audits. A pending (unstamped) version whose writer
     is no longer in the transaction table can never be stamped or dropped;
     a snapshot pin with no transaction behind it blocks the GC horizon
     forever; and the created/reclaimed counters must balance the store's
     live census (versions neither stamped-and-kept nor accounted reclaimed
     have leaked). *)
  let store = Btree.env_mvstore t.benv in
  let active_ids =
    List.map (fun (x : Txnmgr.txn) -> x.Txnmgr.txn_id) (Txnmgr.active_txns t.mgr)
  in
  (match
     List.filter (fun id -> not (List.mem id active_ids)) (Mvstore.pending_txns store)
   with
  | [] -> ()
  | stale ->
      add "%d finished transaction(s) still own pending MVCC versions: %s" (List.length stale)
        (String.concat "," (List.map string_of_int stale)));
  let snaps = Mvstore.live_snapshots store in
  if active_ids = [] && snaps > 0 then add "%d MVCC snapshot pin(s) leaked" snaps;
  let created = Mvstore.created_total store
  and reclaimed = Mvstore.reclaimed_total store in
  let live = Mvstore.live_versions store in
  if created - reclaimed <> live then
    add "MVCC version census mismatch: %d created - %d reclaimed but %d live in the store"
      created reclaimed live;
  List.rev !leaks

(* Spawn the configured daemons into the current scheduler run. Called from
   the run's main fiber before any user work, so the commit queue is
   attached (and stale state from a previous run discarded) before the
   first commit can enqueue. *)
let start_daemons t =
  t.running_daemons <- 0;  (* daemons of any previous run are dead *)
  if not t.closing then begin
    let spawn_counted name body =
      t.running_daemons <- t.running_daemons + 1;
      ignore
        (Sched.spawn_daemon ~name
           ~on_shutdown:(match t.gc with
             | Some gc when String.equal name "group-commit" ->
                 fun () -> Group_commit.nudge gc
             | _ -> fun () -> ())
           (fun () ->
             Fun.protect
               ~finally:(fun () -> t.running_daemons <- t.running_daemons - 1)
               body))
    in
    (match t.gc with
    | Some gc ->
        Group_commit.attach gc;
        spawn_counted "group-commit" (fun () ->
            Group_commit.run_daemon gc ~stop:(fun () -> t.closing))
    | None -> ());
    (match t.cleaner with
    | Some cfg ->
        spawn_counted "page-cleaner" (fun () ->
            Cleaner.run_daemon t.pool cfg ~stop:(fun () -> t.closing))
    | None -> ());
    (match t.checkpoint_cfg with
    | Some cfg ->
        spawn_counted "checkpointer" (fun () ->
            Ckptd.run_daemon t.mgr t.pool cfg ~stop:(fun () -> t.closing))
    | None -> ());
    match t.vgc_cfg with
    | Some cfg ->
        spawn_counted "version-gc" (fun () ->
            Vgcd.run_daemon cfg ~gc:(fun () -> vgc_once t) ~stop:(fun () -> t.closing))
    | None -> ()
  end

let daemons_running t = t.running_daemons

let close t =
  t.closing <- true;
  if Sched.in_fiber () then begin
    (* wake the commit daemon so it drains its pending batch without
       waiting out the accumulation window, then join both daemons *)
    (match t.gc with Some gc -> Group_commit.nudge gc | None -> ());
    while t.running_daemons > 0 do
      Sched.yield ()
    done
  end;
  (* clean shutdown: everything appended on every stream is made stable *)
  Logset.flush_all t.logs

let run ?policy ?max_steps ?yield_probability t main =
  Sched.run ?policy ?max_steps ?yield_probability (fun () ->
      start_daemons t;
      main ())

let run_exn ?policy t f =
  Sched.run_value ?policy (fun () ->
      start_daemons t;
      f ())
