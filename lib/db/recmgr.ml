open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Page = Aries_page.Page
module Disk = Aries_page.Disk
module Bufpool = Aries_buffer.Bufpool
module Lockmgr = Aries_lock.Lockmgr
module Txnmgr = Aries_txn.Txnmgr
module Latch = Aries_sched.Latch

type heap = {
  h_owner : int;
  h_mgr : Txnmgr.t;
  h_pool : Bufpool.t;
  mutable h_pages : Ids.page_id list;  (* oldest first *)
}

let owner h = h.h_owner

let page_ids h = h.h_pages

(* ---------- page-oriented application (forward = redo = CLR) ---------- *)

let apply_data page (body : Reclog.body) =
  match body with
  | Reclog.Rec_insert { rid; data } ->
      let d = Page.as_data page in
      while Vec.length d.Page.dt_slots <= rid.Ids.rid_slot do
        Vec.push d.Page.dt_slots None
      done;
      (match Vec.get d.Page.dt_slots rid.Ids.rid_slot with
      | None -> Vec.set d.Page.dt_slots rid.Ids.rid_slot (Some data)
      | Some _ ->
          invalid_arg (Printf.sprintf "Recmgr: insert into occupied slot %s" (Ids.rid_to_string rid)))
  | Reclog.Rec_delete { rid; _ } -> (
      let d = Page.as_data page in
      match Vec.get d.Page.dt_slots rid.Ids.rid_slot with
      | Some _ -> Vec.set d.Page.dt_slots rid.Ids.rid_slot None
      | None ->
          invalid_arg (Printf.sprintf "Recmgr: delete of empty slot %s" (Ids.rid_to_string rid)))
  | Reclog.Rec_update { rid; new_data; _ } -> (
      let d = Page.as_data page in
      match Vec.get d.Page.dt_slots rid.Ids.rid_slot with
      | Some _ -> Vec.set d.Page.dt_slots rid.Ids.rid_slot (Some new_data)
      | None ->
          invalid_arg (Printf.sprintf "Recmgr: update of empty slot %s" (Ids.rid_to_string rid)))
  | Reclog.Format_data { owner } ->
      page.Page.content <- Page.empty_data ~owner

(* ---------- logging helpers ---------- *)

let log_apply mgr pool txn page body ~undoable =
  let lsn =
    Txnmgr.log_update mgr txn ~page:page.Page.pid ~undoable ~rm_id:Reclog.rm_id
      ~op:(Reclog.op_of_body body) ~body:(Reclog.encode body) ()
  in
  apply_data page body;
  page.Page.page_lsn <- lsn;
  Bufpool.mark_dirty pool page lsn

let log_clr_apply mgr pool txn page body ~undo_stream ~undo_nxt =
  let lsn =
    Txnmgr.log_clr mgr txn ~page:page.Page.pid ~undo_stream ~rm_id:Reclog.rm_id
      ~op:(Reclog.op_of_body body) ~body:(Reclog.encode body) ~undo_nxt ()
  in
  apply_data page body;
  page.Page.page_lsn <- lsn;
  Bufpool.mark_dirty pool page lsn

(* ---------- resource-manager callbacks ---------- *)

let rm_redo pool (r : Logrec.t) =
  let body = Reclog.decode ~op:r.Logrec.op r.Logrec.body in
  let page =
    match Bufpool.fix_opt pool r.Logrec.page with
    | Some p -> p
    | None -> (
        match body with
        | Reclog.Format_data { owner } ->
            Bufpool.fix_new pool r.Logrec.page (Page.empty_data ~owner)
        | _ ->
            invalid_arg
              (Printf.sprintf "Recmgr.redo: page %d missing for %s" r.Logrec.page
                 (Reclog.op_name r.Logrec.op)))
  in
  if Lsn.( < ) page.Page.page_lsn r.Logrec.lsn then begin
    apply_data page body;
    page.Page.page_lsn <- r.Logrec.lsn;
    Bufpool.mark_dirty pool page r.Logrec.lsn
  end;
  Bufpool.unfix pool page

let rm_undo mgr pool txn (r : Logrec.t) =
  let body = Reclog.decode ~op:r.Logrec.op r.Logrec.body in
  let comp =
    match body with
    | Reclog.Rec_insert { rid; data } -> Reclog.Rec_delete { rid; data }
    | Reclog.Rec_delete { rid; data } -> Reclog.Rec_insert { rid; data }
    | Reclog.Rec_update { rid; old_data; new_data } ->
        Reclog.Rec_update { rid; old_data = new_data; new_data = old_data }
    | Reclog.Format_data _ -> invalid_arg "Recmgr.undo: format records are redo-only"
  in
  let page = Bufpool.fix pool r.Logrec.page in
  Latch.acquire page.Page.latch Latch.X;
  Fun.protect
    ~finally:(fun () ->
      Latch.release page.Page.latch;
      Bufpool.unfix pool page)
    (fun () -> log_clr_apply mgr pool txn page comp ~undo_stream:r.Logrec.stream ~undo_nxt:r.Logrec.prev_lsn)

let rm_install mgr pool =
  Txnmgr.register_rm mgr ~rm_id:Reclog.rm_id
    ~locks:(fun r ->
      (* Record operations are protected by a commit-duration X record
         lock; Format_data is a structure record with no lock of its own. *)
      match Reclog.decode ~op:r.Logrec.op r.Logrec.body with
      | Reclog.Rec_insert { rid; _ } | Reclog.Rec_delete { rid; _ }
      | Reclog.Rec_update { rid; _ } ->
          [ (Lockmgr.Rid rid, Lockmgr.X) ]
      | Reclog.Format_data _ -> [])
    ~redo:(fun r -> rm_redo pool r)
    ~undo:(fun txn r -> rm_undo mgr pool txn r)
    ()

(* ---------- heap operations ---------- *)

let add_page h txn =
  let disk = Bufpool.disk h.h_pool in
  let pid = Disk.alloc_pid disk in
  let page = Bufpool.fix_new h.h_pool pid (Page.empty_data ~owner:h.h_owner) in
  Latch.acquire page.Page.latch Latch.X;
  Fun.protect
    ~finally:(fun () ->
      Latch.release page.Page.latch;
      Bufpool.unfix h.h_pool page)
    (fun () ->
      log_apply h.h_mgr h.h_pool txn page (Reclog.Format_data { owner = h.h_owner })
        ~undoable:false);
  h.h_pages <- h.h_pages @ [ pid ];
  pid

let create_heap mgr pool txn ~owner =
  let h = { h_owner = owner; h_mgr = mgr; h_pool = pool; h_pages = [] } in
  ignore (add_page h txn);
  h

let open_heaps mgr pool =
  let disk = Bufpool.disk pool in
  let by_owner : (int, Ids.page_id list ref) Hashtbl.t = Hashtbl.create 8 in
  (* both disk images and pool-resident pages: redo may have rebuilt a
     never-flushed data page only in the pool *)
  let candidates =
    List.sort_uniq compare (Disk.pids disk @ Bufpool.resident_pids pool)
  in
  List.iter
    (fun pid ->
      match Bufpool.fix_opt pool pid with
      | Some page ->
          (match page.Page.content with
          | Page.Data d ->
              let l =
                match Hashtbl.find_opt by_owner d.Page.dt_owner with
                | Some l -> l
                | None ->
                    let l = ref [] in
                    Hashtbl.replace by_owner d.Page.dt_owner l;
                    l
              in
              l := pid :: !l
          | Page.Leaf _ | Page.Nonleaf _ | Page.Anchor _ -> ());
          Bufpool.unfix pool page
      | None -> ())
    candidates;
  Hashtbl.fold
    (fun owner pids acc ->
      (owner, { h_owner = owner; h_mgr = mgr; h_pool = pool; h_pages = List.sort compare !pids })
      :: acc)
    by_owner []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let record_fits page data = Page.free_space page >= Bytes.length data + 12

(* a tombstone slot may be reused only if no transaction retains (or waits
   for) its RID lock: an uncommitted delete must be able to reclaim it *)
let slot_reusable h rid =
  let locks = Txnmgr.locks h.h_mgr in
  Lockmgr.holders locks (Lockmgr.Rid rid) = [] && Lockmgr.waiter_count locks (Lockmgr.Rid rid) = 0

let insert h txn data =
  let try_page pid =
    let page = Bufpool.fix h.h_pool pid in
    Latch.acquire page.Page.latch Latch.X;
    let result =
      if not (record_fits page data) then None
      else begin
        let d = Page.as_data page in
        let slot =
          let reusable = ref None in
          Vec.iteri
            (fun i s ->
              if
                !reusable = None && s = None
                && slot_reusable h { Ids.rid_page = pid; rid_slot = i }
              then reusable := Some i)
            d.Page.dt_slots;
          match !reusable with Some i -> i | None -> Vec.length d.Page.dt_slots
        in
        let rid = { Ids.rid_page = pid; rid_slot = slot } in
        (* grantable immediately: the slot is fresh or verified unlocked *)
        Txnmgr.lock h.h_mgr txn (Lockmgr.Rid rid) Lockmgr.X Lockmgr.Commit;
        log_apply h.h_mgr h.h_pool txn page (Reclog.Rec_insert { rid; data }) ~undoable:true;
        Some rid
      end
    in
    Latch.release page.Page.latch;
    Bufpool.unfix h.h_pool page;
    result
  in
  (* last page first: it is the most likely to have space *)
  let rec go = function
    | [] ->
        let pid = add_page h txn in
        (match try_page pid with
        | Some rid -> rid
        | None -> invalid_arg "Recmgr.insert: record larger than a page")
    | pid :: rest -> ( match try_page pid with Some rid -> rid | None -> go rest)
  in
  go (List.rev h.h_pages)

let with_data_page h rid f =
  let page = Bufpool.fix h.h_pool rid.Ids.rid_page in
  Latch.acquire page.Page.latch Latch.X;
  Fun.protect
    ~finally:(fun () ->
      Latch.release page.Page.latch;
      Bufpool.unfix h.h_pool page)
    (fun () -> f page)

let slot_data page rid =
  let d = Page.as_data page in
  if rid.Ids.rid_slot >= Vec.length d.Page.dt_slots then None
  else Vec.get d.Page.dt_slots rid.Ids.rid_slot

let delete h txn rid =
  with_data_page h rid (fun page ->
      match slot_data page rid with
      | None -> invalid_arg (Printf.sprintf "Recmgr.delete: no record at %s" (Ids.rid_to_string rid))
      | Some data ->
          log_apply h.h_mgr h.h_pool txn page (Reclog.Rec_delete { rid; data }) ~undoable:true;
          data)

let update h txn rid new_data =
  with_data_page h rid (fun page ->
      match slot_data page rid with
      | None -> invalid_arg (Printf.sprintf "Recmgr.update: no record at %s" (Ids.rid_to_string rid))
      | Some old_data ->
          if Bytes.length new_data > Bytes.length old_data && not (record_fits page new_data) then
            invalid_arg "Recmgr.update: new image does not fit (records do not move)";
          log_apply h.h_mgr h.h_pool txn page
            (Reclog.Rec_update { rid; old_data; new_data })
            ~undoable:true;
          old_data)

let read h rid =
  let page = Bufpool.fix h.h_pool rid.Ids.rid_page in
  Latch.acquire page.Page.latch Latch.S;
  Fun.protect
    ~finally:(fun () ->
      Latch.release page.Page.latch;
      Bufpool.unfix h.h_pool page)
    (fun () -> slot_data page rid)

let record_count h =
  List.fold_left
    (fun acc pid ->
      let page = Bufpool.fix h.h_pool pid in
      let d = Page.as_data page in
      let n = Vec.fold (fun n s -> match s with Some _ -> n + 1 | None -> n) 0 d.Page.dt_slots in
      Bufpool.unfix h.h_pool page;
      acc + n)
    0 h.h_pages
