(** The database environment: disk + log + buffer pool + lock manager +
    transaction manager + index environment, wired together, with crash and
    restart entry points.

    A {e system crash} ([crash]) produces a fresh environment over the same
    stable state (disk images, stable log prefix, master record): every
    volatile structure — buffer pool, lock table, transaction table, open
    trees — is gone, exactly like a power failure. [restart] then runs the
    three ARIES passes. *)

module Txnmgr = Aries_txn.Txnmgr

type t = {
  disk : Aries_page.Disk.t;
  wal : Aries_wal.Logmgr.t;
  pool : Aries_buffer.Bufpool.t;
  locks : Aries_lock.Lockmgr.t;
  mgr : Txnmgr.t;
  benv : Aries_btree.Btree.env;
}

val create :
  ?page_size:int -> ?pool_capacity:int -> ?config:Aries_btree.Btree.config -> unit -> t

val crash : ?config:Aries_btree.Btree.config -> t -> t
(** Simulate a system failure: discard the unflushed log tail and every
    buffered page, and build fresh volatile managers over the surviving
    stable state. The old handle must not be used again. The btree [config]
    carries over. *)

val restart : t -> Aries_recovery.Restart.report
(** Run ARIES restart recovery (call on a freshly [crash]ed environment,
    inside the scheduler). *)

val checkpoint : t -> unit

val trim_log : t -> int
(** Reclaim log space below every recovery horizon: the master checkpoint,
    the oldest dirty page's recLSN, and the first record of every live
    transaction (a transaction of unknown extent — restored by restart —
    blocks trimming entirely). Returns the number of bytes reclaimed.
    Typically called right after {!checkpoint}. *)

val with_txn : t -> (Txnmgr.txn -> 'a) -> 'a
(** Begin, run, commit; total rollback (and re-raise) on exception. *)

val leak_report : t -> string list
(** Quiescence audit: human-readable descriptions of every leaked resource —
    fixed buffer frames, held page latches, lock-table holders/waiters, and
    transactions still in the table. Empty when the environment is fully
    quiescent (what the simulation harness requires after every completed
    workload and after every restart). *)

val run :
  ?policy:Aries_sched.Sched.policy ->
  ?max_steps:int ->
  ?yield_probability:float ->
  t ->
  (unit -> unit) ->
  Aries_sched.Sched.result
(** Run a workload under the cooperative scheduler. *)

val run_exn : ?policy:Aries_sched.Sched.policy -> t -> (unit -> 'a) -> 'a
(** Like {!run} for a single computation; re-raises fiber failures and
    fails on stalls. *)

val save : t -> string -> unit
(** Persist the {e stable} state (disk images, stable log prefix, master
    record) to a file — exactly what a powered-off machine retains. The
    volatile tail and buffer pool are not saved; run {!restart} after
    {!load}. *)

val load : ?pool_capacity:int -> ?config:Aries_btree.Btree.config -> string -> t
(** Rebuild an environment from a {!save}d file. The caller must run
    {!restart} (inside the scheduler) before using it. *)
