(** The database environment: disk + log + buffer pool + lock manager +
    transaction manager + index environment, wired together, with crash and
    restart entry points.

    A {e system crash} ([crash]) produces a fresh environment over the same
    stable state (disk images, stable log prefix, master record): every
    volatile structure — buffer pool, lock table, transaction table, open
    trees — is gone, exactly like a power failure. [restart] then runs the
    three ARIES passes. *)

module Txnmgr = Aries_txn.Txnmgr

type commit_mode =
  | Per_commit
      (** every [Txnmgr.commit] performs its own synchronous log force —
          the classic one-force-per-commit WAL bottleneck *)
  | Group of Aries_txn.Group_commit.policy
      (** committers enqueue on the commit queue and suspend; a
          scheduler-resident daemon forces once per batch (at most
          [max_batch] committers or [max_delay_steps] scheduler steps,
          whichever first) and wakes every covered waiter *)

type t = {
  disk : Aries_page.Disk.t;
  logs : Aries_wal.Logset.t;
  wal : Aries_wal.Logmgr.t;  (** the control stream, [Logset.control logs] *)
  pool : Aries_buffer.Bufpool.t;
  locks : Aries_lock.Lockmgr.t;
  mgr : Txnmgr.t;
  benv : Aries_btree.Btree.env;
  commit_mode : commit_mode;
  cleaner : Aries_buffer.Cleaner.cfg option;
  checkpoint_cfg : Aries_recovery.Ckptd.cfg option;
  vgc_cfg : Aries_recovery.Vgcd.cfg option;
  archive : Aries_recovery.Media.Archive.t;
  gc : Aries_txn.Group_commit.t option;
  mutable closing : bool;
  mutable running_daemons : int;
  mutable restart_engine : Aries_recovery.Restart.engine option;
}

val create :
  ?page_size:int ->
  ?pool_capacity:int ->
  ?config:Aries_btree.Btree.config ->
  ?commit_mode:commit_mode ->
  ?cleaner:Aries_buffer.Cleaner.cfg ->
  ?checkpoint:Aries_recovery.Ckptd.cfg ->
  ?vgc:Aries_recovery.Vgcd.cfg ->
  ?segment_size:int ->
  ?streams:int ->
  unit ->
  t
(** [commit_mode] (default [Per_commit]) selects the commit-path force
    policy; [cleaner] (default off) enables the background page cleaner;
    [checkpoint] (default off) enables the fuzzy-checkpoint daemon
    ({!Aries_recovery.Ckptd}), which periodically checkpoints and reclaims
    sealed log segments below the safety point; [vgc] (default off) enables
    the MVCC version garbage collector ({!Aries_recovery.Vgcd}), which
    periodically reclaims chain versions below the oldest-active-snapshot
    horizon (only useful under {!Aries_btree.Protocol.Mvcc}). [segment_size] sets the WAL
    segment size ({!Aries_wal.Logmgr.default_segment_size} by default) —
    reclamation is whole-segment, so small workloads want small segments.
    [streams] (default 1) is the number of parallel WAL streams
    ({!Aries_wal.Logset}): page records are routed by page-id hash, commits
    are acknowledged only after every touched stream is forced through the
    commit's epoch fence (rule R8).
    With any daemon configured, every {!run}/{!run_exn} spawns the daemons
    at the start of the run (spawn-at-open), drains them when the last user
    fiber finishes (drain-on-close), and loses them — along with any
    unacknowledged queued commits — on {!crash} (die-on-crash). *)

val crash : ?config:Aries_btree.Btree.config -> t -> t
(** Simulate a system failure: discard the unflushed log tail and every
    buffered page, and build fresh volatile managers over the surviving
    stable state. The old handle must not be used again. The btree [config]
    carries over. *)

val restart :
  ?instant:bool -> ?drain:Aries_recovery.Restart.drain_cfg -> t -> Aries_recovery.Restart.report
(** Run ARIES restart recovery (call on a freshly [crash]ed environment).
    Analysis merges every stream by [(epoch, gsn)]; redo and undo are
    per-stream / per-page exactly as in the single-log case.

    [~instant:false] (the default) runs the classic three passes to
    completion before returning.

    [~instant:true] returns as soon as Analysis and lock reacquisition are
    done: the Db is open — new transactions run immediately, any fix of a
    page in the needs-redo set triggers single-page redo on demand, and a
    lock request conflicting with a restored loser preempts exactly that
    loser's undo. A ["restartd"] daemon (configured by [drain],
    {!Aries_recovery.Restart.default_drain} by default) drains the
    remaining redo/undo work in the background and takes the
    post-recovery checkpoint; outside a scheduler run the drain happens
    synchronously instead. The returned report is a snapshot — query
    {!restart_engine} with {!Aries_recovery.Restart.report} to watch the
    counters grow. *)

val restart_engine : t -> Aries_recovery.Restart.engine option
(** The engine of the most recent [restart ~instant:true] on this handle
    (it stays queryable after the drain finishes). *)

val checkpoint : t -> unit

val safety_point : t -> Aries_wal.Lsn.t option
(** The log-space reclamation safety point (see {!Aries_recovery.Ckptd}):
    [min(redo point of the last complete checkpoint, min recLSN in the DPT,
    first LSN of the oldest active transaction)]. [None] when reclamation
    would be unsafe (no complete checkpoint yet, or a transaction of
    unknown extent in the table). *)

val vgc_once : t -> int
(** Run one MVCC version-collection round by hand: compute the
    oldest-active-snapshot horizon (the current log position when no
    snapshot is pinned) and reclaim below it ({!Aries_btree.Mvstore.gc}).
    Returns versions reclaimed and emits a [Vgc_round] trace event. The
    [vgc] daemon calls exactly this on its cadence. *)

val trim_log : t -> int
(** Reclaim whole sealed log segments below the {!safety_point}. Returns
    the number of bytes reclaimed (0 when blocked or when no sealed segment
    lies entirely below the safety point). Reclaimed segments are handed to
    the {!Aries_recovery.Media.Archive} so media recovery and log-history
    iteration keep working. Typically called right after {!checkpoint}. *)

val iter_log_history : t -> from:Aries_wal.Lsn.t -> (Aries_wal.Logrec.t -> unit) -> unit
(** Iterate the {e full} record history from [from] ([Lsn.nil] = all),
    stream by stream: each stream's archived (reclaimed) segments first,
    then its live log — the union is every record ever appended, regardless
    of truncation. Cross-stream order is {e not} (epoch, gsn)-merged; sort
    by [gsn] if global order matters. *)

val with_txn : t -> (Txnmgr.txn -> 'a) -> 'a
(** Begin, run, commit; total rollback (and re-raise) on exception. *)

val leak_report : t -> string list
(** Quiescence audit: human-readable descriptions of every leaked resource —
    fixed buffer frames, held page latches, lock-table holders/waiters,
    transactions still in the table, plus the MVCC version-store audits:
    pending versions owned by finished transactions, snapshot pins with no
    transaction behind them, and a created/reclaimed counter balance that
    must equal the store's live census. Empty when the environment is fully
    quiescent (what the simulation harness requires after every completed
    workload and after every restart). *)

val close : t -> unit
(** Graceful shutdown. Inside a scheduler run: nudges the group-commit
    daemon to force its pending batch immediately (no acknowledgement is
    ever issued unforced, and none is dropped), joins both daemons
    ({!daemons_running} returns to 0), then forces the log tail. Outside a
    run: marks the environment closed (subsequent runs spawn no daemons)
    and forces the log. *)

val daemons_running : t -> int
(** Daemons spawned for the current/most recent run and not yet exited. *)

val run :
  ?policy:Aries_sched.Sched.policy ->
  ?max_steps:int ->
  ?yield_probability:float ->
  t ->
  (unit -> unit) ->
  Aries_sched.Sched.result
(** Run a workload under the cooperative scheduler. Spawns the configured
    daemons (group-commit force daemon, page cleaner, checkpointer) into
    the run first; they drain and exit when the workload's fibers finish. *)

val run_exn : ?policy:Aries_sched.Sched.policy -> t -> (unit -> 'a) -> 'a
(** Like {!run} for a single computation; re-raises fiber failures and
    fails on stalls. *)

val start_daemons : t -> unit
(** Spawn this environment's configured daemons into the {e current}
    scheduler run (what {!run}/{!run_exn} do before the workload). For a
    multi-environment run — e.g. a [Sharddb] hosting several [Db]s under
    one scheduler — call this once per environment from the run's main
    fiber instead of nesting {!run}. Idempotence is the caller's problem:
    call it once per environment per run. *)

val save : t -> string -> unit
(** Persist the {e stable} state (disk images, stable log prefix + master
    record, log archive) to a file — exactly what a powered-off machine
    retains. The volatile tail and buffer pool are not saved; run
    {!restart} after {!load}. Format magic: ["ARIESIM4"] (v4: multi-stream WAL image with stream/epoch/gsn record stamps). *)

val load :
  ?pool_capacity:int ->
  ?config:Aries_btree.Btree.config ->
  ?commit_mode:commit_mode ->
  ?cleaner:Aries_buffer.Cleaner.cfg ->
  ?checkpoint:Aries_recovery.Ckptd.cfg ->
  ?vgc:Aries_recovery.Vgcd.cfg ->
  string ->
  t
(** Rebuild an environment from a {!save}d file. The caller must run
    {!restart} (inside the scheduler) before using it. *)
