(* Sharded Db + presumed-abort 2PC: the Twopc wire codecs (round-trip and
   truncation rejection, 1000 seeded cases each), rule R10 end-to-end via
   the 2pc.early-decide meta-fault, presumed-abort in-doubt resolution
   after a crash, the coordinator decision scan, and the cluster-wide
   in-doubt leak audit. *)

open Aries_util
module Twopc = Aries_shard.Twopc
module Sharddb = Aries_shard.Sharddb
module Sched = Aries_sched.Sched
module Trace = Aries_trace.Trace
module Discipline = Aries_trace.Discipline
module Txnmgr = Aries_txn.Txnmgr

(* ------------------------------------------------------------------ *)
(* Codec round-trips *)

let gen_gid st = QCheck.Gen.int_range 0 1_000_000_000 st
let gen_shard st = QCheck.Gen.int_range 0 1023 st

let gen_parts : int list QCheck.Gen.t =
 fun st ->
  let n = QCheck.Gen.int_range 0 12 st in
  List.init n (fun _ -> gen_shard st)

let qcheck_prepare_meta =
  QCheck.Test.make ~name:"prepare meta codec roundtrip" ~count:1000
    (QCheck.make
       ~print:(fun (g, c) -> Printf.sprintf "gid=%d coord=%d" g c)
       QCheck.Gen.(pair gen_gid gen_shard))
    (fun (gid, coord) -> Twopc.decode_prepare_meta (Twopc.encode_prepare_meta ~gid ~coord) = (gid, coord))

let qcheck_decision =
  QCheck.Test.make ~name:"decision codec roundtrip" ~count:1000
    (QCheck.make
       ~print:(fun (g, ps) ->
         Printf.sprintf "gid=%d parts=[%s]" g (String.concat ";" (List.map string_of_int ps)))
       QCheck.Gen.(pair gen_gid gen_parts))
    (fun (gid, parts) -> Twopc.decode_decision (Twopc.encode_decision ~gid ~parts) = (gid, parts))

let qcheck_end =
  QCheck.Test.make ~name:"end codec roundtrip" ~count:1000
    (QCheck.make ~print:string_of_int gen_gid)
    (fun gid -> Twopc.decode_end (Twopc.encode_end ~gid) = gid)

(* Any strict prefix must be rejected with [Bytebuf.Corrupt], never decoded
   to a plausible value or crashed with an index error; trailing garbage
   (oversized input) likewise. *)
let rejects decode b =
  match decode b with
  | _ -> false
  | exception Bytebuf.Corrupt _ -> true

let truncation_prop encode decode st =
  let b = encode st in
  let len = Bytes.length b in
  let cut = QCheck.Gen.int_range 0 (len - 1) st in
  rejects decode (Bytes.sub b 0 cut)
  && rejects decode (Bytes.cat b (Bytes.make 1 '\x00'))

let qcheck_truncation name encode decode =
  QCheck.Test.make ~name ~count:1000
    (QCheck.make (fun st -> truncation_prop encode decode st))
    (fun ok -> ok)

let qcheck_prepare_meta_truncation =
  qcheck_truncation "prepare meta rejects truncation"
    (fun st -> Twopc.encode_prepare_meta ~gid:(gen_gid st) ~coord:(gen_shard st))
    Twopc.decode_prepare_meta

let qcheck_decision_truncation =
  qcheck_truncation "decision rejects truncation"
    (fun st -> Twopc.encode_decision ~gid:(gen_gid st) ~parts:(gen_parts st))
    Twopc.decode_decision

let qcheck_end_truncation =
  qcheck_truncation "end rejects truncation"
    (fun st -> Twopc.encode_end ~gid:(gen_gid st))
    Twopc.decode_end

let seeded_1000 test () =
  QCheck.Test.check_exn ~rand:(Random.State.make [| 0x2FC10 |]) test

(* ------------------------------------------------------------------ *)
(* End-to-end rigs *)

let mk () = Sharddb.create ~shards:2 ~page_size:320 ~pool_capacity:12 ()

(* Two values the hash router sends to different shards — [v0] to the
   coordinator-to-be (first touch), [v1] to the other shard. *)
let cross_pair t =
  let v i = Printf.sprintf "val-%03d" i in
  let rec hunt i =
    if Sharddb.shard_of t (v i) <> Sharddb.shard_of t (v 0) then (v 0, v i) else hunt (i + 1)
  in
  hunt 1

let rid i = { Ids.rid_page = 300_000; rid_slot = i }

let run_ok t f =
  let r = Sharddb.run t ~policy:(Sched.Fifo) f in
  (match r.Sched.exns with
  | [] -> ()
  | (_, name, e) :: _ -> Alcotest.failf "fiber %s died: %s" name (Printexc.to_string e));
  match r.Sched.outcome with
  | Sched.Completed -> ()
  | Sched.Stalled ids -> Alcotest.failf "stalled with %d fiber(s)" (List.length ids)
  | Sched.Interrupted n -> Alcotest.failf "interrupted with %d live fiber(s)" n

let test_cross_shard_commit () =
  let t = mk () in
  run_ok t (fun () -> Sharddb.setup t);
  let a, b = cross_pair t in
  let stats = Stats.create () in
  Stats.with_sink stats (fun () ->
      run_ok t (fun () ->
          ignore
            (Sched.spawn ~name:"wl" (fun () ->
                 let g = Sharddb.begin_gtxn t in
                 Sharddb.insert t g ~value:a ~rid:(rid 1);
                 Sharddb.insert t g ~value:b ~rid:(rid 2);
                 Alcotest.(check int) "two participants" 2
                   (List.length (Sharddb.participants g));
                 Sharddb.commit t g;
                 let g2 = Sharddb.begin_gtxn t in
                 Alcotest.(check bool) "a visible" true (Sharddb.fetch t g2 a <> None);
                 Alcotest.(check bool) "b visible" true (Sharddb.fetch t g2 b <> None);
                 Sharddb.abort t g2))));
  Alcotest.(check int) "both branches prepared" 2 (Stats.get stats Stats.txn_prepares);
  (* the decision scan on the coordinator's log sees the durable commit *)
  let coord = Sharddb.shard_of t a in
  let ds = Twopc.decisions (Sharddb.db t coord) in
  Alcotest.(check bool) "one committed decision" true
    (Hashtbl.fold (fun _ d acc -> acc || d.Twopc.dc_commit) ds false);
  Alcotest.(check (list string)) "no leaks" [] (Sharddb.leak_report t);
  Sharddb.close t

(* A crash landing between phase 1 and phase 2: both branches voted yes
   (Prepare forced) but no decision record exists. The prepares survive
   as in-doubt branches, restart restores them with locks reacquired, and
   resolution aborts both by presumption — commit everywhere or abort
   everywhere, with nothing left holding locks. *)
let test_presumed_abort_after_crash () =
  let t = mk () in
  run_ok t (fun () -> Sharddb.setup t);
  let a, b = cross_pair t in
  let stats = Stats.create () in
  Stats.with_sink stats (fun () ->
      run_ok t (fun () ->
          ignore
            (Sched.spawn ~name:"wl" (fun () ->
                 let g = Sharddb.begin_gtxn t in
                 Sharddb.insert t g ~value:a ~rid:(rid 1);
                 Sharddb.insert t g ~value:b ~rid:(rid 2);
                 (* phase 1 by hand: every branch votes yes, then the
                    cluster dies before the coordinator decides *)
                 let coord = Sharddb.shard_of t a in
                 List.iter
                   (fun k ->
                     let tx = Sharddb.local t g k in
                     Txnmgr.prepare
                       ~meta:(Twopc.encode_prepare_meta ~gid:(Sharddb.gid g) ~coord)
                       (Sharddb.db t k).Aries_db.Db.mgr tx)
                   (Sharddb.participants g))));
      Sharddb.crash t;
      run_ok t (fun () ->
          ignore
            (Sched.spawn ~name:"restart" (fun () ->
                 let _, resolved = Sharddb.restart t in
                 Alcotest.(check int) "both branches resolved" 2 resolved;
                 let g = Sharddb.begin_gtxn t in
                 Alcotest.(check bool) "a rolled back" true (Sharddb.fetch t g a = None);
                 Alcotest.(check bool) "b rolled back" true (Sharddb.fetch t g b = None);
                 Sharddb.abort t g;
                 Alcotest.(check (list string)) "no in-doubt leaks" []
                   (Sharddb.leak_report t)))));
  Alcotest.(check int) "in-doubt restored" 2 (Stats.get stats Stats.txn_indoubt_restored);
  Alcotest.(check int) "in-doubt resolved" 2 (Stats.get stats Stats.txn_indoubt_resolved);
  Sharddb.close t

(* R10 end-to-end: with the online checker on, acknowledging a commit whose
   decision was never forced (the 2pc.early-decide meta-fault) must raise a
   Discipline violation at the decide/ack events. *)
let test_early_decide_caught () =
  Trace.set_mode Trace.Check;
  Trace.set_capacity 4096;
  Trace.reset ();
  Discipline.reset ();
  Fun.protect
    ~finally:(fun () ->
      Crashpoint.disable_fault Crashpoint.fault_twopc_early_decide;
      Trace.set_mode Trace.Off;
      Trace.reset ();
      Discipline.reset ())
    (fun () ->
      let t = mk () in
      run_ok t (fun () -> Sharddb.setup t);
      let a, b = cross_pair t in
      Crashpoint.enable_fault Crashpoint.fault_twopc_early_decide;
      let r =
        Sharddb.run t ~policy:Sched.Fifo (fun () ->
            ignore
              (Sched.spawn ~name:"wl" (fun () ->
                   let g = Sharddb.begin_gtxn t in
                   Sharddb.insert t g ~value:a ~rid:(rid 1);
                   Sharddb.insert t g ~value:b ~rid:(rid 2);
                   Sharddb.commit t g)))
      in
      let saw_violation =
        List.exists (fun (_, _, e) -> match e with Discipline.Violation (Discipline.R10, _) -> true | _ -> false)
          r.Sched.exns
      in
      Alcotest.(check bool) "R10 violation raised in the committing fiber" true saw_violation;
      Alcotest.(check bool) "violation counted" true (Discipline.violations () >= 1);
      Sharddb.close t)

let () =
  Alcotest.run "shard"
    [
      ( "codec",
        [
          Alcotest.test_case "prepare meta x1000 (seeded)" `Quick (seeded_1000 qcheck_prepare_meta);
          Alcotest.test_case "decision x1000 (seeded)" `Quick (seeded_1000 qcheck_decision);
          Alcotest.test_case "end x1000 (seeded)" `Quick (seeded_1000 qcheck_end);
          Alcotest.test_case "prepare meta truncation x1000 (seeded)" `Quick
            (seeded_1000 qcheck_prepare_meta_truncation);
          Alcotest.test_case "decision truncation x1000 (seeded)" `Quick
            (seeded_1000 qcheck_decision_truncation);
          Alcotest.test_case "end truncation x1000 (seeded)" `Quick
            (seeded_1000 qcheck_end_truncation);
        ] );
      ( "2pc",
        [
          Alcotest.test_case "cross-shard commit + decision scan" `Quick test_cross_shard_commit;
          Alcotest.test_case "presumed abort after crash" `Quick test_presumed_abort_after_crash;
          Alcotest.test_case "early-decide fault caught by R10" `Quick test_early_decide_caught;
        ] );
    ]
