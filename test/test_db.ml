(* Table layer: records + multiple indexes, data-only locking wiring,
   update re-keying, crash recovery of tables, record-manager corner
   cases. *)

open Aries_util
module Lockmgr = Aries_lock.Lockmgr
module Txnmgr = Aries_txn.Txnmgr
module Btree = Aries_btree.Btree
module Db = Aries_db.Db
module Table = Aries_db.Table
module Recmgr = Aries_db.Recmgr
module Sched = Aries_sched.Sched

let specs =
  [
    { Table.sp_name = "pk"; sp_unique = true; sp_key = (fun row -> row.(0)) };
    { Table.sp_name = "city"; sp_unique = false; sp_key = (fun row -> row.(1)) };
  ]

let setup ?(page_size = 512) ?segment_size () =
  let db = Db.create ~page_size ?segment_size () in
  let tbl = Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.create db txn ~id:1 specs)) in
  (db, tbl)

let row name city balance = [| name; city; balance |]

let test_insert_fetch () =
  let db, tbl = setup () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          ignore (Table.insert tbl txn (row "alice" "sf" "100"));
          ignore (Table.insert tbl txn (row "bob" "nyc" "200"))));
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          match Table.fetch tbl txn ~index:"pk" "alice" with
          | Some (_, r) ->
              Alcotest.(check string) "city" "sf" r.(1);
              Alcotest.(check string) "balance" "100" r.(2)
          | None -> Alcotest.fail "alice missing"));
  Alcotest.(check int) "two records" 2 (Table.count tbl)

let test_secondary_index_scan () =
  let db, tbl = setup () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 29 do
            ignore
              (Table.insert tbl txn
                 (row (Printf.sprintf "user%02d" i) (if i mod 3 = 0 then "sf" else "la") "0"))
          done));
  let sf =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Table.scan tbl txn ~index:"city" "sf" ~stop:("sf", `Le) ()))
  in
  Alcotest.(check int) "10 in sf" 10 (List.length sf)

let test_delete_removes_everywhere () =
  let db, tbl = setup () in
  let rid =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Table.insert tbl txn (row "carol" "sf" "1")))
  in
  Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.delete tbl txn rid));
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          Alcotest.(check bool) "pk entry gone" true (Table.fetch tbl txn ~index:"pk" "carol" = None)));
  Alcotest.(check int) "record gone" 0 (Table.count tbl);
  List.iter (fun (_, bt) -> Btree.check_invariants bt) (Table.indexes tbl)

let test_update_rekeys_changed_only () =
  let db, tbl = setup () in
  let rid =
    Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.insert tbl txn (row "dan" "sf" "5")))
  in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn -> Table.update tbl txn rid (row "dan" "nyc" "6")));
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          (match Table.fetch tbl txn ~index:"pk" "dan" with
          | Some (_, r) -> Alcotest.(check string) "new city" "nyc" r.(1)
          | None -> Alcotest.fail "dan missing");
          let in_sf = Table.scan tbl txn ~index:"city" "sf" ~stop:("sf", `Le) () in
          Alcotest.(check int) "old city entry gone" 0 (List.length in_sf)))

let test_pk_uniqueness () =
  let db, tbl = setup () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn -> ignore (Table.insert tbl txn (row "eve" "sf" "1"))));
  Db.run_exn db (fun () ->
      let txn = Txnmgr.begin_txn db.Db.mgr in
      (match Table.insert tbl txn (row "eve" "la" "2") with
      | _ -> Alcotest.fail "expected Unique_violation"
      | exception Btree.Unique_violation _ -> ());
      Txnmgr.rollback db.Db.mgr txn);
  Alcotest.(check int) "only one eve" 1 (Table.count tbl)

let test_rollback_whole_row () =
  let db, tbl = setup () in
  Db.run_exn db (fun () ->
      let txn = Txnmgr.begin_txn db.Db.mgr in
      ignore (Table.insert tbl txn (row "frank" "sf" "1"));
      Txnmgr.rollback db.Db.mgr txn);
  Alcotest.(check int) "no record" 0 (Table.count tbl);
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          Alcotest.(check bool) "no index entry" true (Table.fetch tbl txn ~index:"pk" "frank" = None)))

let test_table_crash_recovery () =
  let db, tbl = setup () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 49 do
            ignore (Table.insert tbl txn (row (Printf.sprintf "user%02d" i) "sf" "0"))
          done));
  (* plus an uncommitted transaction caught by the crash *)
  ignore
    (Db.run db (fun () ->
         let txn = Txnmgr.begin_txn db.Db.mgr in
         for i = 50 to 69 do
           ignore (Table.insert tbl txn (row (Printf.sprintf "user%02d" i) "la" "0"))
         done;
         Aries_wal.Logmgr.flush db.Db.wal));
  let db' = Db.crash db in
  ignore (Db.run_exn db' (fun () -> Db.restart db'));
  let tbl' = Table.open_existing db' ~id:1 specs in
  Alcotest.(check int) "committed rows recovered" 50 (Table.count tbl');
  List.iter (fun (_, bt) -> Btree.check_invariants bt) (Table.indexes tbl');
  Db.run_exn db' (fun () ->
      Db.with_txn db' (fun txn ->
          Alcotest.(check bool) "committed row readable" true
            (Table.fetch tbl' txn ~index:"pk" "user00" <> None);
          Alcotest.(check bool) "uncommitted row gone" true
            (Table.fetch tbl' txn ~index:"pk" "user55" = None)))

let test_data_only_locking_counts () =
  (* data-only: fetch through the index takes NO extra record lock *)
  let db, tbl = setup () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn -> ignore (Table.insert tbl txn (row "gina" "sf" "0"))));
  let s = Stats.create () in
  Db.run_exn db (fun () ->
      Stats.with_sink s (fun () ->
          Db.with_txn db (fun txn -> ignore (Table.fetch tbl txn ~index:"pk" "gina"))));
  (* IS table lock + S key(=record) lock = 2 requests total *)
  Alcotest.(check int) "two lock requests for a data-only fetch" 2
    (Stats.get s Stats.lock_requests)

let test_slot_reuse_blocked_by_uncommitted_delete () =
  let db, tbl = setup () in
  let rid1 =
    Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.insert tbl txn (row "henry" "sf" "0")))
  in
  (* delete in a txn that stays open, insert from another txn: must use a
     new slot because the old one's lock is held *)
  let rid2 = ref Ids.nil_rid in
  ignore
    (Db.run db (fun () ->
         ignore
           (Sched.spawn (fun () ->
                let t1 = Txnmgr.begin_txn db.Db.mgr in
                Table.delete tbl t1 rid1;
                Sched.yield ();
                Sched.yield ();
                Txnmgr.commit db.Db.mgr t1));
         ignore
           (Sched.spawn (fun () ->
                Sched.yield ();
                let t2 = Txnmgr.begin_txn db.Db.mgr in
                rid2 := Table.insert tbl t2 (row "iris" "sf" "0");
                Txnmgr.commit db.Db.mgr t2))));
  Alcotest.(check bool) "different slot while delete uncommitted" true (!rid2 <> rid1);
  Alcotest.(check int) "one live record" 1 (Table.count tbl)

let test_read_direct () =
  let db, tbl = setup () in
  let rid =
    Db.run_exn db (fun () -> Db.with_txn db (fun txn -> Table.insert tbl txn (row "judy" "sf" "9")))
  in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          match Table.read tbl txn rid with
          | Some r -> Alcotest.(check string) "name" "judy" r.(0)
          | None -> Alcotest.fail "missing"));
  (* direct read takes IS table + S record locks *)
  ()

let test_large_records_span_pages () =
  let db, tbl = setup ~page_size:512 () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 19 do
            ignore
              (Table.insert tbl txn (row (Printf.sprintf "user%02d" i) "sf" (String.make 100 'x')))
          done));
  Alcotest.(check bool) "heap grew beyond one page" true
    (List.length (Recmgr.page_ids (Table.heap tbl)) > 1);
  Alcotest.(check int) "all present" 20 (Table.count tbl)

(* ---------- snapshot persistence ---------- *)

let test_save_load_roundtrip () =
  let db, tbl = setup () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 39 do
            ignore (Table.insert tbl txn (row (Printf.sprintf "user%02d" i) "sf" "1"))
          done));
  let path = Filename.temp_file "ariesim" ".adb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* save stable state; the pool is NOT flushed, so load+restart must
         redo everything from the log *)
      Db.save db path;
      let db' = Db.load path in
      ignore (Db.run_exn db' (fun () -> Db.restart db'));
      let tbl' = Table.open_existing db' ~id:1 specs in
      Alcotest.(check int) "all rows back via redo" 40 (Table.count tbl');
      List.iter (fun (_, bt) -> Btree.check_invariants bt) (Table.indexes tbl'));
  ()

let test_save_excludes_volatile_tail () =
  let db, tbl = setup () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn -> ignore (Table.insert tbl txn (row "keep" "sf" "1"))));
  (* an uncommitted txn with an UNFLUSHED tail: its records must not be in
     the snapshot at all *)
  ignore
    (Db.run db (fun () ->
         let t = Txnmgr.begin_txn db.Db.mgr in
         ignore (Table.insert tbl t (row "ghost" "sf" "1"))));
  let path = Filename.temp_file "ariesim" ".adb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Db.save db path;
      let db' = Db.load path in
      let report = Db.run_exn db' (fun () -> Db.restart db') in
      Alcotest.(check int) "no losers: the tail never became stable" 0
        (List.length report.Aries_recovery.Restart.rp_losers);
      let tbl' = Table.open_existing db' ~id:1 specs in
      Alcotest.(check int) "only the committed row" 1 (Table.count tbl'));
  ()

let test_save_load_with_losers () =
  let db, tbl = setup () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 19 do
            ignore (Table.insert tbl txn (row (Printf.sprintf "user%02d" i) "sf" "1"))
          done));
  (* a loser in flight at snapshot time, with its records FLUSHED so they
     are part of the stable prefix the snapshot captures: load + restart
     must report it as a loser and roll it back *)
  ignore
    (Db.run db (fun () ->
         let t = Txnmgr.begin_txn db.Db.mgr in
         for i = 0 to 9 do
           ignore (Table.insert tbl t (row (Printf.sprintf "loser%02d" i) "la" "1"))
         done;
         Aries_wal.Logmgr.flush db.Db.wal));
  let path = Filename.temp_file "ariesim" ".adb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Db.save db path;
      let db' = Db.load path in
      let report = Db.run_exn db' (fun () -> Db.restart db') in
      Alcotest.(check int) "one loser rolled back by restart" 1
        (List.length report.Aries_recovery.Restart.rp_losers);
      let tbl' = Table.open_existing db' ~id:1 specs in
      Alcotest.(check int) "committed rows only" 20 (Table.count tbl');
      Db.run_exn db' (fun () ->
          Db.with_txn db' (fun txn ->
              Alcotest.(check bool) "loser row gone" true
                (Table.fetch tbl' txn ~index:"pk" "loser05" = None);
              Alcotest.(check bool) "committed row present" true
                (Table.fetch tbl' txn ~index:"pk" "user19" <> None)));
      List.iter (fun (_, bt) -> Btree.check_invariants bt) (Table.indexes tbl'));
  ()

let test_load_rejects_garbage () =
  let path = Filename.temp_file "ariesim" ".bad" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a snapshot";
      close_out oc;
      Alcotest.(check bool) "rejected" true
        (match Db.load path with
        | _ -> false
        (* unframeable bytes surface as a typed storage error, never a bare
           parser exception (PR 5) *)
        | exception
            ( Invalid_argument _
            | Aries_util.Storage_error.Error { cause = Aries_util.Storage_error.Decode; _ } )
          ->
            true))

let test_oversized_record_rejected () =
  let db, tbl = setup ~page_size:512 () in
  Db.run_exn db (fun () ->
      let txn = Txnmgr.begin_txn db.Db.mgr in
      (match Table.insert tbl txn (row (String.make 600 'k') "sf" "1") with
      | _ -> Alcotest.fail "expected rejection"
      | exception Invalid_argument _ -> ());
      Txnmgr.rollback db.Db.mgr txn);
  Alcotest.(check int) "nothing stored" 0 (Table.count tbl)

let test_trim_log () =
  (* small segments: reclamation is whole-segment, and the workload must
     seal several below the safety point *)
  let db, tbl = setup ~segment_size:512 () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 59 do
            ignore (Table.insert tbl txn (row (Printf.sprintf "user%02d" i) "sf" "1"))
          done));
  Aries_buffer.Bufpool.flush_all db.Db.pool;
  Db.checkpoint db;
  let freed = Db.trim_log db in
  Alcotest.(check bool) "bytes reclaimed" true (freed > 0);
  (* more work, then a crash: restart must succeed from the trimmed log *)
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn -> ignore (Table.insert tbl txn (row "zafter" "sf" "1"))));
  let db' = Db.crash db in
  ignore (Db.run_exn db' (fun () -> Db.restart db'));
  let tbl' = Table.open_existing db' ~id:1 specs in
  Alcotest.(check int) "all rows intact after trim+crash" 61 (Table.count tbl');
  List.iter (fun (_, bt) -> Btree.check_invariants bt) (Table.indexes tbl')

let test_trim_blocked_by_active_txn () =
  let db, tbl = setup () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn -> ignore (Table.insert tbl txn (row "base" "sf" "1"))));
  Aries_buffer.Bufpool.flush_all db.Db.pool;
  (* an active txn whose first record predates the checkpoint *)
  ignore
    (Db.run db (fun () ->
         let t = Txnmgr.begin_txn db.Db.mgr in
         ignore (Table.insert tbl t (row "inflight" "sf" "1"));
         Db.checkpoint db;
         let before = Aries_wal.Logmgr.start_lsn db.Db.wal in
         ignore (Db.trim_log db);
         (* nothing below the in-flight txn's first record may go *)
         Alcotest.(check bool) "horizon respects the active txn" true
           (Aries_wal.Lsn.( <= ) (Aries_wal.Logmgr.start_lsn db.Db.wal) t.Txnmgr.firsts.(0));
         ignore before;
         Txnmgr.rollback db.Db.mgr t))

let test_trim_returns_zero_for_restored_txn () =
  let db, tbl = setup ~segment_size:256 () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn -> ignore (Table.insert tbl txn (row "base" "sf" "1"))));
  (* prepare an in-doubt txn, then crash: restart restores it with unknown
     extent (nil first_lsn) — a transaction of unknown extent must block
     trimming entirely, so trim_log returns exactly 0 *)
  ignore
    (Db.run db (fun () ->
         let t = Txnmgr.begin_txn db.Db.mgr in
         ignore (Table.insert tbl t (row "indoubt" "sf" "1"));
         Txnmgr.prepare db.Db.mgr t));
  let db' = Db.crash db in
  let report = Db.run_exn db' (fun () -> Db.restart db') in
  Alcotest.(check int) "one in-doubt txn restored" 1
    (List.length report.Aries_recovery.Restart.rp_indoubt);
  (* analysis recovered the in-doubt txn's first LSN (from the scan or the
     checkpoint body), so the safety point is pinned at it, not blocked *)
  let t' =
    match Txnmgr.active_txns db'.Db.mgr with
    | [ t ] -> t
    | _ -> Alcotest.fail "expected exactly the restored txn"
  in
  Alcotest.(check bool) "restored with known extent" true
    (not (Aries_wal.Lsn.is_nil t'.Txnmgr.firsts.(0)));
  Aries_buffer.Bufpool.flush_all db'.Db.pool;
  Db.checkpoint db';
  ignore (Db.trim_log db');
  Alcotest.(check bool) "horizon respects the in-doubt txn" true
    (Aries_wal.Lsn.( <= ) (Aries_wal.Logmgr.start_lsn db'.Db.wal) t'.Txnmgr.firsts.(0));
  (* a transaction of truly unknown extent — as a pre-first_lsn checkpoint
     body would restore — must block trimming entirely *)
  let ghost =
    Txnmgr.restore_txn db'.Db.mgr ~id:9999 ~state:Txnmgr.Prepared
      ~lasts:(Array.copy t'.Txnmgr.lasts) ~undo_nxts:(Array.copy t'.Txnmgr.lasts) ()
  in
  Alcotest.(check bool) "unknown extent blocks: no safety point" true
    (Db.safety_point db' = None);
  Alcotest.(check int) "trim blocked by txn of unknown extent: 0 bytes" 0 (Db.trim_log db');
  (* resolving both unblocks the horizon *)
  Db.run_exn db' (fun () ->
      Txnmgr.commit_prepared db'.Db.mgr ghost;
      Txnmgr.commit_prepared db'.Db.mgr t');
  Aries_buffer.Bufpool.flush_all db'.Db.pool;
  Db.checkpoint db';
  Alcotest.(check bool) "trim frees bytes once resolved" true (Db.trim_log db' > 0)

let () =
  Alcotest.run "db"
    [
      ( "table",
        [
          Alcotest.test_case "insert+fetch" `Quick test_insert_fetch;
          Alcotest.test_case "secondary index scan" `Quick test_secondary_index_scan;
          Alcotest.test_case "delete everywhere" `Quick test_delete_removes_everywhere;
          Alcotest.test_case "update re-keys" `Quick test_update_rekeys_changed_only;
          Alcotest.test_case "pk uniqueness" `Quick test_pk_uniqueness;
          Alcotest.test_case "rollback whole row" `Quick test_rollback_whole_row;
          Alcotest.test_case "crash recovery" `Quick test_table_crash_recovery;
          Alcotest.test_case "read direct" `Quick test_read_direct;
          Alcotest.test_case "records span pages" `Quick test_large_records_span_pages;
        ] );
      ( "locking",
        [
          Alcotest.test_case "data-only lock counts" `Quick test_data_only_locking_counts;
          Alcotest.test_case "slot reuse blocked" `Quick test_slot_reuse_blocked_by_uncommitted_delete;
        ] );
      ( "log-space",
        [
          Alcotest.test_case "trim + crash recovery" `Quick test_trim_log;
          Alcotest.test_case "trim blocked by active txn" `Quick test_trim_blocked_by_active_txn;
          Alcotest.test_case "trim returns 0 for restored txn" `Quick
            test_trim_returns_zero_for_restored_txn;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "volatile tail excluded" `Quick test_save_excludes_volatile_tail;
          Alcotest.test_case "losers in the snapshot" `Quick test_save_load_with_losers;
          Alcotest.test_case "garbage rejected" `Quick test_load_rejects_garbage;
          Alcotest.test_case "oversized record rejected" `Quick test_oversized_record_rejected;
        ] );
    ]
