(* Instant restart: the Db opens for new transactions right after Analysis.
   Redo happens per page on demand (or through the background drain), undo
   is lock-driven and preemptible, and crashing while the drain is still
   running is just another crash. The suite pins each of those behaviours
   deterministically; the randomized recovery-during-recovery sweep lives
   in test_sim.ml. *)

open Aries_util
module Logmgr = Aries_wal.Logmgr
module Btree = Aries_btree.Btree
module Txnmgr = Aries_txn.Txnmgr
module Lockcodec = Aries_txn.Lockcodec
module Lockmgr = Aries_lock.Lockmgr
module Restart = Aries_recovery.Restart
module Bufpool = Aries_buffer.Bufpool
module Db = Aries_db.Db
module Trace = Aries_trace.Trace
module Discipline = Aries_trace.Discipline

let rid i = { Ids.rid_page = 1000 + (i / 100); rid_slot = i mod 100 }

let v i = Printf.sprintf "key%05d" i

let fresh ?(page_size = 384) () =
  let db = Db.create ~page_size () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"t" ~unique:true))
  in
  (db, tree)

let reopen db = Btree.open_existing db.Db.benv

(* [lo..hi] committed in one transaction *)
let commit_range db tree lo hi =
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = lo to hi do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done))

(* a loser: begin, do [work], flush the log tail, end the fiber without
   committing — the transaction is in flight at the crash *)
let in_flight db work =
  ignore
    (Db.run db (fun () ->
         let txn = Txnmgr.begin_txn db.Db.mgr in
         work txn;
         Logmgr.flush db.Db.wal))

(* start the instant engine directly (no restartd daemon), so the test can
   interact with a half-recovered Db *)
let start_engine db' = Restart.start ~archive:db'.Db.archive db'.Db.mgr db'.Db.pool

let stat name = Stats.get (Stats.current ()) name

(* ---------- serving transactions before redo completes ---------- *)

let test_commit_before_redo_complete () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  commit_range db tree 0 199;
  (* no page ever flushed: every page must come back through redo *)
  let db' = Db.crash db in
  Db.run_exn db' (fun () ->
      let en = start_engine db' in
      Alcotest.(check bool) "engine not finished at open" false (Restart.finished en);
      let pend0 = List.length (Restart.pending_redo en) in
      Alcotest.(check bool) "several pages awaiting redo" true (pend0 > 3);
      (* a brand-new transaction commits while most of the tree is still
         un-redone: only the pages its traversal fixes are replayed *)
      let tree' = reopen db' ix in
      Db.with_txn db' (fun txn -> Btree.insert tree' txn ~value:(v 500) ~rid:(rid 500));
      Alcotest.(check bool) "committed before redo completed" true
        (Restart.pending_redo en <> [] && not (Restart.finished en));
      Restart.drain en;
      Alcotest.(check bool) "drain finishes the engine" true (Restart.finished en));
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "old and new commits all present" 201 (List.length (Btree.to_list tree'))

let test_ondemand_redo_exact_page () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  commit_range db tree 0 199;
  let db' = Db.crash db in
  Db.run_exn db' (fun () ->
      let en = start_engine db' in
      let pending = Restart.pending_redo en in
      let pid = List.hd (List.rev pending) in
      let od0 = stat Stats.instant_ondemand_redos in
      let p = Bufpool.fix db'.Db.pool pid in
      Bufpool.unfix db'.Db.pool p;
      Alcotest.(check (list int)) "exactly that page left the needs-redo set"
        (List.filter (fun q -> q <> pid) pending)
        (Restart.pending_redo en);
      Alcotest.(check int) "one on-demand redo" 1 (stat Stats.instant_ondemand_redos - od0);
      Restart.drain en);
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "contents intact" 200 (List.length (Btree.to_list tree'))

(* ---------- lock-driven, preemptible undo ---------- *)

let test_loser_lock_preempts_undo () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  commit_range db tree 0 19;
  in_flight db (fun txn ->
      for i = 100 to 104 do
        Btree.insert tree txn ~value:(v i) ~rid:(rid i)
      done);
  let db' = Db.crash db in
  Db.run_exn db' (fun () ->
      let en = start_engine db' in
      let lid =
        match Restart.losers_remaining en with
        | [ id ] -> id
        | l -> Alcotest.failf "expected one live loser, got %d" (List.length l)
      in
      (* the loser's uncommitted keys are fenced by reacquired X locks *)
      let held = Lockmgr.held_locks db'.Db.locks ~txn:lid in
      let name, _ =
        try List.find (fun (_, m) -> m = Lockmgr.X) held
        with Not_found -> Alcotest.fail "loser holds no X lock"
      in
      Alcotest.(check bool) "the loser is among the holders" true
        (List.exists (fun (id, _) -> id = lid) (Lockmgr.holders db'.Db.locks name));
      (* a new transaction asking for that name preempts exactly that
         loser's undo, then gets the lock *)
      let pre0 = stat Stats.instant_preemptions in
      Db.with_txn db' (fun txn -> Txnmgr.lock db'.Db.mgr txn name Lockmgr.X Lockmgr.Commit);
      Alcotest.(check int) "one preemption" 1 (stat Stats.instant_preemptions - pre0);
      Alcotest.(check (list int)) "the loser is fully undone" [] (Restart.losers_remaining en);
      Restart.drain en);
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "loser's inserts are gone" 20 (List.length (Btree.to_list tree'))

(* ---------- recovery during recovery ---------- *)

let test_crash_mid_drain_reenters_instant () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  commit_range db tree 0 149;
  in_flight db (fun txn ->
      for i = 200 to 229 do
        Btree.insert tree txn ~value:(v i) ~rid:(rid i)
      done);
  let db' = Db.crash db in
  let cfg = { Restart.dr_every_steps = 1; dr_redo_pages = 2; dr_undo_txns = 0 } in
  Db.run_exn db' (fun () ->
      let en = start_engine db' in
      Restart.drain_step ~cfg en;
      Restart.drain_step ~cfg en;
      Alcotest.(check bool) "drain still in flight at the second crash" false
        (Restart.finished en));
  (* crash while the drain is still running, and recover with the instant
     engine again — just another crash *)
  let db'' = Db.crash db' in
  ignore (Db.run_exn db'' (fun () -> Db.restart ~instant:true db''));
  let en = Option.get (Db.restart_engine db'') in
  Alcotest.(check bool) "second instant restart completes" true (Restart.finished en);
  Alcotest.(check int) "the loser is found again" 1
    (List.length (Restart.report en).Restart.rp_losers);
  let tree' = reopen db'' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "committed work only" 150 (List.length (Btree.to_list tree'))

let test_mid_drain_checkpoint_sound () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  commit_range db tree 0 149;
  in_flight db (fun txn ->
      for i = 200 to 224 do
        Btree.insert tree txn ~value:(v i) ~rid:(rid i)
      done);
  let db' = Db.crash db in
  let cfg = { Restart.dr_every_steps = 1; dr_redo_pages = 2; dr_undo_txns = 0 } in
  Db.run_exn db' (fun () ->
      let en = start_engine db' in
      (* every needs-redo page is checkpoint-visible through the Bufpool
         overlay, so a fuzzy checkpoint taken mid-drain still covers the
         un-replayed history *)
      let dpt = List.map fst (Bufpool.dirty_page_table db'.Db.pool) in
      List.iter
        (fun pid ->
          Alcotest.(check bool)
            (Printf.sprintf "pending page %d visible in the DPT" pid)
            true (List.mem pid dpt))
        (Restart.pending_redo en);
      Restart.drain_step ~cfg en;
      Db.checkpoint db';
      Alcotest.(check bool) "checkpoint taken mid-drain" false (Restart.finished en));
  (* crash right after that mid-drain checkpoint; a classic restart must
     recover from it alone *)
  let db'' = Db.crash db' in
  ignore (Db.run_exn db'' (fun () -> Db.restart db''));
  let tree' = reopen db'' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "classic restart from mid-drain checkpoint" 150
    (List.length (Btree.to_list tree'))

(* ---------- equivalence with the classic three passes ---------- *)

let test_instant_equiv_classic () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  commit_range db tree 0 119;
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 9 do
            Btree.delete tree txn ~value:(v i) ~rid:(rid i)
          done));
  (* loser 1: inserts only — all of its locks are derivable from the log,
     so the instant engine may leave it lazy *)
  in_flight db (fun txn ->
      for i = 200 to 214 do
        Btree.insert tree txn ~value:(v i) ~rid:(rid i)
      done);
  (* loser 2: deletes a committed key — its commit-duration next-key lock
     is not derivable, so the instant engine must undo it eagerly *)
  in_flight db (fun txn ->
      Btree.delete tree txn ~value:(v 15) ~rid:(rid 15);
      Btree.insert tree txn ~value:(v 300) ~rid:(rid 300));
  let file = Filename.temp_file "aries_instant_equiv" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Db.save db file;
      let db_classic = Db.load file and db_instant = Db.load file in
      let r_classic = Db.run_exn db_classic (fun () -> Db.restart db_classic) in
      ignore (Db.run_exn db_instant (fun () -> Db.restart ~instant:true db_instant));
      let en = Option.get (Db.restart_engine db_instant) in
      Alcotest.(check bool) "instant engine drained" true (Restart.finished en);
      let r_instant = Restart.report en in
      let sorted l = List.sort compare l in
      Alcotest.(check (list int)) "same losers"
        (sorted r_classic.Restart.rp_losers)
        (sorted r_instant.Restart.rp_losers);
      Alcotest.(check (list int)) "same in-doubt set"
        (sorted r_classic.Restart.rp_indoubt)
        (sorted r_instant.Restart.rp_indoubt);
      Alcotest.(check int) "same redos applied" r_classic.Restart.rp_redos_applied
        r_instant.Restart.rp_redos_applied;
      Alcotest.(check int) "same loser records undone" r_classic.Restart.rp_undo_records
        r_instant.Restart.rp_undo_records;
      let tc = reopen db_classic ix and ti = reopen db_instant ix in
      Btree.check_invariants tc;
      Btree.check_invariants ti;
      let lc = Btree.to_list tc and li = Btree.to_list ti in
      Alcotest.(check int) "expected survivors" 110 (List.length lc);
      Alcotest.(check bool) "identical contents" true (lc = li))

(* ---------- report counters aggregate across passes ---------- *)

let test_report_aggregates_across_passes () =
  let db, tree = fresh () in
  commit_range db tree 0 149;
  in_flight db (fun txn ->
      for i = 200 to 229 do
        Btree.insert tree txn ~value:(v i) ~rid:(rid i)
      done);
  let db' = Db.crash db in
  Db.run_exn db' (fun () ->
      let en = start_engine db' in
      let r0 = Restart.report en in
      (* an on-demand redo is visible in the very next report *)
      let pid = List.hd (Restart.pending_redo en) in
      let p = Bufpool.fix db'.Db.pool pid in
      Bufpool.unfix db'.Db.pool p;
      let r1 = Restart.report en in
      Alcotest.(check bool) "on-demand redo counted" true
        (r1.Restart.rp_redos_applied > r0.Restart.rp_redos_applied);
      (* tiny drain rounds: every counter is monotone across passes, never
         reset per round *)
      let cfg = { Restart.dr_every_steps = 1; dr_redo_pages = 1; dr_undo_txns = 1 } in
      let prev = ref r1 in
      let rounds = ref 0 in
      while not (Restart.finished en) do
        incr rounds;
        if !rounds > 10_000 then Alcotest.fail "drain did not converge";
        Restart.drain_step ~cfg en;
        let r = Restart.report en in
        Alcotest.(check bool) "redos_applied monotone" true
          (r.Restart.rp_redos_applied >= !prev.Restart.rp_redos_applied);
        Alcotest.(check bool) "redo scan monotone" true
          (r.Restart.rp_records_redo_scanned >= !prev.Restart.rp_records_redo_scanned);
        Alcotest.(check bool) "undo_records monotone" true
          (r.Restart.rp_undo_records >= !prev.Restart.rp_undo_records);
        prev := r
      done;
      (* the totals are stable once finished *)
      let rf = Restart.report en in
      Alcotest.(check bool) "report stable after finish" true (Restart.report en = rf);
      Alcotest.(check bool) "undo work accounted" true (rf.Restart.rp_undo_records > 0);
      Alcotest.(check int) "one loser in the final report" 1
        (List.length rf.Restart.rp_losers))

(* ---------- boundaries ---------- *)

let test_clean_log_nothing_to_drain () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  commit_range db tree 0 59;
  Bufpool.flush_all db.Db.pool;
  Db.checkpoint db;
  let db' = Db.crash db in
  Db.run_exn db' (fun () ->
      let en = start_engine db' in
      Alcotest.(check (list int)) "nothing needs redo" [] (Restart.pending_redo en);
      Alcotest.(check (list int)) "no losers" [] (Restart.losers_remaining en);
      Restart.drain en;
      Alcotest.(check bool) "finished" true (Restart.finished en);
      Alcotest.(check int) "no redo work at all" 0
        (Restart.report en).Restart.rp_redos_applied);
  let tree' = reopen db' ix in
  Alcotest.(check int) "contents intact" 60 (List.length (Btree.to_list tree'))

let test_daemon_drains_under_scheduler () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  commit_range db tree 0 149;
  in_flight db (fun txn ->
      for i = 200 to 219 do
        Btree.insert tree txn ~value:(v i) ~rid:(rid i)
      done);
  let db' = Db.crash db in
  (* the Db-level entry point: restartd drains in the background and the
     post-run state is fully quiesced *)
  ignore (Db.run_exn db' (fun () -> Db.restart ~instant:true db'));
  let en = Option.get (Db.restart_engine db') in
  Alcotest.(check bool) "daemon finished the drain" true (Restart.finished en);
  Alcotest.(check (list string)) "no leaks after instant restart" [] (Db.leak_report db');
  let tree' = reopen db' ix in
  Btree.check_invariants tree';
  Alcotest.(check int) "committed work only" 150 (List.length (Btree.to_list tree'))

let test_indoubt_under_instant () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  ignore
    (Db.run db (fun () ->
         let t = Txnmgr.begin_txn db.Db.mgr in
         Txnmgr.lock db.Db.mgr t (Lockmgr.Rid (rid 1)) Lockmgr.X Lockmgr.Commit;
         Btree.insert tree t ~value:(v 1) ~rid:(rid 1);
         Txnmgr.prepare db.Db.mgr t));
  let db' = Db.crash db in
  ignore (Db.run_exn db' (fun () -> Db.restart ~instant:true db'));
  let en = Option.get (Db.restart_engine db') in
  let report = Restart.report en in
  Alcotest.(check int) "one in-doubt txn" 1 (List.length report.Restart.rp_indoubt);
  let id = List.hd report.Restart.rp_indoubt in
  Alcotest.(check bool) "in-doubt txn is not a loser" true
    (not (List.mem id report.Restart.rp_losers));
  Alcotest.(check bool) "its locks are held across the drain" true
    (Lockmgr.held_count db'.Db.locks ~txn:id > 0);
  let txn = Option.get (Txnmgr.find db'.Db.mgr id) in
  Db.run_exn db' (fun () -> Txnmgr.commit_prepared db'.Db.mgr txn);
  let tree' = reopen db' ix in
  Alcotest.(check int) "coordinator's commit lands" 1 (List.length (Btree.to_list tree'))

(* ---------- the discipline rule has teeth ---------- *)

let test_skip_redo_fault_trips_r7 () =
  let db, tree = fresh () in
  commit_range db tree 0 49;
  (* flush, then dirty the pages again: at the crash they exist on disk but
     are stale, so the faulty fix below serves old content instead of
     failing outright *)
  Bufpool.flush_all db.Db.pool;
  commit_range db tree 50 99;
  let db' = Db.crash db in
  Trace.set_mode Trace.Check;
  Trace.reset ();
  Discipline.reset ();
  Crashpoint.enable_fault Crashpoint.fault_instant_skip_redo;
  Fun.protect
    ~finally:(fun () ->
      Crashpoint.clear_faults ();
      Trace.set_mode Trace.Off;
      Trace.reset ();
      Discipline.reset ())
    (fun () ->
      let tripped =
        try
          Db.run_exn db' (fun () ->
              let en = start_engine db' in
              let on_disk = Aries_page.Disk.pids db'.Db.disk in
              let pid =
                List.find (fun p -> List.mem p on_disk) (Restart.pending_redo en)
              in
              (* the faulty engine drops the page from its pending set
                 without repeating its history: the checker's needs-redo
                 table still lists it, so the fix is served stale *)
              let p = Bufpool.fix db'.Db.pool pid in
              Bufpool.unfix db'.Db.pool p);
          false
        with Discipline.Violation (Discipline.R7, _) -> true
      in
      Alcotest.(check bool) "R7 catches the skipped redo" true tripped;
      Alcotest.(check bool) "violation counted" true (Discipline.violations () > 0))

(* ---------- checkpoint lock-list codec ---------- *)

let lockcodec_roundtrip =
  (* 1000 seeded random lock lists through encode_list/decode_list *)
  let gen_name st =
    match Random.State.int st 6 with
    | 0 ->
        Lockmgr.Rid
          { Ids.rid_page = Random.State.int st 100_000; rid_slot = Random.State.int st 4096 }
    | 1 ->
        let len = Random.State.int st 24 in
        Lockmgr.Key_value
          ( Random.State.int st 1_000,
            String.init len (fun _ -> Char.chr (Random.State.int st 256)) )
    | 2 -> Lockmgr.Eof (Random.State.int st 1_000)
    | 3 -> Lockmgr.Table (Random.State.int st 1_000)
    | 4 -> Lockmgr.Page_lock (Random.State.int st 1_000_000)
    | _ -> Lockmgr.Tree_lock (Random.State.int st 1_000)
  in
  let gen_mode st =
    match Random.State.int st 5 with
    | 0 -> Lockmgr.IS
    | 1 -> Lockmgr.IX
    | 2 -> Lockmgr.S
    | 3 -> Lockmgr.SIX
    | _ -> Lockmgr.X
  in
  fun () ->
    let st = Random.State.make [| 0xC0DEC; 6 |] in
    for case = 1 to 1000 do
      let n = Random.State.int st 41 in
      let locks = List.init n (fun _ -> (gen_name st, gen_mode st)) in
      let back = Lockcodec.decode_list (Lockcodec.encode_list locks) in
      if back <> locks then Alcotest.failf "roundtrip mismatch on case %d (%d locks)" case n
    done

let () =
  Alcotest.run "instant_restart"
    [
      ( "serve-during-recovery",
        [
          Alcotest.test_case "commit before redo completes" `Quick
            test_commit_before_redo_complete;
          Alcotest.test_case "on-demand redo hits exactly the fixed page" `Quick
            test_ondemand_redo_exact_page;
          Alcotest.test_case "loser lock preempts exactly that undo" `Quick
            test_loser_lock_preempts_undo;
        ] );
      ( "recovery-during-recovery",
        [
          Alcotest.test_case "crash mid-drain re-enters instant restart" `Quick
            test_crash_mid_drain_reenters_instant;
          Alcotest.test_case "mid-drain checkpoint is sound" `Quick
            test_mid_drain_checkpoint_sound;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "instant = classic on identical logs" `Quick
            test_instant_equiv_classic;
          Alcotest.test_case "report counters aggregate across passes" `Quick
            test_report_aggregates_across_passes;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "clean log: nothing to drain" `Quick test_clean_log_nothing_to_drain;
          Alcotest.test_case "restartd daemon drains under the scheduler" `Quick
            test_daemon_drains_under_scheduler;
          Alcotest.test_case "in-doubt txn under instant restart" `Quick
            test_indoubt_under_instant;
        ] );
      ( "discipline",
        [
          Alcotest.test_case "skip-redo fault trips R7" `Quick test_skip_redo_fault_trips_r7;
        ] );
      ( "codec",
        [ Alcotest.test_case "lock-list roundtrip x1000" `Quick lockcodec_roundtrip ] );
    ]
