(* Unit tests for the utility substrate: Vec, Rng, Bytebuf, Stats. *)

open Aries_util

(* ---------- Vec ---------- *)

let test_vec_push_pop () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v)

let test_vec_insert_remove () =
  let v = Vec.of_list [ 1; 2; 4; 5 ] in
  Vec.insert v 2 3;
  Alcotest.(check (list int)) "insert middle" [ 1; 2; 3; 4; 5 ] (Vec.to_list v);
  Alcotest.(check int) "remove" 3 (Vec.remove v 2);
  Alcotest.(check (list int)) "after remove" [ 1; 2; 4; 5 ] (Vec.to_list v);
  Vec.insert v 0 0;
  Vec.insert v (Vec.length v) 6;
  Alcotest.(check (list int)) "insert at both ends" [ 0; 1; 2; 4; 5; 6 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec: index 1 out of bounds [0,1)")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      let e : int Vec.t = Vec.create () in
      ignore (Vec.pop e))

let test_vec_binary_search () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] in
  let cmp x k = compare x k in
  Alcotest.(check bool) "found" true (Vec.binary_search ~compare:cmp v 30 = Ok 2);
  Alcotest.(check bool) "absent low" true (Vec.binary_search ~compare:cmp v 5 = Error 0);
  Alcotest.(check bool) "absent mid" true (Vec.binary_search ~compare:cmp v 25 = Error 2);
  Alcotest.(check bool) "absent high" true (Vec.binary_search ~compare:cmp v 99 = Error 4)

let vec_model_prop ops =
  (* Vec behaves like a list under push/insert/remove *)
  let v = Vec.create () in
  let model = ref [] in
  List.iter
    (fun (op, x) ->
      let n = List.length !model in
      match op mod 3 with
      | 0 ->
          Vec.push v x;
          model := !model @ [ x ]
      | 1 ->
          let i = if n = 0 then 0 else abs x mod (n + 1) in
          Vec.insert v i x;
          model :=
            List.filteri (fun j _ -> j < i) !model
            @ [ x ]
            @ List.filteri (fun j _ -> j >= i) !model
      | _ ->
          if n > 0 then begin
            let i = abs x mod n in
            ignore (Vec.remove v i);
            model := List.filteri (fun j _ -> j <> i) !model
          end)
    ops;
  Vec.to_list v = !model

let qcheck_vec =
  QCheck.Test.make ~name:"Vec matches list model" ~count:200
    QCheck.(list (pair small_int small_int))
    vec_model_prop

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "same elements" true (sorted = Array.init 50 Fun.id)

(* ---------- Bytebuf ---------- *)

let test_bytebuf_roundtrip () =
  let w = Bytebuf.W.create () in
  Bytebuf.W.u8 w 200;
  Bytebuf.W.u16 w 60000;
  Bytebuf.W.u32 w 4000000000;
  Bytebuf.W.i64 w (-123456789);
  Bytebuf.W.bool w true;
  Bytebuf.W.string w "hello\x00world";
  let r = Bytebuf.R.of_bytes (Bytebuf.W.contents w) in
  Alcotest.(check int) "u8" 200 (Bytebuf.R.u8 r);
  Alcotest.(check int) "u16" 60000 (Bytebuf.R.u16 r);
  Alcotest.(check int) "u32" 4000000000 (Bytebuf.R.u32 r);
  Alcotest.(check int) "i64" (-123456789) (Bytebuf.R.i64 r);
  Alcotest.(check bool) "bool" true (Bytebuf.R.bool r);
  Alcotest.(check string) "string" "hello\x00world" (Bytebuf.R.string r);
  Bytebuf.R.expect_end r

let test_bytebuf_truncation () =
  let w = Bytebuf.W.create () in
  Bytebuf.W.i64 w 1;
  let b = Bytebuf.W.contents w in
  let short = Bytes.sub b 0 4 in
  let r = Bytebuf.R.of_bytes short in
  Alcotest.(check bool) "corrupt raised" true
    (match Bytebuf.R.i64 r with _ -> false | exception Bytebuf.Corrupt _ -> true)

let test_bytebuf_trailing () =
  let w = Bytebuf.W.create () in
  Bytebuf.W.u8 w 1;
  Bytebuf.W.u8 w 2;
  let r = Bytebuf.R.of_bytes (Bytebuf.W.contents w) in
  ignore (Bytebuf.R.u8 r);
  Alcotest.(check bool) "trailing detected" true
    (match Bytebuf.R.expect_end r with () -> false | exception Bytebuf.Corrupt _ -> true)

let bytebuf_string_prop s =
  let w = Bytebuf.W.create () in
  Bytebuf.W.string w s;
  let r = Bytebuf.R.of_bytes (Bytebuf.W.contents w) in
  String.equal (Bytebuf.R.string r) s

let qcheck_bytebuf =
  QCheck.Test.make ~name:"Bytebuf string roundtrip (arbitrary bytes)" ~count:200 QCheck.string
    bytebuf_string_prop

(* ---------- Bytebuf arena writer (PR 9) ---------- *)

let test_writer_reset_reuse () =
  let w = Bytebuf.W.create ~size:32 () in
  Bytebuf.W.string w "first payload";
  let c1 = Bytebuf.W.contents w in
  let cap = Bytebuf.W.capacity w in
  Bytebuf.W.reset w;
  Alcotest.(check int) "reset clears length" 0 (Bytebuf.W.length w);
  Alcotest.(check int) "reset keeps arena" cap (Bytebuf.W.capacity w);
  Bytebuf.W.string w "first payload";
  Alcotest.(check bytes) "re-encode identical after reset" c1 (Bytebuf.W.contents w);
  Alcotest.(check int) "no regrowth for same payload" cap (Bytebuf.W.capacity w)

let test_writer_truncate () =
  let w = Bytebuf.W.create () in
  Bytebuf.W.raw_string w "0123456789";
  Bytebuf.W.truncate w 4;
  Alcotest.(check string) "truncate cuts in place" "0123" (Bytes.to_string (Bytebuf.W.contents w));
  Alcotest.check_raises "truncate out of range"
    (Invalid_argument "Bytebuf.W.truncate: out of range") (fun () -> Bytebuf.W.truncate w 5)

(* The arena writer must produce exactly the bytes the old [Buffer.t]-based
   writer did: compare against a hand-rolled Buffer reference encoder. *)
let test_writer_buffer_compat () =
  let w = Bytebuf.W.create ~size:16 () in
  Bytebuf.W.u8 w 0xA2;
  Bytebuf.W.u16 w 0xBEEF;
  Bytebuf.W.u32 w 0xDEADBEEF;
  Bytebuf.W.i64 w (-42);
  Bytebuf.W.bool w true;
  Bytebuf.W.string w "payload";
  Bytebuf.W.raw_string w "raw";
  let b = Buffer.create 16 in
  Buffer.add_char b (Char.chr 0xA2);
  Buffer.add_uint16_le b 0xBEEF;
  Buffer.add_int32_le b (Int32.of_int 0xDEADBEEF);
  Buffer.add_int64_le b (Int64.of_int (-42));
  Buffer.add_char b '\x01';
  Buffer.add_int32_le b (Int32.of_int (String.length "payload"));
  Buffer.add_string b "payload";
  Buffer.add_string b "raw";
  Alcotest.(check string) "arena writer = Buffer reference" (Buffer.contents b)
    (Bytes.to_string (Bytebuf.W.contents w))

let test_writer_append_with_crc () =
  let src = Bytebuf.W.create () in
  Bytebuf.W.raw_string src "hello, frame";
  let dst = Bytebuf.W.create () in
  Bytebuf.W.u32 dst (Bytebuf.W.length src);
  let crc = Bytebuf.W.append_with_crc dst src in
  Alcotest.(check int) "crc over appended region" (Crc.string "hello, frame") crc;
  Alcotest.(check int) "crc via W.crc agrees" (Bytebuf.W.crc ~off:4 dst) crc;
  let r = Bytebuf.R.of_string (Bytebuf.W.unsafe_view dst) in
  let n = Bytebuf.R.u32 r in
  Alcotest.(check int) "length prefix" 12 n

let test_reader_of_substring () =
  let s = "xxABCDyy" in
  let r = Bytebuf.R.of_substring s ~off:2 ~len:4 in
  Alcotest.(check int) "remaining" 4 (Bytebuf.R.remaining r);
  Alcotest.(check int) "u8 at slice start" (Char.code 'A') (Bytebuf.R.u8 r);
  ignore (Bytebuf.R.u8 r);
  ignore (Bytebuf.R.u8 r);
  ignore (Bytebuf.R.u8 r);
  Bytebuf.R.expect_end r;
  Alcotest.(check bool) "reads past lim raise Corrupt" true
    (match Bytebuf.R.u8 r with _ -> false | exception Bytebuf.Corrupt _ -> true);
  Alcotest.check_raises "slice out of range"
    (Invalid_argument "Bytebuf.R.of_substring: slice out of range") (fun () ->
      ignore (Bytebuf.R.of_substring s ~off:6 ~len:4))

(* ---------- Crc (PR 9: slice-by-16) ---------- *)

(* Known-answer tests: IEEE 802.3 CRC32 check values. *)
let test_crc_kat () =
  Alcotest.(check int) "check value" 0xCBF43926 (Crc.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc.string "");
  Alcotest.(check int) "single byte" 0xD202EF8D (Crc.string "\x00");
  Alcotest.(check int) "a" 0xE8B7BE43 (Crc.string "a");
  Alcotest.(check int) "quick brown fox" 0x414FA339
    (Crc.string "The quick brown fox jumps over the lazy dog")

(* Differential: the slice-by-16 [update] must agree with the byte-at-a-time
   reference on random payloads and random (offset, length) slices —
   including the unaligned head/tail the 8-byte inner loop must hand off
   correctly. *)
let crc_differential_prop (s, a, b) =
  let n = String.length s in
  let off = if n = 0 then 0 else a mod (n + 1) in
  let len = if n - off = 0 then 0 else b mod (n - off + 1) in
  Crc.update 0xFFFF (String.sub s off len) 0 len
  = Crc.update_bytewise 0xFFFF s off len

let qcheck_crc_differential =
  QCheck.Test.make ~name:"Crc slice-by-16 = bytewise reference (random slices)" ~count:1000
    QCheck.(triple string small_nat small_nat)
    crc_differential_prop

(* Incremental composition: feeding a buffer in two chunks equals feeding
   it whole — the dirty-slice update path depends on this. *)
let crc_incremental_prop (a, b) =
  Crc.update (Crc.update 0 a 0 (String.length a)) b 0 (String.length b) = Crc.string (a ^ b)

let qcheck_crc_incremental =
  QCheck.Test.make ~name:"Crc incremental update composes" ~count:500
    QCheck.(pair string string)
    crc_incremental_prop

(* [combine]: concatenating two independently finalized CRCs. *)
let crc_combine_prop (a, b) =
  Crc.combine (Crc.string a) (Crc.string b) (String.length b) = Crc.string (a ^ b)

let qcheck_crc_combine =
  QCheck.Test.make ~name:"Crc.combine concatenates finalized CRCs" ~count:500
    QCheck.(pair string string)
    crc_combine_prop

let test_crc_bytes_slice () =
  let b = Bytes.of_string "__123456789__" in
  Alcotest.(check int) "bytes slice" 0xCBF43926 (Crc.bytes ~off:2 ~len:9 b)

(* ---------- Stats ---------- *)

let test_stats_counting () =
  let s = Stats.create () in
  Stats.with_sink s (fun () ->
      Stats.incr "a";
      Stats.incr "a";
      Stats.add "b" 5);
  Alcotest.(check int) "a" 2 (Stats.get s "a");
  Alcotest.(check int) "b" 5 (Stats.get s "b");
  Alcotest.(check int) "absent" 0 (Stats.get s "c")

let test_stats_sink_restored () =
  let outer = Stats.current () in
  let s = Stats.create () in
  (try Stats.with_sink s (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "sink restored after exception" true (Stats.current () == outer)

let test_stats_diff () =
  let s = Stats.create () in
  Stats.with_sink s (fun () -> Stats.add "x" 10);
  let snap = Stats.copy s in
  Stats.with_sink s (fun () -> Stats.add "x" 3);
  let d = Stats.diff s snap in
  Alcotest.(check int) "diff" 3 (Stats.get d "x")

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "insert/remove" `Quick test_vec_insert_remove;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "binary search" `Quick test_vec_binary_search;
          QCheck_alcotest.to_alcotest qcheck_vec;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "bytebuf",
        [
          Alcotest.test_case "roundtrip" `Quick test_bytebuf_roundtrip;
          Alcotest.test_case "truncation" `Quick test_bytebuf_truncation;
          Alcotest.test_case "trailing" `Quick test_bytebuf_trailing;
          QCheck_alcotest.to_alcotest qcheck_bytebuf;
          Alcotest.test_case "writer reset/reuse" `Quick test_writer_reset_reuse;
          Alcotest.test_case "writer truncate" `Quick test_writer_truncate;
          Alcotest.test_case "writer = Buffer reference" `Quick test_writer_buffer_compat;
          Alcotest.test_case "append_with_crc" `Quick test_writer_append_with_crc;
          Alcotest.test_case "reader of_substring" `Quick test_reader_of_substring;
        ] );
      ( "crc",
        [
          Alcotest.test_case "known answers" `Quick test_crc_kat;
          Alcotest.test_case "bytes slice" `Quick test_crc_bytes_slice;
          QCheck_alcotest.to_alcotest qcheck_crc_differential;
          QCheck_alcotest.to_alcotest qcheck_crc_incremental;
          QCheck_alcotest.to_alcotest qcheck_crc_combine;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counting" `Quick test_stats_counting;
          Alcotest.test_case "sink restored" `Quick test_stats_sink_restored;
          Alcotest.test_case "diff" `Quick test_stats_diff;
        ] );
    ]
