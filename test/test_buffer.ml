(* Buffer manager: fix/unfix, LRU eviction, the WAL rule, dirty-page table,
   steal and no-force behaviour, crash semantics. *)

open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Page = Aries_page.Page
module Disk = Aries_page.Disk
module Bufpool = Aries_buffer.Bufpool

let setup ?(capacity = 4) () =
  let disk = Disk.create ~page_size:512 () in
  let log = Logmgr.create () in
  let pool = Bufpool.create ~capacity disk (Aries_wal.Logset.of_mgr log) in
  (disk, log, pool)

let new_page pool =
  let pid = Disk.alloc_pid (Bufpool.disk pool) in
  let p = Bufpool.fix_new pool pid (Page.empty_leaf ()) in
  (pid, p)

let log_touch log page =
  let lsn =
    Logmgr.append log
      (Logrec.make ~page:page.Page.pid ~rm_id:1 ~op:1 ~body:Bytes.empty ~txn:1 ~prev_lsn:Lsn.nil
         Logrec.Update)
  in
  page.Page.page_lsn <- lsn;
  lsn

let test_fix_miss_and_hit () =
  let disk, _log, pool = setup () in
  let pid, p = new_page pool in
  Bufpool.unfix pool p;
  Bufpool.flush_page pool pid;
  (* dirty? not marked; force a write *)
  Disk.write disk p;
  Bufpool.drop pool pid;
  let s = Stats.create () in
  Stats.with_sink s (fun () ->
      let a = Bufpool.fix pool pid in
      let b = Bufpool.fix pool pid in
      Alcotest.(check bool) "same frame" true (a == b);
      Bufpool.unfix pool a;
      Bufpool.unfix pool b);
  Alcotest.(check int) "one disk read" 1 (Stats.get s Stats.page_reads)

let test_page_vanished () =
  let _, _, pool = setup () in
  Alcotest.(check bool) "vanished raises" true
    (match Bufpool.fix pool 424242 with
    | _ -> false
    | exception Bufpool.Page_vanished 424242 -> true)

let test_wal_rule () =
  (* writing a dirty page forces the log up to its page_lsn first *)
  let _disk, log, pool = setup () in
  let pid, p = new_page pool in
  let lsn = log_touch log p in
  Bufpool.mark_dirty pool p lsn;
  Bufpool.unfix pool p;
  Alcotest.(check bool) "log not yet stable" true (Lsn.( < ) (Logmgr.flushed_lsn log) lsn);
  Bufpool.flush_page pool pid;
  Alcotest.(check bool) "WAL: log stable through page_lsn" true
    (Lsn.( >= ) (Logmgr.flushed_lsn log) lsn)

let test_eviction_lru_writes_dirty () =
  let disk, log, pool = setup ~capacity:2 () in
  let pid1, p1 = new_page pool in
  let lsn = log_touch log p1 in
  Bufpool.mark_dirty pool p1 lsn;
  Bufpool.unfix pool p1;
  let _pid2, p2 = new_page pool in
  Bufpool.unfix pool p2;
  (* third page: p1 (LRU) must be evicted and, being dirty, written *)
  let _pid3, p3 = new_page pool in
  Bufpool.unfix pool p3;
  Alcotest.(check bool) "evicted dirty page reached disk" true (Disk.read disk pid1 <> None)

let test_fixed_pages_not_evicted () =
  let _disk, _log, pool = setup ~capacity:2 () in
  let _pid1, p1 = new_page pool in
  let _pid2, p2 = new_page pool in
  (* both fixed; allocating a third overflows but must not evict them *)
  let _pid3, p3 = new_page pool in
  Alcotest.(check int) "three fixed frames" 3 (Bufpool.fixed_count pool);
  Bufpool.unfix pool p1;
  Bufpool.unfix pool p2;
  Bufpool.unfix pool p3

let test_dirty_page_table () =
  let _disk, log, pool = setup () in
  let pid, p = new_page pool in
  Alcotest.(check int) "clean pool: empty DPT" 0 (List.length (Bufpool.dirty_page_table pool));
  let lsn1 = log_touch log p in
  Bufpool.mark_dirty pool p lsn1;
  let lsn2 = log_touch log p in
  Bufpool.mark_dirty pool p lsn2;
  (match Bufpool.dirty_page_table pool with
  | [ (dpid, rec_lsn) ] ->
      Alcotest.(check int) "pid" pid dpid;
      Alcotest.(check int) "recLSN is the FIRST dirtying lsn" lsn1 rec_lsn
  | other -> Alcotest.failf "unexpected DPT size %d" (List.length other));
  Bufpool.unfix pool p;
  Bufpool.flush_page pool pid;
  Alcotest.(check int) "flushed: clean again" 0 (List.length (Bufpool.dirty_page_table pool))

let test_crash_drops_everything () =
  let disk, log, pool = setup () in
  let pid, p = new_page pool in
  let lsn = log_touch log p in
  Bufpool.mark_dirty pool p lsn;
  Bufpool.unfix pool p;
  Bufpool.crash pool;
  Alcotest.(check bool) "never-written page is gone" true (Disk.read disk pid = None);
  Alcotest.(check int) "no dirty pages" 0 (List.length (Bufpool.dirty_page_table pool))

let test_steal_hook () =
  let disk, log, pool = setup () in
  Bufpool.set_steal_hook pool ~seed:1 ~probability:1.0;
  let pid, p = new_page pool in
  Bufpool.unfix pool p;
  let p = Bufpool.fix pool pid in
  let lsn = log_touch log p in
  Bufpool.unfix pool p;
  (* unfixed before mark_dirty so the hook may steal it *)
  let p = Bufpool.fix pool pid in
  Bufpool.unfix pool p;
  Bufpool.mark_dirty pool p lsn;
  Alcotest.(check bool) "stolen page written with WAL rule" true
    (Disk.read disk pid <> None && Lsn.( >= ) (Logmgr.flushed_lsn log) lsn)

let test_unfix_discipline () =
  let _, _, pool = setup () in
  let _pid, p = new_page pool in
  Bufpool.unfix pool p;
  Alcotest.(check bool) "double unfix raises" true
    (match Bufpool.unfix pool p with () -> false | exception Invalid_argument _ -> true)

(* ---------- Per-frame image cache (PR 9) ---------- *)

(* A storm of image probes over clean resident pages must be ~all cache
   hits: one miss per page to populate (pages installed via [fix_new]
   have no disk image to seed from), then hits only. *)
let test_image_cache_flush_storm () =
  let _disk, log, pool = setup ~capacity:64 () in
  let pids =
    List.init 16 (fun _ ->
        let pid, p = new_page pool in
        Bufpool.mark_dirty pool p (log_touch log p);
        Bufpool.unfix pool p;
        Bufpool.flush_page pool pid;  (* populates the cache (one miss, uncounted) *)
        pid)
  in
  let s = Stats.create () in
  Stats.with_sink s (fun () ->
      for _ = 1 to 10 do
        List.iter (fun pid -> ignore (Bufpool.page_image pool pid)) pids
      done);
  Alcotest.(check int) "no misses: every probe hits the cache" 0
    (Stats.get s Stats.bufpool_image_misses);
  Alcotest.(check int) "all probes hit" 160 (Stats.get s Stats.bufpool_image_hits);
  Alcotest.(check int) "no stale cache entries" 0 (Bufpool.image_cache_stale pool)

(* Editing a page invalidates its cached image (counted), and the next
   write-back re-encodes exactly once. *)
let test_image_cache_invalidation () =
  let _disk, log, pool = setup () in
  let pid, p = new_page pool in
  Bufpool.mark_dirty pool p (log_touch log p);
  Bufpool.unfix pool p;
  Bufpool.flush_page pool pid;  (* miss: first encode, cache populated *)
  let s = Stats.create () in
  Stats.with_sink s (fun () ->
      ignore (Bufpool.page_image pool pid);  (* hit *)
      let p = Bufpool.fix pool pid in
      let lsn = log_touch log p in
      Bufpool.mark_dirty pool p lsn;  (* invalidate *)
      Bufpool.unfix pool p;
      Bufpool.flush_page pool pid;  (* miss: re-encode after edit *)
      ignore (Bufpool.page_image pool pid) (* hit again *));
  Alcotest.(check int) "invalidated once" 1 (Stats.get s Stats.bufpool_image_invalidations);
  Alcotest.(check int) "re-encoded once" 1 (Stats.get s Stats.bufpool_image_misses);
  Alcotest.(check int) "two hits" 2 (Stats.get s Stats.bufpool_image_hits)

(* The read path seeds the cache from the raw disk image: a page read in
   and probed unedited never encodes. *)
let test_image_cache_read_seed () =
  let _disk, log, pool = setup () in
  let pid, p = new_page pool in
  Bufpool.mark_dirty pool p (log_touch log p);
  Bufpool.unfix pool p;
  Bufpool.flush_page pool pid;
  Bufpool.drop pool pid;
  let s = Stats.create () in
  Stats.with_sink s (fun () ->
      let p = Bufpool.fix pool pid in
      Bufpool.unfix pool p;
      ignore (Bufpool.page_image pool pid));
  Alcotest.(check int) "no encode after read-seed" 0 (Stats.get s Stats.bufpool_image_misses);
  Alcotest.(check int) "probe hits the seeded image" 1 (Stats.get s Stats.bufpool_image_hits);
  (* and the seeded image is exactly what the codec would produce *)
  let p = Bufpool.fix pool pid in
  (match Bufpool.page_image pool pid with
  | Some img -> Alcotest.(check bytes) "seeded image = encode" (Page.encode p) img
  | None -> Alcotest.fail "no image for resident page");
  Bufpool.unfix pool p

let () =
  Alcotest.run "buffer"
    [
      ( "pool",
        [
          Alcotest.test_case "fix miss/hit" `Quick test_fix_miss_and_hit;
          Alcotest.test_case "page vanished" `Quick test_page_vanished;
          Alcotest.test_case "WAL rule" `Quick test_wal_rule;
          Alcotest.test_case "LRU eviction writes dirty" `Quick test_eviction_lru_writes_dirty;
          Alcotest.test_case "fixed pages pinned" `Quick test_fixed_pages_not_evicted;
          Alcotest.test_case "dirty page table recLSN" `Quick test_dirty_page_table;
          Alcotest.test_case "crash drops volatile state" `Quick test_crash_drops_everything;
          Alcotest.test_case "steal hook" `Quick test_steal_hook;
          Alcotest.test_case "unfix discipline" `Quick test_unfix_discipline;
        ] );
      ( "image-cache",
        [
          Alcotest.test_case "clean-page probe storm is all hits" `Quick
            test_image_cache_flush_storm;
          Alcotest.test_case "edit invalidates, one re-encode" `Quick
            test_image_cache_invalidation;
          Alcotest.test_case "read path seeds the cache" `Quick test_image_cache_read_seed;
        ] );
    ]
