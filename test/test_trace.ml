(* The protocol event tracer and the latch/lock discipline checker:
   ring-buffer mechanics, each rule R1-R5 against hand-built event
   sequences, the two meta-faults (an unconditional lock wait under latch
   and a commit acked before its force) caught end-to-end through the real
   B-tree / transaction stack, the deadlock-victim path asserted from the
   trace itself, restart instrumentation surviving a crash mid-restart, and
   the <2x checker-overhead budget. *)

open Aries_util
module Trace = Aries_trace.Trace
module Discipline = Aries_trace.Discipline
module Lockmgr = Aries_lock.Lockmgr
module Logmgr = Aries_wal.Logmgr
module Btree = Aries_btree.Btree
module Protocol = Aries_btree.Protocol
module Txnmgr = Aries_txn.Txnmgr
module Sched = Aries_sched.Sched
module Db = Aries_db.Db
module Sim = Aries_sim.Sim
module Workload = Aries_sim.Workload

let rid i = { Ids.rid_page = 900 + (i / 100); rid_slot = i mod 100 }

let v i = Printf.sprintf "key%05d" i

let fresh ?config ?(page_size = 384) ?(unique = true) () =
  let db = Db.create ~page_size () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create ?config db.Db.benv txn ~name:"t" ~unique))
  in
  (db, tree)

let has_substring s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* every test starts from clean tracer/checker state and leaves the default
   Check mode behind for the rest of the suite *)
let clean f =
  Fun.protect
    ~finally:(fun () ->
      Crashpoint.clear_faults ();
      Crashpoint.disarm ();
      Crashpoint.reset ();
      Trace.set_mode Trace.Check;
      Trace.set_capacity 4096;
      Trace.reset ();
      Discipline.reset ())
    (fun () ->
      Crashpoint.disarm ();
      Crashpoint.reset ();
      Trace.set_mode Trace.Check;
      Trace.reset ();
      Discipline.reset ();
      f ())

(* ------------------------------------------------------------------ *)
(* Ring buffer mechanics (Record mode: events land, nothing checks) *)

let test_ring_buffer () =
  clean (fun () ->
      Trace.set_mode Trace.Record;
      Trace.set_capacity 16;
      Alcotest.(check int) "capacity" 16 (Trace.capacity ());
      for i = 1 to 20 do
        Trace.emit (Trace.Note (Printf.sprintf "n%d" i))
      done;
      Alcotest.(check int) "total emitted" 20 (Trace.event_count ());
      let evs = Trace.events () in
      Alcotest.(check int) "retained window" 16 (List.length evs);
      (* oldest-first: the first 4 notes were overwritten *)
      (match (List.hd evs).Trace.ev_payload with
      | Trace.Note "n5" -> ()
      | p -> Alcotest.failf "oldest retained should be n5, got %s" (Trace.payload_to_string p));
      (match (List.hd (List.rev evs)).Trace.ev_payload with
      | Trace.Note "n20" -> ()
      | p -> Alcotest.failf "newest should be n20, got %s" (Trace.payload_to_string p));
      let last3 = Trace.last_events 3 in
      Alcotest.(check (list string))
        "last 3, oldest-first"
        [ "note n18"; "note n19"; "note n20" ]
        (List.map (fun e -> Trace.payload_to_string e.Trace.ev_payload) last3);
      (* outside any scheduler the context providers stamp -1 *)
      Alcotest.(check int) "fiber stamp outside sched" (-1) (List.hd evs).Trace.ev_fiber;
      (* dump_last renders and bumps the stats counter *)
      let before = Stats.get (Stats.current ()) Stats.trace_dumps in
      let dump = Trace.dump_last 4 in
      Alcotest.(check int) "dump lines" 4 (List.length dump);
      Alcotest.(check bool) "dump rendered" true (has_substring (List.hd dump) "note n17");
      Alcotest.(check int)
        "trace.dumps bumped" (before + 1)
        (Stats.get (Stats.current ()) Stats.trace_dumps);
      (* reset clears the ring but keeps mode *)
      Trace.reset ();
      Alcotest.(check int) "reset clears count" 0 (Trace.event_count ());
      Alcotest.(check bool) "mode survives reset" true (Trace.mode () = Trace.Record);
      (* Off mode: emit is a no-op *)
      Trace.set_mode Trace.Off;
      Trace.emit (Trace.Note "dropped");
      Alcotest.(check int) "off drops events" 0 (Trace.event_count ()))

(* Record mode must not check: a blatant R4 sequence sails through, and the
   same sequence under Check raises. *)
let test_record_does_not_check () =
  clean (fun () ->
      Trace.set_mode Trace.Record;
      Trace.emit (Trace.Log_open { log = 77; flushed = 0 });
      Trace.emit (Trace.Commit_ack { log = 77; txn = 1; lsn = 0; lsn_end = 100 });
      Alcotest.(check int) "no violation recorded" 0 (Discipline.violations ());
      Trace.set_mode Trace.Check;
      Trace.emit (Trace.Log_open { log = 77; flushed = 0 });
      (match Trace.emit (Trace.Commit_ack { log = 77; txn = 1; lsn = 0; lsn_end = 100 }) with
      | () -> Alcotest.fail "Check mode let an unforced ack through"
      | exception Discipline.Violation (Discipline.R4, _) -> ());
      Alcotest.(check int) "violation counted" 1 (Discipline.violations ()))

(* ------------------------------------------------------------------ *)
(* The checker, rule by rule, against hand-built event sequences *)

let ev ?(fiber = 1) p = { Trace.ev_step = 0; ev_fiber = fiber; ev_payload = p }

let expect rule f =
  match f () with
  | () -> Alcotest.failf "expected %s violation" (Discipline.rule_to_string rule)
  | exception Discipline.Violation (r, msg) ->
      Alcotest.(check string) "rule"
        (Discipline.rule_to_string rule)
        (Discipline.rule_to_string r);
      Alcotest.(check bool) "message carries the rule summary" true
        (has_substring msg (Discipline.rule_summary rule))

let page_latch name =
  Trace.Latch_acquire { kind = Trace.Page_latch; name; mode = Trace.X; cond = false; waited = false }

let test_rule_r1 () =
  clean (fun () ->
      Discipline.check (ev (page_latch "p7"));
      Alcotest.(check int) "depth tracked" 1 (Discipline.latch_depth ~fiber:1);
      expect Discipline.R1 (fun () ->
          Discipline.check (ev (Trace.Lock_wait { txn = 4; name = "k1"; mode = "X" })));
      (* a different fiber holding no latch may wait freely *)
      Discipline.check (ev ~fiber:2 (Trace.Lock_wait { txn = 5; name = "k1"; mode = "X" }));
      (* after release, the same fiber may wait too *)
      Discipline.check (ev (Trace.Latch_release { kind = Trace.Page_latch; name = "p7" }));
      Discipline.check (ev (Trace.Lock_wait { txn = 4; name = "k1"; mode = "X" })))

let test_rule_r2_depth () =
  clean (fun () ->
      Discipline.check (ev (page_latch "p1"));
      Discipline.check (ev (page_latch "p2"));
      Discipline.check (ev (page_latch "p3"));
      expect Discipline.R2 (fun () -> Discipline.check (ev (page_latch "p4"))))

let test_rule_r2_inversion () =
  clean (fun () ->
      Discipline.check (ev (page_latch "p1"));
      (* conditional tree-latch grab under a page latch is the legal probe *)
      Discipline.check
        (ev
           (Trace.Latch_acquire
              { kind = Trace.Tree_latch; name = "t"; mode = Trace.X; cond = true; waited = false }));
      Discipline.check (ev (Trace.Latch_release { kind = Trace.Tree_latch; name = "t" }));
      (* the unconditional one is the child->parent inversion *)
      expect Discipline.R2 (fun () ->
          Discipline.check
            (ev
               (Trace.Latch_acquire
                  {
                    kind = Trace.Tree_latch;
                    name = "t";
                    mode = Trace.X;
                    cond = false;
                    waited = false;
                  }))))

let test_rule_r3 () =
  clean (fun () ->
      (* concurrent (IX) SMOs may overlap *)
      Discipline.check (ev (Trace.Smo_begin { tree = 9; txn = 1; exclusive = false }));
      Discipline.check (ev (Trace.Smo_begin { tree = 9; txn = 2; exclusive = false }));
      (* but an upgrade is granted only once the upgrader is alone *)
      expect Discipline.R3 (fun () ->
          Discipline.check (ev (Trace.Smo_upgrade { tree = 9; txn = 1 })));
      Discipline.reset ();
      (* an exclusive SMO overlaps nothing... *)
      Discipline.check (ev (Trace.Smo_begin { tree = 9; txn = 1; exclusive = true }));
      expect Discipline.R3 (fun () ->
          Discipline.check (ev (Trace.Smo_begin { tree = 9; txn = 2; exclusive = false })));
      Discipline.reset ();
      (* ...in either order *)
      Discipline.check (ev (Trace.Smo_begin { tree = 9; txn = 1; exclusive = false }));
      expect Discipline.R3 (fun () ->
          Discipline.check (ev (Trace.Smo_begin { tree = 9; txn = 2; exclusive = true })));
      Discipline.reset ();
      (* a different tree is a different SMO domain *)
      Discipline.check (ev (Trace.Smo_begin { tree = 9; txn = 1; exclusive = true }));
      Discipline.check (ev (Trace.Smo_begin { tree = 10; txn = 2; exclusive = true }));
      Discipline.check (ev (Trace.Smo_end { tree = 9; txn = 1 }));
      Discipline.check (ev (Trace.Smo_end { tree = 10; txn = 2 }));
      (* every end must match a begin *)
      expect Discipline.R3 (fun () ->
          Discipline.check (ev (Trace.Smo_end { tree = 9; txn = 1 }))))

let test_rule_r4 () =
  clean (fun () ->
      Discipline.check (ev (Trace.Log_open { log = 3; flushed = 100 }));
      (* covered ack is fine *)
      Discipline.check (ev (Trace.Commit_ack { log = 3; txn = 1; lsn = 50; lsn_end = 90 }));
      expect Discipline.R4 (fun () ->
          Discipline.check (ev (Trace.Commit_ack { log = 3; txn = 2; lsn = 120; lsn_end = 150 })));
      (* the force advances the boundary; the same ack is now covered *)
      Discipline.check (ev (Trace.Log_force { log = 3; upto = 200; stable_lsn = 200 }));
      Discipline.check (ev (Trace.Commit_ack { log = 3; txn = 2; lsn = 120; lsn_end = 150 })))

let test_rule_r5 () =
  clean (fun () ->
      Discipline.check (ev (Trace.Log_open { log = 3; flushed = 200 }));
      (* covered write is fine; a nil pageLSN (never-updated page) always is *)
      Discipline.check
        (ev (Trace.Page_write { log = 3; pid = 4; page_lsn = 10; lsn_end = 180; rec_lsn = 10 }));
      Discipline.check
        (ev (Trace.Page_write { log = 3; pid = 5; page_lsn = 0; lsn_end = 0; rec_lsn = 0 }));
      expect Discipline.R5 (fun () ->
          Discipline.check
            (ev
               (Trace.Page_write { log = 3; pid = 4; page_lsn = 210; lsn_end = 250; rec_lsn = 210 }))))

(* R6: truncation is judged against the independently announced safety
   point, and a dirty-page write whose recLSN fell below a vetted
   truncation proves redo records were destroyed. *)
let test_rule_r6 () =
  clean (fun () ->
      Discipline.check (ev (Trace.Log_open { log = 3; flushed = 500 }));
      (* no safety point ever announced: any truncation is premature *)
      expect Discipline.R6 (fun () ->
          Discipline.check
            (ev (Trace.Log_truncate { log = 3; new_start = 100; bytes = 92; segments = 1 })));
      Discipline.reset ();
      Discipline.check (ev (Trace.Log_open { log = 3; flushed = 500 }));
      Discipline.check (ev (Trace.Log_safety { log = 3; safety = 300 }));
      (* below the announcement: fine *)
      Discipline.check
        (ev (Trace.Log_truncate { log = 3; new_start = 200; bytes = 192; segments = 2 }));
      (* past the announcement: premature *)
      expect Discipline.R6 (fun () ->
          Discipline.check
            (ev (Trace.Log_truncate { log = 3; new_start = 400; bytes = 200; segments = 1 })));
      (* past the flushed boundary: always premature, whatever was announced *)
      Discipline.check (ev (Trace.Log_safety { log = 3; safety = 10_000 }));
      expect Discipline.R6 (fun () ->
          Discipline.check
            (ev (Trace.Log_truncate { log = 3; new_start = 600; bytes = 200; segments = 1 }))))

let test_rule_r6_reclaimed_rec_lsn () =
  clean (fun () ->
      Discipline.check (ev (Trace.Log_open { log = 3; flushed = 500 }));
      Discipline.check (ev (Trace.Log_safety { log = 3; safety = 300 }));
      Discipline.check
        (ev (Trace.Log_truncate { log = 3; new_start = 300; bytes = 292; segments = 3 }));
      (* recLSN at/above the new start: the redo records survive *)
      Discipline.check
        (ev (Trace.Page_write { log = 3; pid = 4; page_lsn = 350; lsn_end = 400; rec_lsn = 300 }));
      (* recLSN below the new start: its first redo record is gone *)
      expect Discipline.R6 (fun () ->
          Discipline.check
            (ev
               (Trace.Page_write
                  { log = 3; pid = 9; page_lsn = 350; lsn_end = 400; rec_lsn = 250 }))))

(* Run_begin discards volatile (fiber/SMO) state but keeps the flushed
   boundary — it mirrors durable state across simulated crashes. *)
let test_run_begin_resets_volatile_state () =
  clean (fun () ->
      Discipline.check (ev (page_latch "p1"));
      Discipline.check (ev (Trace.Smo_begin { tree = 9; txn = 1; exclusive = true }));
      Discipline.check (ev (Trace.Log_open { log = 3; flushed = 100 }));
      Discipline.check (ev (Trace.Run_begin { run = 2 }));
      Alcotest.(check int) "latch state gone" 0 (Discipline.latch_depth ~fiber:1);
      (* the old exclusive SMO no longer blocks a new one *)
      Discipline.check (ev (Trace.Smo_begin { tree = 9; txn = 7; exclusive = true }));
      (* but the flushed boundary survived: an unforced ack still trips *)
      expect Discipline.R4 (fun () ->
          Discipline.check (ev (Trace.Commit_ack { log = 3; txn = 7; lsn = 120; lsn_end = 150 }))))

(* ------------------------------------------------------------------ *)
(* Meta-fault 1 (R1): the fault skips the unlatch step of the
   conditional-lock / unlatch / unconditional-lock dance, so the
   unconditional next-key wait happens under the leaf latch — the checker
   must catch it inside the real insert path. *)

let test_meta_fault_uncond_lock_under_latch () =
  clean (fun () ->
      let config = { Btree.default_config with Btree.locking = Protocol.Index_specific } in
      let db, tree = fresh ~config () in
      Crashpoint.enable_fault Crashpoint.fault_lock_uncond_under_latch;
      let caught = ref None in
      let r =
        Db.run db (fun () ->
            ignore
              (Sched.spawn ~name:"holder" (fun () ->
                   let t1 = Txnmgr.begin_txn db.Db.mgr in
                   Btree.insert tree t1 ~value:(v 2) ~rid:(rid 2)
                   (* deliberately left uncommitted: its commit-duration X
                      key lock keeps the second inserter's conditional
                      next-key probe failing *)));
            ignore
              (Sched.spawn ~name:"inserter" (fun () ->
                   let t2 = Txnmgr.begin_txn db.Db.mgr in
                   match Btree.insert tree t2 ~value:(v 1) ~rid:(rid 1) with
                   | () -> ()
                   | exception Discipline.Violation (rule, msg) -> caught := Some (rule, msg))))
      in
      Alcotest.(check bool) "no stray fiber exn" true (r.Sched.exns = []);
      (match !caught with
      | Some (Discipline.R1, msg) ->
          Alcotest.(check bool) "message names the latch hazard" true (has_substring msg "latch")
      | Some (rule, msg) ->
          Alcotest.failf "wrong rule %s: %s" (Discipline.rule_to_string rule) msg
      | None -> Alcotest.fail "R1 meta-fault escaped the checker");
      Alcotest.(check bool) "violation counted" true (Discipline.violations () >= 1);
      (* the leak report surfaces the violation count *)
      Alcotest.(check bool) "leak report mentions discipline" true
        (List.exists (fun l -> has_substring l "discipline") (Db.leak_report db));
      (* and the event window tells the story: a lock wait under latch *)
      let dump = Trace.dump_last 60 in
      Alcotest.(check bool) "dump has the lock wait" true
        (List.exists (fun l -> has_substring l "lock-wait") dump);
      Alcotest.(check bool) "dump has the latch acquire" true
        (List.exists (fun l -> has_substring l "latch-acquire") dump);
      (* with the fault cleared, the same contention resolves cleanly *)
      Crashpoint.clear_faults ();
      Trace.reset ();
      Discipline.reset ();
      let db2, tree2 = fresh ~config () in
      ignore
        (Db.run db2 (fun () ->
             ignore
               (Sched.spawn ~name:"holder" (fun () ->
                    let t1 = Txnmgr.begin_txn db2.Db.mgr in
                    Btree.insert tree2 t1 ~value:(v 2) ~rid:(rid 2);
                    for _ = 1 to 6 do
                      Sched.yield ()
                    done;
                    Txnmgr.commit db2.Db.mgr t1));
             ignore
               (Sched.spawn ~name:"inserter" (fun () ->
                    let t2 = Txnmgr.begin_txn db2.Db.mgr in
                    Btree.insert tree2 t2 ~value:(v 1) ~rid:(rid 1);
                    Txnmgr.commit db2.Db.mgr t2))));
      Alcotest.(check int) "clean run: no violations" 0 (Discipline.violations ());
      Alcotest.(check (list string)) "clean run: no leaks" [] (Db.leak_report db2))

(* ------------------------------------------------------------------ *)
(* Meta-fault 2 (R4): the fault acknowledges the commit without forcing
   its log record — the checker must catch the durability lie at the ack. *)

let test_meta_fault_commit_early_ack () =
  clean (fun () ->
      let db, tree = fresh () in
      Crashpoint.enable_fault Crashpoint.fault_commit_early_ack;
      let caught = ref None in
      ignore
        (Db.run db (fun () ->
             ignore
               (Sched.spawn ~name:"committer" (fun () ->
                    let t = Txnmgr.begin_txn db.Db.mgr in
                    Btree.insert tree t ~value:(v 1) ~rid:(rid 1);
                    match Txnmgr.commit db.Db.mgr t with
                    | () -> ()
                    | exception Discipline.Violation (rule, msg) -> caught := Some (rule, msg)))));
      (match !caught with
      | Some (Discipline.R4, msg) ->
          Alcotest.(check bool) "message names the flushed offset" true
            (has_substring msg "flushed")
      | Some (rule, msg) ->
          Alcotest.failf "wrong rule %s: %s" (Discipline.rule_to_string rule) msg
      | None -> Alcotest.fail "R4 meta-fault escaped the checker");
      (* the dump shows the ack with no covering force after the append *)
      let dump = Trace.dump_last 60 in
      Alcotest.(check bool) "dump has the ack" true
        (List.exists (fun l -> has_substring l "commit-ack") dump);
      (* cleared fault: the same commit forces and passes *)
      Crashpoint.clear_faults ();
      Trace.reset ();
      Discipline.reset ();
      let db2, tree2 = fresh () in
      Db.run_exn db2 (fun () ->
          Db.with_txn db2 (fun t -> Btree.insert tree2 t ~value:(v 1) ~rid:(rid 1)));
      Alcotest.(check int) "clean commit: no violations" 0 (Discipline.violations ()))

(* ------------------------------------------------------------------ *)
(* Meta-fault 3 (R6): the fault makes the checkpoint daemon's reclamation
   overshoot the safety point all the way to the flushed boundary —
   destroying records a restart would still need for the open
   transaction's undo. The checker must catch the oversized truncation
   against the independently announced safety point. *)

let test_meta_fault_premature_truncate () =
  clean (fun () ->
      let db = Db.create ~page_size:384 ~segment_size:256 () in
      let tree =
        Db.run_exn db (fun () ->
            Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"t" ~unique:true))
      in
      let caught = ref None in
      Db.run_exn db (fun () ->
          (* a long-running transaction pins the safety point near the
             start of the log... *)
          let pin = Txnmgr.begin_txn db.Db.mgr in
          Btree.insert tree pin ~value:(v 0) ~rid:(rid 0);
          (* ...while committed work seals many stable segments above it *)
          for i = 1 to 40 do
            Db.with_txn db (fun t -> Btree.insert tree t ~value:(v i) ~rid:(rid i))
          done;
          Db.checkpoint db;
          Alcotest.(check bool) "many sealed segments" true
            (Logmgr.segment_count db.Db.wal > 3);
          (* the honest path respects the pin: no violation *)
          ignore (Db.trim_log db);
          Alcotest.(check int) "honest reclamation passes" 0 (Discipline.violations ());
          Crashpoint.enable_fault Crashpoint.fault_ckpt_premature_truncate;
          (match Db.trim_log db with
          | _ -> ()
          | exception Discipline.Violation (rule, msg) -> caught := Some (rule, msg));
          Crashpoint.clear_faults ();
          Txnmgr.commit db.Db.mgr pin);
      (match !caught with
      | Some (Discipline.R6, msg) ->
          Alcotest.(check bool) "message names the safety point" true
            (has_substring msg "safety")
      | Some (rule, msg) ->
          Alcotest.failf "wrong rule %s: %s" (Discipline.rule_to_string rule) msg
      | None -> Alcotest.fail "R6 meta-fault escaped the checker");
      Alcotest.(check bool) "violation counted" true (Discipline.violations () >= 1);
      (* the event window shows the announcement and the oversized cut *)
      let dump = Trace.dump_last 60 in
      Alcotest.(check bool) "dump has the safety announcement" true
        (List.exists (fun l -> has_substring l "log-safety") dump);
      Alcotest.(check bool) "dump has the truncation" true
        (List.exists (fun l -> has_substring l "log-truncate") dump))

(* ------------------------------------------------------------------ *)
(* Deadlock-victim path, asserted from the trace: the youngest victim's
   rollback must leave the lock table clean — reconstructed from the
   Lock_grant / Lock_release / Lock_release_all event stream, not from
   endpoint counters — and the victim's retry must succeed. *)

let test_deadlock_victim_trace () =
  clean (fun () ->
      let db = Db.create ~page_size:384 () in
      let victim_id = ref (-1) in
      let retried_ok = ref false in
      let r =
        Db.run db (fun () ->
            ignore
              (Sched.spawn ~name:"elder" (fun () ->
                   let t1 = Txnmgr.begin_txn db.Db.mgr in
                   Txnmgr.lock db.Db.mgr t1 (Lockmgr.Table 1) Lockmgr.X Lockmgr.Commit;
                   Sched.yield ();
                   (* closes the cycle: t1 -> t2 (Table 2) while t2 -> t1 *)
                   Txnmgr.lock db.Db.mgr t1 (Lockmgr.Table 2) Lockmgr.X Lockmgr.Commit;
                   Txnmgr.commit db.Db.mgr t1));
            ignore
              (Sched.spawn ~name:"younger" (fun () ->
                   let t2 = Txnmgr.begin_txn db.Db.mgr in
                   victim_id := t2.Txnmgr.txn_id;
                   (match
                      Txnmgr.lock db.Db.mgr t2 (Lockmgr.Table 2) Lockmgr.X Lockmgr.Commit;
                      Sched.yield ();
                      Txnmgr.lock db.Db.mgr t2 (Lockmgr.Table 1) Lockmgr.X Lockmgr.Commit
                    with
                   | () -> Alcotest.fail "younger transaction was not chosen as victim"
                   | exception Txnmgr.Aborted (id, _) ->
                       Alcotest.(check int) "victim is the younger txn" !victim_id id);
                   (* retry with a fresh transaction: must go through *)
                   let t3 = Txnmgr.begin_txn db.Db.mgr in
                   Txnmgr.lock db.Db.mgr t3 (Lockmgr.Table 2) Lockmgr.X Lockmgr.Commit;
                   Txnmgr.lock db.Db.mgr t3 (Lockmgr.Table 1) Lockmgr.X Lockmgr.Commit;
                   Txnmgr.commit db.Db.mgr t3;
                   retried_ok := true)))
      in
      Alcotest.(check bool) "run completed" true (r.Sched.outcome = Sched.Completed);
      Alcotest.(check bool) "no fiber exn" true (r.Sched.exns = []);
      Alcotest.(check bool) "victim retry succeeded" true !retried_ok;
      (* the trace recorded the victim choice *)
      let evs = Trace.events () in
      Alcotest.(check bool) "Deadlock_victim event present" true
        (List.exists
           (fun e ->
             match e.Trace.ev_payload with
             | Trace.Deadlock_victim { txn } -> txn = !victim_id
             | _ -> false)
           evs);
      (* replay the lock events: every retained grant must be matched by a
         release (or the holder's release-all) by end of run *)
      let held : (int * string, unit) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun e ->
          match e.Trace.ev_payload with
          | Trace.Lock_grant { txn; name; duration; _ } when duration <> "instant" ->
              Hashtbl.replace held (txn, name) ()
          | Trace.Lock_release { txn; name } -> Hashtbl.remove held (txn, name)
          | Trace.Lock_release_all { txn } ->
              let stale =
                Hashtbl.fold (fun (t, n) () acc -> if t = txn then (t, n) :: acc else acc) held []
              in
              List.iter (Hashtbl.remove held) stale
          | _ -> ())
        evs;
      let leftovers =
        Hashtbl.fold (fun (t, n) () acc -> Printf.sprintf "T%d:%s" t n :: acc) held []
      in
      Alcotest.(check (list string)) "trace shows all grants released" [] leftovers;
      (* and the lock manager agrees *)
      Alcotest.(check int) "lock table quiescent" 0 (Lockmgr.total_held db.Db.locks);
      Alcotest.(check (list string)) "no leaks" [] (Db.leak_report db);
      Alcotest.(check int) "no violations" 0 (Discipline.violations ()))

(* ------------------------------------------------------------------ *)
(* Restart instrumentation: the phases emit events, the checker stays on
   during recovery, and a crash mid-restart followed by a second restart
   recovers the committed state (repeating history is idempotent). *)

let test_crash_mid_restart () =
  clean (fun () ->
      let db, tree = fresh () in
      let expected = List.init 10 (fun i -> (v i, rid i)) in
      Db.run_exn db (fun () ->
          Db.with_txn db (fun t ->
              List.iter (fun (value, rid) -> Btree.insert tree t ~value ~rid) expected));
      (* a loser: flushed updates, no commit record *)
      Db.run_exn db (fun () ->
          let t = Txnmgr.begin_txn db.Db.mgr in
          Btree.insert tree t ~value:(v 20) ~rid:(rid 20);
          Btree.insert tree t ~value:(v 21) ~rid:(rid 21);
          Logmgr.flush db.Db.wal);
      let db1 = Db.crash db in
      (* first restart is cut down by a simulated power failure at its
         second durability event (a CLR append in the undo pass) *)
      Crashpoint.reset ();
      Crashpoint.arm ~at:2;
      (match Db.run_exn db1 (fun () -> ignore (Db.restart db1)) with
      | () -> Alcotest.fail "restart completed despite the armed crash"
      | exception Crashpoint.Crash _ -> ());
      Crashpoint.disarm ();
      Crashpoint.reset ();
      (* second restart finishes the job *)
      let db2 = Db.crash db1 in
      Db.run_exn db2 (fun () ->
          ignore (Db.restart db2);
          let tree2 = Btree.open_existing db2.Db.benv (Btree.index_id tree) in
          Btree.check_invariants tree2;
          Alcotest.(check bool) "committed state recovered" true (Btree.to_list tree2 = expected));
      Alcotest.(check (list string)) "no leaks after recovery" [] (Db.leak_report db2);
      Alcotest.(check int) "no violations during recovery" 0 (Discipline.violations ());
      (* both restart attempts emitted their phase events *)
      let phases want =
        List.length
          (List.filter
             (fun e ->
               match e.Trace.ev_payload with
               | Trace.Restart_phase { phase } -> phase = want
               | _ -> false)
             (Trace.events ()))
      in
      Alcotest.(check int) "two analysis passes" 2 (phases "analysis");
      Alcotest.(check bool) "undo reached at least once" true (phases "undo" >= 1);
      Alcotest.(check int) "one completed recovery" 1 (phases "done"))

(* ------------------------------------------------------------------ *)
(* Overhead budget: a full simulation run with the checker on must cost
   less than 2x the tracer-off run (plus a small epsilon for timer
   granularity). This is the satellite acceptance bound; bench q10
   measures the same three modes in detail. *)

let test_checker_overhead () =
  clean (fun () ->
      let time_mode m =
        Trace.set_mode m;
        let best = ref infinity in
        for _ = 1 to 3 do
          let t0 = Sys.time () in
          let r = Sim.run_one Workload.default_cfg ~seed:42 in
          let dt = Sys.time () -. t0 in
          Alcotest.(check (list string)) "seed 42 passes" [] r.Sim.rr_failures;
          if dt < !best then best := dt
        done;
        !best
      in
      let off = time_mode Trace.Off in
      let check = time_mode Trace.Check in
      Alcotest.(check bool)
        (Printf.sprintf "checker-on %.4fs <= 2x tracer-off %.4fs" check off)
        true
        (check <= (2.0 *. off) +. 0.01))

(* Passing sim runs carry no event dump; the ring still recorded the run
   (the checker was live), so the dump stays an on-failure artifact. *)
let test_sim_dump_only_on_failure () =
  clean (fun () ->
      let r = Sim.run_one Workload.default_cfg ~seed:5 in
      Alcotest.(check (list string)) "run passes" [] r.Sim.rr_failures;
      Alcotest.(check (list string)) "no dump on a passing run" [] r.Sim.rr_event_dump;
      Alcotest.(check bool) "but the ring recorded the protocol" true (Trace.event_count () > 0))

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "ring buffer mechanics" `Quick test_ring_buffer;
          Alcotest.test_case "record mode does not check" `Quick test_record_does_not_check;
        ] );
      ( "rules",
        [
          Alcotest.test_case "R1 lock wait under latch" `Quick test_rule_r1;
          Alcotest.test_case "R2 latch depth" `Quick test_rule_r2_depth;
          Alcotest.test_case "R2 child->parent inversion" `Quick test_rule_r2_inversion;
          Alcotest.test_case "R3 one SMO in flight" `Quick test_rule_r3;
          Alcotest.test_case "R4 ack before force" `Quick test_rule_r4;
          Alcotest.test_case "R5 WAL rule" `Quick test_rule_r5;
          Alcotest.test_case "R6 truncation past safety" `Quick test_rule_r6;
          Alcotest.test_case "R6 recLSN in reclaimed prefix" `Quick
            test_rule_r6_reclaimed_rec_lsn;
          Alcotest.test_case "Run_begin resets volatile state" `Quick
            test_run_begin_resets_volatile_state;
        ] );
      ( "meta-faults",
        [
          Alcotest.test_case "unconditional lock under latch is caught (R1)" `Quick
            test_meta_fault_uncond_lock_under_latch;
          Alcotest.test_case "commit acked before force is caught (R4)" `Quick
            test_meta_fault_commit_early_ack;
          Alcotest.test_case "premature log truncation is caught (R6)" `Quick
            test_meta_fault_premature_truncate;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "deadlock victim leaves a clean trace" `Quick
            test_deadlock_victim_trace;
          Alcotest.test_case "crash mid-restart, phases traced" `Quick test_crash_mid_restart;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "checker-on < 2x tracer-off" `Quick test_checker_overhead;
          Alcotest.test_case "event dump only on failing sim runs" `Quick
            test_sim_dump_only_on_failure;
        ] );
    ]
