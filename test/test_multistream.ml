(* Multi-stream parallel WAL (Logset): N=1 equivalence with a bare Logmgr,
   the v3 frame codec's stream/epoch/gsn stamps, epoch-fence ack ordering
   under group commit (and the [wal.stream-fence-skip] meta-fault tripping
   R8), cross-stream transaction undo, torn tails confined to one stream,
   per-stream checkpoint/truncation, the archived-pageLSN flush_to clamp,
   and crash atomicity of multi-stream NTA anchors. *)

open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Logset = Aries_wal.Logset
module Txnmgr = Aries_txn.Txnmgr
module Group_commit = Aries_txn.Group_commit
module Btree = Aries_btree.Btree
module Bufpool = Aries_buffer.Bufpool
module Restart = Aries_recovery.Restart
module Db = Aries_db.Db
module Sched = Aries_sched.Sched
module Trace = Aries_trace.Trace
module Discipline = Aries_trace.Discipline

let rid i = { Ids.rid_page = 1000 + (i / 100); rid_slot = i mod 100 }

let v i = Printf.sprintf "key%05d" i

let fresh ?(streams = 4) ?(page_size = 384) ?commit_mode ?segment_size () =
  let db = Db.create ~page_size ?commit_mode ?segment_size ~streams () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"ms" ~unique:true))
  in
  (db, tree)

let clean f =
  Crashpoint.disarm ();
  Crashpoint.clear_faults ();
  Faultdisk.disarm ();
  Trace.reset ();
  Discipline.reset ();
  Fun.protect f ~finally:(fun () ->
      Crashpoint.disarm ();
      Crashpoint.clear_faults ();
      Faultdisk.disarm ();
      Trace.set_mode Trace.Off;
      Trace.reset ();
      Discipline.reset ())

(* a page id routed to stream [s] of [logs] *)
let pid_on logs s =
  let rec go p = if Logset.route_page logs p = s then p else go (p + 1) in
  go 1

(* ------------------------------------------------------------------ *)
(* N=1 equivalence: a one-stream Logset produces, frame for frame, the
   byte stream a bare Logmgr produces for the same records with the same
   stamps — the degenerate case the whole design promises to preserve. *)

let test_n1_equivalence () =
  let set = Logset.create ~streams:1 () in
  let bare = Logmgr.create () in
  let mk i =
    Logrec.make ~page:(i * 7) ~rm_id:1 ~op:(i mod 5)
      ~body:(Bytes.of_string (Printf.sprintf "body-%d" i))
      ~txn:(1 + (i mod 3))
      ~prev_lsn:Lsn.nil Logrec.Update
  in
  for i = 1 to 50 do
    let r = mk i in
    let l1 = Logset.append set ~stream:0 r in
    (* a bare Logmgr keeps the caller's stamps: apply the ones
       Logset.append would ({!Logset.append}'s contract) *)
    let l2 = Logmgr.append bare { r with Logrec.stream = 0; epoch = 1; gsn = i } in
    Alcotest.(check int) "same lsn" l2 l1
  done;
  Logset.flush_all set;
  Logmgr.flush bare;
  let m0 = Logset.stream set 0 in
  Alcotest.(check int) "same end offset" (Logmgr.end_offset bare) (Logmgr.end_offset m0);
  Logmgr.iter_from m0 (Logmgr.start_offset m0) (fun r ->
      let r' = Logmgr.read bare r.Logrec.lsn in
      Alcotest.(check bytes)
        (Printf.sprintf "frame bytes at %d" r.Logrec.lsn)
        (Logrec.encode r') (Logrec.encode r))

(* ------------------------------------------------------------------ *)
(* v3 codec: stream / epoch / gsn / undo_nxt_stream roundtrip, 1000
   seeded random records. *)

let all_kinds =
  [|
    Logrec.Update; Logrec.Clr; Logrec.Commit; Logrec.Prepare; Logrec.Rollback;
    Logrec.End_txn; Logrec.Begin_ckpt; Logrec.End_ckpt;
  |]

let gen_v3 : Logrec.t QCheck.Gen.t =
 fun st ->
  let int lo hi = QCheck.Gen.int_range lo hi st in
  let kind = all_kinds.(int 0 (Array.length all_kinds - 1)) in
  let body = Bytes.of_string (QCheck.Gen.(string_size (int_range 0 64)) st) in
  Logrec.make
    ~page:(int 0 1_000_000)
    ~undo_nxt_lsn:(int 0 1_000_000)
    ~undo_nxt_stream:(int 0 64) ~rm_id:(int 0 255) ~op:(int 0 255)
    ~undoable:(int 0 1 = 1)
    ~redoable:(int 0 1 = 1)
    ~stream:(int 0 64)
    ~epoch:(int 1 1_000_000)
    ~gsn:(int 1 10_000_000)
    ~body
    ~txn:(int 0 100_000)
    ~prev_lsn:(int 0 1_000_000)
    kind

let qcheck_v3_codec =
  QCheck.Test.make ~name:"v3 frame codec: stream/epoch/gsn/undo_nxt_stream x1000"
    ~count:1000
    (QCheck.make gen_v3)
    (fun r ->
      let r' = Logrec.decode ~lsn:33 (Bytes.to_string (Logrec.encode r)) in
      r'.Logrec.stream = r.Logrec.stream
      && r'.Logrec.epoch = r.Logrec.epoch
      && r'.Logrec.gsn = r.Logrec.gsn
      && r'.Logrec.undo_nxt_stream = r.Logrec.undo_nxt_stream
      && r'.Logrec.undo_nxt_lsn = r.Logrec.undo_nxt_lsn
      && r'.Logrec.kind = r.Logrec.kind
      && Bytes.equal r'.Logrec.body r.Logrec.body)

(* ------------------------------------------------------------------ *)
(* Epoch-fence ack ordering: under group commit over four streams, every
   acknowledged commit's fence targets are stable at ack time (R8(a)
   checks each ack against the per-stream flushed offsets), epochs
   advance per batch, and all committed rows survive a crash. *)

let test_epoch_fence_ack_ordering () =
  clean (fun () ->
      let db, tree =
        fresh ~commit_mode:(Db.Group { Group_commit.max_batch = 4; max_delay_steps = 6 }) ()
      in
      Trace.set_mode Trace.Check;
      let acked = ref 0 in
      let result =
        Db.run db ~policy:(Sched.Random 7) (fun () ->
            for f = 0 to 3 do
              ignore
                (Sched.spawn
                   ~name:(Printf.sprintf "committer-%d" f)
                   (fun () ->
                     for i = 0 to 7 do
                       Db.with_txn db (fun txn ->
                           Btree.insert tree txn
                             ~value:(Printf.sprintf "f%d-%02d" f i)
                             ~rid:(rid ((f * 100) + i)));
                       incr acked
                     done))
            done)
      in
      (match result.Sched.outcome with
      | Sched.Completed -> ()
      | _ -> Alcotest.fail "run did not complete");
      List.iter
        (fun (_, name, e) -> Alcotest.failf "fiber %s raised %s" name (Printexc.to_string e))
        result.Sched.exns;
      Alcotest.(check int) "all 32 commits acked" 32 !acked;
      Alcotest.(check int) "zero discipline violations (R8 honored)" 0
        (Discipline.violations ());
      Alcotest.(check bool) "epochs advanced with the batches" true
        (Logset.current_epoch db.Db.logs > 1);
      (* every fence target named by a surviving commit record is stable *)
      Logset.iteri db.Db.logs (fun _ m ->
          Logmgr.iter_from m (Logmgr.start_offset m) (fun r ->
              if r.Logrec.kind = Logrec.Commit then
                Alcotest.(check bool)
                  (Printf.sprintf "commit %d fence is stable" r.Logrec.txn)
                  true
                  (Logset.commit_valid db.Db.logs r)));
      let ix = Btree.index_id tree in
      let db' = Db.crash db in
      Trace.set_mode Trace.Off;
      let _report = Db.run_exn db' (fun () -> Db.restart db') in
      let tree' = Btree.open_existing db'.Db.benv ix in
      Alcotest.(check int) "all acked rows survive the crash" 32
        (Db.run_exn db' (fun () -> List.length (Btree.to_list tree'))))

(* the meta-fault: the commit path "forgets" to force every stream but the
   commit record's own before acknowledging — R8 must catch it the moment
   the ack event is emitted *)
let test_stream_fence_skip_trips_r8 () =
  clean (fun () ->
      (* tracing must be on before the logs are opened: R8(a) validates an
         ack against per-stream flushed baselines it learns from Log_open /
         Log_flush events, and skips streams it never saw open *)
      Trace.set_mode Trace.Check;
      let db, tree = fresh () in
      (* spread committed data over several streams so a commit's fence
         names more than just its own stream *)
      Db.run_exn db (fun () ->
          Db.with_txn db (fun txn ->
              for i = 0 to 39 do
                Btree.insert tree txn ~value:(v i) ~rid:(rid i)
              done));
      Crashpoint.enable_fault Crashpoint.fault_wal_stream_fence_skip;
      let tripped = ref false in
      (try
         Db.run_exn db (fun () ->
             let txn = Txnmgr.begin_txn db.Db.mgr in
             for i = 40 to 79 do
               Btree.insert tree txn ~value:(v i) ~rid:(rid i)
             done;
             Txnmgr.commit db.Db.mgr txn)
       with Discipline.Violation (Discipline.R8, _) -> tripped := true);
      Alcotest.(check bool) "R8 catches the skipped stream fence" true !tripped;
      Alcotest.(check bool) "violation counted" true (Discipline.violations () > 0))

(* ------------------------------------------------------------------ *)
(* Cross-stream transaction undo: one transaction's records span several
   streams; total rollback and restart undo must walk the per-stream
   chains merged in reverse gsn order and leave nothing behind. *)

let test_cross_stream_rollback () =
  let db, tree = fresh () in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 59 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  (* the committed data spans several streams already; now roll back *)
  let streams_touched txn =
    List.length (List.filter (fun (_, l) -> not (Lsn.is_nil l)) (Txnmgr.touched txn))
  in
  let spanned = ref 0 in
  Db.run_exn db (fun () ->
      let txn = Txnmgr.begin_txn db.Db.mgr in
      for i = 60 to 119 do
        Btree.insert tree txn ~value:(v i) ~rid:(rid i)
      done;
      Btree.delete tree txn ~value:(v 3) ~rid:(rid 3);
      Btree.delete tree txn ~value:(v 37) ~rid:(rid 37);
      spanned := streams_touched txn;
      Txnmgr.rollback db.Db.mgr txn);
  Alcotest.(check bool) "the rolled-back txn really spanned streams" true (!spanned >= 2);
  Db.run_exn db (fun () ->
      Btree.check_invariants tree;
      Alcotest.(check int) "rollback restored exactly the committed rows" 60
        (List.length (Btree.to_list tree)))

let test_cross_stream_restart_undo () =
  let db, tree = fresh () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = 0 to 59 do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done));
  (* a loser txn spanning streams, cut down by a crash before commit *)
  Db.run_exn db (fun () ->
      let txn = Txnmgr.begin_txn db.Db.mgr in
      for i = 60 to 119 do
        Btree.insert tree txn ~value:(v i) ~rid:(rid i)
      done;
      Logset.flush_all db.Db.logs);
  let db' = Db.crash db in
  let report = Db.run_exn db' (fun () -> Db.restart db') in
  Alcotest.(check bool) "the loser was found" true (report.Restart.rp_losers <> []);
  let tree' = Btree.open_existing db'.Db.benv ix in
  Db.run_exn db' (fun () ->
      Btree.check_invariants tree';
      Alcotest.(check int) "restart undid the cross-stream loser" 60
        (List.length (Btree.to_list tree')))

(* ------------------------------------------------------------------ *)
(* Torn tail on one stream only: each stream's survivors are a hole-free
   prefix, but a crash can truncate one stream's tail while another —
   holding the commit record — survives intact. The commit's fence vector
   is what tells recovery the difference. *)

let test_torn_tail_one_stream () =
  let logs = Logset.create ~streams:2 () in
  let p0 = pid_on logs 0 and p1 = pid_on logs 1 in
  let upd txn page prev =
    Logrec.make ~page ~rm_id:1 ~op:1 ~body:(Bytes.of_string "x") ~txn ~prev_lsn:prev
      Logrec.Update
  in
  (* txn 1: updates on both streams, commit fully forced *)
  let a0 = Logset.append logs ~stream:0 (upd 1 p0 Lsn.nil) in
  let a1 = Logset.append logs ~stream:1 (upd 1 p1 Lsn.nil) in
  let c1 =
    Logset.append logs ~stream:0
      (Logrec.make
         ~body:(Logset.encode_commit_targets [ (0, a0); (1, a1) ])
         ~txn:1 ~prev_lsn:a0 Logrec.Commit)
  in
  Logset.flush_all logs;
  (* txn 2: stream 1 carries its update; stream 0 carries its commit; only
     stream 0 gets forced — the crash tears exactly stream 1's tail *)
  let b1 = Logset.append logs ~stream:1 (upd 2 p1 Lsn.nil) in
  let c2 =
    Logset.append logs ~stream:0
      (Logrec.make
         ~body:(Logset.encode_commit_targets [ (1, b1) ])
         ~txn:2 ~prev_lsn:Lsn.nil Logrec.Commit)
  in
  Logmgr.flush (Logset.stream logs 0);
  Logset.crash logs;
  (* stream 0 survived whole; stream 1 lost exactly its unflushed tail *)
  Alcotest.(check bool) "commit 2's record survived" true
    (c2 < Logmgr.end_offset (Logset.stream logs 0));
  Alcotest.(check bool) "stream 1's torn tail is gone" true
    (b1 >= Logmgr.end_offset (Logset.stream logs 1));
  Alcotest.(check bool) "stream 1's surviving prefix is intact" true
    (a1 < Logmgr.end_offset (Logset.stream logs 1));
  let r1 = Logmgr.read (Logset.stream logs 0) c1 in
  let r2 = Logmgr.read (Logset.stream logs 0) c2 in
  Alcotest.(check bool) "fully forced commit validates" true (Logset.commit_valid logs r1);
  Alcotest.(check bool) "commit whose fence target was torn away does not" false
    (Logset.commit_valid logs r2)

(* ------------------------------------------------------------------ *)
(* Checkpoint and truncation are per stream: the checkpoint pair and the
   master record live on the control stream only, reclamation advances
   every stream's start, and recovery still works from the archive. *)

let test_checkpoint_truncation_per_stream () =
  let db, tree = fresh ~segment_size:2048 () in
  let ix = Btree.index_id tree in
  Db.run_exn db (fun () ->
      for b = 0 to 7 do
        Db.with_txn db (fun txn ->
            for i = 0 to 19 do
              let k = (b * 20) + i in
              Btree.insert tree txn ~value:(v k) ~rid:(rid k)
            done)
      done);
  Db.run_exn db (fun () -> Db.checkpoint db);
  (* checkpoint records live on the control stream only *)
  let ckpts_on m =
    let n = ref 0 in
    Logmgr.iter_from m (Logmgr.start_offset m) (fun r ->
        match r.Logrec.kind with
        | Logrec.Begin_ckpt | Logrec.End_ckpt -> incr n
        | _ -> ());
    !n
  in
  Alcotest.(check bool) "checkpoint pair on the control stream" true
    (ckpts_on (Logset.control db.Db.logs) >= 2);
  for s = 1 to Logset.n db.Db.logs - 1 do
    Alcotest.(check int)
      (Printf.sprintf "no checkpoint records on stream %d" s)
      0
      (ckpts_on (Logset.stream db.Db.logs s))
  done;
  (* write more so sealed segments fall below the safety point, then trim *)
  Db.run_exn db (fun () ->
      for b = 8 to 15 do
        Db.with_txn db (fun txn ->
            for i = 0 to 19 do
              let k = (b * 20) + i in
              Btree.insert tree txn ~value:(v k) ~rid:(rid k)
            done)
      done;
      (* clean the pool so the checkpoint's min recLSN does not pin the
         safety point inside the sealed segments we want reclaimed *)
      Bufpool.flush_all db.Db.pool;
      Db.checkpoint db);
  let reclaimed = Db.run_exn db (fun () -> Db.trim_log db) in
  Alcotest.(check bool) "trim reclaimed sealed segments" true (reclaimed > 0);
  Alcotest.(check bool) "some stream's start offset advanced" true
    (List.exists
       (fun s -> Logmgr.start_offset (Logset.stream db.Db.logs s) > 0)
       (List.init (Logset.n db.Db.logs) Fun.id));
  (* recovery over the truncated set still converges *)
  let db' = Db.crash db in
  let _report = Db.run_exn db' (fun () -> Db.restart db') in
  let tree' = Btree.open_existing db'.Db.benv ix in
  Db.run_exn db' (fun () ->
      Btree.check_invariants tree';
      Alcotest.(check int) "all rows survive truncation + crash" 320
        (List.length (Btree.to_list tree')))

(* ------------------------------------------------------------------ *)
(* flush_to clamps below the stream's start: media repair rebuilds a page
   whose pageLSN is an archived record; the WAL-rule force on the page's
   own stream must treat it as already stable instead of probing the
   reclaimed segment — on every stream, not just the control stream. *)

let test_flush_to_archived_clamp () =
  let logs = Logset.create ~segment_size:512 ~streams:2 () in
  let p1 = pid_on logs 1 in
  let first = ref Lsn.nil in
  for i = 1 to 40 do
    let l =
      Logset.append logs ~stream:1
        (Logrec.make ~page:p1 ~rm_id:1 ~op:1
           ~body:(Bytes.of_string (String.make 24 'x'))
           ~txn:1
           ~prev_lsn:(if i = 1 then Lsn.nil else Lsn.nil)
           Logrec.Update)
    in
    if i = 1 then first := l
  done;
  Logset.flush_all logs;
  let m1 = Logset.stream logs 1 in
  let dropped = Logmgr.truncate_prefix m1 ~upto:(Logmgr.end_offset m1 - 1) in
  Alcotest.(check bool) "prefix segments were reclaimed" true (dropped > 0);
  Alcotest.(check bool) "the first record is now archived" true
    (!first < Logmgr.start_offset m1);
  (* the clamp: forcing to an archived pageLSN is a no-op, not an error *)
  Logmgr.flush_to m1 !first;
  Alcotest.(check bool) "live lsn still forces" true
    (let last = Logmgr.last_lsn m1 in
     Logmgr.flush_to m1 last;
     Logmgr.is_stable m1 last)

(* ------------------------------------------------------------------ *)
(* Multi-stream NTA anchor: a bracket that moved several streams is fenced
   by one anchor CLR on the control stream; rollback honors the jumps only
   while the whole bracket survives everywhere, so a crash can never keep
   one stream's half of an SMO fenced while exposing another's. *)

let test_nta_anchor_atomicity () =
  let db, _tree = fresh () in
  let mgr = db.Db.mgr in
  let logs = db.Db.logs in
  let undone = ref [] in
  Txnmgr.register_rm mgr ~rm_id:42
    ~redo:(fun _ -> ())
    ~undo:(fun txn r ->
      undone := r.Logrec.op :: !undone;
      ignore
        (Txnmgr.log_clr mgr txn ~page:r.Logrec.page ~rm_id:42
           ~undo_nxt:r.Logrec.prev_lsn ()))
    ();
  let p0 = pid_on logs 0 and p1 = pid_on logs 1 and p2 = pid_on logs 2 in
  let upd txn page op =
    Txnmgr.log_update mgr txn ~page ~redoable:false ~rm_id:42 ~op ~body:Bytes.empty ()
  in
  Db.run_exn db (fun () ->
      let txn = Txnmgr.begin_txn mgr in
      ignore (upd txn p0 1);
      (* the bracket: an "SMO" moving three streams *)
      let remembered = Txnmgr.nta_begin txn in
      ignore (upd txn p0 10);
      ignore (upd txn p1 11);
      ignore (upd txn p2 12);
      let anchor_lsn = Txnmgr.nta_end mgr txn remembered in
      let ctl = Txnmgr.txn_stream mgr txn.Txnmgr.txn_id in
      let anchor = Logmgr.read (Logset.stream logs ctl) anchor_lsn in
      Alcotest.(check bool) "the fence is an anchor CLR" true (Txnmgr.nta_anchor anchor);
      let jumps, fences = Txnmgr.decode_nta_body anchor.Logrec.body in
      Alcotest.(check int) "one jump per moved stream" 3 (List.length jumps);
      Alcotest.(check int) "one fence per moved stream" 3 (List.length fences);
      Alcotest.(check bool) "the intact bracket validates" true
        (Logset.targets_valid logs anchor fences);
      ignore (upd txn p0 2);
      (* rollback: the bracket is jumped over, everything else undone *)
      Txnmgr.rollback mgr txn;
      Alcotest.(check (list int)) "undo hit 2 then 1, never the bracket" [ 1; 2 ]
        !undone);
  (* the bracket's records went to streams a later committer never
     touches: its commit fence must still cover them (the global SMO
     fence), or recovery could roll the SMO back under committed data *)
  Db.run_exn db (fun () ->
      let txn = Txnmgr.begin_txn mgr in
      ignore (upd txn p0 3);
      Txnmgr.commit mgr txn;
      let cstream = Logset.stream logs (Txnmgr.txn_stream mgr txn.Txnmgr.txn_id) in
      let commit = ref None in
      Logmgr.iter_from cstream (Logmgr.start_offset cstream) (fun r ->
          if r.Logrec.kind = Logrec.Commit && r.Logrec.txn = txn.Txnmgr.txn_id then
            commit := Some r);
      match !commit with
      | None -> Alcotest.fail "commit record not found"
      | Some c ->
          let targets = Logset.decode_commit_targets c.Logrec.body in
          Alcotest.(check bool) "commit fence covers the SMO's streams" true
            (List.mem_assoc 1 targets && List.mem_assoc 2 targets))

(* a crash that keeps the anchor but tears away one moved stream's bracket
   records invalidates the anchor: rollback must fall back to physical
   undo of the surviving halves *)
let test_nta_anchor_torn_bracket () =
  let logs = Logset.create ~streams:3 () in
  let lockmgr = Aries_lock.Lockmgr.create () in
  let mgr = Txnmgr.create logs lockmgr in
  Txnmgr.register_rm mgr ~rm_id:42 ~redo:(fun _ -> ()) ~undo:(fun _ _ -> ()) ();
  let txn = Txnmgr.begin_txn mgr in
  (* pick the bracket's two streams away from the txn's control stream:
     the anchor lives on [ctl], which we force — the moved stream we tear
     away must be a different one or the flush below would save it too *)
  let ctl = Txnmgr.txn_stream mgr txn.Txnmgr.txn_id in
  let sa, sb =
    match List.filter (fun s -> s <> ctl) [ 0; 1; 2 ] with
    | a :: b :: _ -> (a, b)
    | _ -> assert false
  in
  let pa = pid_on logs sa and pb = pid_on logs sb in
  let upd page op =
    Txnmgr.log_update mgr txn ~page ~redoable:false ~rm_id:42 ~op ~body:Bytes.empty ()
  in
  let remembered = Txnmgr.nta_begin txn in
  ignore (upd pa 10);
  let b2 = upd pb 11 in
  let anchor_lsn = Txnmgr.nta_end mgr txn remembered in
  (* force every stream except [sb] — the crash tears the bracket's
     [sb] half away while the anchor survives *)
  Logmgr.flush (Logset.stream logs sa);
  Logmgr.flush (Logset.stream logs ctl);
  Logset.crash logs;
  let anchor = Logmgr.read (Logset.stream logs ctl) anchor_lsn in
  Alcotest.(check bool) "anchor survived" true (Txnmgr.nta_anchor anchor);
  Alcotest.(check bool) "its torn-stream bracket record did not" true
    (b2 >= Logmgr.end_offset (Logset.stream logs sb));
  let _, fences = Txnmgr.decode_nta_body anchor.Logrec.body in
  Alcotest.(check bool) "the torn bracket no longer validates" false
    (Logset.targets_valid logs anchor fences)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "multistream"
    [
      ( "equivalence",
        [ Alcotest.test_case "N=1 is byte-for-byte a bare Logmgr" `Quick test_n1_equivalence ]
      );
      ("codec", [ QCheck_alcotest.to_alcotest qcheck_v3_codec ]);
      ( "epoch-fence",
        [
          Alcotest.test_case "acks wait for every touched stream" `Quick
            test_epoch_fence_ack_ordering;
          Alcotest.test_case "stream-fence-skip fault trips R8" `Quick
            test_stream_fence_skip_trips_r8;
        ] );
      ( "cross-stream-undo",
        [
          Alcotest.test_case "total rollback spans streams" `Quick test_cross_stream_rollback;
          Alcotest.test_case "restart undoes a cross-stream loser" `Quick
            test_cross_stream_restart_undo;
        ] );
      ( "crash-shapes",
        [ Alcotest.test_case "torn tail on one stream only" `Quick test_torn_tail_one_stream ]
      );
      ( "checkpoint",
        [
          Alcotest.test_case "checkpoint + truncation are per stream" `Quick
            test_checkpoint_truncation_per_stream;
          Alcotest.test_case "flush_to clamps archived pageLSNs" `Quick
            test_flush_to_archived_clamp;
        ] );
      ( "nta-anchor",
        [
          Alcotest.test_case "multi-stream bracket is one atomic fence" `Quick
            test_nta_anchor_atomicity;
          Alcotest.test_case "torn bracket invalidates the anchor" `Quick
            test_nta_anchor_torn_bracket;
        ] );
    ]
