(* The group-commit pipeline and the background page cleaner, measured by
   the Stats counters they must (and must not) move:

   - 16 concurrent committers cost 16 log forces under per-commit forcing
     and at least 4x fewer (one full batch) under group commit;
   - WAL-rule forces on the steal/eviction/cleaner path are synchronous —
     never routed through the commit queue, never counted as a batch;
   - [Db.close] inside a run forces the pending batch (every acknowledged
     commit was forced, none is dropped) and joins both daemons;
   - a run cut mid-batch never acknowledges the queued commit, and restart
     recovers a state without it;
   - the cleaner keeps the dirty-page table (and hence the restart redo
     scan) strictly smaller than a cleaner-less run of the same workload. *)

open Aries_util
module Btree = Aries_btree.Btree
module Bufpool = Aries_buffer.Bufpool
module Cleaner = Aries_buffer.Cleaner
module Lockmgr = Aries_lock.Lockmgr
module Txnmgr = Aries_txn.Txnmgr
module Group_commit = Aries_txn.Group_commit
module Sched = Aries_sched.Sched
module Db = Aries_db.Db

let v i = Printf.sprintf "key%05d" i

let rid i = { Ids.rid_page = 900 + (i / 100); rid_slot = i mod 100 }

let make_db ?(page_size = 512) ?commit_mode ?cleaner () =
  let db = Db.create ~page_size ?commit_mode ?cleaner () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"cp" ~unique:false))
  in
  (db, tree)

let check_run (result : Sched.result) =
  List.iter
    (fun (_, name, e) -> Alcotest.failf "fiber %s raised %s" name (Printexc.to_string e))
    result.Sched.exns;
  match result.Sched.outcome with
  | Sched.Completed -> ()
  | Sched.Stalled ids -> Alcotest.failf "stalled with %d suspended fiber(s)" (List.length ids)
  | Sched.Interrupted live -> Alcotest.failf "step budget exhausted with %d live fiber(s)" live

(* n fibers, each one insert + one commit, under a deterministic Fifo
   schedule: every committer reaches its commit before the daemon's next
   slice, so group mode sees one full batch. *)
let commit_storm db tree ~n =
  check_run
    (Db.run ~policy:Sched.Fifo db (fun () ->
         for i = 1 to n do
           ignore
             (Sched.spawn
                ~name:(Printf.sprintf "commit-%02d" i)
                (fun () ->
                  let txn = Txnmgr.begin_txn db.Db.mgr in
                  Btree.insert tree txn ~value:(v i) ~rid:(rid i);
                  Txnmgr.commit db.Db.mgr txn))
         done))

(* The headline regression: per-commit forcing pays one synchronous force
   per committer; the batched pipeline covers all 16 with >= 4x fewer (in
   fact one). *)
let test_batched_forces () =
  let db_pc, tree_pc = make_db ~commit_mode:Db.Per_commit () in
  let s_pc = Stats.create () in
  Stats.with_sink s_pc (fun () -> commit_storm db_pc tree_pc ~n:16);
  Alcotest.(check int) "per-commit: one force per committer" 16
    (Stats.get s_pc Stats.log_forces);
  Alcotest.(check int) "per-commit: no batches" 0 (Stats.get s_pc Stats.commit_batches);
  Alcotest.(check int) "per-commit: no group waits" 0
    (Stats.get s_pc Stats.commit_group_waits);

  let db_gc, tree_gc =
    make_db
      ~commit_mode:(Db.Group { Group_commit.max_batch = 16; max_delay_steps = 64 })
      ()
  in
  let s_gc = Stats.create () in
  Stats.with_sink s_gc (fun () -> commit_storm db_gc tree_gc ~n:16);
  let forces = Stats.get s_gc Stats.log_forces in
  Alcotest.(check bool)
    (Printf.sprintf "group commit >= 4x fewer forces (16 vs %d)" forces)
    true
    (forces * 4 <= 16);
  Alcotest.(check int) "all 16 committers enqueued" 16
    (Stats.get s_gc Stats.commit_group_waits);
  Alcotest.(check int) "all 16 covered by batched forces" 16
    (Stats.get s_gc Stats.commit_batch_size);
  Alcotest.(check int) "one full batch of 16 in the histogram" 1
    (Stats.get s_gc (Stats.commit_batch_bucket 16));
  (match db_gc.Db.gc with
  | Some gc -> Alcotest.(check int) "commit queue drained" 0 (Group_commit.pending gc)
  | None -> Alcotest.fail "group-commit queue missing");
  (* the batched acks were honest: every insert survives a crash *)
  let db' = Db.crash db_gc in
  Db.run_exn db' (fun () ->
      ignore (Db.restart db');
      let tree' = Btree.open_existing db'.Db.benv (Btree.index_id tree_gc) in
      Alcotest.(check int) "all 16 batched commits survive the crash" 16
        (List.length (Btree.to_list tree')))

(* The WAL rule is never batched or deferred: a dirty-page write on the
   cleaner trickle path and on the flush/eviction path forces the log
   synchronously, inside the caller, touching neither the commit queue nor
   the batch counters. *)
let test_wal_rule_forces_synchronous () =
  let db, tree =
    make_db ~page_size:384
      ~commit_mode:(Db.Group { Group_commit.max_batch = 8; max_delay_steps = 4 })
      ()
  in
  Db.run_exn db (fun () ->
      let txn = Txnmgr.begin_txn db.Db.mgr in
      for i = 1 to 20 do
        Btree.insert tree txn ~value:(v i) ~rid:(rid i)
      done;
      let s = Stats.create () in
      let cleaned =
        Stats.with_sink s (fun () -> Bufpool.clean_some db.Db.pool ~max_pages:2)
      in
      Alcotest.(check int) "cleaner trickle wrote its quota" 2 cleaned;
      Alcotest.(check bool) "trickle forced the log synchronously" true
        (Stats.get s Stats.log_forces > 0);
      Alcotest.(check int) "trickle: no commit batch" 0 (Stats.get s Stats.commit_batches);
      Alcotest.(check int) "trickle: no group wait" 0
        (Stats.get s Stats.commit_group_waits);
      let s2 = Stats.create () in
      Stats.with_sink s2 (fun () -> Bufpool.flush_all db.Db.pool);
      Alcotest.(check bool) "page writes flushed" true
        (Stats.get s2 Stats.page_writes > 0);
      Alcotest.(check bool) "flush forced the log synchronously" true
        (Stats.get s2 Stats.log_forces > 0);
      Alcotest.(check int) "flush: no commit batch" 0 (Stats.get s2 Stats.commit_batches);
      Alcotest.(check int) "flush: no group wait" 0 (Stats.get s2 Stats.commit_group_waits);
      Txnmgr.commit db.Db.mgr txn)

(* [Db.close] with a batch pending: the drain forces immediately (the
   waiting committer is acknowledged — never dropped, never acked
   unforced), both daemons join, and the environment is quiescent. *)
let test_close_drains_and_joins () =
  let db =
    Db.create ~page_size:512
      ~commit_mode:(Db.Group { Group_commit.max_batch = 64; max_delay_steps = 100_000 })
      ~cleaner:{ Cleaner.interval_steps = 8; batch_pages = 2 }
      ()
  in
  let gc = match db.Db.gc with Some gc -> gc | None -> Alcotest.fail "no gc queue" in
  let acked_create = ref false in
  let acked_insert = ref false in
  let tree_ref = ref None in
  let result =
    Db.run ~policy:Sched.Fifo db (fun () ->
        ignore
          (Sched.spawn ~name:"committer" (fun () ->
               (* this commit enqueues and would wait 100k steps for its
                  window: only the close drain can release it promptly *)
               let tree =
                 Db.with_txn db (fun txn ->
                     Btree.create db.Db.benv txn ~name:"cp" ~unique:false)
               in
               acked_create := true;
               tree_ref := Some tree;
               (* by now the db is closed: this commit must force
                  synchronously rather than wait on a daemon-less queue *)
               let txn = Txnmgr.begin_txn db.Db.mgr in
               Btree.insert tree txn ~value:(v 1) ~rid:(rid 1);
               Txnmgr.commit db.Db.mgr txn;
               acked_insert := true));
        ignore
          (Sched.spawn ~name:"closer" (fun () ->
               while Group_commit.pending gc = 0 do
                 Sched.yield ()
               done;
               Db.close db;
               if Db.daemons_running db <> 0 then Alcotest.fail "daemons survived close";
               if Group_commit.pending gc <> 0 then
                 Alcotest.fail "close left a committer waiting";
               if Sched.daemons_now () <> 0 then
                 Alcotest.fail "scheduler still counts live daemons")))
  in
  check_run result;
  Alcotest.(check bool) "queued commit acked by the drain force" true !acked_create;
  Alcotest.(check bool) "post-close commit acked synchronously" true !acked_insert;
  Alcotest.(check (list string)) "environment quiescent" [] (Db.leak_report db);
  Alcotest.(check int) "no held locks" 0 (Lockmgr.total_held db.Db.locks);
  Alcotest.(check int) "no held latches" 0 (Bufpool.latched_count db.Db.pool);
  Alcotest.(check int) "no fixed frames" 0 (Bufpool.fixed_count db.Db.pool);
  (* both acks were honest: everything survives a crash *)
  let tree = match !tree_ref with Some t -> t | None -> Alcotest.fail "tree missing" in
  let db' = Db.crash db in
  Db.run_exn db' (fun () ->
      ignore (Db.restart db');
      let tree' = Btree.open_existing db'.Db.benv (Btree.index_id tree) in
      Alcotest.(check bool) "acked insert survived the crash" true
        (List.exists (fun (value, _) -> String.equal value (v 1)) (Btree.to_list tree')))

(* A run cut (step budget = power failure at a scheduling boundary) while a
   commit sits in the daemon's open batch: the commit is never
   acknowledged, and restart recovers a state without it. *)
let test_crash_mid_batch_never_acks () =
  let db, tree =
    make_db ~page_size:384
      ~commit_mode:(Db.Group { Group_commit.max_batch = 4; max_delay_steps = 1_000 })
      ()
  in
  let gc = match db.Db.gc with Some gc -> gc | None -> Alcotest.fail "no gc queue" in
  let acked = ref false in
  let result =
    Db.run ~policy:Sched.Fifo ~max_steps:300 db (fun () ->
        ignore
          (Sched.spawn ~name:"victim" (fun () ->
               let txn = Txnmgr.begin_txn db.Db.mgr in
               Btree.insert tree txn ~value:(v 42) ~rid:(rid 42);
               Txnmgr.commit db.Db.mgr txn;
               acked := true)))
  in
  (match result.Sched.outcome with
  | Sched.Interrupted _ -> ()
  | Sched.Completed -> Alcotest.fail "run completed: the batch window never held"
  | Sched.Stalled _ -> Alcotest.fail "run stalled");
  Alcotest.(check int) "commit was waiting in the open batch" 1 (Group_commit.pending gc);
  Alcotest.(check bool) "cut commit never acknowledged" false !acked;
  let db' = Db.crash db in
  Db.run_exn db' (fun () ->
      ignore (Db.restart db');
      let tree' = Btree.open_existing db'.Db.benv (Btree.index_id tree) in
      Btree.check_invariants tree';
      Alcotest.(check bool) "unacknowledged insert not recovered" true
        (not (List.exists (fun (value, _) -> String.equal value (v 42)) (Btree.to_list tree'))));
  Alcotest.(check (list string)) "quiescent after restart" [] (Db.leak_report db');
  Alcotest.(check int) "no latches after restart" 0 (Bufpool.latched_count db'.Db.pool);
  Alcotest.(check int) "no locks after restart" 0 (Lockmgr.total_held db'.Db.locks)

(* The same sequential workload with and without the cleaner: the cleaner
   must write pages, keep the dirty-page table strictly smaller, and — via
   the checkpoint's recLSN horizon — make the restart redo scan strictly
   shorter. *)
let cleaner_trial ?cleaner () =
  let db, tree = make_db ~page_size:384 ?cleaner () in
  let s = Stats.create () in
  Stats.with_sink s (fun () ->
      Db.run_exn db (fun () ->
          for i = 1 to 120 do
            Db.with_txn db (fun txn -> Btree.insert tree txn ~value:(v i) ~rid:(rid i));
            (* give the cleaner its slices between transactions *)
            Sched.yield ()
          done));
  let dirty = List.length (Bufpool.dirty_page_table db.Db.pool) in
  Db.checkpoint db;
  let db' = Db.crash db in
  let report = Db.run_exn db' (fun () -> Db.restart db') in
  Db.run_exn db' (fun () ->
      let tree' = Btree.open_existing db'.Db.benv (Btree.index_id tree) in
      Btree.check_invariants tree';
      Alcotest.(check int) "all 120 committed inserts recovered" 120
        (List.length (Btree.to_list tree')));
  (s, dirty, report)

let test_cleaner_bounds_redo () =
  let s_off, dirty_off, report_off = cleaner_trial () in
  let s_on, dirty_on, report_on =
    cleaner_trial ~cleaner:{ Cleaner.interval_steps = 4; batch_pages = 4 } ()
  in
  Alcotest.(check int) "no cleaner: nothing trickled" 0
    (Stats.get s_off Stats.cleaner_pages_written);
  Alcotest.(check bool) "cleaner wrote pages" true
    (Stats.get s_on Stats.cleaner_pages_written > 0);
  Alcotest.(check bool) "cleaner ran rounds" true (Stats.get s_on Stats.cleaner_rounds > 0);
  Alcotest.(check bool)
    (Printf.sprintf "dirty-page table smaller with cleaner (%d vs %d)" dirty_on dirty_off)
    true (dirty_on < dirty_off);
  let scanned r = r.Aries_recovery.Restart.rp_records_redo_scanned in
  Alcotest.(check bool)
    (Printf.sprintf "redo scan shorter with cleaner (%d vs %d)" (scanned report_on)
       (scanned report_off))
    true
    (scanned report_on < scanned report_off);
  Alcotest.(check bool) "fewer redos applied with cleaner" true
    (report_on.Aries_recovery.Restart.rp_redos_applied
    <= report_off.Aries_recovery.Restart.rp_redos_applied)

let () =
  Alcotest.run "commit_pipeline"
    [
      ( "commit-pipeline",
        [
          Alcotest.test_case "16 committers: batched vs per-commit forces" `Quick
            test_batched_forces;
          Alcotest.test_case "WAL-rule forces are synchronous, never batched" `Quick
            test_wal_rule_forces_synchronous;
          Alcotest.test_case "close drains the batch and joins daemons" `Quick
            test_close_drains_and_joins;
          Alcotest.test_case "crash mid-batch never acknowledges" `Quick
            test_crash_mid_batch_never_acks;
          Alcotest.test_case "cleaner bounds dirty pages and redo scan" `Quick
            test_cleaner_bounds_redo;
        ] );
    ]
