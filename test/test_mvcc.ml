(* Protocol #5: MVCC snapshot reads (PR 8). Snapshot isolation held across
   concurrent split/merge SMOs, readers vs a rolled-back writer, the GC
   horizon protecting live-snapshot-reachable versions, crash mid-GC
   converging back to the committed oracle, the R9 meta-fault
   ([mvcc.reader-key-lock]) caught end-to-end by the discipline checker,
   and the version-chain/CSN codec property-tested with 1000 seeded
   cases (like the v3 frame and lock-list codecs). *)

open Aries_util
module Btree = Aries_btree.Btree
module Mvstore = Aries_btree.Mvstore
module Protocol = Aries_btree.Protocol
module Txnmgr = Aries_txn.Txnmgr
module Sched = Aries_sched.Sched
module Db = Aries_db.Db
module Trace = Aries_trace.Trace
module Discipline = Aries_trace.Discipline

let rid i = { Ids.rid_page = 900 + (i / 100); rid_slot = i mod 100 }

let v i = Printf.sprintf "key%05d" i

let mvcc_cfg = { Btree.default_config with Btree.locking = Protocol.Mvcc }

let fresh ?(page_size = 384) ?(unique = true) () =
  let db = Db.create ~page_size ~config:mvcc_cfg () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create ~config:mvcc_cfg db.Db.benv txn ~name:"mv" ~unique))
  in
  (db, tree)

let seed_keys db tree lo hi =
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = lo to hi do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done))

let clean f =
  Crashpoint.disarm ();
  Crashpoint.clear_faults ();
  Trace.reset ();
  Discipline.reset ();
  Fun.protect f ~finally:(fun () ->
      Crashpoint.disarm ();
      Crashpoint.clear_faults ();
      Trace.set_mode Trace.Off;
      Trace.reset ();
      Discipline.reset ())

let scan_values tree txn =
  let c = Btree.open_scan tree txn "" in
  let rec go acc =
    match Btree.fetch_next tree txn c () with
    | Some k -> go (k.Aries_page.Key.value :: acc)
    | None -> List.rev acc
  in
  go []

(* ------------------------------------------------------------------ *)
(* Snapshot isolation across concurrent split and merge SMOs: a pinned
   snapshot keeps returning its state while committed writers grow and
   shrink the tree through real structure modifications. *)

let test_snapshot_across_smos () =
  let db, tree = fresh () in
  seed_keys db tree 0 29;
  let s = Stats.create () in
  Stats.with_sink s (fun () ->
      Db.run_exn db (fun () ->
          let r = Txnmgr.begin_txn db.Db.mgr in
          (* pin the snapshot before the writers commit anything *)
          Alcotest.(check bool) "pin fetch" true (Btree.fetch tree r (v 0) <> None);
          (* writer A: enough inserts to split leaves *)
          Db.with_txn db (fun a ->
              for i = 30 to 59 do
                Btree.insert tree a ~value:(v i) ~rid:(rid i)
              done);
          (* writer B: enough deletes to empty leaves and merge them away *)
          Db.with_txn db (fun b ->
              for i = 0 to 19 do
                Btree.delete tree b ~value:(v i) ~rid:(rid i)
              done);
          Alcotest.(check (list string)) "the pinned snapshot still sees its state"
            (List.init 30 v) (scan_values tree r);
          Alcotest.(check bool) "a key inserted after the pin is invisible" true
            (Btree.fetch tree r (v 45) = None);
          Alcotest.(check bool) "a key deleted after the pin is still visible" true
            (Btree.fetch tree r (v 10) <> None);
          Txnmgr.commit db.Db.mgr r;
          (* a fresh snapshot sees the writers' final state *)
          Db.with_txn db (fun r2 ->
              Alcotest.(check (list string)) "a new snapshot sees the new state"
                (List.init 40 (fun i -> v (i + 20)))
                (scan_values tree r2))));
  Alcotest.(check bool) "the writers really split" true (Stats.get s Stats.smo_splits > 0);
  Alcotest.(check bool) "the writers really merged" true
    (Stats.get s Stats.smo_page_deletes > 0);
  Btree.check_invariants tree;
  Alcotest.(check (list string)) "quiescent: no leaks" [] (Db.leak_report db)

(* ------------------------------------------------------------------ *)
(* Reader vs rollback: a loser's pending versions never surface, and its
   rollback drains them (audited by leak_report). *)

let test_reader_vs_rollback () =
  let db, tree = fresh () in
  seed_keys db tree 0 9;
  Db.run_exn db (fun () ->
      let l = Txnmgr.begin_txn db.Db.mgr in
      Btree.delete tree l ~value:(v 3) ~rid:(rid 3);
      Btree.insert tree l ~value:"key00003z" ~rid:(rid 333);
      let r = Txnmgr.begin_txn db.Db.mgr in
      Alcotest.(check bool) "the loser's delete is invisible" true
        (Btree.fetch tree r (v 3) <> None);
      Alcotest.(check bool) "the loser's insert is invisible" true
        (Btree.fetch tree r "key00003z" = None);
      Txnmgr.rollback db.Db.mgr l;
      Alcotest.(check bool) "still visible after the rollback" true
        (Btree.fetch tree r (v 3) <> None);
      Txnmgr.commit db.Db.mgr r;
      Db.with_txn db (fun r2 ->
          Alcotest.(check bool) "rolled-back delete undone for new snapshots" true
            (Btree.fetch tree r2 (v 3) <> None);
          Alcotest.(check bool) "rolled-back insert gone for new snapshots" true
            (Btree.fetch tree r2 "key00003z" = None)));
  Btree.check_invariants tree;
  Alcotest.(check (list string)) "the loser's pending versions were drained" []
    (Db.leak_report db)

(* ------------------------------------------------------------------ *)
(* GC vs live snapshots: a version a pinned snapshot can still reach is
   never reclaimed; once the pin lifts, it is. *)

let test_gc_respects_live_snapshots () =
  let db, tree = fresh () in
  seed_keys db tree 0 9;
  Db.run_exn db (fun () ->
      let r = Txnmgr.begin_txn db.Db.mgr in
      Alcotest.(check bool) "pin fetch" true (Btree.fetch tree r (v 5) <> None);
      Db.with_txn db (fun w -> Btree.delete tree w ~value:(v 5) ~rid:(rid 5));
      (* GC under the pin: the horizon is the reader's snapshot, so the
         version r needs must survive (other single-version chains that
         agree with the tree may collapse) *)
      ignore (Db.vgc_once db);
      Alcotest.(check bool) "the pinned snapshot still sees the deleted key" true
        (Btree.fetch tree r (v 5) <> None);
      Txnmgr.commit db.Db.mgr r;
      (* pin lifted: the horizon advances to the log tip and the dead
         chain is reclaimable *)
      let reclaimed = Db.vgc_once db in
      Alcotest.(check bool) "the dead versions are reclaimed after unpin" true (reclaimed > 0);
      Db.with_txn db (fun r2 ->
          Alcotest.(check bool) "new snapshots see the delete" true
            (Btree.fetch tree r2 (v 5) = None)));
  Alcotest.(check (list string)) "quiescent: no leaks" [] (Db.leak_report db)

(* ------------------------------------------------------------------ *)
(* Crash mid-GC converges to the oracle. The version store is volatile,
   so a crash part-way through a GC round is indistinguishable from a
   crash just after it: all chains are discarded either way and restart
   rebuilds them from the log. Crash with a committed overwrite, a
   reclaimed round, and an in-flight loser; recovery must serve exactly
   the committed state. *)

let test_crash_mid_gc_converges () =
  let db, tree = fresh () in
  seed_keys db tree 0 9;
  Db.run_exn db (fun () ->
      (* committed churn: delete + reinsert key 1 under a new rid *)
      Db.with_txn db (fun w ->
          Btree.delete tree w ~value:(v 1) ~rid:(rid 1);
          Btree.insert tree w ~value:(v 1) ~rid:(rid 101));
      ignore (Db.vgc_once db);
      (* the loser: uncommitted delete, caught by the crash *)
      let l = Txnmgr.begin_txn db.Db.mgr in
      Btree.delete tree l ~value:(v 2) ~rid:(rid 2));
  let db' = Db.crash db in
  let _report = Db.run_exn db' (fun () -> Db.restart db') in
  let tree' = Btree.open_existing db'.Db.benv (Btree.index_id tree) in
  Btree.check_invariants tree';
  Db.run_exn db' (fun () ->
      Db.with_txn db' (fun r ->
          Alcotest.(check (list string)) "snapshot reads converge to the committed oracle"
            (List.init 10 v) (scan_values tree' r);
          Alcotest.(check bool) "the loser's delete was undone" true
            (Btree.fetch tree' r (v 2) <> None)));
  Alcotest.(check (list string)) "quiescent after restart: no leaks" [] (Db.leak_report db')

(* ------------------------------------------------------------------ *)
(* The R9 meta-fault: force the snapshot reader to issue a real key-lock
   request inside its wait-free window; the discipline checker must trip
   the moment the Lock_request event is emitted. *)

let test_r9_meta_fault () =
  clean (fun () ->
      Trace.set_mode Trace.Check;
      let db, tree = fresh () in
      seed_keys db tree 0 9;
      Crashpoint.enable_fault Crashpoint.fault_mvcc_reader_key_lock;
      let tripped = ref false in
      (try
         Db.run_exn db (fun () ->
             Db.with_txn db (fun txn -> ignore (Btree.fetch tree txn (v 3))))
       with Discipline.Violation (Discipline.R9, _) -> tripped := true);
      Alcotest.(check bool) "R9 catches the reader's key lock" true !tripped;
      Alcotest.(check bool) "violation counted" true (Discipline.violations () > 0))

(* ------------------------------------------------------------------ *)
(* Version-chain / CSN codec: 1000 seeded random chain lists roundtrip
   through encode_chains/decode_chains. *)

let gen_chain : Mvstore.dump_chain QCheck.Gen.t =
 fun st ->
  let int lo hi = QCheck.Gen.int_range lo hi st in
  let n = int 1 6 in
  let versions =
    List.init n (fun _ ->
        {
          Mvstore.dv_present = int 0 1 = 1;
          dv_csn =
            (if int 0 3 = 0 then None
             else Some { Mvstore.cs_epoch = int 0 1_000_000; cs_gsn = int 0 10_000_000 });
          dv_txn = int 0 100_000;
        })
  in
  {
    Mvstore.dc_value = QCheck.Gen.(string_size (int_range 0 32)) st;
    dc_rid = { Ids.rid_page = int 0 100_000; rid_slot = int 0 10_000 };
    dc_base = int 0 1 = 1;
    dc_versions = versions;
  }

let qcheck_chain_codec =
  QCheck.Test.make ~name:"version-chain/CSN codec roundtrip x1000" ~count:1000
    (QCheck.make QCheck.Gen.(list_size (int_range 0 8) gen_chain))
    (fun chains -> Mvstore.decode_chains (Mvstore.encode_chains chains) = chains)

let () =
  Alcotest.run "mvcc"
    [
      ( "snapshot-isolation",
        [
          Alcotest.test_case "snapshot survives split+merge SMOs" `Quick
            test_snapshot_across_smos;
          Alcotest.test_case "reader vs rollback" `Quick test_reader_vs_rollback;
        ] );
      ( "gc",
        [
          Alcotest.test_case "GC never reclaims a live-snapshot-reachable version" `Quick
            test_gc_respects_live_snapshots;
          Alcotest.test_case "crash mid-GC converges to the oracle" `Quick
            test_crash_mid_gc_converges;
        ] );
      ("r9", [ Alcotest.test_case "reader-key-lock meta-fault trips R9" `Quick test_r9_meta_fault ]);
      ("codec", [ QCheck_alcotest.to_alcotest qcheck_chain_codec ]);
    ]
