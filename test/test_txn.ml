(* Transaction manager: PrevLSN chains, commit forcing, total and partial
   rollback through a mock resource manager, nested top actions, CLR
   chaining (bounded logging), deadlock-abort integration, and the
   checkpoint / lock-list codecs. *)

open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module L = Aries_lock.Lockmgr
module Txnmgr = Aries_txn.Txnmgr
module Lockcodec = Aries_txn.Lockcodec
module Checkpoint = Aries_recovery.Checkpoint
module Sched = Aries_sched.Sched

(* Mock resource manager: a register file. op 1 = set register; body =
   (reg, old, new). Undo writes a CLR with the values swapped. *)
let mock_rm_id = 9

type mock = { regs : (int, int) Hashtbl.t }

let mock_body reg ~old_v ~new_v =
  let w = Bytebuf.W.create () in
  Bytebuf.W.i64 w reg;
  Bytebuf.W.i64 w old_v;
  Bytebuf.W.i64 w new_v;
  Bytebuf.W.contents w

let mock_decode b =
  let r = Bytebuf.R.of_bytes b in
  let reg = Bytebuf.R.i64 r in
  let old_v = Bytebuf.R.i64 r in
  let new_v = Bytebuf.R.i64 r in
  (reg, old_v, new_v)

let install_mock mgr =
  let m = { regs = Hashtbl.create 8 } in
  Txnmgr.register_rm mgr ~rm_id:mock_rm_id
    ~redo:(fun r ->
      let reg, _old_v, new_v = mock_decode r.Logrec.body in
      Hashtbl.replace m.regs reg new_v)
    ~undo:(fun txn r ->
      let reg, old_v, new_v = mock_decode r.Logrec.body in
      ignore
        (Txnmgr.log_clr mgr txn ~rm_id:mock_rm_id ~op:1
           ~body:(mock_body reg ~old_v:new_v ~new_v:old_v)
           ~undo_nxt:r.Logrec.prev_lsn ());
      Hashtbl.replace m.regs reg old_v)
    ();
  m

let set mgr m txn reg v =
  let old_v = match Hashtbl.find_opt m.regs reg with Some x -> x | None -> 0 in
  ignore (Txnmgr.log_update mgr txn ~rm_id:mock_rm_id ~op:1 ~body:(mock_body reg ~old_v ~new_v:v) ());
  Hashtbl.replace m.regs reg v

let setup () =
  let wal = Logmgr.create () in
  let locks = L.create () in
  let mgr = Txnmgr.create (Aries_wal.Logset.of_mgr wal) locks in
  let m = install_mock mgr in
  (wal, locks, mgr, m)

let get m reg = match Hashtbl.find_opt m.regs reg with Some x -> x | None -> 0

let test_prev_lsn_chain () =
  let wal, _, mgr, m = setup () in
  let txn = Txnmgr.begin_txn mgr in
  set mgr m txn 1 10;
  set mgr m txn 1 20;
  set mgr m txn 1 30;
  (* walk the chain backwards *)
  let r3 = Logmgr.read wal txn.Txnmgr.lasts.(0) in
  let r2 = Logmgr.read wal r3.Logrec.prev_lsn in
  let r1 = Logmgr.read wal r2.Logrec.prev_lsn in
  Alcotest.(check bool) "chain terminates" true (Lsn.is_nil r1.Logrec.prev_lsn);
  Alcotest.(check (list int)) "values in order" [ 10; 20; 30 ]
    (List.map (fun r -> let _, _, v = mock_decode r.Logrec.body in v) [ r1; r2; r3 ])

let test_commit_forces_log () =
  let wal, _, mgr, m = setup () in
  let txn = Txnmgr.begin_txn mgr in
  set mgr m txn 1 10;
  Alcotest.(check bool) "volatile before commit" true (Lsn.is_nil (Logmgr.flushed_lsn wal));
  Txnmgr.commit mgr txn;
  Alcotest.(check bool) "stable after commit" true (not (Lsn.is_nil (Logmgr.flushed_lsn wal)))

let test_total_rollback () =
  let _, _, mgr, m = setup () in
  let txn = Txnmgr.begin_txn mgr in
  set mgr m txn 1 10;
  set mgr m txn 2 20;
  set mgr m txn 1 15;
  Txnmgr.rollback mgr txn;
  Alcotest.(check int) "reg1 restored" 0 (get m 1);
  Alcotest.(check int) "reg2 restored" 0 (get m 2);
  Alcotest.(check bool) "txn gone" true (Txnmgr.find mgr txn.Txnmgr.txn_id = None)

let test_partial_rollback () =
  let _, _, mgr, m = setup () in
  let txn = Txnmgr.begin_txn mgr in
  set mgr m txn 1 10;
  let sp = Txnmgr.savepoint txn in
  set mgr m txn 1 99;
  set mgr m txn 2 50;
  Txnmgr.rollback_to mgr txn sp;
  Alcotest.(check int) "back to savepoint" 10 (get m 1);
  Alcotest.(check int) "later change undone" 0 (get m 2);
  (* keep working and commit *)
  set mgr m txn 3 7;
  Txnmgr.commit mgr txn;
  Alcotest.(check int) "post-savepoint work kept" 7 (get m 3)

let test_rollback_after_partial () =
  (* ARIES: total rollback after a partial one must not undo twice (CLRs
     are jumped over) *)
  let _, _, mgr, m = setup () in
  let txn = Txnmgr.begin_txn mgr in
  set mgr m txn 1 10;
  let sp = Txnmgr.savepoint txn in
  set mgr m txn 1 20;
  Txnmgr.rollback_to mgr txn sp;
  Alcotest.(check int) "partial undone" 10 (get m 1);
  set mgr m txn 1 30;
  Txnmgr.rollback mgr txn;
  Alcotest.(check int) "fully undone exactly once" 0 (get m 1)

let test_clr_count_bounded () =
  (* undoing N updates writes exactly N CLRs: bounded logging *)
  let wal, _, mgr, m = setup () in
  let txn = Txnmgr.begin_txn mgr in
  for i = 1 to 10 do
    set mgr m txn i i
  done;
  let before = Logmgr.record_count wal in
  Txnmgr.rollback mgr txn;
  let written = Logmgr.record_count wal - before in
  (* 10 CLRs + Rollback + End *)
  Alcotest.(check int) "10 CLRs + rollback + end" 12 written

let test_nta_skipped_on_rollback () =
  let _, _, mgr, m = setup () in
  let txn = Txnmgr.begin_txn mgr in
  set mgr m txn 1 10;
  let nta = Txnmgr.nta_begin txn in
  set mgr m txn 2 77;
  (* "structural" change *)
  ignore (Txnmgr.nta_end mgr txn nta);
  set mgr m txn 3 30;
  Txnmgr.rollback mgr txn;
  Alcotest.(check int) "outside-NTA undone" 0 (get m 1);
  Alcotest.(check int) "outside-NTA undone (after)" 0 (get m 3);
  Alcotest.(check int) "NTA change survives rollback" 77 (get m 2)

let test_incomplete_nta_undone () =
  let _, _, mgr, m = setup () in
  let txn = Txnmgr.begin_txn mgr in
  set mgr m txn 1 10;
  let _nta = Txnmgr.nta_begin txn in
  set mgr m txn 2 77;
  (* no nta_end: the bracket is incomplete *)
  Txnmgr.rollback mgr txn;
  Alcotest.(check int) "incomplete NTA undone" 0 (get m 2);
  Alcotest.(check int) "everything undone" 0 (get m 1)

let test_deadlock_rolls_back_and_raises () =
  let _, locks, mgr, m = setup () in
  let aborted = ref false and survivor = ref false in
  ignore
    (Sched.run (fun () ->
         ignore
           (Sched.spawn (fun () ->
                let t1 = Txnmgr.begin_txn mgr in
                Txnmgr.lock mgr t1 (L.Table 1) L.X L.Commit;
                Sched.yield ();
                Txnmgr.lock mgr t1 (L.Table 2) L.X L.Commit;
                survivor := true;
                Txnmgr.commit mgr t1));
         ignore
           (Sched.spawn (fun () ->
                let t2 = Txnmgr.begin_txn mgr in
                set mgr m t2 9 99;
                Txnmgr.lock mgr t2 (L.Table 2) L.X L.Commit;
                Sched.yield ();
                match Txnmgr.lock mgr t2 (L.Table 1) L.X L.Commit with
                | () -> ()
                | exception Txnmgr.Aborted _ -> aborted := true))));
  Alcotest.(check bool) "victim aborted" true !aborted;
  Alcotest.(check bool) "victim's update rolled back" true (get m 9 = 0);
  Alcotest.(check bool) "survivor completed" true !survivor;
  ignore locks

let test_commit_releases_locks () =
  Sched.run_value (fun () ->
      let _, locks, mgr, _ = setup () in
      let txn = Txnmgr.begin_txn mgr in
      Txnmgr.lock mgr txn (L.Table 5) L.X L.Commit;
      Alcotest.(check int) "held" 1 (L.held_count locks ~txn:txn.Txnmgr.txn_id);
      Txnmgr.commit mgr txn;
      Alcotest.(check int) "released" 0 (L.held_count locks ~txn:txn.Txnmgr.txn_id))

let test_end_record_written () =
  let wal, _, mgr, m = setup () in
  let txn = Txnmgr.begin_txn mgr in
  set mgr m txn 1 1;
  Txnmgr.commit mgr txn;
  let kinds = ref [] in
  Logmgr.iter_from wal Lsn.nil (fun r -> kinds := r.Logrec.kind :: !kinds);
  Alcotest.(check bool) "commit then end" true
    (match !kinds with
    | Logrec.End_txn :: Logrec.Commit :: _ -> true
    | _ -> false)

let test_prepare_body_roundtrip () =
  let locks = [ (L.Rid { Ids.rid_page = 3; rid_slot = 9 }, L.X); (L.Table 4, L.IX) ] in
  let b = Lockcodec.encode_list locks in
  Alcotest.(check bool) "lock list roundtrip" true (Lockcodec.decode_list b = locks)

let test_checkpoint_body_roundtrip () =
  let ck ct_id ct_state ct_firsts ct_lasts ct_undo_nxts ct_locks =
    { Checkpoint.ct_id; ct_state; ct_firsts; ct_lasts; ct_undo_nxts; ct_locks }
  in
  let body =
    {
      Checkpoint.ck_scan = [| 300; 250 |];
      ck_txns =
        [
          ck 3 Txnmgr.Active [| 10; 15 |] [| 100; 90 |] [| 90; 15 |] Bytes.empty;
          ck 5 Txnmgr.Prepared [| 20; 0 |] [| 200; 0 |] [| 180; 0 |]
            (Lockcodec.encode_list [ (L.Key_value (1, "k"), L.X) ]);
        ];
      ck_dpt = [ (7, 50); (9, 120) ];
      ck_chains = [ (7, [ 50; 61; 77 ]); (9, [ 120 ]) ];
      ck_next_txn = 6;
    }
  in
  let b = Checkpoint.encode_body body in
  let body' = Checkpoint.decode_body b in
  Alcotest.(check bool) "checkpoint body roundtrip" true (body = body')

let test_fiber_binding () =
  let _, _, mgr, _ = setup () in
  Sched.run_value (fun () ->
      let txn = Txnmgr.begin_txn mgr in
      Alcotest.(check bool) "bound to fiber" true
        (match Txnmgr.current mgr with Some t -> t == txn | None -> false);
      Txnmgr.commit mgr txn;
      Alcotest.(check bool) "unbound after commit" true (Txnmgr.current mgr = None))

let () =
  Alcotest.run "txn"
    [
      ( "logging",
        [
          Alcotest.test_case "prev-lsn chain" `Quick test_prev_lsn_chain;
          Alcotest.test_case "commit forces log" `Quick test_commit_forces_log;
          Alcotest.test_case "end record" `Quick test_end_record_written;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "total" `Quick test_total_rollback;
          Alcotest.test_case "partial (savepoint)" `Quick test_partial_rollback;
          Alcotest.test_case "total after partial" `Quick test_rollback_after_partial;
          Alcotest.test_case "bounded CLR logging" `Quick test_clr_count_bounded;
        ] );
      ( "nta",
        [
          Alcotest.test_case "completed NTA survives rollback" `Quick test_nta_skipped_on_rollback;
          Alcotest.test_case "incomplete NTA undone" `Quick test_incomplete_nta_undone;
        ] );
      ( "locks",
        [
          Alcotest.test_case "deadlock rolls back and raises" `Quick
            test_deadlock_rolls_back_and_raises;
          Alcotest.test_case "commit releases locks" `Quick test_commit_releases_locks;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "prepare lock list" `Quick test_prepare_body_roundtrip;
          Alcotest.test_case "checkpoint body" `Quick test_checkpoint_body_roundtrip;
        ] );
      ("fibers", [ Alcotest.test_case "txn-fiber binding" `Quick test_fiber_binding ]);
    ]
