(* Page model: codec roundtrips for every page kind, space accounting,
   bits, the simulated disk, image copies and corruption. *)

open Aries_util
module Key = Aries_page.Key
module Page = Aries_page.Page
module Disk = Aries_page.Disk

let k v p s = Key.make v { Ids.rid_page = p; rid_slot = s }

let roundtrip page =
  let b = Page.encode page in
  let page' = Page.decode ~psize:page.Page.psize b in
  Alcotest.(check bool) "roundtrip equal" true (Page.equal page page')

let test_leaf_roundtrip () =
  let page = Page.create ~psize:4096 ~pid:5 (Page.empty_leaf ()) in
  let l = Page.as_leaf page in
  l.Page.lf_prev <- 4;
  l.Page.lf_next <- 6;
  l.Page.lf_sm_bit <- true;
  l.Page.lf_delete_bit <- true;
  List.iter (Vec.push l.Page.lf_keys) [ k "alpha" 1 0; k "beta" 1 1; k "gamma" 2 7 ];
  page.Page.page_lsn <- 999;
  roundtrip page

let test_nonleaf_roundtrip () =
  let page = Page.create ~psize:4096 ~pid:9 (Page.empty_nonleaf ~level:2) in
  let n = Page.as_nonleaf page in
  List.iter (Vec.push n.Page.nl_children) [ 10; 11; 12 ];
  List.iter (Vec.push n.Page.nl_high_keys) [ k "m" 1 0; k "t" 1 5 ];
  n.Page.nl_sm_bit <- true;
  roundtrip page

let test_data_roundtrip () =
  let page = Page.create ~psize:4096 ~pid:3 (Page.empty_data ~owner:77) in
  let d = Page.as_data page in
  Vec.push d.Page.dt_slots (Some (Bytes.of_string "record one"));
  Vec.push d.Page.dt_slots None;
  Vec.push d.Page.dt_slots (Some (Bytes.of_string ""));
  roundtrip page;
  Alcotest.(check int) "owner preserved" 77
    (let b = Page.encode page in
     (Page.as_data (Page.decode ~psize:4096 b)).Page.dt_owner)

let test_anchor_roundtrip () =
  let page = Page.create ~psize:4096 ~pid:1 (Page.empty_anchor ~name:"ix.pk" ~unique:true) in
  let a = Page.as_anchor page in
  a.Page.an_root <- 12;
  a.Page.an_height <- 3;
  roundtrip page

let key_prop (v, p, s) =
  let key = k v (abs p) (abs s mod 65536) in
  let w = Bytebuf.W.create () in
  Key.encode w key;
  let r = Bytebuf.R.of_bytes (Bytebuf.W.contents w) in
  Key.equal (Key.decode r) key

let qcheck_key =
  QCheck.Test.make ~name:"key codec roundtrip" ~count:200
    QCheck.(triple string small_int small_int)
    key_prop

(* Random pages of every kind — leaf, nonleaf, data, anchor — with random
   bits, pointers, keys (arbitrary bytes in values), tombstoned slots and
   LSNs, through encode/decode. Deterministically seeded. *)
let gen_page : Page.t QCheck.Gen.t =
 fun st ->
  let int lo hi = QCheck.Gen.int_range lo hi st in
  let value () = QCheck.Gen.(string_size (int_range 0 20)) st in
  let bit () = int 0 1 = 1 in
  let key () = k (value ()) (int 0 1_000_000) (int 0 65_535) in
  let content =
    match int 0 3 with
    | 0 ->
        let c = Page.empty_leaf () in
        let l = match c with Page.Leaf l -> l | _ -> assert false in
        l.Page.lf_prev <- int 0 100_000;
        l.Page.lf_next <- int 0 100_000;
        l.Page.lf_sm_bit <- bit ();
        l.Page.lf_delete_bit <- bit ();
        for _ = 1 to int 0 24 do
          Vec.push l.Page.lf_keys (key ())
        done;
        c
    | 1 ->
        let c = Page.empty_nonleaf ~level:(int 1 6) in
        let n = match c with Page.Nonleaf n -> n | _ -> assert false in
        n.Page.nl_sm_bit <- bit ();
        let nchildren = int 1 16 in
        for _ = 1 to nchildren do
          Vec.push n.Page.nl_children (int 1 100_000)
        done;
        for _ = 1 to nchildren - 1 do
          Vec.push n.Page.nl_high_keys (key ())
        done;
        c
    | 2 ->
        let c = Page.empty_data ~owner:(int 0 10_000) in
        let d = match c with Page.Data d -> d | _ -> assert false in
        for _ = 1 to int 0 16 do
          Vec.push d.Page.dt_slots
            (if int 0 3 = 0 then None else Some (Bytes.of_string (value ())))
        done;
        c
    | _ ->
        let c = Page.empty_anchor ~name:(value ()) ~unique:(bit ()) in
        let a = match c with Page.Anchor a -> a | _ -> assert false in
        a.Page.an_root <- int 0 100_000;
        a.Page.an_height <- int 0 8;
        c
  in
  let page = Page.create ~psize:4096 ~pid:(int 1 1_000_000) content in
  page.Page.page_lsn <- int 0 1_000_000_000;
  page

let qcheck_page =
  QCheck.Test.make ~name:"page codec roundtrip (random pages, all kinds)" ~count:1000
    (QCheck.make ~print:(Format.asprintf "%a" Page.pp) gen_page)
    (fun page -> Page.equal page (Page.decode ~psize:page.Page.psize (Page.encode page)))

let test_page_codec_property () =
  QCheck.Test.check_exn ~rand:(Random.State.make [| 0xA51E5 |]) qcheck_page

let test_space_accounting () =
  let page = Page.create ~psize:256 ~pid:2 (Page.empty_leaf ()) in
  let l = Page.as_leaf page in
  let free0 = Page.free_space page in
  Alcotest.(check int) "empty page free" (256 - Page.header_bytes) free0;
  let key = k "0123456789" 1 1 in
  Vec.push l.Page.lf_keys key;
  Alcotest.(check int) "cost deducted" (free0 - Key.on_page_cost key) (Page.free_space page);
  Alcotest.(check int) "key cost = value + overhead" (10 + 10) (Key.on_page_cost key)

let test_kind_mismatch () =
  let page = Page.create ~psize:256 ~pid:2 (Page.empty_leaf ()) in
  Alcotest.(check bool) "as_data on leaf raises" true
    (match Page.as_data page with _ -> false | exception Invalid_argument _ -> true)

let test_sm_bits () =
  let leaf = Page.create ~psize:256 ~pid:2 (Page.empty_leaf ()) in
  let nl = Page.create ~psize:256 ~pid:3 (Page.empty_nonleaf ~level:1) in
  Page.set_sm_bit leaf true;
  Page.set_sm_bit nl true;
  Alcotest.(check bool) "leaf sm" true (Page.sm_bit leaf);
  Alcotest.(check bool) "nonleaf sm" true (Page.sm_bit nl);
  Page.set_delete_bit leaf true;
  Alcotest.(check bool) "delete bit" true (Page.delete_bit leaf);
  Alcotest.(check bool) "delete bit on nonleaf raises" true
    (match Page.delete_bit nl with _ -> false | exception Invalid_argument _ -> true)

(* ---------- disk ---------- *)

let test_disk_alloc_unique () =
  let d = Disk.create () in
  let a = Disk.alloc_pid d and b = Disk.alloc_pid d in
  Alcotest.(check bool) "pids distinct and positive" true (a <> b && a > 0 && b > 0);
  Disk.note_pid d 100;
  Alcotest.(check bool) "note_pid bumps allocator" true (Disk.alloc_pid d > 100)

let test_disk_write_read () =
  let d = Disk.create ~page_size:512 () in
  let pid = Disk.alloc_pid d in
  let page = Page.create ~psize:512 ~pid (Page.empty_leaf ()) in
  (Page.as_leaf page).Page.lf_next <- 42;
  page.Page.page_lsn <- 7;
  Disk.write d page;
  (match Disk.read d pid with
  | Some p ->
      Alcotest.(check bool) "read equals written" true (Page.equal p page);
      (* the returned page is a fresh deserialization, not an alias *)
      Alcotest.(check bool) "not an alias" true (p != page)
  | None -> Alcotest.fail "page lost");
  Alcotest.(check bool) "missing read" true (Disk.read d 9999 = None)

let test_disk_mutation_isolation () =
  (* mutating an in-memory page does not change the disk image *)
  let d = Disk.create () in
  let pid = Disk.alloc_pid d in
  let page = Page.create ~psize:4096 ~pid (Page.empty_leaf ()) in
  Disk.write d page;
  (Page.as_leaf page).Page.lf_next <- 55;
  match Disk.read d pid with
  | Some p -> Alcotest.(check int) "disk image unchanged" Ids.nil_page (Page.as_leaf p).Page.lf_next
  | None -> Alcotest.fail "page lost"

let test_image_copy_independent () =
  let d = Disk.create () in
  let pid = Disk.alloc_pid d in
  let page = Page.create ~psize:4096 ~pid (Page.empty_leaf ()) in
  Disk.write d page;
  let dump = Disk.image_copy d in
  Disk.corrupt_drop d pid;
  Alcotest.(check bool) "original lost" true (Disk.read d pid = None);
  Alcotest.(check bool) "copy intact" true (Disk.read dump pid <> None)

let () =
  Alcotest.run "page"
    [
      ( "codec",
        [
          Alcotest.test_case "leaf" `Quick test_leaf_roundtrip;
          Alcotest.test_case "nonleaf" `Quick test_nonleaf_roundtrip;
          Alcotest.test_case "data" `Quick test_data_roundtrip;
          Alcotest.test_case "anchor" `Quick test_anchor_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_key;
          Alcotest.test_case "random pages x1000 (seeded)" `Quick test_page_codec_property;
        ] );
      ( "model",
        [
          Alcotest.test_case "space accounting" `Quick test_space_accounting;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "sm/delete bits" `Quick test_sm_bits;
        ] );
      ( "disk",
        [
          Alcotest.test_case "alloc unique" `Quick test_disk_alloc_unique;
          Alcotest.test_case "write/read" `Quick test_disk_write_read;
          Alcotest.test_case "mutation isolation" `Quick test_disk_mutation_isolation;
          Alcotest.test_case "image copy independent" `Quick test_image_copy_independent;
        ] );
    ]
