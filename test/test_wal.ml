(* Log manager and log-record codec: framing, LSN monotonicity, the
   stable/volatile boundary, crash truncation, random access, iteration. *)

open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr

let update ?(txn = 1) ?(prev = Lsn.nil) ?(page = 7) ?(body = Bytes.of_string "x") () =
  Logrec.make ~page ~rm_id:1 ~op:2 ~body ~txn ~prev_lsn:prev Logrec.Update

let test_codec_roundtrip () =
  let r =
    Logrec.make ~page:9 ~undo_nxt_lsn:55 ~rm_id:3 ~op:12 ~undoable:false ~redoable:true
      ~body:(Bytes.of_string "payload\x00bytes") ~txn:42 ~prev_lsn:17 Logrec.Clr
  in
  let b = Logrec.encode r in
  let r' = Logrec.decode ~lsn:100 (Bytes.to_string b) in
  Alcotest.(check int) "txn" 42 r'.Logrec.txn;
  Alcotest.(check int) "prev" 17 r'.Logrec.prev_lsn;
  Alcotest.(check int) "page" 9 r'.Logrec.page;
  Alcotest.(check int) "undo_nxt" 55 r'.Logrec.undo_nxt_lsn;
  Alcotest.(check int) "rm" 3 r'.Logrec.rm_id;
  Alcotest.(check int) "op" 12 r'.Logrec.op;
  Alcotest.(check bool) "undoable" false r'.Logrec.undoable;
  Alcotest.(check bool) "redoable" true r'.Logrec.redoable;
  Alcotest.(check string) "body" "payload\x00bytes" (Bytes.to_string r'.Logrec.body);
  Alcotest.(check int) "lsn injected" 100 r'.Logrec.lsn

let codec_prop (txn, page, body) =
  let txn = abs txn and page = abs page in
  let r = Logrec.make ~page ~rm_id:1 ~op:1 ~body:(Bytes.of_string body) ~txn ~prev_lsn:3 Logrec.Update in
  let r' = Logrec.decode ~lsn:1 (Bytes.to_string (Logrec.encode r)) in
  r'.Logrec.txn = txn && r'.Logrec.page = page && Bytes.to_string r'.Logrec.body = body

let qcheck_codec =
  QCheck.Test.make ~name:"log record codec roundtrip" ~count:200
    QCheck.(triple small_int small_int string)
    codec_prop

(* Random records over every kind and every header field — arbitrary bytes
   in bodies, random flags, CLR undo-next chains — through encode/decode.
   Deterministically seeded. *)
let all_kinds =
  [|
    Logrec.Update; Logrec.Clr; Logrec.Commit; Logrec.Prepare; Logrec.Rollback;
    Logrec.End_txn; Logrec.Begin_ckpt; Logrec.End_ckpt;
  |]

let gen_logrec : Logrec.t QCheck.Gen.t =
 fun st ->
  let int lo hi = QCheck.Gen.int_range lo hi st in
  let kind = all_kinds.(int 0 (Array.length all_kinds - 1)) in
  let body = Bytes.of_string (QCheck.Gen.(string_size (int_range 0 64)) st) in
  Logrec.make
    ~page:(int 0 1_000_000)
    ~undo_nxt_lsn:(int 0 1_000_000)
    ~rm_id:(int 0 255) ~op:(int 0 255)
    ~undoable:(int 0 1 = 1)
    ~redoable:(int 0 1 = 1)
    ~body
    ~txn:(int 0 1_000_000)
    ~prev_lsn:(int 0 1_000_000)
    kind

let logrec_prop (r : Logrec.t) =
  let r' = Logrec.decode ~lsn:12345 (Bytes.to_string (Logrec.encode r)) in
  r'.Logrec.lsn = 12345
  && r'.Logrec.prev_lsn = r.Logrec.prev_lsn
  && r'.Logrec.txn = r.Logrec.txn
  && r'.Logrec.kind = r.Logrec.kind
  && r'.Logrec.page = r.Logrec.page
  && r'.Logrec.undo_nxt_lsn = r.Logrec.undo_nxt_lsn
  && r'.Logrec.rm_id = r.Logrec.rm_id
  && r'.Logrec.op = r.Logrec.op
  && r'.Logrec.undoable = r.Logrec.undoable
  && r'.Logrec.redoable = r.Logrec.redoable
  && Bytes.equal r'.Logrec.body r.Logrec.body

let qcheck_codec_full =
  QCheck.Test.make ~name:"log record codec roundtrip (all kinds, all fields)" ~count:1000
    (QCheck.make ~print:(Format.asprintf "%a" Logrec.pp) gen_logrec)
    logrec_prop

let test_logrec_codec_property () =
  QCheck.Test.check_exn ~rand:(Random.State.make [| 0x10C5EC |]) qcheck_codec_full

let test_lsn_monotonic () =
  let log = Logmgr.create () in
  let prev = ref Lsn.nil in
  for i = 1 to 50 do
    let lsn = Logmgr.append log (update ~txn:i ()) in
    Alcotest.(check bool) "monotonic" true (Lsn.( < ) !prev lsn);
    prev := lsn
  done;
  Alcotest.(check int) "count" 50 (Logmgr.record_count log)

let test_read_back () =
  let log = Logmgr.create () in
  let lsns = List.init 20 (fun i -> Logmgr.append log (update ~txn:i ())) in
  List.iteri
    (fun i lsn ->
      let r = Logmgr.read log lsn in
      Alcotest.(check int) "lsn" lsn r.Logrec.lsn;
      Alcotest.(check int) "txn" i r.Logrec.txn)
    lsns

let test_flush_boundary () =
  let log = Logmgr.create () in
  let a = Logmgr.append log (update ()) in
  let b = Logmgr.append log (update ()) in
  let c = Logmgr.append log (update ()) in
  Alcotest.(check bool) "nothing stable" true (Lsn.is_nil (Logmgr.flushed_lsn log));
  Logmgr.flush_to log b;
  Alcotest.(check int) "stable through b" b (Logmgr.flushed_lsn log);
  Alcotest.(check bool) "a stable" true (Logmgr.is_stable log a);
  Alcotest.(check bool) "c volatile" false (Logmgr.is_stable log c)

let test_crash_truncates () =
  let log = Logmgr.create () in
  let a = Logmgr.append log (update ~txn:1 ()) in
  let b = Logmgr.append log (update ~txn:2 ()) in
  ignore (Logmgr.append log (update ~txn:3 ()));
  ignore (Logmgr.append log (update ~txn:4 ()));
  Logmgr.flush_to log b;
  Logmgr.crash log;
  Alcotest.(check int) "two records survive" 2 (Logmgr.record_count log);
  Alcotest.(check int) "last is b" b (Logmgr.last_lsn log);
  (* appends continue after the crash point *)
  let e = Logmgr.append log (update ~txn:5 ()) in
  Alcotest.(check bool) "new lsn beyond b" true (Lsn.( < ) b e);
  ignore a

let test_master_survives_crash () =
  let log = Logmgr.create () in
  let a = Logmgr.append log (update ()) in
  Logmgr.flush log;
  Logmgr.set_master log a;
  ignore (Logmgr.append log (update ()));
  Logmgr.crash log;
  Alcotest.(check int) "master kept" a (Logmgr.master log)

let test_iteration_and_next () =
  let log = Logmgr.create () in
  let lsns = List.init 10 (fun i -> Logmgr.append log (update ~txn:i ())) in
  let seen = ref [] in
  Logmgr.iter_from log Lsn.nil (fun r -> seen := r.Logrec.lsn :: !seen);
  Alcotest.(check (list int)) "full scan" lsns (List.rev !seen);
  (* partial scan *)
  let third = List.nth lsns 3 in
  let seen = ref [] in
  Logmgr.iter_from log third (fun r -> seen := r.Logrec.txn :: !seen);
  Alcotest.(check (list int)) "scan from lsn" [ 3; 4; 5; 6; 7; 8; 9 ] (List.rev !seen);
  (* next_lsn chains *)
  let rec chain lsn acc =
    match Logmgr.next_lsn log lsn with None -> List.rev (lsn :: acc) | Some n -> chain n (lsn :: acc)
  in
  Alcotest.(check (list int)) "next_lsn chain" lsns (chain (List.hd lsns) [])

let test_records_between () =
  let log = Logmgr.create () in
  let lsns = List.init 6 (fun i -> Logmgr.append log (update ~txn:i ())) in
  let lo = List.nth lsns 1 and hi = List.nth lsns 3 in
  let rs = Logmgr.records_between log lo hi in
  Alcotest.(check (list int)) "middle slice" [ 1; 2; 3 ] (List.map (fun r -> r.Logrec.txn) rs)

let test_flush_counts_forces () =
  let s = Stats.create () in
  Stats.with_sink s (fun () ->
      let log = Logmgr.create () in
      let a = Logmgr.append log (update ()) in
      Logmgr.flush_to log a;
      Logmgr.flush_to log a;
      (* second is a no-op *)
      ignore (Logmgr.append log (update ()));
      Logmgr.flush log);
  Alcotest.(check int) "two forces" 2 (Stats.get s Stats.log_forces)

(* --- segmented log --- *)

let test_sealing () =
  let log = Logmgr.create ~segment_size:64 () in
  let lsns = List.init 12 (fun i -> Logmgr.append log (update ~txn:i ())) in
  Alcotest.(check bool) "appends crossed segment boundaries" true (Logmgr.segment_count log > 1);
  (* segments tile the offset space: each base is the previous end *)
  let info = Logmgr.segments_info log in
  ignore
    (List.fold_left
       (fun expected_base (base, len, _sealed) ->
         Alcotest.(check int) "segment base contiguous" expected_base base;
         base + len)
       (List.hd lsns) info);
  (* every segment but the last is sealed; the tail is the active one *)
  let rec check_sealed = function
    | [] -> ()
    | [ (_, _, sealed) ] -> Alcotest.(check bool) "tail unsealed" false sealed
    | (_, _, sealed) :: rest ->
        Alcotest.(check bool) "prefix sealed" true sealed;
        check_sealed rest
  in
  check_sealed info;
  (* records are never split: each one reads back whole at its LSN *)
  List.iteri
    (fun i lsn -> Alcotest.(check int) "read across seals" i (Logmgr.read log lsn).Logrec.txn)
    lsns

let test_truncate_prefix () =
  let log = Logmgr.create ~segment_size:64 () in
  let lsns = List.init 10 (fun i -> Logmgr.append log (update ~txn:i ())) in
  Logmgr.flush log;
  let archived = ref [] in
  Logmgr.set_archive_sink log (fun a -> archived := a :: !archived);
  let before = Logmgr.record_count log in
  let reclaimed = Logmgr.truncate_prefix log ~upto:(Logmgr.flushed_offset log) in
  Alcotest.(check bool) "bytes reclaimed" true (reclaimed > 0);
  (* every dropped byte went through the archive sink, oldest first *)
  let arch = List.rev !archived in
  Alcotest.(check int) "archive bytes = reclaimed"
    reclaimed
    (List.fold_left (fun acc a -> acc + a.Logmgr.arch_len) 0 arch);
  ignore
    (List.fold_left
       (fun expected a ->
         Alcotest.(check int) "archive contiguous" expected a.Logmgr.arch_base;
         a.Logmgr.arch_base + a.Logmgr.arch_len)
       (List.hd lsns) arch);
  Alcotest.(check int) "no record lost"
    before
    (Logmgr.record_count log + List.fold_left (fun acc a -> acc + a.Logmgr.arch_records) 0 arch);
  (* the new start is exactly one past the last archived byte *)
  let new_start = (List.hd arch).Logmgr.arch_base + reclaimed in
  let base0, _, _ = List.hd (Logmgr.segments_info log) in
  Alcotest.(check int) "oldest retained segment base = archive end" new_start base0;
  (* reclaimed reads fail loudly; retained ones survive *)
  Alcotest.(check bool) "read below start raises" true
    (match Logmgr.read log (List.hd lsns) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  List.iteri
    (fun i lsn ->
      if lsn >= new_start then
        Alcotest.(check int) "retained read" i (Logmgr.read log lsn).Logrec.txn)
    lsns;
  (* appends continue with monotonic lsns; iteration covers the remainder *)
  let e = Logmgr.append log (update ~txn:99 ()) in
  Alcotest.(check bool) "lsn still monotonic" true (Lsn.( < ) (List.nth lsns 9) e);
  let seen = ref 0 in
  Logmgr.iter_from log Lsn.nil (fun _ -> incr seen);
  Alcotest.(check int) "iteration count" (Logmgr.record_count log) !seen

let test_truncate_partial_segment_kept () =
  let log = Logmgr.create ~segment_size:64 () in
  ignore (List.init 8 (fun i -> Logmgr.append log (update ~txn:i ())));
  Logmgr.flush log;
  (* a cut in the middle of the first segment reclaims nothing: truncation
     is whole-segment only *)
  let start = Logmgr.start_lsn log in
  Alcotest.(check int) "mid-segment cut reclaims nothing" 0
    (Logmgr.truncate_prefix log ~upto:(start + 1));
  Alcotest.(check int) "start unchanged" start (Logmgr.start_lsn log)

let test_truncate_volatile_rejected () =
  let log = Logmgr.create () in
  let a = Logmgr.append log (update ()) in
  Logmgr.flush log;
  let b = Logmgr.append log (update ()) in
  ignore a;
  Alcotest.(check bool) "cannot truncate into the volatile tail" true
    (match Logmgr.truncate_prefix log ~upto:(b + 1000) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_truncate_survives_crash_and_serialize () =
  let log = Logmgr.create ~segment_size:64 () in
  ignore (List.init 6 (fun i -> Logmgr.append log (update ~txn:i ())));
  Logmgr.flush log;
  ignore (Logmgr.truncate_prefix log ~upto:(Logmgr.flushed_offset log));
  let start = Logmgr.start_lsn log in
  let count = Logmgr.record_count log in
  ignore (Logmgr.append log (update ~txn:9 ()));
  (* crash drops the unflushed tail but keeps the truncation point *)
  Logmgr.crash log;
  Alcotest.(check int) "post-crash records" count (Logmgr.record_count log);
  Alcotest.(check int) "post-crash start" start (Logmgr.start_lsn log);
  (* the snapshot codec preserves segmentation and the start offset *)
  let log' = Logmgr.deserialize (Logmgr.serialize log) in
  Alcotest.(check int) "roundtrip start" (Logmgr.start_lsn log) (Logmgr.start_lsn log');
  Alcotest.(check int) "roundtrip records" count (Logmgr.record_count log');
  Alcotest.(check int) "roundtrip segments" (Logmgr.segment_count log)
    (Logmgr.segment_count log')

let test_crash_unseals_straddler () =
  (* segment > one framed record (records carry stream/epoch/gsn stamps),
     so the first flushed record does not itself seal the segment *)
  let log = Logmgr.create ~segment_size:128 () in
  let a = Logmgr.append log (update ~txn:0 ()) in
  Logmgr.flush_to log a;
  (* push past the seal threshold without flushing: the seal is volatile *)
  ignore (List.init 8 (fun i -> Logmgr.append log (update ~txn:(i + 1) ())));
  Alcotest.(check bool) "sealed in memory" true (Logmgr.segment_count log > 1);
  Logmgr.crash log;
  (* only the first record was stable: one segment survives, and its
     in-memory seal did not — it is the active segment again *)
  Alcotest.(check int) "one segment" 1 (Logmgr.segment_count log);
  (match Logmgr.segments_info log with
  | [ (_, _, sealed) ] -> Alcotest.(check bool) "straddler unsealed" false sealed
  | l -> Alcotest.failf "expected 1 segment, got %d" (List.length l));
  Alcotest.(check int) "one record" 1 (Logmgr.record_count log);
  (* appends resume at the crash boundary *)
  let e = Logmgr.append log (update ~txn:42 ()) in
  Alcotest.(check int) "resume at flushed boundary" (Logmgr.record_end log a) e

(* ---------- PR 9: arena encode byte-identity + reuse accounting ---------- *)

(* The arena-based [encode_into] must produce exactly the bytes the old
   fresh-Buffer encoder did. Reference encoder hand-rolled here against
   the documented record layout. *)
let reference_encode (r : Logrec.t) =
  let kind_to_int = function
    | Logrec.Update -> 0
    | Logrec.Clr -> 1
    | Logrec.Commit -> 2
    | Logrec.Prepare -> 3
    | Logrec.Rollback -> 4
    | Logrec.End_txn -> 5
    | Logrec.Begin_ckpt -> 6
    | Logrec.End_ckpt -> 7
    | Logrec.Coord_commit -> 8
    | Logrec.Coord_abort -> 9
    | Logrec.Coord_end -> 10
  in
  let b = Buffer.create 64 in
  Buffer.add_char b (Char.chr (kind_to_int r.Logrec.kind));
  Buffer.add_int64_le b (Int64.of_int r.Logrec.prev_lsn);
  Buffer.add_int64_le b (Int64.of_int r.Logrec.txn);
  Buffer.add_int64_le b (Int64.of_int r.Logrec.page);
  Buffer.add_int64_le b (Int64.of_int r.Logrec.undo_nxt_lsn);
  Buffer.add_uint16_le b
    (if r.Logrec.undo_nxt_stream < 0 then r.Logrec.stream else r.Logrec.undo_nxt_stream);
  Buffer.add_uint16_le b r.Logrec.rm_id;
  Buffer.add_uint16_le b r.Logrec.op;
  Buffer.add_char b (if r.Logrec.undoable then '\x01' else '\x00');
  Buffer.add_char b (if r.Logrec.redoable then '\x01' else '\x00');
  Buffer.add_uint16_le b r.Logrec.stream;
  Buffer.add_int64_le b (Int64.of_int r.Logrec.epoch);
  Buffer.add_int64_le b (Int64.of_int r.Logrec.gsn);
  Buffer.add_int32_le b (Int32.of_int (Bytes.length r.Logrec.body));
  Buffer.add_bytes b r.Logrec.body;
  Buffer.contents b

let test_encode_matches_reference () =
  let records =
    [
      update ();
      update ~txn:99 ~prev:1234 ~page:0 ~body:Bytes.empty ();
      Logrec.make ~page:9 ~undo_nxt_lsn:55 ~undo_nxt_stream:2 ~rm_id:3 ~op:12
        ~body:(Bytes.of_string "payload\x00bytes") ~stream:1 ~epoch:4 ~gsn:77 ~txn:42
        ~prev_lsn:17 Logrec.Clr;
      Logrec.make ~txn:7 ~prev_lsn:Lsn.nil Logrec.Commit;
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check string) "encode = reference"
        (reference_encode r)
        (Bytes.to_string (Logrec.encode r));
      Alcotest.(check int) "header_bytes + body = encoded size"
        (Logrec.header_bytes + Bytes.length r.Logrec.body)
        (Bytes.length (Logrec.encode r)))
    records

(* After a warm-up append sizes the per-log arena, every further append of
   same-or-smaller records reuses it — the counter tracks log.records. *)
let test_encode_arena_reuse () =
  let log = Logmgr.create () in
  ignore (Logmgr.append log (update ~body:(Bytes.create 64) ()));
  let s = Stats.create () in
  Stats.with_sink s (fun () ->
      for _ = 1 to 50 do
        ignore (Logmgr.append log (update ~body:(Bytes.create 64) ()))
      done);
  Alcotest.(check int) "every append reused the arena" 50
    (Stats.get s Stats.wal_encode_arena_reuses);
  Alcotest.(check int) "and appended a record" 50 (Stats.get s Stats.log_records)

let () =
  Alcotest.run "wal"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_codec;
          Alcotest.test_case "random records x1000 (seeded)" `Quick test_logrec_codec_property;
          Alcotest.test_case "encode = reference bytes" `Quick test_encode_matches_reference;
          Alcotest.test_case "append reuses encode arena" `Quick test_encode_arena_reuse;
        ] );
      ( "logmgr",
        [
          Alcotest.test_case "lsn monotonic" `Quick test_lsn_monotonic;
          Alcotest.test_case "read back" `Quick test_read_back;
          Alcotest.test_case "flush boundary" `Quick test_flush_boundary;
          Alcotest.test_case "crash truncates" `Quick test_crash_truncates;
          Alcotest.test_case "master survives crash" `Quick test_master_survives_crash;
          Alcotest.test_case "iteration and next" `Quick test_iteration_and_next;
          Alcotest.test_case "records_between" `Quick test_records_between;
          Alcotest.test_case "flush counts forces" `Quick test_flush_counts_forces;
        ] );
      ( "segments",
        [
          Alcotest.test_case "sealing and tiling" `Quick test_sealing;
          Alcotest.test_case "truncate_prefix + archive sink" `Quick test_truncate_prefix;
          Alcotest.test_case "partial segment kept" `Quick test_truncate_partial_segment_kept;
          Alcotest.test_case "truncate volatile rejected" `Quick test_truncate_volatile_rejected;
          Alcotest.test_case "truncation survives crash+codec" `Quick
            test_truncate_survives_crash_and_serialize;
          Alcotest.test_case "crash unseals the straddler" `Quick test_crash_unseals_straddler;
        ] );
    ]
