(* The storage fault layer (PR 5), exercised surgically: page-image CRC
   detection and the crc.check-disabled meta-fault, log-frame CRC and the
   crash-time tail scan (torn tail mid-record = clean-crash recovery;
   complete unflushed records legally survive), bounded retry with typed
   exhaustion, the transient-EIO storm against the group-commit pipeline
   (no early acks), and automatic media repair — bit-rot healing
   transparently through the buffer pool's repairer hook, including across
   a log truncation (archive + live log as the full history). *)

open Aries_util
module Lsn = Aries_wal.Lsn
module Logrec = Aries_wal.Logrec
module Logmgr = Aries_wal.Logmgr
module Page = Aries_page.Page
module Key = Aries_page.Key
module Disk = Aries_page.Disk
module Bufpool = Aries_buffer.Bufpool
module Btree = Aries_btree.Btree
module Txnmgr = Aries_txn.Txnmgr
module Media = Aries_recovery.Media
module Trace = Aries_trace.Trace
module Discipline = Aries_trace.Discipline
module Db = Aries_db.Db

let rid i = { Ids.rid_page = 700 + (i / 100); rid_slot = i mod 100 }

let v i = Printf.sprintf "key%05d" i

let fresh ?(page_size = 384) ?commit_mode ?segment_size () =
  let db = Db.create ~page_size ?commit_mode ?segment_size () in
  let tree =
    Db.run_exn db (fun () ->
        Db.with_txn db (fun txn -> Btree.create db.Db.benv txn ~name:"t" ~unique:true))
  in
  (db, tree)

let insert_range db tree lo hi =
  Db.run_exn db (fun () ->
      Db.with_txn db (fun txn ->
          for i = lo to hi do
            Btree.insert tree txn ~value:(v i) ~rid:(rid i)
          done))

(* every test leaves the global fault engine and switches clean *)
let clean f =
  Fun.protect
    ~finally:(fun () ->
      Faultdisk.disarm ();
      Crashpoint.clear_faults ();
      Crashpoint.disarm ();
      Crashpoint.reset ();
      Trace.reset ();
      Discipline.reset ())
    f

let no_faults =
  {
    Faultdisk.eio_read_p = 0.0;
    eio_write_p = 0.0;
    eio_force_p = 0.0;
    bit_flip_p = 0.0;
    torn_write = false;
    torn_append = false;
    stream_shuffle = false;
  }

(* ------------------------------------------------------------------ *)
(* Page-image CRC (codec v2)                                          *)

let test_page_crc_detects_flip () =
  let page = Page.create ~psize:4096 ~pid:5 (Page.empty_leaf ()) in
  page.Page.page_lsn <- 4242;
  let b = Page.encode page in
  (* flip one bit somewhere in the middle of the body *)
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
  match Page.decode ~psize:4096 b with
  | _ -> Alcotest.fail "bit-rotted page image decoded silently"
  | exception Storage_error.Error { cause = Storage_error.Checksum; pid; _ } ->
      Alcotest.(check (option int)) "pid sniffed for diagnostics" (Some 5) pid

let test_page_legacy_v1_decodes () =
  let page = Page.create ~psize:4096 ~pid:8 (Page.empty_data ~owner:3) in
  let d = Page.as_data page in
  Vec.push d.Page.dt_slots (Some (Bytes.of_string "legacy record"));
  page.Page.page_lsn <- 77;
  let b = Page.encode page in
  (* strip the v2 envelope: [0xA2][v1 body][u32 crc] -> [v1 body] *)
  let v1 = Bytes.sub b 1 (Bytes.length b - 5) in
  let page' = Page.decode ~psize:4096 v1 in
  Alcotest.(check bool) "legacy image decodes to the same page" true (Page.equal page page')

(* The meta-fault: with CRC verification off, a rotten image is never
   reported as a checksum failure — it flows through as either garbage
   data (for the oracle to catch; see the sim suite) or a typed decode
   error. A bare [Bytebuf.Corrupt] must never escape [Disk.read]. *)
let test_crc_disabled_meta_fault () =
  clean (fun () ->
      let disk = Disk.create ~page_size:384 () in
      let page = Page.create ~psize:384 ~pid:4 (Page.empty_leaf ()) in
      let l = Page.as_leaf page in
      Vec.push l.Page.lf_keys (Key.make "somebody" { Ids.rid_page = 1; rid_slot = 2 });
      Disk.write disk page;
      Crashpoint.enable_fault Crashpoint.fault_crc_check_disabled;
      (* with checks disabled the write-out has no CRC protection to
         violate, but a flipped stored image must still never raise a bare
         parser exception on read *)
      for seed = 1 to 16 do
        Disk.corrupt_flip ~seed disk 4;
        (match Disk.read disk 4 with
        | Some _ | None -> ()
        | exception Storage_error.Error _ -> ()
        | exception Bytebuf.Corrupt _ -> Alcotest.fail "bare Bytebuf.Corrupt escaped");
        (* undo the flip (same seed flips the same bit back) *)
        Disk.corrupt_flip ~seed disk 4
      done;
      Crashpoint.clear_faults ();
      (* with checks back on, an actually-rotten image is loud and typed *)
      Disk.corrupt_flip ~seed:3 disk 4;
      match Disk.read disk 4 with
      | _ -> Alcotest.fail "rotten image read silently with CRC checks back on"
      | exception Storage_error.Error { cause = Storage_error.Checksum | Storage_error.Decode; _ }
        ->
          ())

let test_corrupt_variants () =
  let disk = Disk.create ~page_size:384 () in
  let page = Page.create ~psize:384 ~pid:9 (Page.empty_leaf ()) in
  Disk.write disk page;
  (* flip: image still present, read fails typed with the pid attached *)
  Disk.corrupt_flip ~seed:11 disk 9;
  (match Disk.read disk 9 with
  | _ -> Alcotest.fail "flipped image read silently"
  | exception Storage_error.Error { cause = Storage_error.Checksum; pid = Some 9; _ } -> ()
  | exception Storage_error.Error i ->
      Alcotest.failf "wrong error info: %s" i.Storage_error.detail);
  (* drop: image gone, read sees an absent page (no error) *)
  Disk.corrupt_drop disk 9;
  Alcotest.(check bool) "dropped image reads as absent" true (Disk.read disk 9 = None)

(* ------------------------------------------------------------------ *)
(* Log-frame CRC and the crash-time tail scan                         *)

let append_n log ~lo ~hi ~len =
  for i = lo to hi do
    ignore
      (Logmgr.append log
         (Logrec.make ~page:i ~rm_id:1 ~op:1
            ~body:(Bytes.make len (Char.chr (65 + (i mod 26))))
            ~txn:i ~prev_lsn:Lsn.nil Logrec.Update))
  done

let lsns log =
  let acc = ref [] in
  Logmgr.iter_from log Lsn.nil (fun r -> acc := r.Logrec.lsn :: !acc);
  List.rev !acc

(* A crash that tears the last (unflushed) record mid-frame recovers to
   exactly the same log as a clean crash at the flushed boundary: the tail
   scan drops the torn fragment, never trusting garbage. *)
let test_torn_tail_mid_record_equals_clean_crash () =
  clean (fun () ->
      let build () =
        let log = Logmgr.create ~segment_size:4096 () in
        append_n log ~lo:1 ~hi:5 ~len:24;
        Logmgr.flush log;
        (* one large in-flight record, never flushed: the torn fragment the
           medium keeps is half a frame — structurally invalid *)
        append_n log ~lo:6 ~hi:6 ~len:120;
        log
      in
      let control = build () in
      Logmgr.crash control;
      let torn = build () in
      let sink = Stats.create () in
      Stats.with_sink sink (fun () ->
          Faultdisk.arm ~seed:1 { no_faults with Faultdisk.torn_append = true };
          Logmgr.crash torn;
          Faultdisk.disarm ());
      Alcotest.(check bool) "a torn fragment was truncated" true
        (Stats.get sink Stats.log_tail_truncated_bytes > 0);
      Alcotest.(check (list int)) "recovered records identical" (lsns control) (lsns torn);
      Alcotest.(check int) "end offsets identical" (Logmgr.end_offset control)
        (Logmgr.end_offset torn);
      Alcotest.(check int) "flushed boundaries identical" (Logmgr.flushed_offset control)
        (Logmgr.flushed_offset torn))

(* When the kept fragment happens to contain a {e complete}, CRC-valid
   record beyond the recorded stable boundary, the scan keeps it: it was
   written but never acknowledged — recovering it is legal, losing it
   would also have been legal, corrupting it is not an option. *)
let test_torn_tail_keeps_complete_records () =
  clean (fun () ->
      let log = Logmgr.create ~segment_size:4096 () in
      append_n log ~lo:1 ~hi:3 ~len:24;
      Logmgr.flush log;
      let flushed = Logmgr.flushed_offset log in
      (* two identically-sized unflushed records: the medium keeps exactly
         the first one (the torn-append fraction is one half) *)
      append_n log ~lo:4 ~hi:5 ~len:40;
      Faultdisk.arm ~seed:1 { no_faults with Faultdisk.torn_append = true };
      Logmgr.crash log;
      Faultdisk.disarm ();
      Alcotest.(check int) "four records survive (three stable + one complete straggler)" 4
        (Logmgr.record_count log);
      Alcotest.(check bool) "the straggler lies beyond the old stable boundary" true
        (Logmgr.flushed_offset log > flushed);
      (* and the survivor replays cleanly, CRC verified *)
      let r = Logmgr.read log (Logmgr.last_lsn log) in
      Alcotest.(check int) "straggler decodes" 4 r.Logrec.txn)

(* A sealed segment whose archived/serialized bytes rot fails its footer
   CRC loudly and typed on load. *)
let test_log_image_rot_is_typed () =
  let log = Logmgr.create ~segment_size:128 () in
  append_n log ~lo:1 ~hi:12 ~len:40;  (* several sealed segments *)
  Logmgr.flush log;
  let img = Logmgr.serialize log in
  (* corrupt a byte inside the first segment's record bytes: the payload
     pattern (runs of 'B') starts a few bytes into the image *)
  let hit = ref false in
  (try
     for i = 0 to Bytes.length img - 4 do
       if (not !hit) && Bytes.sub_string img i 4 = "BBBB" then begin
         Bytes.set img i 'Z';
         hit := true;
         raise Exit
       end
     done
   with Exit -> ());
  Alcotest.(check bool) "found payload bytes to corrupt" true !hit;
  match Logmgr.deserialize img with
  | _ -> Alcotest.fail "rotten log image loaded silently"
  | exception Storage_error.Error { cause = Storage_error.Checksum | Storage_error.Decode; _ } ->
      ()

let test_garbage_deserialize_is_typed () =
  let garbage = Bytes.of_string "\x0c\x00\x00\x00not a valid image at all" in
  (match Disk.deserialize garbage with
  | _ -> Alcotest.fail "Disk.deserialize accepted garbage"
  | exception Storage_error.Error { cause = Storage_error.Decode; _ } -> ());
  (match Logmgr.deserialize garbage with
  | _ -> Alcotest.fail "Logmgr.deserialize accepted garbage"
  | exception Storage_error.Error { cause = Storage_error.Decode; _ } -> ());
  match Media.Archive.deserialize garbage with
  | _ -> Alcotest.fail "Archive.deserialize accepted garbage"
  | exception Storage_error.Error { cause = Storage_error.Decode; _ } -> ()

(* ------------------------------------------------------------------ *)
(* Bounded retry and typed exhaustion                                 *)

let test_retry_exhaustion_is_typed () =
  clean (fun () ->
      let db, tree = fresh () in
      insert_range db tree 0 49;
      (* a disk that always fails writes: the bounded retry must give up
         with a typed Retry_exhausted, never hang or silently drop *)
      Faultdisk.arm ~seed:7 { no_faults with Faultdisk.eio_write_p = 1.0 };
      (match Bufpool.flush_all db.Db.pool with
      | _ -> Alcotest.fail "flush over an always-failing disk succeeded"
      | exception Storage_error.Error { cause = Storage_error.Retry_exhausted; _ } -> ());
      Faultdisk.disarm ();
      (* a disk that always fails reads, ditto *)
      Bufpool.flush_all db.Db.pool;
      Bufpool.crash db.Db.pool;
      Faultdisk.arm ~seed:7 { no_faults with Faultdisk.eio_read_p = 1.0 };
      (match Bufpool.fix_opt db.Db.pool (Btree.root_pid tree) with
      | _ -> Alcotest.fail "read over an always-failing disk succeeded"
      | exception Storage_error.Error { cause = Storage_error.Retry_exhausted; _ } -> ());
      Faultdisk.disarm ();
      (* and with the storm gone, everything still works *)
      Alcotest.(check int) "contents intact after the storms" 50
        (Db.run_exn db (fun () -> List.length (Btree.to_list tree))))

(* Transient-EIO storm against the batched commit pipeline: forces fail
   and are retried, but no committer is ever acknowledged before its
   covering force lands (rule R4 stays green through the whole run), and
   no batch is dropped. *)
let test_eio_storm_group_commit () =
  clean (fun () ->
      let db, tree =
        fresh
          ~commit_mode:(Db.Group { Aries_txn.Group_commit.max_batch = 4; max_delay_steps = 6 })
          ()
      in
      let sink = Stats.create () in
      Stats.with_sink sink (fun () ->
          Faultdisk.arm ~seed:3 { no_faults with Faultdisk.eio_force_p = 0.4 };
          Fun.protect ~finally:Faultdisk.disarm (fun () ->
              Trace.reset ();
              Discipline.reset ();
              let acked = ref 0 in
              let result =
                Db.run db ~policy:(Aries_sched.Sched.Random 42) (fun () ->
                    for f = 0 to 3 do
                      ignore
                        (Aries_sched.Sched.spawn
                           ~name:(Printf.sprintf "committer-%d" f)
                           (fun () ->
                             for i = 0 to 7 do
                               Db.with_txn db (fun txn ->
                                   Btree.insert tree txn
                                     ~value:(Printf.sprintf "f%d-%02d" f i)
                                     ~rid:(rid ((f * 100) + i)));
                               incr acked
                             done))
                    done)
              in
              (match result.Aries_sched.Sched.outcome with
              | Aries_sched.Sched.Completed -> ()
              | _ -> Alcotest.fail "storm run did not complete");
              List.iter
                (fun (_, name, e) ->
                  Alcotest.failf "fiber %s raised %s" name (Printexc.to_string e))
                result.Aries_sched.Sched.exns;
              Alcotest.(check int) "all 32 commits acked" 32 !acked;
              Alcotest.(check int) "zero discipline violations (R4 green)" 0
                (Discipline.violations ());
              (* every acked commit is covered by a force that actually
                 reached stable storage *)
              Alcotest.(check bool) "acked work is stable" true
                (Logmgr.flushed_offset db.Db.wal > 0)));
      Alcotest.(check bool) "the storm actually hit the force path" true
        (Stats.get sink Stats.disk_eio_injected > 0);
      Alcotest.(check bool) "forces were retried" true (Stats.get sink Stats.disk_retries > 0);
      (* and the data is all there *)
      Alcotest.(check int) "all rows present" 32
        (Db.run_exn db (fun () -> List.length (Btree.to_list tree))))

(* ------------------------------------------------------------------ *)
(* Automatic media repair through the pool's repairer hook            *)

let test_auto_repair_bit_rot () =
  clean (fun () ->
      let db, tree = fresh () in
      insert_range db tree 0 149;
      Bufpool.flush_all db.Db.pool;
      let victim = Btree.root_pid tree in
      Disk.corrupt_flip ~seed:5 db.Db.disk victim;
      Bufpool.drop db.Db.pool victim;
      let sink = Stats.create () in
      let n =
        Stats.with_sink sink (fun () ->
            Db.run_exn db (fun () -> List.length (Btree.to_list tree)))
      in
      (* the rotten root healed transparently mid-scan: no dump, no manual
         recover_page — the pool quarantined it and the Db-installed
         repairer rebuilt it from the archive + log history *)
      Alcotest.(check int) "all rows readable through the repair" 150 n;
      Alcotest.(check int) "one quarantine" 1 (Stats.get sink Stats.disk_quarantines);
      Alcotest.(check int) "one repair" 1 (Stats.get sink Stats.disk_repairs);
      Db.run_exn db (fun () -> Btree.check_invariants tree);
      (* the healed image is durable: a direct disk read verifies *)
      match Disk.read db.Db.disk victim with
      | Some _ -> ()
      | None -> Alcotest.fail "repaired page not durable")

(* The same heal when the log prefix holding the page's early history has
   been truncated away: the roll-forward must read reclaimed segments from
   the archive before the live log. *)
let test_auto_repair_across_truncation () =
  clean (fun () ->
      let db, tree = fresh ~segment_size:512 () in
      insert_range db tree 0 99;
      Bufpool.flush_all db.Db.pool;
      Db.checkpoint db;
      let reclaimed = Db.trim_log db in
      Alcotest.(check bool) "log prefix actually reclaimed" true (reclaimed > 0);
      insert_range db tree 100 149;
      Bufpool.flush_all db.Db.pool;
      let victim = Btree.root_pid tree in
      Disk.corrupt_flip ~seed:13 db.Db.disk victim;
      Bufpool.drop db.Db.pool victim;
      let sink = Stats.create () in
      let n =
        Stats.with_sink sink (fun () ->
            Db.run_exn db (fun () -> List.length (Btree.to_list tree)))
      in
      Alcotest.(check int) "all rows readable after repair across truncation" 150 n;
      Alcotest.(check bool) "repair ran" true (Stats.get sink Stats.disk_repairs > 0);
      Db.run_exn db (fun () -> Btree.check_invariants tree))

let () =
  Alcotest.run "faults"
    [
      ( "page-crc",
        [
          Alcotest.test_case "bit-rot detected, typed, pid attached" `Quick
            test_page_crc_detects_flip;
          Alcotest.test_case "legacy v1 image still decodes" `Quick test_page_legacy_v1_decodes;
          Alcotest.test_case "crc.check-disabled meta-fault" `Quick test_crc_disabled_meta_fault;
          Alcotest.test_case "corrupt_flip / corrupt_drop" `Quick test_corrupt_variants;
        ] );
      ( "log-crc",
        [
          Alcotest.test_case "torn tail mid-record = clean crash" `Quick
            test_torn_tail_mid_record_equals_clean_crash;
          Alcotest.test_case "complete unflushed records survive the scan" `Quick
            test_torn_tail_keeps_complete_records;
          Alcotest.test_case "rotten sealed segment is typed on load" `Quick
            test_log_image_rot_is_typed;
          Alcotest.test_case "garbage deserialize is typed everywhere" `Quick
            test_garbage_deserialize_is_typed;
        ] );
      ( "retry",
        [
          Alcotest.test_case "retry exhaustion is typed" `Quick test_retry_exhaustion_is_typed;
          Alcotest.test_case "EIO storm vs group commit: no early acks" `Quick
            test_eio_storm_group_commit;
        ] );
      ( "repair",
        [
          Alcotest.test_case "bit-rot heals transparently" `Quick test_auto_repair_bit_rot;
          Alcotest.test_case "heal across log truncation (archive history)" `Quick
            test_auto_repair_across_truncation;
        ] );
    ]
